// Ablation (§5.1): UDF ordering by rank. A cheap selective predicate and
// an expensive non-selective one on the same table: applying them in rank
// order (cheap first) spares the expensive UDF most of its input.
#include "workloads.h"

namespace rexbench {
namespace {

volatile double g_udf_sink = 0;

Result<double> RunWithOrder(bool cheap_first) {
  Cluster cluster(BenchEngineConfig(4));
  LineitemGenOptions opt;
  opt.num_rows = static_cast<int64_t>(30000 * BenchScale());
  REX_RETURN_NOT_OK(cluster.CreateTable(
      "lineitem",
      Schema{{"orderkey", ValueType::kInt},
             {"linenumber", ValueType::kInt},
             {"quantity", ValueType::kDouble},
             {"extendedprice", ValueType::kDouble},
             {"tax", ValueType::kDouble}},
      0, GenerateLineitem(opt)));

  ScalarUdf cheap;
  cheap.name = "is_first_line";  // selectivity ~1/7, trivial cost
  cheap.out_type = ValueType::kBool;
  cheap.fn = [](const std::vector<Value>& args) -> Result<Value> {
    REX_ASSIGN_OR_RETURN(int64_t x, args[0].ToInt());
    return Value(x == 1);
  };
  REX_RETURN_NOT_OK(cluster.udfs()->RegisterScalar(cheap));

  ScalarUdf expensive;
  expensive.name = "deep_check";  // selectivity ~1, heavy cost
  expensive.out_type = ValueType::kBool;
  expensive.fn = [](const std::vector<Value>& args) -> Result<Value> {
    REX_ASSIGN_OR_RETURN(double x, args[0].ToDouble());
    double acc = x;
    for (int i = 0; i < 400; ++i) acc = acc * 1.0000001 + 1e-9;
    g_udf_sink = acc;
    return Value(acc > 0);
  };
  REX_RETURN_NOT_OK(cluster.udfs()->RegisterScalar(expensive));

  PlanSpec plan;
  ScanOp::Params scan;
  scan.table = "lineitem";
  int top = plan.AddScan(scan);
  ExprPtr cheap_pred =
      Expr::Call("is_first_line", {Expr::Column(1, "linenumber")});
  ExprPtr costly_pred =
      Expr::Call("deep_check", {Expr::Column(3, "extendedprice")});
  if (cheap_first) {
    top = plan.AddFilter(top, cheap_pred);
    top = plan.AddFilter(top, costly_pred);
  } else {
    top = plan.AddFilter(top, costly_pred);
    top = plan.AddFilter(top, cheap_pred);
  }
  GroupByOp::Params agg;
  agg.aggs = {GroupByOp::AggSpec{AggKind::kCount, -1, "n"}};
  agg.mode = GroupByOp::Mode::kStratum;
  top = plan.AddGroupBy(top, agg);
  plan.AddSink(top);
  REX_ASSIGN_OR_RETURN(QueryRunResult run, cluster.Run(plan));
  RecordProfile(cheap_first ? "rank-order(cheap-first)"
                            : "anti-rank(expensive-first)",
                std::move(run.profile));
  return run.total_seconds;
}

void BM_UdfOrder(benchmark::State& state) {
  for (auto _ : state) {
    auto ranked = RunWithOrder(/*cheap_first=*/true);
    auto unranked = RunWithOrder(/*cheap_first=*/false);
    Row("ablA3", "rank-order(cheap-first)", 0,
        ranked.ok() ? *ranked : -1, "s");
    Row("ablA3", "anti-rank(expensive-first)", 0,
        unranked.ok() ? *unranked : -1, "s");
  }
}
BENCHMARK(BM_UdfOrder)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace rexbench

int main(int argc, char** argv) {
  rexbench::PrintHeader("Ablation A3",
                        "Rank-ordered UDF predicates (§5.1)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  rexbench::WriteBenchReport("ablation_udf_order");
  return 0;
}
