// Figure 2: PageRank convergence behavior under Δᵢ sets — the fraction of
// non-converged vertices (rank changed by more than 1%) per iteration
// decreases steadily, and individual pages converge at different times.
#include "workloads.h"

namespace rexbench {
namespace {

void BM_Convergence(benchmark::State& state) {
  GraphData graph = GenerateDbpediaLike(DbpediaScale());
  for (auto _ : state) {
    Cluster cluster(BenchEngineConfig(4));
    if (!LoadGraphTables(&cluster, graph).ok()) return;
    PageRankConfig cfg;
    cfg.threshold = 0.01;  // the paper's 1% criterion
    cfg.relative = true;
    if (!RegisterPageRankUdfs(cluster.udfs(), cfg).ok()) return;
    auto plan = BuildPageRankDeltaPlan(cfg);
    if (!plan.ok()) return;
    auto run = cluster.Run(*plan);
    if (!run.ok()) return;
    RecordProfile("PageRankDelta", run->profile);
    const auto n = static_cast<double>(graph.num_vertices);
    for (const StratumReport& s : run->strata) {
      if (s.stratum == 0) continue;
      // Non-converged vertices: those whose rank still changed >1% this
      // iteration — exactly the Δᵢ set the fixpoint derived.
      Row("fig2b", "non-converged%", static_cast<double>(s.stratum),
          100.0 * static_cast<double>(s.stats.new_tuples) / n, "%");
    }
    state.counters["iterations"] =
        static_cast<double>(run->strata_executed);
  }
}
BENCHMARK(BM_Convergence)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace rexbench

int main(int argc, char** argv) {
  rexbench::PrintHeader("Figure 2",
                        "PageRank convergence behavior (Δᵢ set decay)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  rexbench::WriteBenchReport("fig02");
  return 0;
}
