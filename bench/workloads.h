// Shared workload runners for the figure benchmarks: each runs one
// (platform, algorithm) configuration and returns per-iteration timings
// plus communication volume.
#ifndef REX_BENCH_WORKLOADS_H_
#define REX_BENCH_WORKLOADS_H_

#include <memory>
#include <utility>
#include <vector>

#include "algos/kmeans.h"
#include "algos/pagerank.h"
#include "algos/sssp.h"
#include "bench_common.h"
#include "mapreduce/mr_jobs.h"
#include "wrap/hadoop_wrap.h"

namespace rexbench {

using namespace rex;  // NOLINT: bench-local convenience

struct SeriesResult {
  std::vector<double> per_iteration_seconds;
  double total_seconds = 0;
  int64_t bytes_sent = 0;  // network/shuffle volume
  int iterations = 0;
  /// The run's structured profile (assembled by the driver for REX runs;
  /// synthesized from iteration reports for MapReduce runs).
  QueryProfile profile;
};

enum class RexMode { kDelta, kNoDelta, kWrap };

inline EngineConfig BenchEngineConfig(int workers) {
  EngineConfig cfg;
  cfg.num_workers = workers;
  cfg.replication = 3;
  return cfg;
}

inline MrConfig BenchMrConfig(int workers) {
  MrConfig cfg;
  cfg.num_map_tasks = workers;
  cfg.num_reduce_tasks = workers;
  cfg.parallelism = workers;
  cfg.startup_cost_ms = 20.0;
  return cfg;
}

/// Data-path knobs for the ablation series: shuffle-side delta coalescing
/// (exec/coalesce.h) and local pre-aggregation. The coalescing ablation
/// pairs run with `preaggregate = false` so the raw candidate stream — the
/// redundancy the coalescer removes — actually reaches the shuffle.
struct RexRunTweaks {
  bool coalesce_deltas = true;
  bool preaggregate = true;
  /// Columnar delta batches (exec.batch_* kernels); off reproduces the
  /// pure scalar data plane for the ablation pairs. Results are
  /// bit-identical either way.
  bool columnar_batches = true;
  /// Differential compression (common/delta_codec.h) of checkpoint epoch
  /// chains and packed shuffle runs. Results are bit-identical either way;
  /// the ablation pairs compare shipped/stored byte volume.
  bool diff_checkpoints = true;
  bool diff_wire_runs = true;
};

/// REX PageRank in any of the three configurations of §6. `iterations`
/// bounds wrap/no-delta runs (delta terminates implicitly but is bounded
/// too, for the fixed-x-axis figures).
inline Result<SeriesResult> RunRexPageRank(const GraphData& graph,
                                           RexMode mode, int workers,
                                           int iterations,
                                           double threshold = 0.01,
                                           RexRunTweaks tweaks = {}) {
  EngineConfig engine = BenchEngineConfig(workers);
  engine.coalesce_deltas = tweaks.coalesce_deltas;
  engine.columnar_batches = tweaks.columnar_batches;
  engine.diff_checkpoints = tweaks.diff_checkpoints;
  engine.diff_wire_runs = tweaks.diff_wire_runs;
  Cluster cluster(std::move(engine));
  PageRankConfig cfg;
  cfg.threshold = threshold;
  cfg.relative = true;
  cfg.preaggregate = tweaks.preaggregate;
  PlanSpec plan;
  if (mode == RexMode::kWrap) {
    REX_RETURN_NOT_OK(SetupWrapPageRank(&cluster, graph));
    REX_ASSIGN_OR_RETURN(plan, BuildWrapPageRankPlan());
  } else {
    REX_RETURN_NOT_OK(LoadGraphTables(&cluster, graph));
    REX_RETURN_NOT_OK(RegisterPageRankUdfs(cluster.udfs(), cfg));
    if (mode == RexMode::kDelta) {
      REX_ASSIGN_OR_RETURN(plan, BuildPageRankDeltaPlan(cfg));
    } else {
      REX_ASSIGN_OR_RETURN(plan, BuildPageRankFullPlan(cfg));
    }
  }
  QueryOptions options;
  if (mode == RexMode::kDelta) {
    // Delta terminates implicitly once nothing propagates (bounded for
    // the figure's fixed x-axis).
    options.max_strata = iterations + 1;
  } else {
    // "No-delta and wrap do not perform convergence testing" (§6):
    // fixed iteration count.
    options.terminate = [iterations](int stratum, const VoteStats&) {
      return stratum >= iterations;
    };
  }
  REX_ASSIGN_OR_RETURN(QueryRunResult run, cluster.Run(plan, options));
  SeriesResult out;
  for (const StratumReport& s : run.strata) {
    if (s.stratum == 0) continue;  // stratum 0 is the load/base step
    out.per_iteration_seconds.push_back(s.seconds);
  }
  out.total_seconds = run.total_seconds;
  out.bytes_sent = run.total_bytes_sent;
  out.iterations = static_cast<int>(out.per_iteration_seconds.size());
  out.profile = std::move(run.profile);
  return out;
}

inline Result<SeriesResult> RunRexSssp(const GraphData& graph, bool delta,
                                       int workers, int max_iterations,
                                       int64_t source = 0,
                                       RexRunTweaks tweaks = {}) {
  EngineConfig engine = BenchEngineConfig(workers);
  engine.coalesce_deltas = tweaks.coalesce_deltas;
  engine.columnar_batches = tweaks.columnar_batches;
  engine.diff_checkpoints = tweaks.diff_checkpoints;
  engine.diff_wire_runs = tweaks.diff_wire_runs;
  Cluster cluster(std::move(engine));
  REX_RETURN_NOT_OK(LoadGraphTables(&cluster, graph));
  SsspConfig cfg;
  cfg.source = source;
  cfg.preaggregate = tweaks.preaggregate;
  REX_RETURN_NOT_OK(RegisterSsspUdfs(cluster.udfs(), cfg));
  PlanSpec plan;
  if (delta) {
    REX_ASSIGN_OR_RETURN(plan, BuildSsspDeltaPlan(cfg));
  } else {
    REX_ASSIGN_OR_RETURN(plan, BuildSsspFullPlan(cfg));
  }
  QueryOptions options;
  options.max_strata = max_iterations + 1;
  REX_ASSIGN_OR_RETURN(QueryRunResult run, cluster.Run(plan, options));
  SeriesResult out;
  for (const StratumReport& s : run.strata) {
    if (s.stratum == 0) continue;
    out.per_iteration_seconds.push_back(s.seconds);
  }
  out.total_seconds = run.total_seconds;
  out.bytes_sent = run.total_bytes_sent;
  out.iterations = static_cast<int>(out.per_iteration_seconds.size());
  out.profile = std::move(run.profile);
  return out;
}

inline SeriesResult FromMrIterations(
    const std::vector<MrIterationReport>& iterations, double total,
    int64_t shuffle_bytes) {
  SeriesResult out;
  for (const MrIterationReport& it : iterations) {
    out.per_iteration_seconds.push_back(it.seconds);
  }
  out.total_seconds = total;
  out.bytes_sent = shuffle_bytes;
  out.iterations = static_cast<int>(iterations.size());
  // Synthesized minimal profile: MapReduce runs have no REX driver, but
  // the bench report keeps per-iteration wall time comparable.
  out.profile.total_seconds = total;
  out.profile.strata_executed = out.iterations;
  for (size_t i = 0; i < iterations.size(); ++i) {
    StratumProfile s;
    s.stratum = static_cast<int>(i);
    s.seconds = iterations[i].seconds;
    out.profile.strata.push_back(s);
  }
  return out;
}

inline Result<SeriesResult> RunMrPageRankSeries(const GraphData& graph,
                                                bool haloop, int workers,
                                                int iterations) {
  MetricsRegistry registry;
  MrPageRankOptions options;
  options.haloop = haloop;
  options.iterations = iterations;
  options.config = BenchMrConfig(workers);
  options.config.metrics = &registry;
  REX_ASSIGN_OR_RETURN(MrPageRankRun run, RunMrPageRank(graph, options));
  return FromMrIterations(run.iterations, run.total_seconds,
                          registry.Value(rex::metrics::kShuffleBytes));
}

inline Result<SeriesResult> RunMrSsspSeries(const GraphData& graph,
                                            bool haloop, int workers,
                                            int iterations,
                                            int64_t source = 0) {
  MetricsRegistry registry;
  MrSsspOptions options;
  options.haloop = haloop;
  options.iterations = iterations;
  options.source = source;
  options.config = BenchMrConfig(workers);
  options.config.metrics = &registry;
  REX_ASSIGN_OR_RETURN(MrSsspRun run, RunMrSssp(graph, options));
  return FromMrIterations(run.iterations, run.total_seconds,
                          registry.Value(rex::metrics::kShuffleBytes));
}

/// Emits cumulative + per-iteration rows for one series of a recursive
/// figure (the paper's (a)/(b) subfigure pair).
inline void EmitRecursiveSeries(const char* figure,
                                const std::string& series,
                                const SeriesResult& result) {
  RecordProfile(series, result.profile);
  double cumulative = 0;
  for (size_t i = 0; i < result.per_iteration_seconds.size(); ++i) {
    cumulative += result.per_iteration_seconds[i];
    Row(figure, series + "/cumulative", static_cast<double>(i + 1),
        cumulative, "s");
  }
  for (size_t i = 0; i < result.per_iteration_seconds.size(); ++i) {
    Row(figure, series + "/per-iter", static_cast<double>(i + 1),
        result.per_iteration_seconds[i], "s");
  }
}

}  // namespace rexbench

#endif  // REX_BENCH_WORKLOADS_H_
