// Figure 8: PageRank on the (much denser) Twitter-like graph. Series:
// Hadoop LB, HaLoop LB, REX Δ — the scalability shoot-out of §6.4.
#include "workloads.h"

namespace rexbench {
namespace {

constexpr int kWorkers = 4;
constexpr int kIterations = 31;

GraphData& Graph() {
  static GraphData graph = GenerateTwitterLike(TwitterScale());
  return graph;
}

void BM_HadoopLB(benchmark::State& state) {
  for (auto _ : state) {
    auto r = RunMrPageRankSeries(Graph(), false, kWorkers, kIterations);
    if (r.ok()) EmitRecursiveSeries("fig8", "HadoopLB", *r);
  }
}
BENCHMARK(BM_HadoopLB)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_HaLoopLB(benchmark::State& state) {
  for (auto _ : state) {
    auto r = RunMrPageRankSeries(Graph(), true, kWorkers, kIterations);
    if (r.ok()) EmitRecursiveSeries("fig8", "HaLoopLB", *r);
  }
}
BENCHMARK(BM_HaLoopLB)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_RexDelta(benchmark::State& state) {
  for (auto _ : state) {
    auto r = RunRexPageRank(Graph(), RexMode::kDelta, kWorkers, kIterations);
    if (r.ok()) EmitRecursiveSeries("fig8", "REXdelta", *r);
  }
}
BENCHMARK(BM_RexDelta)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace rexbench

int main(int argc, char** argv) {
  rexbench::PrintHeader("Figure 8", "PageRank (Twitter-like)");
  rexbench::Note("graph: " + std::to_string(rexbench::Graph().num_vertices) +
                 " vertices, " +
                 std::to_string(rexbench::Graph().edges.size()) + " edges");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  rexbench::WriteBenchReport("fig08");
  return 0;
}
