// Serving-layer soak bench: N standing queries (PageRank + SSSP) resident
// over one shared graph, M update epochs applied through
// ServingSession::ApplyUpdate, with a subscriber draining each query's
// result-diff cursor. Series report per-epoch wall time, shipped diff
// volume, and shed counts; the per-epoch convergence profiles land in
// BENCH_serving.json (one run per "<query>/epoch<k>" label, schema checked
// by the golden-sample test in tests/obs_test.cc).
#include <chrono>
#include <random>

#include "serve/serve.h"
#include "workloads.h"

namespace rexbench {
namespace {

constexpr int kWorkers = 4;

GraphData& Graph() {
  static GraphData graph = GenerateDbpediaLike(0.25 * DbpediaScale());
  return graph;
}

int Epochs() {
  int m = static_cast<int>(8 * BenchScale());
  return m < 4 ? 4 : m;
}

int BatchEdges() {
  int k = static_cast<int>(8 * BenchScale());
  return k < 4 ? 4 : k;
}

/// Seeded per-epoch mutation batch against the maintained adjacency
/// mirror: 1/3 deletions of existing edges, the rest fresh inserts.
std::vector<EdgeMutation> MakeBatch(std::mt19937_64* rng,
                                    const Adjacency& adj, int k) {
  const int64_t n = static_cast<int64_t>(adj.size());
  std::uniform_int_distribution<int64_t> vertex(0, n - 1);
  std::vector<EdgeMutation> batch;
  for (int i = 0; i < k; ++i) {
    if (i % 3 == 0) {
      for (int tries = 0; tries < 32; ++tries) {
        int64_t u = vertex(*rng);
        if (adj[static_cast<size_t>(u)].empty()) continue;
        std::uniform_int_distribution<size_t> pick(
            0, adj[static_cast<size_t>(u)].size() - 1);
        batch.push_back({u, adj[static_cast<size_t>(u)][pick(*rng)], -1});
        break;
      }
    } else {
      batch.push_back({vertex(*rng), vertex(*rng), 1});
    }
  }
  return batch;
}

/// One serving soak: register both standing queries, subscribe to each,
/// drive `epochs` update epochs while draining cursors. Emits one FIGURE
/// row per epoch and leaves the session's accumulated per-epoch profiles
/// in the binary-wide report log.
Status RunServingSoak(int epochs, int batch_edges) {
  const GraphData& graph = Graph();
  Cluster cluster(BenchEngineConfig(kWorkers));
  REX_RETURN_NOT_OK(LoadGraphTables(&cluster, graph));

  PageRankConfig pr_cfg;
  pr_cfg.threshold = 1e-8;
  SsspConfig sssp_cfg;
  sssp_cfg.source = 0;
  REX_RETURN_NOT_OK(RegisterPageRankUdfs(cluster.udfs(), pr_cfg));
  REX_RETURN_NOT_OK(RegisterSsspUdfs(cluster.udfs(), sssp_cfg));

  ServingSession session(&cluster);
  REX_ASSIGN_OR_RETURN(StandingQuerySpec pr_spec,
                       MakePageRankStandingQuery(graph, pr_cfg));
  REX_ASSIGN_OR_RETURN(StandingQuerySpec sssp_spec,
                       MakeSsspStandingQuery(graph, sssp_cfg));
  REX_ASSIGN_OR_RETURN(int pr_qid, session.Register(std::move(pr_spec)));
  REX_ASSIGN_OR_RETURN(int sssp_qid, session.Register(std::move(sssp_spec)));
  REX_ASSIGN_OR_RETURN(int pr_sub, session.Subscribe(pr_qid));
  REX_ASSIGN_OR_RETURN(int sssp_sub, session.Subscribe(sssp_qid));

  Adjacency adj = AdjacencyFromGraph(graph);
  std::mt19937_64 rng(29);
  for (int epoch = 1; epoch <= epochs; ++epoch) {
    std::vector<EdgeMutation> batch = MakeBatch(&rng, adj, batch_edges);
    ApplyEdgeMutations(&adj, batch);
    const auto t0 = std::chrono::steady_clock::now();
    REX_RETURN_NOT_OK(session.ApplyUpdate(batch));
    const double epoch_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    int64_t diff_rows = 0;
    for (int sub : {pr_sub, sssp_sub}) {
      while (auto b = session.Poll(sub)) {
        diff_rows += static_cast<int64_t>(b->diffs.size());
      }
    }
    Row("serving", "epoch-ms", epoch, epoch_ms, "ms");
    Row("serving", "diff-rows", epoch, static_cast<double>(diff_rows),
        "rows");
  }
  Row("serving", "sheds", epochs,
      static_cast<double>(session.metrics()->Value(metrics::kServeSheds)),
      "folds");
  Row("serving", "failovers", epochs,
      static_cast<double>(
          session.metrics()->Value(metrics::kServeEpochFailovers)),
      "runs");
  for (const QueryProfile& p : session.epoch_profiles()) {
    RecordProfile(p.name, p);
  }
  return Status::OK();
}

void BM_ServingSoak(benchmark::State& state) {
  for (auto _ : state) {
    Status st = RunServingSoak(Epochs(), BatchEdges());
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
}
BENCHMARK(BM_ServingSoak)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace rexbench

int main(int argc, char** argv) {
  rexbench::PrintHeader(
      "SERVING", "standing-query session soak: epochs of incremental fan-out");
  rexbench::Note("graph: " + std::to_string(rexbench::Graph().num_vertices) +
                 " vertices, " +
                 std::to_string(rexbench::Graph().edges.size()) + " edges, " +
                 std::to_string(rexbench::Epochs()) + " epochs x " +
                 std::to_string(rexbench::BatchEdges()) + " edge mutations");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  rexbench::WriteBenchReport("serving");
  return 0;
}
