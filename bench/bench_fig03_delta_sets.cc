// Figure 3 (table): the immutable / mutable / Δᵢ data classes of each
// recursive algorithm, measured live: the immutable set never moves after
// stratum 0, the mutable set stays ~constant, and the Δᵢ set shrinks.
#include "algos/adsorption.h"
#include "workloads.h"

namespace rexbench {
namespace {

void EmitDeltaSets(const char* algo, const QueryRunResult& run,
                   int64_t immutable_size, int64_t mutable_size) {
  RecordProfile(algo, run.profile);
  Row("fig3", std::string(algo) + "/immutable", 0,
      static_cast<double>(immutable_size), "tuples");
  Row("fig3", std::string(algo) + "/mutable", 0,
      static_cast<double>(mutable_size), "tuples");
  for (const StratumReport& s : run.strata) {
    if (s.stratum == 0) continue;
    Row("fig3", std::string(algo) + "/delta",
        static_cast<double>(s.stratum),
        static_cast<double>(s.stats.new_tuples), "tuples");
  }
}

void BM_DeltaSets(benchmark::State& state) {
  GraphData graph = GenerateDbpediaLike(0.3 * DbpediaScale());
  for (auto _ : state) {
    {  // PageRank: immutable = edges; mutable = rank per vertex.
      Cluster cluster(BenchEngineConfig(4));
      (void)LoadGraphTables(&cluster, graph);
      PageRankConfig cfg;
      cfg.threshold = 0.01;
      cfg.relative = true;
      (void)RegisterPageRankUdfs(cluster.udfs(), cfg);
      auto plan = BuildPageRankDeltaPlan(cfg);
      auto run = cluster.Run(*plan);
      if (run.ok()) {
        EmitDeltaSets("PageRank", *run,
                      static_cast<int64_t>(graph.edges.size()),
                      static_cast<int64_t>(run->fixpoint_state.size()));
      }
    }
    {  // Shortest path: mutable = reached-vertex distances.
      Cluster cluster(BenchEngineConfig(4));
      (void)LoadGraphTables(&cluster, graph);
      SsspConfig cfg;
      (void)RegisterSsspUdfs(cluster.udfs(), cfg);
      auto plan = BuildSsspDeltaPlan(cfg);
      auto run = cluster.Run(*plan);
      if (run.ok()) {
        EmitDeltaSets("ShortestPath", *run,
                      static_cast<int64_t>(graph.edges.size()),
                      static_cast<int64_t>(run->fixpoint_state.size()));
      }
    }
    {  // K-means: immutable = coordinates; mutable = assignments;
       // Δ = switched points.
      GeoGenOptions geo;
      geo.num_base_points = 2000;
      geo.num_clusters = 8;
      geo.seed = 31;
      auto points = GenerateGeoPoints(geo);
      Cluster cluster(BenchEngineConfig(4));
      (void)LoadPointsTable(&cluster, points);
      KMeansConfig cfg;
      cfg.k = 8;
      (void)RegisterKMeansUdfs(cluster.udfs(), cfg);
      auto plan = BuildKMeansDeltaPlan(cfg);
      auto run = cluster.Run(*plan);
      if (run.ok()) {
        EmitDeltaSets("KMeans", *run,
                      static_cast<int64_t>(points.size()),
                      static_cast<int64_t>(points.size()));
      }
    }
    {  // Adsorption: mutable = complete label vectors.
      Cluster cluster(BenchEngineConfig(4));
      (void)LoadGraphTables(&cluster, graph);
      AdsorptionConfig cfg;
      cfg.num_labels = 4;
      (void)RegisterAdsorptionUdfs(cluster.udfs(), cfg);
      auto plan = BuildAdsorptionDeltaPlan(cfg);
      auto run = cluster.Run(*plan);
      if (run.ok()) {
        EmitDeltaSets("Adsorption", *run,
                      static_cast<int64_t>(graph.edges.size()),
                      static_cast<int64_t>(run->fixpoint_state.size()));
      }
    }
  }
}
BENCHMARK(BM_DeltaSets)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace rexbench

int main(int argc, char** argv) {
  rexbench::PrintHeader(
      "Figure 3", "Types of recursive data: immutable / mutable / Δᵢ sets");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  rexbench::WriteBenchReport("fig03");
  return 0;
}
