// Figure 12: recovery from node failure — shortest path on the
// DBPedia-like graph with one worker killed before iteration k (k swept
// along the x-axis). Series: Restart (discard everything), Incremental
// (resume from the replicated Δ-set checkpoints, §4.3), and the
// no-failure baseline.
#include "workloads.h"

namespace rexbench {
namespace {

constexpr int kWorkers = 4;

GraphData& Graph() {
  static GraphData graph = GenerateDbpediaLike(DbpediaScale());
  return graph;
}

Result<double> RunWithFailure(const std::string& label,
                              FailureInjection failure,
                              bool diff_checkpoints = true) {
  EngineConfig engine = BenchEngineConfig(kWorkers);
  engine.diff_checkpoints = diff_checkpoints;
  Cluster cluster(std::move(engine));
  REX_RETURN_NOT_OK(LoadGraphTables(&cluster, Graph()));
  SsspConfig cfg;
  REX_RETURN_NOT_OK(RegisterSsspUdfs(cluster.udfs(), cfg));
  REX_ASSIGN_OR_RETURN(PlanSpec plan, BuildSsspDeltaPlan(cfg));
  QueryOptions options;
  options.failure = failure;
  REX_ASSIGN_OR_RETURN(QueryRunResult run, cluster.Run(plan, options));
  // The checkpoint volume the recovery resumes from, raw vs stored —
  // delta-chained epochs shrink the replicated footprint (§4.3) without
  // changing what the chain reconstructs.
  Row("fig12", label + "/ckpt_raw_mb", failure.before_stratum,
      static_cast<double>(run.profile.ckpt_raw_bytes) / (1024.0 * 1024.0),
      "MB");
  Row("fig12", label + "/ckpt_stored_mb", failure.before_stratum,
      static_cast<double>(run.profile.ckpt_stored_bytes) / (1024.0 * 1024.0),
      "MB");
  RecordProfile(label, std::move(run.profile));
  return run.total_seconds;
}

void BM_Recovery(benchmark::State& state) {
  for (auto _ : state) {
    auto baseline = RunWithFailure("No-failure", FailureInjection{});
    if (!baseline.ok()) return;

    // Probe the query's iteration count to size the sweep.
    int max_k = 20;
    {
      auto probe = RunRexSssp(Graph(), true, kWorkers, 100);
      if (probe.ok()) max_k = std::min(20, probe->iterations);
    }
    for (int k = 1; k <= max_k; k += (k < 5 ? 1 : 3)) {
      Row("fig12", "No-failure", k, *baseline, "s");
      FailureInjection restart;
      restart.worker = 1;
      restart.before_stratum = k;
      restart.strategy = RecoveryStrategy::kRestart;
      auto r = RunWithFailure("Restart/k=" + std::to_string(k), restart);
      Row("fig12", "Restart", k, r.ok() ? *r : -1, "s");

      FailureInjection incremental = restart;
      incremental.strategy = RecoveryStrategy::kIncremental;
      auto i = RunWithFailure("Incremental/k=" + std::to_string(k),
                              incremental);
      Row("fig12", "Incremental", k, i.ok() ? *i : -1, "s");
    }
  }
}
BENCHMARK(BM_Recovery)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace rexbench

int main(int argc, char** argv) {
  rexbench::PrintHeader(
      "Figure 12", "Recovery from node failure (shortest path, rf=3)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  rexbench::WriteBenchReport("fig12");
  return 0;
}
