// Figure 4: the standard aggregation query over TPC-H-like lineitem —
//   SELECT sum(tax), count(*) FROM lineitem WHERE linenumber > 1
// in four configurations: REX built-in (RQL through the optimizer),
// REX UDF (UDAs + UDF predicate), REX wrap (the Hadoop classes inside
// REX), and Hadoop (the mini-MapReduce engine).
#include "rql/compiler.h"
#include "workloads.h"

namespace rexbench {
namespace {

constexpr int kWorkers = 4;

std::vector<Tuple>& Lineitem() {
  static std::vector<Tuple> rows = [] {
    LineitemGenOptions opt;
    opt.num_rows = static_cast<int64_t>(600000 * BenchScale() / 10);
    return GenerateLineitem(opt);
  }();
  return rows;
}

Schema LineitemSchema() {
  return Schema{{"orderkey", ValueType::kInt},
                {"linenumber", ValueType::kInt},
                {"quantity", ValueType::kDouble},
                {"extendedprice", ValueType::kDouble},
                {"tax", ValueType::kDouble}};
}

struct SumCountState : UdaState {
  double sum = 0;
  int64_t count = 0;
};

Status RegisterFig4Udfs(UdfRegistry* udfs) {
  ScalarUdf gt_one;
  gt_one.name = "gt_one";
  gt_one.in_types = {ValueType::kInt};
  gt_one.out_type = ValueType::kBool;
  gt_one.fn = [](const std::vector<Value>& args) -> Result<Value> {
    REX_ASSIGN_OR_RETURN(int64_t x, args[0].ToInt());
    return Value(x > 1);
  };
  REX_RETURN_NOT_OK(udfs->RegisterScalar(gt_one));

  Uda agg;
  agg.name = "SumCountTax";
  agg.in_schema = Schema{{"tax", ValueType::kDouble}};
  agg.out_schema =
      Schema{{"sum_tax", ValueType::kDouble}, {"n", ValueType::kInt}};
  agg.composable = true;
  agg.init = [] { return std::make_unique<SumCountState>(); };
  agg.agg_state = [](UdaState* state, const Delta& d) -> Result<DeltaVec> {
    auto* s = static_cast<SumCountState*>(state);
    REX_ASSIGN_OR_RETURN(double tax, d.tuple.field(0).ToDouble());
    if (d.tuple.size() >= 2) {  // merging a partial
      REX_ASSIGN_OR_RETURN(int64_t n, d.tuple.field(1).ToInt());
      s->sum += tax;
      s->count += n;
    } else {
      s->sum += tax;
      s->count += 1;
    }
    return DeltaVec{};
  };
  agg.agg_result = [](UdaState* state) -> Result<DeltaVec> {
    auto* s = static_cast<SumCountState*>(state);
    DeltaVec out{Delta::Insert(Tuple{Value(s->sum), Value(s->count)})};
    s->sum = 0;
    s->count = 0;
    return out;
  };
  return udfs->RegisterUda(agg);
}

double RunRexRql(const std::string& label, const std::string& query) {
  Cluster cluster(BenchEngineConfig(kWorkers));
  if (!cluster.CreateTable("lineitem", LineitemSchema(), 0, Lineitem())
           .ok()) {
    return -1;
  }
  if (!RegisterFig4Udfs(cluster.udfs()).ok()) return -1;
  rql::CompileContext ctx;
  ctx.storage = cluster.storage();
  ctx.udfs = cluster.udfs();
  ctx.calibration = ClusterCalibration::Uniform(kWorkers);
  auto compiled = rql::CompileRql(query, ctx);
  if (!compiled.ok()) {
    Note("compile failed: " + compiled.status().ToString());
    return -1;
  }
  auto run = cluster.Run(compiled->spec);
  if (run.ok()) RecordProfile(label, run->profile);
  return run.ok() ? run->total_seconds : -1;
}

void BM_RexBuiltin(benchmark::State& state) {
  for (auto _ : state) {
    double t = RunRexRql(
        "REX-builtin",
        "SELECT sum(tax), count(*) FROM lineitem WHERE linenumber > 1");
    Row("fig4", "REX-builtin", 0, t, "s");
  }
}
BENCHMARK(BM_RexBuiltin)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_RexUdf(benchmark::State& state) {
  for (auto _ : state) {
    double t = RunRexRql(
        "REX-UDF",
        "SELECT SumCountTax(tax) FROM lineitem WHERE gt_one(linenumber)");
    Row("fig4", "REX-UDF", 0, t, "s");
  }
}
BENCHMARK(BM_RexUdf)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_RexWrap(benchmark::State& state) {
  for (auto _ : state) {
    Cluster cluster(BenchEngineConfig(kWorkers));
    // The Hadoop classes (same functors the Hadoop series runs), wrapped.
    MrJob job;
    job.map = [](const KeyValue& rec,
                 std::vector<KeyValue>* out) -> Status {
      const auto& cols = rec.value.AsList();
      REX_ASSIGN_OR_RETURN(int64_t linenumber, cols[0].ToInt());
      if (linenumber > 1) {
        out->push_back(KeyValue{Value(int64_t{0}),
                                Value::List({cols[1], Value(int64_t{1})})});
      }
      return Status::OK();
    };
    auto sum_pair = [](const Value& key, const std::vector<Value>& values,
                       std::vector<KeyValue>* out) -> Status {
      double tax = 0;
      int64_t count = 0;
      for (const Value& v : values) {
        const auto& pair = v.AsList();
        REX_ASSIGN_OR_RETURN(double t, pair[0].ToDouble());
        REX_ASSIGN_OR_RETURN(int64_t c, pair[1].ToInt());
        tax += t;
        count += c;
      }
      out->push_back(
          KeyValue{key, Value::List({Value(tax), Value(count)})});
      return Status::OK();
    };
    if (!RegisterHadoopClass(cluster.udfs(), "TpchAgg", job.map, sum_pair,
                             sum_pair)
             .ok()) {
      return;
    }
    std::vector<Tuple> records;
    records.reserve(Lineitem().size());
    for (const Tuple& row : Lineitem()) {
      records.push_back(Tuple{
          row.field(0), Value::List({row.field(1), row.field(4)})});
    }
    if (!cluster
             .CreateTable("wrap_lineitem",
                          Schema{{"k", ValueType::kInt},
                                 {"v", ValueType::kList}},
                          0, std::move(records))
             .ok()) {
      return;
    }
    WrapJobPlanOptions options;
    options.hadoop_class = "TpchAgg";
    options.input_table = "wrap_lineitem";
    options.use_combiner = true;
    auto plan = BuildWrapJobPlan(options);
    if (!plan.ok()) return;
    auto run = cluster.Run(*plan);
    if (run.ok()) RecordProfile("REX-wrap", run->profile);
    Row("fig4", "REX-wrap", 0, run.ok() ? run->total_seconds : -1, "s");
  }
}
BENCHMARK(BM_RexWrap)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_Hadoop(benchmark::State& state) {
  for (auto _ : state) {
    auto run = RunMrAggregation(Lineitem(), BenchMrConfig(kWorkers));
    Row("fig4", "Hadoop", 0, run.ok() ? run->total_seconds : -1, "s");
  }
}
BENCHMARK(BM_Hadoop)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace rexbench

int main(int argc, char** argv) {
  rexbench::PrintHeader("Figure 4", "Standard aggregation (TPC-H-like)");
  rexbench::Note("lineitem rows: " +
                 std::to_string(rexbench::Lineitem().size()));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  rexbench::WriteBenchReport("fig04");
  return 0;
}
