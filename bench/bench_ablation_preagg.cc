// Ablation (§5.2): pre-aggregation pushdown. (a) the combiner before the
// exchange in the flat aggregation query; (b) the local partial sum in the
// PageRank recursive loop.
#include "rql/compiler.h"
#include "workloads.h"

namespace rexbench {
namespace {

Result<double> RunFlatAgg(bool enable_preagg) {
  Cluster cluster(BenchEngineConfig(4));
  LineitemGenOptions opt;
  opt.num_rows = static_cast<int64_t>(60000 * BenchScale());
  REX_RETURN_NOT_OK(cluster.CreateTable(
      "lineitem",
      Schema{{"orderkey", ValueType::kInt},
             {"linenumber", ValueType::kInt},
             {"quantity", ValueType::kDouble},
             {"extendedprice", ValueType::kDouble},
             {"tax", ValueType::kDouble}},
      0, GenerateLineitem(opt)));
  rql::CompileContext ctx;
  ctx.storage = cluster.storage();
  ctx.udfs = cluster.udfs();
  ctx.optimizer_options.enable_preagg = enable_preagg;
  REX_ASSIGN_OR_RETURN(
      rql::CompiledQuery compiled,
      rql::CompileRql(
          "SELECT sum(tax), count(*) FROM lineitem WHERE linenumber > 1",
          ctx));
  REX_ASSIGN_OR_RETURN(QueryRunResult run, cluster.Run(compiled.spec));
  RecordProfile(enable_preagg ? "flat-agg/with-combiner"
                              : "flat-agg/no-combiner",
                std::move(run.profile));
  return run.total_seconds;
}

void BM_FlatCombiner(benchmark::State& state) {
  for (auto _ : state) {
    auto with = RunFlatAgg(true);
    auto without = RunFlatAgg(false);
    Row("ablA2", "flat-agg/with-combiner", 0, with.ok() ? *with : -1, "s");
    Row("ablA2", "flat-agg/no-combiner", 0,
        without.ok() ? *without : -1, "s");
  }
}
BENCHMARK(BM_FlatCombiner)->Unit(benchmark::kMillisecond)->Iterations(1);

Result<std::pair<double, int64_t>> RunPr(bool preagg) {
  GraphData graph = GenerateDbpediaLike(DbpediaScale());
  Cluster cluster(BenchEngineConfig(4));
  REX_RETURN_NOT_OK(LoadGraphTables(&cluster, graph));
  PageRankConfig cfg;
  cfg.threshold = 0.01;
  cfg.relative = true;
  cfg.preaggregate = preagg;
  REX_RETURN_NOT_OK(RegisterPageRankUdfs(cluster.udfs(), cfg));
  REX_ASSIGN_OR_RETURN(PlanSpec plan, BuildPageRankDeltaPlan(cfg));
  REX_ASSIGN_OR_RETURN(QueryRunResult run, cluster.Run(plan));
  RecordProfile(preagg ? "pagerank/with-preagg" : "pagerank/no-preagg",
                std::move(run.profile));
  return std::make_pair(run.total_seconds, run.total_bytes_sent);
}

void BM_RecursivePreagg(benchmark::State& state) {
  for (auto _ : state) {
    auto with = RunPr(true);
    auto without = RunPr(false);
    if (with.ok() && without.ok()) {
      Row("ablA2", "pagerank/with-preagg", 0, with->first, "s");
      Row("ablA2", "pagerank/no-preagg", 0, without->first, "s");
      Row("ablA2", "pagerank/with-preagg-bytes", 0,
          static_cast<double>(with->second), "B");
      Row("ablA2", "pagerank/no-preagg-bytes", 0,
          static_cast<double>(without->second), "B");
    }
  }
}
BENCHMARK(BM_RecursivePreagg)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace rexbench

int main(int argc, char** argv) {
  rexbench::PrintHeader("Ablation A2", "Pre-aggregation pushdown (§5.2)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  rexbench::WriteBenchReport("ablation_preagg");
  return 0;
}
