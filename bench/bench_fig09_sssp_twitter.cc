// Figure 9: shortest path on the Twitter-like graph (Hadoop LB, HaLoop
// LB, REX Δ). The per-iteration plot shows the frontier-explosion spike a
// few hops from the source, preceded and followed by fast iterations.
#include "workloads.h"

namespace rexbench {
namespace {

constexpr int kWorkers = 4;
constexpr int kIterations = 15;

GraphData& Graph() {
  static GraphData graph = GenerateTwitterLike(TwitterScale());
  return graph;
}

void BM_HadoopLB(benchmark::State& state) {
  for (auto _ : state) {
    auto r = RunMrSsspSeries(Graph(), false, kWorkers, kIterations);
    if (r.ok()) EmitRecursiveSeries("fig9", "HadoopLB", *r);
  }
}
BENCHMARK(BM_HadoopLB)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_HaLoopLB(benchmark::State& state) {
  for (auto _ : state) {
    auto r = RunMrSsspSeries(Graph(), true, kWorkers, kIterations);
    if (r.ok()) EmitRecursiveSeries("fig9", "HaLoopLB", *r);
  }
}
BENCHMARK(BM_HaLoopLB)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_RexDelta(benchmark::State& state) {
  for (auto _ : state) {
    auto r = RunRexSssp(Graph(), /*delta=*/true, kWorkers, kIterations);
    if (r.ok()) EmitRecursiveSeries("fig9", "REXdelta", *r);
  }
}
BENCHMARK(BM_RexDelta)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace rexbench

int main(int argc, char** argv) {
  rexbench::PrintHeader("Figure 9", "Shortest path (Twitter-like)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  rexbench::WriteBenchReport("fig09");
  return 0;
}
