// Chaos soak: seeded multi-fault schedules (crashes mid-stratum and
// during recovery, restores, drop/duplicate/reorder windows) swept against
// the no-failure reference, for both recovery strategies. Reports the
// mismatch count (must be 0), the fault mix the schedules exercised, and
// the time overhead a faulted run pays over the clean baseline.
//
// REX_CHAOS_SOAK_SEEDS scales the sweep (default 25 seeds per strategy);
// a reported failing seed reproduces deterministically via
//   REX_CHAOS_SEEDS=1 REX_CHAOS_SEED_BASE=<seed> ./tests/rex_tests \
//     --gtest_filter='ChaosSweep*'
#include <cmath>
#include <cstdlib>

#include "algos/sssp.h"
#include "sim/fault_schedule.h"
#include "workloads.h"

namespace rexbench {
namespace {

constexpr int kWorkers = 4;

int SoakSeeds() {
  const char* env = std::getenv("REX_CHAOS_SOAK_SEEDS");
  if (env == nullptr) return 25;
  int v = std::atoi(env);
  return v > 0 ? v : 25;
}

GraphData& Graph() {
  static GraphData graph = GenerateDbpediaLike(0.05 * BenchScale());
  return graph;
}

EngineConfig SoakConfig() {
  EngineConfig cfg = BenchEngineConfig(kWorkers);
  cfg.verify_invariants = true;  // runtime invariant checkers stay on
  return cfg;
}

struct SoakRun {
  bool ok = false;
  std::vector<int64_t> distances;
  double seconds = 0;
  ChaosStats chaos;
  int recoveries = 0;
};

SoakRun RunOnce(const FaultSchedule& faults,
                const char* profile_label = nullptr) {
  SoakRun out;
  Cluster cluster(SoakConfig());
  if (!LoadGraphTables(&cluster, Graph()).ok()) return out;
  SsspConfig cfg;
  if (!RegisterSsspUdfs(cluster.udfs(), cfg).ok()) return out;
  auto plan = BuildSsspDeltaPlan(cfg);
  if (!plan.ok()) return out;
  QueryOptions options;
  options.faults = faults;
  auto run = cluster.Run(*plan, options);
  if (!run.ok()) return out;
  if (profile_label != nullptr) {
    RecordProfile(profile_label, std::move(run->profile));
  }
  auto dist = DistancesFromState(run->fixpoint_state, Graph().num_vertices);
  if (!dist.ok()) return out;
  out.distances = *dist;
  out.seconds = run->total_seconds;
  out.chaos = run->chaos;
  out.recoveries = run->recoveries;
  out.ok = true;
  return out;
}

void SoakStrategy(RecoveryStrategy strategy, const SoakRun& baseline,
                  int ref_strata) {
  const char* series = strategy == RecoveryStrategy::kRestart
                           ? "Restart"
                           : "Incremental";
  const int seeds = SoakSeeds();
  const uint64_t base =
      strategy == RecoveryStrategy::kRestart ? 900000u : 800000u;

  ChaosProfile profile;
  profile.num_workers = kWorkers;
  profile.replication = 3;
  profile.max_crash_stratum = std::max(0, std::min(3, ref_strata - 5));

  int mismatches = 0;
  int failures = 0;
  double faulted_seconds = 0;
  ChaosStats total;
  int recoveries = 0;
  for (int i = 0; i < seeds; ++i) {
    const uint64_t seed = base + static_cast<uint64_t>(i);
    FaultSchedule schedule = MakeChaosSchedule(seed, profile);
    schedule.strategy = strategy;
    // Keep one representative faulted profile per strategy in the report.
    SoakRun got = RunOnce(schedule, i == 0 ? series : nullptr);
    if (!got.ok) {
      failures += 1;
      Note(std::string("soak FAILED seed=") + std::to_string(seed));
      continue;
    }
    if (got.distances != baseline.distances) {
      mismatches += 1;
      Note(std::string("soak MISMATCH seed=") + std::to_string(seed));
    }
    faulted_seconds += got.seconds;
    recoveries += got.recoveries;
    total.crashes += got.chaos.crashes;
    total.mid_stratum_crashes += got.chaos.mid_stratum_crashes;
    total.recovery_crashes += got.chaos.recovery_crashes;
    total.restores += got.chaos.restores;
    total.messages_dropped += got.chaos.messages_dropped;
    total.messages_duplicated += got.chaos.messages_duplicated;
    total.batches_reordered += got.chaos.batches_reordered;
  }

  const int clean = seeds - failures;
  Row("chaos", std::string(series) + "/mismatches", seeds, mismatches,
      "count");
  Row("chaos", std::string(series) + "/errors", seeds, failures, "count");
  Row("chaos", std::string(series) + "/crashes", seeds, total.crashes,
      "count");
  Row("chaos", std::string(series) + "/midstratum", seeds,
      total.mid_stratum_crashes, "count");
  Row("chaos", std::string(series) + "/recoverycrash", seeds,
      total.recovery_crashes, "count");
  Row("chaos", std::string(series) + "/restores", seeds, total.restores,
      "count");
  Row("chaos", std::string(series) + "/dropped", seeds,
      total.messages_dropped, "count");
  Row("chaos", std::string(series) + "/duplicated", seeds,
      total.messages_duplicated, "count");
  Row("chaos", std::string(series) + "/reordered", seeds,
      total.batches_reordered, "count");
  Row("chaos", std::string(series) + "/recoveries", seeds, recoveries,
      "count");
  if (clean > 0 && baseline.seconds > 0) {
    Row("chaos", std::string(series) + "/overhead", seeds,
        (faulted_seconds / clean) / baseline.seconds, "x");
  }
}

void BM_ChaosSoak(benchmark::State& state) {
  for (auto _ : state) {
    SoakRun baseline = RunOnce(FaultSchedule{}, "Baseline");
    if (!baseline.ok) {
      Note("baseline run failed; aborting soak");
      return;
    }
    // Probe the stratum count once so schedules finish before convergence.
    int ref_strata = 20;
    {
      auto probe = RunRexSssp(Graph(), true, kWorkers, 100);
      if (probe.ok()) ref_strata = probe->iterations;
    }
    Row("chaos", "Baseline/seconds", 0, baseline.seconds, "s");
    SoakStrategy(RecoveryStrategy::kIncremental, baseline, ref_strata);
    SoakStrategy(RecoveryStrategy::kRestart, baseline, ref_strata);
  }
}
BENCHMARK(BM_ChaosSoak)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace rexbench

int main(int argc, char** argv) {
  rexbench::PrintHeader(
      "Chaos soak",
      "Seeded fault schedules vs no-failure reference (SSSP, rf=3)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  rexbench::WriteBenchReport("chaos_soak");
  return 0;
}
