// Incremental view maintenance microbench: converged PageRank on the
// DBPedia-like graph, then k-edge base-update batches applied two ways —
// incrementally via Cluster::ApplyBaseUpdate (seed the perturbation Δ,
// re-converge) and from scratch on the mutated graph. Series report wall
// time and shuffle volume; the structured profiles land in BENCH_ivm.json
// under the "incremental" / "from-scratch" labels, and CI asserts the
// incremental run ships strictly fewer tuples.
#include <random>

#include "algos/ivm.h"
#include "workloads.h"

namespace rexbench {
namespace {

constexpr int kWorkers = 4;
constexpr double kThreshold = 1e-6;

GraphData& Graph() {
  static GraphData graph = GenerateDbpediaLike(DbpediaScale());
  return graph;
}

/// Batch sizes swept by the figure rows; the google-benchmark pair below
/// runs the middle one.
int BatchEdges() {
  int k = static_cast<int>(16 * BenchScale());
  return k < 4 ? 4 : k;
}

/// Deterministic k-edge batch: half deletions of existing edges spread
/// across the edge list, half fresh inserts from a seeded generator.
std::vector<EdgeMutation> MakeBatch(const GraphData& graph, int k,
                                    uint64_t seed) {
  std::vector<EdgeMutation> batch;
  const size_t stride = graph.edges.size() / static_cast<size_t>(k) + 1;
  for (size_t i = 0; i < graph.edges.size() && batch.size() < size_t(k) / 2;
       i += stride) {
    batch.push_back({graph.edges[i].first, graph.edges[i].second, -1});
  }
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int64_t> vertex(0, graph.num_vertices - 1);
  while (batch.size() < static_cast<size_t>(k)) {
    batch.push_back({vertex(rng), vertex(rng), 1});
  }
  return batch;
}

PageRankConfig IvmPageRankConfig() {
  PageRankConfig cfg;
  cfg.threshold = kThreshold;
  return cfg;
}

/// One incremental episode: converge once (untimed), then apply the batch
/// through ApplyBaseUpdate. Returns the update-only profile (tuples_sent /
/// bytes diffed against the converged run by the driver).
Result<QueryProfile> RunIncrementalUpdate(const GraphData& graph, int k,
                                          double* update_seconds) {
  Cluster cluster(BenchEngineConfig(kWorkers));
  PageRankConfig cfg = IvmPageRankConfig();
  REX_RETURN_NOT_OK(LoadGraphTables(&cluster, graph));
  REX_RETURN_NOT_OK(RegisterPageRankUdfs(cluster.udfs(), cfg));
  REX_ASSIGN_OR_RETURN(PlanSpec plan, BuildPageRankDeltaPlan(cfg));
  REX_ASSIGN_OR_RETURN(QueryRunResult converged, cluster.Run(plan));
  REX_ASSIGN_OR_RETURN(
      std::vector<double> ranks,
      RanksFromState(converged.fixpoint_state, graph.num_vertices));

  Adjacency adj = AdjacencyFromGraph(graph);
  std::vector<EdgeMutation> batch = MakeBatch(graph, k, /*seed=*/41);
  REX_ASSIGN_OR_RETURN(
      Cluster::BaseUpdate update,
      BuildPageRankBaseUpdate(plan, batch, ranks, adj, cfg.damping));
  REX_ASSIGN_OR_RETURN(QueryRunResult inc, cluster.ApplyBaseUpdate(update));
  if (update_seconds != nullptr) *update_seconds = inc.total_seconds;
  return inc.profile;
}

/// The from-scratch cost of the same update: full delta-plan run on the
/// already-mutated graph.
Result<QueryProfile> RunScratchUpdate(const GraphData& graph, int k,
                                      double* update_seconds) {
  Adjacency adj = AdjacencyFromGraph(graph);
  ApplyEdgeMutations(&adj, MakeBatch(graph, k, /*seed=*/41));
  GraphData mutated;
  mutated.num_vertices = graph.num_vertices;
  for (size_t u = 0; u < adj.size(); ++u) {
    for (int64_t v : adj[u]) {
      mutated.edges.emplace_back(static_cast<int64_t>(u), v);
    }
  }
  Cluster cluster(BenchEngineConfig(kWorkers));
  PageRankConfig cfg = IvmPageRankConfig();
  REX_RETURN_NOT_OK(LoadGraphTables(&cluster, mutated));
  REX_RETURN_NOT_OK(RegisterPageRankUdfs(cluster.udfs(), cfg));
  REX_ASSIGN_OR_RETURN(PlanSpec plan, BuildPageRankDeltaPlan(cfg));
  REX_ASSIGN_OR_RETURN(QueryRunResult run, cluster.Run(plan));
  if (update_seconds != nullptr) *update_seconds = run.total_seconds;
  return run.profile;
}

void BM_IncrementalUpdate(benchmark::State& state) {
  for (auto _ : state) {
    double seconds = 0;
    auto profile = RunIncrementalUpdate(Graph(), BatchEdges(), &seconds);
    if (profile.ok()) {
      RecordProfile("incremental", *profile);
      Row("ivm", "incremental", BatchEdges(), seconds * 1e3, "ms");
      Row("ivm", "incremental-tuples", BatchEdges(),
          static_cast<double>(profile->tuples_sent), "tuples");
    } else {
      state.SkipWithError(profile.status().ToString().c_str());
    }
  }
}
BENCHMARK(BM_IncrementalUpdate)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_FromScratchUpdate(benchmark::State& state) {
  for (auto _ : state) {
    double seconds = 0;
    auto profile = RunScratchUpdate(Graph(), BatchEdges(), &seconds);
    if (profile.ok()) {
      RecordProfile("from-scratch", *profile);
      Row("ivm", "from-scratch", BatchEdges(), seconds * 1e3, "ms");
      Row("ivm", "from-scratch-tuples", BatchEdges(),
          static_cast<double>(profile->tuples_sent), "tuples");
    } else {
      state.SkipWithError(profile.status().ToString().c_str());
    }
  }
}
BENCHMARK(BM_FromScratchUpdate)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace rexbench

int main(int argc, char** argv) {
  rexbench::PrintHeader("IVM",
                        "incremental base updates vs from-scratch PageRank");
  rexbench::Note("graph: " + std::to_string(rexbench::Graph().num_vertices) +
                 " vertices, " +
                 std::to_string(rexbench::Graph().edges.size()) +
                 " edges, batch=" + std::to_string(rexbench::BatchEdges()) +
                 " edge mutations");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  rexbench::WriteBenchReport("ivm");
  return 0;
}
