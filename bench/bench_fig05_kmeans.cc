// Figure 5: K-means scalability — input size swept over two orders of
// magnitude (the paper sweeps 0.38M - 382M tuples via the enlargement
// trick); series: Hadoop LB and REX Δ. With no immutable relation in the
// shuffle, HaLoop ≡ Hadoop here (§6.2), so it is omitted exactly as in the
// paper. REX Δ's advantage: only switching points ever re-process.
#include "workloads.h"

namespace rexbench {
namespace {

constexpr int kWorkers = 4;
constexpr int kClusters = 8;

std::vector<Tuple> MakePoints(int64_t base_points, int enlargement) {
  GeoGenOptions geo;
  geo.num_base_points = base_points;
  geo.num_clusters = kClusters;
  geo.enlargement = enlargement;
  geo.seed = 2026;
  return GenerateGeoPoints(geo);
}

void RunPoint(double size_label, const std::vector<Tuple>& points) {
  {  // Hadoop LB
    MrKMeansOptions options;
    options.k = kClusters;
    options.config = BenchMrConfig(kWorkers);
    auto run = RunMrKMeans(points, options);
    Row("fig5", "HadoopLB", size_label,
        run.ok() ? run->total_seconds : -1, "s");
  }
  {  // REX Δ
    Cluster cluster(BenchEngineConfig(kWorkers));
    if (!LoadPointsTable(&cluster, points).ok()) return;
    KMeansConfig cfg;
    cfg.k = kClusters;
    if (!RegisterKMeansUdfs(cluster.udfs(), cfg).ok()) return;
    auto plan = BuildKMeansDeltaPlan(cfg);
    if (!plan.ok()) return;
    auto run = cluster.Run(*plan);
    if (run.ok()) {
      RecordProfile("REXdelta/" + std::to_string(size_label), run->profile);
    }
    Row("fig5", "REXdelta", size_label,
        run.ok() ? run->total_seconds : -1, "s");
  }
}

void BM_KMeansSweep(benchmark::State& state) {
  for (auto _ : state) {
    const auto base =
        static_cast<int64_t>(400 * BenchScale());
    // Paper-style sweep: base points, then 10x and 100x enlargements
    // (jittered copies around each base coordinate).
    RunPoint(static_cast<double>(base), MakePoints(base, 0));
    RunPoint(static_cast<double>(base * 10), MakePoints(base, 9));
    RunPoint(static_cast<double>(base * 100), MakePoints(base, 99));
  }
}
BENCHMARK(BM_KMeansSweep)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace rexbench

int main(int argc, char** argv) {
  rexbench::PrintHeader("Figure 5", "K-means scalability (size sweep)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  rexbench::WriteBenchReport("fig05");
  return 0;
}
