// Figure 11: average network bandwidth per node during shortest-path and
// PageRank on the Twitter-like graph — REX Δ vs HaLoop LB vs Hadoop LB.
// REX bytes come from the interconnect's per-sender meter; Hadoop/HaLoop
// bytes are the total shuffled volume, both divided by node count and
// query duration exactly as §6.5 describes.
#include "workloads.h"

namespace rexbench {
namespace {

constexpr int kWorkers = 4;

GraphData& Graph() {
  static GraphData graph = GenerateTwitterLike(TwitterScale());
  return graph;
}

double MbPerSecPerNode(int64_t bytes, double seconds) {
  if (seconds <= 0) return 0;
  return static_cast<double>(bytes) / (1024.0 * 1024.0) / kWorkers /
         seconds;
}

/// §6.5's headline for bandwidth-limited environments is the data volume
/// itself; the MB/s rate also depends on the (very different) query
/// durations, so both are reported.
void EmitBoth(const char* figure, const std::string& series, int64_t bytes,
              double seconds) {
  Row(figure, series, 0, MbPerSecPerNode(bytes, seconds), "MB/s");
  Row(figure, series + "/total", 0,
      static_cast<double>(bytes) / (1024.0 * 1024.0), "MB");
}

/// Differential-compression view of a REX run: raw vs shipped/stored
/// volumes for packed shuffle runs and checkpoint epochs, plus the
/// resulting ratios (>= 1 when the codec pays for itself).
void EmitCompression(const char* figure, const std::string& series,
                     const QueryProfile& p) {
  const double mb = 1024.0 * 1024.0;
  Row(figure, series + "/wire_raw", 0,
      static_cast<double>(p.run_raw_bytes) / mb, "MB");
  Row(figure, series + "/wire_compressed", 0,
      static_cast<double>(p.run_compressed_bytes) / mb, "MB");
  if (p.run_compressed_bytes > 0) {
    Row(figure, series + "/wire_ratio", 0,
        static_cast<double>(p.run_raw_bytes) /
            static_cast<double>(p.run_compressed_bytes),
        "x");
  }
  Row(figure, series + "/ckpt_raw", 0,
      static_cast<double>(p.ckpt_raw_bytes) / mb, "MB");
  Row(figure, series + "/ckpt_stored", 0,
      static_cast<double>(p.ckpt_stored_bytes) / mb, "MB");
  if (p.ckpt_stored_bytes > 0) {
    Row(figure, series + "/ckpt_ratio", 0,
        static_cast<double>(p.ckpt_raw_bytes) /
            static_cast<double>(p.ckpt_stored_bytes),
        "x");
  }
}

void BM_PageRankBandwidth(benchmark::State& state) {
  for (auto _ : state) {
    auto rex = RunRexPageRank(Graph(), RexMode::kDelta, kWorkers, 31);
    if (rex.ok()) {
      RecordProfile("pagerank/REXdelta", rex->profile);
      EmitBoth("fig11b", "REXdelta", rex->bytes_sent, rex->total_seconds);
      EmitCompression("fig11b", "REXdelta", rex->profile);
    }
    RexRunTweaks nodiff;
    nodiff.diff_checkpoints = false;
    nodiff.diff_wire_runs = false;
    auto raw = RunRexPageRank(Graph(), RexMode::kDelta, kWorkers, 31, 0.01,
                              nodiff);
    if (raw.ok()) {
      RecordProfile("pagerank/REXdelta-nodiff", raw->profile);
      EmitBoth("fig11b", "REXdelta-nodiff", raw->bytes_sent,
               raw->total_seconds);
    }
    auto haloop = RunMrPageRankSeries(Graph(), true, kWorkers, 31);
    if (haloop.ok()) {
      RecordProfile("pagerank/HaLoopLB", haloop->profile);
      EmitBoth("fig11b", "HaLoopLB", haloop->bytes_sent,
               haloop->total_seconds);
    }
    auto hadoop = RunMrPageRankSeries(Graph(), false, kWorkers, 31);
    if (hadoop.ok()) {
      RecordProfile("pagerank/HadoopLB", hadoop->profile);
      EmitBoth("fig11b", "HadoopLB", hadoop->bytes_sent,
               hadoop->total_seconds);
    }
  }
}
BENCHMARK(BM_PageRankBandwidth)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_SsspBandwidth(benchmark::State& state) {
  for (auto _ : state) {
    auto rex = RunRexSssp(Graph(), /*delta=*/true, kWorkers, 15);
    if (rex.ok()) {
      RecordProfile("sssp/REXdelta", rex->profile);
      EmitBoth("fig11a", "REXdelta", rex->bytes_sent, rex->total_seconds);
      EmitCompression("fig11a", "REXdelta", rex->profile);
    }
    RexRunTweaks nodiff;
    nodiff.diff_checkpoints = false;
    nodiff.diff_wire_runs = false;
    auto raw = RunRexSssp(Graph(), /*delta=*/true, kWorkers, 15, 0, nodiff);
    if (raw.ok()) {
      RecordProfile("sssp/REXdelta-nodiff", raw->profile);
      EmitBoth("fig11a", "REXdelta-nodiff", raw->bytes_sent,
               raw->total_seconds);
    }
    auto haloop = RunMrSsspSeries(Graph(), true, kWorkers, 15);
    if (haloop.ok()) {
      RecordProfile("sssp/HaLoopLB", haloop->profile);
      EmitBoth("fig11a", "HaLoopLB", haloop->bytes_sent,
               haloop->total_seconds);
    }
    auto hadoop = RunMrSsspSeries(Graph(), false, kWorkers, 15);
    if (hadoop.ok()) {
      RecordProfile("sssp/HadoopLB", hadoop->profile);
      EmitBoth("fig11a", "HadoopLB", hadoop->bytes_sent,
               hadoop->total_seconds);
    }
  }
}
BENCHMARK(BM_SsspBandwidth)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace rexbench

int main(int argc, char** argv) {
  rexbench::PrintHeader("Figure 11",
                        "Average bandwidth per node (Twitter-like)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  rexbench::WriteBenchReport("fig11");
  return 0;
}
