// Columnar data-plane kernel microbench: scalar row-at-a-time loops vs
// the vectorized DeltaBatch kernels that replace them, on the same input
// stream. Four kernel pairs — filter predicate evaluation, partition
// hashing, the coalescer's per-key weight fold, and a full group-by
// consume — plus the FromDeltas/ToDeltas conversion cost the batch plane
// pays at operator edges.
//
// Every pair first checks bit-identity (the columnar plane's contract;
// the binary exits non-zero on any mismatch, which the CI smoke job
// relies on), then emits
//
//   FIGURE colplane | series=<kernel>/scalar    x=<rows> y=<tuples/s>
//   FIGURE colplane | series=<kernel>/columnar  x=<rows> y=<tuples/s>
//   FIGURE colplane | series=<kernel>/speedup   x=<rows> y=<ratio>
//
// CI asserts the filter and partition-hash speedups are an integer
// factor (>= 2x).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "common/delta_batch.h"
#include "common/rng.h"
#include "exec/coalesce.h"
#include "exec/expr.h"
#include "exec/group_by.h"
#include "exec/operators.h"
#include "exec/vectorized.h"

namespace rexbench {
namespace {

using namespace rex;  // NOLINT: bench-local convenience

size_t Rows() {
  double n = 200000 * BenchScale();
  return n < 2000 ? 2000 : static_cast<size_t>(n);
}

/// Repetitions sized so each kernel processes a few million rows total
/// regardless of REX_BENCH_SCALE.
int Reps(size_t rows, size_t target_rows) {
  size_t r = target_rows / rows;
  return r < 1 ? 1 : static_cast<int>(r);
}

template <typename F>
double TimeSeconds(int reps, F&& f) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) f();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

void EmitPair(const std::string& kernel, size_t rows, int reps,
              double scalar_s, double columnar_s) {
  const double total = static_cast<double>(rows) * reps;
  Row("colplane", kernel + "/scalar", static_cast<double>(rows),
      total / scalar_s, "tuples/s");
  Row("colplane", kernel + "/columnar", static_cast<double>(rows),
      total / columnar_s, "tuples/s");
  Row("colplane", kernel + "/speedup", static_cast<double>(rows),
      scalar_s / columnar_s, "x");
}

[[noreturn]] void Die(const char* kernel, const char* what) {
  std::fprintf(stderr, "colplane: %s kernel %s diverges from scalar\n",
               kernel, what);
  std::exit(1);
}

/// Insert stream over three int columns (key, value, aux). When
/// `key_determines_row` the non-key fields are functions of the key, so
/// the coalescer's weight fold collapses each key to one surviving delta.
DeltaVec MakeIntStream(size_t n, int64_t num_keys, uint64_t seed,
                       bool key_determines_row = false) {
  Rng rng(seed);
  DeltaVec out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const int64_t key = static_cast<int64_t>(rng.NextBelow(
        static_cast<uint64_t>(num_keys)));
    const int64_t value =
        key_determines_row ? key * 7
                           : static_cast<int64_t>(rng.NextBelow(1000));
    const int64_t aux =
        key_determines_row ? key % 13
                           : static_cast<int64_t>(rng.NextBelow(1 << 20));
    out.push_back(Delta::Insert(Tuple{Value(key), Value(value), Value(aux)}));
  }
  return out;
}

// ---------------------------------------------------------------------
// Kernel: edge conversion. Not a pair — the batch plane's overhead,
// reported so the kernel speedups below can be read net of it.
void BM_Convert(benchmark::State& state) {
  const size_t n = Rows();
  const DeltaVec deltas = MakeIntStream(n, 64, 11);
  const int reps = Reps(n, 2000000);
  for (auto _ : state) {
    const double secs = TimeSeconds(reps, [&] {
      auto batch = DeltaBatch::FromDeltas(deltas);
      benchmark::DoNotOptimize(batch->NumRows());
    });
    Row("colplane", "convert/columnar", static_cast<double>(n),
        static_cast<double>(n) * reps / secs, "tuples/s");
  }
}
BENCHMARK(BM_Convert)->Unit(benchmark::kMillisecond)->Iterations(1);

// ---------------------------------------------------------------------
// Kernel: filter predicate evaluation. Scalar = the EvalPredicate tree
// walk FilterOp runs per row; columnar = the compiled predicate FilterOp
// caches per column-type signature.
void BM_FilterEval(benchmark::State& state) {
  const size_t n = Rows();
  const DeltaVec deltas = MakeIntStream(n, 64, 23);
  const auto batch = DeltaBatch::FromDeltas(deltas);
  const ExprPtr pred = Expr::Binary(
      BinOp::kAnd,
      Expr::Binary(BinOp::kLt, Expr::Column(1),
                   Expr::Const(Value(static_cast<int64_t>(500)))),
      Expr::Binary(
          BinOp::kGt,
          Expr::Binary(BinOp::kAdd,
                       Expr::Binary(BinOp::kMul, Expr::Column(0),
                                    Expr::Const(Value(
                                        static_cast<int64_t>(3)))),
                       Expr::Column(2)),
          Expr::Const(Value(static_cast<int64_t>(100000)))));
  const auto compiled =
      CompiledPredicate::Compile(*pred, batch->ColumnTypes());
  if (!compiled.has_value()) Die("filter", "compile");

  std::vector<uint8_t> mask;
  compiled->Eval(*batch, &mask);
  for (size_t i = 0; i < n; ++i) {
    auto want = EvalPredicate(*pred, deltas[i].tuple, nullptr);
    if (!want.ok() || *want != (mask[i] != 0)) Die("filter", "mask");
  }

  const int reps = Reps(n, 2000000);
  for (auto _ : state) {
    const double scalar_s = TimeSeconds(reps, [&] {
      size_t hits = 0;
      for (const Delta& d : deltas) {
        auto r = EvalPredicate(*pred, d.tuple, nullptr);
        if (r.ok() && *r) ++hits;
      }
      benchmark::DoNotOptimize(hits);
    });
    const double columnar_s = TimeSeconds(reps, [&] {
      std::vector<uint8_t> m;
      compiled->Eval(*batch, &m);
      benchmark::DoNotOptimize(m.data());
    });
    EmitPair("filter", n, reps, scalar_s, columnar_s);
  }
}
BENCHMARK(BM_FilterEval)->Unit(benchmark::kMillisecond)->Iterations(1);

// ---------------------------------------------------------------------
// Kernel: partition hashing (RehashOp routing). Scalar = PartitionHash
// per tuple; columnar = PartitionHashRows column-at-a-time.
void BM_PartitionHash(benchmark::State& state) {
  const size_t n = Rows();
  const DeltaVec deltas = MakeIntStream(n, 64, 37);
  const auto batch = DeltaBatch::FromDeltas(deltas);
  const std::vector<int> keys = {0, 1};

  std::vector<uint64_t> hashes;
  PartitionHashRows(*batch, keys, &hashes);
  for (size_t i = 0; i < n; ++i) {
    if (hashes[i] != PartitionHash(deltas[i].tuple, keys)) {
      Die("partition-hash", "hash");
    }
  }

  const int reps = Reps(n, 4000000);
  for (auto _ : state) {
    const double scalar_s = TimeSeconds(reps, [&] {
      uint64_t acc = 0;
      for (const Delta& d : deltas) acc ^= PartitionHash(d.tuple, keys);
      benchmark::DoNotOptimize(acc);
    });
    const double columnar_s = TimeSeconds(reps, [&] {
      std::vector<uint64_t> h;
      PartitionHashRows(*batch, keys, &h);
      benchmark::DoNotOptimize(h.data());
    });
    EmitPair("partition-hash", n, reps, scalar_s, columnar_s);
  }
}
BENCHMARK(BM_PartitionHash)->Unit(benchmark::kMillisecond)->Iterations(1);

// ---------------------------------------------------------------------
// Kernel: the coalescer's per-key weight fold on a fold-heavy insert
// stream (each key carries one distinct tuple, so n rows net to one
// weighted insert per key). Same DeltaCoalescer, columnar option off/on;
// the input copy is paid identically on both sides.
void BM_CoalesceFold(benchmark::State& state) {
  const size_t n = Rows();
  const DeltaVec deltas =
      MakeIntStream(n, 512, 53, /*key_determines_row=*/true);
  CoalesceOptions scalar_opts;
  scalar_opts.key_fields = {0};
  CoalesceOptions columnar_opts = scalar_opts;
  columnar_opts.columnar = true;
  const DeltaCoalescer scalar_fold(scalar_opts);
  const DeltaCoalescer columnar_fold(columnar_opts);

  CoalesceStats s_stats, c_stats;
  auto s_out = scalar_fold.Coalesce(deltas, &s_stats);
  auto c_out = columnar_fold.Coalesce(deltas, &c_stats);
  if (!s_out.ok() || !c_out.ok() || *s_out != *c_out) {
    Die("coalesce", "output");
  }
  if (s_stats.deltas_out != c_stats.deltas_out ||
      s_stats.folded != c_stats.folded ||
      s_stats.bytes_saved != c_stats.bytes_saved) {
    Die("coalesce", "stats");
  }
  if (c_stats.columnar_rows != static_cast<int64_t>(n)) {
    Die("coalesce", "columnar_rows meter");
  }

  const int reps = Reps(n, 1000000);
  for (auto _ : state) {
    const double scalar_s = TimeSeconds(reps, [&] {
      CoalesceStats stats;
      auto out = scalar_fold.Coalesce(deltas, &stats);
      benchmark::DoNotOptimize(out->size());
    });
    const double columnar_s = TimeSeconds(reps, [&] {
      CoalesceStats stats;
      auto out = columnar_fold.Coalesce(deltas, &stats);
      benchmark::DoNotOptimize(out->size());
    });
    EmitPair("coalesce", n, reps, scalar_s, columnar_s);
  }
}
BENCHMARK(BM_CoalesceFold)->Unit(benchmark::kMillisecond)->Iterations(1);

// ---------------------------------------------------------------------
// Kernel: a full group-by consume over the linear aggregates (sum, count,
// avg — the ones with typed weighted fast paths; min/max cost is multiset
// bookkeeping that boxes identically on both planes),
// EngineConfig::columnar_batches off vs on — the end-to-end operator
// cost, not just the fold.
struct GroupByRun {
  std::vector<Tuple> results;
  double seconds = 0;
};

GroupByRun RunGroupBy(const DeltaVec& deltas, bool columnar, int reps) {
  Network network(1);
  PartitionMap pmap({0}, 1);
  UdfRegistry udfs;
  StorageCatalog storage;
  MetricsRegistry metrics;
  VoteBoard votes;
  CheckpointStore checkpoints;
  EngineConfig config;
  config.columnar_batches = columnar;
  ExecContext ctx;
  ctx.network = &network;
  ctx.pmap = &pmap;
  ctx.udfs = &udfs;
  ctx.storage = &storage;
  ctx.metrics = &metrics;
  ctx.votes = &votes;
  ctx.checkpoints = &checkpoints;
  ctx.config = &config;

  constexpr size_t kChunk = 2048;
  GroupByRun run;
  run.seconds = TimeSeconds(reps, [&] {
    GroupByOp::Params params;
    params.key_fields = {0};
    params.aggs = {{AggKind::kSum, 1, "sum"},
                   {AggKind::kCount, -1, "n"},
                   {AggKind::kAvg, 2, "avg"}};
    params.mode = GroupByOp::Mode::kStratum;
    GroupByOp gb(0, params);
    SinkOp sink(1);
    gb.AddOutput(&sink, 0);
    if (!gb.Open(&ctx).ok() || !sink.Open(&ctx).ok()) Die("group", "open");
    for (size_t i = 0; i < deltas.size(); i += kChunk) {
      const size_t end = std::min(deltas.size(), i + kChunk);
      DeltaVec chunk(deltas.begin() + static_cast<long>(i),
                     deltas.begin() + static_cast<long>(end));
      if (!gb.Consume(0, std::move(chunk)).ok()) Die("group", "consume");
    }
    Punctuation punct;
    punct.kind = Punctuation::Kind::kEndOfStratum;
    punct.stratum = 0;
    if (!gb.OnPunct(0, punct).ok()) Die("group", "punct");
    run.results = sink.results().tuples();
  });
  std::sort(run.results.begin(), run.results.end());
  return run;
}

void BM_GroupFold(benchmark::State& state) {
  const size_t n = Rows();
  const DeltaVec deltas = MakeIntStream(n, 512, 71);
  {
    GroupByRun s = RunGroupBy(deltas, /*columnar=*/false, 1);
    GroupByRun c = RunGroupBy(deltas, /*columnar=*/true, 1);
    if (s.results != c.results) Die("group", "results");
  }
  const int reps = Reps(n, 1000000);
  for (auto _ : state) {
    const double scalar_s = RunGroupBy(deltas, false, reps).seconds;
    const double columnar_s = RunGroupBy(deltas, true, reps).seconds;
    EmitPair("group", n, reps, scalar_s, columnar_s);
  }
}
BENCHMARK(BM_GroupFold)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace rexbench

int main(int argc, char** argv) {
  rexbench::PrintHeader("colplane",
                        "Columnar delta-plane kernels — scalar vs "
                        "vectorized, bit-identity checked");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
