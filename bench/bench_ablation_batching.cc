// Ablation (§4.2): UDC input batching. REX amortizes the per-invocation
// overhead of dynamically dispatched user code (Java reflection in the
// original) across batches of input tuples. We sweep the batch size with a
// nonzero emulated invocation overhead and measure an applyFunction-heavy
// pipeline.
#include "workloads.h"

namespace rexbench {
namespace {

Result<double> RunWithBatch(size_t batch_size, int invoke_overhead) {
  const std::string label = "batch=" + std::to_string(batch_size);
  EngineConfig cfg = BenchEngineConfig(4);
  cfg.udf_batch_size = batch_size;
  cfg.udf_invoke_overhead = invoke_overhead;
  cfg.cache_deterministic_udfs = false;  // isolate the batching effect
  Cluster cluster(cfg);

  LineitemGenOptions opt;
  opt.num_rows = static_cast<int64_t>(20000 * BenchScale());
  REX_RETURN_NOT_OK(cluster.CreateTable(
      "lineitem",
      Schema{{"orderkey", ValueType::kInt},
             {"linenumber", ValueType::kInt},
             {"quantity", ValueType::kDouble},
             {"extendedprice", ValueType::kDouble},
             {"tax", ValueType::kDouble}},
      0, GenerateLineitem(opt)));

  TableUdf udf;
  udf.name = "taxed_price";
  udf.deterministic = false;
  udf.fn = [](const Delta& d) -> Result<DeltaVec> {
    REX_ASSIGN_OR_RETURN(double price, d.tuple.field(3).ToDouble());
    REX_ASSIGN_OR_RETURN(double tax, d.tuple.field(4).ToDouble());
    return DeltaVec{
        d.WithTuple(Tuple{d.tuple.field(0), Value(price * (1 + tax))})};
  };
  REX_RETURN_NOT_OK(cluster.udfs()->RegisterTable(udf));

  PlanSpec plan;
  ScanOp::Params scan;
  scan.table = "lineitem";
  int top = plan.AddScan(scan);
  top = plan.AddApplyFn(top, "taxed_price");
  GroupByOp::Params agg;
  agg.aggs = {GroupByOp::AggSpec{AggKind::kSum, 1, "total"}};
  agg.mode = GroupByOp::Mode::kStratum;
  top = plan.AddGroupBy(top, agg);
  plan.AddSink(top);
  REX_ASSIGN_OR_RETURN(QueryRunResult run, cluster.Run(plan));
  RecordProfile(label, std::move(run.profile));
  return run.total_seconds;
}

void BM_BatchSweep(benchmark::State& state) {
  for (auto _ : state) {
    for (size_t batch : {size_t{1}, size_t{8}, size_t{64}, size_t{512}}) {
      auto t = RunWithBatch(batch, /*invoke_overhead=*/40);
      Row("ablA1", "udc-batching", static_cast<double>(batch),
          t.ok() ? *t : -1, "s");
    }
  }
}
BENCHMARK(BM_BatchSweep)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace rexbench

int main(int argc, char** argv) {
  rexbench::PrintHeader("Ablation A1",
                        "UDC input batching (§4.2): batch size sweep with "
                        "reflection-style invocation overhead");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  rexbench::WriteBenchReport("ablation_batching");
  return 0;
}
