// Figure 6: recursive behavior for PageRank on the DBPedia-like graph.
// Series: Hadoop LB, HaLoop LB, REX wrap, REX no-Δ, REX Δ; (a) cumulative
// runtime and (b) runtime per iteration.
#include "workloads.h"

namespace rexbench {
namespace {

constexpr int kWorkers = 4;
constexpr int kIterations = 26;  // the paper plots 26 DBPedia iterations

GraphData& Graph() {
  static GraphData graph = GenerateDbpediaLike(DbpediaScale());
  return graph;
}

void BM_HadoopLB(benchmark::State& state) {
  for (auto _ : state) {
    auto r = RunMrPageRankSeries(Graph(), /*haloop=*/false, kWorkers,
                                 kIterations);
    if (r.ok()) EmitRecursiveSeries("fig6", "HadoopLB", *r);
  }
}
BENCHMARK(BM_HadoopLB)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_HaLoopLB(benchmark::State& state) {
  for (auto _ : state) {
    auto r = RunMrPageRankSeries(Graph(), /*haloop=*/true, kWorkers,
                                 kIterations);
    if (r.ok()) EmitRecursiveSeries("fig6", "HaLoopLB", *r);
  }
}
BENCHMARK(BM_HaLoopLB)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_RexWrap(benchmark::State& state) {
  for (auto _ : state) {
    auto r = RunRexPageRank(Graph(), RexMode::kWrap, kWorkers, kIterations);
    if (r.ok()) EmitRecursiveSeries("fig6", "REXwrap", *r);
  }
}
BENCHMARK(BM_RexWrap)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_RexNoDelta(benchmark::State& state) {
  for (auto _ : state) {
    auto r = RunRexPageRank(Graph(), RexMode::kNoDelta, kWorkers,
                            kIterations);
    if (r.ok()) EmitRecursiveSeries("fig6", "REXnoDelta", *r);
  }
}
BENCHMARK(BM_RexNoDelta)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_RexDelta(benchmark::State& state) {
  for (auto _ : state) {
    auto r = RunRexPageRank(Graph(), RexMode::kDelta, kWorkers, kIterations);
    if (r.ok()) EmitRecursiveSeries("fig6", "REXdelta", *r);
  }
}
BENCHMARK(BM_RexDelta)->Unit(benchmark::kMillisecond)->Iterations(1);

// Coalescing ablation pair: same query, pre-aggregation off so the raw
// per-edge contribution stream reaches the shuffle, coalescing on vs off.
// The coalesce-on profile must report lower tuples_sent / bytes_sent.
void BM_RexDeltaCoalesce(benchmark::State& state) {
  for (auto _ : state) {
    RexRunTweaks tweaks;
    tweaks.preaggregate = false;
    auto r = RunRexPageRank(Graph(), RexMode::kDelta, kWorkers, kIterations,
                            0.01, tweaks);
    if (r.ok()) EmitRecursiveSeries("fig6", "REXdelta-coalesce", *r);
  }
}
BENCHMARK(BM_RexDeltaCoalesce)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_RexDeltaNoCoalesce(benchmark::State& state) {
  for (auto _ : state) {
    RexRunTweaks tweaks;
    tweaks.preaggregate = false;
    tweaks.coalesce_deltas = false;
    auto r = RunRexPageRank(Graph(), RexMode::kDelta, kWorkers, kIterations,
                            0.01, tweaks);
    if (r.ok()) EmitRecursiveSeries("fig6", "REXdelta-nocoalesce", *r);
  }
}
BENCHMARK(BM_RexDeltaNoCoalesce)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Columnar-plane ablation pair: identical query and knobs, columnar delta
// batches on vs off. Results are bit-identical (the CI smoke job asserts
// equal tuples_sent / strata); the columnar profile must report
// batch_rows > 0 and the scalar one batch_rows == 0.
void BM_RexDeltaColumnar(benchmark::State& state) {
  for (auto _ : state) {
    auto r = RunRexPageRank(Graph(), RexMode::kDelta, kWorkers, kIterations);
    if (r.ok()) EmitRecursiveSeries("fig6", "REXdelta-columnar", *r);
  }
}
BENCHMARK(BM_RexDeltaColumnar)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_RexDeltaScalar(benchmark::State& state) {
  for (auto _ : state) {
    RexRunTweaks tweaks;
    tweaks.columnar_batches = false;
    auto r = RunRexPageRank(Graph(), RexMode::kDelta, kWorkers, kIterations,
                            0.01, tweaks);
    if (r.ok()) EmitRecursiveSeries("fig6", "REXdelta-scalar", *r);
  }
}
BENCHMARK(BM_RexDeltaScalar)->Unit(benchmark::kMillisecond)->Iterations(1);

// Differential-compression ablation pair: identical query and knobs, the
// checkpoint/wire codec on vs off. Results are bit-identical (the CI smoke
// job asserts equal tuples_sent / strata); the diff profile must report
// ckpt_stored_bytes < ckpt_raw_bytes on this checkpoint-heavy workload.
void BM_RexDeltaDiff(benchmark::State& state) {
  for (auto _ : state) {
    auto r = RunRexPageRank(Graph(), RexMode::kDelta, kWorkers, kIterations);
    if (r.ok()) EmitRecursiveSeries("fig6", "REXdelta-diff", *r);
  }
}
BENCHMARK(BM_RexDeltaDiff)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_RexDeltaNoDiff(benchmark::State& state) {
  for (auto _ : state) {
    RexRunTweaks tweaks;
    tweaks.diff_checkpoints = false;
    tweaks.diff_wire_runs = false;
    auto r = RunRexPageRank(Graph(), RexMode::kDelta, kWorkers, kIterations,
                            0.01, tweaks);
    if (r.ok()) EmitRecursiveSeries("fig6", "REXdelta-nodiff", *r);
  }
}
BENCHMARK(BM_RexDeltaNoDiff)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace rexbench

int main(int argc, char** argv) {
  rexbench::PrintHeader(
      "Figure 6", "PageRank (DBPedia-like) — cumulative & per-iteration");
  rexbench::Note("graph: " + std::to_string(rexbench::Graph().num_vertices) +
                 " vertices, " +
                 std::to_string(rexbench::Graph().edges.size()) + " edges");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  rexbench::WriteBenchReport("fig06");
  return 0;
}
