// Figure 7: recursive behavior for shortest path on the DBPedia-like
// graph. Hadoop/HaLoop use relation-level Δᵢ (frontier) updates and run 6
// iterations (the paper's 99%-reachability cut); REX Δ runs ALL iterations
// to full reachability, with the post-frontier tail costing almost nothing
// (§6.3 "Improved Accuracy").
#include "workloads.h"

namespace rexbench {
namespace {

constexpr int kWorkers = 4;
constexpr int kCutIterations = 6;
constexpr int kFullIterations = 75;

GraphData& Graph() {
  static GraphData graph = GenerateDbpediaLike(DbpediaScale());
  return graph;
}

void BM_HadoopLB(benchmark::State& state) {
  for (auto _ : state) {
    auto r = RunMrSsspSeries(Graph(), false, kWorkers, kCutIterations);
    if (r.ok()) EmitRecursiveSeries("fig7", "HadoopLB", *r);
  }
}
BENCHMARK(BM_HadoopLB)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_HaLoopLB(benchmark::State& state) {
  for (auto _ : state) {
    auto r = RunMrSsspSeries(Graph(), true, kWorkers, kCutIterations);
    if (r.ok()) EmitRecursiveSeries("fig7", "HaLoopLB", *r);
  }
}
BENCHMARK(BM_HaLoopLB)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_RexNoDelta(benchmark::State& state) {
  for (auto _ : state) {
    auto r = RunRexSssp(Graph(), /*delta=*/false, kWorkers, kCutIterations);
    if (r.ok()) EmitRecursiveSeries("fig7", "REXnoDelta", *r);
  }
}
BENCHMARK(BM_RexNoDelta)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_RexDelta(benchmark::State& state) {
  for (auto _ : state) {
    auto r = RunRexSssp(Graph(), /*delta=*/true, kWorkers, kFullIterations);
    if (r.ok()) {
      EmitRecursiveSeries("fig7", "REXdelta", *r);
      // The accuracy point: total time of iterations 7..end.
      double tail = 0;
      for (size_t i = kCutIterations;
           i < r->per_iteration_seconds.size(); ++i) {
        tail += r->per_iteration_seconds[i];
      }
      Row("fig7", "REXdelta/tail7+", static_cast<double>(r->iterations),
          tail, "s");
    }
  }
}
BENCHMARK(BM_RexDelta)->Unit(benchmark::kMillisecond)->Iterations(1);

// Coalescing ablation pair: pre-aggregation off so duplicate distance
// candidates reach the shuffle raw, coalescing on vs off. The coalesce-on
// profile must report lower tuples_sent / bytes_sent.
void BM_RexDeltaCoalesce(benchmark::State& state) {
  for (auto _ : state) {
    RexRunTweaks tweaks;
    tweaks.preaggregate = false;
    auto r = RunRexSssp(Graph(), /*delta=*/true, kWorkers, kFullIterations,
                        0, tweaks);
    if (r.ok()) EmitRecursiveSeries("fig7", "REXdelta-coalesce", *r);
  }
}
BENCHMARK(BM_RexDeltaCoalesce)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_RexDeltaNoCoalesce(benchmark::State& state) {
  for (auto _ : state) {
    RexRunTweaks tweaks;
    tweaks.preaggregate = false;
    tweaks.coalesce_deltas = false;
    auto r = RunRexSssp(Graph(), /*delta=*/true, kWorkers, kFullIterations,
                        0, tweaks);
    if (r.ok()) EmitRecursiveSeries("fig7", "REXdelta-nocoalesce", *r);
  }
}
BENCHMARK(BM_RexDeltaNoCoalesce)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Columnar-plane ablation pair: identical query and knobs, columnar delta
// batches on vs off. Results are bit-identical (the CI smoke job asserts
// equal tuples_sent / strata); the columnar profile must report
// batch_rows > 0 and the scalar one batch_rows == 0.
void BM_RexDeltaColumnar(benchmark::State& state) {
  for (auto _ : state) {
    auto r = RunRexSssp(Graph(), /*delta=*/true, kWorkers, kFullIterations);
    if (r.ok()) EmitRecursiveSeries("fig7", "REXdelta-columnar", *r);
  }
}
BENCHMARK(BM_RexDeltaColumnar)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_RexDeltaScalar(benchmark::State& state) {
  for (auto _ : state) {
    RexRunTweaks tweaks;
    tweaks.columnar_batches = false;
    auto r = RunRexSssp(Graph(), /*delta=*/true, kWorkers, kFullIterations,
                        0, tweaks);
    if (r.ok()) EmitRecursiveSeries("fig7", "REXdelta-scalar", *r);
  }
}
BENCHMARK(BM_RexDeltaScalar)->Unit(benchmark::kMillisecond)->Iterations(1);

// Differential-compression ablation pair: identical query and knobs, the
// checkpoint/wire codec on vs off. Results are bit-identical (the CI smoke
// job asserts equal tuples_sent / strata).
void BM_RexDeltaDiff(benchmark::State& state) {
  for (auto _ : state) {
    auto r = RunRexSssp(Graph(), /*delta=*/true, kWorkers, kFullIterations);
    if (r.ok()) EmitRecursiveSeries("fig7", "REXdelta-diff", *r);
  }
}
BENCHMARK(BM_RexDeltaDiff)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_RexDeltaNoDiff(benchmark::State& state) {
  for (auto _ : state) {
    RexRunTweaks tweaks;
    tweaks.diff_checkpoints = false;
    tweaks.diff_wire_runs = false;
    auto r = RunRexSssp(Graph(), /*delta=*/true, kWorkers, kFullIterations,
                        0, tweaks);
    if (r.ok()) EmitRecursiveSeries("fig7", "REXdelta-nodiff", *r);
  }
}
BENCHMARK(BM_RexDeltaNoDiff)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace rexbench

int main(int argc, char** argv) {
  rexbench::PrintHeader("Figure 7",
                        "Shortest path (DBPedia-like) — cumulative & "
                        "per-iteration; REX Δ runs to full reachability");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  rexbench::WriteBenchReport("fig07");
  return 0;
}
