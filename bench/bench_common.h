// Shared helpers for the figure-reproduction benchmarks.
//
// Every bench binary reproduces one table/figure from §6 of the paper. It
// prints machine-readable series rows
//
//   FIGURE <id> | series=<name> x=<x> y=<value> unit=<unit>
//
// followed by the google-benchmark report for the headline configurations.
// Workloads are scaled (synthetic stand-ins for DBPedia/Twitter/TPC-H, see
// DESIGN.md) so each binary completes in seconds; set REX_BENCH_SCALE to
// scale all inputs up or down (default 1.0 = the committed bench scale,
// roughly 1/10 of the paper's DBPedia for graph workloads).
#ifndef REX_BENCH_BENCH_COMMON_H_
#define REX_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "obs/profile.h"

namespace rexbench {

inline double BenchScale() {
  const char* env = std::getenv("REX_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  double v = std::atof(env);
  return v > 0 ? v : 1.0;
}

/// Graph scale factors relative to the paper's datasets. At scale 1.0 the
/// "DBPedia-like" graph is ~3.3K vertices / ~48K edges (1% of the paper's)
/// and the "Twitter-like" graph is ~4.1K vertices / ~140K edges (0.01%).
inline double DbpediaScale() { return 0.1 * BenchScale(); }
inline double TwitterScale() { return 0.1 * BenchScale(); }

inline void PrintHeader(const char* figure, const char* title) {
  std::printf("==== %s: %s ====\n", figure, title);
}

inline void Row(const char* figure, const std::string& series, double x,
                double y, const char* unit) {
  std::printf("FIGURE %s | series=%-14s x=%-10.4g y=%-12.6g unit=%s\n",
              figure, series.c_str(), x, y, unit);
}

inline void Note(const std::string& text) {
  std::printf("NOTE %s\n", text.c_str());
}

/// Per-binary accumulator for the structured run reports: every profiled
/// run is recorded under a series label, and the binary writes one
/// BENCH_<name>.json on exit (schema in src/obs/profile.h, checked by the
/// golden-schema test).
class BenchProfileLog {
 public:
  static BenchProfileLog& Instance() {
    static BenchProfileLog log;
    return log;
  }

  void Record(rex::QueryProfile profile) {
    runs_.push_back(std::move(profile));
  }
  const std::vector<rex::QueryProfile>& runs() const { return runs_; }

 private:
  BenchProfileLog() = default;
  std::vector<rex::QueryProfile> runs_;
};

/// Labels and records one run's profile in the binary-wide log.
inline void RecordProfile(const std::string& label,
                          rex::QueryProfile profile) {
  profile.name = label;
  BenchProfileLog::Instance().Record(std::move(profile));
}

/// Writes BENCH_<name>.json in the working directory. Call once at the end
/// of main; a failed write is reported but does not fail the bench.
inline void WriteBenchReport(const std::string& name) {
  const std::string path = "BENCH_" + name + ".json";
  const auto& runs = BenchProfileLog::Instance().runs();
  rex::Status st = rex::WriteBenchReportFile(path, name, runs);
  if (st.ok()) {
    std::printf("REPORT %s (%zu run%s)\n", path.c_str(), runs.size(),
                runs.size() == 1 ? "" : "s");
  } else {
    std::fprintf(stderr, "REPORT %s failed: %s\n", path.c_str(),
                 st.ToString().c_str());
  }
}

}  // namespace rexbench

#endif  // REX_BENCH_BENCH_COMMON_H_
