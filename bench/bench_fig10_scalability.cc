// Figure 10: (a) PageRank runtime vs number of worker nodes, with the
// single-machine commercial-DBMS comparison extended by a perfect-linear-
// speedup lower bound ("DBMS X LB"); (b) speedup relative to one node.
//
// Note: the simulated cluster's workers are threads; on machines with few
// cores the wall-clock speedup saturates at the core count, while the
// per-worker partitioning still divides the work (the paper's 28 machines
// were physical).
#include "dbmsx/dbmsx.h"
#include "workloads.h"

namespace rexbench {
namespace {

constexpr int kIterations = 30;

GraphData& Graph() {
  static GraphData graph = GenerateDbpediaLike(DbpediaScale());
  return graph;
}

void BM_RexScaling(benchmark::State& state) {
  for (auto _ : state) {
    double one_node = 0;
    for (int workers : {1, 2, 4, 8}) {
      auto r = RunRexPageRank(Graph(), RexMode::kDelta, workers,
                              kIterations);
      if (!r.ok()) {
        Note("scaling run failed: " + r.status().ToString());
        return;
      }
      RecordProfile("REXdelta/" + std::to_string(workers) + "w",
                    r->profile);
      Row("fig10a", "REXdelta", workers, r->total_seconds, "s");
      if (workers == 1) one_node = r->total_seconds;
      Row("fig10b", "REXdelta/speedup", workers,
          one_node / r->total_seconds, "x");
    }
  }
}
BENCHMARK(BM_RexScaling)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_DbmsX(benchmark::State& state) {
  for (auto _ : state) {
    DbmsXConfig cfg;
    cfg.iterations = kIterations;
    auto run = RunDbmsXPageRank(Graph(), cfg);
    if (!run.ok()) {
      Note("dbmsx run failed: " + run.status().ToString());
      return;
    }
    // Single machine measured; multi-node points are the paper's
    // perfect-linear-speedup LOWER BOUND (license-limited, §6.4).
    for (int nodes : {1, 2, 4, 8}) {
      Row("fig10a", "DBMSX-LB", nodes, run->total_seconds / nodes, "s");
    }
    Row("fig10a", "DBMSX-accumulated-tuples", 1,
        static_cast<double>(run->accumulated_tuples), "tuples");
  }
}
BENCHMARK(BM_DbmsX)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace rexbench

int main(int argc, char** argv) {
  rexbench::PrintHeader("Figure 10",
                        "Scalability & speedup (PageRank, DBPedia-like) + "
                        "DBMS X lower bound");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  rexbench::WriteBenchReport("fig10");
  return 0;
}
