// Tests for the rolling-hash differential codec (common/delta_codec.h):
// round-trip bit-identity (both decode paths), compression on self-similar
// payloads, and decoder hardening against hostile bytes.
#include "common/delta_codec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>

#include "common/rng.h"

namespace rex {
namespace {

constexpr size_t kNoCap = static_cast<size_t>(-1);

std::string Decode(const std::string& ref, const std::string& delta,
                   size_t cap = kNoCap) {
  Result<std::string> out = DeltaCodecDecode(ref, delta, cap);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  return out.ok() ? *out : std::string();
}

/// Round-trips target against ref through BOTH decode paths and asserts
/// bit-identity.
void ExpectRoundTrip(const std::string& ref, const std::string& target) {
  const std::string delta = DeltaCodecEncode(ref, target);
  EXPECT_TRUE(DeltaCodecLooksEncoded(delta));
  EXPECT_EQ(Decode(ref, delta), target);
  std::string buf = ref;
  Status st = DeltaCodecDecodeInPlace(&buf, delta, kNoCap);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(buf, target);
}

TEST(DeltaCodec, EmptyPayloads) {
  ExpectRoundTrip("", "");
  ExpectRoundTrip("reference bytes", "");
  ExpectRoundTrip("", "target bytes");
}

TEST(DeltaCodec, IdenticalPayloadCollapsesToOneCopy) {
  std::string payload;
  for (int i = 0; i < 500; ++i) payload += "epoch payload chunk " + std::to_string(i % 7);
  const std::string delta = DeltaCodecEncode(payload, payload);
  // header (10) + one COPY (tag + varint offset + varint len) + END.
  EXPECT_LE(delta.size(), 16u);
  EXPECT_EQ(Decode(payload, delta), payload);
}

TEST(DeltaCodec, SelfSimilarPayloadCompresses) {
  // Simulates successive checkpoint epochs: same keys/framing, a few
  // numeric bytes changed per record.
  std::string ref, target;
  Rng rng(7);
  for (int rec = 0; rec < 200; ++rec) {
    std::string framing = "key:" + std::to_string(rec) + "|value:";
    ref += framing + std::to_string(rng.Next() % 1000000);
    target += framing + std::to_string(rng.Next() % 1000000);
  }
  const std::string delta = DeltaCodecEncode(ref, target);
  // Each ~20-byte record shares ~13 framing bytes; COPY framing costs ~4.
  EXPECT_LT(delta.size(), target.size() * 3 / 4)
      << "delta " << delta.size() << " vs raw " << target.size();
  EXPECT_EQ(Decode(ref, delta), target);
}

TEST(DeltaCodec, DisjointPayloadNotMuchBiggerThanRaw) {
  std::string ref(4096, 'a');
  std::string target;
  Rng rng(11);
  for (int i = 0; i < 4096; ++i) {
    target.push_back(static_cast<char>('0' + rng.Next() % 10));
  }
  const std::string delta = DeltaCodecEncode(ref, target);
  // Worst case is one big ADD: header + op framing only. Callers gate on
  // profitability, but the overhead must stay bounded.
  EXPECT_LE(delta.size(), target.size() + 64);
  ExpectRoundTrip(ref, target);
}

TEST(DeltaCodec, RandomPayloadPairsRoundTrip) {
  Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t ref_len = rng.Next() % 600;
    std::string ref;
    for (size_t i = 0; i < ref_len; ++i) {
      ref.push_back(static_cast<char>(rng.Next() % 8 + 'a'));  // repetitive
    }
    // Derive the target by mutating the reference: point edits, splices,
    // duplicated slices — the shapes real epochs take.
    std::string target = ref;
    const int edits = static_cast<int>(rng.Next() % 8);
    for (int e = 0; e < edits && !target.empty(); ++e) {
      const size_t pos = rng.Next() % target.size();
      switch (rng.Next() % 4) {
        case 0:
          target[pos] = static_cast<char>(rng.Next() % 8 + 'a');
          break;
        case 1:
          target.insert(pos, std::string(rng.Next() % 20, 'z'));
          break;
        case 2:
          target.erase(pos, rng.Next() % 20);
          break;
        default:
          target += target.substr(pos, rng.Next() % 40);
          break;
      }
    }
    ExpectRoundTrip(ref, target);
  }
}

TEST(DeltaCodec, InPlaceHandlesConflictingCopies) {
  // Force a COPY whose source the previous op overwrote: target repeats a
  // late reference slice at the front AND keeps the original prefix after
  // it, so in-place reconstruction must save conflicted source bytes.
  std::string ref;
  for (int i = 0; i < 64; ++i) ref += "block" + std::to_string(i) + ";";
  std::string target = ref.substr(ref.size() - 120) + ref + ref.substr(0, 80);
  ExpectRoundTrip(ref, target);
}

TEST(DeltaCodec, InPlaceShrinkAndGrow) {
  std::string ref;
  for (int i = 0; i < 300; ++i) ref += "tuple payload " + std::to_string(i);
  ExpectRoundTrip(ref, ref.substr(40, 200));  // shrink
  ExpectRoundTrip(ref, ref + ref);            // grow
}

// ------------------------------------------------- hostile-input guards --

std::string ValidDelta(const std::string& ref, const std::string& target) {
  return DeltaCodecEncode(ref, target);
}

TEST(DeltaCodecHardening, RejectsBadMagicAndVersion) {
  const std::string ref = "reference reference reference";
  std::string delta = ValidDelta(ref, ref);
  delta[0] = static_cast<char>(0x00);
  EXPECT_EQ(DeltaCodecDecode(ref, delta, kNoCap).status().code(),
            StatusCode::kParseError);
  delta = ValidDelta(ref, ref);
  delta[1] = static_cast<char>(99);
  EXPECT_EQ(DeltaCodecDecode(ref, delta, kNoCap).status().code(),
            StatusCode::kParseError);
}

TEST(DeltaCodecHardening, RejectsReferenceSizeMismatch) {
  const std::string ref = "the reference payload bytes!";
  const std::string delta = ValidDelta(ref, ref);
  const std::string wrong_ref = ref + "x";
  EXPECT_EQ(DeltaCodecDecode(wrong_ref, delta, kNoCap).status().code(),
            StatusCode::kInvalidArgument);
  std::string buf = wrong_ref;
  EXPECT_EQ(DeltaCodecDecodeInPlace(&buf, delta, kNoCap).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(buf, wrong_ref);  // untouched on error
}

TEST(DeltaCodecHardening, RejectsOutputAboveCap) {
  const std::string ref = "small reference, large target";
  const std::string target(4096, 'q');
  const std::string delta = ValidDelta(ref, target);
  EXPECT_EQ(DeltaCodecDecode(ref, delta, 1024).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_TRUE(DeltaCodecDecode(ref, delta, 4096).ok());
}

TEST(DeltaCodecHardening, RejectsCopyOutsideReference) {
  // Hand-build: COPY(offset=4, len=1000) against a 16-byte reference.
  const std::string ref(16, 'r');
  std::string delta;
  delta.push_back(static_cast<char>(0xD5));  // magic
  delta.push_back(static_cast<char>(0x01));  // version
  auto u32 = [&delta](uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      delta.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  };
  auto varint = [&delta](uint64_t v) {
    while (v >= 0x80) {
      delta.push_back(static_cast<char>((v & 0x7f) | 0x80));
      v >>= 7;
    }
    delta.push_back(static_cast<char>(v));
  };
  u32(1000);                                 // target_size
  u32(16);                                   // ref_size
  delta.push_back(static_cast<char>(0x01));  // COPY
  varint(8);                                 // zigzag(4 - 0)
  varint(1000);                              // len: runs past the reference
  delta.push_back(static_cast<char>(0x00));  // END
  EXPECT_EQ(DeltaCodecDecode(ref, delta, kNoCap).status().code(),
            StatusCode::kOutOfRange);

  // Negative resolved offset: zigzag(-1) with no prior COPY.
  std::string neg = delta.substr(0, 10);
  neg.push_back(static_cast<char>(0x01));  // COPY
  neg.push_back(static_cast<char>(0x01));  // zigzag(-1)
  neg.push_back(static_cast<char>(0x08));  // len 8
  neg.push_back(static_cast<char>(0x00));  // END
  EXPECT_EQ(DeltaCodecDecode(ref, neg, kNoCap).status().code(),
            StatusCode::kOutOfRange);
}

TEST(DeltaCodecHardening, RejectsTruncationAtEveryPrefix) {
  const std::string ref = "shared shared shared shared shared!";
  const std::string target = "shared shared shared NOVEL shared!";
  const std::string delta = ValidDelta(ref, target);
  for (size_t cut = 0; cut < delta.size(); ++cut) {
    const std::string truncated = delta.substr(0, cut);
    EXPECT_FALSE(DeltaCodecDecode(ref, truncated, kNoCap).ok())
        << "prefix of " << cut << " bytes decoded";
    std::string buf = ref;
    EXPECT_FALSE(DeltaCodecDecodeInPlace(&buf, truncated, kNoCap).ok());
    EXPECT_EQ(buf, ref);
  }
}

TEST(DeltaCodecHardening, RejectsTrailingGarbage) {
  const std::string ref = "payload payload payload payload";
  std::string delta = ValidDelta(ref, ref);
  delta.push_back('\x00');
  EXPECT_EQ(DeltaCodecDecode(ref, delta, kNoCap).status().code(),
            StatusCode::kParseError);
}

TEST(DeltaCodecHardening, ByteFuzzNeverCrashesOrOverflows) {
  // Flip every byte of a valid delta through several values: decode must
  // either fail cleanly or produce at most target_size bytes — never
  // crash, hang, or read outside the reference (ASan-verified in CI).
  std::string ref, target;
  Rng rng(1234);
  for (int i = 0; i < 40; ++i) {
    ref += "rec" + std::to_string(i) + ":" + std::to_string(rng.Next() % 100);
    target +=
        "rec" + std::to_string(i) + ":" + std::to_string(rng.Next() % 100);
  }
  const std::string delta = ValidDelta(ref, target);
  for (size_t pos = 0; pos < delta.size(); ++pos) {
    for (uint8_t flip : {0x01, 0x80, 0xff}) {
      std::string fuzzed = delta;
      fuzzed[pos] = static_cast<char>(fuzzed[pos] ^ flip);
      Result<std::string> out = DeltaCodecDecode(ref, fuzzed, 1 << 20);
      if (out.ok()) EXPECT_LE(out->size(), size_t{1} << 20);
      std::string buf = ref;
      (void)DeltaCodecDecodeInPlace(&buf, fuzzed, 1 << 20);
    }
  }
}

TEST(DeltaCodecHardening, RandomBytesRejected) {
  Rng rng(99);
  const std::string ref = "some reference payload";
  for (int trial = 0; trial < 500; ++trial) {
    std::string junk;
    const size_t len = rng.Next() % 64;
    for (size_t i = 0; i < len; ++i) {
      junk.push_back(static_cast<char>(rng.Next() & 0xff));
    }
    Result<std::string> out = DeltaCodecDecode(ref, junk, 1 << 16);
    if (out.ok()) EXPECT_LE(out->size(), size_t{1} << 16);
  }
}

}  // namespace
}  // namespace rex
