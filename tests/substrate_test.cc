// Substrate unit tests: channels, the network's quiescence accounting and
// failure semantics, spill buffers, the flat map, TupleSet, and
// expressions.
#include <gtest/gtest.h>

#include <thread>

#include "common/flat_map.h"
#include "common/rng.h"
#include "exec/aggregates.h"
#include "exec/expr.h"
#include "exec/tuple_set.h"
#include "net/network.h"
#include "storage/spill.h"

namespace rex {
namespace {

// ---------------------------------------------------------------- Channel --

TEST(ChannelTest, FifoOrder) {
  Channel ch;
  for (int i = 0; i < 10; ++i) {
    Message m;
    m.target_op = i;
    ASSERT_TRUE(ch.Push(std::move(m)));
  }
  for (int i = 0; i < 10; ++i) {
    auto m = ch.Pop();
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->target_op, i);
  }
}

TEST(ChannelTest, CloseDrainsThenEnds) {
  Channel ch;
  Message m;
  ASSERT_TRUE(ch.Push(m));
  ch.Close();
  EXPECT_FALSE(ch.Push(m));      // closed: no new messages
  EXPECT_TRUE(ch.Pop().has_value());   // drains the queued one
  EXPECT_FALSE(ch.Pop().has_value());  // then reports end
  ch.Reopen();
  EXPECT_TRUE(ch.Push(m));
}

TEST(ChannelTest, BlockingPopWakesOnPush) {
  Channel ch;
  std::thread consumer([&ch] {
    auto m = ch.Pop();
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->target_op, 42);
  });
  Message m;
  m.target_op = 42;
  ASSERT_TRUE(ch.Push(std::move(m)));
  consumer.join();
}

// ---------------------------------------------------------------- Network --

TEST(NetworkTest, MetersOnlyCrossWorkerData) {
  Network net(3);
  DeltaVec payload{Delta::Insert(Tuple{Value(1), Value(2.5)})};
  ASSERT_TRUE(net.Send(Message::Data(0, 1, 5, 0, payload)).ok());
  ASSERT_TRUE(net.Send(Message::Data(1, 1, 5, 0, payload)).ok());  // loopback
  EXPECT_GT(net.BytesSentBy(0), 0);
  EXPECT_EQ(net.BytesSentBy(1), 0);
  EXPECT_EQ(net.metrics().Value(metrics::kTuplesSent), 1);
  // Drain so quiescence holds for later users of the fixture.
  net.channel(1)->TryPop();
  net.OnMessageProcessed();
  net.channel(1)->TryPop();
  net.OnMessageProcessed();
}

TEST(NetworkTest, QuiescenceAfterProcessing) {
  Network net(2);
  ASSERT_TRUE(net.Send(Message::Control(0, ControlMsg{})).ok());
  std::thread worker([&net] {
    auto m = net.channel(0)->TryPop();
    EXPECT_TRUE(m.has_value());
    net.OnMessageProcessed();
  });
  worker.join();
  net.WaitQuiescent();  // must not hang
}

TEST(NetworkTest, SendsToFailedWorkerAreDropped) {
  Network net(2);
  net.MarkFailed(1);
  EXPECT_TRUE(net.IsFailed(1));
  ASSERT_TRUE(net.Send(Message::Control(1, ControlMsg{})).ok());
  net.WaitQuiescent();  // dropped message never counts as in-flight
  EXPECT_EQ(net.LiveWorkers(), std::vector<int>{0});
  net.Restore(1);
  EXPECT_FALSE(net.IsFailed(1));
  EXPECT_EQ(net.LiveWorkers().size(), 2u);
}

TEST(NetworkTest, FailureDrainsQueuedMessages) {
  Network net(2);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(net.Send(Message::Control(1, ControlMsg{})).ok());
  }
  net.MarkFailed(1);  // queued messages are lost, accounting restored
  net.WaitQuiescent();
}

// ------------------------------------------------------------- FlatMap64 --

TEST(FlatMap64Test, BasicOperations) {
  FlatMap64<int> map;
  EXPECT_EQ(map.Find(7), nullptr);
  map.FindOrCreate(7) = 70;
  map.FindOrCreate(9) = 90;
  ASSERT_NE(map.Find(7), nullptr);
  EXPECT_EQ(*map.Find(7), 70);
  EXPECT_EQ(*map.Find(9), 90);
  EXPECT_EQ(map.size(), 2u);
  map.FindOrCreate(7) = 71;  // upsert
  EXPECT_EQ(*map.Find(7), 71);
  EXPECT_EQ(map.size(), 2u);
  map.Clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.Find(7), nullptr);
}

TEST(FlatMap64Test, SurvivesGrowthAndCollisions) {
  FlatMap64<uint64_t> map;
  Rng rng(13);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 5000; ++i) keys.push_back(rng.Next());
  for (uint64_t k : keys) map.FindOrCreate(k) = k * 3;
  EXPECT_EQ(map.size(), keys.size());
  for (uint64_t k : keys) {
    ASSERT_NE(map.Find(k), nullptr);
    EXPECT_EQ(*map.Find(k), k * 3);
  }
  // Insertion-order iteration.
  size_t i = 0;
  for (const auto& [k, v] : map) {
    EXPECT_EQ(k, keys[i]);
    ++i;
  }
}

TEST(FlatMap64Test, ClearKeepsCapacityAndStaysCorrect) {
  FlatMap64<int> map;
  for (uint64_t round = 0; round < 5; ++round) {
    for (uint64_t k = 0; k < 1000; ++k) {
      map.FindOrCreate(HashMix(k + round * 977)) = static_cast<int>(k);
    }
    EXPECT_EQ(map.size(), 1000u);
    map.Clear();
    EXPECT_TRUE(map.empty());
  }
}

// ------------------------------------------------------------- TupleSet --

TEST(TupleSetTest, RemoveAndReplace) {
  TupleSet s;
  s.Add(Tuple{Value(1), Value("a")});
  s.Add(Tuple{Value(2), Value("b")});
  EXPECT_TRUE(s.Remove(Tuple{Value(1), Value("a")}));
  EXPECT_FALSE(s.Remove(Tuple{Value(1), Value("a")}));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.Replace(Tuple{Value(2), Value("b")},
                        Tuple{Value(2), Value("c")}));
  EXPECT_EQ(s.at(0).field(1), Value("c"));
  // Strict Replace: a miss leaves the set untouched.
  EXPECT_FALSE(s.Replace(Tuple{Value(9)}, Tuple{Value(9)}));
  EXPECT_EQ(s.size(), 1u);
  // ReplaceOrInsert is the upsert form: a miss appends.
  EXPECT_FALSE(s.ReplaceOrInsert(Tuple{Value(9)}, Tuple{Value(9)}));
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.ReplaceOrInsert(Tuple{Value(9)}, Tuple{Value(10)}));
  EXPECT_EQ(s.size(), 2u);
}

TEST(TupleSetTest, KeyValueConvenience) {
  TupleSet s;
  EXPECT_FALSE(s.Get(Value(5)).has_value());
  EXPECT_FALSE(s.Put(Value(5), Value(1.5)).has_value());
  ASSERT_TRUE(s.Get(Value(5)).has_value());
  EXPECT_EQ(*s.Get(Value(5)), Value(1.5));
  auto old = s.Put(Value(5), Value(2.5));
  ASSERT_TRUE(old.has_value());
  EXPECT_EQ(*old, Value(1.5));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_NE(s.Find(Value(5)), nullptr);
  EXPECT_EQ(s.Find(Value(6)), nullptr);
}

// ----------------------------------------------------------------- Spill --

TEST(SpillTest, RoundTripsAcrossDisk) {
  SpillableTupleBuffer buf(/*memory_budget_bytes=*/64);  // spill quickly
  std::vector<Tuple> expected;
  for (int64_t i = 0; i < 200; ++i) {
    Tuple t{Value(i), Value(static_cast<double>(i) / 3), Value("row")};
    expected.push_back(t);
    ASSERT_TRUE(buf.Append(std::move(t)).ok());
  }
  EXPECT_TRUE(buf.spilled());
  EXPECT_GT(buf.spilled_bytes(), 0);
  EXPECT_EQ(buf.num_tuples(), 200u);
  auto back = buf.ToVector();
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->size(), 200u);
  // Spilled runs come first, then memory — order within runs preserved.
  std::sort(back->begin(), back->end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(*back, expected);
  buf.Clear();
  EXPECT_EQ(buf.num_tuples(), 0u);
  EXPECT_FALSE(buf.spilled());
}

TEST(SpillTest, PureMemoryPath) {
  SpillableTupleBuffer buf(1 << 20);
  for (int64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(buf.Append(Tuple{Value(i)}).ok());
  }
  EXPECT_FALSE(buf.spilled());
  auto back = buf.ToVector();
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 50u);
}

// ------------------------------------------------------------------ Expr --

TEST(ExprTest, ArithmeticAndComparison) {
  Tuple t{Value(6), Value(2.5)};
  auto eval = [&t](ExprPtr e) {
    auto r = EvalExpr(*e, t, nullptr);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.value_or(Value());
  };
  EXPECT_EQ(eval(Expr::Binary(BinOp::kAdd, Expr::Column(0),
                              Expr::Const(Value(4)))),
            Value(10));
  EXPECT_EQ(eval(Expr::Binary(BinOp::kMul, Expr::Column(0),
                              Expr::Column(1))),
            Value(15.0));
  EXPECT_EQ(eval(Expr::Binary(BinOp::kDiv, Expr::Column(0),
                              Expr::Const(Value(4)))),
            Value(1.5));  // SQL-style: division is always real
  EXPECT_EQ(eval(Expr::Binary(BinOp::kMod, Expr::Column(0),
                              Expr::Const(Value(4)))),
            Value(2));
  EXPECT_EQ(eval(Expr::Binary(BinOp::kLe, Expr::Column(1),
                              Expr::Const(Value(2.5)))),
            Value(true));
  EXPECT_EQ(eval(Expr::Not(Expr::Binary(BinOp::kEq, Expr::Column(0),
                                        Expr::Const(Value(6))))),
            Value(false));
}

TEST(ExprTest, ShortCircuitAndErrors) {
  Tuple t{Value(1)};
  // AND short-circuits: the erroneous right side never evaluates.
  auto bad = Expr::Binary(BinOp::kDiv, Expr::Column(0),
                          Expr::Const(Value(0)));
  auto guarded = Expr::Binary(
      BinOp::kAnd,
      Expr::Binary(BinOp::kGt, Expr::Column(0), Expr::Const(Value(5))),
      Expr::Binary(BinOp::kGt, bad, Expr::Const(Value(0.0))));
  auto r = EvalExpr(*guarded, t, nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, Value(false));
  // Unguarded division by zero errors.
  EXPECT_FALSE(EvalExpr(*bad, t, nullptr).ok());
  // Column out of range errors.
  EXPECT_FALSE(EvalExpr(*Expr::Column(7), t, nullptr).ok());
}

TEST(ExprTest, TypeInference) {
  Schema schema{{"i", ValueType::kInt}, {"d", ValueType::kDouble}};
  EXPECT_EQ(InferType(*Expr::Binary(BinOp::kAdd, Expr::Column(0),
                                    Expr::Column(0)),
                      schema, nullptr)
                .value_or(ValueType::kNull),
            ValueType::kInt);
  EXPECT_EQ(InferType(*Expr::Binary(BinOp::kAdd, Expr::Column(0),
                                    Expr::Column(1)),
                      schema, nullptr)
                .value_or(ValueType::kNull),
            ValueType::kDouble);
  EXPECT_EQ(InferType(*Expr::Binary(BinOp::kLt, Expr::Column(0),
                                    Expr::Column(1)),
                      schema, nullptr)
                .value_or(ValueType::kNull),
            ValueType::kBool);
}

// ------------------------------------------------------------- Aggregates --

TEST(AggregateTest, MinSurvivesDeletionOfExtremum) {
  const AggFunction* min_fn = GetAggFunction(AggKind::kMin);
  auto state = min_fn->NewState();
  ASSERT_TRUE(min_fn->Insert(state.get(), Value(5)).ok());
  ASSERT_TRUE(min_fn->Insert(state.get(), Value(3)).ok());
  ASSERT_TRUE(min_fn->Insert(state.get(), Value(8)).ok());
  EXPECT_EQ(min_fn->Current(state.get()).value_or(Value()), Value(3));
  // Delete the minimum: the buffered next-smallest surfaces (§3.3).
  ASSERT_TRUE(min_fn->Delete(state.get(), Value(3)).ok());
  EXPECT_EQ(min_fn->Current(state.get()).value_or(Value()), Value(5));
  ASSERT_TRUE(min_fn->Delete(state.get(), Value(5)).ok());
  ASSERT_TRUE(min_fn->Delete(state.get(), Value(8)).ok());
  EXPECT_TRUE(min_fn->Current(state.get()).value_or(Value(1)).is_null());
  // Deleting a value never inserted is an error.
  EXPECT_FALSE(min_fn->Delete(state.get(), Value(99)).ok());
}

TEST(AggregateTest, SumAndAvgHandleDeletes) {
  const AggFunction* sum_fn = GetAggFunction(AggKind::kSum);
  auto s = sum_fn->NewState();
  ASSERT_TRUE(sum_fn->Insert(s.get(), Value(10)).ok());
  ASSERT_TRUE(sum_fn->Insert(s.get(), Value(5)).ok());
  ASSERT_TRUE(sum_fn->Delete(s.get(), Value(10)).ok());
  EXPECT_EQ(sum_fn->Current(s.get()).value_or(Value()), Value(5));

  const AggFunction* avg_fn = GetAggFunction(AggKind::kAvg);
  auto a = avg_fn->NewState();
  ASSERT_TRUE(avg_fn->Insert(a.get(), Value(2.0)).ok());
  ASSERT_TRUE(avg_fn->Insert(a.get(), Value(4.0)).ok());
  ASSERT_TRUE(avg_fn->Insert(a.get(), Value(9.0)).ok());
  ASSERT_TRUE(avg_fn->Delete(a.get(), Value(9.0)).ok());
  EXPECT_EQ(avg_fn->Current(a.get()).value_or(Value()), Value(3.0));
}

TEST(AggregateTest, PreAggSpecs) {
  EXPECT_EQ(GetPreAggSpec(AggKind::kCount).merge, AggKind::kSum);
  EXPECT_EQ(GetPreAggSpec(AggKind::kMin).merge, AggKind::kMin);
  EXPECT_TRUE(GetPreAggSpec(AggKind::kAvg).needs_count_companion);
  EXPECT_TRUE(IsMultiplicitySensitive(AggKind::kSum));
  EXPECT_FALSE(IsMultiplicitySensitive(AggKind::kMax));
}

}  // namespace
}  // namespace rex
