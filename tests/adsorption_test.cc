// Adsorption (label propagation) end-to-end tests, including recovery with
// a fixpoint whose partitioning is coarser than its key.
#include <gtest/gtest.h>

#include <cmath>

#include "algos/adsorption.h"
#include "algos/pagerank.h"

namespace rex {
namespace {

TEST(AdsorptionE2E, MatchesReferenceDiffusion) {
  GraphGenOptions opt;
  opt.num_vertices = 250;
  opt.num_edges = 1500;
  opt.seed = 91;
  GraphData graph = GenerateRmatGraph(opt);

  EngineConfig cfg;
  cfg.num_workers = 4;
  Cluster cluster(cfg);
  ASSERT_TRUE(LoadGraphTables(&cluster, graph).ok());
  AdsorptionConfig acfg;
  acfg.num_labels = 3;
  acfg.threshold = 1e-8;
  ASSERT_TRUE(RegisterAdsorptionUdfs(cluster.udfs(), acfg).ok());
  auto plan = BuildAdsorptionDeltaPlan(acfg);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto run = cluster.Run(*plan);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  auto weights =
      AdsorptionFromState(run->fixpoint_state, graph.num_vertices, 3);
  ASSERT_TRUE(weights.ok());
  auto ref = ReferenceAdsorption(graph, 3, 0.85, 1e-12, 400);
  for (size_t v = 0; v < ref.size(); ++v) {
    for (size_t l = 0; l < 3; ++l) {
      EXPECT_NEAR((*weights)[v][l], ref[v][l], 1e-5)
          << "vertex " << v << " label " << l;
    }
  }
}

TEST(AdsorptionE2E, DeltaVectorPositionsShrink) {
  GraphGenOptions opt;
  opt.num_vertices = 300;
  opt.num_edges = 2000;
  opt.seed = 92;
  GraphData graph = GenerateRmatGraph(opt);
  EngineConfig cfg;
  cfg.num_workers = 4;
  Cluster cluster(cfg);
  ASSERT_TRUE(LoadGraphTables(&cluster, graph).ok());
  AdsorptionConfig acfg;
  acfg.num_labels = 4;
  acfg.threshold = 1e-3;
  ASSERT_TRUE(RegisterAdsorptionUdfs(cluster.udfs(), acfg).ok());
  auto plan = BuildAdsorptionDeltaPlan(acfg);
  ASSERT_TRUE(plan.ok());
  auto run = cluster.Run(*plan);
  ASSERT_TRUE(run.ok());
  ASSERT_GE(run->strata.size(), 4u);
  // "adsorption vector positions with change >= threshold" (Fig 3) go to
  // zero, so the final stratum derives nothing.
  EXPECT_EQ(run->strata.back().stats.new_tuples, 0);
}

TEST(AdsorptionE2E, IncrementalRecoveryWithCoarsePartitioning) {
  GraphGenOptions opt;
  opt.num_vertices = 200;
  opt.num_edges = 1000;
  opt.seed = 93;
  GraphData graph = GenerateRmatGraph(opt);
  AdsorptionConfig acfg;
  acfg.num_labels = 2;
  acfg.threshold = 1e-8;

  auto weights_with = [&](FailureInjection failure) {
    EngineConfig cfg;
    cfg.num_workers = 4;
    Cluster cluster(cfg);
    EXPECT_TRUE(LoadGraphTables(&cluster, graph).ok());
    EXPECT_TRUE(RegisterAdsorptionUdfs(cluster.udfs(), acfg).ok());
    auto plan = BuildAdsorptionDeltaPlan(acfg);
    EXPECT_TRUE(plan.ok());
    QueryOptions options;
    options.failure = failure;
    auto run = cluster.Run(*plan, options);
    EXPECT_TRUE(run.ok()) << run.status().ToString();
    auto w = AdsorptionFromState(run->fixpoint_state, graph.num_vertices, 2);
    EXPECT_TRUE(w.ok());
    return w.ok() ? *w : std::vector<std::vector<double>>();
  };

  auto baseline = weights_with(FailureInjection{});
  FailureInjection failure;
  failure.worker = 2;
  failure.before_stratum = 3;
  failure.strategy = RecoveryStrategy::kIncremental;
  auto recovered = weights_with(failure);
  ASSERT_EQ(baseline.size(), recovered.size());
  for (size_t v = 0; v < baseline.size(); ++v) {
    for (size_t l = 0; l < 2; ++l) {
      EXPECT_NEAR(baseline[v][l], recovered[v][l], 1e-9);
    }
  }
}

}  // namespace
}  // namespace rex
