// Unit tests for the common kernel: Status/Result, Value, Tuple, Schema,
// serde, hashing, RNG determinism.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/delta.h"
#include "common/rng.h"
#include "common/serde.h"
#include "common/status.h"
#include "common/tuple.h"

namespace rex {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::TypeError("bad type");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kTypeError);
  EXPECT_EQ(st.ToString(), "TypeError: bad type");
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

TEST(ResultTest, ValueAndError) {
  auto ok = HalveEven(4);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);
  auto err = HalveEven(3);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(err.value_or(-1), -1);
}

Status UseAssignOrReturn(int x, int* out) {
  REX_ASSIGN_OR_RETURN(int half, HalveEven(x));
  *out = half;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_FALSE(UseAssignOrReturn(7, &out).ok());
}

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(true).type(), ValueType::kBool);
  EXPECT_EQ(Value(int64_t{42}).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("hi").AsString(), "hi");
  Value lst = Value::List({Value(1), Value(2)});
  EXPECT_EQ(lst.AsList().size(), 2u);
}

TEST(ValueTest, CrossTypeNumericEquality) {
  EXPECT_EQ(Value(1), Value(1.0));
  EXPECT_NE(Value(1), Value(1.5));
  EXPECT_EQ(Value(1).Hash(), Value(1.0).Hash());
}

TEST(ValueTest, HashAgreesWithEqualityBeyondDoublePrecision) {
  // 2^53 is the largest integer magnitude doubles represent contiguously;
  // 2^53 + 1 rounds to 2^53.0, so mixed comparison calls them equal — and
  // equal values must hash identically or keyed state splits entries.
  const int64_t big = int64_t{1} << 53;
  ASSERT_EQ(Value(big + 1), Value(static_cast<double>(big)));
  EXPECT_EQ(Value(big + 1).Hash(), Value(static_cast<double>(big)).Hash());
  EXPECT_EQ(Value(big).Hash(), Value(static_cast<double>(big)).Hash());
  EXPECT_EQ(Value(big).Hash(), Value(big + 1).Hash());

  ASSERT_EQ(Value(-big - 1), Value(static_cast<double>(-big)));
  EXPECT_EQ(Value(-big - 1).Hash(),
            Value(static_cast<double>(-big)).Hash());
  EXPECT_EQ(Value(-big).Hash(), Value(-big - 1).Hash());

  // Exactly representable values still hash apart when they differ.
  EXPECT_NE(Value(big).Hash(), Value(static_cast<double>(2 * big)).Hash());
}

TEST(ValueTest, NegativeZeroHashesLikeZero) {
  ASSERT_EQ(Value(0.0), Value(-0.0));
  ASSERT_EQ(Value(0), Value(-0.0));
  EXPECT_EQ(Value(0.0).Hash(), Value(-0.0).Hash());
  EXPECT_EQ(Value(0).Hash(), Value(-0.0).Hash());
}

TEST(ValueTest, Ordering) {
  EXPECT_LT(Value(1), Value(2));
  EXPECT_LT(Value(1.5), Value(2));
  EXPECT_LT(Value("a"), Value("b"));
  EXPECT_FALSE(Value(2) < Value(1.5));
}

TEST(ValueTest, Coercions) {
  EXPECT_DOUBLE_EQ(Value(3).ToDouble().value(), 3.0);
  EXPECT_EQ(Value(3.7).ToInt().value(), 3);
  EXPECT_FALSE(Value("x").ToDouble().ok());
}

TEST(ValueTest, ToIntRejectsUnrepresentableDoubles) {
  // Casting NaN, ±inf, or an out-of-range double to int64 is undefined
  // behavior; ToInt must refuse instead of invoking it.
  EXPECT_FALSE(Value(std::nan("")).ToInt().ok());
  EXPECT_FALSE(Value(std::numeric_limits<double>::infinity()).ToInt().ok());
  EXPECT_FALSE(Value(-std::numeric_limits<double>::infinity()).ToInt().ok());
  EXPECT_FALSE(Value(1e300).ToInt().ok());
  EXPECT_FALSE(Value(-1e300).ToInt().ok());
  auto err = Value(1e300).ToInt();
  EXPECT_EQ(err.status().code(), StatusCode::kTypeError);
}

TEST(ValueTest, ToIntExactBoundaries) {
  // -2^63 is exactly representable as a double and converts fine; +2^63
  // (the first double at or beyond the top) must be rejected because
  // int64's max is 2^63 - 1.
  const double low = -9223372036854775808.0;   // -2^63
  const double high = 9223372036854775808.0;   // 2^63
  auto ok = Value(low).ToInt();
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), std::numeric_limits<int64_t>::min());
  EXPECT_FALSE(Value(high).ToInt().ok());
  // The largest double strictly below 2^63 converts.
  const double below = std::nextafter(high, 0.0);
  auto big = Value(below).ToInt();
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(big.value(), static_cast<int64_t>(below));
  EXPECT_EQ(Value(-3.7).ToInt().value(), -3);
}

TEST(ValueTest, TypeNameParsing) {
  EXPECT_EQ(ValueTypeFromName("Integer").value(), ValueType::kInt);
  EXPECT_EQ(ValueTypeFromName("double").value(), ValueType::kDouble);
  EXPECT_EQ(ValueTypeFromName("STRING").value(), ValueType::kString);
  EXPECT_FALSE(ValueTypeFromName("widget").ok());
}

TEST(TupleTest, ProjectAndConcat) {
  Tuple t{Value(1), Value("a"), Value(2.5)};
  Tuple p = t.Project({2, 0});
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0], Value(2.5));
  EXPECT_EQ(p[1], Value(1));
  Tuple c = t.Concat(Tuple{Value(9)});
  EXPECT_EQ(c.size(), 4u);
  EXPECT_EQ(c[3], Value(9));
}

TEST(TupleTest, HashFieldsConsistentWithEquality) {
  Tuple a{Value(1), Value("x")};
  Tuple b{Value(1), Value("y")};
  EXPECT_EQ(a.HashFields({0}), b.HashFields({0}));
  EXPECT_NE(a.Hash(), b.Hash());
}

TEST(SchemaTest, IndexOfAndValidate) {
  Schema s{{"id", ValueType::kInt}, {"score", ValueType::kDouble}};
  EXPECT_EQ(s.IndexOf("score").value(), 1);
  EXPECT_FALSE(s.IndexOf("missing").ok());
  EXPECT_TRUE(s.Validate(Tuple{Value(1), Value(2.5)}).ok());
  EXPECT_TRUE(s.Validate(Tuple{Value(1), Value(2)}).ok());  // int widens
  EXPECT_FALSE(s.Validate(Tuple{Value(1)}).ok());
  EXPECT_FALSE(s.Validate(Tuple{Value("a"), Value(2.5)}).ok());
}

TEST(SchemaTest, ConcatRenamesCollisions) {
  Schema l{{"id", ValueType::kInt}};
  Schema r{{"id", ValueType::kInt}, {"v", ValueType::kDouble}};
  Schema joined = l.Concat(r);
  EXPECT_EQ(joined.field(1).name, "r.id");
  EXPECT_EQ(joined.field(2).name, "v");
}

TEST(SerdeTest, ValueRoundTrip) {
  std::vector<Value> values = {
      Value::Null(), Value(true),  Value(int64_t{-7}),
      Value(3.25),   Value("abc"), Value::List({Value(1), Value("x")})};
  for (const Value& v : values) {
    BufferWriter w;
    w.PutValue(v);
    BufferReader r(w.bytes());
    auto back = r.GetValue();
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back.value(), v) << v.ToString();
  }
}

TEST(SerdeTest, TupleRoundTrip) {
  Tuple t{Value(1), Value(2.5), Value("s"), Value::Null()};
  auto back = DeserializeTuple(SerializeTuple(t));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), t);
}

TEST(SerdeTest, TuplesRoundTrip) {
  std::vector<Tuple> ts = {Tuple{Value(1)}, Tuple{Value("a"), Value(2)}};
  auto back = DeserializeTuples(SerializeTuples(ts));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().size(), 2u);
  EXPECT_EQ(back.value()[1], ts[1]);
}

TEST(SerdeTest, TruncationDetected) {
  std::string bytes = SerializeTuple(Tuple{Value("hello")});
  bytes.resize(bytes.size() - 2);
  BufferReader r(bytes);
  EXPECT_FALSE(r.GetTuple().ok());
}

TEST(SerdeTest, BadTagDetected) {
  BufferWriter w;
  w.PutU32(1);
  w.PutU8(250);  // invalid value tag
  BufferReader r(w.bytes());
  EXPECT_FALSE(r.GetTuple().ok());
}

TEST(SerdeTest, RunawayNestingRejectedNotOverflowed) {
  // A corrupt buffer that nests lists far beyond any honest writer must
  // fail with ParseError, not recurse until the stack overflows.
  BufferWriter w;
  const int levels = BufferReader::kMaxNestingDepth + 8;
  for (int i = 0; i < levels; ++i) {
    w.PutU8(static_cast<uint8_t>(ValueType::kList));
    w.PutU32(1);  // one element: the next level
  }
  w.PutU8(static_cast<uint8_t>(ValueType::kNull));
  BufferReader r(w.bytes());
  auto v = r.GetValue();
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kParseError);
}

TEST(SerdeTest, NestingAtLimitStillParses) {
  BufferWriter w;
  for (int i = 0; i < BufferReader::kMaxNestingDepth; ++i) {
    w.PutU8(static_cast<uint8_t>(ValueType::kList));
    w.PutU32(1);
  }
  w.PutU8(static_cast<uint8_t>(ValueType::kNull));
  BufferReader r(w.bytes());
  EXPECT_TRUE(r.GetValue().ok());
}

TEST(SerdeTest, HostileListCountDoesNotPreallocate) {
  // A u32 count promising ~4 billion elements in a 5-byte buffer must fail
  // with a truncation error after the capped reserve, not attempt a
  // multi-gigabyte allocation up front.
  BufferWriter w;
  w.PutU8(static_cast<uint8_t>(ValueType::kList));
  w.PutU32(0xFFFFFFFFu);
  BufferReader r(w.bytes());
  auto v = r.GetValue();
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kOutOfRange);
}

TEST(SerdeTest, HostileTupleCountDoesNotPreallocate) {
  BufferWriter w;
  w.PutU32(0xFFFFFFFFu);  // tuple "with 4 billion fields"
  w.PutU8(static_cast<uint8_t>(ValueType::kNull));
  BufferReader r(w.bytes());
  EXPECT_FALSE(r.GetTuple().ok());
}

TEST(DeltaTest, FactoriesAndToString) {
  Delta ins = Delta::Insert(Tuple{Value(1)});
  EXPECT_EQ(ins.op, DeltaOp::kInsert);
  Delta rep = Delta::Replace(Tuple{Value(1)}, Tuple{Value(2)});
  EXPECT_EQ(rep.op, DeltaOp::kReplace);
  EXPECT_EQ(rep.tuple, Tuple{Value(2)});
  EXPECT_EQ(rep.old_tuple, Tuple{Value(1)});
  EXPECT_NE(rep.ToString().find("was"), std::string::npos);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    EXPECT_LT(rng.NextBelow(10), 10u);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(42);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

}  // namespace
}  // namespace rex
