// Cluster/engine behavior tests: error propagation from worker threads,
// stratum caps, explicit termination conditions (§3.4), cluster reuse
// across queries, and worker revival.
#include <gtest/gtest.h>

#include "algos/pagerank.h"
#include "algos/reference.h"
#include "algos/sssp.h"

namespace rex {
namespace {

EngineConfig SmallConfig() {
  EngineConfig cfg;
  cfg.num_workers = 3;
  return cfg;
}

TEST(ClusterTest, UdfErrorsPropagateToDriver) {
  Cluster cluster(SmallConfig());
  ASSERT_TRUE(cluster
                  .CreateTable("t", Schema{{"k", ValueType::kInt}}, 0,
                               {Tuple{Value(1)}, Tuple{Value(2)}})
                  .ok());
  TableUdf bomb;
  bomb.name = "bomb";
  bomb.fn = [](const Delta& d) -> Result<DeltaVec> {
    if (d.tuple.field(0) == Value(2)) {
      return Status::Internal("user code exploded");
    }
    return DeltaVec{d};
  };
  ASSERT_TRUE(cluster.udfs()->RegisterTable(bomb).ok());

  PlanSpec plan;
  ScanOp::Params scan;
  scan.table = "t";
  int top = plan.AddScan(scan);
  top = plan.AddApplyFn(top, "bomb");
  plan.AddSink(top);
  auto run = cluster.Run(plan);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInternal);
  EXPECT_NE(run.status().message().find("exploded"), std::string::npos);
}

TEST(ClusterTest, UnknownUdfFailsAtPlanInstall) {
  Cluster cluster(SmallConfig());
  ASSERT_TRUE(cluster
                  .CreateTable("t", Schema{{"k", ValueType::kInt}}, 0, {})
                  .ok());
  PlanSpec plan;
  ScanOp::Params scan;
  scan.table = "t";
  int top = plan.AddScan(scan);
  top = plan.AddApplyFn(top, "no_such_fn");
  plan.AddSink(top);
  auto run = cluster.Run(plan);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kNotFound);
}

TEST(ClusterTest, MaxStrataCapsDivergentQueries) {
  GraphData graph = GenerateRmatGraph({});
  Cluster cluster(SmallConfig());
  ASSERT_TRUE(LoadGraphTables(&cluster, graph).ok());
  PageRankConfig cfg;
  cfg.threshold = 0.0;  // propagate every change — effectively divergent
  ASSERT_TRUE(RegisterPageRankUdfs(cluster.udfs(), cfg).ok());
  auto plan = BuildPageRankDeltaPlan(cfg);
  ASSERT_TRUE(plan.ok());
  QueryOptions options;
  options.max_strata = 7;
  auto run = cluster.Run(*plan, options);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->strata_executed, 7);
}

TEST(ClusterTest, ExplicitTerminationCondition) {
  // §3.4: "How many pages have their PageRank changed by more than 1%
  // between iterations n and n-1?" — stop when fewer than 50 did.
  GraphData graph = GenerateRmatGraph({});
  Cluster cluster(SmallConfig());
  ASSERT_TRUE(LoadGraphTables(&cluster, graph).ok());
  PageRankConfig cfg;
  cfg.threshold = 0.01;
  cfg.relative = true;
  ASSERT_TRUE(RegisterPageRankUdfs(cluster.udfs(), cfg).ok());
  auto plan = BuildPageRankDeltaPlan(cfg);
  ASSERT_TRUE(plan.ok());
  QueryOptions options;
  options.terminate = [](int stratum, const VoteStats& stats) {
    return stratum > 0 && stats.changed_tuples < 400;
  };
  auto run = cluster.Run(*plan, options);
  ASSERT_TRUE(run.ok());
  EXPECT_LT(run->strata.back().stats.changed_tuples, 400);
  // And it genuinely stopped early: an unconditional run goes further.
  Cluster cluster2(SmallConfig());
  ASSERT_TRUE(LoadGraphTables(&cluster2, graph).ok());
  ASSERT_TRUE(RegisterPageRankUdfs(cluster2.udfs(), cfg).ok());
  auto full = cluster2.Run(*plan);
  ASSERT_TRUE(full.ok());
  EXPECT_GT(full->strata_executed, run->strata_executed);
}

TEST(ClusterTest, BackToBackQueriesOnOneCluster) {
  GraphData graph = GenerateRmatGraph({});
  Cluster cluster(SmallConfig());
  ASSERT_TRUE(LoadGraphTables(&cluster, graph).ok());
  SsspConfig cfg;
  cfg.source = 3;
  ASSERT_TRUE(RegisterSsspUdfs(cluster.udfs(), cfg).ok());
  auto plan = BuildSsspDeltaPlan(cfg);
  ASSERT_TRUE(plan.ok());
  std::vector<int64_t> ref = ReferenceSssp(graph, 3);
  for (int round = 0; round < 3; ++round) {
    auto run = cluster.Run(*plan);
    ASSERT_TRUE(run.ok()) << "round " << round;
    auto dist = DistancesFromState(run->fixpoint_state, graph.num_vertices);
    ASSERT_TRUE(dist.ok());
    EXPECT_EQ(*dist, ref) << "round " << round;
  }
}

TEST(ClusterTest, ReviveFailedWorkersRestoresFullCluster) {
  GraphData graph = GenerateRmatGraph({});
  Cluster cluster(SmallConfig());
  ASSERT_TRUE(LoadGraphTables(&cluster, graph).ok());
  SsspConfig cfg;
  cfg.source = 1;
  ASSERT_TRUE(RegisterSsspUdfs(cluster.udfs(), cfg).ok());
  auto plan = BuildSsspDeltaPlan(cfg);
  ASSERT_TRUE(plan.ok());

  QueryOptions with_failure;
  with_failure.failure.worker = 0;
  with_failure.failure.before_stratum = 2;
  with_failure.failure.strategy = RecoveryStrategy::kIncremental;
  auto run1 = cluster.Run(*plan, with_failure);
  ASSERT_TRUE(run1.ok());
  EXPECT_EQ(cluster.LiveWorkers().size(), 2u);

  ASSERT_TRUE(cluster.ReviveFailedWorkers().ok());
  EXPECT_EQ(cluster.LiveWorkers().size(), 3u);
  auto run2 = cluster.Run(*plan);
  ASSERT_TRUE(run2.ok());
  auto dist = DistancesFromState(run2->fixpoint_state, graph.num_vertices);
  ASSERT_TRUE(dist.ok());
  EXPECT_EQ(*dist, ReferenceSssp(graph, 1));
}

TEST(ClusterTest, RunOnEmptyTableTerminates) {
  Cluster cluster(SmallConfig());
  ASSERT_TRUE(cluster
                  .CreateTable("graph",
                               Schema{{"src", ValueType::kInt},
                                      {"dst", ValueType::kInt}},
                               0, {})
                  .ok());
  ASSERT_TRUE(cluster
                  .CreateTable("vertices", Schema{{"v", ValueType::kInt}},
                               0, {})
                  .ok());
  SsspConfig cfg;
  ASSERT_TRUE(RegisterSsspUdfs(cluster.udfs(), cfg).ok());
  auto plan = BuildSsspDeltaPlan(cfg);
  ASSERT_TRUE(plan.ok());
  auto run = cluster.Run(*plan);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->fixpoint_state.empty());
  EXPECT_EQ(run->strata_executed, 1);  // base case derives nothing
}

TEST(ClusterTest, RuntimeUdfMonitoringFeedsProfiles) {
  Cluster cluster(SmallConfig());
  std::vector<Tuple> rows;
  for (int64_t i = 0; i < 500; ++i) rows.push_back(Tuple{Value(i)});
  ASSERT_TRUE(
      cluster.CreateTable("t", Schema{{"k", ValueType::kInt}}, 0, rows)
          .ok());
  TableUdf fanout2;
  fanout2.name = "fanout2";
  fanout2.deterministic = false;
  fanout2.fn = [](const Delta& d) -> Result<DeltaVec> {
    return DeltaVec{d, d};  // two outputs per input
  };
  ASSERT_TRUE(cluster.udfs()->RegisterTable(fanout2).ok());

  NodeCalibration calib;
  EXPECT_FALSE(cluster.MeasuredUdfProfile("fanout2", calib).ok());

  PlanSpec plan;
  ScanOp::Params scan;
  scan.table = "t";
  int top = plan.AddScan(scan);
  top = plan.AddApplyFn(top, "fanout2");
  plan.AddSink(top);
  ASSERT_TRUE(cluster.Run(plan).ok());

  auto profile = cluster.MeasuredUdfProfile("fanout2", calib);
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_NEAR(profile->fanout, 2.0, 1e-9);
  EXPECT_GT(profile->cost_per_tuple, 0.0);
  EXPECT_FALSE(profile->deterministic);
}

TEST(ClusterTest, PerStratumReportsAreConsistent) {
  GraphData graph = GenerateRmatGraph({});
  Cluster cluster(SmallConfig());
  ASSERT_TRUE(LoadGraphTables(&cluster, graph).ok());
  PageRankConfig cfg;
  cfg.threshold = 0.01;
  cfg.relative = true;
  ASSERT_TRUE(RegisterPageRankUdfs(cluster.udfs(), cfg).ok());
  auto plan = BuildPageRankDeltaPlan(cfg);
  ASSERT_TRUE(plan.ok());
  auto run = cluster.Run(*plan);
  ASSERT_TRUE(run.ok());
  ASSERT_EQ(run->strata.size(), static_cast<size_t>(run->strata_executed));
  int64_t bytes = 0;
  for (size_t i = 0; i < run->strata.size(); ++i) {
    EXPECT_EQ(run->strata[i].stratum, static_cast<int>(i));
    EXPECT_GE(run->strata[i].seconds, 0);
    bytes += run->strata[i].bytes_sent;
  }
  EXPECT_EQ(bytes, run->total_bytes_sent);
  EXPECT_EQ(run->strata.back().stats.new_tuples, 0);  // implicit fixpoint
}

}  // namespace
}  // namespace rex
