// Cluster/engine behavior tests: error propagation from worker threads,
// stratum caps, explicit termination conditions (§3.4), cluster reuse
// across queries, and worker revival.
#include <gtest/gtest.h>

#include "algos/pagerank.h"
#include "algos/reference.h"
#include "algos/sssp.h"

namespace rex {
namespace {

EngineConfig SmallConfig() {
  EngineConfig cfg;
  cfg.num_workers = 3;
  return cfg;
}

TEST(ClusterTest, UdfErrorsPropagateToDriver) {
  Cluster cluster(SmallConfig());
  ASSERT_TRUE(cluster
                  .CreateTable("t", Schema{{"k", ValueType::kInt}}, 0,
                               {Tuple{Value(1)}, Tuple{Value(2)}})
                  .ok());
  TableUdf bomb;
  bomb.name = "bomb";
  bomb.fn = [](const Delta& d) -> Result<DeltaVec> {
    if (d.tuple.field(0) == Value(2)) {
      return Status::Internal("user code exploded");
    }
    return DeltaVec{d};
  };
  ASSERT_TRUE(cluster.udfs()->RegisterTable(bomb).ok());

  PlanSpec plan;
  ScanOp::Params scan;
  scan.table = "t";
  int top = plan.AddScan(scan);
  top = plan.AddApplyFn(top, "bomb");
  plan.AddSink(top);
  auto run = cluster.Run(plan);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInternal);
  EXPECT_NE(run.status().message().find("exploded"), std::string::npos);
}

TEST(ClusterTest, UnknownUdfFailsAtPlanInstall) {
  Cluster cluster(SmallConfig());
  ASSERT_TRUE(cluster
                  .CreateTable("t", Schema{{"k", ValueType::kInt}}, 0, {})
                  .ok());
  PlanSpec plan;
  ScanOp::Params scan;
  scan.table = "t";
  int top = plan.AddScan(scan);
  top = plan.AddApplyFn(top, "no_such_fn");
  plan.AddSink(top);
  auto run = cluster.Run(plan);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kNotFound);
}

TEST(ClusterTest, MaxStrataCapsDivergentQueries) {
  GraphData graph = GenerateRmatGraph({});
  Cluster cluster(SmallConfig());
  ASSERT_TRUE(LoadGraphTables(&cluster, graph).ok());
  PageRankConfig cfg;
  cfg.threshold = 0.0;  // propagate every change — effectively divergent
  ASSERT_TRUE(RegisterPageRankUdfs(cluster.udfs(), cfg).ok());
  auto plan = BuildPageRankDeltaPlan(cfg);
  ASSERT_TRUE(plan.ok());
  QueryOptions options;
  options.max_strata = 7;
  auto run = cluster.Run(*plan, options);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->strata_executed, 7);
}

TEST(ClusterTest, ExplicitTerminationCondition) {
  // §3.4: "How many pages have their PageRank changed by more than 1%
  // between iterations n and n-1?" — stop when fewer than 50 did.
  GraphData graph = GenerateRmatGraph({});
  Cluster cluster(SmallConfig());
  ASSERT_TRUE(LoadGraphTables(&cluster, graph).ok());
  PageRankConfig cfg;
  cfg.threshold = 0.01;
  cfg.relative = true;
  ASSERT_TRUE(RegisterPageRankUdfs(cluster.udfs(), cfg).ok());
  auto plan = BuildPageRankDeltaPlan(cfg);
  ASSERT_TRUE(plan.ok());
  QueryOptions options;
  options.terminate = [](int stratum, const VoteStats& stats) {
    return stratum > 0 && stats.changed_tuples < 400;
  };
  auto run = cluster.Run(*plan, options);
  ASSERT_TRUE(run.ok());
  EXPECT_LT(run->strata.back().stats.changed_tuples, 400);
  // And it genuinely stopped early: an unconditional run goes further.
  Cluster cluster2(SmallConfig());
  ASSERT_TRUE(LoadGraphTables(&cluster2, graph).ok());
  ASSERT_TRUE(RegisterPageRankUdfs(cluster2.udfs(), cfg).ok());
  auto full = cluster2.Run(*plan);
  ASSERT_TRUE(full.ok());
  EXPECT_GT(full->strata_executed, run->strata_executed);
}

TEST(ClusterTest, BackToBackQueriesOnOneCluster) {
  GraphData graph = GenerateRmatGraph({});
  Cluster cluster(SmallConfig());
  ASSERT_TRUE(LoadGraphTables(&cluster, graph).ok());
  SsspConfig cfg;
  cfg.source = 3;
  ASSERT_TRUE(RegisterSsspUdfs(cluster.udfs(), cfg).ok());
  auto plan = BuildSsspDeltaPlan(cfg);
  ASSERT_TRUE(plan.ok());
  std::vector<int64_t> ref = ReferenceSssp(graph, 3);
  for (int round = 0; round < 3; ++round) {
    auto run = cluster.Run(*plan);
    ASSERT_TRUE(run.ok()) << "round " << round;
    auto dist = DistancesFromState(run->fixpoint_state, graph.num_vertices);
    ASSERT_TRUE(dist.ok());
    EXPECT_EQ(*dist, ref) << "round " << round;
  }
}

TEST(ClusterTest, ReviveFailedWorkersRestoresFullCluster) {
  GraphData graph = GenerateRmatGraph({});
  Cluster cluster(SmallConfig());
  ASSERT_TRUE(LoadGraphTables(&cluster, graph).ok());
  SsspConfig cfg;
  cfg.source = 1;
  ASSERT_TRUE(RegisterSsspUdfs(cluster.udfs(), cfg).ok());
  auto plan = BuildSsspDeltaPlan(cfg);
  ASSERT_TRUE(plan.ok());

  QueryOptions with_failure;
  with_failure.failure.worker = 0;
  with_failure.failure.before_stratum = 2;
  with_failure.failure.strategy = RecoveryStrategy::kIncremental;
  auto run1 = cluster.Run(*plan, with_failure);
  ASSERT_TRUE(run1.ok());
  EXPECT_EQ(cluster.LiveWorkers().size(), 2u);

  ASSERT_TRUE(cluster.ReviveFailedWorkers().ok());
  EXPECT_EQ(cluster.LiveWorkers().size(), 3u);
  auto run2 = cluster.Run(*plan);
  ASSERT_TRUE(run2.ok());
  auto dist = DistancesFromState(run2->fixpoint_state, graph.num_vertices);
  ASSERT_TRUE(dist.ok());
  EXPECT_EQ(*dist, ReferenceSssp(graph, 1));
}

TEST(ClusterTest, RunOnEmptyTableTerminates) {
  Cluster cluster(SmallConfig());
  ASSERT_TRUE(cluster
                  .CreateTable("graph",
                               Schema{{"src", ValueType::kInt},
                                      {"dst", ValueType::kInt}},
                               0, {})
                  .ok());
  ASSERT_TRUE(cluster
                  .CreateTable("vertices", Schema{{"v", ValueType::kInt}},
                               0, {})
                  .ok());
  SsspConfig cfg;
  ASSERT_TRUE(RegisterSsspUdfs(cluster.udfs(), cfg).ok());
  auto plan = BuildSsspDeltaPlan(cfg);
  ASSERT_TRUE(plan.ok());
  auto run = cluster.Run(*plan);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->fixpoint_state.empty());
  EXPECT_EQ(run->strata_executed, 1);  // base case derives nothing
}

TEST(ClusterTest, RuntimeUdfMonitoringFeedsProfiles) {
  Cluster cluster(SmallConfig());
  std::vector<Tuple> rows;
  for (int64_t i = 0; i < 500; ++i) rows.push_back(Tuple{Value(i)});
  ASSERT_TRUE(
      cluster.CreateTable("t", Schema{{"k", ValueType::kInt}}, 0, rows)
          .ok());
  TableUdf fanout2;
  fanout2.name = "fanout2";
  fanout2.deterministic = false;
  fanout2.fn = [](const Delta& d) -> Result<DeltaVec> {
    return DeltaVec{d, d};  // two outputs per input
  };
  ASSERT_TRUE(cluster.udfs()->RegisterTable(fanout2).ok());

  NodeCalibration calib;
  EXPECT_FALSE(cluster.MeasuredUdfProfile("fanout2", calib).ok());

  PlanSpec plan;
  ScanOp::Params scan;
  scan.table = "t";
  int top = plan.AddScan(scan);
  top = plan.AddApplyFn(top, "fanout2");
  plan.AddSink(top);
  ASSERT_TRUE(cluster.Run(plan).ok());

  auto profile = cluster.MeasuredUdfProfile("fanout2", calib);
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_NEAR(profile->fanout, 2.0, 1e-9);
  EXPECT_GT(profile->cost_per_tuple, 0.0);
  EXPECT_FALSE(profile->deterministic);
}

TEST(ClusterTest, PerStratumReportsAreConsistent) {
  GraphData graph = GenerateRmatGraph({});
  Cluster cluster(SmallConfig());
  ASSERT_TRUE(LoadGraphTables(&cluster, graph).ok());
  PageRankConfig cfg;
  cfg.threshold = 0.01;
  cfg.relative = true;
  ASSERT_TRUE(RegisterPageRankUdfs(cluster.udfs(), cfg).ok());
  auto plan = BuildPageRankDeltaPlan(cfg);
  ASSERT_TRUE(plan.ok());
  auto run = cluster.Run(*plan);
  ASSERT_TRUE(run.ok());
  ASSERT_EQ(run->strata.size(), static_cast<size_t>(run->strata_executed));
  int64_t bytes = 0;
  for (size_t i = 0; i < run->strata.size(); ++i) {
    EXPECT_EQ(run->strata[i].stratum, static_cast<int>(i));
    EXPECT_GE(run->strata[i].seconds, 0);
    bytes += run->strata[i].bytes_sent;
  }
  EXPECT_EQ(bytes, run->total_bytes_sent);
  EXPECT_EQ(run->strata.back().stats.new_tuples, 0);  // implicit fixpoint
}


// -- Network fail/restore plumbing (chaos harness substrate) ---------------

Message OneTupleMsg(int from, int to) {
  return Message::Data(from, to, 0, 0,
                       DeltaVec{Delta::Update(Tuple{Value(int64_t{7})})});
}

TEST(NetworkTest, RestoreReopensInboxAfterMultiFailure) {
  Network net(3);
  ASSERT_TRUE(net.Send(OneTupleMsg(0, 1)).ok());
  EXPECT_EQ(net.channel(1)->size(), 1u);
  const int64_t metered = net.BytesSentBy(0);
  EXPECT_GT(metered, 0);
  net.channel(1)->TryPop();
  net.OnMessageProcessed();

  // Fail two of three workers: inboxes close, only worker 0 stays live.
  net.MarkFailed(1);
  net.MarkFailed(2);
  EXPECT_TRUE(net.IsFailed(1));
  EXPECT_TRUE(net.IsFailed(2));
  EXPECT_EQ(net.LiveWorkers(), std::vector<int>{0});
  EXPECT_TRUE(net.channel(1)->closed());
  EXPECT_TRUE(net.channel(2)->closed());

  // Sends to failed workers drop on the floor: no queueing, no metering.
  ASSERT_TRUE(net.Send(OneTupleMsg(0, 1)).ok());
  EXPECT_EQ(net.channel(1)->size(), 0u);
  EXPECT_EQ(net.BytesSentBy(0), metered);

  // Restore one: its inbox reopens and delivery resumes; the other one
  // stays dead.
  net.Restore(1);
  EXPECT_FALSE(net.IsFailed(1));
  EXPECT_FALSE(net.channel(1)->closed());
  EXPECT_EQ(net.LiveWorkers(), (std::vector<int>{0, 1}));
  ASSERT_TRUE(net.Send(OneTupleMsg(0, 1)).ok());
  EXPECT_EQ(net.channel(1)->size(), 1u);
  EXPECT_EQ(net.BytesSentBy(0), 2 * metered);
  ASSERT_TRUE(net.Send(OneTupleMsg(0, 2)).ok());
  EXPECT_EQ(net.channel(2)->size(), 0u);

  // Metering stays consistent: exactly the delivered cross-worker bytes.
  EXPECT_EQ(net.TotalBytesSent(), net.BytesSentBy(0));
  net.channel(1)->TryPop();
  net.OnMessageProcessed();
  net.WaitQuiescent();  // drained: the in-flight count is exactly zero
  EXPECT_TRUE(net.CheckInvariants().ok());
}

TEST(NetworkTest, SequenceNumbersKeepIncreasingAcrossRestore) {
  // The receiver-side duplicate filter keeps per-sender high-water marks;
  // a restored node must not reuse old sequence numbers or its first real
  // messages would be discarded as duplicates.
  Network net(2);
  ASSERT_TRUE(net.Send(OneTupleMsg(0, 1)).ok());
  auto before = net.channel(1)->TryPop();
  ASSERT_TRUE(before.has_value());
  net.OnMessageProcessed();

  net.MarkFailed(1);
  ASSERT_TRUE(net.Send(OneTupleMsg(0, 1)).ok());  // dropped, burns a seq
  net.Restore(1);
  ASSERT_TRUE(net.Send(OneTupleMsg(0, 1)).ok());
  auto after = net.channel(1)->TryPop();
  ASSERT_TRUE(after.has_value());
  net.OnMessageProcessed();
  EXPECT_GT(after->seq, before->seq);
}

TEST(ChannelTest, ReopenDiscardsStaleMessagesAndBumpsIncarnation) {
  // Regression: a revived worker must never consume a batch addressed to
  // its previous life. Reopen discards anything still queued and bumps the
  // incarnation so stale stamped stragglers are rejected on Push.
  Channel ch;
  const int first_life = ch.incarnation();
  Message stale = OneTupleMsg(0, 1);
  stale.dest_incarnation = first_life;
  ASSERT_TRUE(ch.Push(stale));
  EXPECT_EQ(ch.size(), 1u);

  ch.Close();
  ch.Reopen();
  EXPECT_EQ(ch.size(), 0u);  // the pre-crash message is gone
  EXPECT_GT(ch.incarnation(), first_life);

  Message straggler = OneTupleMsg(0, 1);
  straggler.dest_incarnation = first_life;  // stamped for the old life
  EXPECT_FALSE(ch.Push(straggler));
  EXPECT_EQ(ch.size(), 0u);

  Message fresh = OneTupleMsg(0, 1);
  fresh.dest_incarnation = ch.incarnation();
  EXPECT_TRUE(ch.Push(fresh));
  Message unstamped = OneTupleMsg(0, 1);  // dest_incarnation = -1: bypass
  EXPECT_TRUE(ch.Push(unstamped));
  EXPECT_EQ(ch.size(), 2u);
}

TEST(NetworkTest, BoundedChannelShedsAfterGracePeriod) {
  Network net(2, /*channel_capacity=*/1);
  ASSERT_TRUE(net.Send(OneTupleMsg(0, 1)).ok());
  // The inbox is full and nobody is consuming: the next data send blocks
  // for the flow-control grace period, then sheds to the spill path
  // instead of deadlocking the sender forever.
  ASSERT_TRUE(net.Send(OneTupleMsg(0, 1)).ok());
  EXPECT_EQ(net.channel(1)->size(), 2u);
  EXPECT_GE(net.metrics().Value(metrics::kBackpressureBlocks), 1);
  EXPECT_GE(net.metrics().Value(metrics::kBackpressureSheds), 1);
  while (net.channel(1)->TryPop().has_value()) net.OnMessageProcessed();
  net.WaitQuiescent();
  EXPECT_TRUE(net.CheckInvariants().ok());
}

/// Drops the first `n` sends it sees, then delivers everything.
class DropNTimesInjector : public FaultInjector {
 public:
  explicit DropNTimesInjector(int n) : remaining_(n) {}
  Action OnSend(Message* /*msg*/) override {
    if (remaining_ > 0) {
      --remaining_;
      return Action::kDrop;
    }
    return Action::kDeliver;
  }

 private:
  int remaining_;
};

TEST(NetworkTest, DroppedSendIsRetransmittedUntilDelivered) {
  Network net(2, /*channel_capacity=*/0, /*retry_budget=*/8);
  DropNTimesInjector injector(3);
  net.set_fault_injector(&injector);
  ASSERT_TRUE(net.Send(OneTupleMsg(0, 1)).ok());
  // Three drops, three backed-off retransmissions, one delivery.
  EXPECT_EQ(net.channel(1)->size(), 1u);
  EXPECT_EQ(net.metrics().Value(metrics::kRetransmits), 3);
  EXPECT_GT(net.metrics().Value(metrics::kBackoffTicks), 0);
  EXPECT_EQ(net.metrics().Value(metrics::kUnreachable), 0);
  net.channel(1)->TryPop();
  net.OnMessageProcessed();
  net.WaitQuiescent();
  EXPECT_TRUE(net.CheckInvariants().ok());
}

TEST(NetworkTest, RetryBudgetBoundsRetransmissions) {
  Network net(2, /*channel_capacity=*/0, /*retry_budget=*/2);
  DropNTimesInjector injector(100);  // a link that never heals
  net.set_fault_injector(&injector);
  ASSERT_TRUE(net.Send(OneTupleMsg(0, 1)).ok());  // OK, like a crashed peer
  EXPECT_EQ(net.channel(1)->size(), 0u);
  EXPECT_EQ(net.metrics().Value(metrics::kRetransmits), 2);
  EXPECT_EQ(net.metrics().Value(metrics::kUnreachable), 1);
  net.WaitQuiescent();  // the abandoned message left no in-flight residue
  EXPECT_TRUE(net.CheckInvariants().ok());
}

TEST(ClusterTest, MultiFailureLiveWorkersAfterPartialRestore) {
  // Two crashes and one restore within a single query: LiveWorkers()
  // reflects exactly the final membership, and the revived node's inbox
  // works again (a follow-up query uses all live nodes and matches the
  // reference answer).
  GraphData graph = GenerateRmatGraph({});
  EngineConfig cfg4;
  cfg4.num_workers = 4;
  cfg4.replication = 3;
  Cluster cluster(cfg4);
  ASSERT_TRUE(LoadGraphTables(&cluster, graph).ok());
  SsspConfig cfg;
  cfg.source = 1;
  ASSERT_TRUE(RegisterSsspUdfs(cluster.udfs(), cfg).ok());
  auto plan = BuildSsspDeltaPlan(cfg);
  ASSERT_TRUE(plan.ok());

  QueryOptions options;
  options.faults.seed = 11;
  options.faults.strategy = RecoveryStrategy::kIncremental;
  FaultEvent c1;
  c1.kind = FaultEvent::Kind::kCrash;
  c1.worker = 1;
  c1.at_stratum = 1;
  FaultEvent c2;
  c2.kind = FaultEvent::Kind::kCrash;
  c2.worker = 3;
  c2.at_stratum = 2;
  FaultEvent r1;
  r1.kind = FaultEvent::Kind::kRestore;
  r1.worker = 1;
  r1.at_stratum = 3;
  options.faults.events = {c1, c2, r1};
  auto run = cluster.Run(*plan, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(cluster.LiveWorkers(), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(run->chaos.crashes, 2);
  EXPECT_EQ(run->chaos.restores, 1);

  auto dist = DistancesFromState(run->fixpoint_state, graph.num_vertices);
  ASSERT_TRUE(dist.ok());
  EXPECT_EQ(*dist, ReferenceSssp(graph, 1));

  // The restored worker participates in the next query (its inbox must
  // accept traffic again) and the answer still matches.
  auto run2 = cluster.Run(*plan);
  ASSERT_TRUE(run2.ok()) << run2.status().ToString();
  auto dist2 = DistancesFromState(run2->fixpoint_state, graph.num_vertices);
  ASSERT_TRUE(dist2.ok());
  EXPECT_EQ(*dist2, ReferenceSssp(graph, 1));
}

}  // namespace
}  // namespace rex
