// Tests for the Hadoop-in-REX wrap configuration (§4.4) and the DBMS X
// accumulating recursive-SQL baseline (§6.4).
#include <gtest/gtest.h>

#include <cmath>

#include "algos/reference.h"
#include "dbmsx/dbmsx.h"
#include "wrap/hadoop_wrap.h"

namespace rex {
namespace {

TEST(WrapTest, SingleJobWordCountInsideRex) {
  EngineConfig cfg;
  cfg.num_workers = 3;
  Cluster cluster(cfg);

  // A word-count "Hadoop class".
  MapFn map = [](const KeyValue& rec, std::vector<KeyValue>* out) -> Status {
    const std::string& text = rec.value.AsString();
    size_t i = 0;
    while (i < text.size()) {
      size_t j = text.find(' ', i);
      if (j == std::string::npos) j = text.size();
      if (j > i) {
        out->push_back(
            KeyValue{Value(text.substr(i, j - i)), Value(int64_t{1})});
      }
      i = j + 1;
    }
    return Status::OK();
  };
  ReduceFn reduce = [](const Value& key, const std::vector<Value>& values,
                       std::vector<KeyValue>* out) -> Status {
    int64_t total = 0;
    for (const Value& v : values) total += v.AsInt();
    out->push_back(KeyValue{key, Value(total)});
    return Status::OK();
  };
  ASSERT_TRUE(
      RegisterHadoopClass(cluster.udfs(), "WordCount", map, reduce, reduce)
          .ok());

  ASSERT_TRUE(cluster
                  .CreateTable("docs",
                               Schema{{"k", ValueType::kInt},
                                      {"v", ValueType::kString}},
                               0,
                               {Tuple{Value(1), Value("a b a")},
                                Tuple{Value(2), Value("b c")},
                                Tuple{Value(3), Value("a")}})
                  .ok());

  WrapJobPlanOptions options;
  options.hadoop_class = "WordCount";
  options.input_table = "docs";
  options.use_combiner = true;
  auto plan = BuildWrapJobPlan(options);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto run = cluster.Run(*plan);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  std::map<std::string, int64_t> counts;
  for (const Tuple& t : run->results) {
    counts[t.field(0).AsString()] = t.field(1).AsInt();
  }
  EXPECT_EQ(counts["a"], 3);
  EXPECT_EQ(counts["b"], 2);
  EXPECT_EQ(counts["c"], 1);
}

TEST(WrapTest, ChainedJobsFeedDirectlyWithoutMaterialization) {
  EngineConfig cfg;
  cfg.num_workers = 3;
  Cluster cluster(cfg);

  // Stage 1: word count. Stage 2: histogram of counts (count -> #words).
  MapFn split = [](const KeyValue& rec,
                   std::vector<KeyValue>* out) -> Status {
    const std::string& text = rec.value.AsString();
    size_t i = 0;
    while (i < text.size()) {
      size_t j = text.find(' ', i);
      if (j == std::string::npos) j = text.size();
      if (j > i) {
        out->push_back(
            KeyValue{Value(text.substr(i, j - i)), Value(int64_t{1})});
      }
      i = j + 1;
    }
    return Status::OK();
  };
  ReduceFn sum = [](const Value& key, const std::vector<Value>& values,
                    std::vector<KeyValue>* out) -> Status {
    int64_t total = 0;
    for (const Value& v : values) total += v.AsInt();
    out->push_back(KeyValue{key, Value(total)});
    return Status::OK();
  };
  MapFn invert = [](const KeyValue& rec,
                    std::vector<KeyValue>* out) -> Status {
    out->push_back(KeyValue{rec.value, Value(int64_t{1})});
    return Status::OK();
  };
  ASSERT_TRUE(
      RegisterHadoopClass(cluster.udfs(), "WC", split, sum, sum).ok());
  ASSERT_TRUE(
      RegisterHadoopClass(cluster.udfs(), "Hist", invert, sum, sum).ok());

  ASSERT_TRUE(cluster
                  .CreateTable("docs",
                               Schema{{"k", ValueType::kInt},
                                      {"v", ValueType::kString}},
                               0,
                               {Tuple{Value(1), Value("a b a c")},
                                Tuple{Value(2), Value("b c d d")},
                                Tuple{Value(3), Value("a")}})
                  .ok());
  // Words: a=3, b=2, c=2, d=2 -> histogram: count 3 -> 1 word,
  // count 2 -> 3 words.
  auto plan = BuildWrapChainPlan(
      "docs", {WrapChainStage{"WC", true}, WrapChainStage{"Hist", true}});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto run = cluster.Run(*plan);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  std::map<int64_t, int64_t> histogram;
  for (const Tuple& t : run->results) {
    histogram[t.field(0).AsInt()] = t.field(1).AsInt();
  }
  EXPECT_EQ(histogram[3], 1);
  EXPECT_EQ(histogram[2], 3);
}

TEST(WrapTest, IterativePageRankMatchesReference) {
  GraphGenOptions opt;
  opt.num_vertices = 200;
  opt.num_edges = 1200;
  opt.seed = 71;
  GraphData graph = GenerateRmatGraph(opt);

  EngineConfig cfg;
  cfg.num_workers = 3;
  Cluster cluster(cfg);
  ASSERT_TRUE(SetupWrapPageRank(&cluster, graph).ok());
  auto plan = BuildWrapPageRankPlan();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  QueryOptions options;
  options.terminate = [](int stratum, const VoteStats&) {
    return stratum >= 40;  // wrap runs fixed iterations (§6: no
                           // convergence testing in wrap mode)
  };
  auto run = cluster.Run(*plan, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  auto ranks = WrapRanksFromState(run->fixpoint_state, graph.num_vertices);
  ASSERT_TRUE(ranks.ok()) << ranks.status().ToString();

  std::vector<double> ref = ReferencePageRank(graph, 0.85, 1e-12, 400);
  for (size_t v = 0; v < ref.size(); ++v) {
    EXPECT_NEAR((*ranks)[v], ref[v], 1e-6) << "vertex " << v;
  }
}

TEST(DbmsXTest, AccumulatesStateAndMatchesReference) {
  GraphGenOptions opt;
  opt.num_vertices = 150;
  opt.num_edges = 900;
  opt.seed = 81;
  GraphData graph = GenerateRmatGraph(opt);

  DbmsXConfig config;
  config.iterations = 30;
  auto run = RunDbmsXPageRank(graph, config);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  std::vector<double> ref = ReferencePageRank(graph, 0.85, 1e-12, 300);
  for (size_t v = 0; v < ref.size(); ++v) {
    EXPECT_NEAR(run->ranks[v], ref[v], 1e-5) << "vertex " << v;
  }
  // The hallmark inefficiency: the recursive relation retained roughly
  // one tuple per vertex per iteration instead of one per vertex.
  EXPECT_GT(run->accumulated_tuples, graph.num_vertices * 20);
}

TEST(DbmsXTest, StateGrowsLinearlyWithIterations) {
  GraphGenOptions opt;
  opt.num_vertices = 100;
  opt.num_edges = 500;
  opt.seed = 82;
  GraphData graph = GenerateRmatGraph(opt);

  DbmsXConfig short_run;
  short_run.iterations = 5;
  DbmsXConfig long_run;
  long_run.iterations = 15;
  auto a = RunDbmsXPageRank(graph, short_run);
  auto b = RunDbmsXPageRank(graph, long_run);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT(b->accumulated_tuples, a->accumulated_tuples * 2);
}

}  // namespace
}  // namespace rex
