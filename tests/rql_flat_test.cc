// Additional RQL flat-query coverage: projections, grouped join
// aggregates, calibration-fed optimization, and alias handling.
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "common/rng.h"
#include "optimizer/calibration.h"
#include "rql/compiler.h"

namespace rex {
namespace {

using rql::CompileContext;
using rql::CompileRql;

class RqlFlatTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EngineConfig cfg;
    cfg.num_workers = 3;
    cluster_ = std::make_unique<Cluster>(cfg);
    Rng rng(17);
    std::vector<Tuple> orders;
    for (int64_t o = 0; o < 300; ++o) {
      orders.push_back(Tuple{Value(o),
                             Value(static_cast<int64_t>(rng.NextBelow(20))),
                             Value(static_cast<int64_t>(rng.NextBelow(50)))});
    }
    std::vector<Tuple> customers;
    for (int64_t c = 0; c < 20; ++c) {
      customers.push_back(Tuple{Value(c), Value(c % 3)});
    }
    ASSERT_TRUE(cluster_
                    ->CreateTable("orders",
                                  Schema{{"oid", ValueType::kInt},
                                         {"cid", ValueType::kInt},
                                         {"amount", ValueType::kInt}},
                                  0, orders)
                    .ok());
    ASSERT_TRUE(cluster_
                    ->CreateTable("customers",
                                  Schema{{"cid", ValueType::kInt},
                                         {"region", ValueType::kInt}},
                                  0, customers)
                    .ok());
    ctx_.storage = cluster_->storage();
    ctx_.udfs = cluster_->udfs();
  }

  std::unique_ptr<Cluster> cluster_;
  CompileContext ctx_;
};

TEST_F(RqlFlatTest, ProjectionQuery) {
  auto q = CompileRql("SELECT oid, amount FROM orders WHERE amount > 45",
                      ctx_);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->output_schema.size(), 2u);
  EXPECT_EQ(q->output_schema.field(0).name, "oid");
  auto run = cluster_->Run(q->spec);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_GT(run->results.size(), 0u);
  for (const Tuple& row : run->results) {
    EXPECT_EQ(row.size(), 2u);
    EXPECT_GT(row.field(1).AsInt(), 45);
  }
}

TEST_F(RqlFlatTest, GroupedJoinAggregate) {
  auto q = CompileRql(
      "SELECT region, sum(amount) AS total, count(*) AS n "
      "FROM orders, customers WHERE orders.cid = customers.cid "
      "GROUP BY region",
      ctx_);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->output_schema.field(1).name, "total");
  auto run = cluster_->Run(q->spec);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run->results.size(), 3u);
  int64_t total_n = 0;
  for (const Tuple& row : run->results) {
    total_n += row.field(2).AsInt();
  }
  EXPECT_EQ(total_n, 300);
}

TEST_F(RqlFlatTest, TableAliasesResolve) {
  auto q2 = CompileRql(
      "SELECT region, count(*) FROM orders o, customers c "
      "WHERE o.cid = c.cid AND region = 1 GROUP BY region",
      ctx_);
  ASSERT_TRUE(q2.ok()) << q2.status().ToString();
  auto run = cluster_->Run(q2->spec);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run->results.size(), 1u);
  EXPECT_EQ(run->results[0].field(0), Value(1));
}

TEST_F(RqlFlatTest, AmbiguousColumnRejected) {
  auto q = CompileRql(
      "SELECT cid, count(*) FROM orders, customers "
      "WHERE orders.cid = customers.cid GROUP BY cid",
      ctx_);
  EXPECT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
}

TEST(CalibrationTest, MeasuresPlausibleRates) {
  CalibrationOptions opt;
  opt.cpu_tuples = 200000;
  opt.disk_bytes = 1 << 20;
  opt.net_bytes = 8 << 20;
  auto calib = RunNodeCalibration(opt);
  ASSERT_TRUE(calib.ok()) << calib.status().ToString();
  EXPECT_GT(calib->cpu_tuples_per_sec, 1e5);   // > 100K tuples/s
  EXPECT_LT(calib->cpu_tuples_per_sec, 1e10);
  EXPECT_GT(calib->disk_mb_per_sec, 1.0);
  EXPECT_GT(calib->net_mb_per_sec, 10.0);

  auto cluster_calib = RunClusterCalibration(4, opt);
  ASSERT_TRUE(cluster_calib.ok());
  EXPECT_EQ(cluster_calib->num_nodes(), 4);
  // A calibrated context compiles and runs like a uniform one.
  EngineConfig cfg;
  cfg.num_workers = 3;
  Cluster cluster(cfg);
  ASSERT_TRUE(cluster
                  .CreateTable("t", Schema{{"k", ValueType::kInt}}, 0,
                               {Tuple{Value(1)}, Tuple{Value(2)}})
                  .ok());
  rql::CompileContext ctx;
  ctx.storage = cluster.storage();
  ctx.udfs = cluster.udfs();
  ctx.calibration = *cluster_calib;
  auto q = CompileRql("SELECT count(*) FROM t", ctx);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto run = cluster.Run(q->spec);
  ASSERT_TRUE(run.ok());
  ASSERT_EQ(run->results.size(), 1u);
  EXPECT_EQ(run->results[0].field(0), Value(2));
}

}  // namespace
}  // namespace rex
