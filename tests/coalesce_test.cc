// Delta-coalescing tests (exec/coalesce.h): the fold algebra, idempotent
// dedupe, wire-run packing, and end-to-end on/off equivalence.
//
// Equivalence strength follows each algorithm's determinism envelope: SSSP
// distances are integers folded through order-independent mins, so the
// on/off comparison is exact; PageRank sums doubles whose cross-sender
// arrival order is already nondeterministic run to run, so on/off agrees
// within the same 1e-6 tolerance the chaos sweep uses. The
// ChaosSweepCoalesce test is re-run by `ctest -L chaos` with the full
// REX_CHAOS_SEEDS count (see tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "algos/pagerank.h"
#include "algos/reference.h"
#include "algos/sssp.h"
#include "common/serde.h"
#include "exec/coalesce.h"
#include "sim/fault_schedule.h"

namespace rex {
namespace {

Delta I(int64_t k, int64_t v) { return Delta::Insert(Tuple{Value(k), Value(v)}); }
Delta D(int64_t k, int64_t v) { return Delta::Delete(Tuple{Value(k), Value(v)}); }
Delta R(int64_t k, int64_t old_v, int64_t new_v) {
  return Delta::Replace(Tuple{Value(k), Value(old_v)},
                        Tuple{Value(k), Value(new_v)});
}
Delta U(int64_t k, int64_t v) { return Delta::Update(Tuple{Value(k), Value(v)}); }

DeltaCoalescer KeyedCoalescer(bool dedupe = false, bool pack = false) {
  CoalesceOptions opts;
  opts.key_fields = {0};
  opts.dedupe_idempotent = dedupe;
  opts.pack_runs = pack;
  return DeltaCoalescer(std::move(opts));
}

Delta W(int64_t k, int64_t v, int64_t w) {
  Delta d = Delta::Insert(Tuple{Value(k), Value(v)});
  d.weight = w;
  return d;
}

// ---------------------------------------------------------------- algebra --

// Regression: folding two near-INT64_MAX weights used to be signed-overflow
// UB in the ℤ-set accumulator; it must now surface InvalidArgument. Runs
// under REX_SANITIZE=undefined in CI, which would abort on the old code.
TEST(DeltaCoalescerTest, WeightOverflowSurfacesInvalidArgument) {
  CoalesceStats stats;
  auto res = KeyedCoalescer().Coalesce(
      {W(1, 10, INT64_MAX - 1), W(1, 10, INT64_MAX - 1)}, &stats);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(res.status().message().find("overflow"), std::string::npos);
}

TEST(DeltaCoalescerTest, NegativeWeightOverflowSurfacesInvalidArgument) {
  Delta d1 = D(2, 20);
  d1.weight = INT64_MAX;
  Delta d2 = D(2, 20);
  d2.weight = 2;
  auto res = KeyedCoalescer().Coalesce({d1, d2}, nullptr);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);
}

TEST(DeltaCoalescerTest, NearMaxWeightsThatCancelStillCoalesce) {
  Delta ins = W(3, 30, INT64_MAX - 1);
  Delta del = D(3, 30);
  del.weight = INT64_MAX - 1;
  DeltaVec out = *KeyedCoalescer().Coalesce({ins, del}, nullptr);
  EXPECT_TRUE(out.empty());
}

TEST(DeltaCoalescerTest, Int64MinWeightRejectedAtIngress) {
  Delta d = W(4, 40, INT64_MIN);
  auto res = KeyedCoalescer().Coalesce({d}, nullptr);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(res.status().message().find("INT64_MIN"), std::string::npos);
}

TEST(DeltaSerdeTest, Int64MinWeightRejectedOnDeserialize) {
  Delta d = W(5, 50, 7);
  BufferWriter w;
  w.PutDelta(d);
  std::string bytes = w.bytes();
  // Patch the serialized weight (i64 immediately after the head byte) to
  // INT64_MIN and expect the reader to refuse it.
  ASSERT_GE(bytes.size(), 9u);
  uint64_t min_bits = 0x8000000000000000ULL;
  for (int i = 0; i < 8; ++i) {
    bytes[1 + i] = static_cast<char>((min_bits >> (8 * i)) & 0xff);
  }
  BufferReader r(bytes.data(), bytes.size());
  auto res = r.GetDelta();
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kParseError);
}

TEST(DeltaCoalescerTest, InsertThenDeleteAnnihilates) {
  CoalesceStats stats;
  DeltaVec out = *KeyedCoalescer().Coalesce({I(1, 10), D(1, 10)}, &stats);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats.folded, 2);
  EXPECT_GT(stats.bytes_saved, 0);
}

TEST(DeltaCoalescerTest, DeleteThenReinsertAnnihilates) {
  DeltaVec out = *KeyedCoalescer().Coalesce({D(1, 10), I(1, 10)}, nullptr);
  EXPECT_TRUE(out.empty());
}

TEST(DeltaCoalescerTest, DeleteThenInsertOfNewValueFoldsToReplace) {
  DeltaVec out = *KeyedCoalescer().Coalesce({D(1, 10), I(1, 11)}, nullptr);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], R(1, 10, 11));
}

TEST(DeltaCoalescerTest, FiveRevisionsFoldToOneDelta) {
  // The motivating case: a key revised five times inside one stratum ships
  // one net delta, not five.
  DeltaVec in = {I(7, 0), R(7, 0, 1), R(7, 1, 2), R(7, 2, 3), R(7, 3, 4)};
  CoalesceStats stats;
  DeltaVec out = *KeyedCoalescer().Coalesce(std::move(in), &stats);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], I(7, 4));
  EXPECT_EQ(stats.deltas_in, 5);
  EXPECT_EQ(stats.deltas_out, 1);
  EXPECT_EQ(stats.folded, 4);
}

TEST(DeltaCoalescerTest, ReplaceChainsCompose) {
  DeltaVec out =
      *KeyedCoalescer().Coalesce({R(3, 1, 2), R(3, 2, 5), R(3, 5, 9)}, nullptr);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], R(3, 1, 9));
}

TEST(DeltaCoalescerTest, ReplaceRoundTripDropsEntirely) {
  DeltaVec out = *KeyedCoalescer().Coalesce({R(3, 1, 2), R(3, 2, 1)}, nullptr);
  EXPECT_TRUE(out.empty());
}

TEST(DeltaCoalescerTest, ReplaceThenDeleteFoldsToDeleteOfOriginal) {
  DeltaVec out = *KeyedCoalescer().Coalesce({R(4, 1, 2), D(4, 2)}, nullptr);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], D(4, 1));
}

TEST(DeltaCoalescerTest, InsertThenReplaceChainFoldsToInsertOfLast) {
  DeltaVec out = *KeyedCoalescer().Coalesce({I(5, 1), R(5, 1, 2)}, nullptr);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], I(5, 2));
}

TEST(DeltaCoalescerTest, UntouchedStreamComesBackVerbatim) {
  // δ() streams and cross-key traffic that nothing folds must keep their
  // exact order (downstream FP folds are order-sensitive).
  DeltaVec in = {U(1, 10), U(2, 20), U(1, 11), I(3, 30), U(2, 21)};
  DeltaVec expect = in;
  CoalesceStats stats;
  DeltaVec out = *KeyedCoalescer().Coalesce(std::move(in), &stats);
  EXPECT_EQ(out, expect);
  EXPECT_EQ(stats.folded, 0);
  EXPECT_EQ(stats.bytes_saved, 0);
}

TEST(DeltaCoalescerTest, ChainsAreIndependentPerKey) {
  DeltaVec in = {I(1, 10), I(2, 20), R(1, 10, 11), D(2, 20)};
  DeltaVec out = *KeyedCoalescer().Coalesce(std::move(in), nullptr);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], I(1, 11));
}

TEST(DeltaCoalescerTest, IdempotentDedupeDropsExactRepeatsOnly) {
  DeltaVec in = {U(1, 5), U(1, 5), U(1, 3), U(1, 5), U(2, 5)};
  CoalesceStats stats;
  DeltaVec out = *KeyedCoalescer(/*dedupe=*/true).Coalesce(std::move(in),
                                                          &stats);
  EXPECT_EQ(out, (DeltaVec{U(1, 5), U(1, 3), U(2, 5)}));
  EXPECT_EQ(stats.folded, 2);
}

TEST(DeltaCoalescerTest, DedupeOffKeepsRepeats) {
  DeltaVec in = {U(1, 5), U(1, 5)};
  DeltaVec expect = in;
  DeltaVec out = *KeyedCoalescer().Coalesce(std::move(in), nullptr);
  EXPECT_EQ(out, expect);
}

TEST(DeltaCoalescerTest, DedupeIgnoresAnnihilatedInserts) {
  // +t, -t, +t: the pair annihilates, so the trailing insert is NOT a
  // duplicate of a live entry and must survive.
  DeltaVec in = {I(1, 10), D(1, 10), I(1, 10)};
  DeltaVec out = *KeyedCoalescer(/*dedupe=*/true).Coalesce(std::move(in),
                                                          nullptr);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], I(1, 10));
}

// ---------------------------------------------------------------- packing --

/// Per-key subsequence of a stream (order within the key preserved).
DeltaVec KeyRun(const DeltaVec& v, int64_t key) {
  DeltaVec out;
  for (const Delta& d : v) {
    if (d.tuple.size() > 0 && d.tuple.field(0) == Value(key)) {
      out.push_back(d);
    }
  }
  return out;
}

TEST(DeltaPackingTest, PacksUniformRunsAndExpandsExactly) {
  // Key 1's run of three is long enough for packing to shrink the wire;
  // key 2's run of two is not (the batch header outweighs it) and ships
  // raw.
  DeltaVec in = {U(1, 10), U(2, 20), U(1, 11), U(1, 12), U(2, 21)};
  CoalesceStats stats;
  DeltaVec packed =
      *KeyedCoalescer(false, /*pack=*/true).Coalesce(in, &stats);
  ASSERT_EQ(packed.size(), 3u);
  EXPECT_EQ(packed[0].op, DeltaOp::kBatch);
  EXPECT_EQ(packed[1], U(2, 20));
  EXPECT_EQ(packed[2], U(2, 21));
  EXPECT_GT(stats.bytes_saved, 0);
  EXPECT_EQ(stats.folded, 0);  // packing delivers every payload

  auto expanded = DeltaCoalescer::Expand(std::move(packed));
  ASSERT_TRUE(expanded.ok()) << expanded.status().ToString();
  EXPECT_EQ(expanded->size(), in.size());
  // The per-key sequences are byte-identical to the input's.
  EXPECT_EQ(KeyRun(*expanded, 1), KeyRun(in, 1));
  EXPECT_EQ(KeyRun(*expanded, 2), KeyRun(in, 2));
}

TEST(DeltaPackingTest, NeverInflatesTheWire) {
  // Any stream must come out of the packer no larger than it went in.
  DeltaVec in = {U(1, 10), U(1, 11),  // run of two narrow tuples
                 U(2, 20)};
  DeltaVec expect = in;
  size_t in_bytes = 0;
  for (const Delta& d : in) in_bytes += d.ByteSize();
  DeltaVec out = *KeyedCoalescer(false, true).Coalesce(std::move(in), nullptr);
  size_t out_bytes = 0;
  for (const Delta& d : out) out_bytes += d.ByteSize();
  EXPECT_LE(out_bytes, in_bytes);
  // This particular run of two is below the profitability threshold, so
  // the stream is untouched.
  EXPECT_EQ(out, expect);
}

TEST(DeltaPackingTest, SingletonKeysStayUnpacked) {
  DeltaVec in = {U(1, 10), U(2, 20)};
  DeltaVec expect = in;
  DeltaVec out = *KeyedCoalescer(false, true).Coalesce(std::move(in), nullptr);
  EXPECT_EQ(out, expect);
}

TEST(DeltaPackingTest, MixedOpKeysStayUnpacked) {
  // An insert and a δ() on the same key must keep their relative order, so
  // the key is shipped raw.
  DeltaVec in = {U(1, 10), I(1, 11), U(1, 12)};
  DeltaVec expect = in;
  DeltaVec out = *KeyedCoalescer(false, true).Coalesce(std::move(in), nullptr);
  EXPECT_EQ(out, expect);
}

TEST(DeltaPackingTest, WidePayloadRoundTrips) {
  auto wide = [](int64_t k, int64_t a, const std::string& b) {
    return Delta::Update(Tuple{Value(k), Value(a), Value(b)});
  };
  DeltaVec in = {wide(1, 10, "x"), wide(1, 11, "y"), wide(1, 12, "z"),
                 wide(1, 13, "w"), wide(1, 14, "v")};
  DeltaVec packed = *KeyedCoalescer(false, true).Coalesce(in, nullptr);
  ASSERT_EQ(packed.size(), 1u);
  EXPECT_EQ(packed[0].op, DeltaOp::kBatch);
  auto expanded = DeltaCoalescer::Expand(std::move(packed));
  ASSERT_TRUE(expanded.ok()) << expanded.status().ToString();
  EXPECT_EQ(*expanded, in);
}

TEST(DeltaPackingTest, NonLeadingKeyFieldRoundTrips) {
  CoalesceOptions opts;
  opts.key_fields = {1};
  opts.pack_runs = true;
  DeltaCoalescer c(std::move(opts));
  auto mk = [](int64_t payload, int64_t key) {
    return Delta::Update(Tuple{Value(payload), Value(key)});
  };
  DeltaVec in = {mk(10, 7), mk(11, 7), mk(12, 7)};
  DeltaVec packed = *c.Coalesce(in, nullptr);
  ASSERT_EQ(packed.size(), 1u);
  auto expanded = DeltaCoalescer::Expand(std::move(packed));
  ASSERT_TRUE(expanded.ok()) << expanded.status().ToString();
  EXPECT_EQ(*expanded, in);
}

TEST(DeltaPackingTest, ExpandRejectsCorruptBatch) {
  Delta bogus;
  bogus.op = DeltaOp::kBatch;
  bogus.tuple = Tuple{Value(int64_t{1}), Value::List({Value(int64_t{2})})};
  bogus.old_tuple = Tuple{Value(int64_t{9}), Value(int64_t{2}),
                          Value(int64_t{0})};  // op 9 does not exist
  auto expanded = DeltaCoalescer::Expand({bogus});
  EXPECT_FALSE(expanded.ok());

  Delta short_header;
  short_header.op = DeltaOp::kBatch;
  short_header.tuple = Tuple{Value(int64_t{1})};
  short_header.old_tuple = Tuple{Value(int64_t{3})};
  expanded = DeltaCoalescer::Expand({short_header});
  EXPECT_FALSE(expanded.ok());
}

TEST(DeltaPackingTest, ExpandPassesPlainStreamsThrough) {
  DeltaVec in = {U(1, 10), I(2, 20)};
  DeltaVec expect = in;
  auto expanded = DeltaCoalescer::Expand(std::move(in));
  ASSERT_TRUE(expanded.ok());
  EXPECT_EQ(*expanded, expect);
}

TEST(DeltaPackingTest, ReplaceWithOldTupleRoundTripsUnpacked) {
  // A ->(t') composite next to a packable run: the replace must come
  // through pack/expand with its old_tuple intact (it regressed once —
  // the checkpoint encoding silently dropped old_tuple, turning the
  // composite into a bare insert on replay).
  DeltaVec in = {R(1, 10, 11), U(2, 20), U(2, 21), U(2, 22)};
  DeltaVec packed = *KeyedCoalescer(false, /*pack=*/true).Coalesce(in, nullptr);
  ASSERT_GE(packed.size(), 2u);
  EXPECT_EQ(packed[0], R(1, 10, 11));  // composites never enter a batch
  auto expanded = DeltaCoalescer::Expand(std::move(packed));
  ASSERT_TRUE(expanded.ok()) << expanded.status().ToString();
  EXPECT_EQ(*expanded, in);
  // And the composite survives the wire/checkpoint encoding bit-for-bit.
  auto back = DeserializeDelta(SerializeDelta(in[0]));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, in[0]);
  EXPECT_EQ(back->old_tuple, in[0].old_tuple);
}

TEST(DeltaPackingTest, WeightedDeltasNeverPack) {
  // Run packing carries no per-payload weight slot, so a weight != 1
  // survivor must stay a plain delta even inside a uniform same-key run.
  DeltaVec in = {I(1, 10), Delta::Weighted(Tuple{Value(int64_t{1}),
                                                 Value(int64_t{11})}, 3),
                 I(1, 12)};
  DeltaVec expect = in;
  DeltaVec packed = *KeyedCoalescer(false, /*pack=*/true)
                        .Coalesce(std::move(in), nullptr);
  for (const Delta& d : packed) EXPECT_NE(d.op, DeltaOp::kBatch);
  auto expanded = DeltaCoalescer::Expand(std::move(packed));
  ASSERT_TRUE(expanded.ok());
  EXPECT_EQ(*expanded, expect);
}

TEST(DeltaPackingTest, ReplaceChainOutputKeepsComposedOldTuple) {
  // {D(k,a), I(k,b)} folds to ->(a→b); the survivor must carry a as its
  // old tuple (not empty), or downstream keyed state deletes nothing.
  DeltaVec out =
      *KeyedCoalescer().Coalesce({D(4, 1), I(4, 2), U(9, 9)}, nullptr);
  ASSERT_EQ(out.size(), 2u);
  ASSERT_EQ(out[0].op, DeltaOp::kReplace);
  EXPECT_EQ(out[0].old_tuple, (Tuple{Value(int64_t{4}), Value(int64_t{1})}));
  auto back = DeserializeDelta(SerializeDelta(out[0]));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, out[0]);
}

// ----------------------------------------------------------- end to end --

EngineConfig E2eConfig(bool coalesce) {
  EngineConfig cfg;
  cfg.num_workers = 4;
  cfg.replication = 3;
  // Large network batches lengthen the per-key runs the packer sees (a
  // flush per stratum rather than every few tuples).
  cfg.network_batch_size = 1024;
  cfg.coalesce_deltas = coalesce;
  cfg.verify_invariants = true;  // Δ-conservation etc. must hold either way
  return cfg;
}

GraphData DenseGraph(uint64_t seed = 23) {
  GraphGenOptions opt;
  opt.num_vertices = 120;
  opt.num_edges = 1800;  // dense: many same-destination contributions
  opt.seed = seed;
  return GenerateRmatGraph(opt);
}

struct E2eRun {
  std::vector<int64_t> distances;
  std::vector<double> ranks;
  int strata = 0;
  int64_t tuples_sent = 0;
  int64_t bytes_sent = 0;
  int64_t deltas_coalesced = 0;
  int64_t coalesce_bytes_saved = 0;
};

E2eRun RunSssp(const GraphData& graph, bool coalesce,
               const FaultSchedule& faults = FaultSchedule{}) {
  Cluster cluster(E2eConfig(coalesce));
  EXPECT_TRUE(LoadGraphTables(&cluster, graph).ok());
  SsspConfig cfg;
  cfg.source = 1;
  // Expose the raw candidate stream to the shuffle (the preaggregation
  // group-by would otherwise collapse duplicates before the rehash).
  cfg.preaggregate = false;
  EXPECT_TRUE(RegisterSsspUdfs(cluster.udfs(), cfg).ok());
  auto plan = BuildSsspDeltaPlan(cfg);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  QueryOptions options;
  options.faults = faults;
  auto run = cluster.Run(*plan, options);
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  E2eRun out;
  auto dist = DistancesFromState(run->fixpoint_state, graph.num_vertices);
  EXPECT_TRUE(dist.ok());
  out.distances = *dist;
  out.strata = run->strata_executed;
  out.tuples_sent = run->profile.tuples_sent;
  out.bytes_sent = run->total_bytes_sent;
  out.deltas_coalesced = run->profile.deltas_coalesced;
  out.coalesce_bytes_saved = run->profile.coalesce_bytes_saved;
  return out;
}

E2eRun RunPageRank(const GraphData& graph, bool coalesce) {
  Cluster cluster(E2eConfig(coalesce));
  EXPECT_TRUE(LoadGraphTables(&cluster, graph).ok());
  PageRankConfig cfg;
  cfg.threshold = 1e-6;
  cfg.preaggregate = false;  // raw contribution stream at the shuffle
  EXPECT_TRUE(RegisterPageRankUdfs(cluster.udfs(), cfg).ok());
  auto plan = BuildPageRankDeltaPlan(cfg);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  auto run = cluster.Run(*plan);
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  E2eRun out;
  auto ranks = RanksFromState(run->fixpoint_state, graph.num_vertices);
  EXPECT_TRUE(ranks.ok());
  out.ranks = *ranks;
  out.tuples_sent = run->profile.tuples_sent;
  out.bytes_sent = run->total_bytes_sent;
  out.deltas_coalesced = run->profile.deltas_coalesced;
  out.coalesce_bytes_saved = run->profile.coalesce_bytes_saved;
  return out;
}

TEST(CoalesceE2E, SsspIdenticalOnVsOffAndShipsLess) {
  GraphData graph = DenseGraph();
  E2eRun on = RunSssp(graph, true);
  E2eRun off = RunSssp(graph, false);
  // Integer mins are order- and multiplicity-insensitive: exact equality.
  EXPECT_EQ(on.distances, off.distances);
  EXPECT_EQ(on.distances, ReferenceSssp(graph, 1));
  EXPECT_LT(on.tuples_sent, off.tuples_sent);
  EXPECT_LT(on.bytes_sent, off.bytes_sent);
  EXPECT_GT(on.deltas_coalesced, 0);
  EXPECT_GT(on.coalesce_bytes_saved, 0);
  EXPECT_EQ(off.deltas_coalesced, 0);
  EXPECT_EQ(off.coalesce_bytes_saved, 0);
}

TEST(CoalesceE2E, PageRankMatchesOnVsOffAndShipsLess) {
  GraphData graph = DenseGraph(31);
  E2eRun on = RunPageRank(graph, true);
  E2eRun off = RunPageRank(graph, false);
  ASSERT_EQ(on.ranks.size(), off.ranks.size());
  for (size_t i = 0; i < on.ranks.size(); ++i) {
    // Same tolerance the chaos sweep uses for PageRank: cross-sender FP
    // summation order is nondeterministic run to run either way.
    EXPECT_NEAR(on.ranks[i], off.ranks[i], 1e-6) << "vertex " << i;
  }
  EXPECT_LT(on.tuples_sent, off.tuples_sent);
  EXPECT_LT(on.bytes_sent, off.bytes_sent);
  EXPECT_GT(on.coalesce_bytes_saved, 0);
}

// Re-run with the full seed pool by `ctest -L chaos` (the chaos_sweep
// entry's --gtest_filter=ChaosSweep* picks this up).
TEST(ChaosSweepCoalesceTest, OnAndOffConvergeIdenticallyUnderFaults) {
  // Larger and sparser than the DenseGraph micro-benchmarks: more strata
  // before convergence leaves room to schedule crashes.
  GraphGenOptions opt;
  opt.num_vertices = 400;
  opt.num_edges = 1600;
  opt.seed = 47;
  GraphData graph = GenerateRmatGraph(opt);
  const std::vector<int64_t> ref = ReferenceSssp(graph, 1);
  // Unfaulted reference run to learn the convergence stratum: crashes must
  // be scheduled well before it or end-of-run schedule validation rejects
  // the run (same recipe as the main chaos sweep).
  E2eRun baseline = RunSssp(graph, true);
  ASSERT_EQ(baseline.distances, ref);
  ChaosProfile profile;
  profile.max_crash_stratum = std::max(0, std::min(3, baseline.strata - 5));
  const char* env = std::getenv("REX_CHAOS_SEEDS");
  const int seeds = env != nullptr && std::atoi(env) > 0 ? std::atoi(env) : 2;
  for (int i = 0; i < seeds; ++i) {
    const uint64_t seed = 4242u + static_cast<uint64_t>(i);
    FaultSchedule schedule = MakeChaosSchedule(seed, profile);
    SCOPED_TRACE("seed " + std::to_string(seed) + ": " +
                 schedule.ToString());
    E2eRun on = RunSssp(graph, true, schedule);
    E2eRun off = RunSssp(graph, false, schedule);
    EXPECT_EQ(on.distances, off.distances);
    EXPECT_EQ(on.distances, ref);
  }
}

}  // namespace
}  // namespace rex
