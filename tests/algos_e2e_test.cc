// End-to-end tests: the full cluster (threads, rehash, punctuation, votes)
// executing the paper's three algorithms, validated against single-threaded
// reference implementations.
#include <gtest/gtest.h>

#include <cmath>

#include "algos/kmeans.h"
#include "algos/pagerank.h"
#include "algos/reference.h"
#include "algos/sssp.h"

namespace rex {
namespace {

EngineConfig SmallConfig(int workers = 4) {
  EngineConfig cfg;
  cfg.num_workers = workers;
  cfg.replication = 3;
  cfg.network_batch_size = 64;
  return cfg;
}

GraphData TestGraph(int64_t vertices = 400, int64_t edges = 2400,
                    uint64_t seed = 11) {
  GraphGenOptions opt;
  opt.num_vertices = vertices;
  opt.num_edges = edges;
  opt.seed = seed;
  return GenerateRmatGraph(opt);
}

double MaxAbsDiff(const std::vector<double>& a, const std::vector<double>& b) {
  double m = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(a[i] - b[i]));
  }
  return m;
}

TEST(PageRankE2E, DeltaMatchesReference) {
  GraphData graph = TestGraph();
  Cluster cluster(SmallConfig());
  ASSERT_TRUE(LoadGraphTables(&cluster, graph).ok());
  PageRankConfig cfg;
  cfg.threshold = 1e-7;
  ASSERT_TRUE(RegisterPageRankUdfs(cluster.udfs(), cfg).ok());
  auto plan = BuildPageRankDeltaPlan(cfg);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto run = cluster.Run(*plan);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_GT(run->strata_executed, 3);
  auto ranks = RanksFromState(run->fixpoint_state, graph.num_vertices);
  ASSERT_TRUE(ranks.ok()) << ranks.status().ToString();
  std::vector<double> ref = ReferencePageRank(graph, 0.85, 1e-12, 500);
  EXPECT_LT(MaxAbsDiff(*ranks, ref), 1e-4);
}

TEST(PageRankE2E, FullModeMatchesReference) {
  GraphData graph = TestGraph();
  Cluster cluster(SmallConfig());
  ASSERT_TRUE(LoadGraphTables(&cluster, graph).ok());
  PageRankConfig cfg;
  cfg.threshold = 1e-7;
  ASSERT_TRUE(RegisterPageRankUdfs(cluster.udfs(), cfg).ok());
  auto plan = BuildPageRankFullPlan(cfg);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto run = cluster.Run(*plan);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  auto ranks = RanksFromState(run->fixpoint_state, graph.num_vertices);
  ASSERT_TRUE(ranks.ok());
  std::vector<double> ref = ReferencePageRank(graph, 0.85, 1e-12, 500);
  EXPECT_LT(MaxAbsDiff(*ranks, ref), 1e-4);
}

TEST(PageRankE2E, DeltaShipsFewerTuplesThanFull) {
  GraphData graph = TestGraph(600, 4000, 5);
  PageRankConfig cfg;
  // The paper's convergence criterion: rank changed by more than 1%.
  cfg.threshold = 0.01;
  cfg.relative = true;

  // Run both configurations for a fixed 30 iterations (explicit
  // termination) and compare the communication volume of the tail
  // iterations, where the Δᵢ set has emptied but the no-delta strategy
  // still re-ships the whole mutable set (the Fig 6b phenomenon).
  auto run_with = [&](bool delta) -> int64_t {
    Cluster cluster(SmallConfig());
    EXPECT_TRUE(LoadGraphTables(&cluster, graph).ok());
    EXPECT_TRUE(RegisterPageRankUdfs(cluster.udfs(), cfg).ok());
    auto plan = delta ? BuildPageRankDeltaPlan(cfg)
                      : BuildPageRankFullPlan(cfg);
    EXPECT_TRUE(plan.ok());
    QueryOptions options;
    options.terminate = [](int stratum, const VoteStats&) {
      return stratum >= 30;
    };
    auto run = cluster.Run(*plan, options);
    EXPECT_TRUE(run.ok()) << run.status().ToString();
    int64_t tail_bytes = 0;
    for (const StratumReport& r : run->strata) {
      if (r.stratum >= 22) tail_bytes += r.bytes_sent;
    }
    return tail_bytes;
  };

  int64_t delta_tail = run_with(true);
  int64_t full_tail = run_with(false);
  EXPECT_LT(delta_tail, full_tail / 5)
      << "delta tail=" << delta_tail << " full tail=" << full_tail;
}

TEST(PageRankE2E, DeltaIterationsShrink) {
  GraphData graph = TestGraph();
  Cluster cluster(SmallConfig());
  ASSERT_TRUE(LoadGraphTables(&cluster, graph).ok());
  PageRankConfig cfg;
  cfg.threshold = 0.005;
  cfg.relative = true;
  ASSERT_TRUE(RegisterPageRankUdfs(cluster.udfs(), cfg).ok());
  auto plan = BuildPageRankDeltaPlan(cfg);
  ASSERT_TRUE(plan.ok());
  auto run = cluster.Run(*plan);
  ASSERT_TRUE(run.ok());
  // The Δᵢ set decreases over the tail of the computation (Fig 2).
  ASSERT_GT(run->strata.size(), 4u);
  const auto& strata = run->strata;
  EXPECT_LT(strata[strata.size() - 2].stats.new_tuples,
            strata[1].stats.new_tuples);
}

TEST(SsspE2E, DeltaMatchesBfs) {
  GraphData graph = TestGraph(500, 2000, 77);
  Cluster cluster(SmallConfig());
  ASSERT_TRUE(LoadGraphTables(&cluster, graph).ok());
  SsspConfig cfg;
  cfg.source = 3;
  ASSERT_TRUE(RegisterSsspUdfs(cluster.udfs(), cfg).ok());
  auto plan = BuildSsspDeltaPlan(cfg);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto run = cluster.Run(*plan);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  auto dist = DistancesFromState(run->fixpoint_state, graph.num_vertices);
  ASSERT_TRUE(dist.ok());
  std::vector<int64_t> ref = ReferenceSssp(graph, cfg.source);
  EXPECT_EQ(*dist, ref);
}

TEST(SsspE2E, FullModeMatchesBfs) {
  GraphData graph = TestGraph(300, 1500, 99);
  Cluster cluster(SmallConfig(3));
  ASSERT_TRUE(LoadGraphTables(&cluster, graph).ok());
  SsspConfig cfg;
  cfg.source = 0;
  ASSERT_TRUE(RegisterSsspUdfs(cluster.udfs(), cfg).ok());
  auto plan = BuildSsspFullPlan(cfg);
  ASSERT_TRUE(plan.ok());
  auto run = cluster.Run(*plan);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  auto dist = DistancesFromState(run->fixpoint_state, graph.num_vertices);
  ASSERT_TRUE(dist.ok());
  EXPECT_EQ(*dist, ReferenceSssp(graph, 0));
}

TEST(SsspE2E, DeltaRunsToFullReachabilityCheaply) {
  GraphData graph = TestGraph(500, 1200, 13);
  Cluster cluster(SmallConfig());
  ASSERT_TRUE(LoadGraphTables(&cluster, graph).ok());
  SsspConfig cfg;
  cfg.source = 1;
  ASSERT_TRUE(RegisterSsspUdfs(cluster.udfs(), cfg).ok());
  auto plan = BuildSsspDeltaPlan(cfg);
  ASSERT_TRUE(plan.ok());
  auto run = cluster.Run(*plan);
  ASSERT_TRUE(run.ok());
  // Post-frontier strata derive nothing: the Δᵢ set goes to zero and the
  // implicit fixpoint stops (§6.3 "Improved Accuracy").
  EXPECT_EQ(run->strata.back().stats.new_tuples, 0);
}

TEST(KMeansE2E, MatchesLloydFixpoint) {
  GeoGenOptions geo;
  geo.num_base_points = 600;
  geo.num_clusters = 5;
  geo.cluster_stddev = 0.3;
  geo.seed = 4242;
  std::vector<Tuple> points = GenerateGeoPoints(geo);

  KMeansConfig cfg;
  cfg.k = 5;
  Cluster cluster(SmallConfig());
  ASSERT_TRUE(LoadPointsTable(&cluster, points).ok());
  ASSERT_TRUE(RegisterKMeansUdfs(cluster.udfs(), cfg).ok());
  auto plan = BuildKMeansDeltaPlan(cfg);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto run = cluster.Run(*plan);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  auto centroids = CentroidsFromState(run->fixpoint_state);
  ASSERT_TRUE(centroids.ok());
  ASSERT_EQ(centroids->size(), 5u);

  // The engine result must be a Lloyd fixed point: one more reference
  // Lloyd step starting from these centroids must not move any point.
  KMeansResult one_step = ReferenceKMeans(points, *centroids, 2);
  for (size_t c = 0; c < centroids->size(); ++c) {
    EXPECT_NEAR((*centroids)[c].first, one_step.centroids[c].first, 1e-9);
    EXPECT_NEAR((*centroids)[c].second, one_step.centroids[c].second, 1e-9);
  }
}

TEST(KMeansE2E, DeltaWorkShrinksAsItConverges) {
  GeoGenOptions geo;
  geo.num_base_points = 800;
  geo.num_clusters = 6;
  geo.seed = 99;
  KMeansConfig cfg;
  cfg.k = 6;
  Cluster cluster(SmallConfig());
  ASSERT_TRUE(LoadPointsTable(&cluster, GenerateGeoPoints(geo)).ok());
  ASSERT_TRUE(RegisterKMeansUdfs(cluster.udfs(), cfg).ok());
  auto plan = BuildKMeansDeltaPlan(cfg);
  ASSERT_TRUE(plan.ok());
  auto run = cluster.Run(*plan);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_GE(run->strata.size(), 3u);
  // Switching activity must shrink: the last working stratum moves far
  // fewer points than the first assignment pass.
  EXPECT_LT(run->strata[run->strata.size() - 2].stats.new_tuples,
            run->strata[1].stats.new_tuples);
}

}  // namespace
}  // namespace rex
