// Columnar delta-plane tests: the batch plane's contract is bit-identical
// equivalence with the scalar Delta/Tuple path it accelerates, so most of
// these are property tests driving both paths over randomized schemas,
// ops, and weights and demanding exact agreement — conversion round-trips,
// hash kernels (including -0.0, NaN, and beyond-2^53 ints), the compiled
// predicate vs the scalar tree walk, the coalescer's columnar fold vs the
// scalar fold (output and stats), and a full group-by with
// EngineConfig::columnar_batches toggled. The serde round-trip covers the
// columnar wire encoding and its corrupt-input rejection paths.
//
// Also the data-plane bugfix regressions riding in the same change:
//   - AvgFunction tracks an exact int64 sum for all-int groups (the double
//     accumulator silently drifts past 2^53),
//   - TupleSet::Replace is strict on a miss (it used to append while
//     returning false) with the old upsert behavior moved to
//     ReplaceOrInsert,
//   - TupleSet::Find/Get abort on negative field indexes (they used to
//     wrap through size_t and silently miss).
//
// ChaosSweepColumnarTest re-runs the end-to-end on/off comparison under
// seeded fault schedules via `ctest -L chaos` (full REX_CHAOS_SEEDS count).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "algos/pagerank.h"
#include "algos/reference.h"
#include "algos/sssp.h"
#include "common/delta_batch.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/serde.h"
#include "data/generators.h"
#include "exec/coalesce.h"
#include "exec/expr.h"
#include "exec/group_by.h"
#include "exec/operators.h"
#include "exec/tuple_set.h"
#include "exec/vectorized.h"
#include "sim/fault_schedule.h"

namespace rex {
namespace {

// ------------------------------------------------- randomized streams --

/// Random value for a column type. Ints and doubles deliberately include
/// the hash/equality edge cases: negative zero, NaN-free doubles (NaN
/// breaks no kernel but makes streams non-comparable via operator==, so it
/// gets its own test), and ints beyond 2^53 where the double-bridged hash
/// must still match the scalar path.
Value RandomCell(Rng* rng, BatchColType type) {
  switch (type) {
    case BatchColType::kInt: {
      switch (rng->NextBelow(4)) {
        case 0:
          return Value(static_cast<int64_t>(rng->NextBelow(16)));
        case 1:
          return Value(-static_cast<int64_t>(rng->NextBelow(1000)));
        case 2:  // beyond 2^53: int hash must bridge through double
          return Value(static_cast<int64_t>((1LL << 53) +
                                            static_cast<int64_t>(
                                                rng->NextBelow(64))));
        default:
          return Value(static_cast<int64_t>(rng->Next() >> 16));
      }
    }
    case BatchColType::kDouble: {
      switch (rng->NextBelow(4)) {
        case 0:
          return Value(-0.0);
        case 1:
          return Value(0.0);
        case 2:
          return Value(static_cast<double>(rng->NextBelow(8)));
        default:
          return Value(rng->NextDouble(-100.0, 100.0));
      }
    }
    case BatchColType::kString: {
      // Small vocabulary: repeats exercise interning.
      static const char* kVocab[] = {"", "a", "b", "dbpedia", "twitter",
                                     "x", "rex", "Δ"};
      return Value(kVocab[rng->NextBelow(8)]);
    }
  }
  return Value();
}

std::vector<BatchColType> RandomSchema(Rng* rng) {
  std::vector<BatchColType> schema(1 + rng->NextBelow(4));
  for (auto& t : schema) {
    t = static_cast<BatchColType>(rng->NextBelow(3));
  }
  return schema;
}

Tuple RandomRow(Rng* rng, const std::vector<BatchColType>& schema) {
  std::vector<Value> fields;
  fields.reserve(schema.size());
  for (BatchColType t : schema) fields.push_back(RandomCell(rng, t));
  return Tuple(std::move(fields));
}

/// In-domain stream: insert/delete/update rows of one random schema with
/// random weights.
DeltaVec RandomBatchStream(Rng* rng, const std::vector<BatchColType>& schema,
                           size_t n) {
  DeltaVec out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Delta d;
    const uint64_t roll = rng->NextBelow(3);
    d.op = roll == 0 ? DeltaOp::kInsert
                     : roll == 1 ? DeltaOp::kDelete : DeltaOp::kUpdate;
    d.tuple = RandomRow(rng, schema);
    d.weight = 1 + static_cast<int64_t>(rng->NextBelow(3));
    out.push_back(std::move(d));
  }
  return out;
}

// --------------------------------------------------- conversion domain --

TEST(DeltaBatchTest, RoundTripsRandomizedSchemas) {
  Rng rng(0xC01D);
  for (int trial = 0; trial < 50; ++trial) {
    const auto schema = RandomSchema(&rng);
    const DeltaVec in = RandomBatchStream(&rng, schema, 1 + rng.NextBelow(64));
    auto batch = DeltaBatch::FromDeltas(in);
    ASSERT_TRUE(batch.has_value()) << "trial " << trial;
    ASSERT_EQ(batch->NumRows(), in.size());
    ASSERT_EQ(batch->NumColumns(), schema.size());
    EXPECT_EQ(batch->ColumnTypes(), schema);
    // Exact inverse: ops, weights, and every field value.
    const DeltaVec back = batch->ToDeltas();
    ASSERT_EQ(back.size(), in.size());
    for (size_t i = 0; i < in.size(); ++i) {
      EXPECT_EQ(back[i], in[i]) << "trial " << trial << " row " << i;
      EXPECT_EQ(batch->MaterializeRow(i), in[i].tuple);
    }
  }
}

TEST(DeltaBatchTest, RefusesEverythingOutsideTheFastPathDomain) {
  const Tuple row{Value(static_cast<int64_t>(1)), Value(2.0)};
  // Each stream below breaks exactly one domain rule.
  EXPECT_FALSE(DeltaBatch::FromDeltas({}).has_value());
  EXPECT_FALSE(DeltaBatch::FromDeltas({Delta::Insert(Tuple{})}).has_value());
  EXPECT_FALSE(
      DeltaBatch::FromDeltas({Delta::Replace(row, row)}).has_value());
  Delta wire;
  wire.op = DeltaOp::kBatch;
  wire.tuple = row;
  EXPECT_FALSE(DeltaBatch::FromDeltas({wire}).has_value());
  Delta min_weight = Delta::Insert(row);
  min_weight.weight = INT64_MIN;
  EXPECT_FALSE(DeltaBatch::FromDeltas({min_weight}).has_value());
  // Ragged arity.
  EXPECT_FALSE(DeltaBatch::FromDeltas(
                   {Delta::Insert(row),
                    Delta::Insert(Tuple{Value(static_cast<int64_t>(1))})})
                   .has_value());
  // Mixed numeric column.
  EXPECT_FALSE(DeltaBatch::FromDeltas(
                   {Delta::Insert(row),
                    Delta::Insert(Tuple{Value(1.0), Value(2.0)})})
                   .has_value());
  // Null / bool / list cells.
  EXPECT_FALSE(
      DeltaBatch::FromDeltas({Delta::Insert(Tuple{Value::Null()})})
          .has_value());
  EXPECT_FALSE(
      DeltaBatch::FromDeltas({Delta::Insert(Tuple{Value(true)})}).has_value());
  EXPECT_FALSE(DeltaBatch::FromDeltas(
                   {Delta::Insert(Tuple{Value::List({Value(1.0)})})})
                   .has_value());
  // A clean prefix does not survive a bad suffix (never partially converts).
  EXPECT_FALSE(DeltaBatch::FromDeltas(
                   {Delta::Insert(row), Delta::Replace(row, row)})
                   .has_value());
}

TEST(DeltaBatchTest, StringColumnsInternOncePerDistinctString) {
  DeltaVec in;
  for (int i = 0; i < 100; ++i) {
    in.push_back(Delta::Insert(
        Tuple{Value(i % 2 == 0 ? "even" : "odd"), Value("shared")}));
  }
  auto batch = DeltaBatch::FromDeltas(in);
  ASSERT_TRUE(batch.has_value());
  // 3 distinct strings across 200 cells.
  EXPECT_EQ(batch->pool().size(), 3u);
  EXPECT_EQ(batch->pool().arena_bytes(),
            std::string("even").size() + std::string("odd").size() +
                std::string("shared").size());
  // Equal strings share an id; ids hash via the precomputed Value hash.
  const BatchColumn& c0 = batch->column(0);
  EXPECT_EQ(c0.str_ids[0], c0.str_ids[2]);
  EXPECT_NE(c0.str_ids[0], c0.str_ids[1]);
  for (uint32_t id = 0; id < batch->pool().size(); ++id) {
    EXPECT_EQ(batch->pool().HashOf(id), Value(batch->pool().Get(id)).Hash());
  }
}

// -------------------------------------------------------- hash kernels --

TEST(DeltaBatchTest, HashesAndEqualityMatchScalarExactly) {
  Rng rng(0x4A54);
  for (int trial = 0; trial < 40; ++trial) {
    const auto schema = RandomSchema(&rng);
    const DeltaVec in = RandomBatchStream(&rng, schema, 1 + rng.NextBelow(48));
    auto batch = DeltaBatch::FromDeltas(in);
    ASSERT_TRUE(batch.has_value());
    // Random key subset (possibly empty = whole tuple).
    std::vector<int> keys;
    for (size_t c = 0; c < schema.size(); ++c) {
      if (rng.NextBool(0.5)) keys.push_back(static_cast<int>(c));
    }
    const uint64_t seed = rng.Next();
    for (size_t r = 0; r < in.size(); ++r) {
      const Tuple& t = in[r].tuple;
      for (size_t c = 0; c < schema.size(); ++c) {
        EXPECT_EQ(batch->HashValueAt(r, c), t.field(c).Hash());
        EXPECT_TRUE(batch->CellEqualsValue(r, c, t.field(c)));
      }
      if (!keys.empty()) {
        EXPECT_EQ(batch->PartitionHashRow(r, keys), PartitionHash(t, keys));
      }
      // The seeded keyed-state hash: scalar mirror of the group-by / join
      // key loops (empty keys = every column).
      uint64_t want = seed;
      if (keys.empty()) {
        for (size_t c = 0; c < schema.size(); ++c) {
          want = HashCombine(want, t.field(c).Hash());
        }
      } else {
        for (int f : keys) {
          want = HashCombine(want, t.field(static_cast<size_t>(f)).Hash());
        }
      }
      EXPECT_EQ(batch->SeededKeyHashRow(r, seed, keys), want);
      EXPECT_EQ(batch->RowByteSize(r), batch->MaterializeDelta(r).ByteSize());
    }
    // The whole-column kernels agree with the per-row forms.
    std::vector<uint64_t> hashes;
    SeededKeyHashRows(*batch, seed, keys, &hashes);
    for (size_t r = 0; r < in.size(); ++r) {
      EXPECT_EQ(hashes[r], batch->SeededKeyHashRow(r, seed, keys));
    }
    if (!keys.empty()) {
      PartitionHashRows(*batch, keys, &hashes);
      for (size_t r = 0; r < in.size(); ++r) {
        EXPECT_EQ(hashes[r], batch->PartitionHashRow(r, keys));
      }
    }
  }
}

TEST(DeltaBatchTest, NegativeZeroAndNaNMatchScalarSemantics) {
  const Tuple a{Value(-0.0)};
  const Tuple b{Value(0.0)};
  const double nan = std::numeric_limits<double>::quiet_NaN();
  auto batch = DeltaBatch::FromDeltas(
      {Delta::Insert(a), Delta::Insert(b), Delta::Insert(Tuple{Value(nan)})});
  ASSERT_TRUE(batch.has_value());
  // -0.0 == 0.0 and they hash identically (normalized), like Value.
  EXPECT_TRUE(batch->CellsEqual(0, 1, 0));
  EXPECT_EQ(batch->HashValueAt(0, 0), batch->HashValueAt(1, 0));
  EXPECT_EQ(batch->HashValueAt(0, 0), Value(-0.0).Hash());
  // NaN != NaN, exactly like the scalar plain-double compare.
  EXPECT_FALSE(batch->CellsEqual(2, 2, 0));
  EXPECT_FALSE(batch->RowsEqual(2, 2));
  // 2^53 + 1 hashes like the double it bridges through.
  const int64_t big = (1LL << 53) + 1;
  auto big_batch = DeltaBatch::FromDeltas({Delta::Insert(Tuple{Value(big)})});
  ASSERT_TRUE(big_batch.has_value());
  EXPECT_EQ(big_batch->HashValueAt(0, 0), Value(big).Hash());
  EXPECT_EQ(big_batch->HashValueAt(0, 0),
            Value(static_cast<double>(1LL << 53)).Hash());
  EXPECT_TRUE(
      big_batch->CellEqualsValue(0, 0, Value(static_cast<double>(1LL << 53))));
}

// -------------------------------------------------- compiled predicate --

TEST(VectorizedTest, CompiledPredicateMatchesScalarEvaluator) {
  // Fixed (int, double, int) schema; cells still randomized.
  const std::vector<BatchColType> schema = {
      BatchColType::kInt, BatchColType::kDouble, BatchColType::kInt};
  const auto lit_i = [](int64_t v) { return Expr::Const(Value(v)); };
  const auto lit_d = [](double v) { return Expr::Const(Value(v)); };
  const std::vector<ExprPtr> predicates = {
      Expr::Binary(BinOp::kLt, Expr::Column(0), lit_i(8)),
      Expr::Binary(BinOp::kEq,
                   Expr::Binary(BinOp::kMod, Expr::Column(2), lit_i(7)),
                   lit_i(0)),
      Expr::Binary(
          BinOp::kAnd,
          Expr::Binary(BinOp::kGe, Expr::Column(1), lit_d(0.0)),
          Expr::Binary(BinOp::kGt,
                       Expr::Binary(BinOp::kAdd, Expr::Column(0),
                                    Expr::Binary(BinOp::kMul, Expr::Column(2),
                                                 lit_i(2))),
                       lit_i(100))),
      Expr::Binary(BinOp::kOr,
                   Expr::Not(Expr::Binary(BinOp::kLe, Expr::Column(1),
                                          lit_d(0.5))),
                   Expr::Binary(BinOp::kEq, Expr::Column(0), lit_i(7))),
      Expr::Binary(BinOp::kLt,
                   Expr::Binary(BinOp::kDiv, Expr::Column(1), lit_d(2.0)),
                   lit_d(0.3)),
      // Cross-type numeric comparison: int column against double literal.
      Expr::Binary(BinOp::kNe, Expr::Column(0), lit_d(2.0)),
  };
  Rng rng(0xF117E4);
  for (int trial = 0; trial < 20; ++trial) {
    const DeltaVec in = RandomBatchStream(&rng, schema, 1 + rng.NextBelow(80));
    auto batch = DeltaBatch::FromDeltas(in);
    ASSERT_TRUE(batch.has_value());
    for (size_t p = 0; p < predicates.size(); ++p) {
      auto compiled =
          CompiledPredicate::Compile(*predicates[p], batch->ColumnTypes());
      ASSERT_TRUE(compiled.has_value()) << "predicate " << p;
      std::vector<uint8_t> mask;
      compiled->Eval(*batch, &mask);
      ASSERT_EQ(mask.size(), in.size());
      for (size_t r = 0; r < in.size(); ++r) {
        auto want = EvalPredicate(*predicates[p], in[r].tuple, nullptr);
        ASSERT_TRUE(want.ok()) << want.status().ToString();
        EXPECT_EQ(mask[r] != 0, *want)
            << "predicate " << p << " row " << in[r].tuple.ToString();
      }
    }
  }
}

TEST(VectorizedTest, CompileRefusesWhatItCannotProveTotal) {
  const std::vector<BatchColType> ints = {BatchColType::kInt,
                                          BatchColType::kInt};
  const auto col = [](int i) { return Expr::Column(i); };
  // Division by a column (could be zero at runtime).
  EXPECT_FALSE(CompiledPredicate::Compile(
                   *Expr::Binary(BinOp::kEq,
                                 Expr::Binary(BinOp::kDiv, col(0), col(1)),
                                 Expr::Const(Value(static_cast<int64_t>(1)))),
                   ints)
                   .has_value());
  // Division by a zero literal.
  EXPECT_FALSE(
      CompiledPredicate::Compile(
          *Expr::Binary(BinOp::kEq,
                        Expr::Binary(BinOp::kDiv, col(0),
                                     Expr::Const(Value(
                                         static_cast<int64_t>(0)))),
                        Expr::Const(Value(static_cast<int64_t>(1)))),
          ints)
          .has_value());
  // UDF calls stay scalar (registry lookup + arbitrary error surface).
  EXPECT_FALSE(CompiledPredicate::Compile(*Expr::Call("f", {col(0)}), ints)
                   .has_value());
  // String operands stay scalar.
  EXPECT_FALSE(
      CompiledPredicate::Compile(
          *Expr::Binary(BinOp::kEq, col(0), Expr::Const(Value("x"))),
          {BatchColType::kString, BatchColType::kInt})
          .has_value());
  // Out-of-range column reference.
  EXPECT_FALSE(CompiledPredicate::Compile(
                   *Expr::Binary(BinOp::kLt, col(5),
                                 Expr::Const(Value(static_cast<int64_t>(1)))),
                   ints)
                   .has_value());
}

// ----------------------------------------------------- coalescer fold --

DeltaVec RandomCoalesceStream(Rng* rng, bool* in_domain) {
  // Two-field int rows keyed on field 0, a mix the weight algebra can
  // fold. One stream in ~4 also injects a replace, forcing the scalar
  // fold even when the columnar option is on.
  DeltaVec out;
  const size_t n = 1 + rng->NextBelow(60);
  const bool updates_only = rng->NextBool(0.5);
  *in_domain = true;
  for (size_t i = 0; i < n; ++i) {
    const int64_t k = static_cast<int64_t>(rng->NextBelow(6));
    const int64_t v = static_cast<int64_t>(rng->NextBelow(4));
    Tuple t{Value(k), Value(v)};
    if (updates_only) {
      out.push_back(Delta::Update(std::move(t)));
    } else if (rng->NextBool(0.08)) {
      Tuple old_t{Value(k), Value(v + 1)};
      out.push_back(Delta::Replace(std::move(old_t), std::move(t)));
      *in_domain = false;
    } else if (rng->NextBool(0.5)) {
      Delta d = Delta::Insert(std::move(t));
      d.weight = 1 + static_cast<int64_t>(rng->NextBelow(3));
      out.push_back(std::move(d));
    } else {
      out.push_back(Delta::Delete(std::move(t)));
    }
  }
  return out;
}

TEST(CoalescerColumnarTest, FoldIsBitIdenticalToScalarIncludingStats) {
  Rng rng(0xF01D);
  int columnar_hits = 0;
  for (int trial = 0; trial < 60; ++trial) {
    bool in_domain = true;
    const DeltaVec in = RandomCoalesceStream(&rng, &in_domain);
    CoalesceOptions opts;
    opts.key_fields = {0};
    opts.dedupe_idempotent = rng.NextBool(0.3);
    CoalesceOptions copts = opts;
    copts.columnar = true;
    CoalesceStats s_stats, c_stats;
    auto s_out = DeltaCoalescer(opts).Coalesce(in, &s_stats);
    auto c_out = DeltaCoalescer(copts).Coalesce(in, &c_stats);
    ASSERT_TRUE(s_out.ok());
    ASSERT_TRUE(c_out.ok());
    ASSERT_EQ(*s_out, *c_out) << "trial " << trial;
    EXPECT_EQ(s_stats.deltas_in, c_stats.deltas_in);
    EXPECT_EQ(s_stats.deltas_out, c_stats.deltas_out);
    EXPECT_EQ(s_stats.folded, c_stats.folded);
    EXPECT_EQ(s_stats.bytes_saved, c_stats.bytes_saved);
    EXPECT_EQ(s_stats.columnar_rows, 0);
    if (!in_domain) {
      EXPECT_EQ(c_stats.columnar_rows, 0) << "trial " << trial;
    }
    if (c_stats.columnar_rows > 0) ++columnar_hits;
  }
  // The columnar fold must actually fire on a healthy share of streams.
  EXPECT_GT(columnar_hits, 20);
}

TEST(CoalescerColumnarTest, WeightOverflowStillSurfacesInvalidArgument) {
  CoalesceOptions opts;
  opts.key_fields = {0};
  opts.columnar = true;
  Delta a = Delta::Insert(Tuple{Value(static_cast<int64_t>(1)),
                                Value(static_cast<int64_t>(10))});
  a.weight = INT64_MAX - 1;
  Delta b = a;
  CoalesceStats stats;
  auto res = DeltaCoalescer(opts).Coalesce({a, b}, &stats);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------------ group-by fold --

struct GroupByHarness {
  Network network;
  PartitionMap pmap;
  UdfRegistry udfs;
  StorageCatalog storage;
  MetricsRegistry metrics;
  VoteBoard votes;
  CheckpointStore checkpoints;
  EngineConfig config;
  ExecContext ctx;

  explicit GroupByHarness(bool columnar) : network(1), pmap({0}, 1) {
    config.columnar_batches = columnar;
    ctx.network = &network;
    ctx.pmap = &pmap;
    ctx.udfs = &udfs;
    ctx.storage = &storage;
    ctx.metrics = &metrics;
    ctx.votes = &votes;
    ctx.checkpoints = &checkpoints;
    ctx.config = &config;
  }
};

/// Runs one wave of `deltas` through a group-by with every built-in
/// aggregate kind and returns the sorted emitted rows.
std::vector<Tuple> RunGroupByWave(const DeltaVec& deltas, bool columnar,
                                  std::vector<int> key_fields,
                                  int value_field) {
  GroupByHarness h(columnar);
  GroupByOp::Params params;
  params.key_fields = std::move(key_fields);
  params.aggs = {{AggKind::kSum, value_field, "sum"},
                 {AggKind::kCount, -1, "n"},
                 {AggKind::kMin, value_field, "min"},
                 {AggKind::kMax, value_field, "max"},
                 {AggKind::kAvg, value_field, "avg"}};
  params.mode = GroupByOp::Mode::kStratum;
  GroupByOp gb(0, params);
  SinkOp sink(1);
  gb.AddOutput(&sink, 0);
  EXPECT_TRUE(gb.Open(&h.ctx).ok());
  EXPECT_TRUE(sink.Open(&h.ctx).ok());
  // Feed in chunks so the columnar side sees multi-row batches.
  constexpr size_t kChunk = 16;
  for (size_t i = 0; i < deltas.size(); i += kChunk) {
    const size_t end = std::min(deltas.size(), i + kChunk);
    DeltaVec chunk(deltas.begin() + static_cast<long>(i),
                   deltas.begin() + static_cast<long>(end));
    EXPECT_TRUE(gb.Consume(0, std::move(chunk)).ok());
  }
  Punctuation punct;
  punct.kind = Punctuation::Kind::kEndOfStratum;
  punct.stratum = 0;
  EXPECT_TRUE(gb.OnPunct(0, punct).ok());
  std::vector<Tuple> rows = sink.results().tuples();
  std::sort(rows.begin(), rows.end());
  if (columnar) {
    EXPECT_GT(h.metrics.Value(metrics::kBatchRows), 0);
  } else {
    EXPECT_EQ(h.metrics.Value(metrics::kBatchRows), 0);
    EXPECT_EQ(h.metrics.Value(metrics::kBatchBatches), 0);
  }
  return rows;
}

TEST(GroupByColumnarTest, AllBuiltinsBitIdenticalToScalar) {
  Rng rng(0x6B0B);
  for (int trial = 0; trial < 25; ++trial) {
    // Insert-biased so min/max groups stay non-empty; key on an int
    // column, aggregate an int or double column.
    const bool double_values = rng.NextBool(0.5);
    DeltaVec stream;
    std::vector<Tuple> live;
    const size_t n = 20 + rng.NextBelow(60);
    for (size_t i = 0; i < n; ++i) {
      if (!live.empty() && rng.NextBool(0.25)) {
        const size_t pick = rng.NextBelow(live.size());
        stream.push_back(Delta::Delete(live[pick]));
        live.erase(live.begin() + static_cast<long>(pick));
        continue;
      }
      Tuple t{Value(static_cast<int64_t>(rng.NextBelow(5))),
              double_values
                  ? Value(rng.NextDouble(-10.0, 10.0))
                  : Value(static_cast<int64_t>(rng.NextBelow(100)))};
      live.push_back(t);
      Delta d = Delta::Insert(std::move(t));
      d.weight = 1 + static_cast<int64_t>(rng.NextBelow(2));
      // A weighted delete must leave at least as many weighted inserts
      // behind; keep weights on inserts only for simplicity.
      stream.push_back(std::move(d));
    }
    const auto scalar = RunGroupByWave(stream, false, {0}, 1);
    const auto columnar = RunGroupByWave(stream, true, {0}, 1);
    ASSERT_EQ(scalar.size(), columnar.size()) << "trial " << trial;
    for (size_t i = 0; i < scalar.size(); ++i) {
      EXPECT_EQ(scalar[i], columnar[i])
          << "trial " << trial << "\n scalar:   " << scalar[i].ToString()
          << "\n columnar: " << columnar[i].ToString();
    }
  }
}

TEST(GroupByColumnarTest, StringKeysAndGlobalGroupMatchScalar) {
  Rng rng(0x6B0C);
  DeltaVec stream;
  static const char* kKeys[] = {"red", "green", "blue"};
  for (int i = 0; i < 60; ++i) {
    stream.push_back(Delta::Insert(
        Tuple{Value(kKeys[rng.NextBelow(3)]),
              Value(static_cast<int64_t>(rng.NextBelow(50)))}));
  }
  // String-keyed groups (key matching via interned cells).
  EXPECT_EQ(RunGroupByWave(stream, false, {0}, 1),
            RunGroupByWave(stream, true, {0}, 1));
  // Empty key = one global group (the bare-seed hash special case).
  EXPECT_EQ(RunGroupByWave(stream, false, {}, 1),
            RunGroupByWave(stream, true, {}, 1));
}

// ------------------------------------------------------- columnar wire --

TEST(SerdeBatchTest, RoundTripsThroughTheColumnarEncoding) {
  Rng rng(0x5E4DE);
  for (int trial = 0; trial < 30; ++trial) {
    const auto schema = RandomSchema(&rng);
    const DeltaVec in = RandomBatchStream(&rng, schema, 1 + rng.NextBelow(40));
    auto batch = DeltaBatch::FromDeltas(in);
    ASSERT_TRUE(batch.has_value());
    const std::string bytes = SerializeDeltaBatch(*batch);
    auto back = DeserializeDeltaBatch(bytes);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back->ToDeltas(), in) << "trial " << trial;
    EXPECT_EQ(back->ColumnTypes(), batch->ColumnTypes());
    // Re-encoding is stable (canonical form).
    EXPECT_EQ(SerializeDeltaBatch(*back), bytes);
  }
}

TEST(SerdeBatchTest, RejectsCorruptEncodings) {
  auto batch = DeltaBatch::FromDeltas(
      {Delta::Insert(Tuple{Value(static_cast<int64_t>(1)), Value("x")}),
       Delta::Delete(Tuple{Value(static_cast<int64_t>(2)), Value("y")})});
  ASSERT_TRUE(batch.has_value());
  const std::string good = SerializeDeltaBatch(*batch);
  ASSERT_TRUE(DeserializeDeltaBatch(good).ok());
  // Truncations at every prefix length must error, never crash.
  for (size_t len = 0; len < good.size(); ++len) {
    EXPECT_FALSE(DeserializeDeltaBatch(good.substr(0, len)).ok())
        << "prefix " << len;
  }
  // Trailing garbage.
  EXPECT_FALSE(DeserializeDeltaBatch(good + "!").ok());
  // Zero rows / zero columns.
  {
    std::string z(good);
    z[0] = z[1] = z[2] = z[3] = '\0';
    EXPECT_FALSE(DeserializeDeltaBatch(z).ok());
  }
  // Bad column type tag (first byte after the two u32 header fields).
  {
    std::string bad(good);
    bad[8] = '\x7f';
    EXPECT_FALSE(DeserializeDeltaBatch(bad).ok());
  }
  // Op byte outside the fast-path domain. The ops sit right after the
  // string pool; locate the first one by diffing against an encoding
  // whose first op differs, then patch it to kReplace / garbage.
  {
    DeltaVec flipped = batch->ToDeltas();
    flipped[0].op = DeltaOp::kUpdate;
    auto flipped_batch = DeltaBatch::FromDeltas(flipped);
    ASSERT_TRUE(flipped_batch.has_value());
    const std::string other = SerializeDeltaBatch(*flipped_batch);
    ASSERT_EQ(other.size(), good.size());
    size_t op_pos = std::string::npos;
    for (size_t i = 0; i < good.size(); ++i) {
      if (good[i] != other[i]) {
        op_pos = i;
        break;
      }
    }
    ASSERT_NE(op_pos, std::string::npos);
    std::string bad(good);
    bad[op_pos] = static_cast<char>(DeltaOp::kReplace);
    auto res = DeserializeDeltaBatch(bad);
    ASSERT_FALSE(res.ok());
    bad[op_pos] = '\x09';
    EXPECT_FALSE(DeserializeDeltaBatch(bad).ok());
  }
}

// ------------------------------------------------- bugfix regressions --

// Regression: avg() accumulated int inputs in a double, silently drifting
// once the exact sum left the 2^53 integer range. All-int groups now fold
// through an exact int64 sum (mirroring sum()'s fast path).
TEST(AggregatesRegressionTest, AvgStaysExactBeyondDoublePrecision) {
  const AggFunction* avg = GetAggFunction(AggKind::kAvg);
  auto state = avg->NewState();
  const int64_t big = 1LL << 53;  // 9007199254740992
  ASSERT_TRUE(avg->Insert(state.get(), Value(big)).ok());
  ASSERT_TRUE(avg->Insert(state.get(), Value(static_cast<int64_t>(1))).ok());
  ASSERT_TRUE(avg->Insert(state.get(), Value(static_cast<int64_t>(1))).ok());
  auto got = avg->Current(state.get());
  ASSERT_TRUE(got.ok());
  // Exact: (2^53 + 2) / 3 via the int accumulator. The double accumulator
  // loses both +1 contributions (2^53 + 1 rounds back to 2^53).
  EXPECT_EQ(got->AsDouble(), static_cast<double>(big + 2) / 3.0);
  EXPECT_NE(got->AsDouble(), static_cast<double>(big) / 3.0);
}

TEST(AggregatesRegressionTest, AvgIntPathSurvivesDeletesAndWeights) {
  const AggFunction* avg = GetAggFunction(AggKind::kAvg);
  auto state = avg->NewState();
  ASSERT_TRUE(
      avg->ApplyWeightedInt(state.get(), (1LL << 53), 1).ok());
  ASSERT_TRUE(avg->ApplyWeightedInt(state.get(), 1, 4).ok());
  ASSERT_TRUE(avg->ApplyWeightedInt(state.get(), 1, -2).ok());
  auto got = avg->Current(state.get());
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->AsDouble(), static_cast<double>((1LL << 53) + 2) / 3.0);
}

TEST(AggregatesRegressionTest, AvgIntOverflowSurfacesError) {
  const AggFunction* avg = GetAggFunction(AggKind::kAvg);
  auto state = avg->NewState();
  ASSERT_TRUE(avg->Insert(state.get(), Value(INT64_MAX)).ok());
  Status st = avg->Insert(state.get(), Value(INT64_MAX));
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("avg() overflow"), std::string::npos)
      << st.ToString();
}

TEST(AggregatesRegressionTest, AvgMixedIntDoubleFallsBackToDoubleSum) {
  const AggFunction* avg = GetAggFunction(AggKind::kAvg);
  auto state = avg->NewState();
  ASSERT_TRUE(avg->Insert(state.get(), Value(static_cast<int64_t>(3))).ok());
  ASSERT_TRUE(avg->Insert(state.get(), Value(1.5)).ok());
  auto got = avg->Current(state.get());
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->AsDouble(), (3.0 + 1.5) / 2.0);
}

// Regression: Replace used to append the replacement on a miss while
// returning false — upserting callers now must opt in via ReplaceOrInsert.
TEST(TupleSetRegressionTest, ReplaceIsStrictAndReplaceOrInsertUpserts) {
  TupleSet s;
  s.Add(Tuple{Value(static_cast<int64_t>(1)), Value("a")});
  const Tuple missing{Value(static_cast<int64_t>(2)), Value("b")};
  EXPECT_FALSE(s.Replace(missing, missing));
  EXPECT_EQ(s.size(), 1u);  // the old code left size() == 2 here
  EXPECT_FALSE(s.ReplaceOrInsert(missing, missing));
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.ReplaceOrInsert(
      missing, Tuple{Value(static_cast<int64_t>(2)), Value("c")}));
  EXPECT_EQ(s.size(), 2u);
  ASSERT_NE(s.Find(Value(static_cast<int64_t>(2))), nullptr);
  EXPECT_EQ(s.Find(Value(static_cast<int64_t>(2)))->field(1), Value("c"));
}

// Regression: a negative field index used to wrap through
// static_cast<size_t> and scan garbage (silent miss at best, OOB read at
// worst). It now aborts loudly.
TEST(TupleSetDeathTest, NegativeFieldIndexAborts) {
  TupleSet s;
  s.Add(Tuple{Value(static_cast<int64_t>(1)), Value(static_cast<int64_t>(2))});
  EXPECT_DEATH(s.Find(Value(static_cast<int64_t>(1)), -1),
               "negative field index");
  EXPECT_DEATH(
      s.Get(Value(static_cast<int64_t>(1)), /*value_field=*/-2),
      "negative field index");
}

// ------------------------------------------------------- e2e + chaos --

EngineConfig ColumnarE2eConfig(bool columnar) {
  EngineConfig cfg;
  cfg.num_workers = 4;
  cfg.replication = 3;
  cfg.network_batch_size = 1024;
  cfg.columnar_batches = columnar;
  cfg.verify_invariants = true;  // Δ-conservation etc. must hold either way
  return cfg;
}

struct ColumnarE2eRun {
  std::vector<int64_t> distances;
  int strata = 0;
  int64_t tuples_sent = 0;
  int64_t batch_rows = 0;
  int64_t batch_fallback_rows = 0;
};

ColumnarE2eRun RunSsspColumnar(const GraphData& graph, bool columnar,
                               const FaultSchedule& faults = FaultSchedule{}) {
  Cluster cluster(ColumnarE2eConfig(columnar));
  EXPECT_TRUE(LoadGraphTables(&cluster, graph).ok());
  SsspConfig cfg;
  cfg.source = 1;
  EXPECT_TRUE(RegisterSsspUdfs(cluster.udfs(), cfg).ok());
  auto plan = BuildSsspDeltaPlan(cfg);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  QueryOptions options;
  options.faults = faults;
  auto run = cluster.Run(*plan, options);
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  ColumnarE2eRun out;
  auto dist = DistancesFromState(run->fixpoint_state, graph.num_vertices);
  EXPECT_TRUE(dist.ok());
  out.distances = *dist;
  out.strata = run->strata_executed;
  out.tuples_sent = run->profile.tuples_sent;
  out.batch_rows = run->profile.batch_rows;
  out.batch_fallback_rows = run->profile.batch_fallback_rows;
  return out;
}

TEST(ColumnarE2E, SsspIdenticalOnVsOffAndBatchesFire) {
  GraphGenOptions opt;
  opt.num_vertices = 120;
  opt.num_edges = 1800;
  opt.seed = 23;
  GraphData graph = GenerateRmatGraph(opt);
  ColumnarE2eRun on = RunSsspColumnar(graph, true);
  ColumnarE2eRun off = RunSsspColumnar(graph, false);
  // Integer mins are order- and multiplicity-insensitive: exact equality,
  // and the wire traffic must be identical too (the plane changes layout,
  // never content).
  EXPECT_EQ(on.distances, off.distances);
  EXPECT_EQ(on.distances, ReferenceSssp(graph, 1));
  EXPECT_EQ(on.strata, off.strata);
  EXPECT_EQ(on.tuples_sent, off.tuples_sent);
  EXPECT_GT(on.batch_rows, 0);
  EXPECT_EQ(off.batch_rows, 0);
  EXPECT_EQ(off.batch_fallback_rows, 0);
}

// Re-run with the full seed pool by `ctest -L chaos` (the chaos_sweep
// entry's --gtest_filter=ChaosSweep* picks this up): crashes, restores,
// and replays must not perturb the columnar/scalar equivalence.
TEST(ChaosSweepColumnarTest, OnAndOffConvergeIdenticallyUnderFaults) {
  GraphGenOptions opt;
  opt.num_vertices = 400;
  opt.num_edges = 1600;
  opt.seed = 53;
  GraphData graph = GenerateRmatGraph(opt);
  const std::vector<int64_t> ref = ReferenceSssp(graph, 1);
  ColumnarE2eRun baseline = RunSsspColumnar(graph, true);
  ASSERT_EQ(baseline.distances, ref);
  ChaosProfile profile;
  profile.max_crash_stratum = std::max(0, std::min(3, baseline.strata - 5));
  const char* env = std::getenv("REX_CHAOS_SEEDS");
  const int seeds = env != nullptr && std::atoi(env) > 0 ? std::atoi(env) : 2;
  for (int i = 0; i < seeds; ++i) {
    const uint64_t seed = 7117u + static_cast<uint64_t>(i);
    FaultSchedule schedule = MakeChaosSchedule(seed, profile);
    SCOPED_TRACE("seed " + std::to_string(seed) + ": " + schedule.ToString());
    ColumnarE2eRun on = RunSsspColumnar(graph, true, schedule);
    ColumnarE2eRun off = RunSsspColumnar(graph, false, schedule);
    EXPECT_EQ(on.distances, off.distances);
    EXPECT_EQ(on.distances, ref);
    EXPECT_GT(on.batch_rows, 0);
    EXPECT_EQ(off.batch_rows, 0);
  }
}

}  // namespace
}  // namespace rex
