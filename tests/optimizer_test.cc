// Optimizer tests (§5): cost model overlap, rank-based UDF ordering and
// migration, join order and rehash placement, pre-aggregation pushdown,
// recursive costing — plus end-to-end execution of optimized plans.
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "data/generators.h"
#include "optimizer/optimizer.h"

namespace rex {
namespace {

TEST(CostModelTest, OverlapTakesBottleneck) {
  ResourceVector a{1.0, 0.0, 0.0};
  ResourceVector b{0.0, 2.0, 0.0};
  // Disjoint resources: pipelined runtime = max, not sum (§5).
  EXPECT_DOUBLE_EQ((a + b).BottleneckTime(), 2.0);
  EXPECT_DOUBLE_EQ(ResourceVector::SequentialTime(a, b), 3.0);
  ResourceVector c{1.5, 0.0, 0.0};
  EXPECT_DOUBLE_EQ((a + c).BottleneckTime(), 2.5);  // same resource adds
}

TEST(CostModelTest, SlowestNodeGovernsCalibration) {
  ClusterCalibration calib;
  calib.nodes.push_back(NodeCalibration{10e6, 200, 200});
  calib.nodes.push_back(NodeCalibration{1e6, 50, 400});
  NodeCalibration slow = calib.Slowest();
  EXPECT_DOUBLE_EQ(slow.cpu_tuples_per_sec, 1e6);
  EXPECT_DOUBLE_EQ(slow.disk_mb_per_sec, 50);
  EXPECT_DOUBLE_EQ(slow.net_mb_per_sec, 200);
}

TEST(CostModelTest, CachingReducesUdfCost) {
  UdfCostProfile profile;
  profile.cost_per_tuple = 100;
  profile.deterministic = true;
  profile.distinct_input_ratio = 0.1;
  EXPECT_DOUBLE_EQ(profile.EffectiveCostPerTuple(0, true), 10.0);
  EXPECT_DOUBLE_EQ(profile.EffectiveCostPerTuple(0, false), 100.0);
  profile.deterministic = false;
  EXPECT_DOUBLE_EQ(profile.EffectiveCostPerTuple(0, true), 100.0);
}

TEST(CostModelTest, CostHintShapesCost) {
  UdfCostProfile profile;
  profile.cost_per_tuple = 2;
  profile.hint = [](double magnitude) { return magnitude; };  // O(n)
  EXPECT_DOUBLE_EQ(profile.EffectiveCostPerTuple(1000, false), 2000.0);
}

TEST(PredicateRankTest, CheapSelectiveFirst) {
  // A cheap, highly selective predicate has the lowest rank.
  EXPECT_LT(PredicateRank(1, 0.1), PredicateRank(1, 0.9));
  EXPECT_LT(PredicateRank(1, 0.5), PredicateRank(100, 0.5));
}

QueryBlock TwoTableQuery() {
  QueryBlock q;
  TableRef orders;
  orders.name = "orders";
  orders.schema = Schema{{"oid", ValueType::kInt}, {"cid", ValueType::kInt}};
  orders.partition_column = "oid";
  TableRef customers;
  customers.name = "customers";
  customers.schema =
      Schema{{"cid", ValueType::kInt}, {"region", ValueType::kInt}};
  customers.partition_column = "cid";
  q.tables = {orders, customers};
  JoinPredSpec j;
  j.left_table = "orders";
  j.left_column = "cid";
  j.right_table = "customers";
  j.right_column = "cid";
  j.key_side = "right";
  q.joins = {j};
  return q;
}

StatsCatalog TwoTableStats() {
  StatsCatalog stats;
  TableStats orders;
  orders.rows = 100000;
  orders.distinct["cid"] = 1000;
  stats.SetTableStats("orders", orders);
  TableStats customers;
  customers.rows = 1000;
  customers.distinct["cid"] = 1000;
  stats.SetTableStats("customers", customers);
  return stats;
}

TEST(OptimizerTest, JoinRehashesOnlyTheMisalignedSide) {
  QueryBlock q = TwoTableQuery();
  StatsCatalog stats = TwoTableStats();
  Optimizer opt(&stats, ClusterCalibration::Uniform(4));
  auto result = opt.Optimize(q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // customers is partitioned on cid (the join key): no rehash needed on
  // its side; orders (partitioned on oid) must move.
  int rehash_count = 0;
  for (const PlanNodeSpec& node : result->spec.nodes()) {
    if (node.type == PlanNodeSpec::Type::kRehash) ++rehash_count;
  }
  EXPECT_EQ(rehash_count, 1);
}

TEST(OptimizerTest, ExpensivePredicateMigratesAboveJoin) {
  QueryBlock q = TwoTableQuery();
  StatsCatalog stats = TwoTableStats();
  // A very expensive, non-selective UDF on orders: since the join with
  // the 1000-row customers side keeps cardinality at ~100000, but stats
  // say the join keeps only a fraction... make the join reducing: orders
  // joining 10 customers.
  TableStats few;
  few.rows = 10;
  few.distinct["cid"] = 1000;
  stats.SetTableStats("customers", few);

  PredicateSpec expensive;
  expensive.table = "orders";
  expensive.udf = "deep_model";
  expensive.udf_args = {"oid"};
  UdfCostProfile prof;
  prof.cost_per_tuple = 1e5;
  prof.selectivity = 0.99;  // drops almost nothing
  stats.SetUdfProfile("deep_model", prof);
  q.predicates = {expensive};

  Optimizer opt(&stats, ClusterCalibration::Uniform(4));
  auto result = opt.Optimize(q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->decisions.predicate_placement.size(), 1u);
  EXPECT_EQ(result->decisions.predicate_placement[0].second, "after-joins");

  // A cheap, selective filter stays pushed.
  PredicateSpec cheap;
  cheap.table = "orders";
  cheap.udf = "quick_check";
  cheap.udf_args = {"oid"};
  UdfCostProfile cheap_prof;
  cheap_prof.cost_per_tuple = 0.5;
  cheap_prof.selectivity = 0.1;
  stats.SetUdfProfile("quick_check", cheap_prof);
  q.predicates = {cheap};
  auto result2 = opt.Optimize(q);
  ASSERT_TRUE(result2.ok());
  ASSERT_EQ(result2->decisions.predicate_placement.size(), 1u);
  EXPECT_EQ(result2->decisions.predicate_placement[0].second,
            "pushdown:orders");
}

TEST(OptimizerTest, RankOrdersPredicatesCheapSelectiveFirst) {
  QueryBlock q = TwoTableQuery();
  StatsCatalog stats = TwoTableStats();
  PredicateSpec a;
  a.table = "orders";
  a.udf = "costly";
  a.udf_args = {"oid"};
  PredicateSpec b;
  b.table = "orders";
  b.udf = "cheap";
  b.udf_args = {"oid"};
  UdfCostProfile costly;
  costly.cost_per_tuple = 50;
  costly.selectivity = 0.5;
  UdfCostProfile cheap;
  cheap.cost_per_tuple = 1;
  cheap.selectivity = 0.5;
  stats.SetUdfProfile("costly", costly);
  stats.SetUdfProfile("cheap", cheap);
  q.predicates = {a, b};  // declared expensive-first

  Optimizer opt(&stats, ClusterCalibration::Uniform(4));
  auto result = opt.Optimize(q);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->decisions.rank_order.size(), 2u);
  EXPECT_EQ(result->decisions.rank_order[0], "cheap");
  EXPECT_EQ(result->decisions.rank_order[1], "costly");
}

TEST(OptimizerTest, BushyThreeWayJoinPicksSelectiveFirst) {
  QueryBlock q;
  for (const char* name : {"a", "b", "c"}) {
    TableRef t;
    t.name = name;
    t.schema = Schema{{"k", ValueType::kInt}, {"v", ValueType::kInt}};
    t.partition_column = "k";
    q.tables.push_back(t);
  }
  JoinPredSpec ab;
  ab.left_table = "a";
  ab.left_column = "k";
  ab.right_table = "b";
  ab.right_column = "k";
  JoinPredSpec bc;
  bc.left_table = "b";
  bc.left_column = "v";
  bc.right_table = "c";
  bc.right_column = "k";
  q.joins = {ab, bc};

  StatsCatalog stats;
  TableStats big;
  big.rows = 1000000;
  big.distinct["k"] = 1000000;
  big.distinct["v"] = 1000;
  stats.SetTableStats("a", big);
  TableStats mid;
  mid.rows = 1000;
  mid.distinct["k"] = 1000;
  mid.distinct["v"] = 1000;
  stats.SetTableStats("b", mid);
  TableStats small;
  small.rows = 100;
  small.distinct["k"] = 100;
  stats.SetTableStats("c", small);

  Optimizer opt(&stats, ClusterCalibration::Uniform(4));
  auto result = opt.Optimize(q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // b ⋈ c first (tiny result) before touching the million-row a.
  EXPECT_EQ(result->decisions.join_tree, "(a ⋈ (b ⋈ c))");
  EXPECT_GT(result->decisions.plans_considered, 1);
}

TEST(OptimizerTest, DisconnectedJoinGraphRejected) {
  QueryBlock q = TwoTableQuery();
  q.joins.clear();
  StatsCatalog stats = TwoTableStats();
  Optimizer opt(&stats, ClusterCalibration::Uniform(4));
  EXPECT_FALSE(opt.Optimize(q).ok());
}

TEST(OptimizerTest, RecursiveEstimationCapsDivergence) {
  CostEstimate base;
  base.output_rows = 1000;
  base.work.cpu = 1.0;
  // A (bogus) step estimate that doubles cardinality: §5.3's capping must
  // hold it at the previous stratum's value rather than exploding.
  auto diverging = [](double rows) {
    CostEstimate st;
    st.output_rows = rows * 2;
    st.work.cpu = rows / 1000.0;
    return st;
  };
  auto [cost, iters] = Optimizer::EstimateRecursive(base, diverging, 10);
  EXPECT_EQ(iters, 10);
  EXPECT_LE(cost.output_rows, 1000.0);
  EXPECT_LE(cost.work.cpu, 1.0 + 10 * 1.0 + 1e-9);

  // A converging step terminates before max_iters.
  auto converging = [](double rows) {
    CostEstimate st;
    st.output_rows = rows / 4;
    st.work.cpu = rows / 1000.0;
    return st;
  };
  auto [cost2, iters2] = Optimizer::EstimateRecursive(base, converging, 100);
  EXPECT_LT(iters2, 10);
  EXPECT_LT(cost2.output_rows, 1.0);
}

// ---- end-to-end: optimized plans actually run correctly ------------------

TEST(OptimizerExecTest, OptimizedJoinAggregateRunsCorrectly) {
  EngineConfig cfg;
  cfg.num_workers = 3;
  Cluster cluster(cfg);

  // orders(oid, cid, amount) partitioned by oid; customers(cid, region).
  std::vector<Tuple> orders;
  Rng rng(3);
  std::vector<int64_t> expected_count(4, 0);
  std::vector<int64_t> expected_sum(4, 0);
  for (int64_t o = 0; o < 500; ++o) {
    int64_t cid = static_cast<int64_t>(rng.NextBelow(40));
    int64_t amount = static_cast<int64_t>(rng.NextBelow(100));
    orders.push_back(Tuple{Value(o), Value(cid), Value(amount)});
    int64_t region = cid % 4;
    expected_count[static_cast<size_t>(region)] += 1;
    expected_sum[static_cast<size_t>(region)] += amount;
  }
  std::vector<Tuple> customers;
  for (int64_t c = 0; c < 40; ++c) {
    customers.push_back(Tuple{Value(c), Value(c % 4)});
  }
  ASSERT_TRUE(cluster
                  .CreateTable("orders",
                               Schema{{"oid", ValueType::kInt},
                                      {"cid", ValueType::kInt},
                                      {"amount", ValueType::kInt}},
                               0, orders)
                  .ok());
  ASSERT_TRUE(cluster
                  .CreateTable("customers",
                               Schema{{"cid", ValueType::kInt},
                                      {"region", ValueType::kInt}},
                               0, customers)
                  .ok());

  QueryBlock q;
  TableRef ot;
  ot.name = "orders";
  ot.schema = Schema{{"oid", ValueType::kInt},
                     {"cid", ValueType::kInt},
                     {"amount", ValueType::kInt}};
  ot.partition_column = "oid";
  TableRef ct;
  ct.name = "customers";
  ct.schema = Schema{{"cid", ValueType::kInt}, {"region", ValueType::kInt}};
  ct.partition_column = "cid";
  q.tables = {ot, ct};
  JoinPredSpec j;
  j.left_table = "orders";
  j.left_column = "cid";
  j.right_table = "customers";
  j.right_column = "cid";
  j.key_side = "right";
  q.joins = {j};
  AggQuerySpec agg;
  agg.group_by = {{"customers", "region"}};
  agg.items = {{AggKind::kSum, "orders", "amount", "total"},
               {AggKind::kCount, "", "", "n"}};
  q.agg = agg;

  StatsCatalog stats;
  TableStats os;
  os.rows = 500;
  os.distinct["cid"] = 40;
  stats.SetTableStats("orders", os);
  TableStats cs;
  cs.rows = 40;
  cs.distinct["cid"] = 40;
  cs.distinct["region"] = 4;
  stats.SetTableStats("customers", cs);

  Optimizer opt(&stats, ClusterCalibration::Uniform(3));
  auto optimized = opt.Optimize(q);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();

  auto run = cluster.Run(optimized->spec);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run->results.size(), 4u);
  for (const Tuple& row : run->results) {
    auto region = static_cast<size_t>(row.field(0).AsInt());
    EXPECT_EQ(row.field(1).AsInt(), expected_sum[region]);
    EXPECT_EQ(row.field(2).AsInt(), expected_count[region]);
  }
}

TEST(OptimizerExecTest, GlobalAggregateGathersToOneWorker) {
  EngineConfig cfg;
  cfg.num_workers = 4;
  Cluster cluster(cfg);
  LineitemGenOptions opt;
  opt.num_rows = 2000;
  std::vector<Tuple> rows = GenerateLineitem(opt);
  double expected_sum = 0;
  int64_t expected_count = 0;
  for (const Tuple& r : rows) {
    if (r.field(1).AsInt() > 1) {
      expected_sum += r.field(4).AsDouble();
      ++expected_count;
    }
  }
  Schema lineitem_schema{{"orderkey", ValueType::kInt},
                         {"linenumber", ValueType::kInt},
                         {"quantity", ValueType::kDouble},
                         {"extendedprice", ValueType::kDouble},
                         {"tax", ValueType::kDouble}};
  ASSERT_TRUE(
      cluster.CreateTable("lineitem", lineitem_schema, 0, rows).ok());

  QueryBlock q;
  TableRef li;
  li.name = "lineitem";
  li.schema = lineitem_schema;
  li.partition_column = "orderkey";
  q.tables = {li};
  PredicateSpec pred;
  pred.table = "lineitem";
  pred.expr = Expr::Binary(BinOp::kGt, Expr::Column(1, "linenumber"),
                           Expr::Const(Value(int64_t{1})));
  pred.selectivity = 6.0 / 7.0;
  q.predicates = {pred};
  AggQuerySpec agg;
  agg.items = {{AggKind::kSum, "lineitem", "tax", "sum_tax"},
               {AggKind::kCount, "", "", "n"}};
  q.agg = agg;

  StatsCatalog stats;
  TableStats ls;
  ls.rows = 2000;
  stats.SetTableStats("lineitem", ls);
  Optimizer optimizer(&stats, ClusterCalibration::Uniform(4));
  auto optimized = optimizer.Optimize(q);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  // The combiner should win: 2000 rows shrink to one partial per worker.
  EXPECT_TRUE(optimized->decisions.preagg_combiner);

  auto run = cluster.Run(optimized->spec);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run->results.size(), 1u);
  EXPECT_NEAR(run->results[0].field(0).AsDouble(), expected_sum, 1e-9);
  EXPECT_EQ(run->results[0].field(1).AsInt(), expected_count);
}

TEST(OptimizerExecTest, AvgSplitsIntoSumCountCompanion) {
  EngineConfig cfg;
  cfg.num_workers = 3;
  Cluster cluster(cfg);
  std::vector<Tuple> rows;
  double sum = 0;
  for (int64_t i = 0; i < 99; ++i) {
    rows.push_back(Tuple{Value(i), Value(static_cast<double>(i))});
    sum += static_cast<double>(i);
  }
  Schema schema{{"k", ValueType::kInt}, {"v", ValueType::kDouble}};
  ASSERT_TRUE(cluster.CreateTable("nums", schema, 0, rows).ok());

  QueryBlock q;
  TableRef t;
  t.name = "nums";
  t.schema = schema;
  t.partition_column = "k";
  q.tables = {t};
  AggQuerySpec agg;
  agg.items = {{AggKind::kAvg, "nums", "v", "avg_v"}};
  q.agg = agg;

  StatsCatalog stats;
  TableStats ns;
  ns.rows = 99;
  stats.SetTableStats("nums", ns);
  Optimizer optimizer(&stats, ClusterCalibration::Uniform(3));
  auto optimized = optimizer.Optimize(q);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  ASSERT_TRUE(optimized->decisions.preagg_combiner);

  auto run = cluster.Run(optimized->spec);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run->results.size(), 1u);
  EXPECT_NEAR(run->results[0].field(0).AsDouble(), sum / 99.0, 1e-9);
}

}  // namespace
}  // namespace rex
