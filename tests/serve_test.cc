// Serving-layer tests (serve/serve.h): standing queries resident over
// shared graph state, with per-subscriber incremental result cursors.
//
// The oracle discipline matches ivm_oracle_test.cc: after every update
// epoch, each subscriber's maintained result state (snapshot + applied
// diffs) must equal a from-scratch run on the mutated graph — SSSP
// exactly, PageRank within 1e-6 (the FP summation-order envelope at a
// 1e-10 propagation threshold). The ChaosSweepServing tests re-run under
// `ctest -L chaos` with the full seed count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <random>
#include <vector>

#include "serve/serve.h"
#include "sim/fault_schedule.h"

namespace rex {
namespace {

EngineConfig ServeClusterConfig() {
  EngineConfig cfg;
  cfg.num_workers = 4;
  cfg.replication = 3;
  cfg.network_batch_size = 64;
  cfg.verify_invariants = true;
  return cfg;
}

GraphData TestGraph(int64_t vertices, int64_t edges, uint64_t seed) {
  GraphGenOptions opt;
  opt.num_vertices = vertices;
  opt.num_edges = edges;
  opt.seed = seed;
  return GenerateRmatGraph(opt);
}

GraphData GraphFromAdjacency(const Adjacency& adj) {
  GraphData g;
  g.num_vertices = static_cast<int64_t>(adj.size());
  for (size_t u = 0; u < adj.size(); ++u) {
    for (int64_t v : adj[u]) {
      g.edges.emplace_back(static_cast<int64_t>(u), v);
    }
  }
  return g;
}

/// Randomized mutation batch: fresh inserts, deletes of existing edges,
/// reweights (multiplicity bumps).
std::vector<EdgeMutation> RandomBatch(std::mt19937_64* rng,
                                      const Adjacency& adj, int size) {
  const int64_t n = static_cast<int64_t>(adj.size());
  std::uniform_int_distribution<int64_t> vertex(0, n - 1);
  std::uniform_int_distribution<int> kind(0, 2);
  std::vector<EdgeMutation> batch;
  auto random_existing = [&](int64_t* u, int64_t* v) {
    for (int tries = 0; tries < 64; ++tries) {
      int64_t cand = vertex(*rng);
      if (adj[static_cast<size_t>(cand)].empty()) continue;
      std::uniform_int_distribution<size_t> pick(
          0, adj[static_cast<size_t>(cand)].size() - 1);
      *u = cand;
      *v = adj[static_cast<size_t>(cand)][pick(*rng)];
      return true;
    }
    return false;
  };
  for (int i = 0; i < size; ++i) {
    int64_t u = 0, v = 0;
    switch (kind(*rng)) {
      case 0:
        batch.push_back({vertex(*rng), vertex(*rng), 1});
        break;
      case 1:
        if (random_existing(&u, &v)) batch.push_back({u, v, -1});
        break;
      default:
        if (random_existing(&u, &v)) batch.push_back({u, v, 2});
        break;
    }
  }
  return batch;
}

std::vector<double> ScratchPageRank(const GraphData& graph,
                                    const PageRankConfig& cfg) {
  Cluster cluster(ServeClusterConfig());
  EXPECT_TRUE(LoadGraphTables(&cluster, graph).ok());
  EXPECT_TRUE(RegisterPageRankUdfs(cluster.udfs(), cfg).ok());
  auto plan = BuildPageRankDeltaPlan(cfg);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  auto run = cluster.Run(*plan);
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  auto ranks = RanksFromState(run->fixpoint_state, graph.num_vertices);
  EXPECT_TRUE(ranks.ok());
  return *ranks;
}

std::vector<int64_t> ScratchSssp(const GraphData& graph,
                                 const SsspConfig& cfg) {
  Cluster cluster(ServeClusterConfig());
  EXPECT_TRUE(LoadGraphTables(&cluster, graph).ok());
  EXPECT_TRUE(RegisterSsspUdfs(cluster.udfs(), cfg).ok());
  auto plan = BuildSsspDeltaPlan(cfg);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  auto run = cluster.Run(*plan);
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  auto dist = DistancesFromState(run->fixpoint_state, graph.num_vertices);
  EXPECT_TRUE(dist.ok());
  return *dist;
}

/// A subscriber's maintained view: key (field 0) -> row, revised by every
/// polled batch exactly as the subscription contract specifies.
using View = std::map<int64_t, Tuple>;

void ApplyBatch(View* view, const ResultBatch& batch) {
  if (batch.snapshot) view->clear();
  for (const Delta& d : batch.diffs) {
    const int64_t key = d.tuple.field(0).AsInt();
    switch (d.op) {
      case DeltaOp::kInsert:
      case DeltaOp::kReplace:
        (*view)[key] = d.tuple;
        break;
      case DeltaOp::kDelete:
        view->erase(key);
        break;
      default:
        ADD_FAILURE() << "unexpected delta op in result batch: "
                      << d.ToString();
    }
  }
}

void DrainCursor(ServingSession* session, int sub, View* view) {
  while (auto batch = session->Poll(sub)) ApplyBatch(view, *batch);
}

// ----------------------------------------------------------- oracle sweep --

TEST(ServingOracle, TwoStandingQueriesMatchOraclePerEpoch) {
  const uint64_t seed = 17;
  GraphData graph = TestGraph(120, 700, seed);
  PageRankConfig pr_cfg;
  pr_cfg.threshold = 1e-10;  // keep drift far below the 1e-6 comparison
  SsspConfig sp_cfg;
  sp_cfg.source = 1;

  Cluster cluster(ServeClusterConfig());
  ASSERT_TRUE(LoadGraphTables(&cluster, graph).ok());
  ASSERT_TRUE(RegisterPageRankUdfs(cluster.udfs(), pr_cfg).ok());
  ASSERT_TRUE(RegisterSsspUdfs(cluster.udfs(), sp_cfg).ok());

  ServingSession session(&cluster);
  auto pr_spec = MakePageRankStandingQuery(graph, pr_cfg);
  ASSERT_TRUE(pr_spec.ok()) << pr_spec.status().ToString();
  auto sp_spec = MakeSsspStandingQuery(graph, sp_cfg);
  ASSERT_TRUE(sp_spec.ok()) << sp_spec.status().ToString();
  auto pr_id = session.Register(std::move(*pr_spec));
  ASSERT_TRUE(pr_id.ok()) << pr_id.status().ToString();
  auto sp_id = session.Register(std::move(*sp_spec));
  ASSERT_TRUE(sp_id.ok()) << sp_id.status().ToString();
  EXPECT_EQ(session.query_count(), 2);
  EXPECT_EQ(cluster.ResidentCount(), 2);

  auto pr_sub = session.Subscribe(*pr_id);
  ASSERT_TRUE(pr_sub.ok());
  auto sp_sub = session.Subscribe(*sp_id);
  ASSERT_TRUE(sp_sub.ok());

  View pr_view, sp_view;
  auto first_pr = session.Poll(*pr_sub);
  ASSERT_TRUE(first_pr.has_value());
  EXPECT_TRUE(first_pr->snapshot);
  EXPECT_EQ(first_pr->epoch, 0);
  ApplyBatch(&pr_view, *first_pr);
  auto first_sp = session.Poll(*sp_sub);
  ASSERT_TRUE(first_sp.has_value());
  EXPECT_TRUE(first_sp->snapshot);
  ApplyBatch(&sp_view, *first_sp);
  ASSERT_EQ(static_cast<int64_t>(pr_view.size()), graph.num_vertices);
  ASSERT_EQ(static_cast<int64_t>(sp_view.size()), graph.num_vertices);

  Adjacency adj = AdjacencyFromGraph(graph);
  std::mt19937_64 rng(seed * 7919 + 1);
  for (int epoch = 1; epoch <= 10; ++epoch) {
    std::vector<EdgeMutation> batch = RandomBatch(&rng, adj, 5);
    ApplyEdgeMutations(&adj, batch);
    ASSERT_TRUE(session.ApplyUpdate(batch).ok()) << "epoch " << epoch;
    EXPECT_EQ(session.epoch(), epoch);
    DrainCursor(&session, *pr_sub, &pr_view);
    DrainCursor(&session, *sp_sub, &sp_view);

    const GraphData now = GraphFromAdjacency(adj);
    const std::vector<double> oracle_ranks = ScratchPageRank(now, pr_cfg);
    const std::vector<int64_t> oracle_dist = ScratchSssp(now, sp_cfg);
    for (int64_t v = 0; v < graph.num_vertices; ++v) {
      ASSERT_TRUE(pr_view.count(v)) << "epoch " << epoch << " vertex " << v;
      EXPECT_NEAR(pr_view[v].field(1).AsDouble(),
                  oracle_ranks[static_cast<size_t>(v)], 1e-6)
          << "epoch " << epoch << " vertex " << v;
      ASSERT_TRUE(sp_view.count(v)) << "epoch " << epoch << " vertex " << v;
      EXPECT_EQ(sp_view[v].field(1).AsInt(),
                oracle_dist[static_cast<size_t>(v)])
          << "epoch " << epoch << " vertex " << v;
    }
  }
  EXPECT_GE(session.metrics()->Value(metrics::kServeEpochs), 10);
}

// ------------------------------------------------------ cursor mechanics --

TEST(ServingCursor, LateSubscriberGetsConvergedSnapshot) {
  GraphData graph = TestGraph(80, 400, 3);
  SsspConfig cfg;
  cfg.source = 0;
  Cluster cluster(ServeClusterConfig());
  ASSERT_TRUE(LoadGraphTables(&cluster, graph).ok());
  ASSERT_TRUE(RegisterSsspUdfs(cluster.udfs(), cfg).ok());
  ServingSession session(&cluster);
  auto spec = MakeSsspStandingQuery(graph, cfg);
  ASSERT_TRUE(spec.ok());
  auto qid = session.Register(std::move(*spec));
  ASSERT_TRUE(qid.ok()) << qid.status().ToString();

  auto early = session.Subscribe(*qid);
  ASSERT_TRUE(early.ok());
  View early_view;
  DrainCursor(&session, *early, &early_view);

  Adjacency adj = AdjacencyFromGraph(graph);
  std::mt19937_64 rng(11);
  for (int epoch = 1; epoch <= 3; ++epoch) {
    std::vector<EdgeMutation> batch = RandomBatch(&rng, adj, 4);
    ApplyEdgeMutations(&adj, batch);
    ASSERT_TRUE(session.ApplyUpdate(batch).ok());
  }
  DrainCursor(&session, *early, &early_view);

  // The late subscriber's first batch is the *current* converged state —
  // identical to what the early subscriber reconstructed from diffs.
  auto late = session.Subscribe(*qid);
  ASSERT_TRUE(late.ok());
  auto batch = session.Poll(*late);
  ASSERT_TRUE(batch.has_value());
  EXPECT_TRUE(batch->snapshot);
  EXPECT_EQ(batch->epoch, 3);
  View late_view;
  ApplyBatch(&late_view, *batch);
  ASSERT_EQ(late_view.size(), early_view.size());
  for (const auto& [key, row] : early_view) {
    ASSERT_TRUE(late_view.count(key));
    EXPECT_TRUE(late_view[key] == row) << "vertex " << key;
  }
  EXPECT_FALSE(session.Poll(*late).has_value());  // caught up
}

TEST(ServingCursor, SlowSubscriberGetsCoalescedFold) {
  GraphData graph = TestGraph(60, 300, 9);
  PageRankConfig cfg;
  cfg.threshold = 1e-8;
  Cluster cluster(ServeClusterConfig());
  ASSERT_TRUE(LoadGraphTables(&cluster, graph).ok());
  ASSERT_TRUE(RegisterPageRankUdfs(cluster.udfs(), cfg).ok());
  ServeOptions opts;
  opts.subscriber_queue_capacity = 2;
  ServingSession session(&cluster, opts);
  auto spec = MakePageRankStandingQuery(graph, cfg);
  ASSERT_TRUE(spec.ok());
  auto qid = session.Register(std::move(*spec));
  ASSERT_TRUE(qid.ok()) << qid.status().ToString();
  auto sub = session.Subscribe(*qid);
  ASSERT_TRUE(sub.ok());
  View view;
  DrainCursor(&session, *sub, &view);  // consume the snapshot

  // Five epochs without a single poll: capacity 2 queues the first two
  // diff batches, everything after folds into one pending net batch.
  Adjacency adj = AdjacencyFromGraph(graph);
  for (int epoch = 1; epoch <= 5; ++epoch) {
    // One fresh edge per epoch; PageRank ranks always move.
    std::vector<EdgeMutation> batch = {
        {epoch % graph.num_vertices, (3 * epoch + 1) % graph.num_vertices,
         1}};
    ApplyEdgeMutations(&adj, batch);
    ASSERT_TRUE(session.ApplyUpdate(batch).ok());
  }
  EXPECT_GE(session.metrics()->Value(metrics::kServeSheds), 1);

  int batches = 0;
  bool saw_coalesced = false;
  int64_t last_epoch = 0;
  while (auto batch = session.Poll(*sub)) {
    EXPECT_GT(batch->epoch, last_epoch);
    last_epoch = batch->epoch;
    saw_coalesced = saw_coalesced || batch->coalesced;
    ApplyBatch(&view, *batch);
    ++batches;
  }
  EXPECT_LE(batches, 3);  // 2 queued + 1 fold, never 5
  EXPECT_TRUE(saw_coalesced);
  EXPECT_EQ(last_epoch, 5);

  // The folded view equals the query's current result exactly.
  auto current = session.CurrentResult(*qid);
  ASSERT_TRUE(current.ok());
  ASSERT_EQ(view.size(), current->size());
  for (const Tuple& row : *current) {
    const int64_t key = row.field(0).AsInt();
    ASSERT_TRUE(view.count(key)) << "vertex " << key;
    EXPECT_TRUE(view[key] == row) << "vertex " << key;
  }
}

TEST(ServingCursor, ModifiedKeysCoverExactlyTheChangedRows) {
  GraphData graph = TestGraph(60, 300, 21);
  SsspConfig cfg;
  cfg.source = 0;
  Cluster cluster(ServeClusterConfig());
  ASSERT_TRUE(LoadGraphTables(&cluster, graph).ok());
  ASSERT_TRUE(RegisterSsspUdfs(cluster.udfs(), cfg).ok());
  ServingSession session(&cluster);
  auto spec = MakeSsspStandingQuery(graph, cfg);
  ASSERT_TRUE(spec.ok());
  const std::vector<int> key_fields = spec->key_fields;
  auto qid = session.Register(std::move(*spec));
  ASSERT_TRUE(qid.ok());
  auto sub = session.Subscribe(*qid);
  ASSERT_TRUE(sub.ok());
  View view;
  DrainCursor(&session, *sub, &view);

  Adjacency adj = AdjacencyFromGraph(graph);
  std::mt19937_64 rng(33);
  std::vector<EdgeMutation> batch = RandomBatch(&rng, adj, 6);
  ApplyEdgeMutations(&adj, batch);
  ASSERT_TRUE(session.ApplyUpdate(batch).ok());

  while (auto rb = session.Poll(*sub)) {
    const View prev = view;
    ApplyBatch(&view, *rb);
    std::vector<Tuple> keys = rb->ModifiedKeys(key_fields);
    EXPECT_EQ(keys.size(), rb->diffs.size());  // one diff per key, deduped
    for (const Tuple& k : keys) {
      const int64_t v = k.field(0).AsInt();
      // modified() visibility: every reported key actually changed.
      const auto old_it = prev.find(v);
      const auto new_it = view.find(v);
      const bool was_live = old_it != prev.end();
      const bool is_live = new_it != view.end();
      const bool changed =
          was_live != is_live ||
          (was_live && is_live && !(old_it->second == new_it->second));
      EXPECT_TRUE(changed)
          << "vertex " << v << " reported modified but did not change";
    }
  }
}

// -------------------------------------------------- admission / eviction --

TEST(ServingAdmission, CapRefusesRegistrationBeyondLimit) {
  GraphData graph = TestGraph(40, 200, 5);
  SsspConfig cfg;
  cfg.source = 0;
  PageRankConfig pr_cfg;
  Cluster cluster(ServeClusterConfig());
  ASSERT_TRUE(LoadGraphTables(&cluster, graph).ok());
  ASSERT_TRUE(RegisterSsspUdfs(cluster.udfs(), cfg).ok());
  ASSERT_TRUE(RegisterPageRankUdfs(cluster.udfs(), pr_cfg).ok());
  ServeOptions opts;
  opts.max_queries = 1;
  ServingSession session(&cluster, opts);

  auto sp_spec = MakeSsspStandingQuery(graph, cfg);
  ASSERT_TRUE(sp_spec.ok());
  auto qid = session.Register(std::move(*sp_spec));
  ASSERT_TRUE(qid.ok()) << qid.status().ToString();

  auto pr_spec = MakePageRankStandingQuery(graph, pr_cfg);
  ASSERT_TRUE(pr_spec.ok());
  auto refused = session.Register(std::move(*pr_spec));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(session.query_count(), 1);

  // Unregistering frees the slot and closes the query's cursors.
  auto sub = session.Subscribe(*qid);
  ASSERT_TRUE(sub.ok());
  ASSERT_TRUE(session.Unregister(*qid).ok());
  EXPECT_EQ(session.query_count(), 0);
  EXPECT_EQ(cluster.ResidentCount(), 0);
  EXPECT_FALSE(session.Poll(*sub).has_value());

  auto pr_spec2 = MakePageRankStandingQuery(graph, pr_cfg);
  ASSERT_TRUE(pr_spec2.ok());
  auto readmitted = session.Register(std::move(*pr_spec2));
  EXPECT_TRUE(readmitted.ok()) << readmitted.status().ToString();
}

// -------------------------------------------------------------- RQL path --

TEST(ServingRql, RegisterStatementAdmitsGenericStandingQuery) {
  GraphData graph;
  graph.num_vertices = 6;
  graph.edges = {{0, 1}, {0, 2}, {1, 3}, {2, 4}, {4, 5}, {5, 0}, {3, 0}};
  Cluster cluster(ServeClusterConfig());
  ASSERT_TRUE(LoadGraphTables(&cluster, graph).ok());
  ServingSession session(&cluster);

  auto qid = session.RegisterRql(
      "REGISTER fanout AS SELECT src, dst FROM graph WHERE src = 0");
  ASSERT_TRUE(qid.ok()) << qid.status().ToString();
  EXPECT_EQ(session.query_name(*qid), "fanout");

  auto sub = session.Subscribe(*qid);
  ASSERT_TRUE(sub.ok());
  auto snapshot = session.Poll(*sub);
  ASSERT_TRUE(snapshot.has_value());
  EXPECT_TRUE(snapshot->snapshot);
  EXPECT_EQ(snapshot->diffs.size(), 2u);  // (0,1), (0,2)

  // A REGISTER without a build_update re-derives per epoch; the diff must
  // carry exactly the new row.
  ASSERT_TRUE(session.ApplyUpdate({{0, 5, 1}}).ok());
  auto diff = session.Poll(*sub);
  ASSERT_TRUE(diff.has_value());
  EXPECT_FALSE(diff->snapshot);
  ASSERT_EQ(diff->diffs.size(), 1u);
  EXPECT_EQ(diff->diffs[0].op, DeltaOp::kInsert);
  EXPECT_EQ(diff->diffs[0].tuple.field(1).AsInt(), 5);

  // A mutation that misses the WHERE clause produces no batch at all.
  ASSERT_TRUE(session.ApplyUpdate({{1, 4, 1}}).ok());
  EXPECT_FALSE(session.Poll(*sub).has_value());

  // Plain statements still refuse the serving path.
  auto plain = session.RegisterRql("SELECT src FROM graph");
  ASSERT_FALSE(plain.ok());
  EXPECT_EQ(plain.status().code(), StatusCode::kInvalidArgument);
}

// ----------------------------------------------------------------- chaos --

/// A crash schedule hitting an epoch's re-convergence while a subscriber
/// is connected: the subscriber must see either the incremental diff or
/// the failover re-derivation — always a complete epoch, never a torn one.
TEST(ChaosSweepServing, SubscriberNeverSeesATornEpoch) {
  const uint64_t seed = 43;
  GraphData graph = TestGraph(100, 500, seed);
  SsspConfig cfg;
  cfg.source = 2;
  Cluster cluster(ServeClusterConfig());
  ASSERT_TRUE(LoadGraphTables(&cluster, graph).ok());
  ASSERT_TRUE(RegisterSsspUdfs(cluster.udfs(), cfg).ok());
  ServingSession session(&cluster);
  auto spec = MakeSsspStandingQuery(graph, cfg);
  ASSERT_TRUE(spec.ok());
  auto qid = session.Register(std::move(*spec));
  ASSERT_TRUE(qid.ok()) << qid.status().ToString();
  // The converged depth pins where re-convergence resumes — and therefore
  // where a boundary crash can actually fire (fault strata are absolute).
  const int resume_stratum =
      session.epoch_profiles().back().strata_executed;

  auto sub = session.Subscribe(*qid);
  ASSERT_TRUE(sub.ok());
  View view;
  DrainCursor(&session, *sub, &view);

  Adjacency adj = AdjacencyFromGraph(graph);
  std::mt19937_64 rng(seed + 1);
  for (int epoch = 1; epoch <= 4; ++epoch) {
    std::vector<EdgeMutation> batch = RandomBatch(&rng, adj, 5);
    ApplyEdgeMutations(&adj, batch);
    FaultSchedule faults;
    if (epoch == 1) {
      // Injected on the first incremental epoch, where the resume stratum
      // is still the register-run depth, so the crash fires mid
      // re-convergence rather than landing past it.
      faults.strategy = RecoveryStrategy::kIncremental;
      FaultEvent crash;
      crash.kind = FaultEvent::Kind::kCrash;
      crash.worker = 1;
      crash.at_stratum = resume_stratum;
      faults.events.push_back(crash);
    }
    ASSERT_TRUE(session.ApplyUpdate(batch, faults).ok())
        << "epoch " << epoch;
    if (epoch == 1) {
      // The schedule must actually have fired: epoch 1's convergence
      // profile records the recovery, proving the subscriber's view below
      // was produced across a mid-epoch crash, not a clean run.
      ASSERT_FALSE(session.epoch_profiles().empty());
      EXPECT_GE(session.epoch_profiles().back().recoveries, 1)
          << "injected crash never fired; the epoch ran clean";
    }
    DrainCursor(&session, *sub, &view);

    const std::vector<int64_t> oracle =
        ScratchSssp(GraphFromAdjacency(adj), cfg);
    for (int64_t v = 0; v < graph.num_vertices; ++v) {
      ASSERT_TRUE(view.count(v)) << "epoch " << epoch << " vertex " << v;
      ASSERT_EQ(view[v].field(1).AsInt(), oracle[static_cast<size_t>(v)])
          << "epoch " << epoch << " vertex " << v;
    }
  }
}

/// Randomized chaos schedules against a two-query session; every epoch's
/// subscriber view must still match the scratch oracle. Failovers are
/// allowed (counted in serve.epoch_failovers) — torn results are not.
TEST(ChaosSweepServing, SeededSchedulesKeepSubscribersConsistent) {
  const char* env = std::getenv("REX_CHAOS_SEEDS");
  const int seeds = env == nullptr ? 1 : std::max(1, std::atoi(env));
  for (int s = 0; s < seeds; ++s) {
    const uint64_t seed = 1009 * static_cast<uint64_t>(s) + 77;
    GraphData graph = TestGraph(80, 400, seed);
    SsspConfig cfg;
    cfg.source = 0;
    Cluster cluster(ServeClusterConfig());
    ASSERT_TRUE(LoadGraphTables(&cluster, graph).ok());
    ASSERT_TRUE(RegisterSsspUdfs(cluster.udfs(), cfg).ok());
    ServingSession session(&cluster);
    auto spec = MakeSsspStandingQuery(graph, cfg);
    ASSERT_TRUE(spec.ok());
    auto qid = session.Register(std::move(*spec));
    ASSERT_TRUE(qid.ok()) << qid.status().ToString();
    const int resume_stratum =
        session.epoch_profiles().back().strata_executed;
    auto sub = session.Subscribe(*qid);
    ASSERT_TRUE(sub.ok());
    View view;
    DrainCursor(&session, *sub, &view);

    Adjacency adj = AdjacencyFromGraph(graph);
    std::mt19937_64 rng(seed);
    for (int epoch = 1; epoch <= 3; ++epoch) {
      std::vector<EdgeMutation> batch = RandomBatch(&rng, adj, 4);
      ApplyEdgeMutations(&adj, batch);
      // Fault strata are absolute and resume advances every epoch, so the
      // crash is pinned at the register run's depth: it hits epoch 1's
      // re-convergence; epochs 2-3 then verify that back-to-back updates
      // after a recovery still serve consistent diffs.
      FaultSchedule faults;
      if (epoch == 1) {
        faults.strategy = seed % 2 == 0 ? RecoveryStrategy::kIncremental
                                        : RecoveryStrategy::kRestart;
        FaultEvent crash;
        crash.kind = FaultEvent::Kind::kCrash;
        crash.worker = static_cast<int>(seed % 4);
        crash.at_stratum = resume_stratum;
        faults.events.push_back(crash);
      }
      ASSERT_TRUE(session.ApplyUpdate(batch, faults).ok())
          << "seed " << seed << " epoch " << epoch;
      DrainCursor(&session, *sub, &view);

      const std::vector<int64_t> oracle =
          ScratchSssp(GraphFromAdjacency(adj), cfg);
      for (int64_t v = 0; v < graph.num_vertices; ++v) {
        ASSERT_TRUE(view.count(v))
            << "seed " << seed << " epoch " << epoch << " vertex " << v;
        ASSERT_EQ(view[v].field(1).AsInt(), oracle[static_cast<size_t>(v)])
            << "seed " << seed << " epoch " << epoch << " vertex " << v;
      }
    }
  }
}

}  // namespace
}  // namespace rex
