// Property test: a persistent group-by fed a random insert/delete/replace
// stream must, after each punctuation wave, hold exactly the aggregates a
// naive recompute over the surviving multiset produces — including emitted
// insert/replace/delete transition deltas downstream.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "exec/group_by.h"
#include "exec/operators.h"

namespace rex {
namespace {

class GroupBySeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GroupBySeedSweep, PersistentAggregatesMatchNaiveRecompute) {
  Network network(1);
  PartitionMap pmap({0}, 1);
  UdfRegistry udfs;
  StorageCatalog storage;
  MetricsRegistry metrics;
  VoteBoard votes;
  CheckpointStore checkpoints;
  EngineConfig config;
  ExecContext ctx;
  ctx.network = &network;
  ctx.pmap = &pmap;
  ctx.udfs = &udfs;
  ctx.storage = &storage;
  ctx.metrics = &metrics;
  ctx.votes = &votes;
  ctx.checkpoints = &checkpoints;
  ctx.config = &config;

  GroupByOp::Params params;
  params.key_fields = {0};
  params.aggs = {{AggKind::kSum, 1, "sum"},
                 {AggKind::kCount, -1, "n"},
                 {AggKind::kMin, 1, "min"},
                 {AggKind::kMax, 1, "max"}};
  params.mode = GroupByOp::Mode::kPersistent;
  GroupByOp gb(0, params);
  // Downstream state view maintained purely from the emitted transitions.
  SinkOp sink(1);
  gb.AddOutput(&sink, 0);
  ASSERT_TRUE(gb.Open(&ctx).ok());
  ASSERT_TRUE(sink.Open(&ctx).ok());

  Rng rng(GetParam());
  std::multiset<std::pair<int64_t, int64_t>> truth;  // (key, value)
  std::vector<Tuple> live;

  Punctuation punct;
  punct.kind = Punctuation::Kind::kEndOfStratum;

  for (int wave = 0; wave < 8; ++wave) {
    for (int step = 0; step < 60; ++step) {
      const double roll = rng.NextDouble();
      if (roll < 0.55 || live.empty()) {
        Tuple t{Value(static_cast<int64_t>(rng.NextBelow(5))),
                Value(static_cast<int64_t>(rng.NextBelow(100)))};
        truth.insert({t.field(0).AsInt(), t.field(1).AsInt()});
        live.push_back(t);
        ASSERT_TRUE(gb.Consume(0, {Delta::Insert(std::move(t))}).ok());
      } else if (roll < 0.8) {
        size_t pick = rng.NextBelow(live.size());
        Tuple t = live[pick];
        live.erase(live.begin() + static_cast<long>(pick));
        truth.erase(truth.find({t.field(0).AsInt(), t.field(1).AsInt()}));
        ASSERT_TRUE(gb.Consume(0, {Delta::Delete(std::move(t))}).ok());
      } else {
        size_t pick = rng.NextBelow(live.size());
        Tuple old_t = live[pick];
        Tuple new_t{Value(static_cast<int64_t>(rng.NextBelow(5))),
                    Value(static_cast<int64_t>(rng.NextBelow(100)))};
        truth.erase(
            truth.find({old_t.field(0).AsInt(), old_t.field(1).AsInt()}));
        truth.insert({new_t.field(0).AsInt(), new_t.field(1).AsInt()});
        live[pick] = new_t;
        ASSERT_TRUE(gb.Consume(0, {Delta::Replace(old_t, new_t)}).ok());
      }
    }
    punct.stratum = wave;
    ASSERT_TRUE(gb.OnPunct(0, punct).ok());

    // Naive recompute per group.
    struct Expect {
      int64_t sum = 0, n = 0;
      int64_t min = INT64_MAX, max = INT64_MIN;
    };
    std::map<int64_t, Expect> expected;
    for (const auto& [k, v] : truth) {
      Expect& e = expected[k];
      e.sum += v;
      e.n += 1;
      e.min = std::min(e.min, v);
      e.max = std::max(e.max, v);
    }
    // The sink's state (built only from transition deltas) must match.
    ASSERT_EQ(sink.results().size(), expected.size()) << "wave " << wave;
    for (const Tuple& row : sink.results()) {
      const int64_t k = row.field(0).AsInt();
      ASSERT_TRUE(expected.count(k)) << "wave " << wave;
      const Expect& e = expected[k];
      EXPECT_EQ(row.field(1).AsInt(), e.sum) << "key " << k;
      EXPECT_EQ(row.field(2).AsInt(), e.n) << "key " << k;
      EXPECT_EQ(row.field(3).AsInt(), e.min) << "key " << k;
      EXPECT_EQ(row.field(4).AsInt(), e.max) << "key " << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupBySeedSweep,
                         ::testing::Values(21, 34, 55, 89));

}  // namespace
}  // namespace rex
