// Failure-injection and recovery tests (§4.3, §6.6): both strategies must
// produce exactly the no-failure answer, and the incremental strategy must
// avoid re-deriving completed strata.
#include <gtest/gtest.h>

#include "algos/pagerank.h"
#include "algos/reference.h"
#include "algos/sssp.h"

namespace rex {
namespace {

EngineConfig RecoveryConfig() {
  EngineConfig cfg;
  cfg.num_workers = 4;
  cfg.replication = 3;
  cfg.network_batch_size = 64;
  return cfg;
}

GraphData RecoveryGraph() {
  GraphGenOptions opt;
  opt.num_vertices = 400;
  opt.num_edges = 1600;
  opt.seed = 321;
  return GenerateRmatGraph(opt);
}

QueryRunResult RunSsspWithFailure(const GraphData& graph,
                                  FailureInjection failure) {
  Cluster cluster(RecoveryConfig());
  EXPECT_TRUE(LoadGraphTables(&cluster, graph).ok());
  SsspConfig cfg;
  cfg.source = 2;
  EXPECT_TRUE(RegisterSsspUdfs(cluster.udfs(), cfg).ok());
  auto plan = BuildSsspDeltaPlan(cfg);
  EXPECT_TRUE(plan.ok());
  QueryOptions options;
  options.failure = failure;
  auto run = cluster.Run(*plan, options);
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  return run.ok() ? std::move(run).value() : QueryRunResult{};
}

class SsspRecoveryTest : public ::testing::TestWithParam<int> {};

TEST_P(SsspRecoveryTest, IncrementalRecoveryMatchesBfs) {
  GraphData graph = RecoveryGraph();
  FailureInjection failure;
  failure.worker = 1;
  failure.before_stratum = GetParam();
  failure.strategy = RecoveryStrategy::kIncremental;
  QueryRunResult run = RunSsspWithFailure(graph, failure);
  EXPECT_TRUE(run.recovered);
  auto dist = DistancesFromState(run.fixpoint_state, graph.num_vertices);
  ASSERT_TRUE(dist.ok()) << dist.status().ToString();
  EXPECT_EQ(*dist, ReferenceSssp(graph, 2));
}

TEST_P(SsspRecoveryTest, RestartRecoveryMatchesBfs) {
  GraphData graph = RecoveryGraph();
  FailureInjection failure;
  failure.worker = 2;
  failure.before_stratum = GetParam();
  failure.strategy = RecoveryStrategy::kRestart;
  QueryRunResult run = RunSsspWithFailure(graph, failure);
  EXPECT_TRUE(run.recovered);
  auto dist = DistancesFromState(run.fixpoint_state, graph.num_vertices);
  ASSERT_TRUE(dist.ok());
  EXPECT_EQ(*dist, ReferenceSssp(graph, 2));
}

INSTANTIATE_TEST_SUITE_P(FailureStrata, SsspRecoveryTest,
                         ::testing::Values(0, 1, 2, 3, 5));

TEST(RecoveryTest, IncrementalDoesLessWorkThanRestart) {
  GraphData graph = RecoveryGraph();
  auto work_with = [&](RecoveryStrategy strategy) -> int64_t {
    Cluster cluster(RecoveryConfig());
    EXPECT_TRUE(LoadGraphTables(&cluster, graph).ok());
    SsspConfig cfg;
    cfg.source = 2;
    EXPECT_TRUE(RegisterSsspUdfs(cluster.udfs(), cfg).ok());
    auto plan = BuildSsspDeltaPlan(cfg);
    EXPECT_TRUE(plan.ok());
    QueryOptions options;
    options.failure.worker = 1;
    options.failure.before_stratum = 4;
    options.failure.strategy = strategy;
    auto run = cluster.Run(*plan, options);
    EXPECT_TRUE(run.ok()) << run.status().ToString();
    // Strata actually executed is the work proxy: restart repeats 0..3.
    return run.ok() ? run->strata_executed : -1;
  };
  int64_t incremental = work_with(RecoveryStrategy::kIncremental);
  int64_t restart = work_with(RecoveryStrategy::kRestart);
  EXPECT_LT(incremental, restart);
}

TEST(RecoveryTest, PageRankIncrementalMatchesNoFailure) {
  GraphData graph = RecoveryGraph();
  PageRankConfig cfg;
  cfg.threshold = 1e-7;

  auto ranks_with = [&](FailureInjection failure) -> std::vector<double> {
    Cluster cluster(RecoveryConfig());
    EXPECT_TRUE(LoadGraphTables(&cluster, graph).ok());
    EXPECT_TRUE(RegisterPageRankUdfs(cluster.udfs(), cfg).ok());
    auto plan = BuildPageRankDeltaPlan(cfg);
    EXPECT_TRUE(plan.ok());
    QueryOptions options;
    options.failure = failure;
    auto run = cluster.Run(*plan, options);
    EXPECT_TRUE(run.ok()) << run.status().ToString();
    auto ranks = RanksFromState(run->fixpoint_state, graph.num_vertices);
    EXPECT_TRUE(ranks.ok());
    return ranks.ok() ? *ranks : std::vector<double>();
  };

  std::vector<double> baseline = ranks_with(FailureInjection{});
  FailureInjection failure;
  failure.worker = 0;
  failure.before_stratum = 3;
  failure.strategy = RecoveryStrategy::kIncremental;
  std::vector<double> recovered = ranks_with(failure);
  ASSERT_EQ(baseline.size(), recovered.size());
  for (size_t v = 0; v < baseline.size(); ++v) {
    EXPECT_NEAR(baseline[v], recovered[v], 1e-6) << "vertex " << v;
  }
}

TEST(RecoveryTest, CheckpointVolumeTracksDeltaSets) {
  GraphData graph = RecoveryGraph();
  Cluster cluster(RecoveryConfig());
  ASSERT_TRUE(LoadGraphTables(&cluster, graph).ok());
  SsspConfig cfg;
  cfg.source = 2;
  ASSERT_TRUE(RegisterSsspUdfs(cluster.udfs(), cfg).ok());
  auto plan = BuildSsspDeltaPlan(cfg);
  ASSERT_TRUE(plan.ok());
  auto run = cluster.Run(*plan);
  ASSERT_TRUE(run.ok());
  // Checkpoints were written for every completed stratum.
  EXPECT_GT(cluster.checkpoints()->total_entries(), 0);
  int64_t tuples = cluster.checkpoints()
                       ->metrics()
                       .Value(metrics::kCheckpointTuples);
  // Sum of per-stratum Δ counts equals the checkpointed tuple count (every
  // vertex is derived at least once, improved distances re-checkpointed).
  int64_t derived = 0;
  for (const auto& r : run->strata) derived += r.stats.new_tuples;
  EXPECT_EQ(tuples, derived);
}

TEST(RecoveryTest, CheckpointingCanBeDisabled) {
  GraphData graph = RecoveryGraph();
  EngineConfig cfg = RecoveryConfig();
  cfg.checkpoint_deltas = false;
  Cluster cluster(cfg);
  ASSERT_TRUE(LoadGraphTables(&cluster, graph).ok());
  SsspConfig scfg;
  scfg.source = 2;
  ASSERT_TRUE(RegisterSsspUdfs(cluster.udfs(), scfg).ok());
  auto plan = BuildSsspDeltaPlan(scfg);
  ASSERT_TRUE(plan.ok());
  auto run = cluster.Run(*plan);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(cluster.checkpoints()->total_entries(), 0);
}

TEST(CheckpointStoreTest, AccessControlHonorsReplicaSets) {
  CheckpointStore store;
  store.Put(/*fixpoint=*/7, /*stratum=*/0, /*owner=*/1, /*replicas=*/{1, 2},
            {Tuple{Value(10)}, Tuple{Value(11)}});
  auto own = store.Read(7, 0, 1);
  ASSERT_TRUE(own.ok());
  EXPECT_EQ(own->size(), 2u);
  auto replica = store.Read(7, 0, 2);
  ASSERT_TRUE(replica.ok());
  EXPECT_EQ(replica->size(), 2u);
  auto outsider = store.Read(7, 0, 3);
  ASSERT_TRUE(outsider.ok());
  EXPECT_TRUE(outsider->empty());
}

TEST(CheckpointStoreTest, OverwriteOnReexecution) {
  CheckpointStore store;
  store.Put(1, 2, 0, {0, 1}, {Tuple{Value(1)}});
  store.Put(1, 2, 0, {0, 1}, {Tuple{Value(2)}, Tuple{Value(3)}});
  auto read = store.Read(1, 2, 0);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->size(), 2u);
  EXPECT_EQ(store.LastCompleteStratum(1), 2);
  EXPECT_EQ(store.LastCompleteStratum(9), -1);
}

TEST(CheckpointStoreTest, GrantRecoveryAccessAdmitsTakeoverReaders) {
  CheckpointStore store;
  store.Put(/*fixpoint=*/3, /*stratum=*/0, /*owner=*/1, /*replicas=*/{1, 2},
            {Tuple{Value(5)}});
  // Worker 3 holds no copy: the DHT refuses it anything to read.
  auto before = store.Read(3, 0, 3);
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(before->empty());

  // Worker 1 fails; worker 3 takes over its ranges. The recovery grant
  // re-replicates the entry to the takeover reader and meters the copy
  // traffic as recovery refetch, not steady-state checkpointing.
  const int64_t checkpoint_bytes =
      store.metrics().GetCounter(metrics::kCheckpointBytes)->value();
  ASSERT_TRUE(store.GrantRecoveryAccess(/*live=*/{0, 2, 3},
                                        /*takeover_readers=*/{3},
                                        /*replication=*/3)
                  .ok());
  auto after = store.Read(3, 0, 3);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size(), 1u);
  EXPECT_GT(
      store.metrics().GetCounter(metrics::kRecoveryRefetchBytes)->value(), 0);
  EXPECT_EQ(store.metrics().GetCounter(metrics::kCheckpointBytes)->value(),
            checkpoint_bytes);
}

TEST(CheckpointStoreTest, GrantRecoveryAccessFailsWithoutLiveCopy) {
  CheckpointStore store;
  store.Put(4, 0, 1, {1, 2}, {Tuple{Value(8)}});
  // Owner and every replica are dead: the Δ set is unrecoverable and
  // incremental recovery must be refused loudly.
  Status st = store.GrantRecoveryAccess(/*live=*/{0, 3},
                                        /*takeover_readers=*/{3},
                                        /*replication=*/3);
  EXPECT_EQ(st.code(), StatusCode::kNodeFailure);
}

TEST(CheckpointStoreTest, ReplicaChoiceSurvivesPartitionMapChange) {
  // The writer picked replicas under the original partition map. After a
  // failure installs a new map, the surviving original replicas keep their
  // copies: a grant adds readers, never revokes them.
  CheckpointStore store;
  store.Put(6, 0, 0, {0, 2}, {Tuple{Value(1)}});
  store.Put(6, 1, 0, {0, 2}, {Tuple{Value(2)}});
  ASSERT_TRUE(store.GrantRecoveryAccess(/*live=*/{0, 2, 3},
                                        /*takeover_readers=*/{3},
                                        /*replication=*/3)
                  .ok());
  for (int stratum : {0, 1}) {
    auto replica = store.Read(6, stratum, 2);
    ASSERT_TRUE(replica.ok());
    EXPECT_EQ(replica->size(), 1u) << "stratum " << stratum;
    auto takeover = store.Read(6, stratum, 3);
    ASSERT_TRUE(takeover.ok());
    EXPECT_EQ(takeover->size(), 1u) << "stratum " << stratum;
  }
  // A second membership change (worker 2 fails next) still finds enough
  // live copies because the first grant topped the entry back up.
  ASSERT_TRUE(store.VerifyReadable(/*live=*/{0, 3}, /*min_copies=*/2).ok());
}

TEST(CheckpointStoreTest, TruncateAfterDropsAbortedStrata) {
  CheckpointStore store;
  store.Put(1, 0, 0, {0, 1}, {Tuple{Value(1)}});
  store.Put(1, 1, 0, {0, 1}, {Tuple{Value(2)}});
  store.Put(1, 2, 0, {0, 1}, {Tuple{Value(3)}});
  EXPECT_EQ(store.LastCompleteStratum(1), 2);
  store.TruncateAfter(0);
  EXPECT_EQ(store.LastCompleteStratum(1), 0);
  auto gone = store.Read(1, 1, 0);
  ASSERT_TRUE(gone.ok());
  EXPECT_TRUE(gone->empty());
  auto kept = store.Read(1, 0, 0);
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(kept->size(), 1u);
}

TEST(CheckpointStoreTest, VerifyReadableFlagsUnderReplication) {
  CheckpointStore store;
  store.Put(2, 0, 1, {1, 2}, {Tuple{Value(9)}});
  EXPECT_TRUE(store.VerifyReadable({0, 1, 2, 3}, 2).ok());
  // With both copy holders dead the invariant checker must trip.
  EXPECT_FALSE(store.VerifyReadable({0, 3}, 2).ok());
  // min_copies is clamped to the live count: a 1-node rump cluster with
  // its single copy alive still passes.
  EXPECT_TRUE(store.VerifyReadable({1}, 2).ok());
}

TEST(CheckpointStoreTest, PutRejectsInvalidIds) {
  CheckpointStore store(/*num_workers=*/4);
  const std::vector<Tuple> rows = {Tuple{Value(1)}};
  Status st = store.Put(-1, 0, 0, {0, 1}, rows);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("fixpoint_id=-1"), std::string::npos);
  st = store.Put(1, -2, 0, {0, 1}, rows);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("stratum=-2"), std::string::npos);
  st = store.Put(1, 0, 4, {0, 1}, rows);  // owner out of range
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("worker=4"), std::string::npos);
  st = store.Put(1, 0, 0, {0, 9}, rows);  // replica out of range
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("worker=9"), std::string::npos);
  // Nothing was silently created by the rejected calls.
  EXPECT_EQ(store.total_entries(), 0);
  EXPECT_TRUE(store.Put(1, 0, 0, {0, 1}, rows).ok());
}

TEST(CheckpointStoreTest, ReadRejectsInvalidIds) {
  CheckpointStore store(/*num_workers=*/4);
  ASSERT_TRUE(store.Put(1, 0, 0, {0, 1}, {Tuple{Value(1)}}).ok());
  EXPECT_EQ(store.Read(-1, 0, 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store.Read(1, -1, 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store.Read(1, 0, -3).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store.Read(1, 0, 4).status().code(),
            StatusCode::kInvalidArgument);
  // The unbounded store (unit-test default) still rejects negatives.
  CheckpointStore unbounded;
  EXPECT_EQ(unbounded.Read(1, 0, -1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(unbounded.Read(1, 0, 400).ok());  // no upper bound configured
}

TEST(CheckpointStoreTest, CorruptCopyIsRepairedFromReplica) {
  CheckpointStore store;
  ASSERT_TRUE(
      store.Put(5, 0, 1, {1, 2}, {Tuple{Value(10)}, Tuple{Value(11)}}).ok());
  // Rot worker 1's copy only; worker 2 still holds a checksum-valid one.
  EXPECT_EQ(store.CorruptCopies(/*holder=*/1, /*max_entries=*/10), 1);
  auto read = store.Read(5, 0, 1);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->size(), 2u);
  EXPECT_EQ(
      store.metrics().GetCounter(metrics::kCheckpointRepairs)->value(), 1);
  EXPECT_GT(
      store.metrics().GetCounter(metrics::kRecoveryRefetchBytes)->value(), 0);
  // The repair is durable: a second read verifies clean with no new repair.
  ASSERT_TRUE(store.Read(5, 0, 1).ok());
  EXPECT_EQ(
      store.metrics().GetCounter(metrics::kCheckpointRepairs)->value(), 1);
}

TEST(CheckpointStoreTest, AllCopiesCorruptReadFailsWithDataLoss) {
  CheckpointStore store;
  ASSERT_TRUE(store.Put(5, 0, 1, {1, 2}, {Tuple{Value(10)}}).ok());
  EXPECT_EQ(store.CorruptCopies(/*holder=*/-1, /*max_entries=*/10), 1);
  auto read = store.Read(5, 0, 2);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kDataLoss);
  // And the recovery grant refuses to re-replicate from rotten copies.
  Status st = store.GrantRecoveryAccess(/*live=*/{0, 2, 3},
                                        /*takeover_readers=*/{3},
                                        /*replication=*/3);
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
}

TEST(CheckpointStoreTest, GrantRepairsInvalidLiveCopies) {
  CheckpointStore store;
  ASSERT_TRUE(store.Put(8, 0, 1, {1, 2}, {Tuple{Value(3)}}).ok());
  EXPECT_EQ(store.CorruptCopies(/*holder=*/2, /*max_entries=*/10), 1);
  // The grant sources new copies from a live checksum-valid copy (worker
  // 1's) and repairs worker 2's rotten copy from it along the way.
  ASSERT_TRUE(store.GrantRecoveryAccess(/*live=*/{0, 1, 2, 3},
                                        /*takeover_readers=*/{3},
                                        /*replication=*/3)
                  .ok());
  EXPECT_GE(
      store.metrics().GetCounter(metrics::kCheckpointRepairs)->value(), 1);
  auto takeover = store.Read(8, 0, 3);
  ASSERT_TRUE(takeover.ok());
  EXPECT_EQ(takeover->size(), 1u);
  auto repaired = store.Read(8, 0, 2);
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(repaired->size(), 1u);
}

TEST(PartitionMapTest, TakeoverGoesToFormerReplica) {
  PartitionMap pmap({0, 1, 2, 3, 4}, /*replication=*/3);
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    uint64_t h = rng.Next();
    auto owners = pmap.Owners(h);
    ASSERT_EQ(owners.size(), 3u);
    int failed = owners[0];
    PartitionMap next = pmap.WithoutWorker(failed);
    int new_owner = next.PrimaryOwner(h);
    // Consistent hashing: the new primary was one of the old replicas.
    EXPECT_TRUE(new_owner == owners[1] || new_owner == owners[2])
        << "hash " << h;
  }
}

TEST(PartitionMapTest, SurvivorRangesDoNotMove) {
  PartitionMap pmap({0, 1, 2, 3}, 3);
  PartitionMap without = pmap.WithoutWorker(2);
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    uint64_t h = rng.Next();
    int before = pmap.PrimaryOwner(h);
    if (before != 2) EXPECT_EQ(without.PrimaryOwner(h), before);
  }
}

TEST(PartitionMapTest, ReasonableBalance) {
  PartitionMap pmap({0, 1, 2, 3, 4, 5, 6, 7}, 3, /*vnodes=*/64);
  std::vector<int> counts(8, 0);
  Rng rng(77);
  const int n = 20000;
  for (int i = 0; i < n; ++i) counts[static_cast<size_t>(
      pmap.PrimaryOwner(rng.Next()))] += 1;
  for (int c : counts) {
    EXPECT_GT(c, n / 8 / 3) << "severely unbalanced ring";
    EXPECT_LT(c, n / 8 * 3);
  }
}

TEST(TableTest, TakeoverRequiresReplica) {
  DistributedTable table("t", Schema{{"k", ValueType::kInt}}, 0);
  std::vector<Tuple> rows;
  for (int64_t i = 0; i < 200; ++i) rows.push_back(Tuple{Value(i)});
  table.AppendRows(std::move(rows));

  // Replication 1: a failure loses data — TakeoverRows must refuse.
  PartitionMap thin({0, 1, 2}, /*replication=*/1);
  PartitionMap thin_after = thin.WithoutWorker(0);
  bool any_error = false;
  for (int w : thin_after.workers()) {
    auto got = table.TakeoverRows(w, thin, thin_after);
    if (!got.ok()) any_error = true;
  }
  EXPECT_TRUE(any_error);

  // Replication 3: every moved row is available on its takeover node.
  PartitionMap fat({0, 1, 2}, 3);
  PartitionMap fat_after = fat.WithoutWorker(0);
  size_t moved = 0;
  for (int w : fat_after.workers()) {
    auto got = table.TakeoverRows(w, fat, fat_after);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    moved += got->size();
  }
  EXPECT_EQ(moved, table.PrimaryRows(0, fat).size());
}

}  // namespace
}  // namespace rex
