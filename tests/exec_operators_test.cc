// Operator-level unit tests: delta propagation rules through filter,
// project, join, group-by, and fixpoint (§3.3), plus applyFunction caching
// and batching.
#include <gtest/gtest.h>

#include "exec/expr.h"
#include "exec/fixpoint.h"
#include "exec/group_by.h"
#include "exec/hash_join.h"
#include "exec/operators.h"

namespace rex {
namespace {

/// Minimal single-worker harness: a context plus a sink capturing output.
class OpHarness {
 public:
  OpHarness() : network_(1) {
    ctx_.worker_id = 0;
    ctx_.network = &network_;
    ctx_.pmap = &pmap_;
    ctx_.udfs = &udfs_;
    ctx_.storage = &storage_;
    ctx_.metrics = &metrics_;
    ctx_.votes = &votes_;
    ctx_.checkpoints = &checkpoints_;
    ctx_.config = &config_;
  }

  ExecContext* ctx() { return &ctx_; }
  UdfRegistry* udfs() { return &udfs_; }
  EngineConfig* config() { return &config_; }
  VoteBoard* votes() { return &votes_; }

  /// Wires `op` -> capture sink and opens both.
  void Open(Operator* op) {
    sink_ = std::make_unique<SinkOp>(999);
    op->AddOutput(sink_.get(), 0);
    ASSERT_TRUE(op->Open(&ctx_).ok());
    ASSERT_TRUE(sink_->Open(&ctx_).ok());
  }

  const TupleSet& results() const { return sink_->results(); }

 private:
  Network network_;
  PartitionMap pmap_{{0}, 1};
  UdfRegistry udfs_;
  StorageCatalog storage_;
  MetricsRegistry metrics_;
  VoteBoard votes_;
  CheckpointStore checkpoints_;
  EngineConfig config_;
  ExecContext ctx_;
  std::unique_ptr<SinkOp> sink_;
};

/// An output-recording operator for observing raw deltas.
class CaptureOp : public Operator {
 public:
  explicit CaptureOp(int id) : Operator(id, 1) {}
  const char* name() const override { return "capture"; }
  Status ConsumeDeltas(int, DeltaVec deltas) override {
    for (Delta& d : deltas) captured.push_back(std::move(d));
    return Status::OK();
  }
  std::vector<Punctuation> puncts;
  DeltaVec captured;

 protected:
  Status OnAllPunct(const Punctuation& p) override {
    puncts.push_back(p);
    return Status::OK();
  }
};

Punctuation Eos(int stratum = 0) {
  Punctuation p;
  p.kind = Punctuation::Kind::kEndOfStratum;
  p.stratum = stratum;
  return p;
}

// ----------------------------------------------------------------- Filter --

TEST(FilterOpTest, ReplaceSplitsIntoDeltaKinds) {
  OpHarness h;
  // predicate: $0 > 10
  FilterOp filter(0, Expr::Binary(BinOp::kGt, Expr::Column(0),
                                  Expr::Const(Value(10))));
  CaptureOp capture(1);
  filter.AddOutput(&capture, 0);
  ASSERT_TRUE(filter.Open(h.ctx()).ok());
  ASSERT_TRUE(capture.Open(h.ctx()).ok());

  DeltaVec in;
  in.push_back(Delta::Replace(Tuple{Value(20)}, Tuple{Value(30)}));  // both
  in.push_back(Delta::Replace(Tuple{Value(5)}, Tuple{Value(30)}));   // new
  in.push_back(Delta::Replace(Tuple{Value(20)}, Tuple{Value(3)}));   // old
  in.push_back(Delta::Replace(Tuple{Value(1)}, Tuple{Value(2)}));    // none
  ASSERT_TRUE(filter.Consume(0, std::move(in)).ok());

  ASSERT_EQ(capture.captured.size(), 3u);
  EXPECT_EQ(capture.captured[0].op, DeltaOp::kReplace);
  EXPECT_EQ(capture.captured[1].op, DeltaOp::kInsert);
  EXPECT_EQ(capture.captured[1].tuple, Tuple{Value(30)});
  EXPECT_EQ(capture.captured[2].op, DeltaOp::kDelete);
  EXPECT_EQ(capture.captured[2].tuple, Tuple{Value(20)});
}

TEST(FilterOpTest, InsertAndDeletePassAnnotationsThrough) {
  OpHarness h;
  FilterOp filter(0, Expr::Binary(BinOp::kLt, Expr::Column(0),
                                  Expr::Const(Value(100))));
  CaptureOp capture(1);
  filter.AddOutput(&capture, 0);
  ASSERT_TRUE(filter.Open(h.ctx()).ok());
  ASSERT_TRUE(capture.Open(h.ctx()).ok());
  DeltaVec in;
  in.push_back(Delta::Insert(Tuple{Value(1)}));
  in.push_back(Delta::Delete(Tuple{Value(2)}));
  in.push_back(Delta::Update(Tuple{Value(3)}));
  in.push_back(Delta::Insert(Tuple{Value(500)}));  // filtered out
  ASSERT_TRUE(filter.Consume(0, std::move(in)).ok());
  ASSERT_EQ(capture.captured.size(), 3u);
  EXPECT_EQ(capture.captured[0].op, DeltaOp::kInsert);
  EXPECT_EQ(capture.captured[1].op, DeltaOp::kDelete);
  EXPECT_EQ(capture.captured[2].op, DeltaOp::kUpdate);
}

// ---------------------------------------------------------------- Project --

TEST(ProjectOpTest, TransformsBothSidesOfReplace) {
  OpHarness h;
  ProjectOp project(
      0, {Expr::Binary(BinOp::kMul, Expr::Column(0), Expr::Const(Value(2)))});
  CaptureOp capture(1);
  project.AddOutput(&capture, 0);
  ASSERT_TRUE(project.Open(h.ctx()).ok());
  ASSERT_TRUE(capture.Open(h.ctx()).ok());
  DeltaVec in;
  in.push_back(Delta::Replace(Tuple{Value(3)}, Tuple{Value(4)}));
  ASSERT_TRUE(project.Consume(0, std::move(in)).ok());
  ASSERT_EQ(capture.captured.size(), 1u);
  EXPECT_EQ(capture.captured[0].tuple, Tuple{Value(8)});
  EXPECT_EQ(capture.captured[0].old_tuple, Tuple{Value(6)});
}

// -------------------------------------------------------------- HashJoin --

class JoinHarness : public ::testing::Test {
 protected:
  void SetUp() override {
    HashJoinOp::Params params;
    params.left_keys = {0};
    params.right_keys = {0};
    join_ = std::make_unique<HashJoinOp>(0, params);
    capture_ = std::make_unique<CaptureOp>(1);
    join_->AddOutput(capture_.get(), 0);
    ASSERT_TRUE(join_->Open(h_.ctx()).ok());
    ASSERT_TRUE(capture_->Open(h_.ctx()).ok());
  }

  OpHarness h_;
  std::unique_ptr<HashJoinOp> join_;
  std::unique_ptr<CaptureOp> capture_;
};

TEST_F(JoinHarness, InsertProbesOppositeSide) {
  ASSERT_TRUE(
      join_->Consume(0, {Delta::Insert(Tuple{Value(1), Value("l")})}).ok());
  EXPECT_TRUE(capture_->captured.empty());  // nothing on the right yet
  ASSERT_TRUE(
      join_->Consume(1, {Delta::Insert(Tuple{Value(1), Value("r")})}).ok());
  ASSERT_EQ(capture_->captured.size(), 1u);
  Tuple expect{Value(1), Value("l"), Value(1), Value("r")};
  EXPECT_EQ(capture_->captured[0].tuple, expect);
  EXPECT_EQ(capture_->captured[0].op, DeltaOp::kInsert);
}

TEST_F(JoinHarness, DeleteEmitsDeleteJoins) {
  ASSERT_TRUE(
      join_->Consume(0, {Delta::Insert(Tuple{Value(1), Value("l")})}).ok());
  ASSERT_TRUE(
      join_->Consume(1, {Delta::Insert(Tuple{Value(1), Value("r")})}).ok());
  capture_->captured.clear();
  ASSERT_TRUE(
      join_->Consume(0, {Delta::Delete(Tuple{Value(1), Value("l")})}).ok());
  ASSERT_EQ(capture_->captured.size(), 1u);
  EXPECT_EQ(capture_->captured[0].op, DeltaOp::kDelete);
  // Deleted from state: a new right insert finds no left match.
  capture_->captured.clear();
  ASSERT_TRUE(
      join_->Consume(1, {Delta::Insert(Tuple{Value(1), Value("r2")})}).ok());
  EXPECT_TRUE(capture_->captured.empty());
}

TEST_F(JoinHarness, ReplaceSameKeyEmitsReplacements) {
  ASSERT_TRUE(
      join_->Consume(0, {Delta::Insert(Tuple{Value(1), Value("a")})}).ok());
  ASSERT_TRUE(
      join_->Consume(1, {Delta::Insert(Tuple{Value(1), Value("x")})}).ok());
  capture_->captured.clear();
  ASSERT_TRUE(join_->Consume(0, {Delta::Replace(Tuple{Value(1), Value("a")},
                                                Tuple{Value(1), Value("b")})})
                  .ok());
  ASSERT_EQ(capture_->captured.size(), 1u);
  EXPECT_EQ(capture_->captured[0].op, DeltaOp::kReplace);
  Tuple expect_new{Value(1), Value("b"), Value(1), Value("x")};
  Tuple expect_old{Value(1), Value("a"), Value(1), Value("x")};
  EXPECT_EQ(capture_->captured[0].tuple, expect_new);
  EXPECT_EQ(capture_->captured[0].old_tuple, expect_old);
}

TEST_F(JoinHarness, ReplaceAcrossKeysBecomesDeleteInsert) {
  ASSERT_TRUE(
      join_->Consume(1, {Delta::Insert(Tuple{Value(1), Value("x")})}).ok());
  ASSERT_TRUE(
      join_->Consume(1, {Delta::Insert(Tuple{Value(2), Value("y")})}).ok());
  ASSERT_TRUE(
      join_->Consume(0, {Delta::Insert(Tuple{Value(1), Value("a")})}).ok());
  capture_->captured.clear();
  // Move the left tuple from key 1 to key 2.
  ASSERT_TRUE(join_->Consume(0, {Delta::Replace(Tuple{Value(1), Value("a")},
                                                Tuple{Value(2), Value("a")})})
                  .ok());
  ASSERT_EQ(capture_->captured.size(), 2u);
  EXPECT_EQ(capture_->captured[0].op, DeltaOp::kDelete);
  EXPECT_EQ(capture_->captured[1].op, DeltaOp::kInsert);
}

TEST_F(JoinHarness, UpdateWithoutHandlerActsAsHiddenAttribute) {
  ASSERT_TRUE(
      join_->Consume(1, {Delta::Insert(Tuple{Value(1), Value("x")})}).ok());
  ASSERT_TRUE(
      join_->Consume(0, {Delta::Update(Tuple{Value(1), Value("u")})}).ok());
  ASSERT_EQ(capture_->captured.size(), 1u);
  EXPECT_EQ(capture_->captured[0].op, DeltaOp::kUpdate);
}

TEST(HashJoinHandlerTest, HandlerReceivesBucketsAndControlsState) {
  OpHarness h;
  JoinHandler handler;
  handler.name = "TestJoin";
  handler.update = [](TupleSet* mine, TupleSet* other,
                      const Delta& d) -> Result<DeltaVec> {
    // Emit the opposite bucket size; never store the delta.
    (void)mine;
    return DeltaVec{Delta::Update(
        Tuple{d.tuple.field(0), Value(static_cast<int64_t>(other->size()))})};
  };
  ASSERT_TRUE(h.udfs()->RegisterJoinHandler(handler).ok());

  HashJoinOp::Params params;
  params.left_keys = {0};
  params.right_keys = {0};
  params.immutable[0] = true;
  params.handler = "TestJoin";
  HashJoinOp join(0, params);
  CaptureOp capture(1);
  join.AddOutput(&capture, 0);
  ASSERT_TRUE(join.Open(h.ctx()).ok());
  ASSERT_TRUE(capture.Open(h.ctx()).ok());

  // Build the immutable left side: two tuples under key 7.
  ASSERT_TRUE(join.Consume(0, {Delta::Insert(Tuple{Value(7), Value(1)}),
                               Delta::Insert(Tuple{Value(7), Value(2)})})
                  .ok());
  EXPECT_TRUE(capture.captured.empty());  // immutable side never probes
  ASSERT_TRUE(join.Consume(1, {Delta::Update(Tuple{Value(7), Value(0)})}).ok());
  ASSERT_EQ(capture.captured.size(), 1u);
  EXPECT_EQ(capture.captured[0].tuple.field(1), Value(2));
  EXPECT_EQ(join.StateSize(), 2u);  // the handler stored nothing
}

// --------------------------------------------------------------- GroupBy --

TEST(GroupByOpTest, StratumModeAggregatesAndResets) {
  OpHarness h;
  GroupByOp::Params params;
  params.key_fields = {0};
  params.aggs = {{AggKind::kSum, 1, "s"}, {AggKind::kCount, -1, "c"}};
  params.mode = GroupByOp::Mode::kStratum;
  GroupByOp gb(0, params);
  CaptureOp capture(1);
  gb.AddOutput(&capture, 0);
  ASSERT_TRUE(gb.Open(h.ctx()).ok());
  ASSERT_TRUE(capture.Open(h.ctx()).ok());

  ASSERT_TRUE(gb.Consume(0, {Delta::Insert(Tuple{Value(1), Value(10)}),
                             Delta::Insert(Tuple{Value(1), Value(5)}),
                             Delta::Insert(Tuple{Value(2), Value(7)})})
                  .ok());
  EXPECT_TRUE(capture.captured.empty());  // emits only at stratum end
  ASSERT_TRUE(gb.OnPunct(0, Eos()).ok());
  ASSERT_EQ(capture.captured.size(), 2u);
  EXPECT_EQ(gb.NumGroups(), 0u);  // stratum mode resets

  // Next wave aggregates fresh.
  capture.captured.clear();
  ASSERT_TRUE(gb.Consume(0, {Delta::Insert(Tuple{Value(1), Value(1)})}).ok());
  ASSERT_TRUE(gb.OnPunct(0, Eos(1)).ok());
  ASSERT_EQ(capture.captured.size(), 1u);
  Tuple expect{Value(1), Value(1), Value(int64_t{1})};
  EXPECT_EQ(capture.captured[0].tuple, expect);
}

TEST(GroupByOpTest, PersistentModeEmitsTransitions) {
  OpHarness h;
  GroupByOp::Params params;
  params.key_fields = {0};
  params.aggs = {{AggKind::kSum, 1, "s"}};
  params.mode = GroupByOp::Mode::kPersistent;
  GroupByOp gb(0, params);
  CaptureOp capture(1);
  gb.AddOutput(&capture, 0);
  ASSERT_TRUE(gb.Open(h.ctx()).ok());
  ASSERT_TRUE(capture.Open(h.ctx()).ok());

  ASSERT_TRUE(gb.Consume(0, {Delta::Insert(Tuple{Value(1), Value(10)})}).ok());
  ASSERT_TRUE(gb.OnPunct(0, Eos(0)).ok());
  ASSERT_EQ(capture.captured.size(), 1u);
  EXPECT_EQ(capture.captured[0].op, DeltaOp::kInsert);

  // Second wave: sum changes -> replacement delta.
  ASSERT_TRUE(gb.Consume(0, {Delta::Insert(Tuple{Value(1), Value(5)})}).ok());
  ASSERT_TRUE(gb.OnPunct(0, Eos(1)).ok());
  ASSERT_EQ(capture.captured.size(), 2u);
  EXPECT_EQ(capture.captured[1].op, DeltaOp::kReplace);
  Tuple expect_new{Value(1), Value(15)};
  EXPECT_EQ(capture.captured[1].tuple, expect_new);

  // Third wave: delete everything -> group delete.
  ASSERT_TRUE(gb.Consume(0, {Delta::Delete(Tuple{Value(1), Value(10)}),
                             Delta::Delete(Tuple{Value(1), Value(5)})})
                  .ok());
  ASSERT_TRUE(gb.OnPunct(0, Eos(2)).ok());
  ASSERT_EQ(capture.captured.size(), 3u);
  EXPECT_EQ(capture.captured[2].op, DeltaOp::kDelete);

  // Untouched wave: silence.
  ASSERT_TRUE(gb.OnPunct(0, Eos(3)).ok());
  EXPECT_EQ(capture.captured.size(), 3u);
}

TEST(GroupByOpTest, ReplaceMigratesBetweenGroups) {
  OpHarness h;
  GroupByOp::Params params;
  params.key_fields = {0};
  params.aggs = {{AggKind::kSum, 1, "s"}};
  params.mode = GroupByOp::Mode::kStratum;
  GroupByOp gb(0, params);
  CaptureOp capture(1);
  gb.AddOutput(&capture, 0);
  ASSERT_TRUE(gb.Open(h.ctx()).ok());
  ASSERT_TRUE(capture.Open(h.ctx()).ok());

  ASSERT_TRUE(gb.Consume(0, {Delta::Insert(Tuple{Value(1), Value(10)}),
                             Delta::Insert(Tuple{Value(2), Value(20)})})
                  .ok());
  // Move the value 10 from group 1 to group 2.
  ASSERT_TRUE(gb.Consume(0, {Delta::Replace(Tuple{Value(1), Value(10)},
                                            Tuple{Value(2), Value(10)})})
                  .ok());
  ASSERT_TRUE(gb.OnPunct(0, Eos()).ok());
  // Group 1 is empty (not emitted in stratum mode); group 2 sums 30.
  ASSERT_EQ(capture.captured.size(), 1u);
  Tuple expect{Value(2), Value(30)};
  EXPECT_EQ(capture.captured[0].tuple, expect);
}

TEST(GroupByOpTest, UdaArgMinWithKeyPrefix) {
  OpHarness h;
  GroupByOp::Params params;
  params.key_fields = {0};
  params.uda = "ArgMin";
  params.uda_input_fields = {1, 2};  // ArgMin(id, value)
  params.prefix_group_key = true;
  GroupByOp gb(0, params);
  CaptureOp capture(1);
  gb.AddOutput(&capture, 0);
  ASSERT_TRUE(RegisterBuiltins(h.udfs()).ok());
  ASSERT_TRUE(gb.Open(h.ctx()).ok());
  ASSERT_TRUE(capture.Open(h.ctx()).ok());

  // (group, id, value): group 5 sees id 1 @ 3.0 and id 2 @ 1.5.
  ASSERT_TRUE(
      gb.Consume(0, {Delta::Insert(Tuple{Value(5), Value(1), Value(3.0)}),
                     Delta::Insert(Tuple{Value(5), Value(2), Value(1.5)})})
          .ok());
  ASSERT_TRUE(gb.OnPunct(0, Eos()).ok());
  ASSERT_EQ(capture.captured.size(), 1u);
  // Output: group key prefix + (argmin id, min value).
  Tuple expect{Value(5), Value(2), Value(1.5)};
  EXPECT_EQ(capture.captured[0].tuple, expect);
}

// -------------------------------------------------------------- Fixpoint --

TEST(FixpointOpTest, SetSemanticsDeduplicatesByKey) {
  OpHarness h;
  FixpointOp::Params params;
  params.key_fields = {0};
  FixpointOp fp(0, params);
  CaptureOp capture(1);
  fp.AddOutput(&capture, 0);
  ASSERT_TRUE(fp.Open(h.ctx()).ok());
  ASSERT_TRUE(capture.Open(h.ctx()).ok());

  ASSERT_TRUE(fp.Consume(FixpointOp::kBasePort,
                         {Delta::Insert(Tuple{Value(1), Value(10)}),
                          Delta::Insert(Tuple{Value(1), Value(10)}),  // dup
                          Delta::Insert(Tuple{Value(2), Value(20)})})
                  .ok());
  EXPECT_EQ(fp.StateSize(), 2u);
  EXPECT_EQ(fp.PendingSize(), 2u);

  // Flushing starts the next stratum: pending deltas plus punctuation.
  ASSERT_TRUE(fp.StartStratum(1).ok());
  EXPECT_EQ(capture.captured.size(), 2u);
  ASSERT_EQ(capture.puncts.size(), 1u);
  EXPECT_EQ(capture.puncts[0].stratum, 1);
  EXPECT_EQ(fp.PendingSize(), 0u);
}

TEST(FixpointOpTest, ReplacementThresholding) {
  OpHarness h;
  FixpointOp::Params params;
  params.key_fields = {0};
  params.value_field = 1;
  params.change_threshold = 0.5;
  FixpointOp fp(0, params);
  CaptureOp capture(1);
  fp.AddOutput(&capture, 0);
  ASSERT_TRUE(fp.Open(h.ctx()).ok());
  ASSERT_TRUE(capture.Open(h.ctx()).ok());

  ASSERT_TRUE(fp.Consume(0, {Delta::Insert(Tuple{Value(1), Value(1.0)})}).ok());
  ASSERT_TRUE(fp.StartStratum(1).ok());
  capture.captured.clear();

  // Sub-threshold change: state revised silently, nothing pending.
  ASSERT_TRUE(fp.Consume(1, {Delta::Insert(Tuple{Value(1), Value(1.2)})}).ok());
  EXPECT_EQ(fp.PendingSize(), 0u);
  auto state = fp.StateTuples();
  ASSERT_EQ(state.size(), 1u);
  EXPECT_EQ(state[0].field(1), Value(1.2));

  // Above threshold: replacement propagates.
  ASSERT_TRUE(fp.Consume(1, {Delta::Insert(Tuple{Value(1), Value(2.0)})}).ok());
  EXPECT_EQ(fp.PendingSize(), 1u);
}

TEST(FixpointOpTest, AccumulateModeNeverRevises) {
  OpHarness h;
  FixpointOp::Params params;
  params.key_fields = {0};
  params.mode = FixpointOp::Mode::kAccumulate;
  FixpointOp fp(0, params);
  CaptureOp capture(1);
  fp.AddOutput(&capture, 0);
  ASSERT_TRUE(fp.Open(h.ctx()).ok());
  ASSERT_TRUE(capture.Open(h.ctx()).ok());

  ASSERT_TRUE(fp.Consume(0, {Delta::Insert(Tuple{Value(1), Value(10)}),
                             Delta::Insert(Tuple{Value(1), Value(20)}),
                             Delta::Insert(Tuple{Value(1), Value(10)})})
                  .ok());
  // Recursive-SQL semantics: both versions retained; duplicate dropped.
  EXPECT_EQ(fp.StateSize(), 2u);
  EXPECT_EQ(fp.PendingSize(), 2u);
}

TEST(FixpointOpTest, VotesOnPunctuationWave) {
  OpHarness h;
  FixpointOp::Params params;
  params.key_fields = {0};
  FixpointOp fp(42, params);
  ASSERT_TRUE(fp.Open(h.ctx()).ok());
  ASSERT_TRUE(
      fp.Consume(0, {Delta::Insert(Tuple{Value(1), Value(1)})}).ok());
  ASSERT_TRUE(fp.OnPunct(FixpointOp::kBasePort, Eos(0)).ok());
  VoteStats stats = h.votes()->Total(42, 0);
  EXPECT_EQ(stats.new_tuples, 1);
  EXPECT_EQ(stats.state_size, 1);
}

// --------------------------------------------------------------- ApplyFn --

TEST(ApplyFnOpTest, CachesDeterministicFunctions) {
  OpHarness h;
  int invocations = 0;
  TableUdf udf;
  udf.name = "doubler";
  udf.deterministic = true;
  udf.fn = [&invocations](const Delta& d) -> Result<DeltaVec> {
    ++invocations;
    REX_ASSIGN_OR_RETURN(int64_t x, d.tuple.field(0).ToInt());
    return DeltaVec{Delta::Insert(Tuple{Value(x * 2)})};
  };
  ASSERT_TRUE(h.udfs()->RegisterTable(udf).ok());
  h.config()->udf_batch_size = 1;

  ApplyFnOp apply(0, "doubler");
  CaptureOp capture(1);
  apply.AddOutput(&capture, 0);
  ASSERT_TRUE(apply.Open(h.ctx()).ok());
  ASSERT_TRUE(capture.Open(h.ctx()).ok());

  ASSERT_TRUE(apply.Consume(0, {Delta::Insert(Tuple{Value(5)}),
                                Delta::Insert(Tuple{Value(5)}),
                                Delta::Insert(Tuple{Value(6)})})
                  .ok());
  EXPECT_EQ(invocations, 2);  // 5 cached on second occurrence
  ASSERT_EQ(capture.captured.size(), 3u);
  EXPECT_EQ(capture.captured[1].tuple, Tuple{Value(10)});
}

TEST(ApplyFnOpTest, BatchingDefersUntilPunctuation) {
  OpHarness h;
  TableUdf udf;
  udf.name = "identity";
  udf.deterministic = false;
  udf.fn = [](const Delta& d) -> Result<DeltaVec> { return DeltaVec{d}; };
  ASSERT_TRUE(h.udfs()->RegisterTable(udf).ok());
  h.config()->udf_batch_size = 100;  // larger than the input

  ApplyFnOp apply(0, "identity");
  CaptureOp capture(1);
  apply.AddOutput(&capture, 0);
  ASSERT_TRUE(apply.Open(h.ctx()).ok());
  ASSERT_TRUE(capture.Open(h.ctx()).ok());

  ASSERT_TRUE(apply.Consume(0, {Delta::Insert(Tuple{Value(1)}),
                                Delta::Insert(Tuple{Value(2)})})
                  .ok());
  EXPECT_TRUE(capture.captured.empty());  // buffered
  ASSERT_TRUE(apply.OnPunct(0, Eos()).ok());
  EXPECT_EQ(capture.captured.size(), 2u);  // flushed before forwarding
  ASSERT_EQ(capture.puncts.size(), 1u);
}

}  // namespace
}  // namespace rex
