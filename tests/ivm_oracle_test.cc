// Incremental view maintenance oracle tests (algos/ivm.h +
// Cluster::ApplyBaseUpdate): every scenario is run twice — incrementally
// against a converged fixpoint, and from scratch on the mutated graph —
// and the converged states must match (SSSP exactly; PageRank within 1e-6,
// the FP summation-order envelope at a 1e-10 propagation threshold).
//
// Mutation batches are randomized but seeded: weighted edge inserts,
// deletes, reweights (multiplicity changes), no-op insert+delete pairs,
// and inverse pairs that exactly undo an earlier batch. Runs use
// verify_invariants, so every resumed stratum also passes the
// Δ-conservation check against the seed-extended checkpoint history.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "algos/ivm.h"
#include "algos/pagerank.h"
#include "algos/sssp.h"
#include "sim/fault_schedule.h"

namespace rex {
namespace {

EngineConfig IvmConfig() {
  EngineConfig cfg;
  cfg.num_workers = 4;
  cfg.replication = 3;
  cfg.network_batch_size = 64;
  cfg.verify_invariants = true;  // Δ-conservation across the seed path
  return cfg;
}

GraphData TestGraph(int64_t vertices, int64_t edges, uint64_t seed) {
  GraphGenOptions opt;
  opt.num_vertices = vertices;
  opt.num_edges = edges;
  opt.seed = seed;
  return GenerateRmatGraph(opt);
}

/// Rebuilds a GraphData from the maintained adjacency mirror (the
/// from-scratch oracle's input).
GraphData GraphFromAdjacency(const Adjacency& adj) {
  GraphData g;
  g.num_vertices = static_cast<int64_t>(adj.size());
  for (size_t u = 0; u < adj.size(); ++u) {
    for (int64_t v : adj[u]) {
      g.edges.emplace_back(static_cast<int64_t>(u), v);
    }
  }
  return g;
}

/// One randomized mutation batch mixing every scenario kind. Deletes and
/// inverse pairs target edges that exist in `adj`; reweights duplicate an
/// existing edge (multiplicity +2).
std::vector<EdgeMutation> RandomBatch(std::mt19937_64* rng,
                                      const Adjacency& adj, int size) {
  const int64_t n = static_cast<int64_t>(adj.size());
  std::uniform_int_distribution<int64_t> vertex(0, n - 1);
  std::uniform_int_distribution<int> kind(0, 4);
  std::vector<EdgeMutation> batch;
  auto random_existing = [&](int64_t* u, int64_t* v) {
    for (int tries = 0; tries < 64; ++tries) {
      int64_t cand = vertex(*rng);
      if (adj[static_cast<size_t>(cand)].empty()) continue;
      std::uniform_int_distribution<size_t> pick(
          0, adj[static_cast<size_t>(cand)].size() - 1);
      *u = cand;
      *v = adj[static_cast<size_t>(cand)][pick(*rng)];
      return true;
    }
    return false;
  };
  for (int i = 0; i < size; ++i) {
    int64_t u = 0, v = 0;
    switch (kind(*rng)) {
      case 0:  // insert a fresh edge
        batch.push_back({vertex(*rng), vertex(*rng), 1});
        break;
      case 1:  // delete an existing edge
        if (random_existing(&u, &v)) batch.push_back({u, v, -1});
        break;
      case 2:  // reweight: bump an existing edge's multiplicity
        if (random_existing(&u, &v)) batch.push_back({u, v, 2});
        break;
      case 3: {  // no-op pair: insert + delete of the same fresh edge
        int64_t a = vertex(*rng), b = vertex(*rng);
        batch.push_back({a, b, 1});
        batch.push_back({a, b, -1});
        break;
      }
      default:  // inverse pair: delete an existing edge, put it back
        if (random_existing(&u, &v)) {
          batch.push_back({u, v, -1});
          batch.push_back({u, v, 1});
        }
        break;
    }
  }
  return batch;
}

// --------------------------------------------------------------- PageRank --

std::vector<double> ScratchPageRank(const GraphData& graph,
                                    const PageRankConfig& cfg) {
  Cluster cluster(IvmConfig());
  EXPECT_TRUE(LoadGraphTables(&cluster, graph).ok());
  EXPECT_TRUE(RegisterPageRankUdfs(cluster.udfs(), cfg).ok());
  auto plan = BuildPageRankDeltaPlan(cfg);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  auto run = cluster.Run(*plan);
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  auto ranks = RanksFromState(run->fixpoint_state, graph.num_vertices);
  EXPECT_TRUE(ranks.ok());
  return *ranks;
}

double MaxAbsDiff(const std::vector<double>& a, const std::vector<double>& b) {
  double m = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(a[i] - b[i]));
  }
  return m;
}

/// Drives `batches` random mutation batches through one converged PageRank
/// cluster, checking each incremental state against the scratch oracle.
void PageRankIncrementalVsScratch(uint64_t seed, int batches,
                                  int batch_size) {
  GraphData graph = TestGraph(250, 1500, seed);
  PageRankConfig cfg;
  // Propagation threshold two decades tighter than the 1e-6 comparison
  // envelope: each converged state truncates per-vertex deltas below the
  // threshold, amplified by 1/(1-d) and accumulated across batches, so the
  // engine must leave that much headroom for the oracle bound to hold.
  cfg.threshold = 1e-10;
  Cluster cluster(IvmConfig());
  ASSERT_TRUE(LoadGraphTables(&cluster, graph).ok());
  ASSERT_TRUE(RegisterPageRankUdfs(cluster.udfs(), cfg).ok());
  auto plan = BuildPageRankDeltaPlan(cfg);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto run = cluster.Run(*plan);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  auto ranks = RanksFromState(run->fixpoint_state, graph.num_vertices);
  ASSERT_TRUE(ranks.ok());

  Adjacency adj = AdjacencyFromGraph(graph);
  std::mt19937_64 rng(seed * 7919 + 1);
  for (int b = 0; b < batches; ++b) {
    SCOPED_TRACE("seed " + std::to_string(seed) + " batch " +
                 std::to_string(b));
    std::vector<EdgeMutation> batch = RandomBatch(&rng, adj, batch_size);
    auto update =
        BuildPageRankBaseUpdate(*plan, batch, *ranks, adj, cfg.damping);
    ASSERT_TRUE(update.ok()) << update.status().ToString();
    auto inc = cluster.ApplyBaseUpdate(*update);
    ASSERT_TRUE(inc.ok()) << inc.status().ToString();
    ApplyEdgeMutations(&adj, batch);

    ranks = RanksFromState(inc->fixpoint_state, graph.num_vertices);
    ASSERT_TRUE(ranks.ok());
    std::vector<double> scratch =
        ScratchPageRank(GraphFromAdjacency(adj), cfg);
    EXPECT_LT(MaxAbsDiff(*ranks, scratch), 1e-6);
  }
}

TEST(IvmOracle, PageRankRandomBatchesSeedA) {
  PageRankIncrementalVsScratch(11, 3, 6);
}

TEST(IvmOracle, PageRankRandomBatchesSeedB) {
  PageRankIncrementalVsScratch(23, 3, 6);
}

TEST(IvmOracle, PageRankNoOpBatchConvergesImmediately) {
  GraphData graph = TestGraph(200, 1200, 5);
  PageRankConfig cfg;
  cfg.threshold = 1e-8;
  Cluster cluster(IvmConfig());
  ASSERT_TRUE(LoadGraphTables(&cluster, graph).ok());
  ASSERT_TRUE(RegisterPageRankUdfs(cluster.udfs(), cfg).ok());
  auto plan = BuildPageRankDeltaPlan(cfg);
  ASSERT_TRUE(plan.ok());
  auto run = cluster.Run(*plan);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  auto before = RanksFromState(run->fixpoint_state, graph.num_vertices);
  ASSERT_TRUE(before.ok());

  // Insert + delete of the same fresh edges: the per-source share diffs
  // cancel exactly, the seed set is empty, and the perturbed fixpoint is
  // already converged — one quiescent stratum, zero rank movement.
  Adjacency adj = AdjacencyFromGraph(graph);
  std::vector<EdgeMutation> batch = {{3, 9, 1}, {3, 9, -1},
                                     {17, 4, 1}, {17, 4, -1}};
  auto update =
      BuildPageRankBaseUpdate(*plan, batch, *before, adj, cfg.damping);
  ASSERT_TRUE(update.ok());
  EXPECT_TRUE(update->seeds.empty());
  auto inc = cluster.ApplyBaseUpdate(*update);
  ASSERT_TRUE(inc.ok()) << inc.status().ToString();
  EXPECT_EQ(inc->strata_executed, 1);
  auto after = RanksFromState(inc->fixpoint_state, graph.num_vertices);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, *before);  // bit-for-bit: nothing was perturbed
}

// ------------------------------------------------------------------- SSSP --

std::vector<int64_t> ScratchSssp(const GraphData& graph,
                                 const SsspConfig& cfg) {
  Cluster cluster(IvmConfig());
  EXPECT_TRUE(LoadGraphTables(&cluster, graph).ok());
  EXPECT_TRUE(RegisterSsspUdfs(cluster.udfs(), cfg).ok());
  auto plan = BuildSsspDeltaPlan(cfg);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  auto run = cluster.Run(*plan);
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  auto dist = DistancesFromState(run->fixpoint_state, graph.num_vertices);
  EXPECT_TRUE(dist.ok());
  return *dist;
}

void SsspIncrementalVsScratch(uint64_t seed, int batches, int batch_size) {
  GraphData graph = TestGraph(300, 1100, seed);
  SsspConfig cfg;
  cfg.source = 2;
  Cluster cluster(IvmConfig());
  ASSERT_TRUE(LoadGraphTables(&cluster, graph).ok());
  ASSERT_TRUE(RegisterSsspUdfs(cluster.udfs(), cfg).ok());
  auto plan = BuildSsspDeltaPlan(cfg);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto run = cluster.Run(*plan);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  auto dist = DistancesFromState(run->fixpoint_state, graph.num_vertices);
  ASSERT_TRUE(dist.ok());

  Adjacency adj = AdjacencyFromGraph(graph);
  std::mt19937_64 rng(seed * 104729 + 3);
  for (int b = 0; b < batches; ++b) {
    SCOPED_TRACE("seed " + std::to_string(seed) + " batch " +
                 std::to_string(b));
    std::vector<EdgeMutation> batch = RandomBatch(&rng, adj, batch_size);
    auto update = BuildSsspBaseUpdate(*plan, batch, *dist, adj, cfg.source);
    ASSERT_TRUE(update.ok()) << update.status().ToString();
    auto inc = cluster.ApplyBaseUpdate(*update);
    ASSERT_TRUE(inc.ok()) << inc.status().ToString();
    ApplyEdgeMutations(&adj, batch);

    dist = DistancesFromState(inc->fixpoint_state, graph.num_vertices);
    ASSERT_TRUE(dist.ok());
    // Integer distances through order-independent mins: exact equality.
    std::vector<int64_t> scratch = ScratchSssp(GraphFromAdjacency(adj), cfg);
    ASSERT_EQ(dist->size(), scratch.size());
    for (size_t v = 0; v < scratch.size(); ++v) {
      ASSERT_EQ((*dist)[v], scratch[v])
          << "vertex " << v << ": incremental=" << (*dist)[v]
          << " scratch=" << scratch[v];
    }
  }
}

TEST(IvmOracle, SsspRandomBatchesSeedA) { SsspIncrementalVsScratch(31, 3, 6); }

TEST(IvmOracle, SsspRandomBatchesSeedB) { SsspIncrementalVsScratch(57, 3, 6); }

TEST(IvmOracle, SsspRandomBatchUnderChaosSchedule) {
  // The oracle comparison must also hold when the re-convergence itself is
  // faulted: a worker dies at the resumed stratum's boundary and recovery
  // replays the checkpointed seeds. Fault events use absolute strata, so
  // the crash is pinned at the converged run's strata_executed (= resume).
  const uint64_t seed = 71;
  GraphData graph = TestGraph(300, 1100, seed);
  SsspConfig cfg;
  cfg.source = 2;
  Cluster cluster(IvmConfig());
  ASSERT_TRUE(LoadGraphTables(&cluster, graph).ok());
  ASSERT_TRUE(RegisterSsspUdfs(cluster.udfs(), cfg).ok());
  auto plan = BuildSsspDeltaPlan(cfg);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto run = cluster.Run(*plan);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  auto dist = DistancesFromState(run->fixpoint_state, graph.num_vertices);
  ASSERT_TRUE(dist.ok());

  Adjacency adj = AdjacencyFromGraph(graph);
  std::mt19937_64 rng(seed * 104729 + 3);
  std::vector<EdgeMutation> batch = RandomBatch(&rng, adj, 8);
  auto update = BuildSsspBaseUpdate(*plan, batch, *dist, adj, cfg.source);
  ASSERT_TRUE(update.ok()) << update.status().ToString();
  update->faults.strategy = RecoveryStrategy::kIncremental;
  FaultEvent crash;
  crash.kind = FaultEvent::Kind::kCrash;
  crash.worker = 1;
  crash.at_stratum = run->strata_executed;
  update->faults.events.push_back(crash);

  auto inc = cluster.ApplyBaseUpdate(*update);
  ASSERT_TRUE(inc.ok()) << inc.status().ToString();
  EXPECT_EQ(inc->chaos.crashes, 1);
  EXPECT_GE(inc->recoveries, 1);
  ApplyEdgeMutations(&adj, batch);
  dist = DistancesFromState(inc->fixpoint_state, graph.num_vertices);
  ASSERT_TRUE(dist.ok());
  EXPECT_EQ(*dist, ScratchSssp(GraphFromAdjacency(adj), cfg));
}

TEST(IvmOracle, SsspDeletionsCanDisconnect) {
  // A tiny directed chain plus a shortcut: deleting both paths to the tail
  // must leave it unreachable (-1), exactly as a scratch run reports.
  GraphData graph;
  graph.num_vertices = 6;
  graph.edges = {{0, 1}, {1, 2}, {2, 3}, {0, 4}, {4, 3}, {3, 5}};
  SsspConfig cfg;
  cfg.source = 0;
  Cluster cluster(IvmConfig());
  ASSERT_TRUE(LoadGraphTables(&cluster, graph).ok());
  ASSERT_TRUE(RegisterSsspUdfs(cluster.udfs(), cfg).ok());
  auto plan = BuildSsspDeltaPlan(cfg);
  ASSERT_TRUE(plan.ok());
  auto run = cluster.Run(*plan);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  auto dist = DistancesFromState(run->fixpoint_state, graph.num_vertices);
  ASSERT_TRUE(dist.ok());
  ASSERT_EQ((*dist)[3], 2);  // via the 0→4→3 shortcut
  ASSERT_EQ((*dist)[5], 3);

  Adjacency adj = AdjacencyFromGraph(graph);
  std::vector<EdgeMutation> batch = {{2, 3, -1}, {4, 3, -1}};
  auto update = BuildSsspBaseUpdate(*plan, batch, *dist, adj, cfg.source);
  ASSERT_TRUE(update.ok());
  auto inc = cluster.ApplyBaseUpdate(*update);
  ASSERT_TRUE(inc.ok()) << inc.status().ToString();
  ApplyEdgeMutations(&adj, batch);
  dist = DistancesFromState(inc->fixpoint_state, graph.num_vertices);
  ASSERT_TRUE(dist.ok());
  EXPECT_EQ((*dist)[3], -1);
  EXPECT_EQ((*dist)[5], -1);
  EXPECT_EQ(*dist, ScratchSssp(GraphFromAdjacency(adj), cfg));
}

TEST(IvmOracle, SsspInsertionCreatesShortcut) {
  GraphData graph;
  graph.num_vertices = 5;
  graph.edges = {{0, 1}, {1, 2}, {2, 3}, {3, 4}};
  SsspConfig cfg;
  cfg.source = 0;
  Cluster cluster(IvmConfig());
  ASSERT_TRUE(LoadGraphTables(&cluster, graph).ok());
  ASSERT_TRUE(RegisterSsspUdfs(cluster.udfs(), cfg).ok());
  auto plan = BuildSsspDeltaPlan(cfg);
  ASSERT_TRUE(plan.ok());
  auto run = cluster.Run(*plan);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  auto dist = DistancesFromState(run->fixpoint_state, graph.num_vertices);
  ASSERT_TRUE(dist.ok());
  ASSERT_EQ((*dist)[4], 4);

  // 0→3 shortcut: the improvement must cascade to 4 through min-merge.
  Adjacency adj = AdjacencyFromGraph(graph);
  std::vector<EdgeMutation> batch = {{0, 3, 1}};
  auto update = BuildSsspBaseUpdate(*plan, batch, *dist, adj, cfg.source);
  ASSERT_TRUE(update.ok());
  auto inc = cluster.ApplyBaseUpdate(*update);
  ASSERT_TRUE(inc.ok()) << inc.status().ToString();
  ApplyEdgeMutations(&adj, batch);
  dist = DistancesFromState(inc->fixpoint_state, graph.num_vertices);
  ASSERT_TRUE(dist.ok());
  EXPECT_EQ((*dist)[3], 1);
  EXPECT_EQ((*dist)[4], 2);
  EXPECT_EQ(*dist, ScratchSssp(GraphFromAdjacency(adj), cfg));
}

TEST(IvmOracle, UpdateWithoutConvergedRunRejected) {
  Cluster cluster(IvmConfig());
  Cluster::BaseUpdate update;
  auto res = cluster.ApplyBaseUpdate(update);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);
}

TEST(IvmOracle, FailedUpdatePoisonsResidentUntilRerun) {
  // A mid-update failure leaves base tables mutated but the resident's
  // derived state indeterminate; the resident must be poisoned, follow-up
  // updates refused with FailedPrecondition, and a fresh RunResident must
  // clear the poison by re-deriving from the (already mutated) tables.
  const uint64_t seed = 83;
  GraphData graph = TestGraph(150, 700, seed);
  SsspConfig cfg;
  cfg.source = 1;
  Cluster cluster(IvmConfig());
  ASSERT_TRUE(LoadGraphTables(&cluster, graph).ok());
  ASSERT_TRUE(RegisterSsspUdfs(cluster.udfs(), cfg).ok());
  auto plan = BuildSsspDeltaPlan(cfg);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto run = cluster.Run(*plan);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  auto dist = DistancesFromState(run->fixpoint_state, graph.num_vertices);
  ASSERT_TRUE(dist.ok());
  ASSERT_FALSE(cluster.IsPoisoned(0));

  Adjacency adj = AdjacencyFromGraph(graph);
  std::mt19937_64 rng(seed);
  std::vector<EdgeMutation> batch = RandomBatch(&rng, adj, 5);
  auto update = BuildSsspBaseUpdate(*plan, batch, *dist, adj, cfg.source);
  ASSERT_TRUE(update.ok()) << update.status().ToString();
  // A mandatory crash scheduled far past convergence never fires; the
  // update fails AFTER the tables were mutated, which must poison the
  // resident.
  update->faults.strategy = RecoveryStrategy::kIncremental;
  FaultEvent crash;
  crash.kind = FaultEvent::Kind::kCrash;
  crash.worker = 1;
  crash.at_stratum = 1000000;
  update->faults.events.push_back(crash);
  auto failed = cluster.ApplyBaseUpdate(*update);
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(cluster.IsPoisoned(0));
  // The table mutation did land before the failure — track it in the
  // mirror so the oracle below compares against the real base state.
  ApplyEdgeMutations(&adj, batch);

  // A follow-up update against the poisoned resident is refused before
  // touching anything.
  auto clean = BuildSsspBaseUpdate(*plan, {}, *dist, adj, cfg.source);
  ASSERT_TRUE(clean.ok());
  auto refused = cluster.ApplyBaseUpdate(*clean);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);

  // RunResident re-derives from the mutated tables and clears the poison.
  auto rerun = cluster.RunResident(0, *plan);
  ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();
  EXPECT_FALSE(cluster.IsPoisoned(0));
  dist = DistancesFromState(rerun->fixpoint_state, graph.num_vertices);
  ASSERT_TRUE(dist.ok());
  EXPECT_EQ(*dist, ScratchSssp(GraphFromAdjacency(adj), cfg));

  // And the resident accepts incremental updates again.
  std::vector<EdgeMutation> batch2 = RandomBatch(&rng, adj, 4);
  auto update2 = BuildSsspBaseUpdate(*plan, batch2, *dist, adj, cfg.source);
  ASSERT_TRUE(update2.ok());
  auto inc = cluster.ApplyBaseUpdate(*update2);
  ASSERT_TRUE(inc.ok()) << inc.status().ToString();
  ApplyEdgeMutations(&adj, batch2);
  dist = DistancesFromState(inc->fixpoint_state, graph.num_vertices);
  ASSERT_TRUE(dist.ok());
  EXPECT_EQ(*dist, ScratchSssp(GraphFromAdjacency(adj), cfg));
}

TEST(IvmOracle, UpdateProfileResetsBetweenUpdates) {
  // ApplyBaseUpdate's profile must cover only that update's traffic: a
  // cheap no-op update right after an expensive register run (and again
  // right after a chaos-recovered update) must report a small tuples_sent,
  // not the cumulative counter since the run started.
  const uint64_t seed = 89;
  GraphData graph = TestGraph(250, 1500, seed);
  SsspConfig cfg;
  cfg.source = 0;
  Cluster cluster(IvmConfig());
  ASSERT_TRUE(LoadGraphTables(&cluster, graph).ok());
  ASSERT_TRUE(RegisterSsspUdfs(cluster.udfs(), cfg).ok());
  auto plan = BuildSsspDeltaPlan(cfg);
  ASSERT_TRUE(plan.ok());
  auto run = cluster.Run(*plan);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const int64_t scratch_tuples = run->profile.tuples_sent;
  ASSERT_GT(scratch_tuples, 0);
  auto dist = DistancesFromState(run->fixpoint_state, graph.num_vertices);
  ASSERT_TRUE(dist.ok());
  Adjacency adj = AdjacencyFromGraph(graph);

  // A real update under a crash schedule first (fault strata are absolute
  // and the resume point advances with every update, so the crash must be
  // pinned at the register run's depth while that is still the resume).
  // Recovery inflates this update's own traffic...
  std::mt19937_64 rng(seed);
  std::vector<EdgeMutation> batch = RandomBatch(&rng, adj, 5);
  auto update = BuildSsspBaseUpdate(*plan, batch, *dist, adj, cfg.source);
  ASSERT_TRUE(update.ok());
  update->faults.strategy = RecoveryStrategy::kIncremental;
  FaultEvent crash;
  crash.kind = FaultEvent::Kind::kCrash;
  crash.worker = 2;
  crash.at_stratum = run->strata_executed;
  update->faults.events.push_back(crash);
  auto inc = cluster.ApplyBaseUpdate(*update);
  ASSERT_TRUE(inc.ok()) << inc.status().ToString();
  EXPECT_EQ(inc->chaos.crashes, 1);
  ApplyEdgeMutations(&adj, batch);
  dist = DistancesFromState(inc->fixpoint_state, graph.num_vertices);
  ASSERT_TRUE(dist.ok());

  // ...but must not leak those counters into later updates' profiles.
  // Back-to-back no-op updates each converge in one quiescent stratum, so
  // each profile must be far below the register run's traffic; were the
  // baseline not reset per update, the second would include the recovered
  // update plus the first no-op plus the register run.
  for (int i = 0; i < 2; ++i) {
    SCOPED_TRACE("no-op update " + std::to_string(i));
    std::vector<EdgeMutation> noop = {{7, 13, 1}, {7, 13, -1}};
    auto update2 = BuildSsspBaseUpdate(*plan, noop, *dist, adj, cfg.source);
    ASSERT_TRUE(update2.ok());
    auto inc2 = cluster.ApplyBaseUpdate(*update2);
    ASSERT_TRUE(inc2.ok()) << inc2.status().ToString();
    EXPECT_LT(inc2->profile.tuples_sent, scratch_tuples / 2);
    // The checkpoint meters reset per update too: a one-stratum no-op
    // cannot have checkpointed anywhere near the register run's volume.
    EXPECT_LT(inc2->profile.checkpoint_tuples,
              run->profile.checkpoint_tuples / 2 + 1);
  }
}

TEST(IvmOracle, IncrementalShipsFewerTuplesThanScratch) {
  // The acceptance claim behind bench_ivm: a small perturbation of a
  // converged PageRank must re-converge with strictly less communication
  // than recomputing from scratch.
  GraphData graph = TestGraph(300, 1800, 41);
  PageRankConfig cfg;
  cfg.threshold = 1e-8;
  Cluster cluster(IvmConfig());
  ASSERT_TRUE(LoadGraphTables(&cluster, graph).ok());
  ASSERT_TRUE(RegisterPageRankUdfs(cluster.udfs(), cfg).ok());
  auto plan = BuildPageRankDeltaPlan(cfg);
  ASSERT_TRUE(plan.ok());
  auto run = cluster.Run(*plan);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const int64_t scratch_tuples = run->profile.tuples_sent;
  auto ranks = RanksFromState(run->fixpoint_state, graph.num_vertices);
  ASSERT_TRUE(ranks.ok());

  Adjacency adj = AdjacencyFromGraph(graph);
  std::vector<EdgeMutation> batch = {{1, 7, 1}, {5, 11, 1}};
  if (!adj[2].empty()) batch.push_back({2, adj[2][0], -1});
  auto update =
      BuildPageRankBaseUpdate(*plan, batch, *ranks, adj, cfg.damping);
  ASSERT_TRUE(update.ok());
  auto inc = cluster.ApplyBaseUpdate(*update);
  ASSERT_TRUE(inc.ok()) << inc.status().ToString();
  EXPECT_GT(inc->profile.tuples_sent, 0);
  EXPECT_LT(inc->profile.tuples_sent, scratch_tuples);
}

}  // namespace
}  // namespace rex
