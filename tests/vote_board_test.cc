// VoteBoard unit tests: duplicate votes, late votes for aborted strata, and
// stale-incarnation votes from a worker's previous life (post-recovery).
#include "cluster/vote_board.h"

#include <gtest/gtest.h>

namespace rex {
namespace {

VoteStats Stats(int64_t new_tuples, int64_t state_size = 0) {
  VoteStats s;
  s.new_tuples = new_tuples;
  s.changed_tuples = new_tuples;
  s.state_size = state_size;
  return s;
}

TEST(VoteBoardTest, DuplicateVoteOverwritesInsteadOfDoubleCounting) {
  VoteBoard board;
  board.Report(/*worker=*/0, /*fixpoint_id=*/7, /*stratum=*/1, Stats(10));
  board.Report(1, 7, 1, Stats(5));
  EXPECT_EQ(board.NumVotes(7, 1), 2);
  EXPECT_EQ(board.Total(7, 1).new_tuples, 15);

  // A retransmitted punctuation re-triggers worker 0's vote: the board
  // keeps one vote per (fixpoint, stratum, worker).
  board.Report(0, 7, 1, Stats(10));
  EXPECT_EQ(board.NumVotes(7, 1), 2);
  EXPECT_EQ(board.Total(7, 1).new_tuples, 15);

  // A genuinely revised vote replaces the old value rather than adding.
  board.Report(0, 7, 1, Stats(12));
  EXPECT_EQ(board.NumVotes(7, 1), 2);
  EXPECT_EQ(board.Total(7, 1).new_tuples, 17);
}

TEST(VoteBoardTest, LateVoteForClearedStratumStaysCleared) {
  VoteBoard board;
  board.Report(0, 3, 0, Stats(4));
  board.Report(0, 3, 1, Stats(6));
  board.Report(0, 3, 2, Stats(8));
  // A mid-stratum abort discards votes for the re-executed strata...
  board.ClearFromStratum(1);
  EXPECT_EQ(board.NumVotes(3, 0), 1);
  EXPECT_EQ(board.NumVotes(3, 1), 0);
  EXPECT_EQ(board.NumVotes(3, 2), 0);
  // ...and the re-execution's fresh votes repopulate them one per worker.
  board.Report(0, 3, 1, Stats(6));
  board.Report(1, 3, 1, Stats(2));
  EXPECT_EQ(board.NumVotes(3, 1), 2);
  EXPECT_EQ(board.Total(3, 1).new_tuples, 8);
  EXPECT_EQ(board.TotalForStratum(1).new_tuples, 8);
}

TEST(VoteBoardTest, StaleIncarnationVoteIsIgnoredAfterRevival) {
  VoteBoard board;
  // Worker 1's first life votes at incarnation 0.
  board.Report(1, 5, 2, Stats(9), /*incarnation=*/0);
  EXPECT_EQ(board.Total(5, 2).new_tuples, 9);

  // The detector declares worker 1 dead; a replacement rejoins as
  // incarnation 1. A straggler vote from the dead life must not land.
  board.SetIncarnation(1, 1);
  board.Report(1, 5, 3, Stats(100), /*incarnation=*/0);
  EXPECT_EQ(board.NumVotes(5, 3), 0);

  // The new life's votes are accepted — as are newer-than-expected ones.
  board.Report(1, 5, 3, Stats(7), /*incarnation=*/1);
  EXPECT_EQ(board.Total(5, 3).new_tuples, 7);
  board.Report(1, 5, 4, Stats(3), /*incarnation=*/2);
  EXPECT_EQ(board.Total(5, 4).new_tuples, 3);

  // Votes from workers the board holds no incarnation floor for (never
  // revived) default to accepted.
  board.Report(2, 5, 3, Stats(1));
  EXPECT_EQ(board.Total(5, 3).new_tuples, 8);
}

TEST(VoteBoardTest, ResetClearsVotesAndKeepsNothingStale) {
  VoteBoard board;
  board.Report(0, 1, 0, Stats(5));
  board.Report(1, 2, 1, Stats(6));
  ASSERT_EQ(board.SnapshotTotals().size(), 2u);
  board.Reset();
  EXPECT_TRUE(board.SnapshotTotals().empty());
  EXPECT_EQ(board.Total(1, 0).new_tuples, 0);
}

}  // namespace
}  // namespace rex
