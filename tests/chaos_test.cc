// Chaos harness tests: seeded multi-fault schedules, network fault
// injection, and runtime invariant checkers (DESIGN.md "Fault model &
// chaos harness").
//
// The ChaosSweep* tests compare every faulted run against the no-failure
// reference of the same query. SSSP distances are integers and the min
// aggregate is order-independent, so the comparison is exact; the
// floating-point algorithms tolerate tiny summation-order differences
// (reorder windows and cross-sender interleaving permute FP additions) and
// compare within 1e-6 of the reference.
//
// Seed counts: the default sweep is small so the tier-1 suite stays fast;
// `ctest -L chaos` re-runs these tests with REX_CHAOS_SEEDS=13, i.e.
// 13 seeds x 4 algorithms x 2 recovery strategies = 104 schedules. To
// reproduce one failing schedule, re-run with the printed seed, e.g.
//   REX_CHAOS_SEEDS=1 REX_CHAOS_SEED_BASE=<seed> ./build/tests/rex_tests \
//     --gtest_filter='ChaosSweep*<Algo>*'
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "algos/adsorption.h"
#include "algos/ivm.h"
#include "algos/kmeans.h"
#include "algos/pagerank.h"
#include "algos/reference.h"
#include "algos/sssp.h"
#include "sim/fault_schedule.h"

namespace rex {
namespace {

int EnvInt(const char* name, int fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  int v = std::atoi(env);
  return v > 0 ? v : fallback;
}

int SweepSeeds() { return EnvInt("REX_CHAOS_SEEDS", 3); }

EngineConfig ChaosConfig() {
  EngineConfig cfg;
  cfg.num_workers = 4;
  cfg.replication = 3;
  cfg.network_batch_size = 64;
  cfg.verify_invariants = true;  // invariant checkers active on every run
  return cfg;
}

/// Everything a chaos comparison needs from one query run.
struct ChaosRun {
  bool ok = false;
  std::string error;
  std::vector<double> values;  // algorithm output, flattened
  int strata = 0;
  int recoveries = 0;
  ChaosStats chaos;
  int64_t dup_discarded = 0;  // receiver-side dedup counter
  int64_t detection_latency_ticks = 0;
  int64_t retransmits = 0;
  int64_t checkpoint_repairs = 0;
  std::vector<int> live_after;
};

void FillCommon(ChaosRun* out, const Cluster& cluster,
                const QueryRunResult& run) {
  out->strata = run.strata_executed;
  out->recoveries = run.recoveries;
  out->chaos = run.chaos;
  out->dup_discarded =
      const_cast<Cluster&>(cluster).WorkerMetric(metrics::kDupDiscarded);
  out->detection_latency_ticks = run.profile.detection_latency_ticks;
  out->retransmits = run.profile.retransmits;
  out->checkpoint_repairs = run.profile.checkpoint_repairs;
  out->live_after = cluster.LiveWorkers();
}

ChaosRun RunPageRankChaos(const FaultSchedule& faults) {
  ChaosRun out;
  GraphGenOptions opt;
  opt.num_vertices = 350;
  opt.num_edges = 1800;
  opt.seed = 17;
  GraphData graph = GenerateRmatGraph(opt);
  Cluster cluster(ChaosConfig());
  if (Status st = LoadGraphTables(&cluster, graph); !st.ok()) {
    out.error = st.ToString();
    return out;
  }
  PageRankConfig cfg;
  cfg.threshold = 1e-6;
  if (Status st = RegisterPageRankUdfs(cluster.udfs(), cfg); !st.ok()) {
    out.error = st.ToString();
    return out;
  }
  auto plan = BuildPageRankDeltaPlan(cfg);
  if (!plan.ok()) {
    out.error = plan.status().ToString();
    return out;
  }
  QueryOptions options;
  options.faults = faults;
  auto run = cluster.Run(*plan, options);
  if (!run.ok()) {
    out.error = run.status().ToString();
    return out;
  }
  auto ranks = RanksFromState(run->fixpoint_state, graph.num_vertices);
  if (!ranks.ok()) {
    out.error = ranks.status().ToString();
    return out;
  }
  out.values = *ranks;
  FillCommon(&out, cluster, *run);
  out.ok = true;
  return out;
}

ChaosRun RunSsspChaosWithConfig(const FaultSchedule& faults,
                                const EngineConfig& config) {
  ChaosRun out;
  GraphGenOptions opt;
  opt.num_vertices = 400;
  opt.num_edges = 1600;
  opt.seed = 321;
  GraphData graph = GenerateRmatGraph(opt);
  Cluster cluster(config);
  if (Status st = LoadGraphTables(&cluster, graph); !st.ok()) {
    out.error = st.ToString();
    return out;
  }
  SsspConfig cfg;
  cfg.source = 2;
  if (Status st = RegisterSsspUdfs(cluster.udfs(), cfg); !st.ok()) {
    out.error = st.ToString();
    return out;
  }
  auto plan = BuildSsspDeltaPlan(cfg);
  if (!plan.ok()) {
    out.error = plan.status().ToString();
    return out;
  }
  QueryOptions options;
  options.faults = faults;
  auto run = cluster.Run(*plan, options);
  if (!run.ok()) {
    out.error = run.status().ToString();
    return out;
  }
  auto dist = DistancesFromState(run->fixpoint_state, graph.num_vertices);
  if (!dist.ok()) {
    out.error = dist.status().ToString();
    return out;
  }
  out.values.assign(dist->begin(), dist->end());  // small ints: exact
  FillCommon(&out, cluster, *run);
  out.ok = true;
  return out;
}

ChaosRun RunSsspChaos(const FaultSchedule& faults) {
  return RunSsspChaosWithConfig(faults, ChaosConfig());
}

ChaosRun RunKMeansChaos(const FaultSchedule& faults) {
  ChaosRun out;
  GeoGenOptions geo;
  geo.num_base_points = 600;
  geo.num_clusters = 5;
  geo.cluster_stddev = 0.3;
  geo.seed = 4242;
  KMeansConfig cfg;
  cfg.k = 5;
  Cluster cluster(ChaosConfig());
  if (Status st = LoadPointsTable(&cluster, GenerateGeoPoints(geo));
      !st.ok()) {
    out.error = st.ToString();
    return out;
  }
  if (Status st = RegisterKMeansUdfs(cluster.udfs(), cfg); !st.ok()) {
    out.error = st.ToString();
    return out;
  }
  auto plan = BuildKMeansDeltaPlan(cfg);
  if (!plan.ok()) {
    out.error = plan.status().ToString();
    return out;
  }
  QueryOptions options;
  options.faults = faults;
  auto run = cluster.Run(*plan, options);
  if (!run.ok()) {
    out.error = run.status().ToString();
    return out;
  }
  auto centroids = CentroidsFromState(run->fixpoint_state);
  if (!centroids.ok()) {
    out.error = centroids.status().ToString();
    return out;
  }
  for (const auto& [x, y] : *centroids) {
    out.values.push_back(x);
    out.values.push_back(y);
  }
  FillCommon(&out, cluster, *run);
  out.ok = true;
  return out;
}

ChaosRun RunAdsorptionChaos(const FaultSchedule& faults) {
  ChaosRun out;
  GraphGenOptions opt;
  opt.num_vertices = 250;
  opt.num_edges = 1500;
  opt.seed = 91;
  GraphData graph = GenerateRmatGraph(opt);
  Cluster cluster(ChaosConfig());
  if (Status st = LoadGraphTables(&cluster, graph); !st.ok()) {
    out.error = st.ToString();
    return out;
  }
  AdsorptionConfig acfg;
  acfg.num_labels = 3;
  acfg.threshold = 1e-6;
  if (Status st = RegisterAdsorptionUdfs(cluster.udfs(), acfg); !st.ok()) {
    out.error = st.ToString();
    return out;
  }
  auto plan = BuildAdsorptionDeltaPlan(acfg);
  if (!plan.ok()) {
    out.error = plan.status().ToString();
    return out;
  }
  QueryOptions options;
  options.faults = faults;
  auto run = cluster.Run(*plan, options);
  if (!run.ok()) {
    out.error = run.status().ToString();
    return out;
  }
  auto weights =
      AdsorptionFromState(run->fixpoint_state, graph.num_vertices, 3);
  if (!weights.ok()) {
    out.error = weights.status().ToString();
    return out;
  }
  for (const auto& row : *weights) {
    out.values.insert(out.values.end(), row.begin(), row.end());
  }
  FillCommon(&out, cluster, *run);
  out.ok = true;
  return out;
}

using RunFn = ChaosRun (*)(const FaultSchedule&);

struct SweepCase {
  const char* algo;
  RunFn run;
  /// 0 = exact comparison (integer results); > 0 = FP tolerance.
  double tolerance;
  RecoveryStrategy strategy;
};

std::string SweepName(const ::testing::TestParamInfo<SweepCase>& info) {
  return std::string(info.param.algo) +
         (info.param.strategy == RecoveryStrategy::kRestart ? "Restart"
                                                            : "Incremental");
}

class ChaosSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ChaosSweepTest, SeededSchedulesMatchNoFailureReference) {
  const SweepCase& sc = GetParam();
  ChaosRun ref = sc.run(FaultSchedule{});
  ASSERT_TRUE(ref.ok) << ref.error;
  ASSERT_GE(ref.strata, 5)
      << sc.algo << ": the reference converges too fast for chaos "
      << "schedules to fire before the end of the query";

  // Crashes (and the restores that trail them by <= 2 strata) must land
  // well before the reference convergence stratum, or the end-of-run
  // mandatory-event validation rejects the schedule.
  ChaosProfile profile;
  profile.max_crash_stratum = std::max(0, std::min(3, ref.strata - 5));

  const int seeds = SweepSeeds();
  // Distinct seed pool per (algo, strategy) combination so the full sweep
  // explores more schedules; REX_CHAOS_SEED_BASE pins a failing seed.
  uint64_t base = 7919u * (static_cast<uint64_t>(
                               std::hash<std::string>{}(sc.algo)) %
                           1000u) +
                  (sc.strategy == RecoveryStrategy::kRestart ? 500000u : 0u);
  base = static_cast<uint64_t>(EnvInt("REX_CHAOS_SEED_BASE",
                                      static_cast<int>(base % 1000000u)));

  ChaosStats total;
  for (int i = 0; i < seeds; ++i) {
    const uint64_t seed = base + static_cast<uint64_t>(i);
    FaultSchedule schedule = MakeChaosSchedule(seed, profile);
    schedule.strategy = sc.strategy;
    SCOPED_TRACE("seed " + std::to_string(seed) + ": " +
                 schedule.ToString());
    ChaosRun got = sc.run(schedule);
    ASSERT_TRUE(got.ok) << got.error;
    ASSERT_EQ(got.values.size(), ref.values.size());
    for (size_t j = 0; j < ref.values.size(); ++j) {
      if (sc.tolerance == 0) {
        ASSERT_EQ(got.values[j], ref.values[j]) << "position " << j;
      } else {
        ASSERT_NEAR(got.values[j], ref.values[j], sc.tolerance)
            << "position " << j;
      }
    }
    // Every schedule anchors on >= 1 crash; the driver must actually have
    // recovered (mandatory-event validation guarantees the crash fired).
    EXPECT_GE(got.chaos.crashes, 1);
    EXPECT_GE(got.recoveries, 1);
    total.crashes += got.chaos.crashes;
    total.mid_stratum_crashes += got.chaos.mid_stratum_crashes;
    total.recovery_crashes += got.chaos.recovery_crashes;
    total.restores += got.chaos.restores;
    total.recovery_rounds += got.chaos.recovery_rounds;
    total.messages_dropped += got.chaos.messages_dropped;
    total.messages_duplicated += got.chaos.messages_duplicated;
    total.batches_reordered += got.chaos.batches_reordered;
  }
  EXPECT_GE(total.crashes, seeds);
  std::printf(
      "[chaos] %s/%s seeds=%d crashes=%d mid=%d rec=%d restores=%d "
      "rounds=%d dropped=%lld dup=%lld reordered=%lld\n",
      sc.algo,
      sc.strategy == RecoveryStrategy::kRestart ? "restart" : "incremental",
      seeds, total.crashes, total.mid_stratum_crashes,
      total.recovery_crashes, total.restores, total.recovery_rounds,
      static_cast<long long>(total.messages_dropped),
      static_cast<long long>(total.messages_duplicated),
      static_cast<long long>(total.batches_reordered));
}

INSTANTIATE_TEST_SUITE_P(
    ChaosSweeps, ChaosSweepTest,
    ::testing::Values(
        SweepCase{"PageRank", RunPageRankChaos, 1e-6,
                  RecoveryStrategy::kIncremental},
        SweepCase{"PageRank", RunPageRankChaos, 1e-6,
                  RecoveryStrategy::kRestart},
        SweepCase{"Sssp", RunSsspChaos, 0.0,
                  RecoveryStrategy::kIncremental},
        SweepCase{"Sssp", RunSsspChaos, 0.0, RecoveryStrategy::kRestart},
        SweepCase{"KMeans", RunKMeansChaos, 1e-6,
                  RecoveryStrategy::kIncremental},
        SweepCase{"KMeans", RunKMeansChaos, 1e-6,
                  RecoveryStrategy::kRestart},
        SweepCase{"Adsorption", RunAdsorptionChaos, 1e-6,
                  RecoveryStrategy::kIncremental},
        SweepCase{"Adsorption", RunAdsorptionChaos, 1e-6,
                  RecoveryStrategy::kRestart}),
    SweepName);

// ---------------------------------------------------------------------------
// Directed schedules: each fault kind is exercised deterministically, so
// the acceptance guarantees (crash during recovery, duplication after
// restore, ...) never depend on what the seeded sweep happens to draw.
// ---------------------------------------------------------------------------

void ExpectExactSssp(const ChaosRun& got, const ChaosRun& ref) {
  ASSERT_EQ(got.values.size(), ref.values.size());
  for (size_t j = 0; j < ref.values.size(); ++j) {
    ASSERT_EQ(got.values[j], ref.values[j]) << "vertex " << j;
  }
}

TEST(ChaosSweepDirected, CrashDuringRecoveryIsRecoveredFrom) {
  ChaosRun ref = RunSsspChaos(FaultSchedule{});
  ASSERT_TRUE(ref.ok) << ref.error;

  FaultSchedule schedule;
  schedule.strategy = RecoveryStrategy::kIncremental;
  FaultEvent crash;
  crash.kind = FaultEvent::Kind::kCrash;
  crash.worker = 1;
  crash.at_stratum = 2;
  schedule.events.push_back(crash);
  FaultEvent second;  // fails while worker 1's recovery is in progress
  second.kind = FaultEvent::Kind::kCrash;
  second.worker = 2;
  second.at_stratum = 2;
  second.during_recovery = true;
  second.after_messages = 1;
  schedule.events.push_back(second);

  ChaosRun got = RunSsspChaos(schedule);
  ASSERT_TRUE(got.ok) << got.error;
  ExpectExactSssp(got, ref);
  EXPECT_EQ(got.chaos.crashes, 2);
  EXPECT_EQ(got.chaos.recovery_crashes, 1);
  EXPECT_GE(got.recoveries, 2);  // the interrupted pass plus the retry
  EXPECT_EQ(got.live_after.size(), 2u);
  // Both deaths were discovered by the probe-round detector, never
  // announced: the profile carries the rounds spent noticing them.
  EXPECT_GE(got.detection_latency_ticks, 2);
}

TEST(ChaosSweepDirected, DuplicationAfterRestoreIsDeduplicated) {
  ChaosRun ref = RunSsspChaos(FaultSchedule{});
  ASSERT_TRUE(ref.ok) << ref.error;

  FaultSchedule schedule;
  schedule.strategy = RecoveryStrategy::kIncremental;
  FaultEvent crash;
  crash.kind = FaultEvent::Kind::kCrash;
  crash.worker = 1;
  crash.at_stratum = 1;
  schedule.events.push_back(crash);
  FaultEvent restore;
  restore.kind = FaultEvent::Kind::kRestore;
  restore.worker = 1;
  restore.at_stratum = 2;
  schedule.events.push_back(restore);
  FaultEvent dup;  // double-deliver traffic to the restored node
  dup.kind = FaultEvent::Kind::kDuplicate;
  dup.worker = 1;
  dup.at_stratum = 2;
  dup.count = 25;
  schedule.events.push_back(dup);

  ChaosRun got = RunSsspChaos(schedule);
  ASSERT_TRUE(got.ok) << got.error;
  ExpectExactSssp(got, ref);
  EXPECT_EQ(got.chaos.restores, 1);
  EXPECT_GE(got.chaos.messages_duplicated, 1);
  // Exactly-once: every duplicated copy was discarded by the receiver's
  // per-sender sequence check.
  EXPECT_EQ(got.dup_discarded, got.chaos.messages_duplicated);
  EXPECT_EQ(got.live_after.size(), 4u);  // full strength after restore
}

TEST(ChaosSweepDirected, MidStratumCrashWithDropsAbortsTheStratum) {
  ChaosRun ref = RunSsspChaos(FaultSchedule{});
  ASSERT_TRUE(ref.ok) << ref.error;

  FaultSchedule schedule;
  schedule.strategy = RecoveryStrategy::kIncremental;
  FaultEvent crash;
  crash.kind = FaultEvent::Kind::kCrash;
  crash.worker = 1;
  crash.at_stratum = 2;
  crash.after_messages = 60;  // mid-stratum, after 60 data sends
  schedule.events.push_back(crash);
  FaultEvent drop;  // messages to the doomed node vanish first
  drop.kind = FaultEvent::Kind::kDrop;
  drop.worker = 1;
  drop.at_stratum = 2;
  drop.count = 10;
  schedule.events.push_back(drop);

  ChaosRun got = RunSsspChaos(schedule);
  ASSERT_TRUE(got.ok) << got.error;
  ExpectExactSssp(got, ref);
  EXPECT_EQ(got.chaos.mid_stratum_crashes, 1);
  EXPECT_GE(got.chaos.messages_dropped, 1);
  EXPECT_GE(got.recoveries, 1);
}

TEST(ChaosSweepDirected, ReorderWindowLeavesAnswerWithinTolerance) {
  ChaosRun ref = RunPageRankChaos(FaultSchedule{});
  ASSERT_TRUE(ref.ok) << ref.error;

  FaultSchedule schedule;  // no crash at all: pure message-level fault
  FaultEvent reorder;
  reorder.kind = FaultEvent::Kind::kReorder;
  reorder.worker = -1;
  reorder.at_stratum = 1;
  reorder.count = 50;
  schedule.events.push_back(reorder);
  schedule.seed = 99;  // seeds the injector's permutations

  ChaosRun got = RunPageRankChaos(schedule);
  ASSERT_TRUE(got.ok) << got.error;
  ASSERT_EQ(got.values.size(), ref.values.size());
  for (size_t j = 0; j < ref.values.size(); ++j) {
    ASSERT_NEAR(got.values[j], ref.values[j], 1e-6) << "vertex " << j;
  }
  EXPECT_GE(got.chaos.batches_reordered, 1);
  EXPECT_EQ(got.chaos.crashes, 0);
  EXPECT_EQ(got.recoveries, 0);
}

TEST(ChaosSweepDirected, TwoCrashesOneRestoreEndsAtExpectedStrength) {
  ChaosRun ref = RunSsspChaos(FaultSchedule{});
  ASSERT_TRUE(ref.ok) << ref.error;

  FaultSchedule schedule;
  schedule.strategy = RecoveryStrategy::kIncremental;
  FaultEvent c1;
  c1.kind = FaultEvent::Kind::kCrash;
  c1.worker = 1;
  c1.at_stratum = 1;
  schedule.events.push_back(c1);
  FaultEvent c2;
  c2.kind = FaultEvent::Kind::kCrash;
  c2.worker = 3;
  c2.at_stratum = 2;
  schedule.events.push_back(c2);
  FaultEvent restore;
  restore.kind = FaultEvent::Kind::kRestore;
  restore.worker = 1;
  restore.at_stratum = 3;
  schedule.events.push_back(restore);

  ChaosRun got = RunSsspChaos(schedule);
  ASSERT_TRUE(got.ok) << got.error;
  ExpectExactSssp(got, ref);
  EXPECT_EQ(got.chaos.crashes, 2);
  EXPECT_EQ(got.chaos.restores, 1);
  // Workers 0, 2 survived; worker 1 came back; worker 3 stayed down.
  EXPECT_EQ(got.live_after, (std::vector<int>{0, 1, 2}));
}

TEST(ChaosSweepDirected, DropWindowToLiveTargetIsRetransmitted) {
  ChaosRun ref = RunSsspChaos(FaultSchedule{});
  ASSERT_TRUE(ref.ok) << ref.error;

  // A pure lossy-link schedule: messages to a healthy worker are dropped,
  // nobody ever crashes, and the answer is still exact because the sender
  // retransmits until the window is exhausted.
  FaultSchedule schedule;
  FaultEvent drop;
  drop.kind = FaultEvent::Kind::kDrop;
  drop.worker = 2;
  drop.at_stratum = 1;
  drop.count = 10;
  schedule.events.push_back(drop);

  ChaosRun got = RunSsspChaos(schedule);
  ASSERT_TRUE(got.ok) << got.error;
  ExpectExactSssp(got, ref);
  EXPECT_GE(got.chaos.messages_dropped, 1);
  EXPECT_GE(got.retransmits, 1);
  EXPECT_EQ(got.chaos.crashes, 0);
  EXPECT_EQ(got.recoveries, 0);
  EXPECT_EQ(got.live_after.size(), 4u);
}

TEST(ChaosSweepDirected, CorruptedCheckpointCopiesAreRepaired) {
  ChaosRun ref = RunSsspChaos(FaultSchedule{});
  ASSERT_TRUE(ref.ok) << ref.error;

  // Worker 2 (a survivor) silently corrupts its checkpoint copies at the
  // stratum-2 boundary; worker 1 crashes at the same boundary, so recovery
  // replay must read through the corruption and repair from replicas.
  FaultSchedule schedule;
  schedule.strategy = RecoveryStrategy::kIncremental;
  FaultEvent crash;
  crash.kind = FaultEvent::Kind::kCrash;
  crash.worker = 1;
  crash.at_stratum = 2;
  schedule.events.push_back(crash);
  FaultEvent corrupt;
  corrupt.kind = FaultEvent::Kind::kCorruptCheckpoint;
  corrupt.worker = 2;
  corrupt.at_stratum = 2;
  corrupt.count = 4;
  schedule.events.push_back(corrupt);

  ChaosRun got = RunSsspChaos(schedule);
  ASSERT_TRUE(got.ok) << got.error;
  ExpectExactSssp(got, ref);
  EXPECT_EQ(got.chaos.crashes, 1);
  EXPECT_EQ(got.chaos.corruptions, 1);
  EXPECT_GE(got.recoveries, 1);
  EXPECT_GE(got.checkpoint_repairs, 1);
}

TEST(ChaosSweepDirected, AllCopiesCorruptDegradesToRestart) {
  ChaosRun ref = RunSsspChaos(FaultSchedule{});
  ASSERT_TRUE(ref.ok) << ref.error;

  // Every holder's copy of the first few entries rots, so the incremental
  // replay hits kDataLoss; the recovery retry loop degrades to the restart
  // strategy and the query still converges to the reference answer.
  FaultSchedule schedule;
  schedule.strategy = RecoveryStrategy::kIncremental;
  FaultEvent crash;
  crash.kind = FaultEvent::Kind::kCrash;
  crash.worker = 1;
  crash.at_stratum = 2;
  schedule.events.push_back(crash);
  FaultEvent corrupt;
  corrupt.kind = FaultEvent::Kind::kCorruptCheckpoint;
  corrupt.worker = -1;  // every holder: unrepairable
  corrupt.at_stratum = 2;
  corrupt.count = 3;
  schedule.events.push_back(corrupt);

  ChaosRun got = RunSsspChaos(schedule);
  ASSERT_TRUE(got.ok) << got.error;
  ExpectExactSssp(got, ref);
  EXPECT_EQ(got.chaos.crashes, 1);
  EXPECT_GE(got.recoveries, 2);  // the failed incremental pass + restart
  EXPECT_EQ(got.live_after.size(), 3u);
}

// ---------------------------------------------------------------------------
// Differentially compressed checkpoint chains under corruption: flipping a
// byte of a stored copy now hits a mid-chain DELTA (every non-keyframe epoch
// delta-encodes against its predecessor), so the read path must either
// repair the copy from a replica or fail the whole chain loudly with
// kDataLoss and degrade to restart — never decode silently-wrong tuples.
// The tight keyframe interval maximizes chain depth; `ExpectExactSssp`
// asserts the faulted answer is bit-identical to the no-failure reference.
// ---------------------------------------------------------------------------

EngineConfig DiffChainConfig() {
  EngineConfig cfg = ChaosConfig();
  cfg.diff_checkpoints = true;
  cfg.checkpoint_keyframe_every = 16;  // one keyframe, everything else chained
  return cfg;
}

TEST(ChaosSweepDiffCheckpoint, CorruptedMidChainDeltaIsRepaired) {
  ChaosRun ref = RunSsspChaosWithConfig(FaultSchedule{}, DiffChainConfig());
  ASSERT_TRUE(ref.ok) << ref.error;

  // Worker 2 (a survivor) rots its copies — deltas included — right before
  // worker 1's crash forces a replay through the chain; reconstruction must
  // detect the bad stored bytes per copy and repair from replicas.
  FaultSchedule schedule;
  schedule.strategy = RecoveryStrategy::kIncremental;
  FaultEvent crash;
  crash.kind = FaultEvent::Kind::kCrash;
  crash.worker = 1;
  crash.at_stratum = 3;
  schedule.events.push_back(crash);
  FaultEvent corrupt;
  corrupt.kind = FaultEvent::Kind::kCorruptCheckpoint;
  corrupt.worker = 2;
  corrupt.at_stratum = 3;
  corrupt.count = 8;
  schedule.events.push_back(corrupt);

  ChaosRun got = RunSsspChaosWithConfig(schedule, DiffChainConfig());
  ASSERT_TRUE(got.ok) << got.error;
  ExpectExactSssp(got, ref);
  EXPECT_EQ(got.chaos.crashes, 1);
  EXPECT_EQ(got.chaos.corruptions, 1);
  EXPECT_GE(got.recoveries, 1);
  EXPECT_GE(got.checkpoint_repairs, 1);
}

TEST(ChaosSweepDiffCheckpoint, AllCopiesOfChainCorruptDegradeToRestart) {
  ChaosRun ref = RunSsspChaosWithConfig(FaultSchedule{}, DiffChainConfig());
  ASSERT_TRUE(ref.ok) << ref.error;

  // Every holder's copy of the first few entries rots: the chain has no
  // valid source left, reconstruction fails with kDataLoss (never wrong
  // bytes), and the recovery retry loop degrades to restart.
  FaultSchedule schedule;
  schedule.strategy = RecoveryStrategy::kIncremental;
  FaultEvent crash;
  crash.kind = FaultEvent::Kind::kCrash;
  crash.worker = 1;
  crash.at_stratum = 3;
  schedule.events.push_back(crash);
  FaultEvent corrupt;
  corrupt.kind = FaultEvent::Kind::kCorruptCheckpoint;
  corrupt.worker = -1;  // every holder: unrepairable
  corrupt.at_stratum = 3;
  corrupt.count = 3;
  schedule.events.push_back(corrupt);

  ChaosRun got = RunSsspChaosWithConfig(schedule, DiffChainConfig());
  ASSERT_TRUE(got.ok) << got.error;
  ExpectExactSssp(got, ref);
  EXPECT_EQ(got.chaos.crashes, 1);
  EXPECT_GE(got.recoveries, 2);  // failed incremental pass + restart
  EXPECT_EQ(got.live_after.size(), 3u);
}

TEST(ChaosSweepDiffCheckpoint, DiffAndWholeChainsAgreeUnderCrashes) {
  // The codec must be invisible to recovery semantics: the same crash
  // schedule replayed from compressed chains and from whole epochs lands on
  // the identical answer.
  FaultSchedule schedule;
  schedule.strategy = RecoveryStrategy::kIncremental;
  FaultEvent crash;
  crash.kind = FaultEvent::Kind::kCrash;
  crash.worker = 2;
  crash.at_stratum = 4;
  schedule.events.push_back(crash);

  EngineConfig whole = ChaosConfig();
  whole.diff_checkpoints = false;
  whole.diff_wire_runs = false;
  ChaosRun plain = RunSsspChaosWithConfig(schedule, whole);
  ASSERT_TRUE(plain.ok) << plain.error;
  ChaosRun diffed = RunSsspChaosWithConfig(schedule, DiffChainConfig());
  ASSERT_TRUE(diffed.ok) << diffed.error;
  ExpectExactSssp(diffed, plain);
  EXPECT_EQ(diffed.strata, plain.strata);
}

TEST(ChaosSweepDirected, SameSeedIsDeterministic) {
  ChaosProfile profile;
  profile.max_crash_stratum = 2;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    FaultSchedule a = MakeChaosSchedule(seed, profile);
    FaultSchedule b = MakeChaosSchedule(seed, profile);
    EXPECT_EQ(a.ToString(), b.ToString()) << "seed " << seed;
  }
  // And the engine answer under one fixed schedule is reproducible
  // run-to-run (exact, because SSSP is integer-valued).
  FaultSchedule schedule = MakeChaosSchedule(7, profile);
  ChaosRun first = RunSsspChaos(schedule);
  ASSERT_TRUE(first.ok) << first.error;
  ChaosRun second = RunSsspChaos(schedule);
  ASSERT_TRUE(second.ok) << second.error;
  ExpectExactSssp(second, first);
  EXPECT_EQ(first.chaos.crashes, second.chaos.crashes);
  EXPECT_EQ(first.chaos.restores, second.chaos.restores);
}

// ---------------------------------------------------------------------------
// Schedule validation: malformed schedules are rejected up front with a
// clear error instead of silently running failure-free.
// ---------------------------------------------------------------------------

FaultEvent Crash(int worker, int stratum, int after_messages = -1) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kCrash;
  e.worker = worker;
  e.at_stratum = stratum;
  e.after_messages = after_messages;
  return e;
}

TEST(FaultScheduleValidation, WorkerIdOutOfRange) {
  FaultSchedule s;
  s.events.push_back(Crash(4, 1));
  Status st = s.Validate(/*num_workers=*/4, /*replication=*/3);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("out of range"), std::string::npos);
}

TEST(FaultScheduleValidation, TooManySimultaneousFailures) {
  FaultSchedule s;  // replication 3 tolerates 2 concurrent failures, not 3
  s.events.push_back(Crash(0, 1));
  s.events.push_back(Crash(1, 1));
  s.events.push_back(Crash(2, 2));
  Status st = s.Validate(4, 3);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("replication"), std::string::npos);
}

TEST(FaultScheduleValidation, RestoreMakesRoomForAnotherCrash) {
  FaultSchedule s;
  s.events.push_back(Crash(0, 1));
  s.events.push_back(Crash(1, 1));
  FaultEvent restore;
  restore.kind = FaultEvent::Kind::kRestore;
  restore.worker = 0;
  restore.at_stratum = 2;
  s.events.push_back(restore);
  s.events.push_back(Crash(2, 3));  // legal: only 2 down at once
  EXPECT_TRUE(s.Validate(4, 3).ok());
}

TEST(FaultScheduleValidation, RestoreOfLiveWorkerRejected) {
  FaultSchedule s;
  FaultEvent restore;
  restore.kind = FaultEvent::Kind::kRestore;
  restore.worker = 2;
  restore.at_stratum = 1;
  s.events.push_back(restore);
  Status st = s.Validate(4, 3);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("not failed"), std::string::npos);
}

TEST(FaultScheduleValidation, DropToLiveTargetIsLegal) {
  // Drops no longer require a doomed target: the sender's retransmission
  // protocol survives a lossy link to a perfectly healthy worker.
  FaultSchedule s;
  FaultEvent drop;
  drop.kind = FaultEvent::Kind::kDrop;
  drop.worker = 1;
  drop.at_stratum = 2;
  drop.count = 5;
  s.events.push_back(drop);  // nobody crashes mid-stratum 2
  s.events.push_back(Crash(1, 3));
  EXPECT_TRUE(s.Validate(4, 3).ok());
  // A degenerate window is still rejected.
  s.events[0].count = 0;
  Status st = s.Validate(4, 3);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find(">= 1"), std::string::npos);
}

TEST(FaultScheduleValidation, CorruptionCountMustBePositive) {
  FaultSchedule s;
  FaultEvent corrupt;
  corrupt.kind = FaultEvent::Kind::kCorruptCheckpoint;
  corrupt.worker = -1;  // every holder: legal
  corrupt.at_stratum = 1;
  corrupt.count = 0;
  s.events.push_back(corrupt);
  Status st = s.Validate(4, 3);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  corrupt.count = 2;
  s.events[0] = corrupt;
  EXPECT_TRUE(s.Validate(4, 3).ok());
}

TEST(FaultScheduleValidation, DuplicateRequiresRestoredTarget) {
  FaultSchedule s;
  FaultEvent dup;
  dup.kind = FaultEvent::Kind::kDuplicate;
  dup.worker = 1;
  dup.at_stratum = 1;
  dup.count = 5;
  s.events.push_back(dup);  // worker 1 never crashed or restored
  Status st = s.Validate(4, 3);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("restored"), std::string::npos);
}

TEST(FaultScheduleValidation, CrashDuringRecoveryNeedsPrecedingCrash) {
  FaultSchedule s;
  FaultEvent e = Crash(1, 1, /*after_messages=*/3);
  e.during_recovery = true;
  s.events.push_back(e);
  Status st = s.Validate(4, 3);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("preceding crash"), std::string::npos);
}

TEST(FaultScheduleValidation, GeneratedSchedulesAlwaysValidate) {
  ChaosProfile profile;
  for (uint64_t seed = 0; seed < 300; ++seed) {
    FaultSchedule s = MakeChaosSchedule(seed, profile);
    Status st = s.Validate(profile.num_workers, profile.replication);
    EXPECT_TRUE(st.ok()) << "seed " << seed << ": " << st.ToString() << "\n"
                         << s.ToString();
  }
}

// ---------------------------------------------------------------------------
// Legacy FailureInjection validation (the single-failure front door must
// reject bad input instead of silently running failure-free).
// ---------------------------------------------------------------------------

Result<QueryRunResult> RunSsspWithInjection(FailureInjection failure) {
  GraphGenOptions opt;
  opt.num_vertices = 400;
  opt.num_edges = 1600;
  opt.seed = 321;
  GraphData graph = GenerateRmatGraph(opt);
  Cluster cluster(ChaosConfig());
  REX_RETURN_NOT_OK(LoadGraphTables(&cluster, graph));
  SsspConfig cfg;
  cfg.source = 2;
  REX_RETURN_NOT_OK(RegisterSsspUdfs(cluster.udfs(), cfg));
  REX_ASSIGN_OR_RETURN(PlanSpec plan, BuildSsspDeltaPlan(cfg));
  QueryOptions options;
  options.failure = failure;
  return cluster.Run(plan, options);
}

TEST(FailureInjectionValidation, WorkerOutOfRangeRejected) {
  FailureInjection failure;
  failure.worker = 7;  // cluster has 4 workers
  failure.before_stratum = 1;
  auto run = RunSsspWithInjection(failure);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
}

TEST(FailureInjectionValidation, MissingStratumRejected) {
  FailureInjection failure;
  failure.worker = 1;  // worker set but no stratum: ambiguous, not "never"
  failure.before_stratum = -1;
  auto run = RunSsspWithInjection(failure);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
}

TEST(FailureInjectionValidation, StratumPastConvergenceRejected) {
  FailureInjection failure;
  failure.worker = 1;
  failure.before_stratum = 500;  // the query converges long before this
  failure.strategy = RecoveryStrategy::kIncremental;
  auto run = RunSsspWithInjection(failure);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(run.status().message().find("never fired"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Chaos during incremental re-convergence (Cluster::ApplyBaseUpdate). The
// base-update path resumes the stratum loop past the converged run's last
// stratum, so fault events use ABSOLUTE stratum numbers >= the resume
// point (handed to the schedule builder as `resume`). Every run is checked
// against the from-scratch ReferenceSssp oracle on the mutated graph —
// stronger than the no-failure-reference comparison above, because a fault
// that silently corrupted the converged baseline would also surface here.
// ---------------------------------------------------------------------------

struct IvmChaosRun {
  bool ok = false;
  std::string error;
  std::vector<int64_t> dist;    // incremental result after re-convergence
  std::vector<int64_t> oracle;  // ReferenceSssp on the mutated graph
  int resume = 0;
  int strata = 0;
  int recoveries = 0;
  ChaosStats chaos;
};

/// Converges SSSP once, mutates the graph (several shortest-path-tree edge
/// deletions plus a fresh two-hop detour off the source), and re-converges
/// through ApplyBaseUpdate under the schedule `make_faults(resume)`.
IvmChaosRun RunSsspUpdateChaos(
    const std::function<FaultSchedule(int resume)>& make_faults) {
  IvmChaosRun out;
  GraphGenOptions opt;
  opt.num_vertices = 400;
  opt.num_edges = 1600;
  opt.seed = 321;
  GraphData graph = GenerateRmatGraph(opt);
  Cluster cluster(ChaosConfig());
  if (Status st = LoadGraphTables(&cluster, graph); !st.ok()) {
    out.error = st.ToString();
    return out;
  }
  SsspConfig cfg;
  cfg.source = 2;
  if (Status st = RegisterSsspUdfs(cluster.udfs(), cfg); !st.ok()) {
    out.error = st.ToString();
    return out;
  }
  auto plan = BuildSsspDeltaPlan(cfg);
  if (!plan.ok()) {
    out.error = plan.status().ToString();
    return out;
  }
  auto run = cluster.Run(*plan);
  if (!run.ok()) {
    out.error = run.status().ToString();
    return out;
  }
  auto dist = DistancesFromState(run->fixpoint_state, graph.num_vertices);
  if (!dist.ok()) {
    out.error = dist.status().ToString();
    return out;
  }
  out.resume = run->strata_executed;

  // Deterministic mutation batch: sever the first six tree edges (their
  // whole downstream subtrees must re-derive, which keeps the resumed loop
  // busy for several strata) and add a detour the oracle must also see.
  Adjacency adj = AdjacencyFromGraph(graph);
  std::vector<EdgeMutation> batch;
  int deletions = 0;
  for (const auto& [src, dst] : graph.edges) {
    if ((*dist)[static_cast<size_t>(src)] != -1 &&
        (*dist)[static_cast<size_t>(dst)] ==
            (*dist)[static_cast<size_t>(src)] + 1) {
      batch.push_back({src, dst, -1});
      if (++deletions == 6) break;
    }
  }
  batch.push_back({cfg.source, 399, 1});
  batch.push_back({399, 7, 1});

  auto update = BuildSsspBaseUpdate(*plan, batch, *dist, adj, cfg.source);
  if (!update.ok()) {
    out.error = update.status().ToString();
    return out;
  }
  update->faults = make_faults(out.resume);
  auto inc = cluster.ApplyBaseUpdate(*update);
  if (!inc.ok()) {
    out.error = inc.status().ToString();
    return out;
  }
  auto got = DistancesFromState(inc->fixpoint_state, graph.num_vertices);
  if (!got.ok()) {
    out.error = got.status().ToString();
    return out;
  }
  out.dist = *got;
  out.strata = inc->strata_executed;
  out.recoveries = inc->recoveries;
  out.chaos = inc->chaos;

  ApplyEdgeMutations(&adj, batch);
  GraphData mutated;
  mutated.num_vertices = graph.num_vertices;
  for (size_t u = 0; u < adj.size(); ++u) {
    for (int64_t v : adj[u]) {
      mutated.edges.emplace_back(static_cast<int64_t>(u), v);
    }
  }
  out.oracle = ReferenceSssp(mutated, cfg.source);
  out.ok = true;
  return out;
}

void ExpectMatchesIvmOracle(const IvmChaosRun& got) {
  ASSERT_EQ(got.dist.size(), got.oracle.size());
  for (size_t j = 0; j < got.oracle.size(); ++j) {
    ASSERT_EQ(got.dist[j], got.oracle[j]) << "vertex " << j;
  }
}

TEST(ChaosSweepIvm, NoFaultBaselineMatchesOracle) {
  IvmChaosRun got =
      RunSsspUpdateChaos([](int) { return FaultSchedule{}; });
  ASSERT_TRUE(got.ok) << got.error;
  ExpectMatchesIvmOracle(got);
  EXPECT_EQ(got.chaos.crashes, 0);
  EXPECT_EQ(got.recoveries, 0);
  // The subtree severed by the tree-edge deletions takes more than one
  // stratum to re-derive — the chaos schedules below rely on that window.
  EXPECT_GE(got.strata, 2);
}

TEST(ChaosSweepIvm, BoundaryCrashDuringReconvergenceMatchesOracle) {
  IvmChaosRun got = RunSsspUpdateChaos([](int resume) {
    FaultSchedule schedule;
    schedule.strategy = RecoveryStrategy::kIncremental;
    FaultEvent crash;  // boundary crash as the resumed loop starts
    crash.kind = FaultEvent::Kind::kCrash;
    crash.worker = 1;
    crash.at_stratum = resume;
    schedule.events.push_back(crash);
    return schedule;
  });
  ASSERT_TRUE(got.ok) << got.error;
  ExpectMatchesIvmOracle(got);
  EXPECT_EQ(got.chaos.crashes, 1);
  EXPECT_GE(got.recoveries, 1);
}

TEST(ChaosSweepIvm, MidStratumCrashWithDropsMatchesOracle) {
  IvmChaosRun got = RunSsspUpdateChaos([](int resume) {
    FaultSchedule schedule;
    schedule.strategy = RecoveryStrategy::kIncremental;
    FaultEvent drop;  // re-derivation traffic to a SURVIVOR is lossy, so
    drop.kind = FaultEvent::Kind::kDrop;  // retransmission is exercised
    drop.worker = 3;  // independently of the crash below
    drop.at_stratum = resume;
    drop.count = 8;
    schedule.events.push_back(drop);
    FaultEvent crash;  // and worker 1 dies mid-stratum
    crash.kind = FaultEvent::Kind::kCrash;
    crash.worker = 1;
    crash.at_stratum = resume;
    crash.after_messages = 2;
    schedule.events.push_back(crash);
    return schedule;
  });
  ASSERT_TRUE(got.ok) << got.error;
  ExpectMatchesIvmOracle(got);
  EXPECT_EQ(got.chaos.mid_stratum_crashes, 1);
  EXPECT_GE(got.chaos.messages_dropped, 1);
  EXPECT_GE(got.recoveries, 1);
}

TEST(ChaosSweepIvm, RestartRecoveryRecomputesFromUpdatedTables) {
  // A restart-strategy recovery during re-convergence recomputes from the
  // already-mutated tables, so it must land on the mutated-graph oracle,
  // not the pre-update converged state.
  IvmChaosRun got = RunSsspUpdateChaos([](int resume) {
    FaultSchedule schedule;
    schedule.strategy = RecoveryStrategy::kRestart;
    FaultEvent crash;
    crash.kind = FaultEvent::Kind::kCrash;
    crash.worker = 2;
    crash.at_stratum = resume;
    schedule.events.push_back(crash);
    return schedule;
  });
  ASSERT_TRUE(got.ok) << got.error;
  ExpectMatchesIvmOracle(got);
  EXPECT_EQ(got.chaos.crashes, 1);
  EXPECT_GE(got.recoveries, 1);
}

TEST(ChaosSweepIvm, ReorderWindowDuringReconvergenceStaysExact) {
  IvmChaosRun got = RunSsspUpdateChaos([](int resume) {
    FaultSchedule schedule;  // pure message-level fault, nobody crashes
    schedule.seed = 99;
    FaultEvent reorder;
    reorder.kind = FaultEvent::Kind::kReorder;
    reorder.worker = -1;
    reorder.at_stratum = resume;
    reorder.count = 40;
    schedule.events.push_back(reorder);
    return schedule;
  });
  ASSERT_TRUE(got.ok) << got.error;
  ExpectMatchesIvmOracle(got);  // min-merge is order-independent: exact
  EXPECT_EQ(got.chaos.crashes, 0);
  EXPECT_EQ(got.recoveries, 0);
}

}  // namespace
}  // namespace rex
