// RQL front-end tests: lexer, parser (the paper's listing shapes),
// typechecking, and compile-and-run through the optimizer and engine.
#include <gtest/gtest.h>

#include "algos/pagerank.h"
#include "algos/reference.h"
#include "algos/sssp.h"
#include "rql/compiler.h"
#include "rql/lexer.h"
#include "rql/parser.h"

namespace rex {
namespace {

using rql::CompileContext;
using rql::CompileRql;
using rql::Lex;
using rql::Parse;
using rql::TokenType;

TEST(RqlLexerTest, TokenKinds) {
  auto tokens = Lex("SELECT x, 3.5 FROM t WHERE a >= 'abc' -- comment\n");
  ASSERT_TRUE(tokens.ok()) << tokens.status().ToString();
  ASSERT_GE(tokens->size(), 9u);
  EXPECT_TRUE((*tokens)[0].IsKeyword("SELECT"));
  EXPECT_EQ((*tokens)[1].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[3].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ((*tokens)[3].float_value, 3.5);
  EXPECT_TRUE((*tokens)[8].IsSymbol(">="));
  EXPECT_EQ((*tokens)[9].type, TokenType::kString);
  EXPECT_EQ((*tokens)[9].text, "abc");
  EXPECT_EQ(tokens->back().type, TokenType::kEnd);
}

TEST(RqlLexerTest, Errors) {
  EXPECT_FALSE(Lex("SELECT 'unterminated").ok());
  EXPECT_FALSE(Lex("SELECT @").ok());
}

TEST(RqlParserTest, FlatAggregateQuery) {
  auto q = Parse(
      "SELECT sum(tax), count(*) FROM lineitem WHERE linenumber > 1");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_FALSE(q->IsRecursive());
  const auto& sel = *q->select;
  ASSERT_EQ(sel.items.size(), 2u);
  EXPECT_EQ(sel.items[0].expr->name, "sum");
  EXPECT_TRUE(sel.items[1].expr->is_star);
  ASSERT_TRUE(sel.where != nullptr);
  EXPECT_EQ(sel.where->op, ">");
}

TEST(RqlParserTest, PageRankListingShape) {
  // The shape of the paper's Listing 1.
  auto q = Parse(
      "WITH PR ( srcId, pr) AS ("
      "  SELECT srcId, 1.0 AS pr FROM graph"
      ") UNION UNTIL FIXPOINT BY srcId ("
      "  SELECT nbr, 0.15 + 0.85 * sum(prDiff)"
      "  FROM ( SELECT PRAgg(srcId, pr).{nbr, prDiff}"
      "         FROM graph, PR"
      "         WHERE graph.srcId = PR.srcId GROUP BY srcId)"
      "  GROUP BY nbr)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_TRUE(q->IsRecursive());
  const auto& rec = *q->recursive;
  EXPECT_EQ(rec.relation, "PR");
  EXPECT_EQ(rec.columns, (std::vector<std::string>{"srcId", "pr"}));
  EXPECT_EQ(rec.fixpoint_key, "srcId");
  EXPECT_FALSE(rec.union_all);
  ASSERT_EQ(rec.step->from.size(), 1u);
  ASSERT_TRUE(rec.step->from[0].subquery != nullptr);
  const auto& inner = *rec.step->from[0].subquery;
  ASSERT_EQ(inner.items.size(), 1u);
  EXPECT_EQ(inner.items[0].expr->name, "PRAgg");
  EXPECT_EQ(inner.items[0].delta_cols,
            (std::vector<std::string>{"nbr", "prDiff"}));
}

TEST(RqlParserTest, ShortestPathListingWithUsing) {
  auto q = Parse(
      "WITH SP (srcId, dist) AS ("
      "  SELECT srcId, 0 FROM graph WHERE srcId = 5"
      ") UNION ALL UNTIL FIXPOINT BY srcId USING SPFix ("
      "  SELECT nbr, min(distOut) FROM ("
      "    SELECT SPAgg(srcId, dist).{nbr, distOut}"
      "    FROM graph, SP WHERE graph.srcId = SP.srcId GROUP BY srcId)"
      "  GROUP BY nbr)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_TRUE(q->IsRecursive());
  EXPECT_TRUE(q->recursive->union_all);
  EXPECT_EQ(q->recursive->while_handler, "SPFix");
}

TEST(RqlParserTest, Errors) {
  EXPECT_FALSE(Parse("SELECT FROM t").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(Parse("WITH R AS (SELECT a FROM t) SELECT b FROM R").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t extra garbage ,").ok());
}

// ---- compile-and-run ------------------------------------------------------

Schema LineitemSchema() {
  return Schema{{"orderkey", ValueType::kInt},
                {"linenumber", ValueType::kInt},
                {"quantity", ValueType::kDouble},
                {"extendedprice", ValueType::kDouble},
                {"tax", ValueType::kDouble}};
}

TEST(RqlCompileTest, Fig4AggregationQueryRuns) {
  EngineConfig cfg;
  cfg.num_workers = 4;
  Cluster cluster(cfg);
  LineitemGenOptions opt;
  opt.num_rows = 3000;
  std::vector<Tuple> rows = GenerateLineitem(opt);
  double expected_sum = 0;
  int64_t expected_count = 0;
  for (const Tuple& r : rows) {
    if (r.field(1).AsInt() > 1) {
      expected_sum += r.field(4).AsDouble();
      ++expected_count;
    }
  }
  ASSERT_TRUE(
      cluster.CreateTable("lineitem", LineitemSchema(), 0, rows).ok());

  CompileContext ctx;
  ctx.storage = cluster.storage();
  ctx.udfs = cluster.udfs();
  ctx.calibration = ClusterCalibration::Uniform(4);
  auto compiled = CompileRql(
      "SELECT sum(tax), count(*) FROM lineitem WHERE linenumber > 1", ctx);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_TRUE(compiled->decisions.preagg_combiner);

  auto run = cluster.Run(compiled->spec);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run->results.size(), 1u);
  EXPECT_NEAR(run->results[0].field(0).AsDouble(), expected_sum, 1e-9);
  EXPECT_EQ(run->results[0].field(1).AsInt(), expected_count);
}

TEST(RqlCompileTest, UdaAggregationQueryRuns) {
  EngineConfig cfg;
  cfg.num_workers = 4;
  Cluster cluster(cfg);
  LineitemGenOptions opt;
  opt.num_rows = 2000;
  std::vector<Tuple> rows = GenerateLineitem(opt);
  double expected_sum = 0;
  int64_t expected_count = 0;
  for (const Tuple& r : rows) {
    if (r.field(1).AsInt() > 1) {
      expected_sum += r.field(4).AsDouble();
      ++expected_count;
    }
  }
  ASSERT_TRUE(
      cluster.CreateTable("lineitem", LineitemSchema(), 0, rows).ok());

  // Fig 4's "REX UDF" configuration: the selection and both aggregations
  // as user-defined code.
  ScalarUdf gt_one;
  gt_one.name = "gt_one";
  gt_one.in_types = {ValueType::kInt};
  gt_one.out_type = ValueType::kBool;
  gt_one.fn = [](const std::vector<Value>& args) -> Result<Value> {
    REX_ASSIGN_OR_RETURN(int64_t x, args[0].ToInt());
    return Value(x > 1);
  };
  ASSERT_TRUE(cluster.udfs()->RegisterScalar(gt_one).ok());

  struct SumCountState : UdaState {
    double sum = 0;
    int64_t count = 0;
  };
  Uda sum_count;
  sum_count.name = "SumCountTax";
  sum_count.in_schema = Schema{{"tax", ValueType::kDouble}};
  sum_count.out_schema = Schema{{"sum_tax", ValueType::kDouble},
                                {"n", ValueType::kInt}};
  sum_count.composable = true;
  sum_count.init = [] { return std::make_unique<SumCountState>(); };
  sum_count.agg_state = [](UdaState* state,
                           const Delta& d) -> Result<DeltaVec> {
    auto* s = static_cast<SumCountState*>(state);
    REX_ASSIGN_OR_RETURN(double tax, d.tuple.field(0).ToDouble());
    // Merging a partial (sum, count) pair or consuming a raw tax value.
    if (d.tuple.size() >= 2) {
      REX_ASSIGN_OR_RETURN(int64_t n, d.tuple.field(1).ToInt());
      s->sum += tax;
      s->count += n;
    } else {
      s->sum += tax;
      s->count += 1;
    }
    return DeltaVec{};
  };
  sum_count.agg_result = [](UdaState* state) -> Result<DeltaVec> {
    auto* s = static_cast<SumCountState*>(state);
    DeltaVec out{Delta::Insert(Tuple{Value(s->sum), Value(s->count)})};
    s->sum = 0;
    s->count = 0;
    return out;
  };
  ASSERT_TRUE(cluster.udfs()->RegisterUda(sum_count).ok());

  CompileContext ctx;
  ctx.storage = cluster.storage();
  ctx.udfs = cluster.udfs();
  auto compiled = CompileRql(
      "SELECT SumCountTax(tax) FROM lineitem WHERE gt_one(linenumber)",
      ctx);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  auto run = cluster.Run(compiled->spec);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run->results.size(), 1u);
  EXPECT_NEAR(run->results[0].field(0).AsDouble(), expected_sum, 1e-9);
  EXPECT_EQ(run->results[0].field(1).AsInt(), expected_count);
}

TEST(RqlCompileTest, TypeErrorsSurface) {
  EngineConfig cfg;
  cfg.num_workers = 2;
  Cluster cluster(cfg);
  ASSERT_TRUE(cluster
                  .CreateTable("t",
                               Schema{{"a", ValueType::kInt},
                                      {"s", ValueType::kString}},
                               0, {})
                  .ok());
  CompileContext ctx;
  ctx.storage = cluster.storage();
  ctx.udfs = cluster.udfs();
  // Non-boolean WHERE.
  EXPECT_FALSE(CompileRql("SELECT a FROM t WHERE a + 1", ctx).ok());
  // Unknown column / table / function.
  EXPECT_FALSE(CompileRql("SELECT missing FROM t", ctx).ok());
  EXPECT_FALSE(CompileRql("SELECT a FROM nope", ctx).ok());
  EXPECT_FALSE(CompileRql("SELECT a FROM t WHERE mystery(a)", ctx).ok());
}

TEST(RqlCompileTest, RecursiveSsspCompilesAndMatchesBfs) {
  GraphGenOptions opt;
  opt.num_vertices = 300;
  opt.num_edges = 1500;
  opt.seed = 55;
  GraphData graph = GenerateRmatGraph(opt);
  EngineConfig cfg;
  cfg.num_workers = 4;
  Cluster cluster(cfg);
  ASSERT_TRUE(LoadGraphTables(&cluster, graph).ok());
  SsspConfig scfg;
  scfg.source = 7;
  ASSERT_TRUE(RegisterSsspUdfs(cluster.udfs(), scfg).ok());

  CompileContext ctx;
  ctx.storage = cluster.storage();
  ctx.udfs = cluster.udfs();
  auto compiled = CompileRql(
      "WITH SP (v, dist) AS ("
      "  SELECT v, 0 FROM vertices WHERE v = 7"
      ") UNION UNTIL FIXPOINT BY v USING SPFix ("
      "  SELECT nbr, min(cand) FROM ("
      "    SELECT SPJoin(v, dist).{nbr, cand}"
      "    FROM graph, SP WHERE graph.src = SP.v GROUP BY src)"
      "  GROUP BY nbr)",
      ctx);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_TRUE(compiled->recursive);

  auto run = cluster.Run(compiled->spec);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  auto dist = DistancesFromState(run->fixpoint_state, graph.num_vertices);
  ASSERT_TRUE(dist.ok());
  EXPECT_EQ(*dist, ReferenceSssp(graph, 7));
}

TEST(RqlCompileTest, RecursivePageRankCompilesAndMatchesReference) {
  GraphGenOptions opt;
  opt.num_vertices = 250;
  opt.num_edges = 1500;
  opt.seed = 56;
  GraphData graph = GenerateRmatGraph(opt);
  EngineConfig cfg;
  cfg.num_workers = 4;
  Cluster cluster(cfg);
  ASSERT_TRUE(LoadGraphTables(&cluster, graph).ok());
  PageRankConfig pcfg;
  pcfg.threshold = 1e-7;
  ASSERT_TRUE(RegisterPageRankUdfs(cluster.udfs(), pcfg).ok());

  CompileContext ctx;
  ctx.storage = cluster.storage();
  ctx.udfs = cluster.udfs();
  auto compiled = CompileRql(
      "WITH PR (v, diff) AS ("
      "  SELECT v, 0.15 FROM vertices"
      ") UNION ALL UNTIL FIXPOINT BY v USING PRFix ("
      "  SELECT nbr, sum(share) FROM ("
      "    SELECT PRJoin(v, diff).{nbr, share}"
      "    FROM graph, PR WHERE graph.src = PR.v GROUP BY src)"
      "  GROUP BY nbr)",
      ctx);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  auto run = cluster.Run(compiled->spec);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  auto ranks = RanksFromState(run->fixpoint_state, graph.num_vertices);
  ASSERT_TRUE(ranks.ok());
  std::vector<double> ref = ReferencePageRank(graph, 0.85, 1e-12, 500);
  for (size_t v = 0; v < ref.size(); ++v) {
    EXPECT_NEAR((*ranks)[v], ref[v], 1e-4) << "vertex " << v;
  }
}

TEST(RqlCompileTest, RecursivePatternErrors) {
  EngineConfig cfg;
  cfg.num_workers = 2;
  Cluster cluster(cfg);
  GraphData graph = GenerateRmatGraph({});
  ASSERT_TRUE(LoadGraphTables(&cluster, graph).ok());
  CompileContext ctx;
  ctx.storage = cluster.storage();
  ctx.udfs = cluster.udfs();
  // Fixpoint key not among declared columns.
  EXPECT_FALSE(CompileRql(
                   "WITH R (a, b) AS (SELECT v, 0 FROM vertices) "
                   "UNION UNTIL FIXPOINT BY missing ("
                   "SELECT a, min(b) FROM ("
                   "SELECT ArgMin(a, b).{a, b} FROM graph, R "
                   "WHERE graph.src = R.a GROUP BY src) GROUP BY a)",
                   ctx)
                   .ok());
  // USING names an unregistered handler.
  EXPECT_FALSE(CompileRql(
                   "WITH R (a, b) AS (SELECT v, 0 FROM vertices) "
                   "UNION UNTIL FIXPOINT BY a USING NoSuchHandler ("
                   "SELECT a, min(b) FROM ("
                   "SELECT ArgMin(a, b).{a, b} FROM graph, R "
                   "WHERE graph.src = R.a GROUP BY src) GROUP BY a)",
                   ctx)
                   .ok());
}

}  // namespace
}  // namespace rex
