// Property tests for the weighted ℤ-set delta algebra (DESIGN.md
// "Weighted deltas"): the laws the coalescer's weight arithmetic relies
// on, serde round trips for weighted/composite deltas, and a reference
// weighted-fold oracle the coalescer must agree with on random streams.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "common/delta.h"
#include "common/serde.h"
#include "exec/coalesce.h"

namespace rex {
namespace {

Tuple T(int64_t k, int64_t v) { return Tuple{Value(k), Value(v)}; }

// ---------------------------------------------------------------------------
// ℤ-set laws on SignedWeight(): the algebra every stateful operator and the
// coalescer agree on.
// ---------------------------------------------------------------------------

TEST(DeltaAlgebra, SignConvention) {
  EXPECT_EQ(Delta::Insert(T(1, 2)).SignedWeight(), 1);
  EXPECT_EQ(Delta::Delete(T(1, 2)).SignedWeight(), -1);
  EXPECT_EQ(Delta::Weighted(T(1, 2), 5).SignedWeight(), 5);
  EXPECT_EQ(Delta::Weighted(T(1, 2), -5).SignedWeight(), -5);
  // Canonical form: the op carries the sign, weight stays >= 0.
  EXPECT_EQ(Delta::Weighted(T(1, 2), -5).op, DeltaOp::kDelete);
  EXPECT_EQ(Delta::Weighted(T(1, 2), -5).weight, 5);
}

TEST(DeltaAlgebra, DeleteIsWeightMinusOne) {
  // -() ≡ weight -1: same signed multiplicity, and the canonical Weighted
  // constructor reproduces Delete exactly.
  Delta del = Delta::Delete(T(7, 7));
  Delta w = Delta::Weighted(T(7, 7), -1);
  EXPECT_EQ(del, w);
  EXPECT_EQ(del.SignedWeight(), w.SignedWeight());
}

TEST(DeltaAlgebra, WeightAdditionCommutesAndAssociates) {
  std::mt19937_64 rng(42);
  std::uniform_int_distribution<int64_t> wdist(-6, 6);
  for (int trial = 0; trial < 200; ++trial) {
    int64_t a = wdist(rng), b = wdist(rng), c = wdist(rng);
    // The net multiplicity of a same-tuple stream is the sum of signed
    // weights, independent of order and grouping.
    auto net = [](std::vector<int64_t> ws) {
      int64_t n = 0;
      for (int64_t w : ws) n += Delta::Weighted(Tuple{Value(1)}, w).SignedWeight();
      return n;
    };
    EXPECT_EQ(net({a, b}), net({b, a}));
    EXPECT_EQ(net({a, b, c}), net({c, b, a}));
    EXPECT_EQ(net({a, b, c}), net({a, c, b}));
  }
}

TEST(DeltaAlgebra, NegatedIsInverse) {
  std::vector<Delta> cases = {
      Delta::Insert(T(1, 2)),
      Delta::Delete(T(3, 4)),
      Delta::Weighted(T(5, 6), 4),
      Delta::Weighted(T(5, 6), -3),
      Delta::Replace(T(7, 1), T(7, 2)),
      Delta::Update(T(9, 9)),
  };
  for (const Delta& d : cases) {
    Delta neg = d.Negated();
    // Negation flips the signed multiplicity — except for ->(t'), which is
    // the cardinality-neutral composite {-old, +new} and inverts by
    // swapping its tuples instead.
    if (d.op != DeltaOp::kReplace) {
      EXPECT_EQ(neg.SignedWeight(), -d.SignedWeight()) << d.ToString();
    }
    // Either way, negation is an involution.
    EXPECT_EQ(neg.Negated(), d) << d.ToString();
  }
  // Replace is the composite {-old, +new}; its inverse swaps the roles.
  Delta r = Delta::Replace(T(7, 1), T(7, 2));
  Delta rn = r.Negated();
  EXPECT_EQ(rn.op, DeltaOp::kReplace);
  EXPECT_EQ(rn.tuple, T(7, 1));
  EXPECT_EQ(rn.old_tuple, T(7, 2));
}

// ---------------------------------------------------------------------------
// Serde round trips: weighted, composite, and opaque deltas survive the wire
// and the checkpoint encoding bit-for-bit.
// ---------------------------------------------------------------------------

TEST(DeltaAlgebra, SerdeRoundTripsEveryShape) {
  std::vector<Delta> cases = {
      Delta::Insert(T(1, 2)),
      Delta::Delete(T(3, 4)),
      Delta::Replace(T(5, 1), T(5, 9)),  // non-empty old_tuple
      Delta::Update(T(6, 0)),
      Delta::Weighted(T(7, 7), 12),
      Delta::Weighted(T(8, 8), -3),
  };
  Delta heavy_update = Delta::Update(T(9, 9));
  heavy_update.weight = 1 << 20;  // opaque δ weight rides through
  cases.push_back(heavy_update);
  for (const Delta& d : cases) {
    auto back = DeserializeDelta(SerializeDelta(d));
    ASSERT_TRUE(back.ok()) << d.ToString() << ": " << back.status().ToString();
    EXPECT_EQ(*back, d) << d.ToString();
  }
}

TEST(DeltaAlgebra, SerdeWeightOneCostsNothing) {
  // The common case (weight 1, no old tuple) must not pay for the
  // generalization: its encoding is one head byte plus the tuple.
  Delta d = Delta::Insert(T(1, 2));
  EXPECT_EQ(SerializeDelta(d).size(), 1 + SerializeTuple(d.tuple).size());
  Delta w = Delta::Weighted(T(1, 2), 3);
  EXPECT_EQ(SerializeDelta(w).size(),
            1 + 8 + SerializeTuple(w.tuple).size());
}

TEST(DeltaAlgebra, SerdeRejectsMalformedHead) {
  // Unknown op nibble and unknown flag bits must fail loudly, not
  // misparse (checkpoint corruption shows up here).
  std::string bytes = SerializeDelta(Delta::Insert(T(1, 2)));
  bytes[0] = static_cast<char>(0x07);  // op 7: not a DeltaOp
  EXPECT_FALSE(DeserializeDelta(bytes).ok());
  bytes[0] = static_cast<char>(0x40);  // unknown flag bit
  EXPECT_FALSE(DeserializeDelta(bytes).ok());
}

// ---------------------------------------------------------------------------
// Coalescer vs reference weighted fold: on random streams, the coalescer's
// output applied as a ℤ-set equals the input applied as a ℤ-set, per key.
// ---------------------------------------------------------------------------

/// Reference semantics: per key, tuple → net signed multiplicity. Replace
/// is the composite {-1·old, +1·new}; δ() is opaque and excluded (the
/// coalescer passes it through, which PassesDeltaThrough checks separately).
using ZSet = std::map<std::string, int64_t>;

ZSet FoldReference(const DeltaVec& deltas) {
  ZSet net;
  auto add = [&net](const Tuple& t, int64_t w) {
    std::string key = SerializeTuple(t);
    net[key] += w;
    if (net[key] == 0) net.erase(key);
  };
  for (const Delta& d : deltas) {
    switch (d.op) {
      case DeltaOp::kInsert:
        add(d.tuple, d.weight);
        break;
      case DeltaOp::kDelete:
        add(d.tuple, -d.weight);
        break;
      case DeltaOp::kReplace:
        add(d.old_tuple, -1);
        add(d.tuple, 1);
        break;
      default:
        break;
    }
  }
  return net;
}

DeltaVec RandomStream(std::mt19937_64* rng, int length, int num_keys) {
  std::uniform_int_distribution<int64_t> key(0, num_keys - 1);
  std::uniform_int_distribution<int64_t> val(0, 3);
  std::uniform_int_distribution<int> kind(0, 4);
  std::uniform_int_distribution<int64_t> wdist(1, 4);
  // Track one live value per key so replaces/deletes refer to live tuples
  // (the stream-consistency contract the coalescer's soundness needs).
  std::map<int64_t, int64_t> live;
  DeltaVec out;
  for (int i = 0; i < length; ++i) {
    int64_t k = key(*rng);
    auto it = live.find(k);
    switch (kind(*rng)) {
      case 0: {  // weighted insert
        int64_t v = val(*rng);
        out.push_back(Delta::Weighted(T(k, v), wdist(*rng)));
        live[k] = v;
        break;
      }
      case 1:  // delete the live tuple
        if (it != live.end()) {
          out.push_back(Delta::Delete(T(k, it->second)));
          live.erase(it);
        }
        break;
      case 2:  // replace the live tuple
        if (it != live.end()) {
          int64_t v = val(*rng);
          out.push_back(Delta::Replace(T(k, it->second), T(k, v)));
          live[k] = v;
        }
        break;
      case 3: {  // insert then revise in the same stream
        int64_t v = val(*rng);
        out.push_back(Delta::Insert(T(k, v)));
        out.push_back(Delta::Replace(T(k, v), T(k, (v + 1) % 4)));
        live[k] = (v + 1) % 4;
        break;
      }
      default: {  // inverse pair: net zero
        int64_t v = val(*rng);
        out.push_back(Delta::Insert(T(k, v)));
        out.push_back(Delta::Delete(T(k, v)));
        break;
      }
    }
  }
  return out;
}

TEST(DeltaAlgebra, CoalescerMatchesWeightedFoldOnRandomStreams) {
  DeltaCoalescer coalescer(CoalesceOptions{{0}, false, false});
  std::mt19937_64 rng(20260808);
  for (int trial = 0; trial < 60; ++trial) {
    DeltaVec in = RandomStream(&rng, 40, 6);
    CoalesceStats stats;
    DeltaVec out = *coalescer.Coalesce(in, &stats);
    EXPECT_EQ(FoldReference(out), FoldReference(in)) << "trial " << trial;
    EXPECT_LE(out.size(), in.size());
    EXPECT_EQ(stats.deltas_in, static_cast<int64_t>(in.size()));
    EXPECT_EQ(stats.deltas_out, static_cast<int64_t>(out.size()));
  }
}

TEST(DeltaAlgebra, BatchPlusNegationCoalescesToNothing) {
  DeltaCoalescer coalescer(CoalesceOptions{{0}, false, false});
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 40; ++trial) {
    DeltaVec batch = RandomStream(&rng, 25, 5);
    DeltaVec stream = batch;
    for (auto it = batch.rbegin(); it != batch.rend(); ++it) {
      stream.push_back(it->Negated());
    }
    CoalesceStats stats;
    DeltaVec out = *coalescer.Coalesce(stream, &stats);
    EXPECT_TRUE(FoldReference(out).empty())
        << "trial " << trial << ": " << out.size() << " net survivors";
  }
}

TEST(DeltaAlgebra, ZeroWeightIsEliminated) {
  DeltaCoalescer coalescer(CoalesceOptions{{0}, false, false});
  DeltaVec in;
  in.push_back(Delta::Weighted(T(1, 1), 0));
  Delta zero_update = Delta::Update(T(2, 2));
  zero_update.weight = 0;
  in.push_back(zero_update);
  CoalesceStats stats;
  DeltaVec out = *coalescer.Coalesce(std::move(in), &stats);
  EXPECT_TRUE(out.empty());
}

TEST(DeltaAlgebra, OpaqueUpdatesPassThroughWithWeight) {
  DeltaCoalescer coalescer(CoalesceOptions{{0}, false, false});
  Delta u = Delta::Update(T(3, 5));
  u.weight = 9;
  CoalesceStats stats;
  DeltaVec out = *coalescer.Coalesce({u, Delta::Insert(T(3, 5))}, &stats);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], u);  // weight untouched, order preserved
}

TEST(DeltaAlgebra, WeightedNetRendersAsDeletesThenInserts) {
  // A key whose net is {-2·a, +3·b} must come back as canonical weighted
  // deltas, not as a replace (replace is reserved for the exact -1/+1 pair).
  DeltaCoalescer coalescer(CoalesceOptions{{0}, false, false});
  DeltaVec in;
  in.push_back(Delta::Weighted(T(1, 10), -2));
  in.push_back(Delta::Weighted(T(1, 20), 3));
  CoalesceStats stats;
  DeltaVec out = *coalescer.Coalesce(std::move(in), &stats);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], Delta::Weighted(T(1, 10), -2));
  EXPECT_EQ(out[1], Delta::Weighted(T(1, 20), 3));
}

}  // namespace
}  // namespace rex
