// Tests for the mini-MapReduce engine and the Hadoop/HaLoop baseline jobs.
#include <gtest/gtest.h>

#include <cmath>

#include "algos/reference.h"
#include "mapreduce/mr_jobs.h"

namespace rex {
namespace {

MrConfig FastConfig() {
  MrConfig cfg;
  cfg.startup_cost_ms = 0;  // keep unit tests quick
  cfg.num_map_tasks = 3;
  cfg.num_reduce_tasks = 3;
  return cfg;
}

TEST(MrEngineTest, WordCount) {
  std::vector<KeyValue> input = MakeRecords({{Value(1), Value("a b a")},
                                             {Value(2), Value("b c")},
                                             {Value(3), Value("a")}});
  MrJob job;
  job.map = [](const KeyValue& rec, std::vector<KeyValue>* out) -> Status {
    const std::string& text = rec.value.AsString();
    size_t i = 0;
    while (i < text.size()) {
      size_t j = text.find(' ', i);
      if (j == std::string::npos) j = text.size();
      if (j > i) {
        out->push_back(
            KeyValue{Value(text.substr(i, j - i)), Value(int64_t{1})});
      }
      i = j + 1;
    }
    return Status::OK();
  };
  auto sum = [](const Value& key, const std::vector<Value>& values,
                std::vector<KeyValue>* out) -> Status {
    int64_t total = 0;
    for (const Value& v : values) total += v.AsInt();
    out->push_back(KeyValue{key, Value(total)});
    return Status::OK();
  };
  job.reduce = sum;
  job.combine = sum;

  auto result = RunMrJob(job, input, FastConfig());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::map<std::string, int64_t> counts;
  for (const KeyValue& kv : *result) {
    counts[kv.key.AsString()] = kv.value.AsInt();
  }
  EXPECT_EQ(counts["a"], 3);
  EXPECT_EQ(counts["b"], 2);
  EXPECT_EQ(counts["c"], 1);
}

TEST(MrEngineTest, ReducerSeesSortedGroupsOnce) {
  // Every key must reach exactly one reduce invocation even across many
  // map tasks and partitions.
  std::vector<KeyValue> input;
  for (int64_t i = 0; i < 500; ++i) {
    input.push_back(KeyValue{Value(i % 50), Value(i)});
  }
  MrJob job;
  job.map = [](const KeyValue& rec, std::vector<KeyValue>* out) -> Status {
    out->push_back(rec);
    return Status::OK();
  };
  int invocation_count = 0;
  std::mutex m;
  job.reduce = [&](const Value& key, const std::vector<Value>& values,
                   std::vector<KeyValue>* out) -> Status {
    std::lock_guard<std::mutex> lock(m);
    ++invocation_count;
    EXPECT_EQ(values.size(), 10u) << key.ToString();
    out->push_back(KeyValue{key, Value(static_cast<int64_t>(values.size()))});
    return Status::OK();
  };
  auto result = RunMrJob(job, input, FastConfig());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(invocation_count, 50);
  EXPECT_EQ(result->size(), 50u);
}

TEST(MrEngineTest, MapErrorsPropagate) {
  MrJob job;
  job.map = [](const KeyValue&, std::vector<KeyValue>*) -> Status {
    return Status::Internal("map boom");
  };
  job.reduce = [](const Value&, const std::vector<Value>&,
                  std::vector<KeyValue>*) -> Status { return Status::OK(); };
  auto result =
      RunMrJob(job, MakeRecords({{Value(1), Value(1)}}), FastConfig());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(MrEngineTest, MetricsCountShuffleAndJobs) {
  MetricsRegistry metrics;
  MrConfig cfg = FastConfig();
  cfg.metrics = &metrics;
  MrJob job;
  job.map = [](const KeyValue& rec, std::vector<KeyValue>* out) -> Status {
    out->push_back(rec);
    return Status::OK();
  };
  job.reduce = [](const Value& key, const std::vector<Value>& values,
                  std::vector<KeyValue>* out) -> Status {
    out->push_back(KeyValue{key, values[0]});
    return Status::OK();
  };
  std::vector<KeyValue> input;
  for (int64_t i = 0; i < 100; ++i) input.push_back({Value(i), Value(i)});
  ASSERT_TRUE(RunMrJob(job, input, cfg).ok());
  EXPECT_EQ(metrics.Value(mr_metrics::kJobs), 1);
  EXPECT_EQ(metrics.Value(metrics::kMapInputRecords), 100);
  EXPECT_EQ(metrics.Value(metrics::kReduceInputRecords), 100);
  EXPECT_GT(metrics.Value(metrics::kShuffleBytes), 0);
  EXPECT_GT(metrics.Value(mr_metrics::kHdfsBytes), 0);
}

class MrPageRankTest : public ::testing::TestWithParam<bool> {};

TEST_P(MrPageRankTest, MatchesReferenceAfterFixedIterations) {
  GraphGenOptions opt;
  opt.num_vertices = 300;
  opt.num_edges = 1800;
  opt.seed = 61;
  GraphData graph = GenerateRmatGraph(opt);

  MrPageRankOptions options;
  options.haloop = GetParam();
  options.iterations = 40;
  options.config = FastConfig();
  auto run = RunMrPageRank(graph, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  std::vector<double> ref = ReferencePageRank(graph, 0.85, 1e-12, 400);
  ASSERT_EQ(run->ranks.size(), ref.size());
  for (size_t v = 0; v < ref.size(); ++v) {
    EXPECT_NEAR(run->ranks[v], ref[v], 1e-6) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(HadoopAndHaLoop, MrPageRankTest,
                         ::testing::Values(false, true));

TEST(MrPageRankTest, HaLoopShufflesLessThanHadoop) {
  GraphGenOptions opt;
  opt.num_vertices = 300;
  opt.num_edges = 2400;
  opt.seed = 62;
  GraphData graph = GenerateRmatGraph(opt);
  auto shuffle_with = [&](bool haloop) -> int64_t {
    MetricsRegistry metrics;
    MrPageRankOptions options;
    options.haloop = haloop;
    options.iterations = 5;
    options.config = FastConfig();
    options.config.metrics = &metrics;
    EXPECT_TRUE(RunMrPageRank(graph, options).ok());
    return metrics.Value(metrics::kShuffleBytes);
  };
  int64_t hadoop = shuffle_with(false);
  int64_t haloop = shuffle_with(true);
  // The immutable adjacency no longer re-shuffles each iteration.
  EXPECT_LT(haloop, hadoop);
}

class MrSsspTest : public ::testing::TestWithParam<bool> {};

TEST_P(MrSsspTest, MatchesBfsWithinIterationBudget) {
  GraphGenOptions opt;
  opt.num_vertices = 200;
  opt.num_edges = 900;
  opt.seed = 63;
  GraphData graph = GenerateRmatGraph(opt);

  MrSsspOptions options;
  options.source = 4;
  options.iterations = 30;
  options.haloop = GetParam();
  options.config = FastConfig();
  auto run = RunMrSssp(graph, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  std::vector<int64_t> ref = ReferenceSssp(graph, 4);
  for (size_t v = 0; v < ref.size(); ++v) {
    if (ref[v] >= 0 && ref[v] <= options.iterations) {
      EXPECT_EQ(run->distances[v], ref[v]) << "vertex " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(HadoopAndHaLoop, MrSsspTest,
                         ::testing::Values(false, true));

TEST(MrKMeansTest, MatchesLloydReference) {
  GeoGenOptions geo;
  geo.num_base_points = 500;
  geo.num_clusters = 4;
  geo.cluster_stddev = 0.3;
  geo.seed = 4242;
  std::vector<Tuple> points = GenerateGeoPoints(geo);

  MrKMeansOptions options;
  options.k = 4;
  options.config = FastConfig();
  auto run = RunMrKMeans(points, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  // Same seeding as the reference: points with pid < k.
  std::vector<std::pair<double, double>> seeds(4);
  for (const Tuple& p : points) {
    if (p.field(0).AsInt() < 4) {
      seeds[static_cast<size_t>(p.field(0).AsInt())] = {
          p.field(1).AsDouble(), p.field(2).AsDouble()};
    }
  }
  KMeansResult ref = ReferenceKMeans(points, seeds, 200);
  ASSERT_EQ(run->centroids.size(), ref.centroids.size());
  for (size_t c = 0; c < ref.centroids.size(); ++c) {
    EXPECT_NEAR(run->centroids[c].first, ref.centroids[c].first, 1e-9);
    EXPECT_NEAR(run->centroids[c].second, ref.centroids[c].second, 1e-9);
  }
}

TEST(MrAggregationTest, MatchesDirectComputation) {
  LineitemGenOptions opt;
  opt.num_rows = 5000;
  std::vector<Tuple> rows = GenerateLineitem(opt);
  auto run = RunMrAggregation(rows, FastConfig());
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  double sum = 0;
  int64_t count = 0;
  for (const Tuple& row : rows) {
    if (row.field(1).AsInt() > 1) {
      sum += row.field(4).AsDouble();
      ++count;
    }
  }
  EXPECT_NEAR(run->sum_tax, sum, 1e-9);
  EXPECT_EQ(run->count, count);
}

}  // namespace
}  // namespace rex
