// Observability-layer tests: the JSON writer/parser, Timer histograms,
// the bounded trace ring, dispatch-target hardening, and the QueryProfile
// the driver assembles after every run (including its serialized schema,
// checked against the committed golden sample).
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>

#include "algos/pagerank.h"
#include "algos/sssp.h"
#include "obs/json.h"
#include "obs/profile.h"
#include "obs/trace_ring.h"

namespace rex {
namespace {

// ------------------------------------------------------------------- Json --

TEST(JsonTest, RoundTripPreservesTypesAndOrder) {
  Json obj = Json::Object();
  obj.Set("big", int64_t{1} << 62);
  obj.Set("neg", -7);
  obj.Set("pi", 3.25);
  obj.Set("s", std::string("quote \" slash \\ newline \n tab \t"));
  obj.Set("yes", true);
  obj.Set("nothing", Json());
  Json arr = Json::Array();
  arr.Append(1);
  arr.Append(2.5);
  arr.Append("x");
  obj.Set("arr", std::move(arr));

  auto parsed = Json::Parse(obj.Dump());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->Get("big").is_int());
  EXPECT_EQ(parsed->Get("big").AsInt(), int64_t{1} << 62);
  EXPECT_EQ(parsed->Get("neg").AsInt(), -7);
  EXPECT_EQ(parsed->Get("pi").type(), Json::Type::kDouble);
  EXPECT_DOUBLE_EQ(parsed->Get("pi").AsDouble(), 3.25);
  EXPECT_EQ(parsed->Get("s").AsString(),
            "quote \" slash \\ newline \n tab \t");
  EXPECT_TRUE(parsed->Get("yes").AsBool());
  EXPECT_TRUE(parsed->Get("nothing").is_null());
  ASSERT_EQ(parsed->Get("arr").size(), 3u);
  EXPECT_TRUE(parsed->Get("arr").at(0).is_int());
  EXPECT_EQ(parsed->Get("arr").at(1).type(), Json::Type::kDouble);
  EXPECT_EQ(parsed->Get("arr").at(2).AsString(), "x");
  // Objects keep insertion order so reports diff cleanly.
  ASSERT_EQ(parsed->members().size(), 7u);
  EXPECT_EQ(parsed->members()[0].first, "big");
  EXPECT_EQ(parsed->members()[6].first, "arr");
}

TEST(JsonTest, SetReplacesInPlace) {
  Json obj = Json::Object();
  obj.Set("a", 1);
  obj.Set("b", 2);
  obj.Set("a", 10);
  ASSERT_EQ(obj.members().size(), 2u);
  EXPECT_EQ(obj.members()[0].first, "a");
  EXPECT_EQ(obj.Get("a").AsInt(), 10);
  // Missing keys come back as the null object, so lookups can chain.
  EXPECT_TRUE(obj.Get("missing").is_null());
  EXPECT_TRUE(obj.Get("missing").Get("deeper").is_null());
}

TEST(JsonTest, StrictParseRejectsGarbage) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("1 2").ok());          // trailing garbage
  EXPECT_FALSE(Json::Parse("{\"a\": }").ok());    // missing value
  EXPECT_FALSE(Json::Parse("[1, 2").ok());        // unterminated
  EXPECT_FALSE(Json::Parse("{'a': 1}").ok());     // single quotes
  EXPECT_FALSE(Json::Parse("nul").ok());
  ASSERT_TRUE(Json::Parse("  {\"a\": [1, -2.5e3, null]}  ").ok());
}

TEST(JsonTest, CompactDumpHasNoNewlines) {
  Json obj = Json::Object();
  obj.Set("a", 1);
  Json arr = Json::Array();
  arr.Append(2);
  obj.Set("b", std::move(arr));
  const std::string compact = obj.Dump(-1);
  EXPECT_EQ(compact.find('\n'), std::string::npos);
  EXPECT_TRUE(Json::Parse(compact).ok());
}

// ------------------------------------------------------------------ Timer --

TEST(TimerTest, RecordsCountTotalMinMaxAndLog2Buckets) {
  Timer t;
  EXPECT_EQ(t.Snapshot().count, 0);
  EXPECT_EQ(t.Snapshot().min_nanos, 0);
  t.Record(0);
  t.Record(1);
  t.Record(1000);
  t.Record(int64_t{1} << 20);
  TimerStats s = t.Snapshot();
  EXPECT_EQ(s.count, 4);
  EXPECT_EQ(s.total_nanos, 0 + 1 + 1000 + (int64_t{1} << 20));
  EXPECT_EQ(s.min_nanos, 0);
  EXPECT_EQ(s.max_nanos, int64_t{1} << 20);
  EXPECT_DOUBLE_EQ(s.mean_nanos(),
                   static_cast<double>(s.total_nanos) / 4.0);
  ASSERT_EQ(s.histogram.size(), static_cast<size_t>(Timer::kBuckets));
  EXPECT_EQ(s.histogram[0], 2);   // 0ns and 1ns
  EXPECT_EQ(s.histogram[9], 1);   // 512 <= 1000 < 1024
  EXPECT_EQ(s.histogram[20], 1);  // exactly 2^20
  int64_t bucketed = 0;
  for (int64_t b : s.histogram) bucketed += b;
  EXPECT_EQ(bucketed, s.count);

  t.Reset();
  EXPECT_EQ(t.Snapshot().count, 0);
}

TEST(TimerTest, MinIsSeededByFirstSample) {
  Timer t;
  t.Record(500);  // a zero-initialized min would stay 0 here
  EXPECT_EQ(t.Snapshot().min_nanos, 500);
  t.Record(100);
  EXPECT_EQ(t.Snapshot().min_nanos, 100);
}

TEST(TimerTest, ScopedTimerRecordsAndNullDisables) {
  Timer t;
  { ScopedTimer scoped(&t); }
  EXPECT_EQ(t.Snapshot().count, 1);
  { ScopedTimer disabled(nullptr); }  // must not crash
  MetricsRegistry registry;
  Timer* named = registry.GetTimer("x.y");
  EXPECT_EQ(named, registry.GetTimer("x.y"));  // stable handle
  named->Record(7);
  EXPECT_EQ(registry.TimerValue("x.y").count, 1);
  EXPECT_EQ(registry.TimerValue("absent").count, 0);
  auto snapshot = registry.TimersSnapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].first, "x.y");
}

// -------------------------------------------------------------- TraceRing --

TEST(TraceRingTest, BoundedOverwriteKeepsNewestTail) {
  TraceRing ring("test-ring", /*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    ring.Record(TraceEvent::Kind::kStratumStart, 0, 0, i);
  }
  EXPECT_EQ(ring.total_recorded(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  auto events = ring.Events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().n, 6);  // oldest retained
  EXPECT_EQ(events.back().n, 9);   // newest
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
  }
  ring.Clear();
  EXPECT_TRUE(ring.Events().empty());
  EXPECT_EQ(ring.total_recorded(), 0u);
}

TEST(TraceRingTest, FiltersByKindAndDumpsOwner) {
  TraceRing ring("worker 7");
  ring.Record(TraceEvent::Kind::kDispatchData, 2, 0, 100);
  ring.Record(TraceEvent::Kind::kControl, 1, 0, 3);
  ring.Record(TraceEvent::Kind::kCheckpointWrite, 4, 2, 55);
  ring.Record(TraceEvent::Kind::kError, 0, 0, 0, "boom");
  auto ckpts = ring.EventsOfKind(TraceEvent::Kind::kCheckpointWrite);
  ASSERT_EQ(ckpts.size(), 1u);
  EXPECT_EQ(ckpts[0].a, 4);
  EXPECT_EQ(ckpts[0].n, 55);
  EXPECT_TRUE(ring.EventsOfKind(TraceEvent::Kind::kCrash).empty());
  const std::string dump = ring.Dump();
  EXPECT_NE(dump.find("worker 7"), std::string::npos);
  EXPECT_NE(dump.find("boom"), std::string::npos);
}

// ---------------------------------------------- Dispatch target hardening --

EngineConfig SmallConfig() {
  EngineConfig cfg;
  cfg.num_workers = 3;
  return cfg;
}

/// Runs a trivial scan-sink query so every worker has an installed plan and
/// an idle, running thread; returns the cluster ready for raw sends.
void InstallTrivialPlan(Cluster* cluster) {
  ASSERT_TRUE(cluster
                  ->CreateTable("t", Schema{{"k", ValueType::kInt}}, 0,
                                {Tuple{Value(1)}, Tuple{Value(2)}})
                  .ok());
  PlanSpec plan;
  ScanOp::Params scan;
  scan.table = "t";
  plan.AddSink(plan.AddScan(scan));
  ASSERT_TRUE(cluster->Run(plan).ok());
}

TEST(DispatchHardeningTest, OutOfRangeTargetOpIsAWorkerError) {
  Cluster cluster(SmallConfig());
  InstallTrivialPlan(&cluster);

  DeltaVec payload{Delta::Insert(Tuple{Value(int64_t{7})})};
  ASSERT_TRUE(
      cluster.network()->Send(Message::Data(0, 1, 99, 0, payload)).ok());
  cluster.network()->WaitQuiescent();
  const Status& err = cluster.worker(1)->error();
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kInternal);
  EXPECT_NE(err.message().find("targets op 99"), std::string::npos);
  EXPECT_NE(err.message().find("from worker 0"), std::string::npos);
  // The failed dispatch landed in the worker's trace ring.
  EXPECT_FALSE(cluster.worker(1)
                   ->trace()
                   ->EventsOfKind(TraceEvent::Kind::kError)
                   .empty());
  cluster.worker(1)->ClearError();
}

TEST(DispatchHardeningTest, NegativeOpAndBadPortAreWorkerErrors) {
  Cluster cluster(SmallConfig());
  InstallTrivialPlan(&cluster);

  DeltaVec payload{Delta::Insert(Tuple{Value(int64_t{7})})};
  ASSERT_TRUE(
      cluster.network()->Send(Message::Data(0, 1, -1, 0, payload)).ok());
  cluster.network()->WaitQuiescent();
  ASSERT_FALSE(cluster.worker(1)->error().ok());
  EXPECT_EQ(cluster.worker(1)->error().code(), StatusCode::kInternal);
  cluster.worker(1)->ClearError();

  // Valid op, out-of-range port: caught before the operator indexes.
  ASSERT_TRUE(
      cluster.network()->Send(Message::Data(0, 2, 0, 5, payload)).ok());
  cluster.network()->WaitQuiescent();
  const Status& err = cluster.worker(2)->error();
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kInternal);
  EXPECT_NE(err.message().find("targets port 5"), std::string::npos);
  cluster.worker(2)->ClearError();
}

// ----------------------------------------------------------- QueryProfile --

TEST(ProfileTest, StrataDeltaCardinalitiesMatchDeltaTuplesMetric) {
  GraphData graph = GenerateRmatGraph({});
  Cluster cluster(SmallConfig());
  ASSERT_TRUE(LoadGraphTables(&cluster, graph).ok());
  PageRankConfig cfg;
  cfg.threshold = 0.01;
  cfg.relative = true;
  ASSERT_TRUE(RegisterPageRankUdfs(cluster.udfs(), cfg).ok());
  auto plan = BuildPageRankDeltaPlan(cfg);
  ASSERT_TRUE(plan.ok());
  auto run = cluster.Run(*plan);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  const QueryProfile& p = run->profile;
  ASSERT_EQ(p.strata.size(), static_cast<size_t>(run->strata_executed));
  // Every flush FixpointOp::StartStratum counts into kDeltaTuples is the
  // Δ set derived during the previous stratum, and the final (converged)
  // stratum derives nothing — so the per-stratum Δ cardinalities the
  // profile reports must sum to exactly the metric.
  int64_t profile_deltas = 0;
  for (const StratumProfile& s : p.strata) profile_deltas += s.delta_tuples;
  EXPECT_GT(profile_deltas, 0);
  EXPECT_EQ(profile_deltas, cluster.WorkerMetric(metrics::kDeltaTuples));
  // The per-fixpoint series partitions the same totals.
  int64_t fixpoint_deltas = 0;
  for (const FixpointStratumProfile& f : p.fixpoint_deltas) {
    fixpoint_deltas += f.delta_tuples;
  }
  EXPECT_EQ(fixpoint_deltas, profile_deltas);
}

TEST(ProfileTest, DriverAssemblesWorkersOperatorsAndByteMatrix) {
  GraphData graph = GenerateRmatGraph({});
  Cluster cluster(SmallConfig());
  ASSERT_TRUE(LoadGraphTables(&cluster, graph).ok());
  SsspConfig cfg;
  cfg.source = 1;
  ASSERT_TRUE(RegisterSsspUdfs(cluster.udfs(), cfg).ok());
  auto plan = BuildSsspDeltaPlan(cfg);
  ASSERT_TRUE(plan.ok());
  auto run = cluster.Run(*plan);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  const QueryProfile& p = run->profile;
  EXPECT_DOUBLE_EQ(p.total_seconds, run->total_seconds);
  EXPECT_EQ(p.strata_executed, run->strata_executed);

  ASSERT_EQ(p.workers.size(), 3u);
  int64_t worker_bytes = 0;
  bool dispatch_timed = false;
  for (const WorkerProfile& w : p.workers) {
    EXPECT_TRUE(w.live_at_end);
    worker_bytes += w.bytes_sent;
    for (const auto& [name, stats] : w.timers) {
      if (name == metrics::kDispatchTimer && stats.count > 0) {
        dispatch_timed = true;
      }
    }
  }
  EXPECT_EQ(worker_bytes, run->total_bytes_sent);
  EXPECT_TRUE(dispatch_timed);

  // The (sender, receiver) matrix accounts for every metered byte; the
  // diagonal is zero because loopback delivery is unmetered (§6.5).
  ASSERT_EQ(p.bytes_matrix.size(), 3u);
  int64_t matrix_bytes = 0;
  for (size_t from = 0; from < p.bytes_matrix.size(); ++from) {
    ASSERT_EQ(p.bytes_matrix[from].size(), 3u);
    EXPECT_EQ(p.bytes_matrix[from][from], 0);
    for (int64_t cell : p.bytes_matrix[from]) matrix_bytes += cell;
  }
  EXPECT_EQ(matrix_bytes, run->total_bytes_sent);

  // Operator stats cover every worker's plan, with consumed-tuple counts.
  ASSERT_FALSE(p.operators.empty());
  int64_t tuples_consumed = 0;
  int64_t timed_ops = 0;
  for (const OperatorProfile& op : p.operators) {
    EXPECT_FALSE(op.name.empty());
    for (const OperatorPortProfile& port : op.ports) {
      tuples_consumed += port.tuples;
      if (port.consume_nanos > 0) timed_ops += 1;
    }
  }
  EXPECT_GT(tuples_consumed, 0);
  EXPECT_GT(timed_ops, 0);
}

TEST(ProfileTest, RecoveryPassesAreProfiled) {
  GraphData graph = GenerateRmatGraph({});
  EngineConfig cfg4;
  cfg4.num_workers = 4;
  cfg4.replication = 3;
  Cluster cluster(cfg4);
  ASSERT_TRUE(LoadGraphTables(&cluster, graph).ok());
  SsspConfig cfg;
  cfg.source = 1;
  ASSERT_TRUE(RegisterSsspUdfs(cluster.udfs(), cfg).ok());
  auto plan = BuildSsspDeltaPlan(cfg);
  ASSERT_TRUE(plan.ok());

  QueryOptions options;
  options.failure.worker = 1;
  options.failure.before_stratum = 2;
  options.failure.strategy = RecoveryStrategy::kIncremental;
  auto run = cluster.Run(*plan, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  const QueryProfile& p = run->profile;
  EXPECT_TRUE(p.recovered);
  ASSERT_EQ(p.recovery_passes.size(), static_cast<size_t>(run->recoveries));
  ASSERT_GE(p.recovery_passes.size(), 1u);
  const RecoveryPassProfile& pass = p.recovery_passes[0];
  EXPECT_EQ(pass.pass, 1);
  EXPECT_GE(pass.seconds, 0);
  EXPECT_TRUE(pass.strategy == "incremental" || pass.strategy == "replay")
      << pass.strategy;
  EXPECT_EQ(pass.resume_stratum, 2);
  EXPECT_EQ(pass.live_workers, 3);
  // The crashed worker is marked dead in the worker profiles.
  EXPECT_FALSE(p.workers[1].live_at_end);
  EXPECT_GT(p.checkpoint_bytes, 0);
  EXPECT_GT(p.checkpoint_tuples, 0);
  // Byte accounting reports raw AND stored volume; the diff codec (on by
  // default) must never store more than raw, and raw matches the
  // pre-codec checkpoint_bytes meter.
  EXPECT_GT(p.ckpt_raw_bytes, 0);
  EXPECT_GT(p.ckpt_stored_bytes, 0);
  EXPECT_LE(p.ckpt_stored_bytes, p.ckpt_raw_bytes);
  EXPECT_EQ(p.ckpt_raw_bytes, p.checkpoint_bytes);
}

TEST(ProfileTest, ToJsonValidatesAndRoundTrips) {
  GraphData graph = GenerateRmatGraph({});
  Cluster cluster(SmallConfig());
  ASSERT_TRUE(LoadGraphTables(&cluster, graph).ok());
  SsspConfig cfg;
  ASSERT_TRUE(RegisterSsspUdfs(cluster.udfs(), cfg).ok());
  auto plan = BuildSsspDeltaPlan(cfg);
  ASSERT_TRUE(plan.ok());
  auto run = cluster.Run(*plan);
  ASSERT_TRUE(run.ok());

  QueryProfile profile = run->profile;
  profile.name = "unit-test";
  Json j = profile.ToJson();
  Status valid = ValidateProfileJson(j);
  EXPECT_TRUE(valid.ok()) << valid.ToString();

  auto parsed = Json::Parse(j.Dump());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  Status still_valid = ValidateProfileJson(*parsed);
  EXPECT_TRUE(still_valid.ok()) << still_valid.ToString();
  EXPECT_EQ(parsed->Get("name").AsString(), "unit-test");
  EXPECT_EQ(parsed->Get("schema_version").AsInt(),
            QueryProfile::kSchemaVersion);
  EXPECT_EQ(parsed->Get("strata").size(), profile.strata.size());

  // A whole bench report wraps runs of these profiles.
  Json report = BenchReportToJson("unit", {profile, profile});
  Status report_valid = ValidateBenchReportJson(report);
  EXPECT_TRUE(report_valid.ok()) << report_valid.ToString();

  // Validation genuinely rejects schema drift.
  Json broken = profile.ToJson();
  broken.Set("strata", "not an array");
  EXPECT_FALSE(ValidateProfileJson(broken).ok());
}

TEST(ProfileTest, GoldenSampleReportMatchesSchema) {
  const std::string path =
      std::string(REX_TESTDATA_DIR) + "/BENCH_sample.json";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden sample: " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  auto parsed = Json::Parse(buf.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  Status valid = ValidateBenchReportJson(*parsed);
  EXPECT_TRUE(valid.ok()) << valid.ToString();
  ASSERT_GE(parsed->Get("runs").size(), 1u);
  // The committed sample carries real per-stratum Δ series (the fields the
  // paper's figures are plotted from — see EXPERIMENTS.md).
  const Json& first = parsed->Get("runs").at(0);
  EXPECT_GE(first.Get("strata").size(), 1u);
  EXPECT_GE(first.Get("workers").size(), 1u);
  // Compression accounting is part of the schema: raw and stored volumes
  // are both present, non-negative, and stored never exceeds raw (the
  // store's profitability gate keyframes unprofitable epochs).
  EXPECT_GE(first.Get("ckpt_raw_bytes").AsInt(), 0);
  EXPECT_GE(first.Get("run_raw_bytes").AsInt(), 0);
  EXPECT_LE(first.Get("ckpt_stored_bytes").AsInt(),
            first.Get("ckpt_raw_bytes").AsInt());
}

TEST(ProfileTest, GoldenIvmSampleShowsIncrementalAdvantage) {
  // The committed bench_ivm_updates report (tests/testdata, regenerate
  // with REX_BENCH_SCALE=0.05 ./bench/bench_ivm_updates). Beyond schema
  // validity, the sample pins the property the bench exists to show: the
  // incremental base-update run ships strictly fewer tuples and executes
  // strictly fewer strata than the from-scratch run on the mutated graph.
  const std::string path =
      std::string(REX_TESTDATA_DIR) + "/BENCH_ivm_sample.json";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden sample: " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  auto parsed = Json::Parse(buf.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  Status valid = ValidateBenchReportJson(*parsed);
  EXPECT_TRUE(valid.ok()) << valid.ToString();
  ASSERT_EQ(parsed->Get("runs").size(), 2u);
  const Json* incremental = nullptr;
  const Json* scratch = nullptr;
  for (size_t i = 0; i < parsed->Get("runs").size(); ++i) {
    const Json& run = parsed->Get("runs").at(i);
    if (run.Get("name").AsString() == "incremental") incremental = &run;
    if (run.Get("name").AsString() == "from-scratch") scratch = &run;
  }
  ASSERT_NE(incremental, nullptr);
  ASSERT_NE(scratch, nullptr);
  EXPECT_GT(incremental->Get("tuples_sent").AsInt(), 0);
  EXPECT_LT(incremental->Get("tuples_sent").AsInt(),
            scratch->Get("tuples_sent").AsInt());
  EXPECT_LT(incremental->Get("strata_executed").AsInt(),
            scratch->Get("strata_executed").AsInt());
}

TEST(ProfileTest, GoldenServingSampleCoversBothStandingQueries) {
  // The committed bench_serving report (tests/testdata, regenerate with
  // REX_BENCH_SCALE=0.05 ./bench/bench_serving). The sample pins the
  // serving session's report shape: one profile per query per epoch
  // ("<query>/epoch<k>") plus the "<query>/register" initial runs, for
  // both standing queries over the shared graph.
  const std::string path =
      std::string(REX_TESTDATA_DIR) + "/BENCH_serving_sample.json";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden sample: " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  auto parsed = Json::Parse(buf.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  Status valid = ValidateBenchReportJson(*parsed);
  EXPECT_TRUE(valid.ok()) << valid.ToString();
  std::set<std::string> queries;
  int epoch_profiles = 0;
  bool saw_register = false;
  for (size_t i = 0; i < parsed->Get("runs").size(); ++i) {
    const Json& run = parsed->Get("runs").at(i);
    const std::string name = run.Get("name").AsString();
    const size_t slash = name.find('/');
    ASSERT_NE(slash, std::string::npos) << "unlabelled serving run " << name;
    queries.insert(name.substr(0, slash));
    if (name.substr(slash + 1) == "register") saw_register = true;
    if (name.compare(slash + 1, 5, "epoch") == 0) ++epoch_profiles;
  }
  EXPECT_TRUE(queries.count("pagerank"));
  EXPECT_TRUE(queries.count("sssp"));
  EXPECT_TRUE(saw_register);
  EXPECT_GE(epoch_profiles, 2);
}

// ----------------------------------------------- Trace ring x chaos runs --

TEST(TraceRingChaosTest, DriverRingCapturesCrashRestoreRecovery) {
  GraphData graph = GenerateRmatGraph({});
  EngineConfig cfg4;
  cfg4.num_workers = 4;
  cfg4.replication = 3;
  Cluster cluster(cfg4);
  ASSERT_TRUE(LoadGraphTables(&cluster, graph).ok());
  SsspConfig cfg;
  cfg.source = 1;
  ASSERT_TRUE(RegisterSsspUdfs(cluster.udfs(), cfg).ok());
  auto plan = BuildSsspDeltaPlan(cfg);
  ASSERT_TRUE(plan.ok());

  QueryOptions options;
  options.faults.seed = 11;
  options.faults.strategy = RecoveryStrategy::kIncremental;
  FaultEvent c1;
  c1.kind = FaultEvent::Kind::kCrash;
  c1.worker = 1;
  c1.at_stratum = 1;
  FaultEvent c2;
  c2.kind = FaultEvent::Kind::kCrash;
  c2.worker = 3;
  c2.at_stratum = 2;
  FaultEvent r1;
  r1.kind = FaultEvent::Kind::kRestore;
  r1.worker = 1;
  r1.at_stratum = 3;
  options.faults.events = {c1, c2, r1};
  auto run = cluster.Run(*plan, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  TraceRing* trace = cluster.trace();
  auto crashes = trace->EventsOfKind(TraceEvent::Kind::kCrash);
  ASSERT_EQ(crashes.size(), 2u);
  EXPECT_EQ(crashes[0].a, 1);
  EXPECT_EQ(crashes[1].a, 3);
  auto restores = trace->EventsOfKind(TraceEvent::Kind::kRestore);
  ASSERT_EQ(restores.size(), 1u);
  EXPECT_EQ(restores[0].a, 1);

  auto begins = trace->EventsOfKind(TraceEvent::Kind::kRecoverBegin);
  auto ends = trace->EventsOfKind(TraceEvent::Kind::kRecoverEnd);
  EXPECT_EQ(begins.size(), ends.size());
  EXPECT_EQ(static_cast<int>(ends.size()), run->recoveries);
  ASSERT_GE(begins.size(), 1u);
  // The causal order survives in the ring: crash, then the recovery pass
  // brackets, with stratum starts resuming after each recovery.
  EXPECT_LT(crashes[0].seq, begins[0].seq);
  EXPECT_LT(begins[0].seq, ends[0].seq);
  EXPECT_LT(restores[0].seq, ends.back().seq);
  EXPECT_FALSE(
      trace->EventsOfKind(TraceEvent::Kind::kStratumStart).empty());

  // Worker rings saw the recovery conversation and checkpoint writes.
  bool any_checkpoint = false;
  bool any_control = false;
  for (int w : cluster.LiveWorkers()) {
    TraceRing* wt = cluster.worker(w)->trace();
    any_checkpoint |=
        !wt->EventsOfKind(TraceEvent::Kind::kCheckpointWrite).empty();
    any_control |= !wt->EventsOfKind(TraceEvent::Kind::kControl).empty();
  }
  EXPECT_TRUE(any_checkpoint);
  EXPECT_TRUE(any_control);
}

}  // namespace
}  // namespace rex
