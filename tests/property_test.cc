// Property-style tests (parameterized sweeps over random seeds):
//  - delta-join invariant: applying a random insert/delete stream through
//    the pipelined symmetric join equals recomputing the join from the
//    surviving tuples;
//  - delta PageRank == no-delta PageRank == reference, across graphs;
//  - delta SSSP == BFS across graphs and sources;
//  - serde round-trips arbitrary nested values.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "algos/pagerank.h"
#include "algos/reference.h"
#include "algos/sssp.h"
#include "common/serde.h"
#include "exec/hash_join.h"
#include "exec/operators.h"

namespace rex {
namespace {

class SeedSweep : public ::testing::TestWithParam<uint64_t> {};

// ---------------------------------------------------------- join property --

/// Applies deltas to a multiset and answers batch joins, as ground truth.
class NaiveJoin {
 public:
  void Apply(int side, const Delta& d) {
    auto& rel = rel_[side];
    switch (d.op) {
      case DeltaOp::kInsert:
      case DeltaOp::kUpdate:
        rel[d.tuple] += 1;
        break;
      case DeltaOp::kDelete: {
        auto it = rel.find(d.tuple);
        if (it != rel.end() && --it->second == 0) rel.erase(it);
        break;
      }
      case DeltaOp::kReplace: {
        Apply(side, Delta::Delete(d.old_tuple));
        Apply(side, Delta::Insert(d.tuple));
        break;
      }
    }
  }

  std::map<Tuple, int64_t> Join() const {
    std::map<Tuple, int64_t> out;
    for (const auto& [l, ln] : rel_[0]) {
      for (const auto& [r, rn] : rel_[1]) {
        if (l.field(0) == r.field(0)) out[l.Concat(r)] += ln * rn;
      }
    }
    return out;
  }

 private:
  std::map<Tuple, int64_t> rel_[2];
};

/// Accumulates the join's emitted deltas into a multiset.
class MultisetSink : public Operator {
 public:
  explicit MultisetSink(int id) : Operator(id, 1) {}
  const char* name() const override { return "msink"; }
  Status ConsumeDeltas(int, DeltaVec deltas) override {
    for (const Delta& d : deltas) {
      switch (d.op) {
        case DeltaOp::kInsert:
        case DeltaOp::kUpdate:
          contents[d.tuple] += 1;
          break;
        case DeltaOp::kDelete:
          contents[d.tuple] -= 1;
          break;
        case DeltaOp::kReplace:
          contents[d.old_tuple] -= 1;
          contents[d.tuple] += 1;
          break;
      }
    }
    return Status::OK();
  }
  std::map<Tuple, int64_t> Normalized() const {
    std::map<Tuple, int64_t> out;
    for (const auto& [t, n] : contents) {
      if (n != 0) out[t] = n;
    }
    return out;
  }
  std::map<Tuple, int64_t> contents;
};

TEST_P(SeedSweep, DeltaJoinEqualsBatchRecompute) {
  Rng rng(GetParam());
  Network network(1);
  PartitionMap pmap({0}, 1);
  UdfRegistry udfs;
  StorageCatalog storage;
  MetricsRegistry metrics;
  VoteBoard votes;
  CheckpointStore checkpoints;
  EngineConfig config;
  ExecContext ctx;
  ctx.network = &network;
  ctx.pmap = &pmap;
  ctx.udfs = &udfs;
  ctx.storage = &storage;
  ctx.metrics = &metrics;
  ctx.votes = &votes;
  ctx.checkpoints = &checkpoints;
  ctx.config = &config;

  HashJoinOp::Params params;
  params.left_keys = {0};
  params.right_keys = {0};
  HashJoinOp join(0, params);
  MultisetSink sink(1);
  join.AddOutput(&sink, 0);
  ASSERT_TRUE(join.Open(&ctx).ok());
  ASSERT_TRUE(sink.Open(&ctx).ok());

  NaiveJoin naive;
  // Track live tuples per side so deletes/replaces target real tuples.
  std::vector<Tuple> live[2];
  for (int step = 0; step < 400; ++step) {
    const int side = static_cast<int>(rng.NextBelow(2));
    Delta d;
    const double roll = rng.NextDouble();
    if (roll < 0.6 || live[side].empty()) {
      d = Delta::Insert(Tuple{
          Value(static_cast<int64_t>(rng.NextBelow(8))),
          Value(static_cast<int64_t>(rng.NextBelow(1000)))});
      live[side].push_back(d.tuple);
    } else if (roll < 0.8) {
      size_t pick = rng.NextBelow(live[side].size());
      d = Delta::Delete(live[side][pick]);
      live[side].erase(live[side].begin() + static_cast<long>(pick));
    } else {
      size_t pick = rng.NextBelow(live[side].size());
      Tuple old_t = live[side][pick];
      Tuple new_t{Value(static_cast<int64_t>(rng.NextBelow(8))),
                  Value(static_cast<int64_t>(rng.NextBelow(1000)))};
      d = Delta::Replace(old_t, new_t);
      live[side][pick] = new_t;
    }
    naive.Apply(side, d);
    ASSERT_TRUE(join.Consume(side, {d}).ok());
  }
  EXPECT_EQ(sink.Normalized(), naive.Join());
}

// ---------------------------------------------- algorithm equivalences ----

TEST_P(SeedSweep, PageRankAllThreeWaysAgree) {
  GraphGenOptions opt;
  opt.num_vertices = 150 + static_cast<int64_t>(GetParam() % 100);
  opt.num_edges = opt.num_vertices * 6;
  opt.seed = GetParam();
  GraphData graph = GenerateRmatGraph(opt);
  std::vector<double> ref = ReferencePageRank(graph, 0.85, 1e-12, 500);

  for (bool delta : {true, false}) {
    EngineConfig cfg;
    cfg.num_workers = 3;
    Cluster cluster(cfg);
    ASSERT_TRUE(LoadGraphTables(&cluster, graph).ok());
    PageRankConfig pr;
    pr.threshold = 1e-7;
    ASSERT_TRUE(RegisterPageRankUdfs(cluster.udfs(), pr).ok());
    auto plan = delta ? BuildPageRankDeltaPlan(pr)
                      : BuildPageRankFullPlan(pr);
    ASSERT_TRUE(plan.ok());
    auto run = cluster.Run(*plan);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    auto ranks = RanksFromState(run->fixpoint_state, graph.num_vertices);
    ASSERT_TRUE(ranks.ok());
    for (size_t v = 0; v < ref.size(); ++v) {
      ASSERT_NEAR((*ranks)[v], ref[v], 1e-4)
          << (delta ? "delta" : "full") << " vertex " << v << " seed "
          << GetParam();
    }
  }
}

TEST_P(SeedSweep, SsspMatchesBfsFromRandomSources) {
  GraphGenOptions opt;
  opt.num_vertices = 200;
  opt.num_edges = 700 + static_cast<int64_t>(GetParam() % 500);
  opt.seed = GetParam() * 3 + 1;
  GraphData graph = GenerateRmatGraph(opt);
  Rng rng(GetParam());
  const auto source =
      static_cast<int64_t>(rng.NextBelow(
          static_cast<uint64_t>(graph.num_vertices)));

  EngineConfig cfg;
  cfg.num_workers = 3;
  Cluster cluster(cfg);
  ASSERT_TRUE(LoadGraphTables(&cluster, graph).ok());
  SsspConfig sp;
  sp.source = source;
  ASSERT_TRUE(RegisterSsspUdfs(cluster.udfs(), sp).ok());
  auto plan = BuildSsspDeltaPlan(sp);
  ASSERT_TRUE(plan.ok());
  auto run = cluster.Run(*plan);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  auto dist = DistancesFromState(run->fixpoint_state, graph.num_vertices);
  ASSERT_TRUE(dist.ok());
  EXPECT_EQ(*dist, ReferenceSssp(graph, source)) << "source " << source;
}

// --------------------------------------------------------- serde property --

Value RandomValue(Rng* rng, int depth = 0) {
  switch (rng->NextBelow(depth >= 2 ? 5 : 6)) {
    case 0:
      return Value::Null();
    case 1:
      return Value(rng->NextBool(0.5));
    case 2:
      return Value(static_cast<int64_t>(rng->Next()));
    case 3:
      return Value(rng->NextGaussian() * 1e6);
    case 4: {
      std::string s;
      for (uint64_t i = rng->NextBelow(20); i > 0; --i) {
        s += static_cast<char>('a' + rng->NextBelow(26));
      }
      return Value(std::move(s));
    }
    default: {
      std::vector<Value> items;
      for (uint64_t i = rng->NextBelow(5); i > 0; --i) {
        items.push_back(RandomValue(rng, depth + 1));
      }
      return Value::List(std::move(items));
    }
  }
}

TEST_P(SeedSweep, SerdeRoundTripsArbitraryTuples) {
  Rng rng(GetParam() * 7919);
  for (int i = 0; i < 200; ++i) {
    std::vector<Value> fields;
    for (uint64_t f = rng.NextBelow(6); f > 0; --f) {
      fields.push_back(RandomValue(&rng));
    }
    Tuple t(std::move(fields));
    auto back = DeserializeTuple(SerializeTuple(t));
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(*back, t);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace rex
