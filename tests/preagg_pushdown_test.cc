// §5.2 below-join pre-aggregation tests: correctness of the rewrite on
// both key-FK and multiplicative joins (with multiply compensation), and
// the optimizer's decision logic.
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "common/rng.h"
#include "optimizer/optimizer.h"

namespace rex {
namespace {

struct Fixture {
  Cluster cluster{[] {
    EngineConfig cfg;
    cfg.num_workers = 3;
    return cfg;
  }()};
  QueryBlock query;
  StatsCatalog stats;

  // sales(region, item, amount) — the aggregated side S;
  // promos(item, kind) — the other side T, deliberately NON-unique on
  // item (multiplicative join: every promo of an item pairs with every
  // sale of it).
  std::map<std::pair<int64_t, int64_t>, double> expected_sum;
  std::map<std::pair<int64_t, int64_t>, int64_t> expected_count;

  Status Setup(bool promos_unique) {
    Rng rng(71);
    std::vector<Tuple> sales;
    std::vector<Tuple> promos;
    std::map<int64_t, int64_t> promos_per_item;
    const int64_t items = 30;
    for (int64_t i = 0; i < items; ++i) {
      const int64_t count =
          promos_unique ? 1 : static_cast<int64_t>(rng.NextBelow(4));
      promos_per_item[i] = count;
      for (int64_t c = 0; c < count; ++c) {
        promos.push_back(Tuple{Value(i), Value(c)});
      }
    }
    for (int64_t s = 0; s < 4000; ++s) {
      const int64_t region = static_cast<int64_t>(rng.NextBelow(4));
      const int64_t item = static_cast<int64_t>(rng.NextBelow(items));
      const double amount = static_cast<double>(rng.NextBelow(100));
      sales.push_back(Tuple{Value(region), Value(item), Value(amount)});
      // Ground truth over the join: each sale appears once per promo.
      const int64_t mult = promos_per_item[item];
      if (mult > 0) {
        expected_sum[{region, 0}] += amount * static_cast<double>(mult);
        expected_count[{region, 0}] += mult;
      }
    }
    REX_RETURN_NOT_OK(cluster.CreateTable(
        "sales",
        Schema{{"region", ValueType::kInt},
               {"item", ValueType::kInt},
               {"amount", ValueType::kDouble}},
        /*key_column=*/1, sales));
    REX_RETURN_NOT_OK(cluster.CreateTable(
        "promos",
        Schema{{"item", ValueType::kInt}, {"kind", ValueType::kInt}},
        /*key_column=*/0, promos));

    TableRef s;
    s.name = "sales";
    s.schema = Schema{{"region", ValueType::kInt},
                      {"item", ValueType::kInt},
                      {"amount", ValueType::kDouble}};
    s.partition_column = "item";
    TableRef t;
    t.name = "promos";
    t.schema =
        Schema{{"item", ValueType::kInt}, {"kind", ValueType::kInt}};
    t.partition_column = "item";
    query.tables = {s, t};
    JoinPredSpec j;
    j.left_table = "sales";
    j.left_column = "item";
    j.right_table = "promos";
    j.right_column = "item";
    j.key_side = promos_unique ? "right" : "";
    query.joins = {j};
    AggQuerySpec agg;
    agg.group_by = {{"sales", "region"}};
    agg.items = {{AggKind::kSum, "sales", "amount", "total"},
                 {AggKind::kCount, "", "", "n"}};
    query.agg = agg;

    TableStats ss;
    ss.rows = 4000;
    ss.distinct["item"] = items;
    ss.distinct["region"] = 4;
    stats.SetTableStats("sales", ss);
    TableStats ts;
    ts.rows = static_cast<int64_t>(promos.size());
    ts.distinct["item"] = items;
    stats.SetTableStats("promos", ts);
    return Status::OK();
  }

  void Verify(const QueryRunResult& run) {
    ASSERT_EQ(run.results.size(), expected_sum.size());
    for (const Tuple& row : run.results) {
      auto key = std::make_pair(row.field(0).AsInt(), int64_t{0});
      ASSERT_TRUE(expected_sum.count(key)) << row.ToString();
      EXPECT_NEAR(row.field(1).ToDouble().value_or(-1), expected_sum[key],
                  1e-6)
          << row.ToString();
      EXPECT_EQ(row.field(2).ToInt().value_or(-1), expected_count[key])
          << row.ToString();
    }
  }
};

TEST(PreaggPushdownTest, MultiplicativeJoinWithCompensation) {
  Fixture f;
  ASSERT_TRUE(f.Setup(/*promos_unique=*/false).ok());
  Optimizer opt(&f.stats, ClusterCalibration::Uniform(3));
  auto result = opt.Optimize(f.query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // 4000 sales shrink to ~120 (region, item) partials: pushdown must win.
  ASSERT_TRUE(result->decisions.preagg_below_join);
  EXPECT_TRUE(result->decisions.multiply_compensation);

  auto run = f.cluster.Run(result->spec);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  f.Verify(*run);
}

TEST(PreaggPushdownTest, KeyFkJoinSkipsCompensation) {
  Fixture f;
  ASSERT_TRUE(f.Setup(/*promos_unique=*/true).ok());
  Optimizer opt(&f.stats, ClusterCalibration::Uniform(3));
  auto result = opt.Optimize(f.query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->decisions.preagg_below_join);
  EXPECT_FALSE(result->decisions.multiply_compensation);

  auto run = f.cluster.Run(result->spec);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  f.Verify(*run);
}

TEST(PreaggPushdownTest, MatchesNoPushdownPlanExactly) {
  Fixture a;
  ASSERT_TRUE(a.Setup(false).ok());
  Optimizer with(&a.stats, ClusterCalibration::Uniform(3));
  auto pushed = with.Optimize(a.query);
  ASSERT_TRUE(pushed.ok());
  ASSERT_TRUE(pushed->decisions.preagg_below_join);
  auto run_pushed = a.cluster.Run(pushed->spec);
  ASSERT_TRUE(run_pushed.ok());

  Fixture b;
  ASSERT_TRUE(b.Setup(false).ok());
  OptimizerOptions no_push;
  no_push.enable_preagg = false;
  Optimizer without(&b.stats, ClusterCalibration::Uniform(3), no_push);
  auto flat = without.Optimize(b.query);
  ASSERT_TRUE(flat.ok());
  EXPECT_FALSE(flat->decisions.preagg_below_join);
  auto run_flat = b.cluster.Run(flat->spec);
  ASSERT_TRUE(run_flat.ok());

  // Same result set from both physical strategies.
  auto normalize = [](std::vector<Tuple> rows) {
    std::sort(rows.begin(), rows.end());
    return rows;
  };
  EXPECT_EQ(normalize(run_pushed->results), normalize(run_flat->results));
}

TEST(PreaggPushdownTest, AvgDisqualifiesPushdown) {
  Fixture f;
  ASSERT_TRUE(f.Setup(false).ok());
  f.query.agg->items = {{AggKind::kAvg, "sales", "amount", "avg_amount"}};
  Optimizer opt(&f.stats, ClusterCalibration::Uniform(3));
  auto result = opt.Optimize(f.query);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->decisions.preagg_below_join);
}

}  // namespace
}  // namespace rex
