# Empty dependencies file for bench_fig12_recovery.
# This may be replaced when dependencies are built.
