file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_recovery.dir/bench_fig12_recovery.cc.o"
  "CMakeFiles/bench_fig12_recovery.dir/bench_fig12_recovery.cc.o.d"
  "bench_fig12_recovery"
  "bench_fig12_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
