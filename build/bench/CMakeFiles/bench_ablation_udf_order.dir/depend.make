# Empty dependencies file for bench_ablation_udf_order.
# This may be replaced when dependencies are built.
