# Empty dependencies file for bench_fig06_pagerank_dbpedia.
# This may be replaced when dependencies are built.
