file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_pagerank_dbpedia.dir/bench_fig06_pagerank_dbpedia.cc.o"
  "CMakeFiles/bench_fig06_pagerank_dbpedia.dir/bench_fig06_pagerank_dbpedia.cc.o.d"
  "bench_fig06_pagerank_dbpedia"
  "bench_fig06_pagerank_dbpedia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_pagerank_dbpedia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
