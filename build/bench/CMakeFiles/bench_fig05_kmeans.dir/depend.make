# Empty dependencies file for bench_fig05_kmeans.
# This may be replaced when dependencies are built.
