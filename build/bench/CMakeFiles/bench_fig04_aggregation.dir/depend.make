# Empty dependencies file for bench_fig04_aggregation.
# This may be replaced when dependencies are built.
