file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_sssp_dbpedia.dir/bench_fig07_sssp_dbpedia.cc.o"
  "CMakeFiles/bench_fig07_sssp_dbpedia.dir/bench_fig07_sssp_dbpedia.cc.o.d"
  "bench_fig07_sssp_dbpedia"
  "bench_fig07_sssp_dbpedia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_sssp_dbpedia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
