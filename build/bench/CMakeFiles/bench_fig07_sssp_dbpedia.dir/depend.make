# Empty dependencies file for bench_fig07_sssp_dbpedia.
# This may be replaced when dependencies are built.
