# Empty dependencies file for bench_fig08_pagerank_twitter.
# This may be replaced when dependencies are built.
