# Empty dependencies file for bench_fig03_delta_sets.
# This may be replaced when dependencies are built.
