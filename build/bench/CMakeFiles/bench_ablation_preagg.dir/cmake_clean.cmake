file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_preagg.dir/bench_ablation_preagg.cc.o"
  "CMakeFiles/bench_ablation_preagg.dir/bench_ablation_preagg.cc.o.d"
  "bench_ablation_preagg"
  "bench_ablation_preagg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_preagg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
