# Empty compiler generated dependencies file for bench_ablation_preagg.
# This may be replaced when dependencies are built.
