
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/adsorption_test.cc" "tests/CMakeFiles/rex_tests.dir/adsorption_test.cc.o" "gcc" "tests/CMakeFiles/rex_tests.dir/adsorption_test.cc.o.d"
  "/root/repo/tests/algos_e2e_test.cc" "tests/CMakeFiles/rex_tests.dir/algos_e2e_test.cc.o" "gcc" "tests/CMakeFiles/rex_tests.dir/algos_e2e_test.cc.o.d"
  "/root/repo/tests/chaos_test.cc" "tests/CMakeFiles/rex_tests.dir/chaos_test.cc.o" "gcc" "tests/CMakeFiles/rex_tests.dir/chaos_test.cc.o.d"
  "/root/repo/tests/cluster_test.cc" "tests/CMakeFiles/rex_tests.dir/cluster_test.cc.o" "gcc" "tests/CMakeFiles/rex_tests.dir/cluster_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/rex_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/rex_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/exec_operators_test.cc" "tests/CMakeFiles/rex_tests.dir/exec_operators_test.cc.o" "gcc" "tests/CMakeFiles/rex_tests.dir/exec_operators_test.cc.o.d"
  "/root/repo/tests/groupby_property_test.cc" "tests/CMakeFiles/rex_tests.dir/groupby_property_test.cc.o" "gcc" "tests/CMakeFiles/rex_tests.dir/groupby_property_test.cc.o.d"
  "/root/repo/tests/mapreduce_test.cc" "tests/CMakeFiles/rex_tests.dir/mapreduce_test.cc.o" "gcc" "tests/CMakeFiles/rex_tests.dir/mapreduce_test.cc.o.d"
  "/root/repo/tests/optimizer_test.cc" "tests/CMakeFiles/rex_tests.dir/optimizer_test.cc.o" "gcc" "tests/CMakeFiles/rex_tests.dir/optimizer_test.cc.o.d"
  "/root/repo/tests/preagg_pushdown_test.cc" "tests/CMakeFiles/rex_tests.dir/preagg_pushdown_test.cc.o" "gcc" "tests/CMakeFiles/rex_tests.dir/preagg_pushdown_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/rex_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/rex_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/recovery_test.cc" "tests/CMakeFiles/rex_tests.dir/recovery_test.cc.o" "gcc" "tests/CMakeFiles/rex_tests.dir/recovery_test.cc.o.d"
  "/root/repo/tests/rql_flat_test.cc" "tests/CMakeFiles/rex_tests.dir/rql_flat_test.cc.o" "gcc" "tests/CMakeFiles/rex_tests.dir/rql_flat_test.cc.o.d"
  "/root/repo/tests/rql_test.cc" "tests/CMakeFiles/rex_tests.dir/rql_test.cc.o" "gcc" "tests/CMakeFiles/rex_tests.dir/rql_test.cc.o.d"
  "/root/repo/tests/substrate_test.cc" "tests/CMakeFiles/rex_tests.dir/substrate_test.cc.o" "gcc" "tests/CMakeFiles/rex_tests.dir/substrate_test.cc.o.d"
  "/root/repo/tests/wrap_dbmsx_test.cc" "tests/CMakeFiles/rex_tests.dir/wrap_dbmsx_test.cc.o" "gcc" "tests/CMakeFiles/rex_tests.dir/wrap_dbmsx_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rex.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
