# Empty compiler generated dependencies file for rex_tests.
# This may be replaced when dependencies are built.
