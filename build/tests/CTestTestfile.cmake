# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/rex_tests[1]_include.cmake")
add_test(chaos_sweep "/root/repo/build/tests/rex_tests" "--gtest_filter=ChaosSweep*")
set_tests_properties(chaos_sweep PROPERTIES  ENVIRONMENT "REX_CHAOS_SEEDS=13" LABELS "chaos" TIMEOUT "1800" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;13;add_test;/root/repo/tests/CMakeLists.txt;0;")
