file(REMOVE_RECURSE
  "librex.a"
)
