# Empty dependencies file for rex.
# This may be replaced when dependencies are built.
