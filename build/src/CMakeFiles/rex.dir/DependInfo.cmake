
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algos/adsorption.cc" "src/CMakeFiles/rex.dir/algos/adsorption.cc.o" "gcc" "src/CMakeFiles/rex.dir/algos/adsorption.cc.o.d"
  "/root/repo/src/algos/kmeans.cc" "src/CMakeFiles/rex.dir/algos/kmeans.cc.o" "gcc" "src/CMakeFiles/rex.dir/algos/kmeans.cc.o.d"
  "/root/repo/src/algos/pagerank.cc" "src/CMakeFiles/rex.dir/algos/pagerank.cc.o" "gcc" "src/CMakeFiles/rex.dir/algos/pagerank.cc.o.d"
  "/root/repo/src/algos/reference.cc" "src/CMakeFiles/rex.dir/algos/reference.cc.o" "gcc" "src/CMakeFiles/rex.dir/algos/reference.cc.o.d"
  "/root/repo/src/algos/sssp.cc" "src/CMakeFiles/rex.dir/algos/sssp.cc.o" "gcc" "src/CMakeFiles/rex.dir/algos/sssp.cc.o.d"
  "/root/repo/src/cluster/cluster.cc" "src/CMakeFiles/rex.dir/cluster/cluster.cc.o" "gcc" "src/CMakeFiles/rex.dir/cluster/cluster.cc.o.d"
  "/root/repo/src/cluster/partition_map.cc" "src/CMakeFiles/rex.dir/cluster/partition_map.cc.o" "gcc" "src/CMakeFiles/rex.dir/cluster/partition_map.cc.o.d"
  "/root/repo/src/cluster/worker.cc" "src/CMakeFiles/rex.dir/cluster/worker.cc.o" "gcc" "src/CMakeFiles/rex.dir/cluster/worker.cc.o.d"
  "/root/repo/src/common/delta.cc" "src/CMakeFiles/rex.dir/common/delta.cc.o" "gcc" "src/CMakeFiles/rex.dir/common/delta.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/rex.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/rex.dir/common/logging.cc.o.d"
  "/root/repo/src/common/metrics.cc" "src/CMakeFiles/rex.dir/common/metrics.cc.o" "gcc" "src/CMakeFiles/rex.dir/common/metrics.cc.o.d"
  "/root/repo/src/common/serde.cc" "src/CMakeFiles/rex.dir/common/serde.cc.o" "gcc" "src/CMakeFiles/rex.dir/common/serde.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/rex.dir/common/status.cc.o" "gcc" "src/CMakeFiles/rex.dir/common/status.cc.o.d"
  "/root/repo/src/common/tuple.cc" "src/CMakeFiles/rex.dir/common/tuple.cc.o" "gcc" "src/CMakeFiles/rex.dir/common/tuple.cc.o.d"
  "/root/repo/src/common/value.cc" "src/CMakeFiles/rex.dir/common/value.cc.o" "gcc" "src/CMakeFiles/rex.dir/common/value.cc.o.d"
  "/root/repo/src/data/generators.cc" "src/CMakeFiles/rex.dir/data/generators.cc.o" "gcc" "src/CMakeFiles/rex.dir/data/generators.cc.o.d"
  "/root/repo/src/dbmsx/dbmsx.cc" "src/CMakeFiles/rex.dir/dbmsx/dbmsx.cc.o" "gcc" "src/CMakeFiles/rex.dir/dbmsx/dbmsx.cc.o.d"
  "/root/repo/src/engine/local_plan.cc" "src/CMakeFiles/rex.dir/engine/local_plan.cc.o" "gcc" "src/CMakeFiles/rex.dir/engine/local_plan.cc.o.d"
  "/root/repo/src/engine/plan_spec.cc" "src/CMakeFiles/rex.dir/engine/plan_spec.cc.o" "gcc" "src/CMakeFiles/rex.dir/engine/plan_spec.cc.o.d"
  "/root/repo/src/exec/aggregates.cc" "src/CMakeFiles/rex.dir/exec/aggregates.cc.o" "gcc" "src/CMakeFiles/rex.dir/exec/aggregates.cc.o.d"
  "/root/repo/src/exec/builtins.cc" "src/CMakeFiles/rex.dir/exec/builtins.cc.o" "gcc" "src/CMakeFiles/rex.dir/exec/builtins.cc.o.d"
  "/root/repo/src/exec/expr.cc" "src/CMakeFiles/rex.dir/exec/expr.cc.o" "gcc" "src/CMakeFiles/rex.dir/exec/expr.cc.o.d"
  "/root/repo/src/exec/fixpoint.cc" "src/CMakeFiles/rex.dir/exec/fixpoint.cc.o" "gcc" "src/CMakeFiles/rex.dir/exec/fixpoint.cc.o.d"
  "/root/repo/src/exec/group_by.cc" "src/CMakeFiles/rex.dir/exec/group_by.cc.o" "gcc" "src/CMakeFiles/rex.dir/exec/group_by.cc.o.d"
  "/root/repo/src/exec/hash_join.cc" "src/CMakeFiles/rex.dir/exec/hash_join.cc.o" "gcc" "src/CMakeFiles/rex.dir/exec/hash_join.cc.o.d"
  "/root/repo/src/exec/operator.cc" "src/CMakeFiles/rex.dir/exec/operator.cc.o" "gcc" "src/CMakeFiles/rex.dir/exec/operator.cc.o.d"
  "/root/repo/src/exec/operators.cc" "src/CMakeFiles/rex.dir/exec/operators.cc.o" "gcc" "src/CMakeFiles/rex.dir/exec/operators.cc.o.d"
  "/root/repo/src/exec/tuple_set.cc" "src/CMakeFiles/rex.dir/exec/tuple_set.cc.o" "gcc" "src/CMakeFiles/rex.dir/exec/tuple_set.cc.o.d"
  "/root/repo/src/exec/udf_registry.cc" "src/CMakeFiles/rex.dir/exec/udf_registry.cc.o" "gcc" "src/CMakeFiles/rex.dir/exec/udf_registry.cc.o.d"
  "/root/repo/src/mapreduce/mr_engine.cc" "src/CMakeFiles/rex.dir/mapreduce/mr_engine.cc.o" "gcc" "src/CMakeFiles/rex.dir/mapreduce/mr_engine.cc.o.d"
  "/root/repo/src/mapreduce/mr_jobs.cc" "src/CMakeFiles/rex.dir/mapreduce/mr_jobs.cc.o" "gcc" "src/CMakeFiles/rex.dir/mapreduce/mr_jobs.cc.o.d"
  "/root/repo/src/net/channel.cc" "src/CMakeFiles/rex.dir/net/channel.cc.o" "gcc" "src/CMakeFiles/rex.dir/net/channel.cc.o.d"
  "/root/repo/src/net/message.cc" "src/CMakeFiles/rex.dir/net/message.cc.o" "gcc" "src/CMakeFiles/rex.dir/net/message.cc.o.d"
  "/root/repo/src/net/network.cc" "src/CMakeFiles/rex.dir/net/network.cc.o" "gcc" "src/CMakeFiles/rex.dir/net/network.cc.o.d"
  "/root/repo/src/optimizer/calibration.cc" "src/CMakeFiles/rex.dir/optimizer/calibration.cc.o" "gcc" "src/CMakeFiles/rex.dir/optimizer/calibration.cc.o.d"
  "/root/repo/src/optimizer/cost_model.cc" "src/CMakeFiles/rex.dir/optimizer/cost_model.cc.o" "gcc" "src/CMakeFiles/rex.dir/optimizer/cost_model.cc.o.d"
  "/root/repo/src/optimizer/optimizer.cc" "src/CMakeFiles/rex.dir/optimizer/optimizer.cc.o" "gcc" "src/CMakeFiles/rex.dir/optimizer/optimizer.cc.o.d"
  "/root/repo/src/rql/ast.cc" "src/CMakeFiles/rex.dir/rql/ast.cc.o" "gcc" "src/CMakeFiles/rex.dir/rql/ast.cc.o.d"
  "/root/repo/src/rql/compiler.cc" "src/CMakeFiles/rex.dir/rql/compiler.cc.o" "gcc" "src/CMakeFiles/rex.dir/rql/compiler.cc.o.d"
  "/root/repo/src/rql/lexer.cc" "src/CMakeFiles/rex.dir/rql/lexer.cc.o" "gcc" "src/CMakeFiles/rex.dir/rql/lexer.cc.o.d"
  "/root/repo/src/rql/parser.cc" "src/CMakeFiles/rex.dir/rql/parser.cc.o" "gcc" "src/CMakeFiles/rex.dir/rql/parser.cc.o.d"
  "/root/repo/src/sim/chaos_injector.cc" "src/CMakeFiles/rex.dir/sim/chaos_injector.cc.o" "gcc" "src/CMakeFiles/rex.dir/sim/chaos_injector.cc.o.d"
  "/root/repo/src/sim/fault_schedule.cc" "src/CMakeFiles/rex.dir/sim/fault_schedule.cc.o" "gcc" "src/CMakeFiles/rex.dir/sim/fault_schedule.cc.o.d"
  "/root/repo/src/storage/checkpoint_store.cc" "src/CMakeFiles/rex.dir/storage/checkpoint_store.cc.o" "gcc" "src/CMakeFiles/rex.dir/storage/checkpoint_store.cc.o.d"
  "/root/repo/src/storage/spill.cc" "src/CMakeFiles/rex.dir/storage/spill.cc.o" "gcc" "src/CMakeFiles/rex.dir/storage/spill.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/rex.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/rex.dir/storage/table.cc.o.d"
  "/root/repo/src/wrap/hadoop_wrap.cc" "src/CMakeFiles/rex.dir/wrap/hadoop_wrap.cc.o" "gcc" "src/CMakeFiles/rex.dir/wrap/hadoop_wrap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
