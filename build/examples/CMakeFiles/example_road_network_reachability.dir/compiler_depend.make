# Empty compiler generated dependencies file for example_road_network_reachability.
# This may be replaced when dependencies are built.
