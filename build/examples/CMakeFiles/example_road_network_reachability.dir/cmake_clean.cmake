file(REMOVE_RECURSE
  "CMakeFiles/example_road_network_reachability.dir/road_network_reachability.cpp.o"
  "CMakeFiles/example_road_network_reachability.dir/road_network_reachability.cpp.o.d"
  "example_road_network_reachability"
  "example_road_network_reachability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_road_network_reachability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
