file(REMOVE_RECURSE
  "CMakeFiles/example_social_influencers.dir/social_influencers.cpp.o"
  "CMakeFiles/example_social_influencers.dir/social_influencers.cpp.o.d"
  "example_social_influencers"
  "example_social_influencers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_social_influencers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
