# Empty dependencies file for example_social_influencers.
# This may be replaced when dependencies are built.
