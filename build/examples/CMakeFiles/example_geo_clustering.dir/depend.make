# Empty dependencies file for example_geo_clustering.
# This may be replaced when dependencies are built.
