file(REMOVE_RECURSE
  "CMakeFiles/example_geo_clustering.dir/geo_clustering.cpp.o"
  "CMakeFiles/example_geo_clustering.dir/geo_clustering.cpp.o.d"
  "example_geo_clustering"
  "example_geo_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_geo_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
