# Empty dependencies file for example_fault_tolerant_ranking.
# This may be replaced when dependencies are built.
