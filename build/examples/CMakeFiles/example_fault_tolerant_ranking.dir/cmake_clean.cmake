file(REMOVE_RECURSE
  "CMakeFiles/example_fault_tolerant_ranking.dir/fault_tolerant_ranking.cpp.o"
  "CMakeFiles/example_fault_tolerant_ranking.dir/fault_tolerant_ranking.cpp.o.d"
  "example_fault_tolerant_ranking"
  "example_fault_tolerant_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fault_tolerant_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
