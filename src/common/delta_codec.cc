#include "common/delta_codec.h"

#include <cstring>
#include <vector>

namespace rex {

namespace {

constexpr uint8_t kMagic = 0xD5;
constexpr uint8_t kVersion = 1;
constexpr uint8_t kOpEnd = 0x00;
constexpr uint8_t kOpCopy = 0x01;
constexpr uint8_t kOpAdd = 0x02;

// Karp-Rabin parameters (the onepass scheme's choices): arithmetic mod the
// Mersenne prime 2^61−1 with polynomial base 263.
constexpr uint64_t kPrime = (uint64_t{1} << 61) - 1;
constexpr uint64_t kBase = 263;

/// Seed window the rolling hash fingerprints; matches are verified byte-
/// for-byte and then extended in both directions, so a small seed only
/// costs lookup collisions, never correctness. 8 bytes is small enough to
/// catch the repeated key/framing bytes between epochs whose numeric
/// payloads changed.
constexpr size_t kSeedLen = 8;

/// Fixed-size fingerprint table (2^16 slots of 4 bytes): the O(1)-space
/// half of onepass's bargain. Slot value is offset+1; 0 means empty.
/// First-wins keeps encoding deterministic.
constexpr size_t kTableBits = 16;
constexpr size_t kTableSize = size_t{1} << kTableBits;

inline uint64_t MulMod(uint64_t a, uint64_t b) {
  return static_cast<uint64_t>(
      (static_cast<unsigned __int128>(a) * b) % kPrime);
}

inline uint64_t AddMod(uint64_t a, uint64_t b) {
  uint64_t s = a + b;  // both < 2^61, no overflow
  return s >= kPrime ? s - kPrime : s;
}

inline uint64_t SubMod(uint64_t a, uint64_t b) {
  return a >= b ? a - b : a + kPrime - b;
}

inline uint64_t HashSeed(const char* p) {
  uint64_t h = 0;
  for (size_t i = 0; i < kSeedLen; ++i) {
    h = AddMod(MulMod(h, kBase), static_cast<uint8_t>(p[i]));
  }
  return h;
}

/// base^(kSeedLen-1) mod p, for rolling the leading byte out.
inline uint64_t LeadingPower() {
  uint64_t pw = 1;
  for (size_t i = 0; i + 1 < kSeedLen; ++i) pw = MulMod(pw, kBase);
  return pw;
}

inline size_t Slot(uint64_t h) {
  // Fold the 61-bit hash down to the table width.
  return static_cast<size_t>((h ^ (h >> 32) ^ (h >> 16)) & (kTableSize - 1));
}

// ---------------------------------------------------------------- writer --

inline void AppendU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

inline void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void AppendVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

inline uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

inline int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

void EmitAdd(std::string* out, const char* data, size_t len) {
  if (len == 0) return;
  AppendU8(out, kOpAdd);
  AppendVarint(out, len);
  out->append(data, len);
}

/// COPY offsets are emitted as a zigzag delta from where the previous COPY
/// left off in the reference: streams whose records keep their order across
/// epochs (the common case for ℤ-set payloads) encode each offset in one
/// byte, which is what makes COPY cheaper than re-ADDing short stable runs
/// between changed numeric fields.
void EmitCopy(std::string* out, int64_t* expected, size_t offset,
              size_t len) {
  if (len == 0) return;
  AppendU8(out, kOpCopy);
  AppendVarint(out, ZigZag(static_cast<int64_t>(offset) - *expected));
  AppendVarint(out, len);
  *expected = static_cast<int64_t>(offset + len);
}

// ---------------------------------------------------------------- parser --

/// One validated op; ADD literals point into the delta buffer. COPY
/// offsets are absolute (already resolved against the running expected
/// position and bounds-checked).
struct Op {
  uint8_t tag;
  size_t offset;     // COPY: reference offset
  size_t len;        // bytes produced
  const char* data;  // ADD: literal bytes
};

struct ReadCursor {
  const char* p;
  size_t left;

  Status Need(size_t n, const char* what) {
    if (left < n) {
      return Status::OutOfRange(std::string("delta codec: truncated ") +
                                what);
    }
    return Status::OK();
  }
  uint8_t U8() {
    uint8_t v = static_cast<uint8_t>(*p);
    ++p;
    --left;
    return v;
  }
  uint32_t U32() {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
    }
    p += 4;
    left -= 4;
    return v;
  }
  Result<uint64_t> Varint(const char* what) {
    uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      REX_RETURN_NOT_OK(Need(1, what));
      const uint8_t b = U8();
      v |= static_cast<uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
    }
    return Status::ParseError(std::string("delta codec: varint overflow in ") +
                              what);
  }
};

/// Parses and fully validates the op stream before anyone touches output
/// bytes: header sanity, COPY ranges against `ref_size`, cumulative output
/// against the header's target_size and the caller's `max_output` cap,
/// unknown tags, truncation, and trailing garbage after END.
Status ParseOps(size_t ref_size, const std::string& delta, size_t max_output,
                size_t* target_size, std::vector<Op>* ops) {
  ReadCursor c{delta.data(), delta.size()};
  REX_RETURN_NOT_OK(c.Need(2 + 4 + 4, "header"));
  if (c.U8() != kMagic) {
    return Status::ParseError("delta codec: bad magic byte");
  }
  if (c.U8() != kVersion) {
    return Status::ParseError("delta codec: unsupported version");
  }
  const size_t target = c.U32();
  const size_t header_ref = c.U32();
  if (header_ref != ref_size) {
    return Status::InvalidArgument(
        "delta codec: reference size mismatch (delta encoded against " +
        std::to_string(header_ref) + " bytes, reference has " +
        std::to_string(ref_size) + ")");
  }
  if (target > max_output) {
    return Status::OutOfRange(
        "delta codec: declared output " + std::to_string(target) +
        " exceeds cap " + std::to_string(max_output));
  }
  size_t produced = 0;
  int64_t expected = 0;  // reference position after the previous COPY
  while (true) {
    REX_RETURN_NOT_OK(c.Need(1, "op tag"));
    const uint8_t tag = c.U8();
    if (tag == kOpEnd) break;
    if (tag == kOpCopy) {
      REX_ASSIGN_OR_RETURN(uint64_t zz, c.Varint("COPY offset"));
      REX_ASSIGN_OR_RETURN(uint64_t len, c.Varint("COPY length"));
      const int64_t offset = expected + UnZigZag(zz);
      if (len == 0) {
        return Status::ParseError("delta codec: zero-length COPY");
      }
      if (offset < 0 || len > ref_size ||
          static_cast<uint64_t>(offset) > ref_size - len) {
        return Status::OutOfRange(
            "delta codec: COPY [" + std::to_string(offset) + ", +" +
            std::to_string(len) + ") outside reference of " +
            std::to_string(ref_size) + " bytes");
      }
      expected = offset + static_cast<int64_t>(len);
      produced += static_cast<size_t>(len);
      ops->push_back(Op{kOpCopy, static_cast<size_t>(offset),
                        static_cast<size_t>(len), nullptr});
    } else if (tag == kOpAdd) {
      REX_ASSIGN_OR_RETURN(uint64_t len64, c.Varint("ADD length"));
      if (len64 == 0) {
        return Status::ParseError("delta codec: zero-length ADD");
      }
      if (len64 > c.left) {
        return Status::OutOfRange("delta codec: truncated ADD literal");
      }
      const size_t len = static_cast<size_t>(len64);
      ops->push_back(Op{kOpAdd, 0, len, c.p});
      c.p += len;
      c.left -= len;
      produced += len;
    } else {
      return Status::ParseError("delta codec: unknown op tag " +
                                std::to_string(tag));
    }
    if (produced > target) {
      return Status::OutOfRange(
          "delta codec: ops produce more than the declared " +
          std::to_string(target) + " bytes");
    }
  }
  if (produced != target) {
    return Status::ParseError(
        "delta codec: ops produce " + std::to_string(produced) +
        " bytes, header declares " + std::to_string(target));
  }
  if (c.left != 0) {
    return Status::ParseError("delta codec: trailing bytes after END op");
  }
  *target_size = target;
  return Status::OK();
}

// --------------------------------------------------------------- encoder --

/// A verified candidate match at target position `i`: extend forward and
/// backward (into the pending literal, at most back to `lit_start`).
struct Match {
  size_t offset = 0;  // reference offset (after backward extension)
  size_t start = 0;   // target position (after backward extension)
  size_t len = 0;
};

Match ExtendMatch(const std::string& ref, const std::string& target,
                  size_t cand, size_t i, size_t lit_start) {
  size_t fwd = kSeedLen;
  while (cand + fwd < ref.size() && i + fwd < target.size() &&
         ref[cand + fwd] == target[i + fwd]) {
    ++fwd;
  }
  size_t back = 0;
  while (back < i - lit_start && back < cand &&
         ref[cand - back - 1] == target[i - back - 1]) {
    ++back;
  }
  return Match{cand - back, i - back, fwd + back};
}

}  // namespace

std::string DeltaCodecEncode(const std::string& ref,
                             const std::string& target) {
  std::string out;
  out.reserve(16 + target.size() / 4);
  AppendU8(&out, kMagic);
  AppendU8(&out, kVersion);
  AppendU32(&out, static_cast<uint32_t>(target.size()));
  AppendU32(&out, static_cast<uint32_t>(ref.size()));

  if (target.empty()) {
    AppendU8(&out, kOpEnd);
    return out;
  }
  if (ref.size() < kSeedLen || target.size() < kSeedLen) {
    EmitAdd(&out, target.data(), target.size());
    AppendU8(&out, kOpEnd);
    return out;
  }

  // Fingerprint the reference: one table entry per window position,
  // first-wins (earlier offsets stick, keeping the encoding deterministic).
  std::vector<uint32_t> table(kTableSize, 0);
  {
    const uint64_t lead = LeadingPower();
    uint64_t h = HashSeed(ref.data());
    for (size_t i = 0;; ++i) {
      uint32_t& slot = table[Slot(h)];
      if (slot == 0) slot = static_cast<uint32_t>(i + 1);
      if (i + kSeedLen >= ref.size()) break;
      h = AddMod(
          MulMod(SubMod(h, MulMod(static_cast<uint8_t>(ref[i]), lead)),
                 kBase),
          static_cast<uint8_t>(ref[i + kSeedLen]));
    }
  }

  const uint64_t lead = LeadingPower();
  int64_t expected = 0;   // zigzag base for COPY offsets
  size_t align_ref = 0;   // reference/target positions after the last COPY,
  size_t align_tgt = 0;   // for the alignment guess below
  size_t lit_start = 0;   // start of the pending ADD literal
  size_t i = 0;           // scan position in target
  uint64_t h = HashSeed(target.data());
  bool h_valid = true;
  while (i + kSeedLen <= target.size()) {
    if (!h_valid) {
      h = HashSeed(target.data() + i);
      h_valid = true;
    }
    Match best;
    // Alignment guess first: streams that keep record order across epochs
    // match at (last ref end) + (bytes scanned since the last COPY), which
    // both finds matches the first-wins table misses and keeps the offset
    // delta near zero (1-byte varint).
    const size_t guess = align_ref + (i - align_tgt);
    if (guess + kSeedLen <= ref.size() &&
        std::memcmp(ref.data() + guess, target.data() + i, kSeedLen) == 0) {
      best = ExtendMatch(ref, target, guess, i, lit_start);
    }
    const uint32_t entry = table[Slot(h)];
    if (entry != 0) {
      const size_t cand = static_cast<size_t>(entry - 1);
      if (cand != guess &&
          std::memcmp(ref.data() + cand, target.data() + i, kSeedLen) == 0) {
        Match m = ExtendMatch(ref, target, cand, i, lit_start);
        if (m.len > best.len) best = m;  // ties keep the aligned guess
      }
    }
    if (best.len >= kSeedLen) {
      EmitAdd(&out, target.data() + lit_start, best.start - lit_start);
      EmitCopy(&out, &expected, best.offset, best.len);
      i = best.start + best.len;
      lit_start = i;
      align_ref = best.offset + best.len;
      align_tgt = i;
      h_valid = false;  // jumped; recompute the window hash lazily
    } else {
      // Roll one byte.
      if (i + kSeedLen < target.size()) {
        h = AddMod(
            MulMod(SubMod(h, MulMod(static_cast<uint8_t>(target[i]), lead)),
                   kBase),
            static_cast<uint8_t>(target[i + kSeedLen]));
      }
      ++i;
    }
  }
  EmitAdd(&out, target.data() + lit_start, target.size() - lit_start);
  AppendU8(&out, kOpEnd);
  return out;
}

// --------------------------------------------------------------- decoder --

Result<std::string> DeltaCodecDecode(const std::string& ref,
                                     const std::string& delta,
                                     size_t max_output) {
  size_t target_size = 0;
  std::vector<Op> ops;
  REX_RETURN_NOT_OK(ParseOps(ref.size(), delta, max_output, &target_size,
                             &ops));
  std::string out;
  out.reserve(target_size);
  for (const Op& op : ops) {
    if (op.tag == kOpCopy) {
      out.append(ref.data() + op.offset, op.len);
    } else {
      out.append(op.data, op.len);
    }
  }
  return out;
}

Status DeltaCodecDecodeInPlace(std::string* buf, const std::string& delta,
                               size_t max_output) {
  size_t target_size = 0;
  std::vector<Op> ops;
  REX_RETURN_NOT_OK(ParseOps(buf->size(), delta, max_output, &target_size,
                             &ops));
  const size_t ref_size = buf->size();

  // Pass 1: simulate the write cursor and save the reference bytes each
  // COPY would read after an earlier op already overwrote them (source
  // prefix below the op's starting cursor). Saving happens before any
  // write, so the source bytes are still pristine. ADD literals live in
  // `delta` and can never conflict.
  std::vector<std::pair<size_t, size_t>> saved_range(ops.size(), {0, 0});
  std::string saved;
  {
    size_t cursor = 0;
    for (size_t k = 0; k < ops.size(); ++k) {
      const Op& op = ops[k];
      if (op.tag == kOpCopy && op.offset < cursor) {
        const size_t conflict = std::min(op.len, cursor - op.offset);
        saved_range[k] = {saved.size(), conflict};
        saved.append(buf->data() + op.offset, conflict);
      }
      cursor += op.len;
    }
  }

  // Pass 2: execute. The buffer is grown up front so forward COPY sources
  // (offset >= cursor) stay addressable until the cursor passes them.
  if (target_size > ref_size) buf->resize(target_size);
  size_t cursor = 0;
  for (size_t k = 0; k < ops.size(); ++k) {
    const Op& op = ops[k];
    char* dst = buf->data() + cursor;
    if (op.tag == kOpAdd) {
      std::memcpy(dst, op.data, op.len);
    } else {
      const auto [save_pos, conflict] = saved_range[k];
      if (op.len > conflict) {
        // Non-conflicted source bytes start at/after the pre-op cursor,
        // hence are still pristine. Move them BEFORE restoring the saved
        // prefix: the prefix write lands at [cursor, cursor+conflict),
        // which can overlap this move's source range. memmove itself
        // tolerates the intra-op overlap as the source crosses the
        // advancing write region.
        std::memmove(dst + conflict, buf->data() + op.offset + conflict,
                     op.len - conflict);
      }
      if (conflict > 0) {
        std::memcpy(dst, saved.data() + save_pos, conflict);
      }
    }
    cursor += op.len;
  }
  buf->resize(target_size);
  return Status::OK();
}

bool DeltaCodecLooksEncoded(const std::string& delta) {
  return delta.size() >= 2 && static_cast<uint8_t>(delta[0]) == kMagic &&
         static_cast<uint8_t>(delta[1]) == kVersion;
}

}  // namespace rex
