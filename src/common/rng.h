// Deterministic pseudo-random number generation for data generators and
// sampling. All experiment inputs are reproducible from fixed seeds.
#ifndef REX_COMMON_RNG_H_
#define REX_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

namespace rex {

/// xoshiro256** seeded via SplitMix64; fast, high-quality, deterministic
/// across platforms (unlike std::mt19937 + std::distributions, whose
/// outputs are implementation-defined).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL) {
    uint64_t x = seed;
    for (auto& s : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    auto rotl = [](uint64_t v, int k) { return (v << k) | (v >> (64 - k)); };
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n).
  uint64_t NextBelow(uint64_t n) { return n == 0 ? 0 : Next() % n; }

  /// Uniform in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double NextDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Standard normal via Box-Muller.
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  bool NextBool(double p_true) { return NextDouble() < p_true; }

 private:
  uint64_t s_[4];
};

}  // namespace rex

#endif  // REX_COMMON_RNG_H_
