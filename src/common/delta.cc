#include "common/delta.h"

namespace rex {

const char* DeltaOpName(DeltaOp op) {
  switch (op) {
    case DeltaOp::kInsert:
      return "+";
    case DeltaOp::kDelete:
      return "-";
    case DeltaOp::kReplace:
      return "->";
    case DeltaOp::kUpdate:
      return "δ";
    case DeltaOp::kBatch:
      return "batch";
  }
  return "?";
}

Delta Delta::WithTuple(Tuple t) const {
  Delta d = *this;
  d.tuple = std::move(t);
  return d;
}

Delta Delta::Negated() const {
  Delta d = *this;
  switch (op) {
    case DeltaOp::kInsert:
      d.op = DeltaOp::kDelete;
      break;
    case DeltaOp::kDelete:
      d.op = DeltaOp::kInsert;
      break;
    case DeltaOp::kReplace:
      d.tuple = old_tuple;
      d.old_tuple = tuple;
      break;
    case DeltaOp::kUpdate:
    case DeltaOp::kBatch:
      // δ(E) has no structural inverse; flip the (handler-owned) weight
      // sign instead. A batch is never negated in practice. INT64_MIN has
      // no int64 negation and saturates to INT64_MAX (ingress rejects it,
      // so this only covers locally constructed weights).
      d.weight = weight == INT64_MIN ? INT64_MAX : -weight;
      break;
  }
  return d;
}

std::string Delta::ToString() const {
  std::string out = DeltaOpName(op);
  out += tuple.ToString();
  if (op == DeltaOp::kReplace) {
    out += " was ";
    out += old_tuple.ToString();
  }
  if (weight != 1) {
    out += "×";
    out += std::to_string(weight);
  }
  return out;
}

DeltaVec AsInsertions(std::vector<Tuple> tuples) {
  DeltaVec out;
  out.reserve(tuples.size());
  for (Tuple& t : tuples) out.push_back(Delta::Insert(std::move(t)));
  return out;
}

}  // namespace rex
