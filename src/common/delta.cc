#include "common/delta.h"

namespace rex {

const char* DeltaOpName(DeltaOp op) {
  switch (op) {
    case DeltaOp::kInsert:
      return "+";
    case DeltaOp::kDelete:
      return "-";
    case DeltaOp::kReplace:
      return "->";
    case DeltaOp::kUpdate:
      return "δ";
    case DeltaOp::kBatch:
      return "batch";
  }
  return "?";
}

Delta Delta::WithTuple(Tuple t) const {
  Delta d = *this;
  d.tuple = std::move(t);
  return d;
}

std::string Delta::ToString() const {
  std::string out = DeltaOpName(op);
  out += tuple.ToString();
  if (op == DeltaOp::kReplace) {
    out += " was ";
    out += old_tuple.ToString();
  }
  return out;
}

DeltaVec AsInsertions(std::vector<Tuple> tuples) {
  DeltaVec out;
  out.reserve(tuples.size());
  for (Tuple& t : tuples) out.push_back(Delta::Insert(std::move(t)));
  return out;
}

}  // namespace rex
