// The dynamically typed scalar Value used by tuples throughout the engine.
//
// The original REX represents data as Java objects; here a compact
// std::variant plays that role. RQL's base datatypes (§3.3) map onto these
// alternatives: Integer -> int64_t, Double -> double, Boolean -> bool,
// String -> std::string, plus Null and a nested List for collection-valued
// attributes (the SQL-99 gap REX fills, §2).
#ifndef REX_COMMON_VALUE_H_
#define REX_COMMON_VALUE_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/hash.h"
#include "common/status.h"

namespace rex {

class Value;

/// Collection-valued attribute payload (shared so Values stay cheap to copy).
using ValueList = std::shared_ptr<std::vector<Value>>;

/// Type tags for Value alternatives; order must match the variant below.
enum class ValueType : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt = 2,
  kDouble = 3,
  kString = 4,
  kList = 5,
};

/// Returns "NULL", "BOOLEAN", "INTEGER", "DOUBLE", "STRING" or "LIST".
const char* ValueTypeName(ValueType t);

/// Parses a type name as used in UDA inTypes/outTypes declarations
/// ("Integer", "Double", "Boolean", "String", "List"); case-insensitive.
Result<ValueType> ValueTypeFromName(const std::string& name);

/// A dynamically typed scalar (or list) value.
class Value {
 public:
  Value() : var_(std::monostate{}) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Value(bool v) : var_(v) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Value(int64_t v) : var_(v) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Value(int v) : var_(static_cast<int64_t>(v)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Value(double v) : var_(v) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Value(std::string v) : var_(std::move(v)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Value(const char* v) : var_(std::string(v)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Value(ValueList v) : var_(std::move(v)) {}

  static Value Null() { return Value(); }
  static Value List(std::vector<Value> items) {
    return Value(std::make_shared<std::vector<Value>>(std::move(items)));
  }

  ValueType type() const { return static_cast<ValueType>(var_.index()); }
  bool is_null() const { return type() == ValueType::kNull; }

  /// Unchecked accessors; precondition: matching type().
  bool AsBool() const { return std::get<bool>(var_); }
  int64_t AsInt() const { return std::get<int64_t>(var_); }
  double AsDouble() const { return std::get<double>(var_); }
  const std::string& AsString() const { return std::get<std::string>(var_); }
  const std::vector<Value>& AsList() const {
    return *std::get<ValueList>(var_);
  }

  /// Numeric coercion: int and double both convert; others are errors.
  Result<double> ToDouble() const;
  Result<int64_t> ToInt() const;

  /// SQL-ish display form ("3", "1.25", "'abc'", "NULL", "[1, 2]").
  std::string ToString() const;

  /// Structural equality. Int and double compare cross-type numerically
  /// (so 1 == 1.0), matching RQL's numeric semantics. Inline: this is the
  /// hottest call in the engine (key probes).
  bool operator==(const Value& other) const {
    if (type() == other.type()) {
      switch (type()) {
        case ValueType::kNull:
          return true;
        case ValueType::kBool:
          return AsBool() == other.AsBool();
        case ValueType::kInt:
          return AsInt() == other.AsInt();
        case ValueType::kDouble:
          return AsDouble() == other.AsDouble();
        default:
          return SlowEquals(other);
      }
    }
    return MixedEquals(other);
  }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Total order for sorting / min / max. NULL sorts first; values of
  /// different non-numeric types order by type tag.
  bool operator<(const Value& other) const;

  /// 64-bit hash consistent with operator== (numeric cross-type equal
  /// values hash identically). Inline: partitioning and keyed-state
  /// lookups hash every tuple.
  uint64_t Hash() const {
    switch (type()) {
      case ValueType::kInt: {
        // Ints always hash through their double representation: mixed
        // numeric equality compares through doubles, so 2^53 + 1 (not
        // exactly representable) equals the double 2^53.0 and must hash
        // like it. Distinct ints beyond 2^53 that round to the same double
        // merely collide, which hash consumers tolerate; a hash that
        // disagrees with operator== breaks them.
        double d = static_cast<double>(AsInt());
        uint64_t bits;
        std::memcpy(&bits, &d, sizeof(bits));
        return HashMix(bits);
      }
      case ValueType::kDouble: {
        double d = AsDouble();
        if (d == 0.0) d = 0.0;  // normalize -0.0
        uint64_t bits;
        std::memcpy(&bits, &d, sizeof(bits));
        return HashMix(bits);
      }
      default:
        return SlowHash();
    }
  }

  /// Approximate in-memory footprint in bytes, used by the cost model and
  /// the network byte meter.
  size_t ByteSize() const;

 private:
  bool SlowEquals(const Value& other) const;   // string/list same-type
  bool MixedEquals(const Value& other) const;  // cross-type numeric
  uint64_t SlowHash() const;  // null/bool/string/list

  std::variant<std::monostate, bool, int64_t, double, std::string, ValueList>
      var_;
};

}  // namespace rex

#endif  // REX_COMMON_VALUE_H_
