// Lightweight metrics: named atomic counters grouped into registries.
//
// Each worker node and the network layer own a MetricsRegistry; benches read
// them to report tuples processed, bytes shipped, strata executed, UDF
// invocations, checkpoint volume, etc. (these back Figure 11's bandwidth
// numbers and the Δ-set reporting for Figure 3).
#ifndef REX_COMMON_METRICS_H_
#define REX_COMMON_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rex {

/// A monotonically increasing (or explicitly settable) 64-bit counter.
class Counter {
 public:
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time view of a Timer, including its log2-bucketed latency
/// histogram: bucket b counts samples with 2^b <= nanos < 2^(b+1)
/// (bucket 0 additionally holds 0-ns samples).
struct TimerStats {
  int64_t count = 0;
  int64_t total_nanos = 0;
  int64_t min_nanos = 0;  // 0 when count == 0
  int64_t max_nanos = 0;
  std::vector<int64_t> histogram;  // kTimerBuckets entries

  double mean_nanos() const {
    return count == 0 ? 0.0
                      : static_cast<double>(total_nanos) /
                            static_cast<double>(count);
  }
};

/// An accumulating wall-time recorder: count, total, min/max, and a
/// fixed-size log2 histogram. All updates are relaxed atomics so hot paths
/// can record without coordination; snapshots are approximate under
/// concurrency (exact once the network is quiescent, which is when the
/// profiler reads them).
class Timer {
 public:
  static constexpr int kBuckets = 48;  // 2^47 ns ≈ 39 hours: plenty

  void Record(int64_t nanos);

  TimerStats Snapshot() const;
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t total_nanos() const {
    return total_nanos_.load(std::memory_order_relaxed);
  }

  void Reset();

 private:
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> total_nanos_{0};
  std::atomic<int64_t> min_nanos_{0};
  std::atomic<int64_t> max_nanos_{0};
  std::atomic<int64_t> buckets_[kBuckets] = {};
};

/// RAII helper: records the elapsed wall time into `timer` on destruction.
/// A null timer disables measurement (no clock reads).
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer* timer)
      : timer_(timer),
        start_(timer == nullptr ? std::chrono::steady_clock::time_point{}
                                : std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    if (timer_ == nullptr) return;
    timer_->Record(std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - start_)
                       .count());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer* timer_;
  std::chrono::steady_clock::time_point start_;
};

/// Thread-safe name -> Counter/Timer maps. Counter and Timer pointers
/// remain valid for the registry's lifetime, so hot paths can cache them.
class MetricsRegistry {
 public:
  /// Returns (creating if needed) the counter with the given name.
  Counter* GetCounter(const std::string& name);

  /// Returns (creating if needed) the timer with the given name.
  Timer* GetTimer(const std::string& name);

  /// Current value, 0 if the counter does not exist.
  int64_t Value(const std::string& name) const;

  /// Current timer stats; zeroed stats if the timer does not exist.
  TimerStats TimerValue(const std::string& name) const;

  /// Snapshot of all counters, sorted by name.
  std::vector<std::pair<std::string, int64_t>> Snapshot() const;

  /// Snapshot of all timers, sorted by name.
  std::vector<std::pair<std::string, TimerStats>> TimersSnapshot() const;

  /// Resets every counter and timer to zero (between benchmark runs).
  void Reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Timer>> timers_;
};

/// Common counter names used across the engine.
namespace metrics {
inline constexpr const char kTuplesSent[] = "net.tuples_sent";
inline constexpr const char kBytesSent[] = "net.bytes_sent";
inline constexpr const char kMessagesSent[] = "net.messages_sent";
inline constexpr const char kTuplesProcessed[] = "exec.tuples_processed";
inline constexpr const char kUdfCalls[] = "exec.udf_calls";
inline constexpr const char kUdfCacheHits[] = "exec.udf_cache_hits";
inline constexpr const char kStrataExecuted[] = "exec.strata";
inline constexpr const char kDeltaTuples[] = "exec.delta_tuples";
/// Deltas removed (annihilated, composed, or deduped) by the coalescer
/// before a shuffle or stratum flush, and the wire bytes that saved.
inline constexpr const char kDeltasCoalesced[] = "exec.deltas_coalesced";
inline constexpr const char kCoalesceBytesSaved[] =
    "exec.coalesce_bytes_saved";
/// Columnar data plane: rows processed through a vectorized batch kernel
/// (filter eval, shuffle partitioning, group/join key hashing, coalescer
/// fold), batches converted, and rows that fell back to the scalar path
/// because the stream was outside the batch domain.
inline constexpr const char kBatchRows[] = "exec.batch_rows";
inline constexpr const char kBatchBatches[] = "exec.batch_batches";
inline constexpr const char kBatchFallbackRows[] = "exec.batch_fallback_rows";
inline constexpr const char kCheckpointBytes[] = "recovery.checkpoint_bytes";
inline constexpr const char kCheckpointTuples[] = "recovery.checkpoint_tuples";
/// Differential-compression accounting (common/delta_codec.h). Raw = the
/// serialized payload before the codec ran; stored/compressed = what was
/// actually kept or shipped after delta-encoding and the profitability
/// gate (equal to raw when the codec is off or never profitable).
inline constexpr const char kCheckpointRawBytes[] = "storage.ckpt_raw_bytes";
inline constexpr const char kCheckpointStoredBytes[] =
    "storage.ckpt_stored_bytes";
inline constexpr const char kRunRawBytes[] = "net.run_raw_bytes";
inline constexpr const char kRunCompressedBytes[] =
    "net.run_compressed_bytes";
/// Bytes moved while re-replicating checkpoints after a membership change
/// (kept separate from the steady-state checkpoint volume).
inline constexpr const char kRecoveryRefetchBytes[] =
    "recovery.refetch_bytes";
inline constexpr const char kSpillBytes[] = "storage.spill_bytes";
/// Per-message dispatch wall time on each worker (Timer).
inline constexpr const char kDispatchTimer[] = "worker.dispatch";
inline constexpr const char kMapInputRecords[] = "mr.map_input_records";
inline constexpr const char kReduceInputRecords[] = "mr.reduce_input_records";
inline constexpr const char kShuffleBytes[] = "mr.shuffle_bytes";
}  // namespace metrics

}  // namespace rex

#endif  // REX_COMMON_METRICS_H_
