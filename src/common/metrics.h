// Lightweight metrics: named atomic counters grouped into registries.
//
// Each worker node and the network layer own a MetricsRegistry; benches read
// them to report tuples processed, bytes shipped, strata executed, UDF
// invocations, checkpoint volume, etc. (these back Figure 11's bandwidth
// numbers and the Δ-set reporting for Figure 3).
#ifndef REX_COMMON_METRICS_H_
#define REX_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rex {

/// A monotonically increasing (or explicitly settable) 64-bit counter.
class Counter {
 public:
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Thread-safe name -> Counter map. Counter pointers remain valid for the
/// registry's lifetime, so hot paths can cache them.
class MetricsRegistry {
 public:
  /// Returns (creating if needed) the counter with the given name.
  Counter* GetCounter(const std::string& name);

  /// Current value, 0 if the counter does not exist.
  int64_t Value(const std::string& name) const;

  /// Snapshot of all counters, sorted by name.
  std::vector<std::pair<std::string, int64_t>> Snapshot() const;

  /// Resets every counter to zero (between benchmark runs).
  void Reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
};

/// Common counter names used across the engine.
namespace metrics {
inline constexpr const char kTuplesSent[] = "net.tuples_sent";
inline constexpr const char kBytesSent[] = "net.bytes_sent";
inline constexpr const char kMessagesSent[] = "net.messages_sent";
inline constexpr const char kTuplesProcessed[] = "exec.tuples_processed";
inline constexpr const char kUdfCalls[] = "exec.udf_calls";
inline constexpr const char kUdfCacheHits[] = "exec.udf_cache_hits";
inline constexpr const char kStrataExecuted[] = "exec.strata";
inline constexpr const char kDeltaTuples[] = "exec.delta_tuples";
inline constexpr const char kCheckpointBytes[] = "recovery.checkpoint_bytes";
inline constexpr const char kCheckpointTuples[] = "recovery.checkpoint_tuples";
/// Bytes moved while re-replicating checkpoints after a membership change
/// (kept separate from the steady-state checkpoint volume).
inline constexpr const char kRecoveryRefetchBytes[] =
    "recovery.refetch_bytes";
inline constexpr const char kSpillBytes[] = "storage.spill_bytes";
inline constexpr const char kMapInputRecords[] = "mr.map_input_records";
inline constexpr const char kReduceInputRecords[] = "mr.reduce_input_records";
inline constexpr const char kShuffleBytes[] = "mr.shuffle_bytes";
}  // namespace metrics

}  // namespace rex

#endif  // REX_COMMON_METRICS_H_
