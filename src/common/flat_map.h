// A minimal open-addressing hash map from pre-mixed 64-bit keys to values,
// specialized for the engine's keyed operator state (group-by groups, join
// buckets, fixpoint buckets):
//  - keys are already well-mixed hashes (no further hashing),
//  - no per-key erase (only whole-map Clear), so linear probing needs no
//    tombstones,
//  - values live contiguously in insertion order (cheap iteration at
//    stratum end),
//  - Clear() keeps capacity, so a stratum-scoped operator does not rebuild
//    its table every stratum.
// Roughly 2-4x faster than std::unordered_map on the engine's hot paths.
#ifndef REX_COMMON_FLAT_MAP_H_
#define REX_COMMON_FLAT_MAP_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace rex {

template <typename T>
class FlatMap64 {
 public:
  using Entry = std::pair<uint64_t, T>;

  /// Pointer to the value for `key`, or nullptr.
  T* Find(uint64_t key) {
    if (entries_.empty()) return nullptr;
    size_t i = static_cast<size_t>(key) & mask_;
    while (true) {
      int32_t slot = slots_[i];
      if (slot == kEmpty) return nullptr;
      Entry& e = entries_[static_cast<size_t>(slot)];
      if (e.first == key) return &e.second;
      i = (i + 1) & mask_;
    }
  }
  const T* Find(uint64_t key) const {
    return const_cast<FlatMap64*>(this)->Find(key);
  }

  /// Value for `key`, default-constructing it if absent.
  T& FindOrCreate(uint64_t key) {
    if (slots_.empty() ||
        (entries_.size() + 1) * 10 > slots_.size() * 7) {
      Grow();
    }
    size_t i = static_cast<size_t>(key) & mask_;
    while (true) {
      int32_t slot = slots_[i];
      if (slot == kEmpty) {
        slots_[i] = static_cast<int32_t>(entries_.size());
        entries_.emplace_back(key, T{});
        return entries_.back().second;
      }
      Entry& e = entries_[static_cast<size_t>(slot)];
      if (e.first == key) return e.second;
      i = (i + 1) & mask_;
    }
  }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Drops all entries but keeps the slot array's capacity.
  void Clear() {
    entries_.clear();
    std::fill(slots_.begin(), slots_.end(), kEmpty);
  }

  // Iterates entries in insertion order.
  auto begin() { return entries_.begin(); }
  auto end() { return entries_.end(); }
  auto begin() const { return entries_.begin(); }
  auto end() const { return entries_.end(); }

 private:
  static constexpr int32_t kEmpty = -1;

  void Grow() {
    size_t capacity = slots_.empty() ? 64 : slots_.size() * 2;
    slots_.assign(capacity, kEmpty);
    mask_ = capacity - 1;
    for (size_t n = 0; n < entries_.size(); ++n) {
      size_t i = static_cast<size_t>(entries_[n].first) & mask_;
      while (slots_[i] != kEmpty) i = (i + 1) & mask_;
      slots_[i] = static_cast<int32_t>(n);
    }
  }

  std::vector<int32_t> slots_;
  size_t mask_ = 0;
  std::vector<Entry> entries_;
};

}  // namespace rex

#endif  // REX_COMMON_FLAT_MAP_H_
