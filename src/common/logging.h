// Minimal leveled logging. Thread-safe; defaults to WARN so tests and
// benches stay quiet unless REX_LOG_LEVEL or SetLogLevel raises verbosity.
#ifndef REX_COMMON_LOGGING_H_
#define REX_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace rex {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Collects one log line and emits it (with level tag and timestamp) on
/// destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is disabled.
class NullLog {
 public:
  template <typename T>
  NullLog& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace rex

// Usage: REX_LOG(Info) << "loaded " << n << " tuples";
// The streamed expressions are not evaluated when the level is disabled.
#define REX_LOG(level)                                        \
  if (static_cast<int>(::rex::LogLevel::k##level) <           \
      static_cast<int>(::rex::GetLogLevel()))                 \
    ;                                                         \
  else                                                        \
    ::rex::internal::LogMessage(::rex::LogLevel::k##level, __FILE__, __LINE__)

#endif  // REX_COMMON_LOGGING_H_
