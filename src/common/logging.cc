#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace rex {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_log_mutex;

LogLevel InitialLevel() {
  const char* env = std::getenv("REX_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kWarn;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

struct LevelInit {
  LevelInit() { g_level.store(static_cast<int>(InitialLevel())); }
};
LevelInit g_level_init;

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << LevelTag(level) << "] " << (base ? base + 1 : file) << ":"
          << line << " ";
}

LogMessage::~LogMessage() {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
  (void)level_;
}

}  // namespace internal
}  // namespace rex
