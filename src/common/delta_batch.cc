#include "common/delta_batch.h"

namespace rex {

const char* BatchColTypeName(BatchColType t) {
  switch (t) {
    case BatchColType::kInt:
      return "INTEGER";
    case BatchColType::kDouble:
      return "DOUBLE";
    case BatchColType::kString:
      return "STRING";
  }
  return "?";
}

uint32_t StringPool::Intern(std::string_view s) {
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  const auto id = static_cast<uint32_t>(arena_.size());
  arena_.emplace_back(s);
  arena_bytes_ += s.size();
  // Hash exactly as Value::SlowHash does for strings.
  hashes_.push_back(HashBytes(arena_.back().data(), arena_.back().size()));
  // Key the index by a view into the arena copy (stable for the pool's
  // lifetime), not the caller's transient bytes.
  index_.emplace(std::string_view(arena_.back()), id);
  return id;
}

std::optional<DeltaBatch> DeltaBatch::FromDeltas(const DeltaVec& deltas) {
  if (deltas.empty()) return std::nullopt;
  const size_t arity = deltas.front().tuple.size();
  if (arity == 0) return std::nullopt;

  DeltaBatch batch;
  batch.columns_.resize(arity);
  for (size_t c = 0; c < arity; ++c) {
    switch (deltas.front().tuple.field(c).type()) {
      case ValueType::kInt:
        batch.columns_[c].type = BatchColType::kInt;
        batch.columns_[c].ints.reserve(deltas.size());
        break;
      case ValueType::kDouble:
        batch.columns_[c].type = BatchColType::kDouble;
        batch.columns_[c].doubles.reserve(deltas.size());
        break;
      case ValueType::kString:
        batch.columns_[c].type = BatchColType::kString;
        batch.columns_[c].str_ids.reserve(deltas.size());
        batch.string_cols_.push_back(c);
        break;
      default:  // null / bool / list: outside the fast-path domain
        return std::nullopt;
    }
    batch.row_fields_bytes_ +=
        batch.columns_[c].type == BatchColType::kString ? 5 : 9;
  }

  batch.ops_.reserve(deltas.size());
  batch.weights_.reserve(deltas.size());
  for (const Delta& d : deltas) {
    if (d.op != DeltaOp::kInsert && d.op != DeltaOp::kDelete &&
        d.op != DeltaOp::kUpdate) {
      return std::nullopt;
    }
    if (!d.old_tuple.empty()) return std::nullopt;
    if (d.weight == INT64_MIN) return std::nullopt;
    if (d.tuple.size() != arity) return std::nullopt;
    for (size_t c = 0; c < arity; ++c) {
      const Value& v = d.tuple.field(c);
      BatchColumn& col = batch.columns_[c];
      switch (col.type) {
        case BatchColType::kInt:
          if (v.type() != ValueType::kInt) return std::nullopt;
          col.ints.push_back(v.AsInt());
          break;
        case BatchColType::kDouble:
          if (v.type() != ValueType::kDouble) return std::nullopt;
          col.doubles.push_back(v.AsDouble());
          break;
        case BatchColType::kString:
          if (v.type() != ValueType::kString) return std::nullopt;
          col.str_ids.push_back(batch.pool_.Intern(v.AsString()));
          break;
      }
    }
    batch.ops_.push_back(d.op);
    batch.weights_.push_back(d.weight);
  }
  return batch;
}

DeltaVec DeltaBatch::ToDeltas() const {
  DeltaVec out;
  out.reserve(NumRows());
  for (size_t r = 0; r < NumRows(); ++r) out.push_back(MaterializeDelta(r));
  return out;
}

std::vector<BatchColType> DeltaBatch::ColumnTypes() const {
  std::vector<BatchColType> out;
  out.reserve(columns_.size());
  for (const BatchColumn& c : columns_) out.push_back(c.type);
  return out;
}

Tuple DeltaBatch::MaterializeRow(size_t row) const {
  std::vector<Value> fields;
  fields.reserve(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    fields.push_back(ValueAt(row, c));
  }
  return Tuple(std::move(fields));
}

Delta DeltaBatch::MaterializeDelta(size_t row) const {
  Delta d;
  d.op = ops_[row];
  d.tuple = MaterializeRow(row);
  d.weight = weights_[row];
  return d;
}

Value DeltaBatch::ValueAt(size_t row, size_t col) const {
  const BatchColumn& c = columns_[col];
  switch (c.type) {
    case BatchColType::kInt:
      return Value(c.ints[row]);
    case BatchColType::kDouble:
      return Value(c.doubles[row]);
    case BatchColType::kString:
      return Value(pool_.Get(c.str_ids[row]));
  }
  return Value();  // unreachable
}

bool DeltaBatch::CellEqualsValue(size_t row, size_t col,
                                 const Value& v) const {
  const BatchColumn& c = columns_[col];
  switch (c.type) {
    case BatchColType::kInt:
      if (v.type() == ValueType::kInt) return c.ints[row] == v.AsInt();
      if (v.type() == ValueType::kDouble) {
        // Cross-type numeric equality compares through doubles, exactly as
        // Value::MixedEquals does.
        return static_cast<double>(c.ints[row]) == v.AsDouble();
      }
      return false;
    case BatchColType::kDouble:
      if (v.type() == ValueType::kDouble) return c.doubles[row] == v.AsDouble();
      if (v.type() == ValueType::kInt) {
        return c.doubles[row] == static_cast<double>(v.AsInt());
      }
      return false;
    case BatchColType::kString:
      return v.type() == ValueType::kString &&
             pool_.Get(c.str_ids[row]) == v.AsString();
  }
  return false;  // unreachable
}

}  // namespace rex
