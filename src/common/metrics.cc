#include "common/metrics.h"

#include <algorithm>

namespace rex {

namespace {

int Log2Bucket(int64_t nanos) {
  if (nanos <= 1) return 0;
  int b = 0;
  uint64_t v = static_cast<uint64_t>(nanos);
  while (v > 1) {
    v >>= 1;
    ++b;
  }
  return std::min(b, Timer::kBuckets - 1);
}

/// Relaxed atomic min/max update (hot path: no ordering needed, snapshots
/// read while quiescent).
void AtomicMin(std::atomic<int64_t>* slot, int64_t v) {
  int64_t cur = slot->load(std::memory_order_relaxed);
  while (v < cur &&
         !slot->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<int64_t>* slot, int64_t v) {
  int64_t cur = slot->load(std::memory_order_relaxed);
  while (v > cur &&
         !slot->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Timer::Record(int64_t nanos) {
  if (nanos < 0) nanos = 0;
  const int64_t prior = count_.fetch_add(1, std::memory_order_relaxed);
  total_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  if (prior == 0) {
    // First sample seeds min (otherwise 0 would win every AtomicMin).
    min_nanos_.store(nanos, std::memory_order_relaxed);
  } else {
    AtomicMin(&min_nanos_, nanos);
  }
  AtomicMax(&max_nanos_, nanos);
  buckets_[Log2Bucket(nanos)].fetch_add(1, std::memory_order_relaxed);
}

TimerStats Timer::Snapshot() const {
  TimerStats out;
  out.count = count_.load(std::memory_order_relaxed);
  out.total_nanos = total_nanos_.load(std::memory_order_relaxed);
  out.min_nanos = out.count == 0
                      ? 0
                      : min_nanos_.load(std::memory_order_relaxed);
  out.max_nanos = max_nanos_.load(std::memory_order_relaxed);
  out.histogram.reserve(kBuckets);
  for (const auto& b : buckets_) {
    out.histogram.push_back(b.load(std::memory_order_relaxed));
  }
  return out;
}

void Timer::Reset() {
  count_.store(0, std::memory_order_relaxed);
  total_nanos_.store(0, std::memory_order_relaxed);
  min_nanos_.store(0, std::memory_order_relaxed);
  max_nanos_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Timer* MetricsRegistry::GetTimer(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = timers_[name];
  if (!slot) slot = std::make_unique<Timer>();
  return slot.get();
}

int64_t MetricsRegistry::Value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

TimerStats MetricsRegistry::TimerValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = timers_.find(name);
  return it == timers_.end() ? TimerStats{} : it->second->Snapshot();
}

std::vector<std::pair<std::string, int64_t>> MetricsRegistry::Snapshot()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->value());
  }
  return out;
}

std::vector<std::pair<std::string, TimerStats>>
MetricsRegistry::TimersSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, TimerStats>> out;
  out.reserve(timers_.size());
  for (const auto& [name, timer] : timers_) {
    out.emplace_back(name, timer->Snapshot());
  }
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Set(0);
  for (auto& [name, timer] : timers_) timer->Reset();
}

}  // namespace rex
