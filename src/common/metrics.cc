#include "common/metrics.h"

#include <algorithm>

namespace rex {

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

int64_t MetricsRegistry::Value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

std::vector<std::pair<std::string, int64_t>> MetricsRegistry::Snapshot()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->value());
  }
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Set(0);
}

}  // namespace rex
