#include "common/serde.h"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/delta_batch.h"
#include "common/logging.h"

namespace rex {

namespace {

/// Silent truncation guard: every length in the format is a u32, so a
/// string or collection larger than UINT32_MAX would serialize a wrapped
/// count and corrupt the stream undetectably. The writer API is void (it
/// feeds checkpoint and spill paths that cannot surface a Status), so this
/// fails loudly instead of writing garbage.
void CheckU32Len(size_t n, const char* what) {
  if (n > std::numeric_limits<uint32_t>::max()) {
    REX_LOG(Error) << "serde: " << what << " of size " << n
                   << " exceeds the u32 length limit; refusing to write a "
                      "corrupt stream";
    std::abort();
  }
}

/// Defense against corrupt checkpoints: a hostile u32 count may promise
/// far more elements than the buffer can hold. Every serialized element is
/// at least one byte, so `remaining` bounds any honest count.
size_t CappedReserve(uint32_t n, size_t remaining) {
  return std::min(static_cast<size_t>(n), remaining);
}

}  // namespace

void BufferWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
}

void BufferWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
}

void BufferWriter::PutDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void BufferWriter::PutString(const std::string& s) {
  CheckU32Len(s.size(), "string");
  PutU32(static_cast<uint32_t>(s.size()));
  bytes_.append(s);
}

void BufferWriter::PutValue(const Value& v) {
  PutU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      PutU8(v.AsBool() ? 1 : 0);
      break;
    case ValueType::kInt:
      PutI64(v.AsInt());
      break;
    case ValueType::kDouble:
      PutDouble(v.AsDouble());
      break;
    case ValueType::kString:
      PutString(v.AsString());
      break;
    case ValueType::kList: {
      const auto& items = v.AsList();
      CheckU32Len(items.size(), "list");
      PutU32(static_cast<uint32_t>(items.size()));
      for (const Value& item : items) PutValue(item);
      break;
    }
  }
}

void BufferWriter::PutTuple(const Tuple& t) {
  CheckU32Len(t.size(), "tuple");
  PutU32(static_cast<uint32_t>(t.size()));
  for (const Value& v : t.fields()) PutValue(v);
}

namespace {
// Presence flags in the high nibble of a serialized delta's leading byte;
// the low nibble is the DeltaOp.
constexpr uint8_t kDeltaOpMask = 0x0f;
constexpr uint8_t kDeltaHasWeight = 0x10;    // i64 weight follows (!= 1)
constexpr uint8_t kDeltaHasOldTuple = 0x20;  // old tuple follows (non-empty)
}  // namespace

void BufferWriter::PutDelta(const Delta& d) {
  uint8_t head = static_cast<uint8_t>(d.op);
  if (d.weight != 1) head |= kDeltaHasWeight;
  if (d.old_tuple.size() > 0) head |= kDeltaHasOldTuple;
  PutU8(head);
  if (d.weight != 1) PutI64(d.weight);
  PutTuple(d.tuple);
  if (d.old_tuple.size() > 0) PutTuple(d.old_tuple);
}

Status BufferReader::Need(size_t n) {
  if (pos_ + n > len_) {
    return Status::OutOfRange("truncated input: need " + std::to_string(n) +
                              " bytes at offset " + std::to_string(pos_) +
                              " of " + std::to_string(len_));
  }
  return Status::OK();
}

Result<uint8_t> BufferReader::GetU8() {
  REX_RETURN_NOT_OK(Need(1));
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint32_t> BufferReader::GetU32() {
  REX_RETURN_NOT_OK(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
  }
  return v;
}

Result<uint64_t> BufferReader::GetU64() {
  REX_RETURN_NOT_OK(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
  }
  return v;
}

Result<int64_t> BufferReader::GetI64() {
  REX_ASSIGN_OR_RETURN(uint64_t v, GetU64());
  return static_cast<int64_t>(v);
}

Result<double> BufferReader::GetDouble() {
  REX_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

Result<std::string> BufferReader::GetString() {
  REX_ASSIGN_OR_RETURN(uint32_t n, GetU32());
  REX_RETURN_NOT_OK(Need(n));
  std::string s(data_ + pos_, n);
  pos_ += n;
  return s;
}

Result<Value> BufferReader::GetValue() { return GetValueAtDepth(0); }

Result<Value> BufferReader::GetValueAtDepth(int depth) {
  if (depth > kMaxNestingDepth) {
    return Status::ParseError(
        "value nesting exceeds depth limit (corrupt buffer?)");
  }
  REX_ASSIGN_OR_RETURN(uint8_t tag, GetU8());
  if (tag > static_cast<uint8_t>(ValueType::kList)) {
    return Status::TypeError("bad value tag " + std::to_string(tag));
  }
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kBool: {
      REX_ASSIGN_OR_RETURN(uint8_t b, GetU8());
      return Value(b != 0);
    }
    case ValueType::kInt: {
      REX_ASSIGN_OR_RETURN(int64_t i, GetI64());
      return Value(i);
    }
    case ValueType::kDouble: {
      REX_ASSIGN_OR_RETURN(double d, GetDouble());
      return Value(d);
    }
    case ValueType::kString: {
      REX_ASSIGN_OR_RETURN(std::string s, GetString());
      return Value(std::move(s));
    }
    case ValueType::kList: {
      REX_ASSIGN_OR_RETURN(uint32_t n, GetU32());
      std::vector<Value> items;
      items.reserve(CappedReserve(n, remaining()));
      for (uint32_t i = 0; i < n; ++i) {
        REX_ASSIGN_OR_RETURN(Value v, GetValueAtDepth(depth + 1));
        items.push_back(std::move(v));
      }
      return Value::List(std::move(items));
    }
  }
  return Status::Internal("unreachable");
}

Result<Tuple> BufferReader::GetTuple() {
  REX_ASSIGN_OR_RETURN(uint32_t n, GetU32());
  std::vector<Value> fields;
  fields.reserve(CappedReserve(n, remaining()));
  for (uint32_t i = 0; i < n; ++i) {
    REX_ASSIGN_OR_RETURN(Value v, GetValue());
    fields.push_back(std::move(v));
  }
  return Tuple(std::move(fields));
}

Result<Delta> BufferReader::GetDelta() {
  REX_ASSIGN_OR_RETURN(uint8_t head, GetU8());
  const uint8_t op = head & kDeltaOpMask;
  const uint8_t flags = head & ~kDeltaOpMask;
  if (op > static_cast<uint8_t>(DeltaOp::kBatch)) {
    return Status::TypeError("bad delta op " + std::to_string(op));
  }
  if ((flags & ~(kDeltaHasWeight | kDeltaHasOldTuple)) != 0) {
    return Status::ParseError("bad delta flags " + std::to_string(flags));
  }
  Delta d;
  d.op = static_cast<DeltaOp>(op);
  if (flags & kDeltaHasWeight) {
    REX_ASSIGN_OR_RETURN(d.weight, GetI64());
    if (d.weight == INT64_MIN) {
      // INT64_MIN has no int64 negation; every weight-algebra path would
      // have to special-case it, so the wire rejects it at ingress.
      return Status::ParseError("delta weight INT64_MIN is not negatable");
    }
  }
  REX_ASSIGN_OR_RETURN(d.tuple, GetTuple());
  if (flags & kDeltaHasOldTuple) {
    REX_ASSIGN_OR_RETURN(d.old_tuple, GetTuple());
    if (d.old_tuple.size() == 0) {
      return Status::ParseError("delta old-tuple flag set but tuple empty");
    }
  }
  return d;
}

std::string SerializeTuple(const Tuple& t) {
  BufferWriter w;
  w.PutTuple(t);
  return w.TakeBytes();
}

Result<Tuple> DeserializeTuple(const std::string& bytes) {
  BufferReader r(bytes);
  REX_ASSIGN_OR_RETURN(Tuple t, r.GetTuple());
  if (!r.AtEnd()) return Status::ParseError("trailing bytes after tuple");
  return t;
}

std::string SerializeDelta(const Delta& d) {
  BufferWriter w;
  w.PutDelta(d);
  return w.TakeBytes();
}

Result<Delta> DeserializeDelta(const std::string& bytes) {
  BufferReader r(bytes);
  REX_ASSIGN_OR_RETURN(Delta d, r.GetDelta());
  if (!r.AtEnd()) return Status::ParseError("trailing bytes after delta");
  return d;
}

std::string SerializeTuples(const std::vector<Tuple>& tuples) {
  BufferWriter w;
  w.PutU32(static_cast<uint32_t>(tuples.size()));
  for (const Tuple& t : tuples) w.PutTuple(t);
  return w.TakeBytes();
}

Result<std::vector<Tuple>> DeserializeTuples(const std::string& bytes) {
  BufferReader r(bytes);
  REX_ASSIGN_OR_RETURN(uint32_t n, r.GetU32());
  std::vector<Tuple> out;
  out.reserve(std::min(static_cast<size_t>(n), r.remaining()));
  for (uint32_t i = 0; i < n; ++i) {
    REX_ASSIGN_OR_RETURN(Tuple t, r.GetTuple());
    out.push_back(std::move(t));
  }
  if (!r.AtEnd()) return Status::ParseError("trailing bytes after tuples");
  return out;
}

std::string SerializeDeltas(const DeltaVec& deltas) {
  BufferWriter w;
  w.PutU32(static_cast<uint32_t>(deltas.size()));
  for (const Delta& d : deltas) w.PutDelta(d);
  return w.TakeBytes();
}

Result<DeltaVec> DeserializeDeltas(const std::string& bytes) {
  BufferReader r(bytes);
  REX_ASSIGN_OR_RETURN(uint32_t n, r.GetU32());
  DeltaVec out;
  out.reserve(std::min(static_cast<size_t>(n), r.remaining()));
  for (uint32_t i = 0; i < n; ++i) {
    REX_ASSIGN_OR_RETURN(Delta d, r.GetDelta());
    out.push_back(std::move(d));
  }
  if (!r.AtEnd()) return Status::ParseError("trailing bytes after deltas");
  return out;
}

// ------------------------------------------------- columnar batch serde --
//
// Layout (all integers little-endian):
//   u32 num_rows, u32 num_cols
//   num_cols × u8 column type (BatchColType)
//   u32 pool size, then each distinct string (u32 length + bytes) in id
//     order — interning on read reassigns the same dense ids
//   num_rows × u8 op
//   u8 all_unit_weights flag; if 0, num_rows × i64 weight
//   per column, the raw payload: i64 / double(bits) / u32 string id per row

std::string SerializeDeltaBatch(const DeltaBatch& batch) {
  BufferWriter w;
  CheckU32Len(batch.NumRows(), "batch rows");
  CheckU32Len(batch.NumColumns(), "batch columns");
  const size_t rows = batch.NumRows();
  w.PutU32(static_cast<uint32_t>(rows));
  w.PutU32(static_cast<uint32_t>(batch.NumColumns()));
  for (const BatchColumn& c : batch.columns_) {
    w.PutU8(static_cast<uint8_t>(c.type));
  }
  const StringPool& pool = batch.pool_;
  CheckU32Len(pool.size(), "batch string pool");
  w.PutU32(static_cast<uint32_t>(pool.size()));
  for (uint32_t id = 0; id < pool.size(); ++id) w.PutString(pool.Get(id));
  for (DeltaOp op : batch.ops_) w.PutU8(static_cast<uint8_t>(op));
  bool all_unit = true;
  for (int64_t weight : batch.weights_) all_unit = all_unit && weight == 1;
  w.PutU8(all_unit ? 1 : 0);
  if (!all_unit) {
    for (int64_t weight : batch.weights_) w.PutI64(weight);
  }
  for (const BatchColumn& c : batch.columns_) {
    switch (c.type) {
      case BatchColType::kInt:
        for (int64_t v : c.ints) w.PutI64(v);
        break;
      case BatchColType::kDouble:
        for (double v : c.doubles) w.PutDouble(v);
        break;
      case BatchColType::kString:
        for (uint32_t id : c.str_ids) w.PutU32(id);
        break;
    }
  }
  return w.TakeBytes();
}

Result<DeltaBatch> DeserializeDeltaBatch(const std::string& bytes) {
  BufferReader r(bytes);
  REX_ASSIGN_OR_RETURN(uint32_t rows, r.GetU32());
  REX_ASSIGN_OR_RETURN(uint32_t cols, r.GetU32());
  if (rows == 0 || cols == 0) {
    // The batch domain requires >= 1 row of arity >= 1 (FromDeltas never
    // produces an empty batch).
    return Status::ParseError("batch with zero rows or columns");
  }
  DeltaBatch batch;
  batch.columns_.resize(cols);
  for (uint32_t c = 0; c < cols; ++c) {
    REX_ASSIGN_OR_RETURN(uint8_t tag, r.GetU8());
    if (tag > static_cast<uint8_t>(BatchColType::kString)) {
      return Status::TypeError("bad batch column type " + std::to_string(tag));
    }
    batch.columns_[c].type = static_cast<BatchColType>(tag);
    if (batch.columns_[c].type == BatchColType::kString) {
      batch.string_cols_.push_back(c);
      batch.row_fields_bytes_ += 5;
    } else {
      batch.row_fields_bytes_ += 9;
    }
  }
  REX_ASSIGN_OR_RETURN(uint32_t pool_size, r.GetU32());
  for (uint32_t id = 0; id < pool_size; ++id) {
    REX_ASSIGN_OR_RETURN(std::string s, r.GetString());
    if (batch.pool_.Intern(s) != id) {
      // A duplicate in the serialized pool would silently remap ids.
      return Status::ParseError("batch string pool has duplicate entries");
    }
  }
  batch.ops_.reserve(std::min<size_t>(rows, r.remaining()));
  for (uint32_t i = 0; i < rows; ++i) {
    REX_ASSIGN_OR_RETURN(uint8_t op, r.GetU8());
    if (op != static_cast<uint8_t>(DeltaOp::kInsert) &&
        op != static_cast<uint8_t>(DeltaOp::kDelete) &&
        op != static_cast<uint8_t>(DeltaOp::kUpdate)) {
      return Status::ParseError("batch op outside the fast-path domain: " +
                                std::to_string(op));
    }
    batch.ops_.push_back(static_cast<DeltaOp>(op));
  }
  REX_ASSIGN_OR_RETURN(uint8_t all_unit, r.GetU8());
  if (all_unit != 0) {
    batch.weights_.assign(rows, 1);
  } else {
    batch.weights_.reserve(std::min<size_t>(rows, r.remaining()));
    for (uint32_t i = 0; i < rows; ++i) {
      REX_ASSIGN_OR_RETURN(int64_t weight, r.GetI64());
      if (weight == INT64_MIN) {
        return Status::ParseError("batch weight INT64_MIN is not negatable");
      }
      batch.weights_.push_back(weight);
    }
  }
  for (uint32_t c = 0; c < cols; ++c) {
    BatchColumn& col = batch.columns_[c];
    switch (col.type) {
      case BatchColType::kInt:
        col.ints.reserve(std::min<size_t>(rows, r.remaining()));
        for (uint32_t i = 0; i < rows; ++i) {
          REX_ASSIGN_OR_RETURN(int64_t v, r.GetI64());
          col.ints.push_back(v);
        }
        break;
      case BatchColType::kDouble:
        col.doubles.reserve(std::min<size_t>(rows, r.remaining()));
        for (uint32_t i = 0; i < rows; ++i) {
          REX_ASSIGN_OR_RETURN(double v, r.GetDouble());
          col.doubles.push_back(v);
        }
        break;
      case BatchColType::kString:
        col.str_ids.reserve(std::min<size_t>(rows, r.remaining()));
        for (uint32_t i = 0; i < rows; ++i) {
          REX_ASSIGN_OR_RETURN(uint32_t id, r.GetU32());
          if (id >= batch.pool_.size()) {
            return Status::ParseError("batch string id " + std::to_string(id) +
                                      " outside pool of " +
                                      std::to_string(batch.pool_.size()));
          }
          col.str_ids.push_back(id);
        }
        break;
    }
  }
  if (!r.AtEnd()) return Status::ParseError("trailing bytes after batch");
  return batch;
}

}  // namespace rex
