// Tuples and schemas: the unit of data flowing between operators.
#ifndef REX_COMMON_TUPLE_H_
#define REX_COMMON_TUPLE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "common/value.h"

namespace rex {

/// A row: an ordered list of Values. Field meaning is positional; names and
/// types live in the accompanying Schema.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> fields) : fields_(std::move(fields)) {}
  Tuple(std::initializer_list<Value> fields) : fields_(fields) {}

  size_t size() const { return fields_.size(); }
  bool empty() const { return fields_.empty(); }

  const Value& field(size_t i) const { return fields_[i]; }
  Value& field(size_t i) { return fields_[i]; }
  const Value& operator[](size_t i) const { return fields_[i]; }
  Value& operator[](size_t i) { return fields_[i]; }

  const std::vector<Value>& fields() const { return fields_; }
  void Append(Value v) { fields_.push_back(std::move(v)); }

  /// Concatenation of this tuple's fields followed by `other`'s (join
  /// output construction).
  Tuple Concat(const Tuple& other) const;

  /// Projection onto the given field indexes, in order.
  Tuple Project(const std::vector<int>& indexes) const;

  uint64_t Hash() const;
  /// Hash over a subset of fields (grouping / partitioning keys).
  uint64_t HashFields(const std::vector<int>& indexes) const;

  bool operator==(const Tuple& other) const;
  bool operator!=(const Tuple& other) const { return !(*this == other); }
  /// Lexicographic order over fields (for sort-merge shuffle, tests).
  bool operator<(const Tuple& other) const;

  std::string ToString() const;

  /// Approximate wire size in bytes.
  size_t ByteSize() const;

 private:
  std::vector<Value> fields_;
};

/// Canonical partitioning hash over a tuple's key fields. Every placement
/// decision in the system — base-table partitioning, rehash routing,
/// checkpoint range ownership — MUST use this same function so that
/// co-partitioned state actually co-locates: a single-field key hashes to
/// exactly Value::Hash() of that field.
uint64_t PartitionHash(const Tuple& t, const std::vector<int>& key_fields);

/// One column of a Schema.
struct Field {
  std::string name;
  ValueType type = ValueType::kNull;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type;
  }
};

/// Ordered, named, typed description of a tuple layout.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}
  Schema(std::initializer_list<Field> fields) : fields_(fields) {}

  size_t size() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the column with the given name, or NotFound.
  Result<int> IndexOf(const std::string& name) const;
  bool Contains(const std::string& name) const;

  /// Schema for the concatenation of two tuples (join output); columns
  /// from `right` that collide by name get the `right_prefix` prepended.
  Schema Concat(const Schema& right,
                const std::string& right_prefix = "r.") const;

  Schema Project(const std::vector<int>& indexes) const;

  /// Verifies a tuple matches this schema's arity and types (Null allowed
  /// anywhere; int accepted where double is declared).
  Status Validate(const Tuple& t) const;

  std::string ToString() const;

  bool operator==(const Schema& other) const {
    return fields_ == other.fields_;
  }

 private:
  std::vector<Field> fields_;
};

}  // namespace rex

#endif  // REX_COMMON_TUPLE_H_
