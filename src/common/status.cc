#include "common/status.h"

namespace rex {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kNetworkError:
      return "NetworkError";
    case StatusCode::kNodeFailure:
      return "NodeFailure";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace rex
