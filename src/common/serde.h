// Binary serialization for values, tuples, and deltas.
//
// Used for spill files, checkpoint replication, and (optionally) to encode
// network batches so the byte meter reflects true wire sizes. The format is
// a simple self-describing tag-length encoding; little-endian fixed-width
// integers.
#ifndef REX_COMMON_SERDE_H_
#define REX_COMMON_SERDE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/delta.h"
#include "common/status.h"
#include "common/tuple.h"
#include "common/value.h"

namespace rex {

/// Growable output byte buffer.
class BufferWriter {
 public:
  void PutU8(uint8_t v) { bytes_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutDouble(double v);
  void PutString(const std::string& s);

  void PutValue(const Value& v);
  void PutTuple(const Tuple& t);
  /// Encodes a full delta: annotation, ℤ-set weight, tuple, and (for
  /// kReplace) the old tuple. The leading byte packs the op in the low
  /// nibble and presence flags in the high nibble, so the common case
  /// (weight 1, no old tuple) costs exactly one byte plus the tuple.
  void PutDelta(const Delta& d);

  const std::string& bytes() const { return bytes_; }
  std::string TakeBytes() { return std::move(bytes_); }
  size_t size() const { return bytes_.size(); }

 private:
  std::string bytes_;
};

/// Sequential reader over a serialized byte range. All getters return
/// OutOfRange on truncated input and TypeError on tag mismatches, so
/// corrupted checkpoints are detected rather than misread.
class BufferReader {
 public:
  BufferReader(const char* data, size_t len) : data_(data), len_(len) {}
  explicit BufferReader(const std::string& s)
      : BufferReader(s.data(), s.size()) {}

  Result<uint8_t> GetU8();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<int64_t> GetI64();
  Result<double> GetDouble();
  Result<std::string> GetString();

  Result<Value> GetValue();
  Result<Tuple> GetTuple();
  Result<Delta> GetDelta();

  size_t remaining() const { return len_ - pos_; }
  bool AtEnd() const { return pos_ == len_; }

  /// Deepest legal list nesting. Honest writers never come close (plans
  /// use flat values and one level of batch-payload lists); a corrupt
  /// buffer that nests deeper fails with ParseError instead of
  /// overflowing the stack.
  static constexpr int kMaxNestingDepth = 32;

 private:
  Status Need(size_t n);
  Result<Value> GetValueAtDepth(int depth);

  const char* data_;
  size_t len_;
  size_t pos_ = 0;
};

/// Round-trip helpers.
std::string SerializeTuple(const Tuple& t);
Result<Tuple> DeserializeTuple(const std::string& bytes);

std::string SerializeDelta(const Delta& d);
Result<Delta> DeserializeDelta(const std::string& bytes);

/// Serializes a vector of tuples with a count prefix.
std::string SerializeTuples(const std::vector<Tuple>& tuples);
Result<std::vector<Tuple>> DeserializeTuples(const std::string& bytes);

/// Serializes a delta batch with a count prefix (the wire-run payload the
/// differential codec compresses; also how network byte metering sees the
/// true encoded size of a run).
std::string SerializeDeltas(const DeltaVec& deltas);
Result<DeltaVec> DeserializeDeltas(const std::string& bytes);

}  // namespace rex

#endif  // REX_COMMON_SERDE_H_
