// Rolling-hash differential compression for self-similar byte payloads
// (the `onepass` scheme: O(n) encode time with a fixed-size fingerprint
// table, plus an in-place reconstruction path).
//
// Successive checkpoint epochs and coalesced rehash runs are highly
// self-similar — DBSP-style ℤ-set streams touch overlapping key ranges
// epoch after epoch — so each payload is encoded as a binary delta against
// its predecessor: a Karp-Rabin window (Mersenne prime 2^61−1, base 263)
// slides over the new payload, matches against fingerprints of the
// reference payload, and emits COPY(offset, len) ops where the reference
// already holds the bytes and ADD(literal) ops for novel bytes.
//
// Encoded stream layout (little-endian fixed-width integers):
//
//   magic u8 (0xD5) | version u8 (1) | target_size u32 | ref_size u32
//   ops*:  0x01 COPY  offset u32, len u32   (len >= 1, offset+len <= ref)
//          0x02 ADD   len u32, bytes[len]   (len >= 1)
//   end:   0x00 END                          (no trailing bytes allowed)
//
// The decoder treats the stream as hostile: magic/version/tag fuzz,
// truncation, COPY ranges outside the reference, and output overflowing
// the header's target_size (or the caller's cap) are all rejected with an
// error instead of being misread — the same posture as the serde guards.
#ifndef REX_COMMON_DELTA_CODEC_H_
#define REX_COMMON_DELTA_CODEC_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace rex {

/// Encodes `target` as a differential against `ref`. Always succeeds; when
/// the payloads share nothing the result is one ADD op (slightly larger
/// than `target`), so callers keep a byte-profitability gate: ship/store
/// the delta only if it is strictly smaller than the raw payload.
std::string DeltaCodecEncode(const std::string& ref,
                             const std::string& target);

/// Reconstructs the target from `ref` + `delta`. `max_output` caps the
/// decoded size (a hostile header cannot make us allocate unbounded
/// memory). Fails with ParseError/OutOfRange/InvalidArgument on any
/// malformed or mismatched input; on success the result is bit-identical
/// to the original target.
Result<std::string> DeltaCodecDecode(const std::string& ref,
                                     const std::string& delta,
                                     size_t max_output);

/// In-place reconstruction: `*buf` holds the reference on entry and the
/// target on exit, so chained recovery rebuilds state without holding two
/// full payloads. Extra memory is bounded by the bytes that genuinely
/// conflict (COPY sources already overwritten by earlier ops), which for
/// append-mostly checkpoint streams is far below the payload size. On
/// error `*buf` is left unchanged (ops are fully validated before any
/// byte is written).
Status DeltaCodecDecodeInPlace(std::string* buf, const std::string& delta,
                               size_t max_output);

/// True if `delta` begins with the codec's magic/version bytes (cheap
/// format sniff for storage paths that hold both raw and encoded
/// payloads).
bool DeltaCodecLooksEncoded(const std::string& delta);

}  // namespace rex

#endif  // REX_COMMON_DELTA_CODEC_H_
