// Hashing primitives shared by value hashing, partitioning, and the
// consistent-hash ring.
#ifndef REX_COMMON_HASH_H_
#define REX_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace rex {

/// SplitMix64 finalizer; a strong 64-bit integer mixer.
inline uint64_t HashMix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a over a byte range, finalized through HashMix.
inline uint64_t HashBytes(const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return HashMix(h);
}

/// Order-dependent combination of two hashes.
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return HashMix(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

}  // namespace rex

#endif  // REX_COMMON_HASH_H_
