// Status / Result<T> error-handling primitives.
//
// REX core code does not throw exceptions across module boundaries; fallible
// functions return Status (no payload) or Result<T> (payload or error), in
// the style of Arrow / RocksDB.
#ifndef REX_COMMON_STATUS_H_
#define REX_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace rex {

/// Error taxonomy for the whole system.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kTypeError,
  kParseError,
  kIoError,
  kNetworkError,
  kNodeFailure,
  kUnsupported,
  kInternal,
  /// Stored bytes failed an integrity check and no valid copy remains
  /// (checkpoint corruption that replica repair could not mask).
  kDataLoss,
  /// The operation is valid in principle but the target is in a state that
  /// forbids it (e.g. a resident plan poisoned by a half-applied update).
  kFailedPrecondition,
  /// A quota or capacity limit was hit (e.g. serving-session admission cap,
  /// subscriber backlog shed).
  kResourceExhausted,
};

/// Returns a human-readable name for a StatusCode ("OK", "TypeError", ...).
const char* StatusCodeName(StatusCode code);

/// Outcome of a fallible operation: a code plus an optional message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy in the OK
/// case (empty message string).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NetworkError(std::string msg) {
    return Status(StatusCode::kNetworkError, std::move(msg));
  }
  static Status NodeFailure(std::string msg) {
    return Status(StatusCode::kNodeFailure, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// A value of type T or an error Status.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): ergonomic returns.
  Result(T value) : var_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : var_(std::move(status)) {
    assert(!std::get<Status>(var_).ok() && "Result from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(var_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(var_);
  }

  /// Precondition: ok().
  T& value() & {
    assert(ok());
    return std::get<T>(var_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(var_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(var_));
  }

  T value_or(T fallback) const {
    return ok() ? std::get<T>(var_) : std::move(fallback);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> var_;
};

}  // namespace rex

/// Propagates a non-OK Status to the caller.
#define REX_RETURN_NOT_OK(expr)                \
  do {                                         \
    ::rex::Status _st = (expr);                \
    if (!_st.ok()) return _st;                 \
  } while (0)

#define REX_CONCAT_IMPL(x, y) x##y
#define REX_CONCAT(x, y) REX_CONCAT_IMPL(x, y)

/// Evaluates a Result<T> expression; on error propagates the Status,
/// otherwise moves the value into `lhs` (which may be a declaration).
#define REX_ASSIGN_OR_RETURN(lhs, expr)                          \
  auto REX_CONCAT(_res_, __LINE__) = (expr);                     \
  if (!REX_CONCAT(_res_, __LINE__).ok())                         \
    return REX_CONCAT(_res_, __LINE__).status();                 \
  lhs = std::move(REX_CONCAT(_res_, __LINE__)).value()

#endif  // REX_COMMON_STATUS_H_
