#include "common/value.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <sstream>

#include "common/hash.h"

namespace rex {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return "BOOLEAN";
    case ValueType::kInt:
      return "INTEGER";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
    case ValueType::kList:
      return "LIST";
  }
  return "UNKNOWN";
}

Result<ValueType> ValueTypeFromName(const std::string& name) {
  std::string lower(name.size(), '\0');
  std::transform(name.begin(), name.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "integer" || lower == "int" || lower == "long") {
    return ValueType::kInt;
  }
  if (lower == "double" || lower == "float" || lower == "real") {
    return ValueType::kDouble;
  }
  if (lower == "boolean" || lower == "bool") return ValueType::kBool;
  if (lower == "string" || lower == "varchar" || lower == "text") {
    return ValueType::kString;
  }
  if (lower == "list" || lower == "bag") return ValueType::kList;
  if (lower == "null") return ValueType::kNull;
  return Status::TypeError("unknown type name: " + name);
}

Result<double> Value::ToDouble() const {
  switch (type()) {
    case ValueType::kInt:
      return static_cast<double>(AsInt());
    case ValueType::kDouble:
      return AsDouble();
    case ValueType::kBool:
      return AsBool() ? 1.0 : 0.0;
    default:
      return Status::TypeError(std::string("cannot convert ") +
                               ValueTypeName(type()) + " to DOUBLE");
  }
}

Result<int64_t> Value::ToInt() const {
  switch (type()) {
    case ValueType::kInt:
      return AsInt();
    case ValueType::kDouble: {
      const double d = AsDouble();
      // Guard the cast: converting NaN, ±inf, or a double outside
      // [-2^63, 2^63) to int64 is undefined behavior. 2^63-1 is not
      // exactly representable as a double, so compare against the exact
      // power-of-two bounds (-2^63 itself converts fine).
      if (!std::isfinite(d) || d < -9223372036854775808.0 ||
          d >= 9223372036854775808.0) {
        return Status::TypeError("DOUBLE value " + std::to_string(d) +
                                 " is not representable as INTEGER");
      }
      return static_cast<int64_t>(d);
    }
    case ValueType::kBool:
      return static_cast<int64_t>(AsBool());
    default:
      return Status::TypeError(std::string("cannot convert ") +
                               ValueTypeName(type()) + " to INTEGER");
  }
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return AsBool() ? "true" : "false";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      std::ostringstream os;
      os << AsDouble();
      return os.str();
    }
    case ValueType::kString:
      return "'" + AsString() + "'";
    case ValueType::kList: {
      std::string out = "[";
      bool first = true;
      for (const Value& v : AsList()) {
        if (!first) out += ", ";
        first = false;
        out += v.ToString();
      }
      out += "]";
      return out;
    }
  }
  return "?";
}

namespace {

bool IsNumeric(ValueType t) {
  return t == ValueType::kInt || t == ValueType::kDouble;
}

double NumericOf(const Value& v) {
  return v.type() == ValueType::kInt ? static_cast<double>(v.AsInt())
                                     : v.AsDouble();
}

}  // namespace

bool Value::SlowEquals(const Value& other) const {
  switch (type()) {
    case ValueType::kString:
      return AsString() == other.AsString();
    case ValueType::kList: {
      const auto& a = AsList();
      const auto& b = other.AsList();
      return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
    }
    default:
      return false;
  }
}

bool Value::MixedEquals(const Value& other) const {
  if (IsNumeric(type()) && IsNumeric(other.type())) {
    return NumericOf(*this) == NumericOf(other);
  }
  return false;
}

bool Value::operator<(const Value& other) const {
  if (IsNumeric(type()) && IsNumeric(other.type())) {
    return NumericOf(*this) < NumericOf(other);
  }
  if (type() != other.type()) {
    return static_cast<int>(type()) < static_cast<int>(other.type());
  }
  switch (type()) {
    case ValueType::kNull:
      return false;
    case ValueType::kBool:
      return AsBool() < other.AsBool();
    case ValueType::kInt:
      return AsInt() < other.AsInt();
    case ValueType::kDouble:
      return AsDouble() < other.AsDouble();
    case ValueType::kString:
      return AsString() < other.AsString();
    case ValueType::kList: {
      const auto& a = AsList();
      const auto& b = other.AsList();
      return std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                          b.end());
    }
  }
  return false;
}

uint64_t Value::SlowHash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueType::kBool:
      return HashMix(AsBool() ? 1 : 2);
    case ValueType::kString:
      return HashBytes(AsString().data(), AsString().size());
    case ValueType::kList: {
      uint64_t h = 0x51ed270b8d6a68bbULL;
      for (const Value& v : AsList()) h = HashCombine(h, v.Hash());
      return h;
    }
    default:
      return 0;
  }
}

size_t Value::ByteSize() const {
  switch (type()) {
    case ValueType::kNull:
      return 1;
    case ValueType::kBool:
      return 2;
    case ValueType::kInt:
    case ValueType::kDouble:
      return 9;
    case ValueType::kString:
      return 5 + AsString().size();
    case ValueType::kList: {
      size_t n = 5;
      for (const Value& v : AsList()) n += v.ByteSize();
      return n;
    }
  }
  return 1;
}

}  // namespace rex
