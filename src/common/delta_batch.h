// Columnar delta batches: the vectorized fast-path representation of a
// DeltaVec.
//
// The per-tuple Value/Tuple model — one heap vector of variant Values per
// delta, re-hashed and re-copied at every operator boundary — is the
// throughput ceiling for the fig6/fig7 iterative workloads. DBSP's ℤ-set
// formulation is representation-agnostic, so the data plane underneath the
// weighted delta algebra can be swapped without touching coalescing
// semantics: a DeltaBatch stores the same deltas as parallel typed columns
// (int64/double/interned-string arrays), a parallel op column and weight
// column, with no per-row allocation and no variant dispatch on the hot
// loops.
//
// The scalar Delta/Tuple interface remains the slow-path boundary:
// operators convert at the edges with FromDeltas (which refuses anything
// outside the fast-path domain, signalling scalar fallback) and convert
// back with ToDeltas/MaterializeRow. The fast-path domain is deliberately
// null-free and replace-free:
//   - ops are kInsert / kDelete / kUpdate only (no kReplace, no kBatch),
//   - old_tuple is empty on every row,
//   - all rows have the same arity >= 1,
//   - each column is uniformly int, double, or string (no nulls, bools,
//     lists, or mixed numeric columns),
//   - no weight is INT64_MIN (the ℤ-set ingress already rejects it).
// Everything else round-trips through the existing scalar code paths, so
// the columnar plane can never change observable behavior — only speed.
#ifndef REX_COMMON_DELTA_BATCH_H_
#define REX_COMMON_DELTA_BATCH_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/delta.h"
#include "common/hash.h"
#include "common/status.h"
#include "common/tuple.h"
#include "common/value.h"

namespace rex {

class DeltaBatch;

/// Columnar wire encoding (common/serde.cc): schema header, interned
/// string pool, op/weight vectors, then raw column arrays. Groundwork for
/// batch-at-a-time network messages; checkpoints and the live wire still
/// use the per-delta encoding.
std::string SerializeDeltaBatch(const DeltaBatch& batch);
Result<DeltaBatch> DeserializeDeltaBatch(const std::string& bytes);

/// Column type in the columnar fast-path domain.
enum class BatchColType : uint8_t { kInt = 0, kDouble = 1, kString = 2 };

const char* BatchColTypeName(BatchColType t);

/// Interned string storage for a batch's string columns. Each distinct
/// string is stored once in an arena of stable pages; rows refer to it by
/// dense id. The pool also caches each string's Value::Hash so hot loops
/// (partitioning, key probes) hash a string column once per *distinct*
/// string instead of once per row.
///
/// Ownership: the pool owns its bytes for the lifetime of the batch; ids
/// and the string_views handed out stay valid until the pool is destroyed
/// (std::deque never relocates existing pages). Materializing a Tuple
/// copies the bytes out, so scalar consumers never alias the arena.
class StringPool {
 public:
  /// Returns the id for `s`, interning it on first sight.
  uint32_t Intern(std::string_view s);

  const std::string& Get(uint32_t id) const { return arena_[id]; }
  /// Value::Hash of the interned string (precomputed at Intern time).
  uint64_t HashOf(uint32_t id) const { return hashes_[id]; }
  /// Number of distinct strings interned.
  size_t size() const { return arena_.size(); }
  /// Total bytes of string payload held by the arena.
  size_t arena_bytes() const { return arena_bytes_; }

 private:
  std::deque<std::string> arena_;  // stable addresses: safe to view into
  std::vector<uint64_t> hashes_;
  std::unordered_map<std::string_view, uint32_t> index_;
  size_t arena_bytes_ = 0;
};

/// One typed column: exactly one of the payload vectors is populated,
/// matching `type`, with one entry per batch row.
struct BatchColumn {
  BatchColType type = BatchColType::kInt;
  std::vector<int64_t> ints;
  std::vector<double> doubles;
  std::vector<uint32_t> str_ids;  // indexes into the batch's StringPool
};

/// A schema-typed columnar batch of deltas. Parallel arrays: row i is
/// (ops[i], weights[i], columns[0..arity)[i]).
class DeltaBatch {
 public:
  /// Converts a DeltaVec into columnar form, or nullopt if any delta falls
  /// outside the fast-path domain (see file comment) — the caller then
  /// takes the scalar path. Never partially converts.
  static std::optional<DeltaBatch> FromDeltas(const DeltaVec& deltas);

  /// Exact inverse of FromDeltas: rebuilds the original DeltaVec
  /// (bit-identical ops, weights, and field values).
  DeltaVec ToDeltas() const;

  size_t NumRows() const { return ops_.size(); }
  size_t NumColumns() const { return columns_.size(); }

  DeltaOp op(size_t row) const { return ops_[row]; }
  int64_t weight(size_t row) const { return weights_[row]; }
  const std::vector<DeltaOp>& ops() const { return ops_; }
  const std::vector<int64_t>& weights() const { return weights_; }
  const BatchColumn& column(size_t c) const { return columns_[c]; }
  const StringPool& pool() const { return pool_; }

  /// The column types, in field order (the batch's schema).
  std::vector<BatchColType> ColumnTypes() const;

  /// Rebuilds one row as a scalar Tuple (copies string bytes out of the
  /// arena).
  Tuple MaterializeRow(size_t row) const;
  /// Rebuilds one row as a scalar Delta.
  Delta MaterializeDelta(size_t row) const;
  /// Boxes a single cell as a Value.
  Value ValueAt(size_t row, size_t col) const;

  /// Value::Hash of cell (row, col) — bit-identical to
  /// MaterializeRow(row).field(col).Hash(). Ints hash through their double
  /// representation, doubles normalize -0.0, strings use the pool's
  /// precomputed hash.
  uint64_t HashValueAt(size_t row, size_t col) const {
    const BatchColumn& c = columns_[col];
    switch (c.type) {
      case BatchColType::kInt:
        return HashDoubleBits(static_cast<double>(c.ints[row]));
      case BatchColType::kDouble: {
        double d = c.doubles[row];
        if (d == 0.0) d = 0.0;  // normalize -0.0
        return HashDoubleBits(d);
      }
      case BatchColType::kString:
        return pool_.HashOf(c.str_ids[row]);
    }
    return 0;  // unreachable
  }

  /// Value equality of two cells in the same column — bit-identical to
  /// Value::operator== on the materialized fields. Within a column the
  /// types match, so int==int, double==double (plain ==: NaN != NaN, and
  /// -0.0 == 0.0, exactly like the scalar path), string ids compare by id
  /// (interning makes id equality iff byte equality).
  bool CellsEqual(size_t row_a, size_t row_b, size_t col) const {
    const BatchColumn& c = columns_[col];
    switch (c.type) {
      case BatchColType::kInt:
        return c.ints[row_a] == c.ints[row_b];
      case BatchColType::kDouble:
        return c.doubles[row_a] == c.doubles[row_b];
      case BatchColType::kString:
        return c.str_ids[row_a] == c.str_ids[row_b];
    }
    return false;  // unreachable
  }

  /// Equality of two rows over a subset of fields (Tuple::operator== on
  /// the projections).
  bool RowsEqualOnFields(size_t row_a, size_t row_b,
                         const std::vector<int>& fields) const {
    for (int f : fields) {
      if (!CellsEqual(row_a, row_b, static_cast<size_t>(f))) return false;
    }
    return true;
  }

  /// Full-row equality (Tuple::operator== on the materialized rows).
  bool RowsEqual(size_t row_a, size_t row_b) const {
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (!CellsEqual(row_a, row_b, c)) return false;
    }
    return true;
  }

  /// Equality of cell (row, col) against an arbitrary scalar Value,
  /// matching Value::operator== (including cross-type numeric compare —
  /// keyed state built from an int column may later be probed by a double
  /// column).
  bool CellEqualsValue(size_t row, size_t col, const Value& v) const;

  /// PartitionHash of the row over `key_fields` — bit-identical to
  /// PartitionHash(MaterializeRow(row), key_fields).
  uint64_t PartitionHashRow(size_t row,
                            const std::vector<int>& key_fields) const {
    if (key_fields.size() == 1) {
      return HashValueAt(row, static_cast<size_t>(key_fields[0]));
    }
    uint64_t h = 0x2545f4914f6cdd1dULL;  // Tuple::HashFields seed
    for (int f : key_fields) {
      h = HashCombine(h, HashValueAt(row, static_cast<size_t>(f)));
    }
    return h;
  }

  /// Keyed-state hash of the row: `seed` folded with each key field's
  /// value hash — bit-identical to the group-by / join / fixpoint key
  /// hash loops. An empty key list hashes all fields (whole-tuple key).
  uint64_t SeededKeyHashRow(size_t row, uint64_t seed,
                            const std::vector<int>& key_fields) const {
    uint64_t h = seed;
    if (key_fields.empty()) {
      for (size_t c = 0; c < columns_.size(); ++c) {
        h = HashCombine(h, HashValueAt(row, c));
      }
      return h;
    }
    for (int f : key_fields) {
      h = HashCombine(h, HashValueAt(row, static_cast<size_t>(f)));
    }
    return h;
  }

  /// Delta::ByteSize() of the row — bit-identical to
  /// MaterializeDelta(row).ByteSize() (old_tuple is always empty in the
  /// batch domain).
  size_t RowByteSize(size_t row) const {
    // op byte + tuple (4 + per-field) + empty old_tuple (4) + weight.
    size_t n = 1 + 4 + row_fields_bytes_ + 4;
    for (size_t c = 0; c < string_cols_.size(); ++c) {
      n += pool_.Get(columns_[string_cols_[c]].str_ids[row]).size();
    }
    if (weights_[row] != 1) n += 8;
    return n;
  }

  /// True when every key field index is a valid column (the precondition
  /// for the keyed fast paths; out-of-range keys fall back to scalar).
  bool KeyFieldsInRange(const std::vector<int>& key_fields) const {
    for (int f : key_fields) {
      if (f < 0 || static_cast<size_t>(f) >= columns_.size()) return false;
    }
    return true;
  }

 private:
  friend std::string SerializeDeltaBatch(const DeltaBatch& batch);
  friend Result<DeltaBatch> DeserializeDeltaBatch(const std::string& bytes);

  static uint64_t HashDoubleBits(double d) {
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    return HashMix(bits);
  }

  std::vector<DeltaOp> ops_;
  std::vector<int64_t> weights_;
  std::vector<BatchColumn> columns_;
  std::vector<size_t> string_cols_;  // indexes of kString columns
  /// Per-row fixed byte cost of the non-string fields (int/double = 9,
  /// string = 5 + len with len added per row in RowByteSize).
  size_t row_fields_bytes_ = 0;
  StringPool pool_;
};

}  // namespace rex

#endif  // REX_COMMON_DELTA_BATCH_H_
