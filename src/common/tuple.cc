#include "common/tuple.h"

#include <algorithm>

namespace rex {

Tuple Tuple::Concat(const Tuple& other) const {
  std::vector<Value> out;
  out.reserve(fields_.size() + other.fields_.size());
  out.insert(out.end(), fields_.begin(), fields_.end());
  out.insert(out.end(), other.fields_.begin(), other.fields_.end());
  return Tuple(std::move(out));
}

Tuple Tuple::Project(const std::vector<int>& indexes) const {
  std::vector<Value> out;
  out.reserve(indexes.size());
  for (int i : indexes) out.push_back(fields_[static_cast<size_t>(i)]);
  return Tuple(std::move(out));
}

uint64_t Tuple::Hash() const {
  uint64_t h = 0x2545f4914f6cdd1dULL;
  for (const Value& v : fields_) h = HashCombine(h, v.Hash());
  return h;
}

uint64_t Tuple::HashFields(const std::vector<int>& indexes) const {
  uint64_t h = 0x2545f4914f6cdd1dULL;
  for (int i : indexes) {
    h = HashCombine(h, fields_[static_cast<size_t>(i)].Hash());
  }
  return h;
}

bool Tuple::operator==(const Tuple& other) const {
  return fields_.size() == other.fields_.size() &&
         std::equal(fields_.begin(), fields_.end(), other.fields_.begin());
}

bool Tuple::operator<(const Tuple& other) const {
  return std::lexicographical_compare(fields_.begin(), fields_.end(),
                                      other.fields_.begin(),
                                      other.fields_.end());
}

std::string Tuple::ToString() const {
  std::string out = "(";
  bool first = true;
  for (const Value& v : fields_) {
    if (!first) out += ", ";
    first = false;
    out += v.ToString();
  }
  out += ")";
  return out;
}

size_t Tuple::ByteSize() const {
  size_t n = 4;
  for (const Value& v : fields_) n += v.ByteSize();
  return n;
}

uint64_t PartitionHash(const Tuple& t, const std::vector<int>& key_fields) {
  if (key_fields.size() == 1) {
    return t.field(static_cast<size_t>(key_fields[0])).Hash();
  }
  return t.HashFields(key_fields);
}

Result<int> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return Status::NotFound("no column named '" + name + "' in schema " +
                          ToString());
}

bool Schema::Contains(const std::string& name) const {
  return IndexOf(name).ok();
}

Schema Schema::Concat(const Schema& right,
                      const std::string& right_prefix) const {
  std::vector<Field> out = fields_;
  out.reserve(fields_.size() + right.size());
  for (const Field& f : right.fields()) {
    Field g = f;
    if (Contains(g.name)) g.name = right_prefix + g.name;
    out.push_back(std::move(g));
  }
  return Schema(std::move(out));
}

Schema Schema::Project(const std::vector<int>& indexes) const {
  std::vector<Field> out;
  out.reserve(indexes.size());
  for (int i : indexes) out.push_back(fields_[static_cast<size_t>(i)]);
  return Schema(std::move(out));
}

Status Schema::Validate(const Tuple& t) const {
  if (t.size() != fields_.size()) {
    return Status::TypeError("tuple arity " + std::to_string(t.size()) +
                             " does not match schema " + ToString());
  }
  for (size_t i = 0; i < fields_.size(); ++i) {
    const Value& v = t.field(i);
    if (v.is_null()) continue;
    if (v.type() == fields_[i].type) continue;
    if (fields_[i].type == ValueType::kDouble &&
        v.type() == ValueType::kInt) {
      continue;  // implicit numeric widening
    }
    return Status::TypeError("field '" + fields_[i].name + "' expects " +
                             ValueTypeName(fields_[i].type) + ", got " +
                             ValueTypeName(v.type()));
  }
  return Status::OK();
}

std::string Schema::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const Field& f : fields_) {
    if (!first) out += ", ";
    first = false;
    out += f.name;
    out += ":";
    out += ValueTypeName(f.type);
  }
  out += "}";
  return out;
}

}  // namespace rex
