// Deltas: annotated tuples, the unit of incremental computation in REX.
//
// Definition 1 of the paper: a delta is a pair (α, t) where t is a tuple and
// α is one of
//   +()      insert t into operator state
//   -()      delete t from operator state
//   ->(t')   t replaces existing tuple t'
//   δ(E)     an arbitrary programmable update, interpreted by user-defined
//            delta handlers in downstream stateful operators
//
// Stateless operators propagate annotations unchanged; stateful operators
// (join, group-by, while/fixpoint) revise their internal state per the rules
// in §3.3 or via the four delta-handler hooks (see exec/uda.h).
#ifndef REX_COMMON_DELTA_H_
#define REX_COMMON_DELTA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/tuple.h"

namespace rex {

/// The annotation α of Definition 1, plus one wire-only pseudo-annotation.
enum class DeltaOp : uint8_t {
  kInsert = 0,   // +()
  kDelete = 1,   // -()
  kReplace = 2,  // ->(t')
  kUpdate = 3,   // δ(E)
  /// Wire-format run of same-key +()/δ() deltas packed by the coalescer
  /// (exec/coalesce.h): the key is carried once, the per-key payload
  /// sequence rides in a list field. Exists only between a RehashOp
  /// sender's FlushTo and the receiving RehashOp's network port, which
  /// expands it back before pushing downstream — no other operator ever
  /// sees it.
  kBatch = 4,
};

const char* DeltaOpName(DeltaOp op);

/// An annotated tuple.
struct Delta {
  DeltaOp op = DeltaOp::kInsert;
  /// The tuple t: the inserted tuple, the tuple to delete, the replacement
  /// value, or — for δ(E) — the key plus the update payload E encoded as
  /// ordinary fields (the payload's meaning is owned by the delta handler
  /// that interprets it).
  Tuple tuple;
  /// For kReplace only: the existing tuple t' being replaced.
  Tuple old_tuple;

  static Delta Insert(Tuple t) {
    return Delta{DeltaOp::kInsert, std::move(t), {}};
  }
  static Delta Delete(Tuple t) {
    return Delta{DeltaOp::kDelete, std::move(t), {}};
  }
  static Delta Replace(Tuple old_t, Tuple new_t) {
    return Delta{DeltaOp::kReplace, std::move(new_t), std::move(old_t)};
  }
  static Delta Update(Tuple t) {
    return Delta{DeltaOp::kUpdate, std::move(t), {}};
  }

  /// Returns a copy with the same annotation but a different tuple
  /// (stateless operators transform t and keep α; §3.3).
  Delta WithTuple(Tuple t) const;

  bool operator==(const Delta& other) const {
    return op == other.op && tuple == other.tuple &&
           old_tuple == other.old_tuple;
  }

  std::string ToString() const;
  size_t ByteSize() const { return 1 + tuple.ByteSize() + old_tuple.ByteSize(); }
};

using DeltaVec = std::vector<Delta>;

/// Wraps plain tuples as insertions (the base, non-incremental case).
DeltaVec AsInsertions(std::vector<Tuple> tuples);

}  // namespace rex

#endif  // REX_COMMON_DELTA_H_
