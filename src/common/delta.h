// Deltas: annotated tuples, the unit of incremental computation in REX.
//
// Definition 1 of the paper: a delta is a pair (α, t) where t is a tuple and
// α is one of
//   +()      insert t into operator state
//   -()      delete t from operator state
//   ->(t')   t replaces existing tuple t'
//   δ(E)     an arbitrary programmable update, interpreted by user-defined
//            delta handlers in downstream stateful operators
//
// Stateless operators propagate annotations unchanged; stateful operators
// (join, group-by, while/fixpoint) revise their internal state per the rules
// in §3.3 or via the four delta-handler hooks (see exec/uda.h).
#ifndef REX_COMMON_DELTA_H_
#define REX_COMMON_DELTA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/tuple.h"

namespace rex {

/// The annotation α of Definition 1, plus one wire-only pseudo-annotation.
enum class DeltaOp : uint8_t {
  kInsert = 0,   // +()
  kDelete = 1,   // -()
  kReplace = 2,  // ->(t')
  kUpdate = 3,   // δ(E)
  /// Wire-format run of same-key +()/δ() deltas packed by the coalescer
  /// (exec/coalesce.h): the key is carried once, the per-key payload
  /// sequence rides in a list field. Exists only between a RehashOp
  /// sender's FlushTo and the receiving RehashOp's network port, which
  /// expands it back before pushing downstream — no other operator ever
  /// sees it.
  kBatch = 4,
};

const char* DeltaOpName(DeltaOp op);

/// An annotated tuple carrying an integer ℤ-set multiplicity.
///
/// The weight generalizes Definition 1 to DBSP-style ℤ-sets: a delta stands
/// for `weight` copies of its tuple. The annotation fixes the sign
/// convention — `+()` with weight w contributes +w, `-()` with weight w
/// contributes -w — so `Delete(t)` is exactly `Weighted(t, -1)` under
/// SignedWeight(). `->(t')` is the composite {-1·t', +1·t} and always has
/// weight 1; for δ(E) the weight rides along opaquely (its meaning belongs
/// to the delta handler, like the payload itself). Weight-zero deltas are
/// no-ops and are eliminated by the coalescer and stateful operators.
struct Delta {
  DeltaOp op = DeltaOp::kInsert;
  /// The tuple t: the inserted tuple, the tuple to delete, the replacement
  /// value, or — for δ(E) — the key plus the update payload E encoded as
  /// ordinary fields (the payload's meaning is owned by the delta handler
  /// that interprets it).
  Tuple tuple;
  /// For kReplace only: the existing tuple t' being replaced.
  Tuple old_tuple;
  /// ℤ-set multiplicity (always >= 1 in canonical form; the op carries the
  /// sign). Non-canonical negative weights are accepted as input and mean
  /// the op's inverse: Insert(t) with weight -w ≡ Delete(t) with weight w.
  int64_t weight = 1;

  static Delta Insert(Tuple t) {
    return Delta{DeltaOp::kInsert, std::move(t), {}, 1};
  }
  static Delta Delete(Tuple t) {
    return Delta{DeltaOp::kDelete, std::move(t), {}, 1};
  }
  static Delta Replace(Tuple old_t, Tuple new_t) {
    return Delta{DeltaOp::kReplace, std::move(new_t), std::move(old_t), 1};
  }
  static Delta Update(Tuple t) {
    return Delta{DeltaOp::kUpdate, std::move(t), {}, 1};
  }
  /// Canonical ℤ-set constructor: w > 0 → insert with weight w, w < 0 →
  /// delete with weight -w, w == 0 → weightless insert (a no-op everywhere).
  /// INT64_MIN has no negation in int64; it saturates to a delete of weight
  /// INT64_MAX rather than invoking signed-overflow UB. Ingress points
  /// (serde, the coalescer, join canonicalization) reject INT64_MIN outright
  /// so saturation only arises on locally constructed pathological weights.
  static Delta Weighted(Tuple t, int64_t w) {
    if (w < 0) {
      const int64_t mag = w == INT64_MIN ? INT64_MAX : -w;
      return Delta{DeltaOp::kDelete, std::move(t), {}, mag};
    }
    return Delta{DeltaOp::kInsert, std::move(t), {}, w};
  }

  /// The signed ℤ-set multiplicity: -weight for deletes, +weight otherwise.
  /// A (non-canonical) delete of weight INT64_MIN saturates to INT64_MAX.
  int64_t SignedWeight() const {
    if (op != DeltaOp::kDelete) return weight;
    return weight == INT64_MIN ? INT64_MAX : -weight;
  }

  /// The inverse delta: applying a batch then its negation is the identity.
  Delta Negated() const;

  /// Returns a copy with the same annotation but a different tuple
  /// (stateless operators transform t and keep α; §3.3).
  Delta WithTuple(Tuple t) const;

  bool operator==(const Delta& other) const {
    return op == other.op && weight == other.weight && tuple == other.tuple &&
           old_tuple == other.old_tuple;
  }

  std::string ToString() const;
  size_t ByteSize() const {
    return 1 + tuple.ByteSize() + old_tuple.ByteSize() +
           (weight == 1 ? 0 : 8);
  }
};

using DeltaVec = std::vector<Delta>;

/// Wraps plain tuples as insertions (the base, non-incremental case).
DeltaVec AsInsertions(std::vector<Tuple> tuples);

}  // namespace rex

#endif  // REX_COMMON_DELTA_H_
