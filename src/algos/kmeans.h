// K-means clustering with delta propagation (the paper's Listing 3).
//
// Tables: points(pid:int, x:double, y:double) partitioned by pid.
//
// The fixpoint holds the k centroids (the small mutable relation); each
// stratum the *changed* centroids are broadcast to all workers, where the
// KMJoin handler keeps per-point assignments in its point bucket (the
// paper's nodeBucket, extended in place with cid/dist columns). Only
// points that switch centroids emit (cid, ±x, ±y, ±1) adjustment deltas; a
// persistent sum group-by maintains running per-centroid sums, and changed
// centroids loop back. Termination: no point switches — no deltas.
#ifndef REX_ALGOS_KMEANS_H_
#define REX_ALGOS_KMEANS_H_

#include "cluster/cluster.h"
#include "data/generators.h"
#include "engine/plan_spec.h"

namespace rex {

struct KMeansConfig {
  int k = 8;
  std::string name_suffix;
};

/// Registers the KMJoin join-state handler.
Status RegisterKMeansUdfs(UdfRegistry* registry, const KMeansConfig& config);

/// REX delta plan. Initial centroids are the points with pid < k (point
/// ids are randomly permuted by the generator, so this is a uniform
/// sample — the role of the paper's KMSampleAgg).
Result<PlanSpec> BuildKMeansDeltaPlan(const KMeansConfig& config);

/// Loads the points table.
Status LoadPointsTable(Cluster* cluster, std::vector<Tuple> points);

/// Extracts (cid -> (x, y)) centroids from a run's fixpoint state.
Result<std::vector<std::pair<double, double>>> CentroidsFromState(
    const std::vector<Tuple>& fixpoint_state);

}  // namespace rex

#endif  // REX_ALGOS_KMEANS_H_
