#include "algos/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace rex {

namespace {

// Point bucket tuple layout after in-place extension by the handler:
//   (key0, pid, x, y, cid, dist2)
// Centroid bucket tuple layout: (key0, cid, cx, cy).
constexpr size_t kPid = 1;
constexpr size_t kX = 2;
constexpr size_t kY = 3;
constexpr size_t kCid = 4;
constexpr size_t kDist = 5;

double Dist2(double x, double y, double cx, double cy) {
  const double dx = x - cx;
  const double dy = y - cy;
  return dx * dx + dy * dy;
}

/// Nearest centroid in the centroid bucket to (x, y).
Result<std::pair<int64_t, double>> Nearest(const TupleSet& centroids,
                                           double x, double y) {
  int64_t best = -1;
  double best_d = std::numeric_limits<double>::infinity();
  for (const Tuple& c : centroids) {
    REX_ASSIGN_OR_RETURN(double cx, c.field(2).ToDouble());
    REX_ASSIGN_OR_RETURN(double cy, c.field(3).ToDouble());
    const double d = Dist2(x, y, cx, cy);
    if (d < best_d) {
      best_d = d;
      REX_ASSIGN_OR_RETURN(best, c.field(1).ToInt());
    }
  }
  return std::make_pair(best, best_d);
}

JoinHandler MakeKmJoin(const KMeansConfig& config) {
  JoinHandler h;
  h.name = "KMJoin" + config.name_suffix;
  h.update = [](TupleSet* centroid_bucket, TupleSet* point_bucket,
                const Delta& d) -> Result<DeltaVec> {
    if (d.tuple.size() < 4) {
      return Status::InvalidArgument("KMJoin expects (key, cid, cx, cy)");
    }
    REX_ASSIGN_OR_RETURN(int64_t cid, d.tuple.field(1).ToInt());
    REX_ASSIGN_OR_RETURN(double cx, d.tuple.field(2).ToDouble());
    REX_ASSIGN_OR_RETURN(double cy, d.tuple.field(3).ToDouble());

    // Revise the centroid set (paper: centrBucket.put(cid, {cx, cy})).
    bool found = false;
    for (Tuple& c : *centroid_bucket) {
      if (c.field(1) == d.tuple.field(1)) {
        c.field(2) = Value(cx);
        c.field(3) = Value(cy);
        found = true;
        break;
      }
    }
    if (!found) centroid_bucket->Add(d.tuple);

    DeltaVec out;
    for (Tuple& p : *point_bucket) {
      // Extend scanned (key, pid, x, y) rows with assignment state.
      while (p.size() < 6) {
        p.Append(p.size() == kCid
                     ? Value(int64_t{-1})
                     : Value(std::numeric_limits<double>::infinity()));
      }
      REX_ASSIGN_OR_RETURN(double x, p.field(kX).ToDouble());
      REX_ASSIGN_OR_RETURN(double y, p.field(kY).ToDouble());
      REX_ASSIGN_OR_RETURN(int64_t old_cid, p.field(kCid).ToInt());
      REX_ASSIGN_OR_RETURN(double old_d, p.field(kDist).ToDouble());

      int64_t new_cid = old_cid;
      double new_d = old_d;
      if (old_cid == cid) {
        // Our own centroid moved: the stored distance is stale, and some
        // other centroid may now be closer — re-evaluate against all.
        REX_ASSIGN_OR_RETURN(auto nearest, Nearest(*centroid_bucket, x, y));
        new_cid = nearest.first;
        new_d = nearest.second;
      } else {
        const double cand = Dist2(x, y, cx, cy);
        if (cand < old_d) {
          new_cid = cid;
          new_d = cand;
        }
      }
      if (new_cid == old_cid) {
        p.field(kDist) = Value(new_d);  // refresh distance only
        continue;
      }
      p.field(kCid) = Value(new_cid);
      p.field(kDist) = Value(new_d);
      out.push_back(
          Delta::Update(Tuple{Value(new_cid), Value(x), Value(y),
                              Value(int64_t{1})}));
      if (old_cid >= 0) {
        out.push_back(
            Delta::Update(Tuple{Value(old_cid), Value(-x), Value(-y),
                                Value(int64_t{-1})}));
      }
    }
    return out;
  };
  return h;
}

}  // namespace

Status RegisterKMeansUdfs(UdfRegistry* registry,
                          const KMeansConfig& config) {
  return registry->RegisterJoinHandler(MakeKmJoin(config));
}

Result<PlanSpec> BuildKMeansDeltaPlan(const KMeansConfig& config) {
  PlanSpec plan;

  // Immutable side: every worker's local points under a constant join key.
  ScanOp::Params points_scan;
  points_scan.table = "points";
  points_scan.feeds_immutable = true;
  int ps = plan.AddScan(points_scan);
  int keyed_points = plan.AddProject(
      ps, {Expr::Const(Value(int64_t{0})), Expr::Column(0, "pid"),
           Expr::Column(1, "x"), Expr::Column(2, "y")});

  // Base case: sample initial centroids as the points with pid < k.
  ScanOp::Params seed_scan;
  seed_scan.table = "points";
  int ss = plan.AddScan(seed_scan);
  int sampled = plan.AddFilter(
      ss, Expr::Binary(BinOp::kLt, Expr::Column(0, "pid"),
                       Expr::Const(Value(int64_t{config.k}))));
  int seeds = plan.AddProject(sampled, {Expr::Column(0, "cid"),
                                        Expr::Column(1, "x"),
                                        Expr::Column(2, "y")});
  RehashOp::Params seed_rehash;
  seed_rehash.key_fields = {0};
  int seeds_routed = plan.AddRehash(seeds, seed_rehash);

  FixpointOp::Params fp_params;
  fp_params.key_fields = {0};
  int fp = plan.AddFixpoint(seeds_routed, fp_params);

  // Recursive case: broadcast changed centroids to all workers ...
  RehashOp::Params bcast;
  bcast.broadcast = true;
  int centroids_everywhere = plan.AddRehash(fp, bcast);
  int keyed_centroids = plan.AddProject(
      centroids_everywhere,
      {Expr::Const(Value(int64_t{0})), Expr::Column(0, "cid"),
       Expr::Column(1, "x"), Expr::Column(2, "y")});

  // ... reassign local points, emitting membership adjustments ...
  HashJoinOp::Params jp;
  jp.left_keys = {0};
  jp.right_keys = {0};
  jp.immutable[0] = true;  // points
  jp.handler = "KMJoin" + config.name_suffix;
  jp.handler_owns_all = true;
  jp.handler_keeps_state = true;  // per-point assignments live in buckets
  int join = plan.AddHashJoin(keyed_points, keyed_centroids, jp);

  // ... maintain running per-worker partial sums (persistent group-by);
  // replacements of a worker's partial flow to a second, global persistent
  // group-by on the centroid's owner, which combines partials across
  // workers (delete-old + insert-new keeps the global sums exact) ...
  GroupByOp::AggSpec sx{AggKind::kSum, 1, "sx"};
  GroupByOp::AggSpec sy{AggKind::kSum, 2, "sy"};
  GroupByOp::AggSpec sw{AggKind::kSum, 3, "n"};
  GroupByOp::Params local_sums;
  local_sums.key_fields = {0};
  local_sums.aggs = {sx, sy, sw};
  local_sums.mode = GroupByOp::Mode::kPersistent;
  int partials = plan.AddGroupBy(join, local_sums);

  RehashOp::Params to_owner;
  to_owner.key_fields = {0};
  int routed = plan.AddRehash(partials, to_owner);

  GroupByOp::Params global_sums;
  global_sums.key_fields = {0};
  global_sums.aggs = {sx, sy, sw};
  global_sums.mode = GroupByOp::Mode::kPersistent;
  int agg = plan.AddGroupBy(routed, global_sums);

  // ... drop emptied centroids, average, and loop back (already
  // partitioned by cid).
  int nonempty = plan.AddFilter(
      agg, Expr::Binary(BinOp::kGt, Expr::Column(3, "n"),
                        Expr::Const(Value(int64_t{0}))));
  int averaged = plan.AddProject(
      nonempty,
      {Expr::Column(0, "cid"),
       Expr::Binary(BinOp::kDiv, Expr::Column(1, "sx"), Expr::Column(3, "n")),
       Expr::Binary(BinOp::kDiv, Expr::Column(2, "sy"),
                    Expr::Column(3, "n"))});
  plan.ConnectRecursive(fp, averaged);

  REX_RETURN_NOT_OK(plan.Validate());
  return plan;
}

Status LoadPointsTable(Cluster* cluster, std::vector<Tuple> points) {
  return cluster->CreateTable(
      "points",
      Schema{{"pid", ValueType::kInt},
             {"x", ValueType::kDouble},
             {"y", ValueType::kDouble}},
      /*key_column=*/0, std::move(points));
}

Result<std::vector<std::pair<double, double>>> CentroidsFromState(
    const std::vector<Tuple>& fixpoint_state) {
  std::vector<std::pair<int64_t, std::pair<double, double>>> entries;
  for (const Tuple& t : fixpoint_state) {
    if (t.size() < 3) return Status::Internal("bad centroid tuple");
    REX_ASSIGN_OR_RETURN(int64_t cid, t.field(0).ToInt());
    REX_ASSIGN_OR_RETURN(double x, t.field(1).ToDouble());
    REX_ASSIGN_OR_RETURN(double y, t.field(2).ToDouble());
    entries.push_back({cid, {x, y}});
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::pair<double, double>> out;
  out.reserve(entries.size());
  for (auto& [cid, xy] : entries) out.push_back(xy);
  return out;
}

}  // namespace rex
