// Delta-oriented PageRank (the paper's running example; Listing 1, Fig 1).
//
// Tables: graph(src:int, dst:int) partitioned by src;
//         vertices(v:int) partitioned by v.
//
// Delta formulation: rank state lives in the fixpoint's while-handler
// buckets; a delta (v, diff) adds diff to v's rank and — when |diff|
// exceeds the propagation threshold — re-emits the diff, which the join
// with the immutable graph fans out as damping*diff/outdeg(v) to each
// out-neighbor; a per-target sum aggregates incoming diffs per stratum.
// Starting from rank 0 with initial diffs of (1-damping), the fixpoint
// converges to r = (1-d) + d * A^T (r/outdeg).
//
// No-delta formulation (the REX no-Δ configuration of §6): the fixpoint
// holds (v, rank) in kFull mode — the entire mutable set is re-emitted
// every stratum and re-joined with the graph, exactly the work a
// Hadoop-style system performs each iteration.
#ifndef REX_ALGOS_PAGERANK_H_
#define REX_ALGOS_PAGERANK_H_

#include "cluster/cluster.h"
#include "data/generators.h"
#include "engine/plan_spec.h"

namespace rex {

struct PageRankConfig {
  double damping = 0.85;
  /// Minimum |diff| that keeps propagating in delta mode; also the
  /// "changed by more than this" explicit-termination threshold in
  /// no-delta mode.
  double threshold = 1e-4;
  /// Interpret `threshold` relative to the page's current rank (the
  /// paper's "changed by more than 1%" criterion: threshold = 0.01,
  /// relative = true). Relative thresholds give the gradually shrinking
  /// Δᵢ sets of Fig 2.
  bool relative = false;
  /// Pre-aggregate diff sums locally before the rehash (§5.2 combiner
  /// pushdown; off for the ablation bench).
  bool preaggregate = true;
  /// Registry-name suffix, for hosting several configurations in one
  /// cluster.
  std::string name_suffix;
};

/// Registers PRFix / PRJoin / PRJoinFull (+suffix) handlers.
Status RegisterPageRankUdfs(UdfRegistry* registry,
                            const PageRankConfig& config);

/// REX delta plan (Δ configuration).
Result<PlanSpec> BuildPageRankDeltaPlan(const PageRankConfig& config);

/// REX no-delta plan (no-Δ configuration): full mutable set per stratum.
Result<PlanSpec> BuildPageRankFullPlan(const PageRankConfig& config);

/// Loads `graph` and `vertices` tables into the cluster.
Status LoadGraphTables(Cluster* cluster, const GraphData& graph);

/// Extracts (vertex -> rank) from a run's fixpoint state.
Result<std::vector<double>> RanksFromState(
    const std::vector<Tuple>& fixpoint_state, int64_t num_vertices);

}  // namespace rex

#endif  // REX_ALGOS_PAGERANK_H_
