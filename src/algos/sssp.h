// Single-source shortest path (unweighted), per the paper's Listing 2.
//
// Delta formulation: the fixpoint holds the minimum known distance per
// vertex (the mutable set); an incoming candidate (v, d) only propagates
// when it improves the stored distance — the Δᵢ set is exactly the
// frontier of improved vertices, so post-convergence strata are free (the
// paper runs all 75 DBPedia iterations with iterations 7-75 costing under
// a second combined).
#ifndef REX_ALGOS_SSSP_H_
#define REX_ALGOS_SSSP_H_

#include "cluster/cluster.h"
#include "data/generators.h"
#include "engine/plan_spec.h"

namespace rex {

struct SsspConfig {
  int64_t source = 0;
  bool preaggregate = true;
  std::string name_suffix;
};

/// Registers SPFix (min-merge while handler) and SPJoin (neighbor
/// expansion join handler).
Status RegisterSsspUdfs(UdfRegistry* registry, const SsspConfig& config);

/// REX delta plan: only improved distances propagate.
Result<PlanSpec> BuildSsspDeltaPlan(const SsspConfig& config);

/// REX no-delta plan: the complete distance relation is re-expanded every
/// stratum (kFull fixpoint).
Result<PlanSpec> BuildSsspFullPlan(const SsspConfig& config);

/// Extracts distances (-1 = unreachable) from a run's fixpoint state.
Result<std::vector<int64_t>> DistancesFromState(
    const std::vector<Tuple>& fixpoint_state, int64_t num_vertices);

}  // namespace rex

#endif  // REX_ALGOS_SSSP_H_
