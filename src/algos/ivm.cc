#include "algos/ivm.h"

#include <algorithm>
#include <map>

namespace rex {

namespace {

Status ValidateVertex(int64_t v, int64_t n, const char* what) {
  if (v < 0 || v >= n) {
    return Status::OutOfRange(std::string("edge mutation ") + what + " " +
                              std::to_string(v) + " outside [0, " +
                              std::to_string(n) + ")");
  }
  return Status::OK();
}

/// Fills the parts every graph update shares: the weighted table mutation
/// and the matching in-place patch of the join's immutable graph buckets.
void FillGraphMutation(const std::vector<EdgeMutation>& edges, int join_op,
                       Cluster::BaseUpdate* update) {
  auto& rows = update->tables["graph"];
  Cluster::StatePatch patch;
  patch.op_id = join_op;
  patch.port = 0;  // the graph feeds the join's left port
  patch.route_fields = {0};
  for (const EdgeMutation& e : edges) {
    if (e.weight == 0) continue;
    Tuple row{Value(e.src), Value(e.dst)};
    rows.push_back({row, e.weight});
    patch.deltas.push_back(Delta::Weighted(row, e.weight));
  }
  update->patches.push_back(std::move(patch));
}

/// The mutated vertex's new out-neighborhood under `muts` (multiset).
std::vector<int64_t> ApplyToNeighborhood(const std::vector<int64_t>& old_nbrs,
                                         const std::vector<EdgeMutation>& muts) {
  std::vector<int64_t> nbrs = old_nbrs;
  for (const EdgeMutation& e : muts) {
    if (e.weight > 0) {
      for (int64_t i = 0; i < e.weight; ++i) nbrs.push_back(e.dst);
    } else {
      for (int64_t i = 0; i > e.weight; --i) {
        auto it = std::find(nbrs.begin(), nbrs.end(), e.dst);
        if (it == nbrs.end()) break;
        nbrs.erase(it);
      }
    }
  }
  return nbrs;
}

}  // namespace

Adjacency AdjacencyFromGraph(const GraphData& graph) {
  Adjacency adj(static_cast<size_t>(graph.num_vertices));
  for (const auto& [src, dst] : graph.edges) {
    adj[static_cast<size_t>(src)].push_back(dst);
  }
  return adj;
}

void ApplyEdgeMutations(Adjacency* adj,
                        const std::vector<EdgeMutation>& edges) {
  for (const EdgeMutation& e : edges) {
    auto& nbrs = (*adj)[static_cast<size_t>(e.src)];
    if (e.weight > 0) {
      for (int64_t i = 0; i < e.weight; ++i) nbrs.push_back(e.dst);
    } else {
      for (int64_t i = 0; i > e.weight; --i) {
        auto it = std::find(nbrs.begin(), nbrs.end(), e.dst);
        if (it == nbrs.end()) break;
        nbrs.erase(it);
      }
    }
  }
}

Result<int> FindFixpointNode(const PlanSpec& plan) {
  for (const PlanNodeSpec& n : plan.nodes()) {
    if (n.type == PlanNodeSpec::Type::kFixpoint) return n.id;
  }
  return Status::NotFound("plan has no fixpoint node");
}

Result<int> FindGraphJoinNode(const PlanSpec& plan) {
  for (const PlanNodeSpec& n : plan.nodes()) {
    if (n.type == PlanNodeSpec::Type::kHashJoin) return n.id;
  }
  return Status::NotFound("plan has no hash-join node");
}

Result<Cluster::BaseUpdate> BuildPageRankBaseUpdate(
    const PlanSpec& plan, const std::vector<EdgeMutation>& edges,
    const std::vector<double>& ranks, const Adjacency& old_adj,
    double damping) {
  const int64_t n = static_cast<int64_t>(ranks.size());
  REX_ASSIGN_OR_RETURN(int fp, FindFixpointNode(plan));
  REX_ASSIGN_OR_RETURN(int join, FindGraphJoinNode(plan));

  // Group mutations by source: the first-hop contribution of source u is a
  // function of u's whole out-neighborhood, so per-source before/after is
  // the natural unit.
  std::map<int64_t, std::vector<EdgeMutation>> by_src;
  for (const EdgeMutation& e : edges) {
    REX_RETURN_NOT_OK(ValidateVertex(e.src, n, "source"));
    REX_RETURN_NOT_OK(ValidateVertex(e.dst, n, "target"));
    if (e.weight != 0) by_src[e.src].push_back(e);
  }

  Cluster::BaseUpdate update;
  FillGraphMutation(edges, join, &update);

  DeltaVec seeds;
  for (const auto& [u, muts] : by_src) {
    const std::vector<int64_t>& old_nbrs = old_adj[static_cast<size_t>(u)];
    const std::vector<int64_t> new_nbrs = ApplyToNeighborhood(old_nbrs, muts);
    const double r = ranks[static_cast<size_t>(u)];
    // Net per-target diff: retract old shares, assert new ones. A no-op
    // batch (|N_old| == |N_new|, same multiset) cancels to exactly 0.0.
    std::map<int64_t, double> diff;
    if (!old_nbrs.empty()) {
      const double share = damping * r / static_cast<double>(old_nbrs.size());
      for (int64_t v : old_nbrs) diff[v] -= share;
    }
    if (!new_nbrs.empty()) {
      const double share = damping * r / static_cast<double>(new_nbrs.size());
      for (int64_t v : new_nbrs) diff[v] += share;
    }
    for (const auto& [v, d] : diff) {
      if (d == 0.0) continue;
      seeds.push_back(Delta::Update(Tuple{Value(v), Value(d)}));
    }
  }
  if (!seeds.empty()) update.seeds[fp] = std::move(seeds);
  return update;
}

Result<Cluster::BaseUpdate> BuildSsspBaseUpdate(
    const PlanSpec& plan, const std::vector<EdgeMutation>& edges,
    const std::vector<int64_t>& dist, const Adjacency& old_adj,
    int64_t source) {
  const int64_t n = static_cast<int64_t>(dist.size());
  REX_ASSIGN_OR_RETURN(int fp, FindFixpointNode(plan));
  REX_ASSIGN_OR_RETURN(int join, FindGraphJoinNode(plan));
  for (const EdgeMutation& e : edges) {
    REX_RETURN_NOT_OK(ValidateVertex(e.src, n, "source"));
    REX_RETURN_NOT_OK(ValidateVertex(e.dst, n, "target"));
  }

  Adjacency new_adj = old_adj;
  ApplyEdgeMutations(&new_adj, edges);

  Cluster::BaseUpdate update;
  FillGraphMutation(edges, join, &update);

  // Affected set: vertices whose converged distance may have depended on a
  // deleted edge — the closure, over the OLD adjacency's shortest-path
  // "tree" edges (dist[y] == dist[x] + 1), below each deleted edge whose
  // last parallel copy is gone. Conservative (a vertex with an alternate
  // equal-length path is included anyway); soundness only needs the
  // complement's distances to be intact, which holds because any shortest
  // path avoiding the affected set avoids every deleted edge.
  std::vector<char> affected(static_cast<size_t>(n), 0);
  std::vector<int64_t> frontier;
  auto mark = [&](int64_t v) {
    if (v == source || affected[static_cast<size_t>(v)]) return;
    affected[static_cast<size_t>(v)] = 1;
    frontier.push_back(v);
  };
  for (const EdgeMutation& e : edges) {
    if (e.weight >= 0) continue;
    if (dist[static_cast<size_t>(e.src)] == -1) continue;
    if (dist[static_cast<size_t>(e.dst)] !=
        dist[static_cast<size_t>(e.src)] + 1) {
      continue;  // never a tree edge
    }
    const auto& survivors = new_adj[static_cast<size_t>(e.src)];
    if (std::find(survivors.begin(), survivors.end(), e.dst) !=
        survivors.end()) {
      continue;  // a parallel copy still justifies the distance
    }
    mark(e.dst);
  }
  for (size_t i = 0; i < frontier.size(); ++i) {
    const int64_t x = frontier[i];
    for (int64_t y : old_adj[static_cast<size_t>(x)]) {
      if (dist[static_cast<size_t>(y)] == dist[static_cast<size_t>(x)] + 1) {
        mark(y);
      }
    }
  }

  // In-neighbors under the NEW adjacency (reseeds and inserted edges both
  // read it).
  Adjacency rev(static_cast<size_t>(n));
  for (int64_t u = 0; u < n; ++u) {
    for (int64_t v : new_adj[static_cast<size_t>(u)]) {
      rev[static_cast<size_t>(v)].push_back(u);
    }
  }

  DeltaVec seeds;
  // 1. Clear the affected set (handler-path -() empties the key's bucket
  // and propagates nothing); a vertex no reseed or re-derivation reaches
  // stays cleared = unreachable.
  for (int64_t w = 0; w < n; ++w) {
    if (affected[static_cast<size_t>(w)]) {
      seeds.push_back(Delta::Delete(Tuple{Value(w)}));
    }
  }
  // 2. Reseed each affected vertex from its unaffected in-neighbors, whose
  // distances are still exact; min-merge re-convergence does the rest.
  for (int64_t w = 0; w < n; ++w) {
    if (!affected[static_cast<size_t>(w)]) continue;
    for (int64_t x : rev[static_cast<size_t>(w)]) {
      if (affected[static_cast<size_t>(x)]) continue;
      const int64_t dx = dist[static_cast<size_t>(x)];
      if (dx == -1) continue;
      seeds.push_back(Delta::Update(Tuple{Value(w), Value(dx + 1)}));
    }
  }
  // 3. Inserted edges from unaffected finite sources offer a new candidate
  // to their target (covered by 2 when the target is affected, but an
  // unaffected target may still improve). The candidate is only real if a
  // copy of the edge survives the whole batch net — a no-op insert+delete
  // pair must not hand its target a phantom path.
  for (const EdgeMutation& e : edges) {
    if (e.weight <= 0) continue;
    if (affected[static_cast<size_t>(e.src)]) continue;
    const int64_t ds = dist[static_cast<size_t>(e.src)];
    if (ds == -1) continue;
    const auto& nbrs = new_adj[static_cast<size_t>(e.src)];
    if (std::find(nbrs.begin(), nbrs.end(), e.dst) == nbrs.end()) continue;
    seeds.push_back(Delta::Update(Tuple{Value(e.dst), Value(ds + 1)}));
  }
  if (!seeds.empty()) update.seeds[fp] = std::move(seeds);
  return update;
}

}  // namespace rex
