#include "algos/sssp.h"

namespace rex {

namespace {

WhileHandler MakeSpFix(const SsspConfig& config) {
  WhileHandler h;
  h.name = "SPFix" + config.name_suffix;
  h.update = [](TupleSet* bucket, const Delta& d) -> Result<DeltaVec> {
    if (d.tuple.size() < 2) {
      return Status::InvalidArgument("SPFix expects (v, dist)");
    }
    const Value& v = d.tuple.field(0);
    REX_ASSIGN_OR_RETURN(int64_t cand, d.tuple.field(1).ToInt());
    if (auto existing = bucket->Get(v); existing.has_value()) {
      REX_ASSIGN_OR_RETURN(int64_t cur, existing->ToInt());
      if (cand >= cur) return DeltaVec{};  // no improvement
    }
    bucket->Put(v, Value(cand));
    return DeltaVec{Delta::Update(Tuple{v, Value(cand)})};
  };
  return h;
}

JoinHandler MakeSpJoin(const SsspConfig& config) {
  JoinHandler h;
  h.name = "SPJoin" + config.name_suffix;
  h.update = [](TupleSet* /*delta_side*/, TupleSet* graph_bucket,
                const Delta& d) -> Result<DeltaVec> {
    REX_ASSIGN_OR_RETURN(int64_t dist, d.tuple.field(1).ToInt());
    DeltaVec out;
    out.reserve(graph_bucket->size());
    for (const Tuple& edge : *graph_bucket) {
      out.push_back(Delta::Update(Tuple{edge.field(1), Value(dist + 1)}));
    }
    return out;
  };
  return h;
}

Result<PlanSpec> BuildSsspPlan(const SsspConfig& config, bool delta) {
  PlanSpec plan;
  ScanOp::Params graph_scan;
  graph_scan.table = "graph";
  graph_scan.feeds_immutable = true;
  int g = plan.AddScan(graph_scan);

  ScanOp::Params vertex_scan;
  vertex_scan.table = "vertices";
  int vs = plan.AddScan(vertex_scan);
  int src_only = plan.AddFilter(
      vs, Expr::Binary(BinOp::kEq, Expr::Column(0, "v"),
                       Expr::Const(Value(config.source))));
  int base = plan.AddProject(
      src_only, {Expr::Column(0, "v"), Expr::Const(Value(int64_t{0}))});

  FixpointOp::Params fp_params;
  fp_params.key_fields = {0};
  fp_params.while_handler = "SPFix" + config.name_suffix;
  if (!delta) fp_params.mode = FixpointOp::Mode::kFull;
  int fp = plan.AddFixpoint(base, fp_params);

  HashJoinOp::Params jp;
  jp.left_keys = {0};
  jp.right_keys = {0};
  jp.immutable[0] = true;  // graph
  jp.handler = "SPJoin" + config.name_suffix;
  jp.handler_owns_all = true;  // kFull flushes inserts; route them too
  int join = plan.AddHashJoin(g, fp, jp);

  GroupByOp::AggSpec min_dist;
  min_dist.kind = AggKind::kMin;
  min_dist.input_field = 1;
  min_dist.output_name = "dist";
  int tail = join;
  if (config.preaggregate) {
    GroupByOp::Params pre;
    pre.key_fields = {0};
    pre.aggs = {min_dist};
    pre.mode = GroupByOp::Mode::kStratum;
    tail = plan.AddGroupBy(tail, pre);
  }
  RehashOp::Params rh;
  rh.key_fields = {0};
  // SPFix keeps the min per vertex and the final kMin group-by is a pure
  // set fold: reapplying an identical δ(v, d) is a no-op, so the shuffle
  // may drop exact per-key repeats.
  rh.idempotent_updates = true;
  tail = plan.AddRehash(tail, rh);
  GroupByOp::Params fin;
  fin.key_fields = {0};
  fin.aggs = {min_dist};
  fin.mode = GroupByOp::Mode::kStratum;
  tail = plan.AddGroupBy(tail, fin);

  plan.ConnectRecursive(fp, tail);
  REX_RETURN_NOT_OK(plan.Validate());
  return plan;
}

}  // namespace

Status RegisterSsspUdfs(UdfRegistry* registry, const SsspConfig& config) {
  REX_RETURN_NOT_OK(registry->RegisterWhileHandler(MakeSpFix(config)));
  return registry->RegisterJoinHandler(MakeSpJoin(config));
}

Result<PlanSpec> BuildSsspDeltaPlan(const SsspConfig& config) {
  return BuildSsspPlan(config, /*delta=*/true);
}

Result<PlanSpec> BuildSsspFullPlan(const SsspConfig& config) {
  return BuildSsspPlan(config, /*delta=*/false);
}

Result<std::vector<int64_t>> DistancesFromState(
    const std::vector<Tuple>& fixpoint_state, int64_t num_vertices) {
  std::vector<int64_t> dist(static_cast<size_t>(num_vertices), -1);
  for (const Tuple& t : fixpoint_state) {
    if (t.size() < 2) return Status::Internal("bad distance tuple");
    REX_ASSIGN_OR_RETURN(int64_t v, t.field(0).ToInt());
    REX_ASSIGN_OR_RETURN(int64_t d, t.field(1).ToInt());
    if (v < 0 || v >= num_vertices) {
      return Status::OutOfRange("vertex id out of range in distance state");
    }
    dist[static_cast<size_t>(v)] = d;
  }
  return dist;
}

}  // namespace rex
