#include "algos/adsorption.h"

#include <cmath>

namespace rex {

namespace {

/// While handler: per-(v, label) weight accumulation with thresholded
/// propagation (PRFix generalized to vector positions).
WhileHandler MakeAdsorbFix(const AdsorptionConfig& config) {
  WhileHandler h;
  h.name = "AdsorbFix" + config.name_suffix;
  h.keeps_unpropagated_state = true;  // sub-threshold diffs accumulate
  const double threshold = config.threshold;
  h.update = [threshold](TupleSet* bucket,
                         const Delta& d) -> Result<DeltaVec> {
    if (d.tuple.size() < 3) {
      return Status::InvalidArgument("AdsorbFix expects (v, label, diff)");
    }
    REX_ASSIGN_OR_RETURN(double diff, d.tuple.field(2).ToDouble());
    // Bucket holds at most one (v, label, weight) tuple (keyed by both).
    if (bucket->empty()) {
      bucket->Add(Tuple{d.tuple.field(0), d.tuple.field(1), Value(diff)});
    } else {
      Tuple& entry = bucket->at(0);
      REX_ASSIGN_OR_RETURN(double current, entry.field(2).ToDouble());
      entry.field(2) = Value(current + diff);
    }
    if (std::fabs(diff) > threshold) {
      return DeltaVec{Delta::Update(d.tuple)};
    }
    return DeltaVec{};
  };
  return h;
}

JoinHandler MakeAdsorbJoin(const AdsorptionConfig& config) {
  JoinHandler h;
  h.name = "AdsorbJoin" + config.name_suffix;
  const double damping = config.damping;
  h.update = [damping](TupleSet* /*delta_side*/, TupleSet* graph_bucket,
                       const Delta& d) -> Result<DeltaVec> {
    REX_ASSIGN_OR_RETURN(double diff, d.tuple.field(2).ToDouble());
    DeltaVec out;
    const size_t outdeg = graph_bucket->size();
    if (outdeg == 0) return out;
    const double share = damping * diff / static_cast<double>(outdeg);
    out.reserve(outdeg);
    for (const Tuple& edge : *graph_bucket) {
      out.push_back(Delta::Update(
          Tuple{edge.field(1), d.tuple.field(1), Value(share)}));
    }
    return out;
  };
  return h;
}

}  // namespace

Status RegisterAdsorptionUdfs(UdfRegistry* registry,
                              const AdsorptionConfig& config) {
  REX_RETURN_NOT_OK(registry->RegisterWhileHandler(MakeAdsorbFix(config)));
  return registry->RegisterJoinHandler(MakeAdsorbJoin(config));
}

Result<PlanSpec> BuildAdsorptionDeltaPlan(const AdsorptionConfig& config) {
  PlanSpec plan;
  ScanOp::Params graph_scan;
  graph_scan.table = "graph";
  graph_scan.feeds_immutable = true;
  int g = plan.AddScan(graph_scan);

  // Seeds: vertices 0..L-1 inject their own label with the teleport mass.
  ScanOp::Params vertex_scan;
  vertex_scan.table = "vertices";
  int vs = plan.AddScan(vertex_scan);
  int seeds = plan.AddFilter(
      vs, Expr::Binary(BinOp::kLt, Expr::Column(0, "v"),
                       Expr::Const(Value(int64_t{config.num_labels}))));
  int base = plan.AddProject(
      seeds, {Expr::Column(0, "v"), Expr::Column(0, "label"),
              Expr::Const(Value(1.0 - config.damping))});

  FixpointOp::Params fp_params;
  fp_params.key_fields = {0, 1};
  fp_params.partition_fields = {0};  // routed by vertex, keyed by
                                     // (vertex, label)
  fp_params.while_handler = "AdsorbFix" + config.name_suffix;
  int fp = plan.AddFixpoint(base, fp_params);

  HashJoinOp::Params jp;
  jp.left_keys = {0};
  jp.right_keys = {0};  // join on the vertex, any label
  jp.immutable[0] = true;
  jp.handler = "AdsorbJoin" + config.name_suffix;
  int join = plan.AddHashJoin(g, fp, jp);

  // Sum diffs per (target, label) locally, rehash by target, merge.
  GroupByOp::AggSpec sum_diff{AggKind::kSum, 2, "diff"};
  GroupByOp::Params pre;
  pre.key_fields = {0, 1};
  pre.aggs = {sum_diff};
  pre.mode = GroupByOp::Mode::kStratum;
  int tail = plan.AddGroupBy(join, pre);
  RehashOp::Params rh;
  rh.key_fields = {0};
  tail = plan.AddRehash(tail, rh);
  GroupByOp::Params fin;
  fin.key_fields = {0, 1};
  fin.aggs = {sum_diff};
  fin.mode = GroupByOp::Mode::kStratum;
  tail = plan.AddGroupBy(tail, fin);
  plan.ConnectRecursive(fp, tail);
  REX_RETURN_NOT_OK(plan.Validate());
  return plan;
}

Result<std::vector<std::vector<double>>> AdsorptionFromState(
    const std::vector<Tuple>& fixpoint_state, int64_t num_vertices,
    int num_labels) {
  std::vector<std::vector<double>> weights(
      static_cast<size_t>(num_vertices),
      std::vector<double>(static_cast<size_t>(num_labels), 0.0));
  for (const Tuple& t : fixpoint_state) {
    if (t.size() < 3) return Status::Internal("bad adsorption tuple");
    REX_ASSIGN_OR_RETURN(int64_t v, t.field(0).ToInt());
    REX_ASSIGN_OR_RETURN(int64_t label, t.field(1).ToInt());
    REX_ASSIGN_OR_RETURN(double w, t.field(2).ToDouble());
    if (v < 0 || v >= num_vertices || label < 0 || label >= num_labels) {
      return Status::OutOfRange("adsorption state out of range");
    }
    weights[static_cast<size_t>(v)][static_cast<size_t>(label)] = w;
  }
  return weights;
}

std::vector<std::vector<double>> ReferenceAdsorption(const GraphData& graph,
                                                     int num_labels,
                                                     double damping,
                                                     double tol,
                                                     int max_iters) {
  const auto n = static_cast<size_t>(graph.num_vertices);
  std::vector<int64_t> outdeg = graph.OutDegrees();
  std::vector<std::vector<double>> weights(
      n, std::vector<double>(static_cast<size_t>(num_labels), 0.0));
  for (int l = 0; l < num_labels; ++l) {
    std::vector<double> w(n, 0.0);
    std::vector<double> next(n, 0.0);
    w[static_cast<size_t>(l)] = 1.0 - damping;
    for (int it = 0; it < max_iters; ++it) {
      std::fill(next.begin(), next.end(), 0.0);
      next[static_cast<size_t>(l)] = 1.0 - damping;
      for (const auto& [src, dst] : graph.edges) {
        next[static_cast<size_t>(dst)] +=
            damping * w[static_cast<size_t>(src)] /
            static_cast<double>(outdeg[static_cast<size_t>(src)]);
      }
      double max_change = 0;
      for (size_t v = 0; v < n; ++v) {
        max_change = std::max(max_change, std::fabs(next[v] - w[v]));
      }
      w.swap(next);
      if (max_change <= tol) break;
    }
    for (size_t v = 0; v < n; ++v) {
      weights[v][static_cast<size_t>(l)] = w[v];
    }
  }
  return weights;
}

}  // namespace rex
