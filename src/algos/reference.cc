#include "algos/reference.h"

#include <cmath>
#include <deque>
#include <limits>

namespace rex {

std::vector<double> ReferencePageRank(const GraphData& graph, double damping,
                                      double tol, int max_iters) {
  const auto n = static_cast<size_t>(graph.num_vertices);
  std::vector<int64_t> outdeg = graph.OutDegrees();
  std::vector<double> rank(n, 1.0 - damping);
  std::vector<double> next(n, 0.0);
  for (int it = 0; it < max_iters; ++it) {
    std::fill(next.begin(), next.end(), 1.0 - damping);
    for (const auto& [src, dst] : graph.edges) {
      next[static_cast<size_t>(dst)] +=
          damping * rank[static_cast<size_t>(src)] /
          static_cast<double>(outdeg[static_cast<size_t>(src)]);
    }
    double max_change = 0;
    for (size_t v = 0; v < n; ++v) {
      max_change = std::max(max_change, std::fabs(next[v] - rank[v]));
    }
    rank.swap(next);
    if (max_change <= tol) break;
  }
  return rank;
}

std::vector<int64_t> ReferenceSssp(const GraphData& graph, int64_t source) {
  const auto n = static_cast<size_t>(graph.num_vertices);
  std::vector<std::vector<int64_t>> adj(n);
  for (const auto& [src, dst] : graph.edges) {
    adj[static_cast<size_t>(src)].push_back(dst);
  }
  std::vector<int64_t> dist(n, -1);
  std::deque<int64_t> frontier{source};
  dist[static_cast<size_t>(source)] = 0;
  while (!frontier.empty()) {
    int64_t v = frontier.front();
    frontier.pop_front();
    for (int64_t u : adj[static_cast<size_t>(v)]) {
      if (dist[static_cast<size_t>(u)] < 0) {
        dist[static_cast<size_t>(u)] = dist[static_cast<size_t>(v)] + 1;
        frontier.push_back(u);
      }
    }
  }
  return dist;
}

KMeansResult ReferenceKMeans(
    const std::vector<Tuple>& points,
    std::vector<std::pair<double, double>> initial_centroids,
    int max_iters) {
  KMeansResult result;
  result.centroids = std::move(initial_centroids);
  result.assignment.assign(points.size(), -1);
  for (int it = 0; it < max_iters; ++it) {
    bool switched = false;
    for (size_t i = 0; i < points.size(); ++i) {
      const double x = points[i].field(1).AsDouble();
      const double y = points[i].field(2).AsDouble();
      int best = -1;
      double best_d = std::numeric_limits<double>::infinity();
      for (size_t c = 0; c < result.centroids.size(); ++c) {
        const double dx = x - result.centroids[c].first;
        const double dy = y - result.centroids[c].second;
        const double d = dx * dx + dy * dy;
        if (d < best_d) {
          best_d = d;
          best = static_cast<int>(c);
        }
      }
      if (best != result.assignment[i]) {
        result.assignment[i] = best;
        switched = true;
      }
    }
    result.iterations = it + 1;
    if (!switched && it > 0) break;
    std::vector<double> sx(result.centroids.size(), 0);
    std::vector<double> sy(result.centroids.size(), 0);
    std::vector<int64_t> cnt(result.centroids.size(), 0);
    for (size_t i = 0; i < points.size(); ++i) {
      auto c = static_cast<size_t>(result.assignment[i]);
      sx[c] += points[i].field(1).AsDouble();
      sy[c] += points[i].field(2).AsDouble();
      cnt[c] += 1;
    }
    for (size_t c = 0; c < result.centroids.size(); ++c) {
      if (cnt[c] > 0) {
        result.centroids[c] = {sx[c] / static_cast<double>(cnt[c]),
                               sy[c] / static_cast<double>(cnt[c])};
      }
    }
    if (!switched) break;
  }
  return result;
}

}  // namespace rex
