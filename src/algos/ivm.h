// Incremental view maintenance under base-table updates (the weighted
// ℤ-set generalization of §3.2's delta plane, applied to the base data).
//
// A converged fixpoint run is a materialized view of its base tables. When
// edges change, re-running from scratch discards the converged state; the
// builders here instead compute the *perturbation Δ* a batch of weighted
// edge mutations induces on the converged state, packaged as a
// Cluster::BaseUpdate (table mutations + join-state patches + fixpoint
// seeds) for Cluster::ApplyBaseUpdate to re-converge from.
//
//  - PageRank is linear in the rank vector, so the update is exact: a
//    changed source u retracts its old first-hop contributions
//    (-d·r(u)/|N_old| to each old neighbor) and asserts the new ones
//    (+d·r(u)/|N_new|); the engine's re-convergence propagates the
//    knock-on diffs through the *new* adjacency.
//  - SSSP is not linear: an edge deletion can invalidate distances
//    transitively. The builder computes a conservative affected set (the
//    closure of shortest-path-tree edges below each deleted edge), clears
//    it with -() seeds, and reseeds each affected vertex from its
//    unaffected in-neighbors under the new adjacency; min-merge
//    re-convergence then re-derives exact distances (vertices that lost
//    all paths stay cleared = unreachable).
#ifndef REX_ALGOS_IVM_H_
#define REX_ALGOS_IVM_H_

#include <cstdint>
#include <vector>

#include "cluster/cluster.h"
#include "data/generators.h"
#include "engine/plan_spec.h"

namespace rex {

/// One weighted edge mutation: weight +w inserts w copies of (src, dst),
/// weight -w removes up to w copies. Weight 0 is a no-op. Vertices must
/// already exist (the vertex set is not mutated).
struct EdgeMutation {
  int64_t src = 0;
  int64_t dst = 0;
  int64_t weight = 1;
};

/// Multiset out-adjacency (duplicates = parallel edges, matching physical
/// copies in the join's graph buckets). The caller keeps this mirror
/// current across update batches with ApplyEdgeMutations.
using Adjacency = std::vector<std::vector<int64_t>>;

Adjacency AdjacencyFromGraph(const GraphData& graph);

/// Applies `edges` to the mirror (insert appends, delete removes up to
/// |weight| copies, clamped like the base table).
void ApplyEdgeMutations(Adjacency* adj, const std::vector<EdgeMutation>& edges);

/// Node-id discovery on the hand-built plans (exactly one fixpoint and one
/// graph hash-join each).
Result<int> FindFixpointNode(const PlanSpec& plan);
Result<int> FindGraphJoinNode(const PlanSpec& plan);

/// Exact linear-IVM update for the delta PageRank plan. `ranks` is the
/// converged rank vector, `old_adj` the pre-update adjacency mirror.
Result<Cluster::BaseUpdate> BuildPageRankBaseUpdate(
    const PlanSpec& plan, const std::vector<EdgeMutation>& edges,
    const std::vector<double>& ranks, const Adjacency& old_adj,
    double damping);

/// Affected-set update for the delta SSSP plan. `dist` is the converged
/// distance vector (-1 = unreachable), `old_adj` the pre-update mirror.
Result<Cluster::BaseUpdate> BuildSsspBaseUpdate(
    const PlanSpec& plan, const std::vector<EdgeMutation>& edges,
    const std::vector<int64_t>& dist, const Adjacency& old_adj,
    int64_t source);

}  // namespace rex

#endif  // REX_ALGOS_IVM_H_
