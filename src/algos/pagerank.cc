#include "algos/pagerank.h"

#include <cmath>

namespace rex {

namespace {

/// While-state handler: rank accumulation + thresholded diff propagation.
WhileHandler MakePrFix(const PageRankConfig& config) {
  WhileHandler h;
  h.name = "PRFix" + config.name_suffix;
  h.keeps_unpropagated_state = true;  // sub-threshold diffs accumulate
  const double threshold = config.threshold;
  const bool relative = config.relative;
  const double teleport = 1.0 - config.damping;
  h.update = [threshold, relative, teleport](
                 TupleSet* bucket, const Delta& d) -> Result<DeltaVec> {
    if (d.tuple.size() < 2) {
      return Status::InvalidArgument("PRFix expects (v, diff)");
    }
    const Value& v = d.tuple.field(0);
    REX_ASSIGN_OR_RETURN(double diff, d.tuple.field(1).ToDouble());
    double current = 0.0;
    if (auto existing = bucket->Get(v); existing.has_value()) {
      REX_ASSIGN_OR_RETURN(current, existing->ToDouble());
    }
    const double updated = current + diff;
    bucket->Put(v, Value(updated));
    // Relative cutoff is floored at the teleport mass so the very first
    // diff (rank going 0 -> teleport) always propagates.
    const double cutoff =
        relative ? threshold * std::max(std::fabs(current), teleport)
                 : threshold;
    if (std::fabs(diff) > cutoff) {
      return DeltaVec{Delta::Update(Tuple{v, Value(diff)})};
    }
    return DeltaVec{};
  };
  return h;
}

/// Join-state handler (delta): distribute damping*diff/outdeg to each
/// out-neighbor found in the immutable graph bucket. The delta side keeps
/// no state.
JoinHandler MakePrJoin(const PageRankConfig& config) {
  JoinHandler h;
  h.name = "PRJoin" + config.name_suffix;
  const double damping = config.damping;
  h.update = [damping](TupleSet* /*delta_side*/, TupleSet* graph_bucket,
                       const Delta& d) -> Result<DeltaVec> {
    REX_ASSIGN_OR_RETURN(double diff, d.tuple.field(1).ToDouble());
    DeltaVec out;
    const size_t outdeg = graph_bucket->size();
    if (outdeg == 0) return out;  // generator guarantees outdeg >= 1
    const double share = damping * diff / static_cast<double>(outdeg);
    out.reserve(outdeg);
    for (const Tuple& edge : *graph_bucket) {
      out.push_back(Delta::Update(Tuple{edge.field(1), Value(share)}));
    }
    return out;
  };
  return h;
}

/// Join-state handler (no-delta): distribute each vertex's full damped
/// rank every stratum, plus a zero self-contribution so vertices with no
/// in-edges still refresh their rank to the teleport value.
JoinHandler MakePrJoinFull(const PageRankConfig& config) {
  JoinHandler h;
  h.name = "PRJoinFull" + config.name_suffix;
  const double damping = config.damping;
  h.update = [damping](TupleSet* /*delta_side*/, TupleSet* graph_bucket,
                       const Delta& d) -> Result<DeltaVec> {
    const Value& v = d.tuple.field(0);
    REX_ASSIGN_OR_RETURN(double rank, d.tuple.field(1).ToDouble());
    DeltaVec out;
    const size_t outdeg = graph_bucket->size();
    out.reserve(outdeg + 1);
    if (outdeg > 0) {
      const double share = damping * rank / static_cast<double>(outdeg);
      for (const Tuple& edge : *graph_bucket) {
        out.push_back(Delta::Update(Tuple{edge.field(1), Value(share)}));
      }
    }
    out.push_back(Delta::Update(Tuple{v, Value(0.0)}));
    return out;
  };
  return h;
}

/// Shared recursive tail: [pre-aggregate ->] rehash by target -> final sum.
int AddDiffAggregation(PlanSpec* plan, int join, bool preaggregate) {
  int tail = join;
  GroupByOp::AggSpec sum_diff;
  sum_diff.kind = AggKind::kSum;
  sum_diff.input_field = 1;
  sum_diff.output_name = "diff";
  if (preaggregate) {
    GroupByOp::Params pre;
    pre.key_fields = {0};
    pre.aggs = {sum_diff};
    pre.mode = GroupByOp::Mode::kStratum;
    tail = plan->AddGroupBy(tail, pre);
  }
  RehashOp::Params rh;
  rh.key_fields = {0};
  tail = plan->AddRehash(tail, rh);
  GroupByOp::Params fin;
  fin.key_fields = {0};
  fin.aggs = {sum_diff};
  fin.mode = GroupByOp::Mode::kStratum;
  return plan->AddGroupBy(tail, fin);
}

}  // namespace

Status RegisterPageRankUdfs(UdfRegistry* registry,
                            const PageRankConfig& config) {
  REX_RETURN_NOT_OK(registry->RegisterWhileHandler(MakePrFix(config)));
  REX_RETURN_NOT_OK(registry->RegisterJoinHandler(MakePrJoin(config)));
  return registry->RegisterJoinHandler(MakePrJoinFull(config));
}

Result<PlanSpec> BuildPageRankDeltaPlan(const PageRankConfig& config) {
  PlanSpec plan;
  ScanOp::Params graph_scan;
  graph_scan.table = "graph";
  graph_scan.feeds_immutable = true;
  int g = plan.AddScan(graph_scan);

  ScanOp::Params vertex_scan;
  vertex_scan.table = "vertices";
  int vs = plan.AddScan(vertex_scan);
  // Initial diff: the teleport mass (1 - damping).
  int base = plan.AddProject(
      vs, {Expr::Column(0, "v"), Expr::Const(Value(1.0 - config.damping))});

  FixpointOp::Params fp_params;
  fp_params.key_fields = {0};
  fp_params.while_handler = "PRFix" + config.name_suffix;
  int fp = plan.AddFixpoint(base, fp_params);

  HashJoinOp::Params jp;
  jp.left_keys = {0};
  jp.right_keys = {0};
  jp.immutable[0] = true;  // graph side
  jp.handler = "PRJoin" + config.name_suffix;
  int join = plan.AddHashJoin(g, fp, jp);

  int tail = AddDiffAggregation(&plan, join, config.preaggregate);
  plan.ConnectRecursive(fp, tail);
  REX_RETURN_NOT_OK(plan.Validate());
  return plan;
}

Result<PlanSpec> BuildPageRankFullPlan(const PageRankConfig& config) {
  PlanSpec plan;
  ScanOp::Params graph_scan;
  graph_scan.table = "graph";
  graph_scan.feeds_immutable = true;
  int g = plan.AddScan(graph_scan);

  ScanOp::Params vertex_scan;
  vertex_scan.table = "vertices";
  int vs = plan.AddScan(vertex_scan);
  int base = plan.AddProject(
      vs, {Expr::Column(0, "v"), Expr::Const(Value(1.0))});

  FixpointOp::Params fp_params;
  fp_params.key_fields = {0};
  fp_params.mode = FixpointOp::Mode::kFull;
  fp_params.value_field = 1;
  if (config.relative) {
    fp_params.relative_threshold = config.threshold;
  } else {
    fp_params.change_threshold = config.threshold;
  }
  int fp = plan.AddFixpoint(base, fp_params);

  HashJoinOp::Params jp;
  jp.left_keys = {0};
  jp.right_keys = {0};
  jp.immutable[0] = true;
  jp.handler = "PRJoinFull" + config.name_suffix;
  jp.handler_owns_all = true;
  int join = plan.AddHashJoin(g, fp, jp);

  int agg = AddDiffAggregation(&plan, join, config.preaggregate);
  // rank = teleport + damped contribution sum.
  int teleport = plan.AddProject(
      agg, {Expr::Column(0, "v"),
            Expr::Binary(BinOp::kAdd, Expr::Const(Value(1.0 - config.damping)),
                         Expr::Column(1, "diff"))});
  plan.ConnectRecursive(fp, teleport);
  REX_RETURN_NOT_OK(plan.Validate());
  return plan;
}

Status LoadGraphTables(Cluster* cluster, const GraphData& graph) {
  REX_RETURN_NOT_OK(cluster->CreateTable(
      "graph",
      Schema{{"src", ValueType::kInt}, {"dst", ValueType::kInt}},
      /*key_column=*/0, graph.EdgeRows()));
  return cluster->CreateTable("vertices", Schema{{"v", ValueType::kInt}},
                              /*key_column=*/0, graph.VertexRows());
}

Result<std::vector<double>> RanksFromState(
    const std::vector<Tuple>& fixpoint_state, int64_t num_vertices) {
  std::vector<double> ranks(static_cast<size_t>(num_vertices), 0.0);
  for (const Tuple& t : fixpoint_state) {
    if (t.size() < 2) return Status::Internal("bad rank tuple");
    REX_ASSIGN_OR_RETURN(int64_t v, t.field(0).ToInt());
    REX_ASSIGN_OR_RETURN(double r, t.field(1).ToDouble());
    if (v < 0 || v >= num_vertices) {
      return Status::OutOfRange("vertex id out of range in rank state");
    }
    ranks[static_cast<size_t>(v)] = r;
  }
  return ranks;
}

}  // namespace rex
