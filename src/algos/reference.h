// Single-threaded reference implementations used as ground truth by the
// test suite (never by the engine).
#ifndef REX_ALGOS_REFERENCE_H_
#define REX_ALGOS_REFERENCE_H_

#include <cstdint>
#include <vector>

#include "data/generators.h"

namespace rex {

/// Jacobi power iteration for r = (1-d) + d * A^T (r / outdeg), iterated
/// until no rank changes by more than `tol`.
std::vector<double> ReferencePageRank(const GraphData& graph,
                                      double damping = 0.85,
                                      double tol = 1e-9,
                                      int max_iters = 200);

/// BFS distances (unweighted single-source shortest path); -1 means
/// unreachable.
std::vector<int64_t> ReferenceSssp(const GraphData& graph, int64_t source);

struct KMeansResult {
  std::vector<std::pair<double, double>> centroids;
  std::vector<int> assignment;  // per point, index into centroids
  int iterations = 0;
};

/// Lloyd's algorithm from the given initial centroids until no point
/// switches clusters.
KMeansResult ReferenceKMeans(
    const std::vector<Tuple>& points,  // (pid, x, y)
    std::vector<std::pair<double, double>> initial_centroids,
    int max_iters = 200);

}  // namespace rex

#endif  // REX_ALGOS_REFERENCE_H_
