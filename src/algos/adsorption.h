// Adsorption: random-walk label propagation (Fig 3's fourth algorithm).
//
// Each labeled seed vertex injects its label; label weight flows along
// out-edges with damping, exactly like a multi-source personalized
// PageRank — one independent diffusion per label. The mutable set is the
// complete adsorption vector of every vertex; the Δᵢ set is the vector
// positions whose weight changed by at least the threshold since the last
// iteration (the paper's Fig 3 row).
//
// State tuples are (v, label, weight), fixpoint-keyed on (v, label).
#ifndef REX_ALGOS_ADSORPTION_H_
#define REX_ALGOS_ADSORPTION_H_

#include "cluster/cluster.h"
#include "data/generators.h"
#include "engine/plan_spec.h"

namespace rex {

struct AdsorptionConfig {
  /// Labels are injected at vertices 0..num_labels-1 (label = seed id).
  int num_labels = 4;
  double damping = 0.85;
  double threshold = 1e-3;  // |Δweight| below this is absorbed silently
  std::string name_suffix;
};

Status RegisterAdsorptionUdfs(UdfRegistry* registry,
                              const AdsorptionConfig& config);

/// Delta plan over graph/vertices tables (see algos/pagerank.h loaders).
Result<PlanSpec> BuildAdsorptionDeltaPlan(const AdsorptionConfig& config);

/// Dense result: weights[v][label].
Result<std::vector<std::vector<double>>> AdsorptionFromState(
    const std::vector<Tuple>& fixpoint_state, int64_t num_vertices,
    int num_labels);

/// Single-threaded reference (per-label damped diffusion).
std::vector<std::vector<double>> ReferenceAdsorption(
    const GraphData& graph, int num_labels, double damping = 0.85,
    double tol = 1e-9, int max_iters = 200);

}  // namespace rex

#endif  // REX_ALGOS_ADSORPTION_H_
