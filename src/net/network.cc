#include "net/network.h"

#include <algorithm>

#include "common/logging.h"

namespace rex {

namespace {
// Cap on the simulated exponential backoff between retransmission attempts,
// in ticks. 2^6 = 64 ticks keeps the accounting bounded even if a retry
// budget is configured far above the default.
constexpr int kMaxBackoffShift = 6;
}  // namespace

Network::Network(int num_workers, size_t channel_capacity, int retry_budget)
    : failed_(num_workers),
      bytes_by_sender_(num_workers),
      bytes_matrix_(static_cast<size_t>(num_workers) *
                    static_cast<size_t>(num_workers)),
      seq_(static_cast<size_t>(num_workers + 1) *
           static_cast<size_t>(num_workers)),
      retry_budget_(std::max(retry_budget, 0)) {
  bytes_sent_counter_ = metrics_.GetCounter(metrics::kBytesSent);
  messages_sent_counter_ = metrics_.GetCounter(metrics::kMessagesSent);
  tuples_sent_counter_ = metrics_.GetCounter(metrics::kTuplesSent);
  chaos_dropped_counter_ = metrics_.GetCounter(metrics::kChaosDropped);
  chaos_duplicated_counter_ = metrics_.GetCounter(metrics::kChaosDuplicated);
  retransmits_counter_ = metrics_.GetCounter(metrics::kRetransmits);
  backoff_ticks_counter_ = metrics_.GetCounter(metrics::kBackoffTicks);
  heartbeats_counter_ = metrics_.GetCounter(metrics::kHeartbeats);
  unreachable_counter_ = metrics_.GetCounter(metrics::kUnreachable);
  Counter* bp_blocks = metrics_.GetCounter(metrics::kBackpressureBlocks);
  Counter* bp_sheds = metrics_.GetCounter(metrics::kBackpressureSheds);
  channels_.reserve(num_workers);
  for (int i = 0; i < num_workers; ++i) {
    channels_.push_back(std::make_unique<Channel>());
    channels_.back()->SetCapacity(channel_capacity);
    channels_.back()->SetBackpressureCounters(bp_blocks, bp_sheds);
    failed_[i].store(false);
    bytes_by_sender_[i].store(0);
  }
  for (auto& b : bytes_matrix_) b.store(0);
  for (auto& s : seq_) s.store(0);
}

void Network::Deliver(Message msg) {
  const int to = msg.to_worker;
  if (msg.from_worker >= 0 && msg.from_worker != to &&
      msg.kind != Message::Kind::kControl) {
    const auto bytes = static_cast<int64_t>(msg.ByteSize());
    bytes_by_sender_[msg.from_worker].fetch_add(bytes,
                                                std::memory_order_relaxed);
    bytes_matrix_[static_cast<size_t>(msg.from_worker) *
                      static_cast<size_t>(num_workers()) +
                  static_cast<size_t>(to)]
        .fetch_add(bytes, std::memory_order_relaxed);
    bytes_sent_counter_->Add(bytes);
    messages_sent_counter_->Increment();
    tuples_sent_counter_->Add(static_cast<int64_t>(msg.deltas.size()) +
                              msg.wire_tuples);
  }
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  if (!channels_[to]->Push(std::move(msg))) {
    // Channel closed (or wrong incarnation) concurrently with the failure
    // check; treat as dropped.
    NoteProcessed(in_flight_.fetch_sub(1, std::memory_order_acq_rel));
  }
}

Status Network::Send(Message msg) {
  if (msg.kind == Message::Kind::kHeartbeat) {
    // Out-of-band control plane: heartbeats go straight to the sink without
    // touching channels, the injector, or in-flight accounting.
    heartbeats_counter_->Increment();
    HeartbeatSink* sink = heartbeat_sink_.load(std::memory_order_acquire);
    if (sink != nullptr) sink->OnHeartbeat(msg.from_worker, msg.incarnation);
    return Status::OK();
  }
  const int to = msg.to_worker;
  if (to < 0 || to >= num_workers()) {
    return Status::NetworkError("bad destination worker " +
                                std::to_string(to));
  }
  // Stamp the per-(sender, destination) sequence number. Each pair has one
  // writing thread, so receivers observe strictly increasing values.
  const size_t pair = static_cast<size_t>(msg.from_worker + 1) *
                          static_cast<size_t>(num_workers()) +
                      static_cast<size_t>(to);
  msg.seq = seq_[pair].fetch_add(1, std::memory_order_relaxed) + 1;
  msg.dest_incarnation = channels_[to]->incarnation();

  FaultInjector* injector = fault_injector_.load(std::memory_order_acquire);
  FaultInjector::Action action = FaultInjector::Action::kDeliver;
  // Ack/retransmit loop: an injected drop is a lost packet whose ack never
  // arrives, so the sender backs off exponentially and retransmits until it
  // gets through or the retry budget runs dry. The sender's thread stays
  // blocked here, which preserves per-pair FIFO order.
  int attempts = 0;
  for (;;) {
    action = FaultInjector::Action::kDeliver;
    if (injector != nullptr && msg.kind != Message::Kind::kControl) {
      action = injector->OnSend(&msg);
    }
    if (action != FaultInjector::Action::kDrop) break;
    chaos_dropped_counter_->Increment();
    if (attempts >= retry_budget_) {
      // Budget exhausted: the peer is unreachable. Give up exactly as a
      // send to a crashed worker would — the failure detector (not the
      // data plane) decides what happens to the destination.
      unreachable_counter_->Increment();
      return Status::OK();
    }
    retransmits_counter_->Increment();
    backoff_ticks_counter_->Add(
        int64_t{1} << std::min(attempts, kMaxBackoffShift));
    ++attempts;
  }
  if (failed_[to].load(std::memory_order_acquire)) {
    return Status::OK();  // dropped on the floor, like a crashed peer
  }
  if (action == FaultInjector::Action::kDuplicate) {
    chaos_duplicated_counter_->Increment();
    Deliver(msg);  // same seq: the receiver discards one copy
  }
  Deliver(std::move(msg));
  return Status::OK();
}

void Network::Crash(int worker) {
  channels_[worker]->Close();
  // Drain whatever was queued; each drained message counts as processed.
  while (channels_[worker]->TryPop().has_value()) {
    OnMessageProcessed();
  }
}

void Network::MarkFailed(int worker) {
  failed_[worker].store(true, std::memory_order_release);
  Crash(worker);
}

bool Network::IsFailed(int worker) const {
  return failed_[worker].load(std::memory_order_acquire);
}

void Network::Restore(int worker) {
  channels_[worker]->Reopen();
  failed_[worker].store(false, std::memory_order_release);
}

std::vector<int> Network::LiveWorkers() const {
  std::vector<int> out;
  for (int i = 0; i < num_workers(); ++i) {
    if (!IsFailed(i)) out.push_back(i);
  }
  return out;
}

void Network::NoteProcessed(int64_t previous_in_flight) {
  if (previous_in_flight <= 0) {
    invariant_violated_.store(true, std::memory_order_release);
    REX_LOG(Error) << "in-flight message count went negative ("
                   << previous_in_flight - 1 << ")";
  }
  if (previous_in_flight == 1) {
    std::lock_guard<std::mutex> lock(quiesce_mutex_);
    quiesce_cv_.notify_all();
  }
}

void Network::OnMessageProcessed() {
  NoteProcessed(in_flight_.fetch_sub(1, std::memory_order_acq_rel));
}

void Network::WaitQuiescent() {
  std::unique_lock<std::mutex> lock(quiesce_mutex_);
  quiesce_cv_.wait(lock, [this] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

Status Network::CheckInvariants() const {
  if (invariant_violated_.load(std::memory_order_acquire)) {
    return Status::Internal(
        "network invariant violated: in-flight message count went negative");
  }
  const int64_t now = in_flight_.load(std::memory_order_acquire);
  if (now < 0) {
    return Status::Internal("network invariant violated: in-flight count is " +
                            std::to_string(now));
  }
  return Status::OK();
}

int64_t Network::BytesSentBy(int worker) const {
  return bytes_by_sender_[worker].load(std::memory_order_relaxed);
}

int64_t Network::TotalBytesSent() const {
  int64_t total = 0;
  for (const auto& b : bytes_by_sender_) {
    total += b.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<std::vector<int64_t>> Network::BytesMatrix() const {
  const auto n = static_cast<size_t>(num_workers());
  std::vector<std::vector<int64_t>> out(n, std::vector<int64_t>(n, 0));
  for (size_t from = 0; from < n; ++from) {
    for (size_t to = 0; to < n; ++to) {
      out[from][to] =
          bytes_matrix_[from * n + to].load(std::memory_order_relaxed);
    }
  }
  return out;
}

void Network::ResetByteCounts() {
  for (auto& b : bytes_by_sender_) b.store(0, std::memory_order_relaxed);
  for (auto& b : bytes_matrix_) b.store(0, std::memory_order_relaxed);
}

}  // namespace rex
