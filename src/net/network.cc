#include "net/network.h"

#include "common/logging.h"

namespace rex {

Network::Network(int num_workers)
    : failed_(num_workers), bytes_by_sender_(num_workers) {
  channels_.reserve(num_workers);
  for (int i = 0; i < num_workers; ++i) {
    channels_.push_back(std::make_unique<Channel>());
    failed_[i].store(false);
    bytes_by_sender_[i].store(0);
  }
}

Status Network::Send(Message msg) {
  const int to = msg.to_worker;
  if (to < 0 || to >= num_workers()) {
    return Status::NetworkError("bad destination worker " +
                                std::to_string(to));
  }
  if (failed_[to].load(std::memory_order_acquire)) {
    return Status::OK();  // dropped on the floor, like a crashed peer
  }
  if (msg.from_worker >= 0 && msg.from_worker != to &&
      msg.kind != Message::Kind::kControl) {
    const auto bytes = static_cast<int64_t>(msg.ByteSize());
    bytes_by_sender_[msg.from_worker].fetch_add(bytes,
                                                std::memory_order_relaxed);
    metrics_.GetCounter(metrics::kBytesSent)->Add(bytes);
    metrics_.GetCounter(metrics::kMessagesSent)->Increment();
    metrics_.GetCounter(metrics::kTuplesSent)
        ->Add(static_cast<int64_t>(msg.deltas.size()));
  }
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  if (!channels_[to]->Push(std::move(msg))) {
    // Channel closed concurrently with the failure check; treat as dropped.
    if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(quiesce_mutex_);
      quiesce_cv_.notify_all();
    }
  }
  return Status::OK();
}

void Network::MarkFailed(int worker) {
  failed_[worker].store(true, std::memory_order_release);
  channels_[worker]->Close();
  // Drain whatever was queued; each drained message counts as processed.
  while (channels_[worker]->TryPop().has_value()) {
    OnMessageProcessed();
  }
}

bool Network::IsFailed(int worker) const {
  return failed_[worker].load(std::memory_order_acquire);
}

void Network::Restore(int worker) {
  channels_[worker]->Reopen();
  failed_[worker].store(false, std::memory_order_release);
}

std::vector<int> Network::LiveWorkers() const {
  std::vector<int> out;
  for (int i = 0; i < num_workers(); ++i) {
    if (!IsFailed(i)) out.push_back(i);
  }
  return out;
}

void Network::OnMessageProcessed() {
  if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(quiesce_mutex_);
    quiesce_cv_.notify_all();
  }
}

void Network::WaitQuiescent() {
  std::unique_lock<std::mutex> lock(quiesce_mutex_);
  quiesce_cv_.wait(lock, [this] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

int64_t Network::BytesSentBy(int worker) const {
  return bytes_by_sender_[worker].load(std::memory_order_relaxed);
}

int64_t Network::TotalBytesSent() const {
  int64_t total = 0;
  for (const auto& b : bytes_by_sender_) {
    total += b.load(std::memory_order_relaxed);
  }
  return total;
}

void Network::ResetByteCounts() {
  for (auto& b : bytes_by_sender_) b.store(0, std::memory_order_relaxed);
}

}  // namespace rex
