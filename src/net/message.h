// Messages exchanged between worker nodes (and between the driver and
// workers). REX passes batched messages over per-destination channels; a
// message addresses a specific operator input port in the receiver's plan.
#ifndef REX_NET_MESSAGE_H_
#define REX_NET_MESSAGE_H_

#include <cstdint>
#include <string>

#include "common/delta.h"

namespace rex {

/// Punctuation (Tucker & Maier): marker tuples informing operators that the
/// current stratum — or the whole query / an input stream — has ended.
struct Punctuation {
  enum class Kind : uint8_t {
    kEndOfStratum = 0,  // current recursive step finished
    kEndOfQuery = 1,    // termination condition met; drain and finish
    kEndOfStream = 2,   // a non-recursive input is exhausted
  };
  Kind kind = Kind::kEndOfStratum;
  int stratum = 0;

  std::string ToString() const;
};

/// Driver -> worker control verbs.
struct ControlMsg {
  enum class Kind : uint8_t {
    kStartStratum = 0,  // begin stratum `stratum`: sources emit, then punct
    /// Incremental recovery phase 1: install the new partition snapshot,
    /// reset transient operator state, restore fixpoint state from
    /// checkpoints up to `stratum` (the last completed stratum).
    kRecoverPrepare = 1,
    /// Incremental recovery phase 2: scans re-emit rows whose ownership
    /// moved, rebuilding immutable state on takeover nodes.
    kRecoverReload = 2,
    /// Guided-replay recovery: re-run checkpointed stratum `stratum` through
    /// the loop body to rebuild derived state (persistent group-bys, joins
    /// with stateful handlers). Stratum 0 re-runs the base case; stratum
    /// s >= 1 first applies the fixpoints' checkpointed Δ set of stratum
    /// s-1, then flushes it through the loop. Fixpoints discard the deltas
    /// that come back around (ExecContext::replay_mode).
    kReplayStratum = 3,
    /// Guided-replay recovery epilogue: apply the final checkpointed Δ set
    /// (stratum `stratum`) so pending_ holds the resumption flush, then
    /// leave replay mode.
    kReplayEnd = 4,
    /// Liveness probe: the worker answers with a kHeartbeat message. Served
    /// even when the worker has a pending error, so an errored-but-running
    /// worker is not mistaken for a dead one.
    kPing = 5,
    kNone = 255,
  };
  Kind kind = Kind::kNone;
  int stratum = 0;
};

/// One unit of inter-node communication.
struct Message {
  enum class Kind : uint8_t {
    kData = 0,
    kPunctuation = 1,
    kControl = 2,
    /// Worker -> driver liveness reply. Routed synchronously to the
    /// registered HeartbeatSink; never enters a channel or the fault
    /// injector, mirroring an out-of-band control plane.
    kHeartbeat = 3,
  };

  Kind kind = Kind::kData;
  int from_worker = -1;
  int to_worker = -1;
  /// Target operator id within the receiving worker's plan (kData /
  /// kPunctuation); -1 for control messages, which address the worker.
  int target_op = -1;
  /// Input port of the target operator.
  int target_port = 0;
  /// Per-(sender, destination) sequence number stamped by Network::Send
  /// (1-based; 0 = unstamped). Receivers discard messages whose sequence
  /// number is not strictly increasing, which makes injected duplicate
  /// deliveries exactly-once, like TCP retransmissions.
  uint64_t seq = 0;
  /// Channel incarnation the sender believes the destination is on, stamped
  /// by Network::Send. A channel rejects messages for an older incarnation,
  /// so a revived worker never consumes pre-crash traffic. -1 bypasses the
  /// check (messages enqueued without going through Send).
  int dest_incarnation = -1;
  /// kHeartbeat payload: the responding worker's own incarnation, so the
  /// failure detector can ignore heartbeats from a stale incarnation.
  int incarnation = 0;

  DeltaVec deltas;   // kData payload
  Punctuation punct;  // kPunctuation payload
  ControlMsg control;  // kControl payload

  /// Wire-run compression (EngineConfig::diff_wire_runs): a large coalesced
  /// rehash run ships as one opaque serialized payload instead of `deltas` —
  /// either the raw serialized run (kRaw) or a rolling-hash binary delta
  /// (common/delta_codec.h) against the previous run on the same
  /// (sender, receiver, operator) edge (kDelta). Both sides advance the
  /// edge reference to the decoded raw bytes, so every payload message is
  /// also the next message's dictionary. `deltas` stays empty in this mode
  /// (the fault injector's payload shuffles cannot touch packed runs; edge
  /// integrity is guarded by the checksums below instead).
  enum class WireCodec : uint8_t {
    kNone = 0,  // plain `deltas` payload (small runs, broadcasts, control)
    kRaw = 1,   // payload = serialized run (starts/resets the edge chain)
    kDelta = 2,  // payload = codec delta against edge run `wire_ref_seq`
  };
  WireCodec wire_codec = WireCodec::kNone;
  std::string wire_payload;
  uint64_t wire_run_seq = 0;   // 1-based run counter on this edge
  uint64_t wire_ref_seq = 0;   // kDelta: edge run encoded against
  uint64_t wire_ref_check = 0;  // kDelta: checksum of that reference run
  uint64_t wire_raw_check = 0;  // checksum of the decoded raw run
  uint32_t wire_raw_size = 0;   // decoded size (caps the decoder's output)
  /// Tuples packed inside `wire_payload`, so Network::Deliver meters
  /// net.tuples_sent identically with the codec on or off.
  int64_t wire_tuples = 0;

  static Message Data(int from, int to, int op, int port, DeltaVec d) {
    Message m;
    m.kind = Kind::kData;
    m.from_worker = from;
    m.to_worker = to;
    m.target_op = op;
    m.target_port = port;
    m.deltas = std::move(d);
    return m;
  }

  static Message Punct(int from, int to, int op, int port, Punctuation p) {
    Message m;
    m.kind = Kind::kPunctuation;
    m.from_worker = from;
    m.to_worker = to;
    m.target_op = op;
    m.target_port = port;
    m.punct = p;
    return m;
  }

  static Message Control(int to, ControlMsg c) {
    Message m;
    m.kind = Kind::kControl;
    m.to_worker = to;
    m.control = c;
    return m;
  }

  static Message Heartbeat(int from, int incarnation) {
    Message m;
    m.kind = Kind::kHeartbeat;
    m.from_worker = from;
    m.to_worker = -1;  // addressed to the driver's HeartbeatSink
    m.incarnation = incarnation;
    return m;
  }

  /// Approximate wire size: payload plus a fixed header. Packed-run
  /// messages count the opaque payload plus the codec framing
  /// (kWireMetaBytes) instead of per-delta sizes.
  size_t ByteSize() const;

  /// Serialized codec framing for packed-run messages: mode byte, run/ref
  /// sequence numbers, two checksums, raw size, tuple count.
  static constexpr size_t kWireMetaBytes = 29;
};

}  // namespace rex

#endif  // REX_NET_MESSAGE_H_
