// The simulated cluster interconnect.
//
// Stands in for REX's TCP layer: per-worker inbox channels, batched
// messages, per-node byte metering (backing Figure 11), failure simulation
// (sends to failed nodes are dropped, mirroring connection loss), and global
// in-flight accounting used by the driver to detect stratum quiescence.
//
// A FaultInjector hook may be installed to deterministically drop, reorder
// (within a batch), or duplicate messages. Dropped sends are survived by
// protocol, not tolerance: Send retransmits with exponential backoff under a
// bounded retry budget, so a chaos drop window delays a message instead of
// losing it. The in-flight count stays exact under every injected fault, and
// a runtime invariant checker flags any transition of the count below zero.
#ifndef REX_NET_NETWORK_H_
#define REX_NET_NETWORK_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "net/channel.h"
#include "net/fault_injector.h"

namespace rex {

/// Receiver of worker heartbeat replies (the driver's failure detector).
/// Heartbeats are routed to the sink synchronously from the sending worker's
/// thread — an out-of-band control plane that bypasses inbox channels, the
/// fault injector, and in-flight accounting — so OnHeartbeat must be
/// thread-safe. Declared here so net/ does not depend on cluster/.
class HeartbeatSink {
 public:
  virtual ~HeartbeatSink() = default;
  virtual void OnHeartbeat(int worker, int incarnation) = 0;
};

class Network {
 public:
  /// `channel_capacity` bounds each inbox (0 = unbounded); `retry_budget`
  /// caps retransmission attempts per message before the sender gives up.
  explicit Network(int num_workers, size_t channel_capacity = 0,
                   int retry_budget = 16);

  int num_workers() const { return static_cast<int>(channels_.size()); }

  /// Routes a message to its destination inbox. Cross-worker data is
  /// metered; messages to failed workers are dropped (returns OK, like a
  /// TCP send racing a crash). Injected drops are retransmitted with
  /// exponential backoff until delivered or the retry budget is exhausted.
  /// Returns NetworkError only if the destination id is out of range.
  Status Send(Message msg);

  Channel* channel(int worker) { return channels_[worker].get(); }

  /// Installs (or clears, with nullptr) the fault-injection hook consulted
  /// by Send for every non-control message. Driver thread, quiescent.
  void set_fault_injector(FaultInjector* injector) {
    fault_injector_.store(injector, std::memory_order_release);
  }

  /// Installs (or clears) the synchronous receiver of kHeartbeat messages.
  void set_heartbeat_sink(HeartbeatSink* sink) {
    heartbeat_sink_.store(sink, std::memory_order_release);
  }

  /// Simulates a crash of `worker`: closes its inbox and drains queued
  /// messages (they are lost, as on a real crash) — but does NOT mark the
  /// worker failed. Nobody else in the cluster learns about the crash from
  /// this call; the failure detector must notice the silence. Safe to call
  /// from any thread (a fault injector may crash a node mid-send).
  void Crash(int worker);

  /// Confirms a detected failure: sets the failed flag (sends are dropped
  /// from now on) in addition to Crash's close + drain. Safe anywhere.
  void MarkFailed(int worker);
  bool IsFailed(int worker) const;
  /// Clears the failed flag and reopens the inbox (node replacement). The
  /// reopened channel is a new incarnation: straggler messages stamped for
  /// the pre-crash incarnation are rejected on Push.
  void Restore(int worker);
  std::vector<int> LiveWorkers() const;

  /// Called by a worker after it has fully processed one message (all sends
  /// that processing triggered have already been counted).
  void OnMessageProcessed();

  /// Blocks until no messages are queued or being processed anywhere.
  /// Precondition for correctness: new messages are only created while
  /// processing existing ones, so a zero count is a stable global state.
  void WaitQuiescent();

  /// Runtime invariant (chaos harness): the in-flight count must never go
  /// negative. Any violation is latched and surfaced here; the driver
  /// checks after every quiescence barrier.
  Status CheckInvariants() const;

  /// Bytes sent over the (simulated) wire by each worker. Loopback traffic
  /// is not counted, matching "data sent by each node" in §6.5.
  int64_t BytesSentBy(int worker) const;
  int64_t TotalBytesSent() const;
  /// Full (sender, receiver) byte matrix: result[from][to]. Loopback cells
  /// are always zero (unmetered); rows/cols are worker ids.
  std::vector<std::vector<int64_t>> BytesMatrix() const;
  void ResetByteCounts();

  MetricsRegistry& metrics() { return metrics_; }

 private:
  /// Meters + enqueues one already-stamped message copy.
  void Deliver(Message msg);
  void NoteProcessed(int64_t previous_in_flight);

  std::vector<std::unique_ptr<Channel>> channels_;
  std::vector<std::atomic<bool>> failed_;
  std::vector<std::atomic<int64_t>> bytes_by_sender_;
  /// Row-major (sender, receiver) byte matrix behind bytes_by_sender_.
  std::vector<std::atomic<int64_t>> bytes_matrix_;
  /// Hot-path metric handles (Deliver/Send run per message; a registry
  /// lookup there takes a mutex per call).
  Counter* bytes_sent_counter_;
  Counter* messages_sent_counter_;
  Counter* tuples_sent_counter_;
  Counter* chaos_dropped_counter_;
  Counter* chaos_duplicated_counter_;
  Counter* retransmits_counter_;
  Counter* backoff_ticks_counter_;
  Counter* heartbeats_counter_;
  Counter* unreachable_counter_;
  /// Per (sender, destination) sequence counters; row 0 is the driver
  /// (from_worker == -1). Each pair has a single writing thread, but sends
  /// may race a concurrent MarkFailed, so the counters stay atomic.
  std::vector<std::atomic<uint64_t>> seq_;

  const int retry_budget_;

  std::atomic<FaultInjector*> fault_injector_{nullptr};
  std::atomic<HeartbeatSink*> heartbeat_sink_{nullptr};

  MetricsRegistry metrics_;

  std::mutex quiesce_mutex_;
  std::condition_variable quiesce_cv_;
  std::atomic<int64_t> in_flight_{0};

  std::atomic<bool> invariant_violated_{false};
};

namespace metrics {
inline constexpr const char kChaosDropped[] = "chaos.messages_dropped";
inline constexpr const char kChaosDuplicated[] = "chaos.messages_duplicated";
/// Duplicate deliveries discarded by receivers' sequence-number check.
inline constexpr const char kDupDiscarded[] = "net.dup_discarded";
/// Retransmission attempts after an injected drop (ack timeout analogue).
inline constexpr const char kRetransmits[] = "net.retransmits";
/// Total simulated exponential-backoff ticks spent waiting to retransmit.
inline constexpr const char kBackoffTicks[] = "net.backoff_ticks";
/// Heartbeat replies routed to the HeartbeatSink.
inline constexpr const char kHeartbeats[] = "net.heartbeats";
/// Messages abandoned after exhausting the retransmission budget.
inline constexpr const char kUnreachable[] = "net.unreachable";
/// Producers that blocked on a full (bounded) channel.
inline constexpr const char kBackpressureBlocks[] = "net.backpressure_blocks";
/// Messages shed to the spill path after the backpressure grace period.
inline constexpr const char kBackpressureSheds[] = "net.backpressure_sheds";
}  // namespace metrics

}  // namespace rex

#endif  // REX_NET_NETWORK_H_
