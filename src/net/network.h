// The simulated cluster interconnect.
//
// Stands in for REX's TCP layer: per-worker inbox channels, batched
// messages, per-node byte metering (backing Figure 11), failure simulation
// (sends to failed nodes are dropped, mirroring connection loss), and global
// in-flight accounting used by the driver to detect stratum quiescence.
#ifndef REX_NET_NETWORK_H_
#define REX_NET_NETWORK_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "net/channel.h"

namespace rex {

class Network {
 public:
  explicit Network(int num_workers);

  int num_workers() const { return static_cast<int>(channels_.size()); }

  /// Routes a message to its destination inbox. Cross-worker data is
  /// metered; messages to failed workers are dropped (returns OK, like a
  /// TCP send racing a crash). Returns NetworkError only if the
  /// destination id is out of range.
  Status Send(Message msg);

  Channel* channel(int worker) { return channels_[worker].get(); }

  /// Marks a worker failed: closes its inbox, drains queued messages (they
  /// are lost, as on a crash) and adjusts the in-flight count.
  void MarkFailed(int worker);
  bool IsFailed(int worker) const;
  /// Clears the failed flag and reopens the inbox (node replacement).
  void Restore(int worker);
  std::vector<int> LiveWorkers() const;

  /// Called by a worker after it has fully processed one message (all sends
  /// that processing triggered have already been counted).
  void OnMessageProcessed();

  /// Blocks until no messages are queued or being processed anywhere.
  /// Precondition for correctness: new messages are only created while
  /// processing existing ones, so a zero count is a stable global state.
  void WaitQuiescent();

  /// Bytes sent over the (simulated) wire by each worker. Loopback traffic
  /// is not counted, matching "data sent by each node" in §6.5.
  int64_t BytesSentBy(int worker) const;
  int64_t TotalBytesSent() const;
  void ResetByteCounts();

  MetricsRegistry& metrics() { return metrics_; }

 private:
  std::vector<std::unique_ptr<Channel>> channels_;
  std::vector<std::atomic<bool>> failed_;
  std::vector<std::atomic<int64_t>> bytes_by_sender_;

  MetricsRegistry metrics_;

  std::mutex quiesce_mutex_;
  std::condition_variable quiesce_cv_;
  std::atomic<int64_t> in_flight_{0};
};

}  // namespace rex

#endif  // REX_NET_NETWORK_H_
