// Fault-injection hook for the simulated interconnect.
//
// Network::Send consults the installed injector for every non-control
// message before it is enqueued. The injector may mutate the message in
// place (e.g. permute the deltas of a batch, simulating reordered packets
// that are reassembled per-message), drop it (a send racing a crash), or
// request duplicate delivery (a retransmission whose original was not
// actually lost). Sequence numbers stamped by the network let receivers
// discard duplicates exactly once, mirroring TCP semantics.
//
// Implementations must be thread-safe: Send is called concurrently from
// every worker thread.
#ifndef REX_NET_FAULT_INJECTOR_H_
#define REX_NET_FAULT_INJECTOR_H_

#include "net/message.h"

namespace rex {

class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  enum class Action {
    kDeliver,    // pass through (possibly mutated in place)
    kDrop,       // never enqueued; in-flight count untouched
    kDuplicate,  // enqueued twice with the same sequence number
  };

  /// Decides the fate of one outgoing message. May mutate `msg` (payload
  /// reorder) but must not change its routing fields or sequence number.
  virtual Action OnSend(Message* msg) = 0;
};

}  // namespace rex

#endif  // REX_NET_FAULT_INJECTOR_H_
