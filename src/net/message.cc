#include "net/message.h"

namespace rex {

std::string Punctuation::ToString() const {
  switch (kind) {
    case Kind::kEndOfStratum:
      return "EOS(stratum=" + std::to_string(stratum) + ")";
    case Kind::kEndOfQuery:
      return "EOQ(stratum=" + std::to_string(stratum) + ")";
    case Kind::kEndOfStream:
      return "EOStream";
  }
  return "?";
}

size_t Message::ByteSize() const {
  // 20-byte header: kind, from, to, op, port.
  size_t n = 20;
  for (const Delta& d : deltas) n += d.ByteSize();
  if (wire_codec != WireCodec::kNone) n += kWireMetaBytes + wire_payload.size();
  if (kind == Kind::kPunctuation) n += 5;
  return n;
}

}  // namespace rex
