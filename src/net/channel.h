// Blocking multi-producer single-consumer channel: each worker node's inbox.
// Per-sender FIFO order is guaranteed (a single mutex-protected deque), which
// the punctuation protocol relies on.
//
// Channels are optionally bounded: a capacity > 0 enables credit-based flow
// control where Push blocks while the queue is full (data / punctuation
// messages only — control traffic must never be throttled). A producer that
// stays blocked past a bounded grace period sheds the message to the
// disk-simulated spill path: the message is enqueued anyway and counted so
// the engine can account for spilled overload instead of deadlocking.
//
// Channels also carry an incarnation number, bumped on every Reopen. A
// message stamped for an older incarnation is rejected, so a revived worker
// never consumes a batch addressed to its previous life.
#ifndef REX_NET_CHANNEL_H_
#define REX_NET_CHANNEL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "common/metrics.h"
#include "net/message.h"

namespace rex {

class Channel {
 public:
  /// Enqueues a message. Returns false if the channel is closed or the
  /// message was stamped for an older incarnation of this channel. When the
  /// channel is bounded and full, blocks (data / punctuation only) until
  /// space frees up or the shed grace period elapses.
  bool Push(Message msg);

  /// Blocks until a message is available or the channel is closed and
  /// drained; returns nullopt in the latter case.
  std::optional<Message> Pop();

  /// Non-blocking pop; nullopt if empty (does not wait).
  std::optional<Message> TryPop();

  /// Wakes all blocked consumers and producers; subsequent Push calls fail.
  void Close();

  /// Re-opens a closed, drained channel (worker restart in recovery tests).
  /// Discards any queued pre-crash messages and bumps the incarnation so
  /// stragglers stamped for the old incarnation are rejected.
  void Reopen();

  /// Sets the flow-control bound. 0 (the default) means unbounded.
  void SetCapacity(size_t capacity);

  /// Registers counters incremented when a producer blocks on a full
  /// channel and when it sheds after the grace period. May be null.
  void SetBackpressureCounters(Counter* blocks, Counter* sheds);

  int incarnation() const;

  size_t size() const;
  bool closed() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;        // consumer side: data available
  std::condition_variable space_cv_;  // producer side: space available
  std::deque<Message> queue_;
  bool closed_ = false;
  size_t capacity_ = 0;  // 0 = unbounded
  int incarnation_ = 0;
  Counter* backpressure_blocks_ = nullptr;
  Counter* backpressure_sheds_ = nullptr;
};

}  // namespace rex

#endif  // REX_NET_CHANNEL_H_
