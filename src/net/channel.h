// Blocking multi-producer single-consumer channel: each worker node's inbox.
// Per-sender FIFO order is guaranteed (a single mutex-protected deque), which
// the punctuation protocol relies on.
#ifndef REX_NET_CHANNEL_H_
#define REX_NET_CHANNEL_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "net/message.h"

namespace rex {

class Channel {
 public:
  /// Enqueues a message. Returns false if the channel is closed.
  bool Push(Message msg);

  /// Blocks until a message is available or the channel is closed and
  /// drained; returns nullopt in the latter case.
  std::optional<Message> Pop();

  /// Non-blocking pop; nullopt if empty (does not wait).
  std::optional<Message> TryPop();

  /// Wakes all blocked consumers; subsequent Push calls fail.
  void Close();

  /// Re-opens a closed, drained channel (worker restart in recovery tests).
  void Reopen();

  size_t size() const;
  bool closed() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  bool closed_ = false;
};

}  // namespace rex

#endif  // REX_NET_CHANNEL_H_
