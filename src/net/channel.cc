#include "net/channel.h"

namespace rex {

bool Channel::Push(Message msg) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return false;
    queue_.push_back(std::move(msg));
  }
  cv_.notify_one();
  return true;
}

std::optional<Message> Channel::Pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return std::nullopt;
  Message m = std::move(queue_.front());
  queue_.pop_front();
  return m;
}

std::optional<Message> Channel::TryPop() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (queue_.empty()) return std::nullopt;
  Message m = std::move(queue_.front());
  queue_.pop_front();
  return m;
}

void Channel::Close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

void Channel::Reopen() {
  std::lock_guard<std::mutex> lock(mutex_);
  closed_ = false;
  queue_.clear();
}

size_t Channel::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

bool Channel::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

}  // namespace rex
