#include "net/channel.h"

#include <chrono>

namespace rex {

namespace {
// Grace period a producer blocks on a full channel before shedding the
// message to the spill path. Bounded so mutually backpressured workers
// (A's inbox full of B's batches and vice versa) cannot deadlock.
constexpr auto kShedGracePeriod = std::chrono::milliseconds(20);
}  // namespace

bool Channel::Push(Message msg) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (closed_) return false;
    if (msg.dest_incarnation >= 0 && msg.dest_incarnation != incarnation_) {
      // Stamped for a previous life of this channel: the sender raced with a
      // crash/revive cycle. Reject — a revived worker must never consume
      // pre-crash traffic.
      return false;
    }
    // Control and heartbeat traffic bypasses flow control: throttling the
    // control plane would wedge recovery and failure detection.
    bool throttled = msg.kind == Message::Kind::kData ||
                     msg.kind == Message::Kind::kPunctuation;
    if (throttled && capacity_ > 0 && queue_.size() >= capacity_) {
      if (backpressure_blocks_) backpressure_blocks_->Increment();
      bool have_space = space_cv_.wait_for(lock, kShedGracePeriod, [this] {
        return closed_ || queue_.size() < capacity_;
      });
      if (closed_) return false;
      if (!have_space) {
        // Shed: enqueue anyway, accounted as spilled-to-disk overload rather
        // than dropped, so delivery stays reliable under sustained pressure.
        if (backpressure_sheds_) backpressure_sheds_->Increment();
      }
    }
    queue_.push_back(std::move(msg));
  }
  cv_.notify_one();
  return true;
}

std::optional<Message> Channel::Pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return std::nullopt;
  Message m = std::move(queue_.front());
  queue_.pop_front();
  lock.unlock();
  space_cv_.notify_one();
  return m;
}

std::optional<Message> Channel::TryPop() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (queue_.empty()) return std::nullopt;
  Message m = std::move(queue_.front());
  queue_.pop_front();
  lock.unlock();
  space_cv_.notify_one();
  return m;
}

void Channel::Close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
  space_cv_.notify_all();
}

void Channel::Reopen() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = false;
    queue_.clear();
    ++incarnation_;
  }
  space_cv_.notify_all();
}

void Channel::SetCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity;
}

void Channel::SetBackpressureCounters(Counter* blocks, Counter* sheds) {
  std::lock_guard<std::mutex> lock(mutex_);
  backpressure_blocks_ = blocks;
  backpressure_sheds_ = sheds;
}

int Channel::incarnation() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return incarnation_;
}

size_t Channel::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

bool Channel::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

}  // namespace rex
