// Calibration queries measuring a node's CPU / disk / network rates for
// the optimizer's cost model (§5).
#ifndef REX_OPTIMIZER_CALIBRATION_H_
#define REX_OPTIMIZER_CALIBRATION_H_

#include "optimizer/stats.h"

namespace rex {

struct CalibrationOptions {
  int64_t cpu_tuples = 2'000'000;   // tuples hashed for the CPU probe
  int64_t disk_bytes = 8 << 20;     // bytes written+read for the disk probe
  int64_t net_bytes = 64 << 20;     // bytes copied for the transfer probe
};

/// Measures this machine's rates with real micro-workloads.
Result<NodeCalibration> RunNodeCalibration(
    const CalibrationOptions& options = {});

/// Calibration for an in-process cluster (all workers share the machine).
Result<ClusterCalibration> RunClusterCalibration(
    int num_workers, const CalibrationOptions& options = {});

}  // namespace rex

#endif  // REX_OPTIMIZER_CALIBRATION_H_
