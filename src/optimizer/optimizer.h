// The REX query optimizer (§5).
//
// Top-down plan enumeration with branch-and-bound over a query block:
//  - join-order enumeration (linear and bushy) with memoization, costed
//    under the CPU/disk/network overlap model and partitioning-aware
//    (rehash inserted only when a subplan is not already partitioned on
//    the join key),
//  - interleaving of expensive UDF predicates with joins, ordered by rank
//    (cost per tuple / selectivity) following Hellerstein-Stonebraker
//    predicate migration [13] extended with the resource-vector model,
//  - UDA pre-aggregation pushdown (§5.2): a single maximally-pushed
//    pre-aggregate, through arbitrary joins for composable UDAs (with
//    multiply compensation on multiplicative joins when a multFn is
//    supplied), under key-foreign-key joins otherwise,
//  - deterministic-function caching reflected in cost estimates,
//  - recursive query costing (§5.3) by simulated iteration with
//    cardinality/cost capping.
#ifndef REX_OPTIMIZER_OPTIMIZER_H_
#define REX_OPTIMIZER_OPTIMIZER_H_

#include <optional>
#include <string>
#include <vector>

#include "engine/plan_spec.h"
#include "optimizer/cost_model.h"
#include "optimizer/stats.h"

namespace rex {

/// A base relation in the FROM clause.
struct TableRef {
  std::string name;
  Schema schema;
  /// Column the stored table is partitioned on (empty = unpartitioned).
  std::string partition_column;
};

/// An equi-join predicate between two base tables.
struct JoinPredSpec {
  std::string left_table;
  std::string left_column;
  std::string right_table;
  std::string right_column;
  /// The join key is unique on this side (primary key), making the join
  /// key-foreign-key; "" = neither (a multiplicative join).
  std::string key_side;  // "left", "right", or ""
};

/// A single-table predicate: either a cheap expression or an expensive UDF
/// call whose cost/selectivity come from the stats catalog.
struct PredicateSpec {
  std::string table;
  /// Cheap predicate, bound to the table's schema. Null when udf set.
  ExprPtr expr;
  /// Expensive scalar-UDF predicate by registry name.
  std::string udf;
  std::vector<std::string> udf_args;  // column names on `table`
  double selectivity = 0.5;           // cheap-predicate estimate
};

/// Aggregation on top of the join result.
struct AggQuerySpec {
  struct Item {
    AggKind kind = AggKind::kSum;
    std::string table;   // input column's table ("" for count(*))
    std::string column;  // "" for count(*)
    std::string output_name;
  };
  std::vector<std::pair<std::string, std::string>> group_by;  // (table, col)
  std::vector<Item> items;
  /// Alternatively a UDA (by name); its composability/multFn come from
  /// the registry via the catalog profile.
  std::string uda;
  bool uda_composable = false;
  bool uda_has_mult_fn = false;
};

struct QueryBlock {
  std::vector<TableRef> tables;
  std::vector<JoinPredSpec> joins;
  std::vector<PredicateSpec> predicates;
  std::optional<AggQuerySpec> agg;
  /// Output projection for non-aggregate queries: (table, column) pairs.
  /// Empty = all columns in join order.
  std::vector<std::pair<std::string, std::string>> project;
};

/// What the optimizer decided, for EXPLAIN output and tests.
struct OptimizerDecisions {
  std::string join_tree;  // e.g. "((a ⋈ b) ⋈ c)"
  /// (udf name, placement) with placement "pushdown:<table>" or
  /// "after-joins".
  std::vector<std::pair<std::string, std::string>> predicate_placement;
  /// Per-table order in which pushed predicates apply (rank order).
  std::vector<std::string> rank_order;
  bool preagg_combiner = false;   // partial agg before the final rehash
  bool preagg_below_join = false;  // §5.2 pushdown under a join
  bool multiply_compensation = false;
  int plans_considered = 0;
  int plans_pruned = 0;
};

struct OptimizedQuery {
  PlanSpec spec;
  CostEstimate cost;
  OptimizerDecisions decisions;
};

struct OptimizerOptions {
  bool enable_preagg = true;
  bool enable_predicate_migration = true;
  bool caching_enabled = true;
  int max_tables = 12;  // bitmask enumeration bound
};

class Optimizer {
 public:
  Optimizer(const StatsCatalog* stats, ClusterCalibration calibration,
            OptimizerOptions options = {})
      : stats_(stats),
        calibration_(std::move(calibration)),
        options_(options) {}

  /// Optimizes a query block into an executable PlanSpec (ending in a
  /// sink) plus the cost estimate and decision record.
  Result<OptimizedQuery> Optimize(const QueryBlock& query) const;

  /// §5.2's below-join pre-aggregation, including multiply compensation on
  /// multiplicative (non key-FK) joins: for a two-table join-aggregate
  /// where every grouping column and aggregate input comes from one side,
  /// both sides pre-aggregate per join key and each partial is multiplied
  /// by the opposite group's cardinality (count(*) added transparently).
  /// Returns the lowered plan when the pattern applies AND the cost model
  /// prefers it; nullopt otherwise.
  Result<std::optional<OptimizedQuery>> TryAggBelowJoinPushdown(
      const QueryBlock& query, double no_push_time) const;

  /// §5.3: simulated-iteration costing of a recursive query. `step` maps
  /// an input cardinality to the recursive case's (cost, output rows);
  /// cardinalities and costs are capped by the previous iteration's to
  /// tame divergent estimates. Returns (total cost, iterations estimated).
  static std::pair<CostEstimate, int> EstimateRecursive(
      const CostEstimate& base,
      const std::function<CostEstimate(double input_rows)>& step,
      int max_iters = 100);

 private:
  const StatsCatalog* stats_;
  ClusterCalibration calibration_;
  OptimizerOptions options_;
};

/// Rank of a predicate per [13]: cost-per-tuple / (1 - selectivity).
/// Lower rank applies first.
double PredicateRank(double cost_per_tuple, double selectivity);

/// Rebinds an expression's column indexes by a fixed offset (used when a
/// table-level predicate is applied above a join).
ExprPtr ShiftExprColumns(const ExprPtr& expr, int offset);

}  // namespace rex

#endif  // REX_OPTIMIZER_OPTIMIZER_H_
