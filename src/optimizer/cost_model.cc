#include "optimizer/cost_model.h"

#include <sstream>

namespace rex {

std::string ResourceVector::ToString() const {
  std::ostringstream os;
  os << "{cpu=" << cpu << "s, disk=" << disk << "s, net=" << net << "s}";
  return os.str();
}

NodeCalibration ClusterCalibration::Slowest() const {
  NodeCalibration slowest;
  bool first = true;
  for (const NodeCalibration& n : nodes) {
    if (first) {
      slowest = n;
      first = false;
      continue;
    }
    slowest.cpu_tuples_per_sec =
        std::min(slowest.cpu_tuples_per_sec, n.cpu_tuples_per_sec);
    slowest.disk_mb_per_sec =
        std::min(slowest.disk_mb_per_sec, n.disk_mb_per_sec);
    slowest.net_mb_per_sec =
        std::min(slowest.net_mb_per_sec, n.net_mb_per_sec);
  }
  return slowest;
}

ResourceVector CostModel::ScanWork(double rows, double row_bytes) const {
  ResourceVector w;
  const double per_node_rows = rows / num_nodes_;
  w.disk = per_node_rows * row_bytes / (1024.0 * 1024.0) /
           calib_.disk_mb_per_sec;
  w.cpu = per_node_rows / calib_.cpu_tuples_per_sec;
  return w;
}

ResourceVector CostModel::CpuWork(double rows, double per_tuple) const {
  ResourceVector w;
  w.cpu = rows / num_nodes_ * per_tuple / calib_.cpu_tuples_per_sec;
  return w;
}

ResourceVector CostModel::RehashWork(double rows, double row_bytes) const {
  ResourceVector w;
  const double per_node_rows = rows / num_nodes_;
  const double cross_fraction =
      num_nodes_ <= 1 ? 0.0
                      : static_cast<double>(num_nodes_ - 1) / num_nodes_;
  w.net = per_node_rows * cross_fraction * row_bytes / (1024.0 * 1024.0) /
          calib_.net_mb_per_sec;
  w.cpu = per_node_rows / calib_.cpu_tuples_per_sec;
  return w;
}

ResourceVector CostModel::UdfWork(double rows,
                                  const UdfCostProfile& profile) const {
  ResourceVector w;
  const double per_tuple =
      profile.EffectiveCostPerTuple(rows, caching_enabled_);
  w.cpu = rows / num_nodes_ * per_tuple / calib_.cpu_tuples_per_sec;
  return w;
}

}  // namespace rex
