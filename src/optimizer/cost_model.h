// Resource-vector cost model with CPU / disk / network overlap (§5).
//
// Rather than summing operator times, REX models each pipelined (sub)plan
// as a vector of per-resource utilization and takes, as the plan's runtime,
// the smallest time at which every resource's combined utilization stays
// under 100% — for fully pipelined execution that is the bottleneck
// resource's total work. Two subplans that use disjoint resources thus
// combine to max(t1, t2) rather than t1 + t2.
#ifndef REX_OPTIMIZER_COST_MODEL_H_
#define REX_OPTIMIZER_COST_MODEL_H_

#include <algorithm>
#include <string>

#include "optimizer/stats.h"

namespace rex {

/// Seconds of exclusive use of each resource class.
struct ResourceVector {
  double cpu = 0;
  double disk = 0;
  double net = 0;

  ResourceVector& operator+=(const ResourceVector& o) {
    cpu += o.cpu;
    disk += o.disk;
    net += o.net;
    return *this;
  }
  friend ResourceVector operator+(ResourceVector a,
                                  const ResourceVector& b) {
    a += b;
    return a;
  }

  /// Runtime of a pipeline with this utilization: the bottleneck resource
  /// (overlapped execution keeps the others busy "for free").
  double BottleneckTime() const {
    return std::max(cpu, std::max(disk, net));
  }

  /// Non-overlapped (barrier-separated) combination: phases execute one
  /// after another.
  static double SequentialTime(const ResourceVector& a,
                               const ResourceVector& b) {
    return a.BottleneckTime() + b.BottleneckTime();
  }

  std::string ToString() const;
};

/// Cost and output-shape estimate for a (sub)plan.
struct CostEstimate {
  ResourceVector work;
  double output_rows = 0;
  double output_row_bytes = 32;

  double Time() const { return work.BottleneckTime(); }
  double OutputMb() const {
    return output_rows * output_row_bytes / (1024.0 * 1024.0);
  }
};

/// Primitive per-operator work estimators, all per-node-normalized using
/// the slowest node's calibration (worst-case completion, §5).
class CostModel {
 public:
  CostModel(const ClusterCalibration& calibration, bool caching_enabled)
      : calib_(calibration.Slowest()),
        num_nodes_(std::max(1, calibration.num_nodes())),
        caching_enabled_(caching_enabled) {}

  int num_nodes() const { return num_nodes_; }
  bool caching_enabled() const { return caching_enabled_; }

  /// Scanning `rows` of `row_bytes` each, spread across the cluster.
  ResourceVector ScanWork(double rows, double row_bytes) const;

  /// CPU work of processing `rows` through an operator with the given
  /// per-tuple work factor.
  ResourceVector CpuWork(double rows, double per_tuple = 1.0) const;

  /// Network work of rehashing `rows`; a (n-1)/n fraction crosses the
  /// wire.
  ResourceVector RehashWork(double rows, double row_bytes) const;

  /// A UDF applied to `rows`, honoring calibration, hints, and caching.
  ResourceVector UdfWork(double rows, const UdfCostProfile& profile) const;

 private:
  NodeCalibration calib_;
  int num_nodes_;
  bool caching_enabled_;
};

}  // namespace rex

#endif  // REX_OPTIMIZER_COST_MODEL_H_
