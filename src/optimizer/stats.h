// Statistics and calibration inputs to the optimizer (§5).
//
// REX assumes each node has run an initial calibration providing relative
// CPU and disk speeds and pairwise network bandwidths; the optimizer costs
// each operator with the lowest combined estimate across nodes —
// effectively the worst-case completion time. UDF costs come from
// calibration queries plus optional programmer-supplied "big-O" hints.
#ifndef REX_OPTIMIZER_STATS_H_
#define REX_OPTIMIZER_STATS_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace rex {

struct TableStats {
  int64_t rows = 0;
  double avg_row_bytes = 32;
  /// Distinct values per column name (for join selectivity estimation).
  std::map<std::string, int64_t> distinct;

  int64_t DistinctOf(const std::string& column) const {
    auto it = distinct.find(column);
    return it == distinct.end() ? std::max<int64_t>(rows, 1) : it->second;
  }
};

/// Per-node relative speeds from the calibration run. Values are rates:
/// tuples/sec of CPU work, MB/s of disk and network.
struct NodeCalibration {
  double cpu_tuples_per_sec = 5e6;
  double disk_mb_per_sec = 100.0;
  double net_mb_per_sec = 100.0;
};

struct ClusterCalibration {
  std::vector<NodeCalibration> nodes;

  static ClusterCalibration Uniform(int n, NodeCalibration calib = {}) {
    ClusterCalibration c;
    c.nodes.assign(static_cast<size_t>(n), calib);
    return c;
  }

  int num_nodes() const { return static_cast<int>(nodes.size()); }

  /// The optimizer uses the slowest node's rates: the worst-case
  /// completion estimate of §5 ("the lowest combined cost estimate across
  /// all nodes ... estimates the worst-case completion time").
  NodeCalibration Slowest() const;
};

/// Programmer-supplied cost hint (§5.1): the "big-O shape" of a function's
/// cost as a function of its main input parameter; the optimizer combines
/// it with calibrated coefficients.
using CostHint = std::function<double(double input_magnitude)>;

/// Calibrated + hinted properties of one user-defined function.
struct UdfCostProfile {
  double cost_per_tuple = 1.0;  // CPU work units per input tuple
  double selectivity = 0.5;     // when used as a predicate
  double fanout = 1.0;          // outputs per input (table UDFs)
  bool deterministic = true;    // cacheable (§5.1 caching)
  CostHint hint;                // optional; scales cost_per_tuple
  /// Distinct-input ratio for cache-hit estimation: fraction of inputs
  /// expected to be distinct (1.0 = no repeats, caching useless).
  double distinct_input_ratio = 1.0;

  double EffectiveCostPerTuple(double input_magnitude,
                               bool caching_enabled) const {
    double c = cost_per_tuple;
    if (hint) c *= hint(input_magnitude);
    if (deterministic && caching_enabled) {
      // Only distinct inputs pay; repeats hit the cache.
      c *= distinct_input_ratio;
    }
    return c;
  }
};

class StatsCatalog {
 public:
  void SetTableStats(const std::string& table, TableStats stats) {
    tables_[table] = stats;
  }
  Result<TableStats> GetTableStats(const std::string& table) const {
    auto it = tables_.find(table);
    if (it == tables_.end()) {
      return Status::NotFound("no statistics for table '" + table + "'");
    }
    return it->second;
  }

  void SetUdfProfile(const std::string& name, UdfCostProfile profile) {
    udfs_[name] = std::move(profile);
  }
  UdfCostProfile GetUdfProfile(const std::string& name) const {
    auto it = udfs_.find(name);
    return it == udfs_.end() ? UdfCostProfile{} : it->second;
  }

 private:
  std::map<std::string, TableStats> tables_;
  std::map<std::string, UdfCostProfile> udfs_;
};

}  // namespace rex

#endif  // REX_OPTIMIZER_STATS_H_
