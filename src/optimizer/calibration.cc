// Calibration queries (§5): REX assumes each node has run an initial
// calibration providing relative CPU and disk speeds; the optimizer costs
// operators with the slowest node's rates. This runs real micro-workloads:
//  - CPU: hash + compare a tuple batch (the engine's per-tuple work),
//  - disk: write/read serialized tuple runs through a temp file,
//  - network: large memcpy bandwidth (the in-process interconnect's cost).
#include "optimizer/calibration.h"

#include <chrono>
#include <cstdio>
#include <cstring>

#include "common/serde.h"
#include "common/tuple.h"

namespace rex {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

Result<NodeCalibration> RunNodeCalibration(const CalibrationOptions& opt) {
  NodeCalibration calib;

  // ---- CPU: per-tuple hash + key compare -----------------------------
  {
    std::vector<Tuple> tuples;
    tuples.reserve(static_cast<size_t>(opt.cpu_tuples));
    for (int64_t i = 0; i < opt.cpu_tuples; ++i) {
      tuples.push_back(Tuple{Value(i), Value(static_cast<double>(i))});
    }
    const auto start = std::chrono::steady_clock::now();
    uint64_t sink = 0;
    for (const Tuple& t : tuples) {
      sink ^= PartitionHash(t, {0});
      sink += t.field(1).Hash();
    }
    volatile uint64_t keep = sink;
    (void)keep;
    const double secs = SecondsSince(start);
    calib.cpu_tuples_per_sec =
        secs > 0 ? static_cast<double>(opt.cpu_tuples) / secs : 1e9;
  }

  // ---- disk: serialized tuple runs through a temp file ----------------
  {
    std::vector<Tuple> run;
    for (int64_t i = 0; i < 2000; ++i) {
      run.push_back(Tuple{Value(i), Value(1.5), Value("calibration row")});
    }
    const std::string bytes = SerializeTuples(run);
    std::FILE* f = std::tmpfile();
    if (f == nullptr) return Status::IoError("tmpfile for calibration");
    const auto start = std::chrono::steady_clock::now();
    double mb = 0;
    std::string readback(bytes.size(), '\0');
    while (mb * 1024 * 1024 < static_cast<double>(opt.disk_bytes)) {
      if (std::fwrite(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
        std::fclose(f);
        return Status::IoError("calibration write");
      }
      std::fflush(f);
      std::fseek(f, -static_cast<long>(bytes.size()), SEEK_CUR);
      if (std::fread(readback.data(), 1, bytes.size(), f) !=
          bytes.size()) {
        std::fclose(f);
        return Status::IoError("calibration read");
      }
      mb += 2.0 * static_cast<double>(bytes.size()) / (1024 * 1024);
    }
    std::fclose(f);
    const double secs = SecondsSince(start);
    calib.disk_mb_per_sec = secs > 0 ? mb / secs : 1e6;
  }

  // ---- "network": in-process channel transfer = big memcpy ------------
  {
    const size_t block = 1 << 20;
    std::string src(block, 'x');
    std::string dst(block, '\0');
    const auto start = std::chrono::steady_clock::now();
    double mb = 0;
    while (mb * 1024 * 1024 < static_cast<double>(opt.net_bytes)) {
      std::memcpy(dst.data(), src.data(), block);
      src[0] = dst[block - 1];  // defeat dead-copy elimination
      mb += static_cast<double>(block) / (1024 * 1024);
    }
    const double secs = SecondsSince(start);
    calib.net_mb_per_sec = secs > 0 ? mb / secs : 1e6;
  }
  return calib;
}

Result<ClusterCalibration> RunClusterCalibration(
    int num_workers, const CalibrationOptions& opt) {
  // Workers share one machine here, so one measurement serves all; a real
  // deployment runs this per node and keeps the pairwise matrix.
  REX_ASSIGN_OR_RETURN(NodeCalibration node, RunNodeCalibration(opt));
  ClusterCalibration calib;
  calib.nodes.assign(static_cast<size_t>(num_workers), node);
  return calib;
}

}  // namespace rex
