#include "optimizer/optimizer.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <memory>

namespace rex {

double PredicateRank(double cost_per_tuple, double selectivity) {
  const double drop = std::max(1e-9, 1.0 - selectivity);
  return cost_per_tuple / drop;
}

ExprPtr ShiftExprColumns(const ExprPtr& expr, int offset) {
  if (!expr) return expr;
  auto out = std::make_shared<Expr>(*expr);
  switch (expr->kind) {
    case Expr::Kind::kColumn:
      out->column += offset;
      break;
    case Expr::Kind::kBinary:
      out->lhs = ShiftExprColumns(expr->lhs, offset);
      out->rhs = ShiftExprColumns(expr->rhs, offset);
      break;
    case Expr::Kind::kCall:
    case Expr::Kind::kNot: {
      out->args.clear();
      for (const ExprPtr& a : expr->args) {
        out->args.push_back(ShiftExprColumns(a, offset));
      }
      break;
    }
    case Expr::Kind::kConst:
      break;
  }
  return out;
}

namespace {

// --------------------------------------------------------------------------
// Internal enumeration structures
// --------------------------------------------------------------------------

struct PlacedPredicate {
  const PredicateSpec* spec;
  double selectivity;
  double cost_per_tuple;  // CPU work units per input tuple
  double rank;
};

/// A join tree node produced by enumeration (lowered to a PlanSpec later).
struct TreeNode {
  bool leaf = false;
  int table = -1;  // leaf
  std::shared_ptr<TreeNode> left, right;
  const JoinPredSpec* pred = nullptr;
  bool rehash_left = false;
  bool rehash_right = false;
};
using TreePtr = std::shared_ptr<TreeNode>;

/// Memo entry: the best plan found for a subset of tables.
struct SubPlan {
  double rows = 0;
  double row_bytes = 0;
  ResourceVector work;
  TreePtr tree;
  /// Partitioning property: (table, column) the output is hashed on.
  int part_table = -1;
  std::string part_column;
  bool valid = false;
};

class Enumerator {
 public:
  Enumerator(const QueryBlock& query, const StatsCatalog& stats,
             const CostModel& model, OptimizerDecisions* decisions)
      : query_(query), stats_(stats), model_(model), decisions_(decisions) {
    n_ = static_cast<int>(query.tables.size());
  }

  /// `pushed[t]` — predicates applied at table t's scan (in rank order).
  Result<SubPlan> Best(const std::vector<std::vector<PlacedPredicate>>&
                           pushed) {
    pushed_ = &pushed;
    memo_.clear();
    REX_ASSIGN_OR_RETURN(SubPlan root, Solve((1u << n_) - 1));
    if (!root.valid) {
      return Status::InvalidArgument(
          "query block's join graph is disconnected (cross products are "
          "not enumerated)");
    }
    return root;
  }

 private:
  Result<SubPlan> Leaf(int t) {
    const TableRef& table = query_.tables[static_cast<size_t>(t)];
    REX_ASSIGN_OR_RETURN(TableStats ts, stats_.GetTableStats(table.name));
    SubPlan plan;
    plan.rows = static_cast<double>(ts.rows);
    plan.row_bytes = ts.avg_row_bytes;
    plan.work = model_.ScanWork(plan.rows, plan.row_bytes);
    double in_rows = plan.rows;
    for (const PlacedPredicate& p : (*pushed_)[static_cast<size_t>(t)]) {
      plan.work += model_.CpuWork(in_rows, p.cost_per_tuple);
      in_rows *= p.selectivity;
    }
    plan.rows = std::max(1.0, in_rows);
    plan.tree = std::make_shared<TreeNode>();
    plan.tree->leaf = true;
    plan.tree->table = t;
    plan.part_table = t;
    plan.part_column = table.partition_column;
    plan.valid = true;
    return plan;
  }

  /// Distinct-value count of a join column after predicates.
  double DistinctOf(int t, const std::string& column, double rows) const {
    const TableRef& table = query_.tables[static_cast<size_t>(t)];
    auto ts = stats_.GetTableStats(table.name);
    if (!ts.ok()) return std::max(1.0, rows);
    return std::min<double>(std::max<int64_t>(1, ts->DistinctOf(column)),
                            std::max(1.0, rows));
  }

  int TableIndex(const std::string& name) const {
    for (int t = 0; t < n_; ++t) {
      if (query_.tables[static_cast<size_t>(t)].name == name) return t;
    }
    return -1;
  }

  /// Join predicates connecting `left_set` and `right_set`.
  std::vector<const JoinPredSpec*> Connecting(uint32_t left_set,
                                              uint32_t right_set) const {
    std::vector<const JoinPredSpec*> out;
    for (const JoinPredSpec& j : query_.joins) {
      const int lt = TableIndex(j.left_table);
      const int rt = TableIndex(j.right_table);
      if (lt < 0 || rt < 0) continue;
      const uint32_t lbit = 1u << lt;
      const uint32_t rbit = 1u << rt;
      if (((left_set & lbit) && (right_set & rbit)) ||
          ((left_set & rbit) && (right_set & lbit))) {
        out.push_back(&j);
      }
    }
    return out;
  }

  Result<SubPlan> Solve(uint32_t set) {
    auto it = memo_.find(set);
    if (it != memo_.end()) return it->second;
    SubPlan best;

    if ((set & (set - 1)) == 0) {  // single table
      int t = 0;
      while (!(set & (1u << t))) ++t;
      REX_ASSIGN_OR_RETURN(best, Leaf(t));
      memo_[set] = best;
      return best;
    }

    // Enumerate proper splits; the canonical half contains the lowest bit.
    const uint32_t low = set & (uint32_t)(-(int32_t)set);
    for (uint32_t sub = (set - 1) & set; sub != 0; sub = (sub - 1) & set) {
      if (!(sub & low)) continue;  // canonical side holds the lowest bit
      const uint32_t other = set & ~sub;
      if (other == 0) continue;
      auto preds = Connecting(sub, other);
      if (preds.empty()) continue;  // avoid cross products
      decisions_->plans_considered += 1;

      REX_ASSIGN_OR_RETURN(SubPlan lhs, Solve(sub));
      if (!lhs.valid) continue;  // that subset has no connected plan
      // Branch-and-bound: the left side alone already losing? prune.
      if (best.valid &&
          lhs.work.BottleneckTime() >= best.work.BottleneckTime()) {
        decisions_->plans_pruned += 1;
        continue;
      }
      REX_ASSIGN_OR_RETURN(SubPlan rhs, Solve(other));
      if (!rhs.valid) continue;

      const JoinPredSpec* pred = preds[0];
      // Resolve which side of the predicate is in lhs.
      int lt = TableIndex(pred->left_table);
      std::string lcol = pred->left_column;
      int rt = TableIndex(pred->right_table);
      std::string rcol = pred->right_column;
      if (!(sub & (1u << lt))) {
        std::swap(lt, rt);
        std::swap(lcol, rcol);
      }

      SubPlan plan;
      plan.tree = std::make_shared<TreeNode>();
      plan.tree->left = lhs.tree;
      plan.tree->right = rhs.tree;
      plan.tree->pred = pred;
      plan.work = lhs.work + rhs.work;
      // Rehash any side not already partitioned on its join column.
      plan.tree->rehash_left =
          !(lhs.part_table == lt && lhs.part_column == lcol);
      plan.tree->rehash_right =
          !(rhs.part_table == rt && rhs.part_column == rcol);
      if (plan.tree->rehash_left) {
        plan.work += model_.RehashWork(lhs.rows, lhs.row_bytes);
      }
      if (plan.tree->rehash_right) {
        plan.work += model_.RehashWork(rhs.rows, rhs.row_bytes);
      }
      // Pipelined symmetric hash join: build+probe CPU on both inputs.
      plan.work += model_.CpuWork(lhs.rows + rhs.rows, 2.0);

      const double dl = DistinctOf(lt, lcol, lhs.rows);
      const double dr = DistinctOf(rt, rcol, rhs.rows);
      plan.rows =
          std::max(1.0, lhs.rows * rhs.rows / std::max(dl, dr));
      // Additional predicates between the same sides filter further.
      for (size_t p = 1; p < preds.size(); ++p) {
        plan.rows = std::max(1.0, plan.rows * 0.1);
      }
      plan.row_bytes = lhs.row_bytes + rhs.row_bytes;
      plan.part_table = lt;
      plan.part_column = lcol;
      plan.valid = true;

      if (!best.valid ||
          plan.work.BottleneckTime() < best.work.BottleneckTime()) {
        best = plan;
      }
    }
    // An unjoinable subset is simply not a candidate (valid=false); only
    // the caller of Best() treats a plan-less ROOT as an error.
    memo_[set] = best;
    return best;
  }

  const QueryBlock& query_;
  const StatsCatalog& stats_;
  const CostModel& model_;
  OptimizerDecisions* decisions_;
  int n_ = 0;
  const std::vector<std::vector<PlacedPredicate>>* pushed_ = nullptr;
  std::map<uint32_t, SubPlan> memo_;
};

std::string TreeToString(const QueryBlock& query, const TreePtr& tree) {
  if (tree->leaf) {
    return query.tables[static_cast<size_t>(tree->table)].name;
  }
  return "(" + TreeToString(query, tree->left) + " ⋈ " +
         TreeToString(query, tree->right) + ")";
}

// --------------------------------------------------------------------------
// Lowering
// --------------------------------------------------------------------------

/// Tracks, for a lowered subplan, which node produced it and where each
/// base table's columns start in its output tuple.
struct Lowered {
  int node = -1;
  std::map<int, int> offsets;  // table idx -> column offset
  int width = 0;
};

class Lowerer {
 public:
  Lowerer(const QueryBlock& query, const StatsCatalog& stats,
          PlanSpec* plan)
      : query_(query), stats_(stats), plan_(plan) {}

  int TableIndex(const std::string& name) const {
    for (size_t t = 0; t < query_.tables.size(); ++t) {
      if (query_.tables[t].name == name) return static_cast<int>(t);
    }
    return -1;
  }

  Result<int> ColumnOffset(const Lowered& sub, const std::string& table,
                           const std::string& column) const {
    const int t = TableIndex(table);
    if (t < 0) return Status::NotFound("unknown table " + table);
    auto it = sub.offsets.find(t);
    if (it == sub.offsets.end()) {
      return Status::Internal("table " + table + " not in subplan");
    }
    REX_ASSIGN_OR_RETURN(
        int idx, query_.tables[static_cast<size_t>(t)].schema.IndexOf(column));
    return it->second + idx;
  }

  /// Builds Filter nodes for the predicate at the given column offset base.
  Result<int> ApplyPredicate(int input, const PredicateSpec& pred,
                             int offset) {
    if (pred.expr) {
      return plan_->AddFilter(input, ShiftExprColumns(pred.expr, offset));
    }
    const int t = TableIndex(pred.table);
    std::vector<ExprPtr> args;
    for (const std::string& col : pred.udf_args) {
      REX_ASSIGN_OR_RETURN(
          int idx,
          query_.tables[static_cast<size_t>(t)].schema.IndexOf(col));
      args.push_back(Expr::Column(idx + offset, col));
    }
    return plan_->AddFilter(input, Expr::Call(pred.udf, std::move(args)));
  }

  Result<Lowered> Lower(const TreePtr& tree,
                        const std::vector<std::vector<PlacedPredicate>>&
                            pushed) {
    if (tree->leaf) {
      const int t = tree->table;
      const TableRef& table = query_.tables[static_cast<size_t>(t)];
      ScanOp::Params scan;
      scan.table = table.name;
      Lowered out;
      out.node = plan_->AddScan(scan);
      for (const PlacedPredicate& p : pushed[static_cast<size_t>(t)]) {
        REX_ASSIGN_OR_RETURN(out.node,
                             ApplyPredicate(out.node, *p.spec, 0));
      }
      out.offsets[t] = 0;
      out.width = static_cast<int>(table.schema.size());
      return out;
    }

    REX_ASSIGN_OR_RETURN(Lowered lhs, Lower(tree->left, pushed));
    REX_ASSIGN_OR_RETURN(Lowered rhs, Lower(tree->right, pushed));
    const JoinPredSpec* pred = tree->pred;

    // Resolve predicate sides against the actual subtrees.
    std::string ltab = pred->left_table, lcol = pred->left_column;
    std::string rtab = pred->right_table, rcol = pred->right_column;
    if (lhs.offsets.count(TableIndex(ltab)) == 0) {
      std::swap(ltab, rtab);
      std::swap(lcol, rcol);
    }
    REX_ASSIGN_OR_RETURN(int lkey, ColumnOffset(lhs, ltab, lcol));
    REX_ASSIGN_OR_RETURN(int rkey, ColumnOffset(rhs, rtab, rcol));

    int lnode = lhs.node;
    int rnode = rhs.node;
    if (tree->rehash_left) {
      RehashOp::Params rh;
      rh.key_fields = {lkey};
      lnode = plan_->AddRehash(lnode, rh);
    }
    if (tree->rehash_right) {
      RehashOp::Params rh;
      rh.key_fields = {rkey};
      rnode = plan_->AddRehash(rnode, rh);
    }
    HashJoinOp::Params jp;
    jp.left_keys = {lkey};
    jp.right_keys = {rkey};
    Lowered out;
    out.node = plan_->AddHashJoin(lnode, rnode, jp);
    out.offsets = lhs.offsets;
    for (const auto& [t, off] : rhs.offsets) {
      out.offsets[t] = off + lhs.width;
    }
    out.width = lhs.width + rhs.width;
    return out;
  }

 private:
  const QueryBlock& query_;
  const StatsCatalog& stats_;
  PlanSpec* plan_;
};

}  // namespace

// --------------------------------------------------------------------------
// Optimizer
// --------------------------------------------------------------------------

std::pair<CostEstimate, int> Optimizer::EstimateRecursive(
    const CostEstimate& base,
    const std::function<CostEstimate(double input_rows)>& step,
    int max_iters) {
  CostEstimate total = base;
  double card = base.output_rows;
  double prev_card = card;
  double prev_time = std::numeric_limits<double>::infinity();
  int iters = 0;
  for (int i = 0; i < max_iters && card >= 1.0; ++i) {
    CostEstimate st = step(card);
    // §5.3 capping: a step's cardinality and cost never exceed the
    // previous step's (convergent algorithms + duplicate elimination).
    double next_card = std::min(st.output_rows, prev_card);
    double time = std::min(st.work.BottleneckTime(), prev_time);
    ResourceVector scaled = st.work;
    if (st.work.BottleneckTime() > 0) {
      const double scale = time / st.work.BottleneckTime();
      scaled.cpu *= scale;
      scaled.disk *= scale;
      scaled.net *= scale;
    }
    total.work += scaled;
    prev_card = next_card;
    prev_time = time;
    card = next_card;
    ++iters;
  }
  total.output_rows = card;
  return {total, iters};
}

Result<std::optional<OptimizedQuery>> Optimizer::TryAggBelowJoinPushdown(
    const QueryBlock& query, double no_push_time) const {
  // Pattern gate: two tables, one equi-join, built-in aggregates whose
  // inputs and grouping columns all come from one side, no expensive
  // predicates (those interact with migration), pushdown enabled.
  if (!options_.enable_preagg || !query.agg.has_value() ||
      query.tables.size() != 2 || query.joins.size() != 1 ||
      !query.agg->uda.empty()) {
    return std::optional<OptimizedQuery>{};
  }
  for (const PredicateSpec& p : query.predicates) {
    if (!p.udf.empty()) return std::optional<OptimizedQuery>{};
  }
  const AggQuerySpec& agg = *query.agg;
  for (const AggQuerySpec::Item& item : agg.items) {
    if (item.kind == AggKind::kAvg) return std::optional<OptimizedQuery>{};
  }
  // Identify the aggregated side S: every named column must come from it.
  std::string s_name;
  for (const AggQuerySpec::Item& item : agg.items) {
    if (item.column.empty()) continue;
    if (s_name.empty()) s_name = item.table;
    if (item.table != s_name) return std::optional<OptimizedQuery>{};
  }
  for (const auto& [tab, col] : agg.group_by) {
    if (s_name.empty()) s_name = tab;
    if (tab != s_name) return std::optional<OptimizedQuery>{};
  }
  if (s_name.empty()) s_name = query.tables[0].name;  // count(*)-only

  const int s_idx = query.tables[0].name == s_name ? 0 : 1;
  const TableRef& s_table = query.tables[static_cast<size_t>(s_idx)];
  const TableRef& t_table = query.tables[static_cast<size_t>(1 - s_idx)];
  const JoinPredSpec& jp = query.joins[0];
  const std::string s_join_col =
      jp.left_table == s_table.name ? jp.left_column : jp.right_column;
  const std::string t_join_col =
      jp.left_table == s_table.name ? jp.right_column : jp.left_column;
  if ((jp.left_table != s_table.name && jp.right_table != s_table.name) ||
      (jp.left_table != t_table.name && jp.right_table != t_table.name)) {
    return std::optional<OptimizedQuery>{};
  }
  const std::string t_key_side =
      jp.left_table == t_table.name ? "left" : "right";
  const bool key_fk = jp.key_side == t_key_side;  // T unique on join key
  // A multiplicative join needs multiply compensation, which requires the
  // aggregates to be composable built-ins (they are) — min/max pass
  // through, multiplicity-sensitive ones multiply by the T-group count.
  const bool needs_multiply = !key_fk;

  CostModel model(calibration_, options_.caching_enabled);
  REX_ASSIGN_OR_RETURN(TableStats s_stats,
                       stats_->GetTableStats(s_table.name));
  REX_ASSIGN_OR_RETURN(TableStats t_stats,
                       stats_->GetTableStats(t_table.name));
  double s_rows = static_cast<double>(s_stats.rows);
  double t_rows = static_cast<double>(t_stats.rows);
  for (const PredicateSpec& p : query.predicates) {
    (p.table == s_table.name ? s_rows : t_rows) *= p.selectivity;
  }
  double s_groups = std::min(
      s_rows, static_cast<double>(s_stats.DistinctOf(s_join_col)) * 8);
  double t_groups = std::min(
      t_rows, static_cast<double>(t_stats.DistinctOf(t_join_col)));

  ResourceVector push_work = model.ScanWork(s_rows, s_stats.avg_row_bytes) +
                             model.ScanWork(t_rows, t_stats.avg_row_bytes);
  push_work += model.CpuWork(s_rows + t_rows, 1.5);  // partial aggs
  push_work += model.RehashWork(s_groups + t_groups, 24);
  push_work += model.CpuWork(s_groups + t_groups, 2.0);  // join + merge
  if (push_work.BottleneckTime() >= no_push_time) {
    return std::optional<OptimizedQuery>{};
  }

  // ---- lowering -----------------------------------------------------------
  OptimizedQuery out;
  out.decisions.preagg_below_join = true;
  out.decisions.multiply_compensation = needs_multiply;
  out.decisions.join_tree =
      "(γ(" + s_table.name + ") ⋈ γcount(" + t_table.name + "))";
  out.cost.work = push_work;
  out.cost.output_rows = s_groups;

  auto scan_with_preds = [&](const TableRef& table) -> Result<int> {
    ScanOp::Params scan;
    scan.table = table.name;
    int node = out.spec.AddScan(scan);
    for (const PredicateSpec& p : query.predicates) {
      if (p.table != table.name || !p.expr) continue;
      node = out.spec.AddFilter(node, p.expr);
    }
    return node;
  };

  // S side: partial aggregates grouped by (group cols..., join col).
  REX_ASSIGN_OR_RETURN(int s_node, scan_with_preds(s_table));
  GroupByOp::Params s_partial;
  for (const auto& [tab, col] : agg.group_by) {
    REX_ASSIGN_OR_RETURN(int idx, s_table.schema.IndexOf(col));
    s_partial.key_fields.push_back(idx);
  }
  REX_ASSIGN_OR_RETURN(int s_join_idx, s_table.schema.IndexOf(s_join_col));
  s_partial.key_fields.push_back(s_join_idx);
  std::vector<PreAggSpec> pre_specs;
  for (const AggQuerySpec::Item& item : agg.items) {
    GroupByOp::AggSpec spec;
    PreAggSpec pre = GetPreAggSpec(item.kind);
    pre_specs.push_back(pre);
    spec.kind = pre.partial;
    spec.output_name = item.output_name;
    if (item.column.empty()) {
      spec.input_field = -1;
    } else {
      REX_ASSIGN_OR_RETURN(spec.input_field,
                           s_table.schema.IndexOf(item.column));
    }
    s_partial.aggs.push_back(spec);
  }
  s_partial.mode = GroupByOp::Mode::kStratum;
  s_node = out.spec.AddGroupBy(s_node, s_partial);
  const int g = static_cast<int>(agg.group_by.size());
  const int p = static_cast<int>(agg.items.size());
  // S' layout: (g0..g_{G-1}, j, p0..p_{P-1}); rehash by the join key.
  RehashOp::Params s_rh;
  s_rh.key_fields = {g};
  s_node = out.spec.AddRehash(s_node, s_rh);

  // T side: per-join-key count(*) (the transparently added count of
  // §5.2); key-FK joins have count 1 per key, so T rows pass directly.
  REX_ASSIGN_OR_RETURN(int t_node, scan_with_preds(t_table));
  REX_ASSIGN_OR_RETURN(int t_join_idx, t_table.schema.IndexOf(t_join_col));
  int t_key_for_join = t_join_idx;
  if (needs_multiply) {
    GroupByOp::Params t_count;
    t_count.key_fields = {t_join_idx};
    t_count.aggs = {GroupByOp::AggSpec{AggKind::kCount, -1, "cnt"}};
    t_count.mode = GroupByOp::Mode::kStratum;
    t_node = out.spec.AddGroupBy(t_node, t_count);
    t_key_for_join = 0;  // layout (j, cnt)
    RehashOp::Params t_rh;
    t_rh.key_fields = {0};
    t_node = out.spec.AddRehash(t_node, t_rh);
  } else if (t_table.partition_column != t_join_col) {
    RehashOp::Params t_rh;
    t_rh.key_fields = {t_join_idx};
    t_node = out.spec.AddRehash(t_node, t_rh);
  }

  HashJoinOp::Params join;
  join.left_keys = {g};
  join.right_keys = {t_key_for_join};
  int join_node = out.spec.AddHashJoin(s_node, t_node, join);

  // Compensation projection: group cols, then each partial — multiplied
  // by the opposite group's cardinality when multiplicity-sensitive.
  std::vector<ExprPtr> exprs;
  for (int i = 0; i < g; ++i) exprs.push_back(Expr::Column(i));
  const int t_width =
      needs_multiply ? 2 : static_cast<int>(t_table.schema.size());
  (void)t_width;
  const int cnt_col = g + 1 + p + 1;  // (S' fields) + (j, cnt)'s cnt
  for (int i = 0; i < p; ++i) {
    ExprPtr partial = Expr::Column(g + 1 + i);
    if (needs_multiply && IsMultiplicitySensitive(agg.items[
                              static_cast<size_t>(i)].kind)) {
      partial = Expr::Binary(BinOp::kMul, partial, Expr::Column(cnt_col));
    }
    exprs.push_back(std::move(partial));
  }
  int top = out.spec.AddProject(join_node, std::move(exprs));

  // Final merge: rehash by group columns, merge partials.
  RehashOp::Params final_rh;
  for (int i = 0; i < g; ++i) final_rh.key_fields.push_back(i);
  top = out.spec.AddRehash(top, final_rh);
  GroupByOp::Params merge;
  for (int i = 0; i < g; ++i) merge.key_fields.push_back(i);
  for (int i = 0; i < p; ++i) {
    GroupByOp::AggSpec spec;
    spec.kind = pre_specs[static_cast<size_t>(i)].merge;
    spec.input_field = g + i;
    spec.output_name = agg.items[static_cast<size_t>(i)].output_name;
    merge.aggs.push_back(spec);
  }
  merge.mode = GroupByOp::Mode::kStratum;
  top = out.spec.AddGroupBy(top, merge);
  out.spec.AddSink(top);
  REX_RETURN_NOT_OK(out.spec.Validate());
  return std::optional<OptimizedQuery>(std::move(out));
}

Result<OptimizedQuery> Optimizer::Optimize(const QueryBlock& query) const {
  if (query.tables.empty()) {
    return Status::InvalidArgument("query block with no tables");
  }
  if (static_cast<int>(query.tables.size()) > options_.max_tables) {
    return Status::Unsupported("too many tables for enumeration");
  }
  CostModel model(calibration_, options_.caching_enabled);
  OptimizedQuery out;

  // ---- predicate analysis: costs, selectivities, ranks ------------------
  const int n = static_cast<int>(query.tables.size());
  auto table_index = [&](const std::string& name) {
    for (int t = 0; t < n; ++t) {
      if (query.tables[static_cast<size_t>(t)].name == name) return t;
    }
    return -1;
  };
  std::vector<PlacedPredicate> all_preds;
  for (const PredicateSpec& p : query.predicates) {
    if (table_index(p.table) < 0) {
      return Status::NotFound("predicate references unknown table " +
                              p.table);
    }
    PlacedPredicate placed;
    placed.spec = &p;
    if (!p.udf.empty()) {
      UdfCostProfile prof = stats_->GetUdfProfile(p.udf);
      placed.cost_per_tuple =
          prof.EffectiveCostPerTuple(0, options_.caching_enabled);
      placed.selectivity = prof.selectivity;
    } else {
      placed.cost_per_tuple = 1.0;
      placed.selectivity = p.selectivity;
    }
    placed.rank = PredicateRank(placed.cost_per_tuple, placed.selectivity);
    all_preds.push_back(placed);
  }
  // Rank order within each table ([13]: increasing rank).
  std::stable_sort(all_preds.begin(), all_preds.end(),
                   [](const PlacedPredicate& a, const PlacedPredicate& b) {
                     return a.rank < b.rank;
                   });
  for (const PlacedPredicate& p : all_preds) {
    out.decisions.rank_order.push_back(
        p.spec->udf.empty() ? p.spec->expr->ToString() : p.spec->udf);
  }

  // ---- predicate migration (§5.1): pushdown vs after-joins --------------
  // Start fully pushed; greedily pull up any expensive predicate whose
  // post-join application is cheaper (fewer tuples reach it).
  std::vector<bool> pulled(all_preds.size(), false);
  auto build_pushed = [&](const std::vector<bool>& pulled_now) {
    std::vector<std::vector<PlacedPredicate>> pushed(
        static_cast<size_t>(n));
    for (size_t i = 0; i < all_preds.size(); ++i) {
      if (pulled_now[i]) continue;
      pushed[static_cast<size_t>(table_index(all_preds[i].spec->table))]
          .push_back(all_preds[i]);
    }
    return pushed;
  };
  auto total_cost = [&](const std::vector<bool>& pulled_now)
      -> Result<std::pair<SubPlan, double>> {
    OptimizerDecisions scratch;
    Enumerator enumerator(query, *stats_, model, &scratch);
    REX_ASSIGN_OR_RETURN(SubPlan plan,
                         enumerator.Best(build_pushed(pulled_now)));
    out.decisions.plans_considered += scratch.plans_considered;
    out.decisions.plans_pruned += scratch.plans_pruned;
    ResourceVector work = plan.work;
    double rows = plan.rows;
    for (size_t i = 0; i < all_preds.size(); ++i) {
      if (!pulled_now[i]) continue;
      work += model.CpuWork(rows, all_preds[i].cost_per_tuple);
      rows *= all_preds[i].selectivity;
    }
    return std::make_pair(plan, work.BottleneckTime());
  };

  REX_ASSIGN_OR_RETURN(auto best, total_cost(pulled));
  if (options_.enable_predicate_migration) {
    // Highest rank first: the most expensive-per-dropped-tuple predicates
    // benefit most from seeing fewer tuples.
    std::vector<size_t> order(all_preds.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return all_preds[a].rank > all_preds[b].rank;
    });
    for (size_t i : order) {
      if (all_preds[i].spec->udf.empty()) continue;  // cheap stays pushed
      std::vector<bool> trial = pulled;
      trial[i] = true;
      REX_ASSIGN_OR_RETURN(auto alt, total_cost(trial));
      if (alt.second < best.second) {
        pulled = trial;
        best = alt;
      }
    }
  }
  for (size_t i = 0; i < all_preds.size(); ++i) {
    if (all_preds[i].spec->udf.empty()) continue;
    out.decisions.predicate_placement.emplace_back(
        all_preds[i].spec->udf,
        pulled[i] ? "after-joins" : "pushdown:" + all_preds[i].spec->table);
  }

  SubPlan chosen = best.first;
  out.decisions.join_tree = TreeToString(query, chosen.tree);
  out.cost.work = chosen.work;
  out.cost.output_rows = chosen.rows;
  out.cost.output_row_bytes = chosen.row_bytes;

  // ---- lowering ----------------------------------------------------------
  Lowerer lowerer(query, *stats_, &out.spec);
  REX_ASSIGN_OR_RETURN(Lowered lowered,
                       lowerer.Lower(chosen.tree, build_pushed(pulled)));
  int top = lowered.node;
  double top_rows = chosen.rows;
  for (size_t i = 0; i < all_preds.size(); ++i) {
    if (!pulled[i]) continue;
    const int t = table_index(all_preds[i].spec->table);
    auto off_it = lowered.offsets.find(t);
    if (off_it == lowered.offsets.end()) {
      return Status::Internal("pulled predicate's table missing");
    }
    REX_ASSIGN_OR_RETURN(
        top, lowerer.ApplyPredicate(top, *all_preds[i].spec,
                                    off_it->second));
    top_rows *= all_preds[i].selectivity;
  }

  // ---- aggregation with pre-aggregation decisions (§5.2) ----------------
  if (query.agg.has_value()) {
    const AggQuerySpec& agg = *query.agg;
    std::vector<int> key_fields;
    for (const auto& [tab, col] : agg.group_by) {
      REX_ASSIGN_OR_RETURN(int off, lowerer.ColumnOffset(lowered, tab, col));
      key_fields.push_back(off);
    }
    std::vector<GroupByOp::AggSpec> partial;
    std::vector<GroupByOp::AggSpec> merge;
    if (!agg.uda.empty()) {
      return Status::Unsupported(
          "UDA lowering goes through the RQL layer; the optimizer costs "
          "it but lowers built-in aggregates only");
    }
    for (const AggQuerySpec::Item& item : agg.items) {
      GroupByOp::AggSpec spec;
      spec.kind = item.kind;
      spec.output_name = item.output_name;
      if (item.column.empty()) {
        spec.input_field = -1;
      } else {
        REX_ASSIGN_OR_RETURN(
            int off, lowerer.ColumnOffset(lowered, item.table, item.column));
        spec.input_field = off;
      }
      partial.push_back(spec);
      merge.push_back(spec);
    }
    // Rewrite merge aggregates over partial outputs: after a combiner the
    // input layout is (keys..., partials...) and each aggregate merges its
    // partial column (sum of sums, min of mins, sum of counts; avg splits
    // into sum+count companions).
    bool combiner_ok = true;
    std::vector<GroupByOp::AggSpec> partial2;
    std::vector<GroupByOp::AggSpec> merge2;
    std::vector<std::pair<int, int>> avg_fixups;  // (sum idx, count idx)
    for (size_t i = 0; i < partial.size() && combiner_ok; ++i) {
      PreAggSpec pre = GetPreAggSpec(partial[i].kind);
      if (!pre.available) {
        combiner_ok = false;
        break;
      }
      GroupByOp::AggSpec p = partial[i];
      p.kind = pre.partial;
      GroupByOp::AggSpec m;
      m.kind = pre.merge;
      m.output_name = partial[i].output_name;
      m.input_field =
          static_cast<int>(key_fields.size() + partial2.size());
      if (pre.needs_count_companion) {
        // avg -> (sum, count) partials; final avg = sum(sum)/sum(count).
        GroupByOp::AggSpec cnt = partial[i];
        cnt.kind = AggKind::kCount;
        cnt.output_name = partial[i].output_name + "_n";
        GroupByOp::AggSpec mcnt;
        mcnt.kind = AggKind::kSum;
        mcnt.output_name = cnt.output_name;
        mcnt.input_field = m.input_field + 1;
        avg_fixups.emplace_back(static_cast<int>(merge2.size()),
                                static_cast<int>(merge2.size() + 1));
        partial2.push_back(p);
        partial2.push_back(cnt);
        merge2.push_back(m);
        merge2.push_back(mcnt);
      } else {
        partial2.push_back(p);
        merge2.push_back(m);
      }
    }

    // Cost the two physical alternatives.
    const double groups = std::max(
        1.0, std::min(top_rows, std::pow(64.0, static_cast<double>(
                                                   key_fields.size()))));
    const double per_node_groups = groups;  // every node can hold any group
    ResourceVector no_comb = model.RehashWork(top_rows, 24) +
                             model.CpuWork(top_rows, 1.5);
    ResourceVector with_comb =
        model.CpuWork(top_rows, 1.5) +
        model.RehashWork(per_node_groups * model.num_nodes(), 24) +
        model.CpuWork(per_node_groups * model.num_nodes(), 1.5);
    const bool use_combiner =
        options_.enable_preagg && combiner_ok &&
        with_comb.BottleneckTime() < no_comb.BottleneckTime();
    out.decisions.preagg_combiner = use_combiner;
    out.cost.work += use_combiner ? with_comb : no_comb;

    if (use_combiner) {
      GroupByOp::Params local;
      local.key_fields = key_fields;
      local.aggs = partial2;
      local.mode = GroupByOp::Mode::kStratum;
      top = out.spec.AddGroupBy(top, local);
      // Combiner output layout: keys then partials.
      std::vector<int> new_keys;
      for (size_t k = 0; k < key_fields.size(); ++k) {
        new_keys.push_back(static_cast<int>(k));
      }
      RehashOp::Params rh;
      rh.key_fields = new_keys;  // empty = gather onto one worker
      top = out.spec.AddRehash(top, rh);
      GroupByOp::Params final_agg;
      final_agg.key_fields = new_keys;
      final_agg.aggs = merge2;
      final_agg.mode = GroupByOp::Mode::kStratum;
      top = out.spec.AddGroupBy(top, final_agg);
      if (!avg_fixups.empty()) {
        // Project final averages: keys, then per requested aggregate its
        // value (sum/count for avgs).
        std::vector<ExprPtr> exprs;
        for (size_t k = 0; k < key_fields.size(); ++k) {
          exprs.push_back(Expr::Column(static_cast<int>(k)));
        }
        size_t m_idx = 0;
        while (m_idx < merge2.size()) {
          bool is_avg_pair = false;
          for (auto& [s, c] : avg_fixups) {
            if (static_cast<size_t>(s) == m_idx) is_avg_pair = true;
          }
          const int base = static_cast<int>(key_fields.size() + m_idx);
          if (is_avg_pair) {
            exprs.push_back(Expr::Binary(BinOp::kDiv, Expr::Column(base),
                                         Expr::Column(base + 1)));
            m_idx += 2;
          } else {
            exprs.push_back(Expr::Column(base));
            m_idx += 1;
          }
        }
        top = out.spec.AddProject(top, std::move(exprs));
      }
    } else {
      RehashOp::Params rh;
      rh.key_fields = key_fields;  // empty = gather onto one worker
      top = out.spec.AddRehash(top, rh);
      GroupByOp::Params final_agg;
      final_agg.key_fields = key_fields;
      final_agg.aggs = partial;
      final_agg.mode = GroupByOp::Mode::kStratum;
      top = out.spec.AddGroupBy(top, final_agg);
    }
  }

  if (!query.agg.has_value() && !query.project.empty()) {
    std::vector<ExprPtr> exprs;
    for (const auto& [tab, col] : query.project) {
      REX_ASSIGN_OR_RETURN(int off, lowerer.ColumnOffset(lowered, tab, col));
      exprs.push_back(Expr::Column(off, col));
    }
    top = out.spec.AddProject(top, std::move(exprs));
  }

  out.spec.AddSink(top);
  REX_RETURN_NOT_OK(out.spec.Validate());

  // §5.2: consider pushing the aggregation below the join entirely (with
  // multiply compensation on multiplicative joins); adopt it when the
  // cost model prefers it over the plan built above.
  REX_ASSIGN_OR_RETURN(auto pushed_down,
                       TryAggBelowJoinPushdown(query, out.cost.Time()));
  if (pushed_down.has_value()) {
    pushed_down->decisions.plans_considered =
        out.decisions.plans_considered + 1;
    pushed_down->decisions.plans_pruned = out.decisions.plans_pruned;
    pushed_down->decisions.rank_order = out.decisions.rank_order;
    return std::move(*pushed_down);
  }
  return out;
}

}  // namespace rex
