// A worker node: one thread consuming its network inbox and driving its
// LocalPlan. All operator state is touched only from the worker thread
// (driver-side mutations happen strictly while the network is quiescent and
// are published through the inbox channel's mutex).
#ifndef REX_CLUSTER_WORKER_H_
#define REX_CLUSTER_WORKER_H_

#include <map>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <unordered_map>

#include "engine/local_plan.h"
#include "obs/trace_ring.h"

namespace rex {

class WorkerNode {
 public:
  /// `incarnation` is this worker's life number (0 for the original
  /// process, bumped by the failure detector on each revive); it is stamped
  /// on heartbeat replies and fixpoint votes.
  WorkerNode(int id, Network* network, StorageCatalog* storage,
             UdfRegistry* udfs, VoteBoard* votes,
             CheckpointStore* checkpoints, const EngineConfig* config,
             int incarnation = 0);
  ~WorkerNode();

  int id() const { return id_; }
  int incarnation() const { return ctx_.incarnation; }

  /// Instantiates the plan for the currently active query against this
  /// worker's context. Must be called while the network is quiescent
  /// (driver thread).
  Status InstallPlan(const PlanSpec& spec, const PartitionMap* pmap);

  /// Multi-plan residency (serving layer): a worker keeps one LocalPlan per
  /// registered query id, but exactly one is ACTIVE at any time — the
  /// message fabric carries op ids without query ids, and the vote board /
  /// checkpoint store are keyed (fixpoint, stratum), so execution is
  /// serialized per query and the driver switches residents only while the
  /// network is quiescent. Activation repoints the shared ExecContext at
  /// the query's own vote board and checkpoint store and selects its plan
  /// (null until InstallPlan runs for that query).
  void ActivateQuery(int query_id, VoteBoard* votes,
                     CheckpointStore* checkpoints, const PartitionMap* pmap);
  int active_query() const { return active_query_; }
  bool HasPlan(int query_id) const {
    return plans_.count(query_id) > 0 && plans_.at(query_id) != nullptr;
  }
  /// Drops a resident plan (eviction). Driver thread, network quiescent;
  /// dropping the active query leaves it planless until InstallPlan.
  void DropPlan(int query_id);

  /// Publishes new partition snapshots for an upcoming kRecoverPrepare.
  /// Driver thread, network quiescent.
  void StageRecovery(const PartitionMap* new_pmap,
                     const PartitionMap* old_pmap, int last_stratum);

  void Start();
  /// Closes the inbox and joins the thread (both for failure simulation
  /// and orderly shutdown).
  void Stop();
  bool running() const { return thread_.joinable(); }

  /// First operator/dispatch error observed (Status::OK if none). Driver
  /// thread, network quiescent.
  const Status& error() const { return error_; }
  void ClearError() { error_ = Status::OK(); }

  LocalPlan* plan() { return plan_; }
  MetricsRegistry* metrics() { return &metrics_; }
  ExecContext* ctx() { return &ctx_; }
  /// Bounded event trace: dispatches, control verbs, checkpoint writes.
  /// Dumped to the log when this worker records its first error.
  TraceRing* trace() { return &trace_; }

 private:
  void RunLoop();
  Status Dispatch(Message& msg);
  Status ValidateTarget(const Message& msg) const;
  Status HandleControl(const ControlMsg& c);
  /// Decodes a packed wire run (Message::WireCodec) back into deltas,
  /// advancing this edge's reference mirror. A delta payload whose
  /// reference does not match the mirror (sequence or checksum), or whose
  /// decoded bytes fail their integrity check, is kDataLoss — never
  /// silently-wrong tuples.
  Result<DeltaVec> DecodeWireRun(Message& msg);

  int id_;
  Network* network_;
  /// Highest sequence number dispatched per sender; duplicate deliveries
  /// (chaos injection: "TCP retransmissions") are discarded exactly-once.
  std::unordered_map<int, uint64_t> last_seq_;
  MetricsRegistry metrics_;
  TraceRing trace_;
  /// Hot-path metric handles, resolved once at construction (a name lookup
  /// per message would take the registry mutex on every dispatch).
  Counter* dup_discarded_ = nullptr;
  Timer* dispatch_timer_ = nullptr;  // null when profiling is off
  ExecContext ctx_;
  /// Resident plans by query id; `plan_` aliases the active one.
  std::map<int, std::unique_ptr<LocalPlan>> plans_;
  int active_query_ = 0;
  LocalPlan* plan_ = nullptr;
  std::thread thread_;
  Status error_;

  /// Receiver half of wire-run compression: the last decoded raw run per
  /// (query, sender, operator) edge, mirroring the sender's dictionary.
  /// Cleared on kRecoverPrepare (senders reset their half in
  /// ResetTransientState / OnMembershipChange); per-query entries die with
  /// DropPlan. A kRaw run always (re)starts an edge, so stale entries are
  /// overwritten, never trusted.
  struct WireRunRef {
    uint64_t run_seq = 0;
    uint64_t check = 0;
    std::string raw;
  };
  std::map<std::tuple<int, int, int>, WireRunRef> wire_runs_;

  // Staged recovery parameters (read inside kRecoverPrepare handling).
  const PartitionMap* staged_pmap_ = nullptr;
  const PartitionMap* staged_old_pmap_ = nullptr;
  int staged_last_stratum_ = -1;
};

}  // namespace rex

#endif  // REX_CLUSTER_WORKER_H_
