#include "cluster/failure_detector.h"

#include <algorithm>

#include "common/logging.h"

namespace rex {

FailureDetector::FailureDetector(int num_workers, Config config)
    : config_(config), peers_(static_cast<size_t>(num_workers)) {}

void FailureDetector::OnHeartbeat(int worker, int incarnation) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (worker < 0 || worker >= static_cast<int>(peers_.size())) return;
  PeerState& p = peers_[worker];
  if (incarnation < p.incarnation) {
    // A thread from a previous life of this worker; its liveness says
    // nothing about the current incarnation.
    return;
  }
  if (p.state == State::kDead) {
    // Dead is final until Revive: a straggler heartbeat that raced the
    // death declaration must not resurrect the worker behind the driver's
    // back (the driver already initiated recovery).
    return;
  }
  p.heard_this_round = true;
  p.missed_rounds = 0;
  p.state = State::kAlive;
}

void FailureDetector::BeginRound() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (PeerState& p : peers_) p.heard_this_round = false;
}

std::vector<int> FailureDetector::Tick() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<int> newly_dead;
  for (size_t w = 0; w < peers_.size(); ++w) {
    PeerState& p = peers_[w];
    if (p.state == State::kDead || p.heard_this_round) continue;
    ++p.missed_rounds;
    if (p.state == State::kAlive && p.missed_rounds >= config_.suspect_after) {
      p.state = State::kSuspected;
      REX_LOG(Info) << "failure detector: worker " << w << " suspected after "
                    << p.missed_rounds << " missed round(s)";
    } else if (p.state == State::kSuspected &&
               p.missed_rounds >=
                   config_.suspect_after + config_.confirm_after) {
      p.state = State::kDead;
      detection_latency_ticks_ += p.missed_rounds;
      ++deaths_detected_;
      newly_dead.push_back(static_cast<int>(w));
      REX_LOG(Info) << "failure detector: worker " << w << " declared dead ("
                    << p.missed_rounds << " missed rounds)";
    }
  }
  return newly_dead;
}

bool FailureDetector::AnySuspected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::any_of(peers_.begin(), peers_.end(), [](const PeerState& p) {
    return p.state == State::kSuspected;
  });
}

FailureDetector::State FailureDetector::state(int worker) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return peers_[worker].state;
}

int FailureDetector::Revive(int worker) {
  std::lock_guard<std::mutex> lock(mutex_);
  PeerState& p = peers_[worker];
  p.state = State::kAlive;
  p.missed_rounds = 0;
  p.heard_this_round = false;
  return ++p.incarnation;
}

int FailureDetector::incarnation(int worker) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return peers_[worker].incarnation;
}

int64_t FailureDetector::detection_latency_ticks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return detection_latency_ticks_;
}

int64_t FailureDetector::deaths_detected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return deaths_detected_;
}

}  // namespace rex
