#include "cluster/cluster.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"

namespace rex {

namespace {
double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}
}  // namespace

Cluster::Cluster(EngineConfig config)
    : config_(config),
      checkpoints_(CheckpointStore::Options{
          config.num_workers, config.diff_checkpoints,
          config.checkpoint_keyframe_every}) {
  network_ = std::make_unique<Network>(config_.num_workers,
                                       config_.channel_capacity,
                                       config_.send_retry_budget);
  FailureDetector::Config fd_config;
  fd_config.suspect_after = config_.heartbeat_suspect_rounds;
  fd_config.confirm_after = config_.heartbeat_confirm_rounds;
  detector_ =
      std::make_unique<FailureDetector>(config_.num_workers, fd_config);
  network_->set_heartbeat_sink(detector_.get());
  failed_.assign(static_cast<size_t>(config_.num_workers), false);
  for (int i = 0; i < config_.num_workers; ++i) {
    workers_.push_back(std::make_unique<WorkerNode>(
        i, network_.get(), &storage_, &udfs_, &votes_, &checkpoints_,
        &config_));
  }
  Status st = RegisterBuiltins(&udfs_);
  if (!st.ok()) REX_LOG(Error) << "builtin registration: " << st.ToString();
}

Cluster::~Cluster() { Shutdown(); }

Status Cluster::Start() {
  if (started_) return Status::OK();
  for (auto& w : workers_) w->Start();
  started_ = true;
  return Status::OK();
}

void Cluster::Shutdown() {
  for (auto& w : workers_) w->Stop();
  started_ = false;
}

std::vector<int> Cluster::LiveWorkers() const {
  std::vector<int> live;
  for (int i = 0; i < num_workers(); ++i) {
    if (!failed_[static_cast<size_t>(i)]) live.push_back(i);
  }
  return live;
}

Status Cluster::CreateTable(const std::string& name, Schema schema,
                            int key_column, std::vector<Tuple> rows) {
  auto table = std::make_shared<DistributedTable>(name, std::move(schema),
                                                  key_column);
  table->AppendRows(std::move(rows));
  return storage_.AddTable(std::move(table));
}

Status Cluster::Broadcast(const ControlMsg& c,
                          const std::vector<int>& targets) {
  for (int w : targets) {
    REX_RETURN_NOT_OK(network_->Send(Message::Control(w, c)));
  }
  return Status::OK();
}

Status Cluster::CheckWorkerErrors(const std::vector<int>& live) const {
  for (int w : live) {
    const Status& st = workers_[static_cast<size_t>(w)]->error();
    if (!st.ok()) return st;
  }
  return Status::OK();
}

const PartitionMap* Cluster::PushPartitionMap(std::vector<int> live) {
  pmap_history_.push_back(std::make_unique<PartitionMap>(
      std::move(live), config_.replication, config_.vnodes_per_worker));
  return pmap_history_.back().get();
}

Status Cluster::InjectBoundaryCrash(int w) {
  REX_LOG(Info) << "injecting failure of worker " << w;
  // Only the victim is touched: its inbox closes and its thread exits.
  // Nobody is told — the failure detector must notice the silence, and
  // the trace ring records the crash only once detection confirms it
  // (the ring is the driver's view, and the driver was not told either).
  network_->Crash(w);
  workers_[static_cast<size_t>(w)]->Stop();
  return Status::OK();
}

void Cluster::ConfirmDead(int w) {
  REX_LOG(Info) << "failure detector confirmed death of worker " << w;
  trace_.Record(TraceEvent::Kind::kCrash, w, 1, 0, "detected");
  failed_[static_cast<size_t>(w)] = true;
  network_->MarkFailed(w);
  workers_[static_cast<size_t>(w)]->Stop();
}

std::vector<int> Cluster::DetectFailures() {
  std::vector<int> newly_dead;
  bool keep_probing = true;
  while (keep_probing) {
    detector_->BeginRound();
    ControlMsg ping;
    ping.kind = ControlMsg::Kind::kPing;
    for (int w = 0; w < num_workers(); ++w) {
      if (failed_[static_cast<size_t>(w)] || detector_->IsDead(w)) continue;
      // A ping to a crashed worker lands in a closed channel and is
      // dropped; the missing heartbeat is the signal.
      (void)network_->Send(Message::Control(w, ping));
    }
    network_->WaitQuiescent();
    for (int w : detector_->Tick()) {
      ConfirmDead(w);
      newly_dead.push_back(w);
    }
    // A suspicion must resolve to alive or dead before execution resumes:
    // the quiescence barrier and Recover() act on detected membership.
    keep_probing = detector_->AnySuspected();
  }
  return newly_dead;
}

Status Cluster::ReviveWorker(int w) {
  if (!failed_[static_cast<size_t>(w)]) return Status::OK();
  REX_LOG(Info) << "restoring worker " << w << " (fresh replacement node)";
  trace_.Record(TraceEvent::Kind::kRestore, w, 0, 0);
  // The replacement is a new incarnation: late votes and straggler
  // messages from the previous life are rejected by board and channel.
  // Every resident's board learns the new incarnation — a stale vote must
  // be rejected no matter which query it targets.
  const int incarnation = detector_->Revive(w);
  votes_.SetIncarnation(w, incarnation);
  for (auto& [qid, q] : residents_) {
    if (q.owned_votes != nullptr) q.owned_votes->SetIncarnation(w, incarnation);
  }
  // Destroy the dead node FIRST: its destructor closes the inbox, which
  // must happen before Restore() reopens it for the replacement.
  workers_[static_cast<size_t>(w)] = std::make_unique<WorkerNode>(
      w, network_.get(), &storage_, &udfs_, &votes_, &checkpoints_,
      &config_, incarnation);
  // The fresh node boots pointed at the legacy (query 0) boards; align it
  // with whichever resident is currently active.
  if (active_query_ != 0) {
    workers_[static_cast<size_t>(w)]->ActivateQuery(
        active_query_, active_votes_, active_checkpoints_, nullptr);
  }
  network_->Restore(w);
  if (started_) workers_[static_cast<size_t>(w)]->Start();
  failed_[static_cast<size_t>(w)] = false;
  // The replacement holds no plan for any resident; everyone except the
  // active query (whose ongoing recovery reinstalls it) is now stale.
  MarkOthersStale(active_query_);
  return Status::OK();
}

Status Cluster::ReviveFailedWorkers() {
  bool any_revived = false;
  for (int i = 0; i < num_workers(); ++i) {
    if (failed_[static_cast<size_t>(i)]) any_revived = true;
    REX_RETURN_NOT_OK(ReviveWorker(i));
  }
  // No recovery pass follows a driver-initiated revive: even the active
  // resident's plan is missing on the replacements, so nobody may resume
  // incrementally until a fresh RunResident.
  if (any_revived) MarkOthersStale(/*except_query=*/-1);
  return Status::OK();
}

void Cluster::MarkOthersStale(int except_query) {
  for (auto& [qid, q] : residents_) {
    if (qid == except_query) continue;
    q.stale = true;
  }
}

Status Cluster::GuidedReplay(const PlanSpec& spec, const PartitionMap* pmap,
                             const std::vector<int>& live,
                             int last_complete) {
  // Fresh plans on every live worker: the replay re-derives every
  // operator's state (fixpoints from the checkpoint store, everything else
  // from re-running the waves), so nothing stale can survive.
  for (int w : live) {
    REX_RETURN_NOT_OK(
        workers_[static_cast<size_t>(w)]->InstallPlan(spec, pmap));
  }
  for (int s = 0; s <= last_complete; ++s) {
    ControlMsg c;
    c.kind = ControlMsg::Kind::kReplayStratum;
    c.stratum = s;
    REX_RETURN_NOT_OK(Broadcast(c, live));
    network_->WaitQuiescent();
    // A crash during replay is only visible as silence; probe before
    // trusting the stratum's results.
    if (!DetectFailures().empty()) {
      return Status::NodeFailure("worker failed during replay recovery");
    }
    REX_RETURN_NOT_OK(CheckWorkerErrors(live));
  }
  ControlMsg end;
  end.kind = ControlMsg::Kind::kReplayEnd;
  end.stratum = last_complete;
  REX_RETURN_NOT_OK(Broadcast(end, live));
  network_->WaitQuiescent();
  REX_RETURN_NOT_OK(CheckWorkerErrors(live));
  return Status::OK();
}

Status Cluster::Recover(const PlanSpec& spec, RecoveryStrategy strategy,
                        ChaosInjector* injector, std::vector<int> revived,
                        const PartitionMap** pmap, std::vector<int>* live,
                        int* resume_stratum, QueryRunResult* out) {
  out->recovered = true;
  // Set when a crash interrupts a plain incremental recovery: the
  // survivors' operator state is half-restored, so the retry rebuilds
  // everything with guided replay instead.
  bool force_replay = false;
  // Set when checkpoint integrity fails beyond repair (every copy of some
  // entry corrupt): the remaining passes fall back to the restart strategy.
  bool degrade_to_restart = false;
  int attempts = 0;
  while (true) {
    if (attempts >= config_.recovery_retry_budget) {
      return Status::NodeFailure(
          "recovery retry budget (" +
          std::to_string(config_.recovery_retry_budget) + ") exhausted");
    }
    if (attempts > 0) {
      // Simulated exponential backoff between passes (accounted in ticks,
      // not wall-clock: chaos runs stay deterministic).
      const int64_t backoff_ticks = int64_t{1} << std::min(attempts - 1, 6);
      REX_LOG(Info) << "recovery pass " << attempts + 1 << " after backoff of "
                    << backoff_ticks << " tick(s)";
    }
    ++attempts;
    *live = LiveWorkers();
    if (live->empty()) return Status::NodeFailure("all workers failed");
    const PartitionMap* old_pmap = *pmap;
    *pmap = PushPartitionMap(*live);
    out->recoveries += 1;
    const auto t_pass = std::chrono::steady_clock::now();
    trace_.Record(TraceEvent::Kind::kRecoverBegin, out->recoveries, 0,
                  static_cast<int64_t>(live->size()));
    if (injector != nullptr) {
      injector->NoteRecoveryRound();
      injector->BeginRecovery();
    }

    const int last_complete = *resume_stratum - 1;
    const RecoveryStrategy pass_strategy =
        degrade_to_restart ? RecoveryStrategy::kRestart : strategy;
    bool restarted = false;
    bool used_replay = false;
    Status st;
    if (pass_strategy == RecoveryStrategy::kRestart || last_complete < 0 ||
        !config_.checkpoint_deltas) {
      // Restart — or nothing usable checkpointed: discard all work and
      // re-run from stratum 0 on the current live set.
      active_votes_->Reset();
      active_checkpoints_->Clear();
      for (int w : *live) {
        st = workers_[static_cast<size_t>(w)]->InstallPlan(spec, *pmap);
        if (!st.ok()) break;
      }
      restarted = true;
    } else {
      // Incremental (§4.3). First the DHT side: takeover nodes (freshly
      // revived replacements in particular) gain read access to every
      // checkpoint entry they inherit, and copy counts are topped back up.
      st = active_checkpoints_->GrantRecoveryAccess(*live, revived,
                                            config_.replication);
      if (st.ok()) {
        if (spec.NeedsReplayRecovery() || force_replay) {
          used_replay = true;
          st = GuidedReplay(spec, *pmap, *live, last_complete);
        } else {
          // Phase 1 — new snapshot, reset transient state, restore
          // fixpoint state from checkpoints of strata [0, last_complete].
          // A revived worker starts from a fresh plan.
          for (int w : revived) {
            st = workers_[static_cast<size_t>(w)]->InstallPlan(spec, *pmap);
            if (!st.ok()) break;
          }
          if (st.ok()) {
            for (int w : *live) {
              workers_[static_cast<size_t>(w)]->StageRecovery(
                  *pmap, old_pmap, last_complete);
            }
            ControlMsg prep;
            prep.kind = ControlMsg::Kind::kRecoverPrepare;
            st = Broadcast(prep, *live);
          }
          if (st.ok()) {
            network_->WaitQuiescent();
            st = CheckWorkerErrors(*live);
          }
          if (st.ok()) {
            // Phase 2 — stream immutable rows of moved ranges to their
            // takeover nodes.
            ControlMsg reload;
            reload.kind = ControlMsg::Kind::kRecoverReload;
            st = Broadcast(reload, *live);
          }
          if (st.ok()) {
            network_->WaitQuiescent();
            st = CheckWorkerErrors(*live);
          }
        }
      }
    }
    if (injector != nullptr) injector->EndRecovery();

    RecoveryPassProfile pass;
    pass.pass = out->recoveries;
    pass.seconds = SecondsSince(t_pass);
    pass.strategy = restarted ? "restart"
                    : used_replay ? "replay"
                                  : "incremental";
    pass.resume_stratum = restarted ? 0 : *resume_stratum;
    pass.live_workers = static_cast<int>(live->size());
    pass.revived_workers = static_cast<int>(revived.size());
    out->profile.recovery_passes.push_back(pass);
    trace_.Record(TraceEvent::Kind::kRecoverEnd, out->recoveries, 0,
                  pass.resume_stratum, pass.strategy);

    // Did more workers die during the recovery itself (or was a
    // during-recovery crash scheduled that the traffic never triggered)?
    // Deaths are only visible through the failure detector: crash them
    // silently, probe, and compare the live set against confirmed deaths.
    if (injector != nullptr) {
      for (int w : injector->TakeUnfiredRecoveryCrashes()) {
        if (failed_[static_cast<size_t>(w)]) continue;
        network_->Crash(w);
        workers_[static_cast<size_t>(w)]->Stop();
      }
      DetectFailures();
    }
    std::vector<int> died;
    for (int w : *live) {
      if (failed_[static_cast<size_t>(w)]) died.push_back(w);
    }
    if (!died.empty()) {
      REX_LOG(Info) << "chaos: " << died.size()
                    << " worker(s) failed during recovery; retrying";
      for (int w : died) {
        revived.erase(std::remove(revived.begin(), revived.end(), w),
                      revived.end());
      }
      if (!restarted && pass_strategy != RecoveryStrategy::kRestart) {
        force_replay = true;
      }
      continue;  // retry against the shrunken live set
    }

    if (!st.ok()) {
      if (st.code() == StatusCode::kDataLoss && !restarted) {
        // Every copy of some checkpoint entry failed its integrity check:
        // the Δ history is unusable. Degrade gracefully to a restart pass
        // instead of failing the query.
        REX_LOG(Warn) << "checkpoint integrity lost (" << st.ToString()
                      << "); degrading to restart strategy";
        trace_.Record(TraceEvent::Kind::kRecoverBegin, out->recoveries, 1, 0,
                      "degrade-to-restart");
        degrade_to_restart = true;
        continue;
      }
      return st;
    }
    if (restarted) *resume_stratum = 0;
    // Membership (and the partition map) moved under every inactive
    // resident: their installed plans may reference dead workers. They must
    // be re-derived before serving again.
    MarkOthersStale(active_query_);
    return Status::OK();
  }
}

Status Cluster::CheckRuntimeInvariants(const std::vector<int>& live,
                                       int stratum) {
  REX_RETURN_NOT_OK(network_->CheckInvariants());
  if (!config_.checkpoint_deltas) return Status::OK();
  // Every checkpoint entry must still be readable from enough live nodes.
  REX_RETURN_NOT_OK(
      active_checkpoints_->VerifyReadable(live, config_.replication));
  // Δ conservation: replaying the store reproduces each live fixpoint's
  // mutable state (and pending Δ set) bit-for-bit.
  for (int w : live) {
    LocalPlan* plan = workers_[static_cast<size_t>(w)]->plan();
    if (plan == nullptr) continue;
    for (FixpointOp* fp : plan->fixpoints()) {
      REX_RETURN_NOT_OK(fp->VerifyCheckpointConservation(stratum));
    }
  }
  return Status::OK();
}

Result<QueryRunResult> Cluster::Run(const PlanSpec& spec,
                                    const QueryOptions& options) {
  return RunResident(0, spec, options);
}

Cluster::ResidentQuery* Cluster::Resident(int query_id) {
  auto it = residents_.find(query_id);
  if (it != residents_.end()) return &it->second;
  ResidentQuery q;
  if (query_id != 0) {
    q.owned_votes = std::make_unique<VoteBoard>();
    q.owned_checkpoints =
        std::make_unique<CheckpointStore>(CheckpointStore::Options{
            config_.num_workers, config_.diff_checkpoints,
            config_.checkpoint_keyframe_every});
    // A board created mid-life must reject votes from incarnations the
    // cluster has already declared dead.
    for (int w = 0; w < num_workers(); ++w) {
      const int inc = workers_[static_cast<size_t>(w)]->incarnation();
      if (inc > 0) q.owned_votes->SetIncarnation(w, inc);
    }
  }
  return &residents_.emplace(query_id, std::move(q)).first->second;
}

void Cluster::ActivateResident(int query_id) {
  ResidentQuery* q = Resident(query_id);
  active_query_ = query_id;
  active_votes_ = VotesFor(q);
  active_checkpoints_ = CheckpointsFor(q);
  for (int w = 0; w < num_workers(); ++w) {
    if (failed_[static_cast<size_t>(w)]) continue;
    workers_[static_cast<size_t>(w)]->ActivateQuery(
        query_id, active_votes_, active_checkpoints_, q->pmap);
  }
}

Result<QueryRunResult> Cluster::RunResident(int query_id,
                                            const PlanSpec& spec,
                                            const QueryOptions& options) {
  ActivateResident(query_id);
  Result<QueryRunResult> res = RunInternal(spec, options);
  if (!res.ok()) {
    REX_LOG(Error) << "query failed: " << res.status().ToString();
    DumpTraces();
  }
  return res;
}

Status Cluster::EvictResident(int query_id) {
  auto it = residents_.find(query_id);
  if (it == residents_.end()) {
    return Status::NotFound("no resident query " + std::to_string(query_id));
  }
  for (auto& w : workers_) w->DropPlan(query_id);
  if (active_query_ == query_id) {
    // Fall back to the legacy boards; there is no active plan until the
    // next RunResident.
    active_query_ = 0;
    active_votes_ = &votes_;
    active_checkpoints_ = &checkpoints_;
  }
  residents_.erase(it);
  return Status::OK();
}

bool Cluster::IsPoisoned(int query_id) const {
  auto it = residents_.find(query_id);
  return it != residents_.end() && it->second.poisoned;
}

bool Cluster::IsStale(int query_id) const {
  auto it = residents_.find(query_id);
  return it != residents_.end() && it->second.stale;
}

void Cluster::DumpTraces() const {
  REX_LOG(Error) << trace_.Dump();
  for (const auto& w : workers_) {
    if (w->trace()->total_recorded() > 0) {
      REX_LOG(Error) << w->trace()->Dump();
    }
  }
}

void Cluster::AssembleProfile(const std::vector<int>& live,
                              QueryRunResult* out) {
  QueryProfile& p = out->profile;
  p.total_seconds = out->total_seconds;
  p.strata_executed = out->strata_executed;
  p.recovered = out->recovered;
  p.recoveries = out->recoveries;

  for (const StratumReport& r : out->strata) {
    StratumProfile s;
    s.stratum = r.stratum;
    s.seconds = r.seconds;
    s.bytes_sent = r.bytes_sent;
    s.delta_tuples = r.stats.new_tuples;
    s.changed_tuples = r.stats.changed_tuples;
    s.state_size = r.stats.state_size;
    s.max_change = r.stats.max_change;
    p.strata.push_back(s);
  }

  for (const auto& [key, stats] : active_votes_->SnapshotTotals()) {
    FixpointStratumProfile f;
    f.fixpoint_id = key.first;
    f.stratum = key.second;
    f.delta_tuples = stats.new_tuples;
    f.state_size = stats.state_size;
    p.fixpoint_deltas.push_back(f);
  }

  for (int w = 0; w < num_workers(); ++w) {
    WorkerProfile wp;
    wp.worker = w;
    wp.live_at_end = !failed_[static_cast<size_t>(w)];
    wp.bytes_sent = network_->BytesSentBy(w);
    MetricsRegistry* m = workers_[static_cast<size_t>(w)]->metrics();
    wp.counters = m->Snapshot();
    wp.timers = m->TimersSnapshot();
    p.workers.push_back(std::move(wp));
  }

  p.bytes_matrix = network_->BytesMatrix();

  for (int w : live) {
    LocalPlan* plan = workers_[static_cast<size_t>(w)]->plan();
    if (plan == nullptr) continue;
    for (LocalOperatorStats& s : plan->StatsSnapshot()) {
      OperatorProfile op;
      op.worker = w;
      op.op_id = s.op_id;
      op.name = s.name;
      op.deltas_emitted = s.deltas_emitted;
      for (size_t port = 0; port < s.ports.size(); ++port) {
        OperatorPortProfile pp;
        pp.port = static_cast<int>(port);
        pp.batches = s.ports[port].batches;
        pp.tuples = s.ports[port].tuples;
        pp.puncts = s.ports[port].puncts;
        pp.consume_nanos = s.ports[port].consume_nanos;
        op.ports.push_back(pp);
      }
      p.operators.push_back(std::move(op));
    }
  }

  MetricsRegistry& ckpt = active_checkpoints_->metrics();
  p.checkpoint_bytes = ckpt.Value(metrics::kCheckpointBytes);
  p.checkpoint_tuples = ckpt.Value(metrics::kCheckpointTuples);
  p.recovery_refetch_bytes = ckpt.Value(metrics::kRecoveryRefetchBytes);
  p.checkpoint_repairs = ckpt.Value(metrics::kCheckpointRepairs);
  p.ckpt_raw_bytes = ckpt.Value(metrics::kCheckpointRawBytes);
  p.ckpt_stored_bytes = ckpt.Value(metrics::kCheckpointStoredBytes);
  p.detection_latency_ticks = detector_->detection_latency_ticks();
  p.retransmits = network_->metrics().Value(metrics::kRetransmits);

  p.tuples_sent = network_->metrics().Value(metrics::kTuplesSent);
  for (int w = 0; w < num_workers(); ++w) {
    MetricsRegistry* m = workers_[static_cast<size_t>(w)]->metrics();
    p.deltas_coalesced += m->Value(metrics::kDeltasCoalesced);
    p.coalesce_bytes_saved += m->Value(metrics::kCoalesceBytesSaved);
    p.batch_rows += m->Value(metrics::kBatchRows);
    p.batch_fallback_rows += m->Value(metrics::kBatchFallbackRows);
    p.run_raw_bytes += m->Value(metrics::kRunRawBytes);
    p.run_compressed_bytes += m->Value(metrics::kRunCompressedBytes);
  }
}

Status Cluster::DriveStrata(const PlanSpec& spec, const QueryOptions& options,
                            RecoveryStrategy strategy, ChaosInjector* injector,
                            bool has_fixpoint, int start_stratum,
                            const PartitionMap** pmap, std::vector<int>* live,
                            QueryRunResult* out, int* next_stratum) {
  const int max_strata =
      options.max_strata > 0 ? options.max_strata : config_.max_strata;
  // A restart recovery resets `stratum` to 0; the budget stays anchored at
  // the original start so a restarted incremental update keeps a full
  // allowance.
  const int stratum_limit = start_stratum + max_strata;
  int stratum = start_stratum;
  while (true) {
    if (injector != nullptr) {
      // ---- boundary fault events ----------------------------------------
      // Crashes only stop the victim; the driver learns about them from
      // the failure detector below, never from the injector.
      for (int w : injector->TakeDueCrashes(stratum)) {
        if (failed_[static_cast<size_t>(w)]) continue;
        REX_RETURN_NOT_OK(InjectBoundaryCrash(w));
      }
      for (const auto& [holder, max_entries] :
           injector->TakeDueCorruptions(stratum)) {
        active_checkpoints_->CorruptCopies(holder, max_entries);
      }
      std::vector<int> revived;
      for (int w : injector->TakeRestores(stratum)) {
        REX_RETURN_NOT_OK(ReviveWorker(w));
        revived.push_back(w);
      }
      const std::vector<int> dead = DetectFailures();
      if (!dead.empty() || !revived.empty()) {
        REX_RETURN_NOT_OK(Recover(spec, strategy, injector,
                                  std::move(revived), pmap, live, &stratum,
                                  out));
      }
      injector->BeginStratum(stratum);
    }

    const auto t_stratum = std::chrono::steady_clock::now();
    const int64_t bytes_before = network_->TotalBytesSent();
    trace_.Record(TraceEvent::Kind::kStratumStart, 0, 0, stratum);

    ControlMsg start;
    start.kind = ControlMsg::Kind::kStartStratum;
    start.stratum = stratum;
    REX_RETURN_NOT_OK(Broadcast(start, *live));
    network_->WaitQuiescent();
    REX_RETURN_NOT_OK(network_->CheckInvariants());

    if (injector != nullptr) {
      // ---- mid-stratum failure: abort and re-execute the stratum --------
      // A mid-stratum crash (fired by the injector inside Send, or overdue
      // because the message threshold was never reached) only silences the
      // victim; probe to find out who actually died.
      for (int w : injector->TakeOverdueMidStratumCrashes(stratum)) {
        if (failed_[static_cast<size_t>(w)]) continue;
        network_->Crash(w);
        workers_[static_cast<size_t>(w)]->Stop();
      }
      const std::vector<int> mid = DetectFailures();
      if (!mid.empty()) {
        for (int w : mid) {
          REX_LOG(Info) << "chaos: aborting stratum " << stratum
                        << " after mid-stratum failure of worker " << w;
        }
        // Survivors may already have voted for / checkpointed the aborted
        // stratum; neither may survive into its re-execution.
        active_votes_->ClearFromStratum(stratum);
        active_checkpoints_->TruncateAfter(stratum - 1);
        REX_RETURN_NOT_OK(Recover(spec, strategy, injector, {}, pmap, live,
                                  &stratum, out));
        continue;  // re-execute (stratum was reset to 0 on restart)
      }
    }

    REX_RETURN_NOT_OK(CheckWorkerErrors(*live));
    if (config_.verify_invariants && has_fixpoint) {
      REX_RETURN_NOT_OK(CheckRuntimeInvariants(*live, stratum));
    }

    StratumReport report;
    report.stratum = stratum;
    report.stats = active_votes_->TotalForStratum(stratum);
    report.seconds = SecondsSince(t_stratum);
    report.bytes_sent = network_->TotalBytesSent() - bytes_before;
    out->strata.push_back(report);
    out->strata_executed += 1;

    bool stop = false;
    if (!has_fixpoint) {
      stop = true;  // a single non-recursive wave
    } else if (options.terminate) {
      stop = options.terminate(stratum, report.stats);
    } else {
      stop = report.stats.new_tuples == 0;  // implicit fixpoint
    }
    if (stop) break;
    ++stratum;
    if (stratum >= stratum_limit) {
      REX_LOG(Warn) << "query hit max_strata=" << max_strata;
      break;
    }
  }

  if (injector != nullptr) {
    out->chaos = injector->stats();
    // A crash/restore scheduled past the query's convergence never fired —
    // the scenario silently tested nothing. Make that loud.
    if (!injector->AllMandatoryEventsFired()) {
      return Status::InvalidArgument(
          "fault schedule events never fired (scheduled past convergence?): " +
          injector->UnfiredEventsToString());
    }
  }
  *next_stratum = stratum + 1;
  return Status::OK();
}

void Cluster::CollectResults(const std::vector<int>& live,
                             QueryRunResult* out) {
  // Collect results at the requestor: union of per-node sink outputs and
  // fixpoint state relations (safe: network is quiescent).
  for (int w : live) {
    LocalPlan* plan = workers_[static_cast<size_t>(w)]->plan();
    for (SinkOp* sink : plan->sinks()) {
      for (const Tuple& t : sink->results()) out->results.push_back(t);
    }
    for (FixpointOp* fp : plan->fixpoints()) {
      for (Tuple& t : fp->StateTuples()) {
        out->fixpoint_state.push_back(std::move(t));
      }
    }
  }
}

Result<QueryRunResult> Cluster::RunInternal(const PlanSpec& spec,
                                            const QueryOptions& options) {
  if (!started_) REX_RETURN_NOT_OK(Start());
  REX_RETURN_NOT_OK(spec.Validate());
  // A new run invalidates this resident's previous resume point and clears
  // any poison/staleness: the plan is re-derived from the current tables.
  ResidentQuery* rq = Resident(active_query_);
  rq->resume_stratum = -1;
  rq->poisoned = false;
  rq->poison_reason.clear();
  rq->stale = false;

  // ---- fault-schedule assembly + validation ------------------------------
  FaultSchedule schedule = options.faults;
  const FailureInjection& fi = options.failure;
  if (fi.worker != -1 || fi.before_stratum != -1) {
    if (fi.worker < 0 || fi.worker >= num_workers()) {
      return Status::InvalidArgument(
          "failure injection: worker " + std::to_string(fi.worker) +
          " out of range [0, " + std::to_string(num_workers()) + ")");
    }
    if (fi.before_stratum < 0) {
      return Status::InvalidArgument(
          "failure injection: before_stratum must be >= 0 when a victim "
          "worker is set");
    }
    FaultEvent e;
    e.kind = FaultEvent::Kind::kCrash;
    e.worker = fi.worker;
    e.at_stratum = fi.before_stratum;
    e.after_messages = -1;
    schedule.events.push_back(e);
    schedule.strategy = fi.strategy;
  }
  if (!schedule.empty()) {
    REX_RETURN_NOT_OK(schedule.Validate(num_workers(), config_.replication));
  }

  QueryRunResult out;
  const auto t_query = std::chrono::steady_clock::now();

  active_votes_->Reset();
  active_checkpoints_->Clear();

  std::vector<int> live = LiveWorkers();
  if (live.empty()) return Status::NodeFailure("no live workers");
  const PartitionMap* pmap = PushPartitionMap(live);
  for (int w : live) {
    REX_RETURN_NOT_OK(
        workers_[static_cast<size_t>(w)]->InstallPlan(spec, pmap));
  }

  bool has_fixpoint = false;
  for (const PlanNodeSpec& n : spec.nodes()) {
    if (n.type == PlanNodeSpec::Type::kFixpoint) has_fixpoint = true;
  }

  // The injector lives on the driver's stack for exactly this run; clear
  // the network hook on every exit path.
  std::unique_ptr<ChaosInjector> injector;
  struct InjectorGuard {
    Network* net = nullptr;
    ~InjectorGuard() {
      if (net != nullptr) net->set_fault_injector(nullptr);
    }
  } injector_guard;
  if (!schedule.empty()) {
    injector = std::make_unique<ChaosInjector>(schedule, network_.get());
    network_->set_fault_injector(injector.get());
    injector_guard.net = network_.get();
  }

  int next_stratum = 0;
  REX_RETURN_NOT_OK(DriveStrata(spec, options, schedule.strategy,
                                injector.get(), has_fixpoint,
                                /*start_stratum=*/0, &pmap, &live, &out,
                                &next_stratum));

  CollectResults(live, &out);
  out.total_seconds = SecondsSince(t_query);
  out.total_bytes_sent = network_->TotalBytesSent();
  AssembleProfile(live, &out);

  // Capture the resume point for incremental base-table updates: the plan
  // stays installed and converged, so ApplyBaseUpdate can seed a
  // perturbation Δ and continue the stratum sequence from here.
  if (has_fixpoint) {
    rq->spec = spec;
    rq->resume_stratum = next_stratum;
    rq->pmap = pmap;
    rq->live = live;
  }
  return out;
}

Result<QueryRunResult> Cluster::ApplyBaseUpdate(const BaseUpdate& update) {
  return ApplyBaseUpdate(0, update);
}

Status Cluster::MutateTables(
    const std::map<std::string, std::vector<DistributedTable::WeightedRow>>&
        tables) {
  for (const auto& [name, rows] : tables) {
    REX_ASSIGN_OR_RETURN(std::shared_ptr<DistributedTable> table,
                         storage_.GetTable(name));
    REX_RETURN_NOT_OK(table->ApplyWeighted(rows).status());
  }
  return Status::OK();
}

Cluster::ProfileBaseline Cluster::SnapshotBaseline() const {
  ProfileBaseline b;
  b.tuples_sent = network_->metrics().Value(metrics::kTuplesSent);
  b.retransmits = network_->metrics().Value(metrics::kRetransmits);
  for (const auto& w : workers_) {
    b.deltas_coalesced += w->metrics()->Value(metrics::kDeltasCoalesced);
    b.coalesce_bytes_saved +=
        w->metrics()->Value(metrics::kCoalesceBytesSaved);
    b.batch_rows += w->metrics()->Value(metrics::kBatchRows);
    b.batch_fallback_rows += w->metrics()->Value(metrics::kBatchFallbackRows);
    b.run_raw_bytes += w->metrics()->Value(metrics::kRunRawBytes);
    b.run_compressed_bytes +=
        w->metrics()->Value(metrics::kRunCompressedBytes);
  }
  MetricsRegistry& ckpt = active_checkpoints_->metrics();
  b.checkpoint_bytes = ckpt.Value(metrics::kCheckpointBytes);
  b.checkpoint_tuples = ckpt.Value(metrics::kCheckpointTuples);
  b.recovery_refetch_bytes = ckpt.Value(metrics::kRecoveryRefetchBytes);
  b.checkpoint_repairs = ckpt.Value(metrics::kCheckpointRepairs);
  b.ckpt_raw_bytes = ckpt.Value(metrics::kCheckpointRawBytes);
  b.ckpt_stored_bytes = ckpt.Value(metrics::kCheckpointStoredBytes);
  return b;
}

void Cluster::SubtractBaseline(const ProfileBaseline& base, QueryProfile* p) {
  // A revived worker restarts its registry from zero, which can make the
  // cumulative sum dip below the baseline; clamp rather than report a
  // negative count.
  auto diff = [](int64_t now, int64_t before) {
    return std::max<int64_t>(0, now - before);
  };
  p->tuples_sent = diff(p->tuples_sent, base.tuples_sent);
  p->deltas_coalesced = diff(p->deltas_coalesced, base.deltas_coalesced);
  p->coalesce_bytes_saved =
      diff(p->coalesce_bytes_saved, base.coalesce_bytes_saved);
  p->batch_rows = diff(p->batch_rows, base.batch_rows);
  p->batch_fallback_rows =
      diff(p->batch_fallback_rows, base.batch_fallback_rows);
  p->checkpoint_bytes = diff(p->checkpoint_bytes, base.checkpoint_bytes);
  p->checkpoint_tuples = diff(p->checkpoint_tuples, base.checkpoint_tuples);
  p->recovery_refetch_bytes =
      diff(p->recovery_refetch_bytes, base.recovery_refetch_bytes);
  p->checkpoint_repairs =
      diff(p->checkpoint_repairs, base.checkpoint_repairs);
  p->retransmits = diff(p->retransmits, base.retransmits);
  p->ckpt_raw_bytes = diff(p->ckpt_raw_bytes, base.ckpt_raw_bytes);
  p->ckpt_stored_bytes = diff(p->ckpt_stored_bytes, base.ckpt_stored_bytes);
  p->run_raw_bytes = diff(p->run_raw_bytes, base.run_raw_bytes);
  p->run_compressed_bytes =
      diff(p->run_compressed_bytes, base.run_compressed_bytes);
}

Result<QueryRunResult> Cluster::ApplyBaseUpdate(int query_id,
                                                const BaseUpdate& update) {
  auto res_it = residents_.find(query_id);
  ResidentQuery* rq = res_it == residents_.end() ? nullptr : &res_it->second;
  if (rq != nullptr && rq->poisoned) {
    return Status::FailedPrecondition(
        "resident query " + std::to_string(query_id) +
        " is poisoned by a half-applied base update (" + rq->poison_reason +
        "); re-derive it with a fresh RunResident before further updates");
  }
  if (rq == nullptr || rq->resume_stratum < 1 || rq->pmap == nullptr) {
    return Status::InvalidArgument(
        "ApplyBaseUpdate requires a converged recursive Run for query " +
        std::to_string(query_id));
  }
  if (rq->stale) {
    return Status::FailedPrecondition(
        "resident query " + std::to_string(query_id) +
        " is stale: cluster membership changed while it was inactive; "
        "re-derive it with a fresh RunResident");
  }
  FaultSchedule schedule = update.faults;
  if (!schedule.empty()) {
    REX_RETURN_NOT_OK(schedule.Validate(num_workers(), config_.replication));
  }
  ActivateResident(query_id);
  std::vector<int> live = rq->live;
  const PartitionMap* pmap = rq->pmap;
  const int resume_at = rq->resume_stratum;
  REX_RETURN_NOT_OK(CheckWorkerErrors(live));

  // Everything after this point mutates shared state (tables, operator
  // buckets, checkpointed seeds). Poison the resident now and lift the
  // poison only on success, so ANY failure — not just one inside the
  // re-convergence drive — leaves the resident refusing further work
  // instead of silently computing against half-applied state.
  rq->poisoned = true;
  rq->poison_reason = "base update in flight";
  rq->resume_stratum = -1;
  auto poison = [&](const Status& why) {
    rq->poison_reason = why.ToString();
  };

  QueryRunResult out;
  const auto t_query = std::chrono::steady_clock::now();
  // Cumulative counters are snapshotted so the returned profile honestly
  // reports only this update's traffic, coalescing, and checkpoint volume
  // (the incremental-vs-from-scratch comparison depends on it).
  const ProfileBaseline baseline = SnapshotBaseline();
  const int64_t bytes_before = network_->TotalBytesSent();

  // 1. Base tables: the durable ℤ-set mutation. Recovery paths (takeover
  // reloads, restarts, guided replay) re-read these, so they must change
  // before any re-execution can happen.
  for (const auto& [name, rows] : update.tables) {
    auto table = storage_.GetTable(name);
    if (!table.ok()) {
      poison(table.status());
      return table.status();
    }
    auto net = (*table)->ApplyWeighted(rows);
    if (!net.ok()) {
      poison(net.status());
      return net.status();
    }
  }

  // 2. Operator state patches: revise materialized base state (immutable
  // join sides) in place on the workers that hold it. Driver-side direct
  // calls while the network is quiescent, like plan installation; routing
  // matches the placement the rows had when the scan loaded them.
  for (const StatePatch& patch : update.patches) {
    std::map<int, DeltaVec> by_worker;
    for (const Delta& d : patch.deltas) {
      const uint64_t h = PartitionHash(d.tuple, patch.route_fields);
      by_worker[pmap->PrimaryOwner(h)].push_back(d);
    }
    for (auto& [w, deltas] : by_worker) {
      LocalPlan* plan = workers_[static_cast<size_t>(w)]->plan();
      if (plan == nullptr || patch.op_id < 0 || patch.op_id >= plan->size()) {
        Status st = Status::InvalidArgument(
            "state patch targets unknown operator " +
            std::to_string(patch.op_id));
        poison(st);
        return st;
      }
      Status st = plan->op(patch.op_id)->Consume(patch.port,
                                                 std::move(deltas));
      if (!st.ok()) {
        poison(st);
        return st;
      }
    }
  }

  // 3. Perturbation Δ seeds, applied against each fixpoint's converged
  // state. The seeds' arrivals are checkpoint-appended to the converged
  // run's final stratum, so a crash anywhere in the re-convergence replays
  // them (TruncateAfter never drops a completed stratum).
  const int checkpoint_stratum = resume_at - 1;
  for (const auto& [op_id, deltas] : update.seeds) {
    bool found = false;
    for (int w : live) {
      LocalPlan* plan = workers_[static_cast<size_t>(w)]->plan();
      if (plan == nullptr) continue;
      for (FixpointOp* fp : plan->fixpoints()) {
        if (fp->id() != op_id) continue;
        found = true;
        DeltaVec mine;
        for (const Delta& d : deltas) {
          const uint64_t h = PartitionHash(d.tuple, fp->RouteFields());
          if (pmap->PrimaryOwner(h) == w) mine.push_back(d);
        }
        if (!mine.empty()) {
          Status st = fp->SeedBaseUpdate(mine, checkpoint_stratum);
          if (!st.ok()) {
            poison(st);
            return st;
          }
        }
      }
    }
    if (!found) {
      Status st = Status::InvalidArgument(
          "seeds target unknown fixpoint op " + std::to_string(op_id));
      poison(st);
      return st;
    }
  }

  // 4. Re-converge from the stratum after the converged run's last.
  std::unique_ptr<ChaosInjector> injector;
  struct InjectorGuard {
    Network* net = nullptr;
    ~InjectorGuard() {
      if (net != nullptr) net->set_fault_injector(nullptr);
    }
  } injector_guard;
  if (!schedule.empty()) {
    injector = std::make_unique<ChaosInjector>(schedule, network_.get());
    network_->set_fault_injector(injector.get());
    injector_guard.net = network_.get();
  }
  QueryOptions options;
  options.terminate = update.terminate;
  options.max_strata = update.max_strata;
  int next_stratum = resume_at;
  Status drive = DriveStrata(rq->spec, options, schedule.strategy,
                             injector.get(), /*has_fixpoint=*/true,
                             resume_at, &pmap, &live, &out, &next_stratum);
  if (!drive.ok()) {
    REX_LOG(Error) << "base update failed: " << drive.ToString();
    DumpTraces();
    poison(drive);  // state is suspect; require a fresh RunResident
    return drive;
  }

  CollectResults(live, &out);
  out.total_seconds = SecondsSince(t_query);
  out.total_bytes_sent = network_->TotalBytesSent() - bytes_before;
  AssembleProfile(live, &out);
  SubtractBaseline(baseline, &out.profile);

  // Chain: a further update resumes after this re-convergence.
  rq->poisoned = false;
  rq->poison_reason.clear();
  rq->resume_stratum = next_stratum;
  rq->pmap = pmap;
  rq->live = live;
  return out;
}

Result<UdfCostProfile> Cluster::MeasuredUdfProfile(
    const std::string& udf_name, const NodeCalibration& calib) const {
  const int64_t in = WorkerMetric("udf." + udf_name + ".in");
  if (in <= 0) {
    return Status::NotFound("UDF '" + udf_name +
                            "' has not executed; no runtime profile");
  }
  const int64_t nanos = WorkerMetric("udf." + udf_name + ".nanos");
  const int64_t out = WorkerMetric("udf." + udf_name + ".out");
  UdfCostProfile profile;
  const double secs_per_tuple =
      static_cast<double>(nanos) / 1e9 / static_cast<double>(in);
  profile.cost_per_tuple = secs_per_tuple * calib.cpu_tuples_per_sec;
  profile.fanout = static_cast<double>(out) / static_cast<double>(in);
  profile.selectivity =
      std::min(1.0, static_cast<double>(out) / static_cast<double>(in));
  auto def = udfs_.GetTable(udf_name);
  if (def.ok()) profile.deterministic = (*def)->deterministic;
  return profile;
}

int64_t Cluster::WorkerMetric(const std::string& name) const {
  int64_t total = 0;
  for (const auto& w : workers_) total += w->metrics()->Value(name);
  return total;
}

}  // namespace rex
