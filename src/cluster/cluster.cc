#include "cluster/cluster.h"

#include <chrono>

#include "common/logging.h"

namespace rex {

namespace {
double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}
}  // namespace

Cluster::Cluster(EngineConfig config) : config_(config) {
  network_ = std::make_unique<Network>(config_.num_workers);
  failed_.assign(static_cast<size_t>(config_.num_workers), false);
  for (int i = 0; i < config_.num_workers; ++i) {
    workers_.push_back(std::make_unique<WorkerNode>(
        i, network_.get(), &storage_, &udfs_, &votes_, &checkpoints_,
        &config_));
  }
  Status st = RegisterBuiltins(&udfs_);
  if (!st.ok()) REX_LOG(Error) << "builtin registration: " << st.ToString();
}

Cluster::~Cluster() { Shutdown(); }

Status Cluster::Start() {
  if (started_) return Status::OK();
  for (auto& w : workers_) w->Start();
  started_ = true;
  return Status::OK();
}

void Cluster::Shutdown() {
  for (auto& w : workers_) w->Stop();
  started_ = false;
}

std::vector<int> Cluster::LiveWorkers() const {
  std::vector<int> live;
  for (int i = 0; i < num_workers(); ++i) {
    if (!failed_[static_cast<size_t>(i)]) live.push_back(i);
  }
  return live;
}

Status Cluster::CreateTable(const std::string& name, Schema schema,
                            int key_column, std::vector<Tuple> rows) {
  auto table = std::make_shared<DistributedTable>(name, std::move(schema),
                                                  key_column);
  table->AppendRows(std::move(rows));
  return storage_.AddTable(std::move(table));
}

Status Cluster::Broadcast(const ControlMsg& c,
                          const std::vector<int>& targets) {
  for (int w : targets) {
    REX_RETURN_NOT_OK(network_->Send(Message::Control(w, c)));
  }
  return Status::OK();
}

Status Cluster::CheckWorkerErrors(const std::vector<int>& live) const {
  for (int w : live) {
    const Status& st = workers_[static_cast<size_t>(w)]->error();
    if (!st.ok()) return st;
  }
  return Status::OK();
}

const PartitionMap* Cluster::PushPartitionMap(std::vector<int> live) {
  pmap_history_.push_back(std::make_unique<PartitionMap>(
      std::move(live), config_.replication, config_.vnodes_per_worker));
  return pmap_history_.back().get();
}

Status Cluster::KillWorker(int w) {
  REX_LOG(Info) << "injecting failure of worker " << w;
  failed_[static_cast<size_t>(w)] = true;
  network_->MarkFailed(w);
  workers_[static_cast<size_t>(w)]->Stop();
  return Status::OK();
}

Status Cluster::ReviveFailedWorkers() {
  for (int i = 0; i < num_workers(); ++i) {
    if (!failed_[static_cast<size_t>(i)]) continue;
    // Destroy the dead node FIRST: its destructor closes the inbox, which
    // must happen before Restore() reopens it for the replacement.
    workers_[static_cast<size_t>(i)] = std::make_unique<WorkerNode>(
        i, network_.get(), &storage_, &udfs_, &votes_, &checkpoints_,
        &config_);
    network_->Restore(i);
    if (started_) workers_[static_cast<size_t>(i)]->Start();
    failed_[static_cast<size_t>(i)] = false;
  }
  return Status::OK();
}

Result<QueryRunResult> Cluster::Run(const PlanSpec& spec,
                                    const QueryOptions& options) {
  if (!started_) REX_RETURN_NOT_OK(Start());
  REX_RETURN_NOT_OK(spec.Validate());

  QueryRunResult out;
  const auto t_query = std::chrono::steady_clock::now();
  const int max_strata =
      options.max_strata > 0 ? options.max_strata : config_.max_strata;

  votes_.Reset();
  checkpoints_.Clear();

  std::vector<int> live = LiveWorkers();
  if (live.empty()) return Status::NodeFailure("no live workers");
  const PartitionMap* pmap = PushPartitionMap(live);
  for (int w : live) {
    REX_RETURN_NOT_OK(
        workers_[static_cast<size_t>(w)]->InstallPlan(spec, pmap));
  }

  bool has_fixpoint = false;
  for (const PlanNodeSpec& n : spec.nodes()) {
    if (n.type == PlanNodeSpec::Type::kFixpoint) has_fixpoint = true;
  }

  FailureInjection failure = options.failure;
  int stratum = 0;
  while (true) {
    if (failure.worker >= 0 && failure.before_stratum == stratum &&
        !failed_[static_cast<size_t>(failure.worker)]) {
      // ---- node failure + recovery (§4.3, §6.6) --------------------------
      REX_RETURN_NOT_OK(KillWorker(failure.worker));
      out.recovered = true;
      const PartitionMap* old_pmap = pmap;
      live = LiveWorkers();
      if (live.empty()) return Status::NodeFailure("all workers failed");
      pmap = PushPartitionMap(live);

      if (failure.strategy == RecoveryStrategy::kRestart) {
        // Discard everything; re-run from stratum 0 on the survivors.
        votes_.Reset();
        checkpoints_.Clear();
        for (int w : live) {
          REX_RETURN_NOT_OK(
              workers_[static_cast<size_t>(w)]->InstallPlan(spec, pmap));
        }
        stratum = 0;
      } else {
        // Incremental: phase 1 — new snapshot, reset transient state,
        // restore fixpoint state from checkpoints of strata [0, k-1].
        const int last_complete = stratum - 1;
        for (int w : live) {
          workers_[static_cast<size_t>(w)]->StageRecovery(pmap, old_pmap,
                                                          last_complete);
        }
        ControlMsg prep;
        prep.kind = ControlMsg::Kind::kRecoverPrepare;
        REX_RETURN_NOT_OK(Broadcast(prep, live));
        network_->WaitQuiescent();
        REX_RETURN_NOT_OK(CheckWorkerErrors(live));
        // Phase 2 — stream the failed range's immutable rows to the
        // takeover nodes.
        ControlMsg reload;
        reload.kind = ControlMsg::Kind::kRecoverReload;
        REX_RETURN_NOT_OK(Broadcast(reload, live));
        network_->WaitQuiescent();
        REX_RETURN_NOT_OK(CheckWorkerErrors(live));
        // Resume at stratum k with the restored pending Δ set.
      }
      failure.worker = -1;  // injected once
    }

    const auto t_stratum = std::chrono::steady_clock::now();
    const int64_t bytes_before = network_->TotalBytesSent();

    ControlMsg start;
    start.kind = ControlMsg::Kind::kStartStratum;
    start.stratum = stratum;
    REX_RETURN_NOT_OK(Broadcast(start, live));
    network_->WaitQuiescent();
    REX_RETURN_NOT_OK(CheckWorkerErrors(live));

    StratumReport report;
    report.stratum = stratum;
    report.stats = votes_.TotalForStratum(stratum);
    report.seconds = SecondsSince(t_stratum);
    report.bytes_sent = network_->TotalBytesSent() - bytes_before;
    out.strata.push_back(report);
    out.strata_executed += 1;

    bool stop = false;
    if (!has_fixpoint) {
      stop = true;  // a single non-recursive wave
    } else if (options.terminate) {
      stop = options.terminate(stratum, report.stats);
    } else {
      stop = report.stats.new_tuples == 0;  // implicit fixpoint
    }
    if (stop) break;
    ++stratum;
    if (stratum >= max_strata) {
      REX_LOG(Warn) << "query hit max_strata=" << max_strata;
      break;
    }
  }

  // Collect results at the requestor: union of per-node sink outputs and
  // fixpoint state relations (safe: network is quiescent).
  for (int w : live) {
    LocalPlan* plan = workers_[static_cast<size_t>(w)]->plan();
    for (SinkOp* sink : plan->sinks()) {
      for (const Tuple& t : sink->results()) out.results.push_back(t);
    }
    for (FixpointOp* fp : plan->fixpoints()) {
      for (Tuple& t : fp->StateTuples()) {
        out.fixpoint_state.push_back(std::move(t));
      }
    }
  }
  out.total_seconds = SecondsSince(t_query);
  out.total_bytes_sent = network_->TotalBytesSent();
  return out;
}

Result<UdfCostProfile> Cluster::MeasuredUdfProfile(
    const std::string& udf_name, const NodeCalibration& calib) const {
  const int64_t in = WorkerMetric("udf." + udf_name + ".in");
  if (in <= 0) {
    return Status::NotFound("UDF '" + udf_name +
                            "' has not executed; no runtime profile");
  }
  const int64_t nanos = WorkerMetric("udf." + udf_name + ".nanos");
  const int64_t out = WorkerMetric("udf." + udf_name + ".out");
  UdfCostProfile profile;
  const double secs_per_tuple =
      static_cast<double>(nanos) / 1e9 / static_cast<double>(in);
  profile.cost_per_tuple = secs_per_tuple * calib.cpu_tuples_per_sec;
  profile.fanout = static_cast<double>(out) / static_cast<double>(in);
  profile.selectivity =
      std::min(1.0, static_cast<double>(out) / static_cast<double>(in));
  auto def = udfs_.GetTable(udf_name);
  if (def.ok()) profile.deterministic = (*def)->deterministic;
  return profile;
}

int64_t Cluster::WorkerMetric(const std::string& name) const {
  int64_t total = 0;
  for (const auto& w : workers_) total += w->metrics()->Value(name);
  return total;
}

}  // namespace rex
