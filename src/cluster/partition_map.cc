#include "cluster/partition_map.h"

#include <algorithm>
#include <cassert>

#include "common/hash.h"

namespace rex {

PartitionMap::PartitionMap(std::vector<int> workers, int replication,
                           int vnodes_per_worker)
    : workers_(std::move(workers)),
      replication_(replication),
      vnodes_per_worker_(vnodes_per_worker) {
  assert(!workers_.empty());
  ring_.reserve(workers_.size() * static_cast<size_t>(vnodes_per_worker_));
  for (int w : workers_) {
    for (int v = 0; v < vnodes_per_worker_; ++v) {
      // Stable per-(worker, vnode) ring points: a worker's vnodes do not
      // depend on cluster membership, so removing a node leaves everyone
      // else's ranges in place.
      uint64_t point = HashCombine(HashMix(static_cast<uint64_t>(w) + 1),
                                   HashMix(static_cast<uint64_t>(v) + 101));
      ring_.push_back(VNode{point, w});
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

size_t PartitionMap::RingStart(uint64_t key_hash) const {
  VNode probe{key_hash, -1};
  auto it = std::lower_bound(ring_.begin(), ring_.end(), probe);
  if (it == ring_.end()) it = ring_.begin();
  return static_cast<size_t>(it - ring_.begin());
}

int PartitionMap::PrimaryOwner(uint64_t key_hash) const {
  assert(!ring_.empty());
  return ring_[RingStart(key_hash)].worker;
}

std::vector<int> PartitionMap::Owners(uint64_t key_hash) const {
  std::vector<int> owners;
  const int want = std::min<int>(replication_, num_workers());
  owners.reserve(static_cast<size_t>(want));
  size_t idx = RingStart(key_hash);
  for (size_t step = 0;
       step < ring_.size() && static_cast<int>(owners.size()) < want;
       ++step) {
    int w = ring_[(idx + step) % ring_.size()].worker;
    if (std::find(owners.begin(), owners.end(), w) == owners.end()) {
      owners.push_back(w);
    }
  }
  return owners;
}

bool PartitionMap::IsOwner(int worker, uint64_t key_hash) const {
  auto owners = Owners(key_hash);
  return std::find(owners.begin(), owners.end(), worker) != owners.end();
}

PartitionMap PartitionMap::WithoutWorker(int failed) const {
  std::vector<int> survivors;
  survivors.reserve(workers_.size());
  for (int w : workers_) {
    if (w != failed) survivors.push_back(w);
  }
  return PartitionMap(std::move(survivors), replication_, vnodes_per_worker_);
}

}  // namespace rex
