#include "cluster/worker.h"

#include "common/delta_codec.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/serde.h"

namespace rex {

WorkerNode::WorkerNode(int id, Network* network, StorageCatalog* storage,
                       UdfRegistry* udfs, VoteBoard* votes,
                       CheckpointStore* checkpoints,
                       const EngineConfig* config, int incarnation)
    : id_(id),
      network_(network),
      trace_("worker " + std::to_string(id)) {
  ctx_.worker_id = id;
  ctx_.incarnation = incarnation;
  ctx_.network = network;
  ctx_.storage = storage;
  ctx_.udfs = udfs;
  ctx_.metrics = &metrics_;
  ctx_.votes = votes;
  ctx_.checkpoints = checkpoints;
  ctx_.config = config;
  ctx_.trace = &trace_;
  dup_discarded_ = metrics_.GetCounter(metrics::kDupDiscarded);
  if (config == nullptr || config->profile_operators) {
    dispatch_timer_ = metrics_.GetTimer(metrics::kDispatchTimer);
  }
}

WorkerNode::~WorkerNode() { Stop(); }

Status WorkerNode::InstallPlan(const PlanSpec& spec,
                               const PartitionMap* pmap) {
  ctx_.pmap = pmap;
  ctx_.old_pmap = nullptr;
  ctx_.current_stratum = 0;
  ctx_.replay_mode = false;  // an aborted replay must not leak into a retry
  REX_ASSIGN_OR_RETURN(plans_[active_query_],
                       LocalPlan::Instantiate(spec, &ctx_));
  plan_ = plans_[active_query_].get();
  error_ = Status::OK();
  return Status::OK();
}

void WorkerNode::ActivateQuery(int query_id, VoteBoard* votes,
                               CheckpointStore* checkpoints,
                               const PartitionMap* pmap) {
  active_query_ = query_id;
  ctx_.votes = votes;
  ctx_.checkpoints = checkpoints;
  if (pmap != nullptr) ctx_.pmap = pmap;
  ctx_.old_pmap = nullptr;
  auto it = plans_.find(query_id);
  plan_ = it == plans_.end() ? nullptr : it->second.get();
}

void WorkerNode::DropPlan(int query_id) {
  auto it = plans_.find(query_id);
  if (it == plans_.end()) return;
  if (query_id == active_query_) plan_ = nullptr;
  plans_.erase(it);
  // The evicted query's wire-run mirrors die with its plan (a reinstalled
  // plan's fresh senders restart every edge with a kRaw run anyway).
  for (auto e = wire_runs_.begin(); e != wire_runs_.end();) {
    e = std::get<0>(e->first) == query_id ? wire_runs_.erase(e) : ++e;
  }
}

void WorkerNode::StageRecovery(const PartitionMap* new_pmap,
                               const PartitionMap* old_pmap,
                               int last_stratum) {
  staged_pmap_ = new_pmap;
  staged_old_pmap_ = old_pmap;
  staged_last_stratum_ = last_stratum;
}

void WorkerNode::Start() {
  thread_ = std::thread([this] { RunLoop(); });
}

void WorkerNode::Stop() {
  network_->channel(id_)->Close();
  if (thread_.joinable()) thread_.join();
}

void WorkerNode::RunLoop() {
  Channel* inbox = network_->channel(id_);
  while (true) {
    std::optional<Message> msg = inbox->Pop();
    if (!msg.has_value()) return;  // closed and drained
    if (msg->seq != 0) {
      // TCP-like exactly-once per sender: discard non-increasing sequence
      // numbers (chaos-injected duplicate deliveries).
      uint64_t& last = last_seq_[msg->from_worker];
      if (msg->seq <= last) {
        dup_discarded_->Add(1);
        network_->OnMessageProcessed();
        continue;
      }
      last = msg->seq;
    }
    if (msg->kind == Message::Kind::kControl &&
        msg->control.kind == ControlMsg::Kind::kPing) {
      // Liveness probes are answered even when a pending error suppresses
      // normal dispatch: an errored-but-running worker must not be
      // mistaken for a dead one by the failure detector.
      (void)network_->Send(Message::Heartbeat(id_, ctx_.incarnation));
      network_->OnMessageProcessed();
      continue;
    }
    if (error_.ok()) {
      Status st = Dispatch(*msg);
      if (!st.ok()) {
        // Record the first failure and keep draining so the driver's
        // quiescence wait terminates; it surfaces the error afterwards.
        error_ = st;
        trace_.Record(TraceEvent::Kind::kError, 0, 0, 0, st.ToString());
        REX_LOG(Error) << "worker " << id_ << ": " << st.ToString();
        REX_LOG(Error) << trace_.Dump();
      }
    }
    network_->OnMessageProcessed();
  }
}

Status WorkerNode::Dispatch(Message& msg) {
  ScopedTimer timed(dispatch_timer_);
  switch (msg.kind) {
    case Message::Kind::kControl:
      trace_.Record(TraceEvent::Kind::kControl,
                    static_cast<int>(msg.control.kind), 0,
                    msg.control.stratum);
      return HandleControl(msg.control);
    case Message::Kind::kData: {
      if (plan_ == nullptr) return Status::Internal("data before plan");
      REX_RETURN_NOT_OK(ValidateTarget(msg));
      if (msg.wire_codec != Message::WireCodec::kNone) {
        REX_ASSIGN_OR_RETURN(msg.deltas, DecodeWireRun(msg));
      }
      trace_.Record(TraceEvent::Kind::kDispatchData, msg.target_op,
                    msg.target_port,
                    static_cast<int64_t>(msg.deltas.size()));
      return plan_->op(msg.target_op)
          ->Consume(msg.target_port, std::move(msg.deltas));
    }
    case Message::Kind::kPunctuation: {
      if (plan_ == nullptr) return Status::Internal("punct before plan");
      REX_RETURN_NOT_OK(ValidateTarget(msg));
      trace_.Record(TraceEvent::Kind::kDispatchPunct, msg.target_op,
                    msg.target_port, 0);
      return plan_->op(msg.target_op)->OnPunct(msg.target_port, msg.punct);
    }
    case Message::Kind::kHeartbeat:
      // Heartbeats are routed synchronously to the driver's sink inside
      // Send and never reach an inbox.
      return Status::Internal("heartbeat message in worker inbox");
  }
  return Status::Internal("unknown message kind");
}

/// Bounds-checks a data/punctuation message's target before indexing into
/// the plan: a corrupted or mis-routed message must surface as a worker
/// error, not undefined behavior.
Status WorkerNode::ValidateTarget(const Message& msg) const {
  if (msg.target_op < 0 || msg.target_op >= plan_->size()) {
    return Status::Internal(
        "dispatch: message from worker " + std::to_string(msg.from_worker) +
        " targets op " + std::to_string(msg.target_op) + " but plan has " +
        std::to_string(plan_->size()) + " operators");
  }
  const Operator* op = plan_->op(msg.target_op);
  if (msg.target_port < 0 || msg.target_port >= op->num_ports()) {
    return Status::Internal(
        "dispatch: message from worker " + std::to_string(msg.from_worker) +
        " targets port " + std::to_string(msg.target_port) + " of op " +
        std::to_string(msg.target_op) + " (" + op->name() + ") which has " +
        std::to_string(op->num_ports()) + " ports");
  }
  return Status::OK();
}

Result<DeltaVec> WorkerNode::DecodeWireRun(Message& msg) {
  WireRunRef& edge =
      wire_runs_[std::make_tuple(active_query_, msg.from_worker,
                                 msg.target_op)];
  std::string raw;
  if (msg.wire_codec == Message::WireCodec::kRaw) {
    raw = std::move(msg.wire_payload);
  } else {
    if (edge.run_seq != msg.wire_ref_seq || edge.check != msg.wire_ref_check) {
      return Status::DataLoss(
          "wire run from worker " + std::to_string(msg.from_worker) +
          " for op " + std::to_string(msg.target_op) +
          " delta-encodes against edge run " +
          std::to_string(msg.wire_ref_seq) + " but the receiver mirror holds " +
          std::to_string(edge.run_seq));
    }
    REX_ASSIGN_OR_RETURN(
        raw, DeltaCodecDecode(edge.raw, msg.wire_payload, msg.wire_raw_size));
  }
  if (raw.size() != msg.wire_raw_size ||
      HashBytes(raw.data(), raw.size()) != msg.wire_raw_check) {
    return Status::DataLoss(
        "wire run " + std::to_string(msg.wire_run_seq) + " from worker " +
        std::to_string(msg.from_worker) +
        " failed its integrity check after decode");
  }
  REX_ASSIGN_OR_RETURN(DeltaVec deltas, DeserializeDeltas(raw));
  if (static_cast<int64_t>(deltas.size()) != msg.wire_tuples) {
    return Status::DataLoss("wire run tuple count mismatch: payload holds " +
                            std::to_string(deltas.size()) + ", header says " +
                            std::to_string(msg.wire_tuples));
  }
  edge.run_seq = msg.wire_run_seq;
  edge.check = msg.wire_raw_check;
  edge.raw = std::move(raw);
  return deltas;
}

Status WorkerNode::HandleControl(const ControlMsg& c) {
  switch (c.kind) {
    case ControlMsg::Kind::kStartStratum:
      ctx_.current_stratum = c.stratum;
      return plan_->StartStratum(c.stratum);
    case ControlMsg::Kind::kRecoverPrepare: {
      ctx_.pmap = staged_pmap_;
      ctx_.old_pmap = staged_old_pmap_;
      // Senders drop their wire-run dictionaries in ResetTransientState /
      // OnMembershipChange; drop the receiver mirrors to match.
      wire_runs_.clear();
      REX_RETURN_NOT_OK(plan_->OnMembershipChange());
      REX_RETURN_NOT_OK(plan_->ResetTransientState());
      if (staged_last_stratum_ >= 0) {
        // Stratum 0 completed before the failure, so every stream-once
        // wave (base case, immutable inputs) was delivered cluster-wide.
        // Survivors keep port_closed_ across ResetTransientState; a
        // revived worker's fresh plan must be primed the same way or its
        // open ports stall every subsequent punctuation wave.
        REX_RETURN_NOT_OK(plan_->MarkDeliveredStreamsClosed());
      }
      for (FixpointOp* fp : plan_->fixpoints()) {
        REX_RETURN_NOT_OK(fp->RestoreFromCheckpoints(staged_last_stratum_));
      }
      return Status::OK();
    }
    case ControlMsg::Kind::kRecoverReload: {
      REX_RETURN_NOT_OK(plan_->RecoveryReload());
      ctx_.old_pmap = nullptr;  // reload done; back to normal routing
      return Status::OK();
    }
    case ControlMsg::Kind::kReplayStratum: {
      // Guided replay: stratum 0 re-runs the base case; stratum s >= 1
      // seeds the fixpoints with the checkpointed Δ set of stratum s-1 and
      // flushes it through the loop body so derived state (persistent
      // group-bys, stateful join handlers) is rebuilt. Fixpoints discard
      // the deltas that come back around (ctx_.replay_mode).
      ctx_.replay_mode = true;
      ctx_.current_stratum = c.stratum;
      if (c.stratum >= 1) {
        for (FixpointOp* fp : plan_->fixpoints()) {
          REX_RETURN_NOT_OK(fp->ApplyCheckpointStratum(c.stratum - 1));
        }
      }
      return plan_->StartStratum(c.stratum);
    }
    case ControlMsg::Kind::kReplayEnd: {
      // Apply the final checkpointed Δ set so pending_ holds exactly what
      // the resumed stratum must flush, then return to normal execution.
      for (FixpointOp* fp : plan_->fixpoints()) {
        REX_RETURN_NOT_OK(fp->ApplyCheckpointStratum(c.stratum));
      }
      ctx_.replay_mode = false;
      return Status::OK();
    }
    case ControlMsg::Kind::kPing:
      // Answered on the RunLoop fast path (before the error check); reaching
      // Dispatch is harmless — just reply again.
      return network_->Send(Message::Heartbeat(id_, ctx_.incarnation));
    case ControlMsg::Kind::kNone:
      return Status::OK();
  }
  return Status::Internal("unknown control kind");
}

}  // namespace rex
