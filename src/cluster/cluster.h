// The Cluster: REX's shared-nothing runtime in one process.
//
// Owns the network, the worker threads, shared storage, the UDF registry,
// the checkpoint store, and the query-requestor logic: stratified recursion
// with per-stratum quiescence barriers, fixpoint vote collection, implicit
// and explicit termination conditions, failure injection, and both recovery
// strategies of §6.6 (restart and incremental).
#ifndef REX_CLUSTER_CLUSTER_H_
#define REX_CLUSTER_CLUSTER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/failure_detector.h"
#include "cluster/worker.h"
#include "obs/profile.h"
#include "optimizer/stats.h"
#include "sim/chaos_injector.h"
#include "sim/fault_schedule.h"
#include "storage/spill.h"
#include "storage/table.h"

namespace rex {

/// Deterministic failure injection: kill `worker` at the boundary just
/// before `before_stratum` begins. (The single-failure special case of a
/// FaultSchedule, kept for convenience; Run() validates it and converts it
/// into a one-event schedule.)
struct FailureInjection {
  int worker = -1;  // -1 = no failure
  int before_stratum = -1;
  RecoveryStrategy strategy = RecoveryStrategy::kIncremental;
};

struct QueryOptions {
  /// Explicit termination condition (§3.4): called after each stratum with
  /// its aggregated vote; return true to stop. Null = implicit fixpoint
  /// termination (stop when no new tuples were derived).
  std::function<bool(int stratum, const VoteStats&)> terminate;
  int max_strata = -1;  // -1: use EngineConfig::max_strata
  FailureInjection failure;
  /// Seeded multi-fault schedule (chaos harness). Validated against the
  /// cluster before the run; crash and restore events that never fire make
  /// the run fail (a schedule must not silently miss the query).
  FaultSchedule faults;
};

struct StratumReport {
  int stratum = 0;
  VoteStats stats;
  double seconds = 0;
  int64_t bytes_sent = 0;  // network bytes during this stratum
};

struct QueryRunResult {
  /// Union of sink results across workers (non-recursive output).
  std::vector<Tuple> results;
  /// Union of fixpoint state relations across workers (recursive output).
  std::vector<Tuple> fixpoint_state;
  std::vector<StratumReport> strata;
  int strata_executed = 0;
  double total_seconds = 0;
  int64_t total_bytes_sent = 0;
  bool recovered = false;
  /// Number of recovery passes the run performed (one failure handled
  /// during recovery adds another pass).
  int recoveries = 0;
  /// What the chaos injector actually did (zeroed when no schedule ran).
  ChaosStats chaos;
  /// Structured observability artifact assembled by the driver after the
  /// run: per-stratum timing/Δ cardinality, per-fixpoint Δ series,
  /// per-worker counters + timers, the (sender, receiver) byte matrix,
  /// per-operator port stats, recovery-pass timings, checkpoint volume.
  QueryProfile profile;
};

class Cluster {
 public:
  explicit Cluster(EngineConfig config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Spawns the worker threads. Call once before Run.
  Status Start();
  void Shutdown();

  const EngineConfig& config() const { return config_; }
  StorageCatalog* storage() { return &storage_; }
  UdfRegistry* udfs() { return &udfs_; }
  Network* network() { return network_.get(); }
  CheckpointStore* checkpoints() { return &checkpoints_; }
  WorkerNode* worker(int i) { return workers_[static_cast<size_t>(i)].get(); }
  int num_workers() const { return config_.num_workers; }
  std::vector<int> LiveWorkers() const;

  /// Creates and registers a table partitioned on `key_column`.
  Status CreateTable(const std::string& name, Schema schema, int key_column,
                     std::vector<Tuple> rows);

  /// Optimizes nothing — executes the given physical plan (the optimizer
  /// and RQL layers produce PlanSpecs; algorithms may hand-build them).
  /// On any error the driver and worker trace rings are dumped to the log
  /// before the Status propagates. Equivalent to RunResident(0, ...).
  Result<QueryRunResult> Run(const PlanSpec& spec,
                             const QueryOptions& options = {});

  /// Multi-query residency (serving layer). Each query id owns its own
  /// vote board, checkpoint store, resume point, and one LocalPlan slot per
  /// worker; execution is still serialized — the driver activates one
  /// resident at a time while the network is quiescent, because the
  /// message fabric carries op ids without query ids. RunResident runs
  /// `spec` under `query_id`, leaves the plan installed and converged
  /// (standing query), and clears any poison/staleness on that resident.
  Result<QueryRunResult> RunResident(int query_id, const PlanSpec& spec,
                                     const QueryOptions& options = {});

  /// Evicts a resident query: drops its plans from all workers and frees
  /// its boards. Query 0 (the legacy slot) can be evicted too; a later
  /// Run()/RunResident(0, ...) re-creates it.
  Status EvictResident(int query_id);

  /// Number of queries currently resident (installed plans).
  int ResidentCount() const { return static_cast<int>(residents_.size()); }

  /// True if `query_id`'s last ApplyBaseUpdate failed mid-flight, leaving
  /// tables/operator state half-applied: further updates are refused with
  /// FailedPrecondition until a fresh RunResident re-derives everything
  /// from the (already mutated) base tables.
  bool IsPoisoned(int query_id) const;

  /// True if another resident's recovery changed cluster membership while
  /// `query_id` was inactive — its installed plans may reference dead
  /// workers or a superseded partition map. ApplyBaseUpdate refuses stale
  /// residents; RunResident refreshes them.
  bool IsStale(int query_id) const;

  /// A direct revision of operator-held base state (an immutable join
  /// side's buckets). Deltas are routed to the primary owner of
  /// PartitionHash(tuple, route_fields) — the same placement the rows had
  /// when the scan loaded them — and applied while the network is
  /// quiescent, exactly like plan installation.
  struct StatePatch {
    int op_id = -1;
    int port = 0;
    std::vector<int> route_fields;
    DeltaVec deltas;
  };

  /// An incremental base-data update against the last converged Run (§3.2's
  /// "refinement of state" driven from the outside): weighted ℤ-set
  /// mutations of base tables, matching patches for operator state
  /// materialized from those tables, and per-fixpoint perturbation Δ seeds
  /// computed by the caller from the converged state.
  struct BaseUpdate {
    /// Table name -> weighted row mutations (kept consistent with
    /// `patches`; recovery reloads operator state from these tables).
    std::map<std::string, std::vector<DistributedTable::WeightedRow>> tables;
    std::vector<StatePatch> patches;
    /// Fixpoint op id -> perturbation Δ set, routed by the fixpoint's own
    /// partition fields and applied against its converged state.
    std::map<int, DeltaVec> seeds;
    /// Optional chaos during re-convergence.
    FaultSchedule faults;
    /// Explicit termination override (defaults to implicit fixpoint
    /// termination) and stratum budget for the re-convergence.
    std::function<bool(int stratum, const VoteStats&)> terminate;
    int max_strata = -1;
  };

  /// Applies `update` and re-converges the still-installed plan from the
  /// stratum after the converged run's last, rather than from scratch: the
  /// seeds' propagations flush as the resumed stratum's Δ set and the loop
  /// runs until quiescent again. Requires a prior successful recursive
  /// Run() on this cluster. Failures during re-convergence recover through
  /// the normal machinery (seeds are checkpointed with the converged
  /// history, so incremental recovery replays them; a restart recovery
  /// recomputes from the already-updated tables). The returned profile's
  /// tuples_sent / total_bytes_sent count only this update's traffic.
  /// Equivalent to ApplyBaseUpdate(0, update).
  Result<QueryRunResult> ApplyBaseUpdate(const BaseUpdate& update);

  /// Per-resident variant: applies `update` against `query_id`'s converged
  /// plan. Refuses poisoned or stale residents with FailedPrecondition
  /// BEFORE mutating any base table. A failure after mutation begins
  /// poisons the resident (tables/operator state may be half-applied) so a
  /// follow-up ApplyBaseUpdate or Run reuse cannot silently compute against
  /// inconsistent state; RunResident clears the poison by re-deriving from
  /// the (already mutated) tables. On success the returned profile's
  /// traffic / coalesce / checkpoint counters cover only this update.
  Result<QueryRunResult> ApplyBaseUpdate(int query_id,
                                         const BaseUpdate& update);

  /// Applies weighted base-table mutations without touching any resident
  /// (the serving layer applies the shared table mutation exactly once per
  /// epoch, then fans per-query patches/seeds out via ApplyBaseUpdate with
  /// empty `tables`).
  Status MutateTables(
      const std::map<std::string,
                     std::vector<DistributedTable::WeightedRow>>& tables);

  /// The driver's bounded event trace (crashes, restores, recovery passes,
  /// stratum starts).
  TraceRing* trace() { return &trace_; }

  /// Brings previously failed workers back (fresh, empty state) so the
  /// same cluster can run further experiments.
  Status ReviveFailedWorkers();

  /// Sum of per-worker metric `name` across all workers.
  int64_t WorkerMetric(const std::string& name) const;

  /// Runtime monitoring (§5.1): the measured cost profile of a table UDF
  /// from its execution counters — per-tuple cost expressed in the cost
  /// model's work units (basic-tuple equivalents under `calib`), and its
  /// observed fanout. NotFound until the UDF has actually run.
  Result<UdfCostProfile> MeasuredUdfProfile(
      const std::string& udf_name, const NodeCalibration& calib) const;

 private:
  /// Everything one resident query owns: its plan spec, termination boards
  /// (query 0 aliases the legacy cluster-lifetime members so existing
  /// accessors keep working), and the incremental resume point captured
  /// after its last converged run.
  struct ResidentQuery {
    PlanSpec spec;
    /// Owned boards for query ids != 0; null for query 0 (legacy members).
    std::unique_ptr<VoteBoard> owned_votes;
    std::unique_ptr<CheckpointStore> owned_checkpoints;
    // -- incremental base-update resume point: -1 = nothing to resume
    // (no converged run, or the last run was non-recursive / failed).
    int resume_stratum = -1;
    const PartitionMap* pmap = nullptr;
    std::vector<int> live;
    /// Set while/after a base update mutates state and fails: the
    /// resident's derived state no longer matches its tables.
    bool poisoned = false;
    std::string poison_reason;
    /// Set when another resident's recovery changed membership while this
    /// one was inactive.
    bool stale = false;
  };

  VoteBoard* VotesFor(ResidentQuery* q) {
    return q->owned_votes != nullptr ? q->owned_votes.get() : &votes_;
  }
  CheckpointStore* CheckpointsFor(ResidentQuery* q) {
    return q->owned_checkpoints != nullptr ? q->owned_checkpoints.get()
                                           : &checkpoints_;
  }
  /// Finds-or-creates the resident slot for `query_id` (boards are created
  /// for non-zero ids).
  ResidentQuery* Resident(int query_id);
  /// Switches the active resident: repoints the driver's board pointers and
  /// every live worker's context. Network must be quiescent.
  void ActivateResident(int query_id);
  /// Marks every resident except `except_query` stale (membership moved
  /// under them).
  void MarkOthersStale(int except_query);

  /// Cumulative-counter snapshot taken before an incremental update so the
  /// returned profile reports only the update's own traffic / coalesce /
  /// checkpoint activity (counters live across the cluster's lifetime).
  struct ProfileBaseline {
    int64_t tuples_sent = 0;
    int64_t deltas_coalesced = 0;
    int64_t coalesce_bytes_saved = 0;
    int64_t batch_rows = 0;
    int64_t batch_fallback_rows = 0;
    int64_t checkpoint_bytes = 0;
    int64_t checkpoint_tuples = 0;
    int64_t recovery_refetch_bytes = 0;
    int64_t checkpoint_repairs = 0;
    int64_t retransmits = 0;
    int64_t ckpt_raw_bytes = 0;
    int64_t ckpt_stored_bytes = 0;
    int64_t run_raw_bytes = 0;
    int64_t run_compressed_bytes = 0;
  };
  ProfileBaseline SnapshotBaseline() const;
  static void SubtractBaseline(const ProfileBaseline& base, QueryProfile* p);

  Result<QueryRunResult> RunInternal(const PlanSpec& spec,
                                     const QueryOptions& options);
  /// The requestor's stratum loop, shared by RunInternal (from stratum 0)
  /// and ApplyBaseUpdate (from the converged run's resume stratum): drives
  /// strata with boundary/mid-stratum fault handling and recovery until
  /// termination. On return `*next_stratum` is the stratum a future
  /// incremental update would resume at.
  Status DriveStrata(const PlanSpec& spec, const QueryOptions& options,
                     RecoveryStrategy strategy, ChaosInjector* injector,
                     bool has_fixpoint, int start_stratum,
                     const PartitionMap** pmap, std::vector<int>* live,
                     QueryRunResult* out, int* next_stratum);
  /// Unions sink results and fixpoint state into `out` (quiescent network).
  void CollectResults(const std::vector<int>& live, QueryRunResult* out);
  /// Fills out->profile from the post-run state (network quiescent).
  void AssembleProfile(const std::vector<int>& live, QueryRunResult* out);
  /// Logs the driver's and every running worker's trace ring (error path).
  void DumpTraces() const;
  Status Broadcast(const ControlMsg& c, const std::vector<int>& targets);
  Status CheckWorkerErrors(const std::vector<int>& live) const;
  /// Simulates a crash: stops the worker thread and closes its inbox,
  /// telling nobody. The driver only learns about it when the failure
  /// detector notices the missing heartbeats (DetectFailures).
  Status InjectBoundaryCrash(int w);
  /// Acts on a death declared by the failure detector: records the failure
  /// in the driver's membership view and joins the dead worker's thread.
  void ConfirmDead(int w);
  /// Runs heartbeat probe rounds (ping broadcast -> quiescence -> detector
  /// tick) until no worker is left in the suspected state; confirms every
  /// death the detector declares. Returns the workers newly declared dead.
  std::vector<int> DetectFailures();
  /// Replaces a failed worker with a fresh node (next incarnation) and
  /// reopens its inbox.
  Status ReviveWorker(int w);
  const PartitionMap* PushPartitionMap(std::vector<int> live);

  /// One full recovery: installs/restores state on the live set, retrying
  /// when the injector fails further workers during recovery itself.
  /// `resume_stratum` is the stratum about to (re-)execute; on return it is
  /// 0 if the strategy (or a checkpoint-less failure) forced a restart.
  /// `revived` lists workers freshly brought back this boundary.
  Status Recover(const PlanSpec& spec, RecoveryStrategy strategy,
                 ChaosInjector* injector, std::vector<int> revived,
                 const PartitionMap** pmap, std::vector<int>* live,
                 int* resume_stratum, QueryRunResult* out);

  /// Guided replay (fresh plans + re-run of checkpointed strata with
  /// fixpoints fed from the store): rebuilds derived state Δ-restoration
  /// alone cannot (persistent group-bys, stateful join handlers). Returns
  /// NodeFailure if a worker dies during the replay (caller retries).
  Status GuidedReplay(const PlanSpec& spec, const PartitionMap* pmap,
                      const std::vector<int>& live, int last_complete);

  /// Post-stratum runtime invariants (chaos harness): exact in-flight
  /// count, checkpoint readability under the current failure set, and
  /// Δ-conservation of every live fixpoint.
  Status CheckRuntimeInvariants(const std::vector<int>& live, int stratum);

  EngineConfig config_;
  std::unique_ptr<Network> network_;
  /// Declared before workers_ so worker threads (which report heartbeats
  /// into the detector via the network's sink) are joined before the
  /// detector is destroyed.
  std::unique_ptr<FailureDetector> detector_;
  StorageCatalog storage_;
  UdfRegistry udfs_;
  VoteBoard votes_;
  CheckpointStore checkpoints_;
  std::vector<std::unique_ptr<WorkerNode>> workers_;
  std::vector<bool> failed_;
  /// Partition snapshots must outlive every worker context that references
  /// them, so superseded maps are retained for the cluster's lifetime.
  std::vector<std::unique_ptr<PartitionMap>> pmap_history_;
  TraceRing trace_{"driver"};
  bool started_ = false;

  // -- multi-query residency ------------------------------------------------
  std::map<int, ResidentQuery> residents_;
  int active_query_ = 0;
  /// Boards of the active resident; every internal driver path
  /// (DriveStrata, Recover, invariants, profile assembly) goes through
  /// these so a resident switch is a pointer swap.
  VoteBoard* active_votes_ = &votes_;
  CheckpointStore* active_checkpoints_ = &checkpoints_;
};

}  // namespace rex

#endif  // REX_CLUSTER_CLUSTER_H_
