// Fixpoint voting (§4.2): at the end of a stratum, every fixpoint operator
// reports the number of tuples it derived to the query requestor, which
// decides whether the implicit (or explicit) termination condition holds.
// In this in-process cluster the "requestor" is the driver thread; votes
// are reported synchronously during message processing, so once the network
// is quiescent all votes for the stratum are in.
//
// The board keeps at most one vote per (fixpoint, stratum, worker): a
// duplicate report (retransmitted punctuation re-triggering a vote)
// overwrites rather than double-counts. Votes carry the reporting worker's
// incarnation; a vote from an incarnation older than the board's view of
// that worker (a late vote from a life that has since been declared dead)
// is ignored.
#ifndef REX_CLUSTER_VOTE_BOARD_H_
#define REX_CLUSTER_VOTE_BOARD_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

namespace rex {

/// Per-fixpoint, per-stratum statistics backing termination decisions.
struct VoteStats {
  int64_t new_tuples = 0;      // Δᵢ set size: tuples derived this stratum
  int64_t changed_tuples = 0;  // tuples whose value changed (for explicit
                               // conditions like "changed by more than 1%")
  double max_change = 0.0;     // largest numeric change observed
  int64_t state_size = 0;      // mutable-set size after this stratum

  VoteStats& Merge(const VoteStats& other) {
    new_tuples += other.new_tuples;
    changed_tuples += other.changed_tuples;
    max_change = std::max(max_change, other.max_change);
    state_size += other.state_size;
    return *this;
  }
};

class VoteBoard {
 public:
  /// Records a vote. A repeated report from the same worker for the same
  /// (fixpoint, stratum) overwrites its previous vote; a report whose
  /// incarnation is older than the board's current incarnation for that
  /// worker is dropped.
  void Report(int worker, int fixpoint_id, int stratum,
              const VoteStats& stats, int incarnation = 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto inc_it = incarnations_.find(worker);
    if (inc_it != incarnations_.end() && incarnation < inc_it->second) {
      return;  // stale vote from a dead incarnation
    }
    votes_[{fixpoint_id, stratum}][worker] = stats;
  }

  /// Declares the minimum incarnation the board accepts votes from for
  /// `worker` (called when a revived worker rejoins under a new life).
  void SetIncarnation(int worker, int incarnation) {
    std::lock_guard<std::mutex> lock(mutex_);
    incarnations_[worker] = incarnation;
  }

  /// Aggregated stats for one fixpoint's stratum.
  VoteStats Total(int fixpoint_id, int stratum) const {
    std::lock_guard<std::mutex> lock(mutex_);
    VoteStats total;
    auto it = votes_.find({fixpoint_id, stratum});
    if (it == votes_.end()) return total;
    for (const auto& [worker, stats] : it->second) total.Merge(stats);
    return total;
  }

  /// Aggregated stats across all fixpoints for a stratum.
  VoteStats TotalForStratum(int stratum) const {
    std::lock_guard<std::mutex> lock(mutex_);
    VoteStats total;
    for (const auto& [key, entries] : votes_) {
      if (key.second != stratum) continue;
      for (const auto& [worker, stats] : entries) total.Merge(stats);
    }
    return total;
  }

  int NumVotes(int fixpoint_id, int stratum) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = votes_.find({fixpoint_id, stratum});
    return it == votes_.end() ? 0 : static_cast<int>(it->second.size());
  }

  /// Aggregated stats for every (fixpoint, stratum) with at least one vote,
  /// in (fixpoint, stratum) order. Profiler snapshot: Fig. 3's per-stratum
  /// Δᵢ series comes straight from these totals.
  std::vector<std::pair<std::pair<int, int>, VoteStats>> SnapshotTotals()
      const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::pair<int, int>, VoteStats>> out;
    out.reserve(votes_.size());
    for (const auto& [key, entries] : votes_) {
      VoteStats total;
      for (const auto& [worker, stats] : entries) total.Merge(stats);
      out.emplace_back(key, total);
    }
    return out;
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    votes_.clear();
  }

  /// Discards all votes for strata >= `stratum`. Used when a mid-stratum
  /// failure aborts a partially executed stratum: survivors may already
  /// have voted for it, and the stratum will be re-executed after recovery.
  void ClearFromStratum(int stratum) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = votes_.begin(); it != votes_.end();) {
      if (it->first.second >= stratum) {
        it = votes_.erase(it);
      } else {
        ++it;
      }
    }
  }

 private:
  mutable std::mutex mutex_;
  // (fixpoint, stratum) -> worker -> stats (one vote per worker).
  std::map<std::pair<int, int>, std::map<int, VoteStats>> votes_;
  // worker -> minimum accepted incarnation.
  std::map<int, int> incarnations_;
};

}  // namespace rex

#endif  // REX_CLUSTER_VOTE_BOARD_H_
