// Heartbeat-based failure detector (the driver's membership oracle).
//
// The driver no longer learns about crashes from the fault injector; it
// probes workers with kPing control messages and listens for kHeartbeat
// replies on the Network's synchronous HeartbeatSink. Detection is counted
// in probe rounds, not wall-clock time, which keeps chaos runs
// deterministic: one round = broadcast pings, wait for quiescence, Tick().
//
// Per-worker state machine:
//
//   kAlive --(suspect_after missed rounds)--> kSuspected
//   kSuspected --(confirm_after more missed rounds)--> kDead
//   kSuspected --(heartbeat arrives)--> kAlive   (suspicion was wrong)
//   kDead --(Revive)--> kAlive                   (new incarnation)
//
// A heartbeat carrying a stale incarnation (from a thread that belonged to
// a previous life of the worker) is ignored.
#ifndef REX_CLUSTER_FAILURE_DETECTOR_H_
#define REX_CLUSTER_FAILURE_DETECTOR_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "net/network.h"

namespace rex {

class FailureDetector : public HeartbeatSink {
 public:
  enum class State { kAlive = 0, kSuspected = 1, kDead = 2 };

  struct Config {
    /// Missed probe rounds before an alive worker becomes suspected.
    int suspect_after = 1;
    /// Further missed rounds before a suspected worker is declared dead.
    int confirm_after = 1;
  };

  FailureDetector(int num_workers, Config config);

  /// HeartbeatSink: called synchronously from worker threads.
  void OnHeartbeat(int worker, int incarnation) override;

  /// Opens a probe round: clears the heard-from set. Call before
  /// broadcasting pings.
  void BeginRound();

  /// Closes a probe round after quiescence: workers that did not answer
  /// accumulate a miss and may transition kAlive -> kSuspected -> kDead.
  /// Returns the workers newly declared dead this round.
  std::vector<int> Tick();

  /// True while any worker sits in kSuspected — the driver keeps probing
  /// until every suspicion resolves to alive or dead.
  bool AnySuspected() const;

  State state(int worker) const;
  bool IsDead(int worker) const { return state(worker) == State::kDead; }

  /// Re-admits a dead worker under a fresh incarnation (node replacement).
  /// Returns the new incarnation number.
  int Revive(int worker);

  int incarnation(int worker) const;

  /// Probe rounds spent between a worker's last heartbeat and its death
  /// declaration, summed over all deaths — the detection latency that
  /// Figure-12-style recovery reports now include.
  int64_t detection_latency_ticks() const;
  int64_t deaths_detected() const;

 private:
  struct PeerState {
    State state = State::kAlive;
    int missed_rounds = 0;
    int incarnation = 0;
    bool heard_this_round = false;
  };

  const Config config_;
  mutable std::mutex mutex_;
  std::vector<PeerState> peers_;
  int64_t detection_latency_ticks_ = 0;
  int64_t deaths_detected_ = 0;
};

}  // namespace rex

#endif  // REX_CLUSTER_FAILURE_DETECTOR_H_
