// Consistent-hash data partitioning with replication (§4.1).
//
// Keys map to points on a 64-bit hash ring populated with virtual nodes;
// a key's owners are the first `replication` distinct workers encountered
// clockwise from the key's point. Every query carries an immutable snapshot
// of this map, so data is routed identically on every node even as the
// cluster changes; recovery builds a new map over the surviving workers and
// — by the adjacency property of consistent hashing — the new primary for a
// failed range is one of its previous replicas.
#ifndef REX_CLUSTER_PARTITION_MAP_H_
#define REX_CLUSTER_PARTITION_MAP_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace rex {

class PartitionMap {
 public:
  PartitionMap() = default;

  /// Builds a ring over `workers` with `vnodes_per_worker` virtual nodes
  /// each. `replication` is the total number of copies (primary included).
  PartitionMap(std::vector<int> workers, int replication,
               int vnodes_per_worker = 16);

  /// The worker that owns (is primary for) the key hash.
  int PrimaryOwner(uint64_t key_hash) const;
  int PrimaryOwnerOf(const Value& key) const {
    return PrimaryOwner(key.Hash());
  }

  /// Primary followed by replicas: `replication` distinct workers (fewer if
  /// the cluster is smaller than the replication factor).
  std::vector<int> Owners(uint64_t key_hash) const;
  std::vector<int> OwnersOf(const Value& key) const {
    return Owners(key.Hash());
  }

  bool IsOwner(int worker, uint64_t key_hash) const;

  const std::vector<int>& workers() const { return workers_; }
  int num_workers() const { return static_cast<int>(workers_.size()); }
  int replication() const { return replication_; }

  /// A new map over the surviving workers, same ring geometry for the
  /// survivors (their virtual nodes do not move, so only the failed
  /// worker's ranges are reassigned).
  PartitionMap WithoutWorker(int failed) const;

 private:
  struct VNode {
    uint64_t point;
    int worker;
    bool operator<(const VNode& other) const { return point < other.point; }
  };

  /// Index into ring_ of the first vnode at or after the hash (wrapping).
  size_t RingStart(uint64_t key_hash) const;

  std::vector<int> workers_;
  int replication_ = 1;
  int vnodes_per_worker_ = 16;
  std::vector<VNode> ring_;
};

}  // namespace rex

#endif  // REX_CLUSTER_PARTITION_MAP_H_
