// Spill-to-disk buffering (§4: "the ability to spill overflow state to
// local disks as necessary").
//
// A SpillableTupleBuffer keeps tuples in memory up to a budget, then writes
// serialized runs to a temporary file. Scanning replays memory-resident
// tuples followed by spilled runs. Used by operator state under a low
// memory budget and by the mini-MapReduce shuffle's external sort.
#ifndef REX_STORAGE_SPILL_H_
#define REX_STORAGE_SPILL_H_

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/tuple.h"

namespace rex {

class SpillableTupleBuffer {
 public:
  /// `memory_budget_bytes`: in-memory footprint before spilling begins.
  /// 0 means spill every batch (for tests). `metrics` may be null.
  explicit SpillableTupleBuffer(size_t memory_budget_bytes = 64 << 20,
                                MetricsRegistry* metrics = nullptr);
  ~SpillableTupleBuffer();

  SpillableTupleBuffer(const SpillableTupleBuffer&) = delete;
  SpillableTupleBuffer& operator=(const SpillableTupleBuffer&) = delete;

  Status Append(Tuple t);

  size_t num_tuples() const { return num_tuples_; }
  bool spilled() const { return file_ != nullptr; }
  int64_t spilled_bytes() const { return spilled_bytes_; }

  /// Invokes `fn` for every buffered tuple: spilled runs first (in append
  /// order), then memory-resident tuples.
  Status ForEach(const std::function<Status(const Tuple&)>& fn) const;

  /// Collects everything into one vector (test/small-data convenience).
  Result<std::vector<Tuple>> ToVector() const;

  /// Drops all contents (memory and disk) and resets.
  void Clear();

 private:
  Status SpillMemoryRun();

  size_t memory_budget_;
  MetricsRegistry* metrics_;
  std::vector<Tuple> memory_;
  size_t memory_bytes_ = 0;
  size_t num_tuples_ = 0;

  std::FILE* file_ = nullptr;  // anonymous tmpfile; deleted on close
  int64_t spilled_bytes_ = 0;
  std::vector<std::pair<long, size_t>> runs_;  // (offset, byte length)
};

}  // namespace rex

#endif  // REX_STORAGE_SPILL_H_
