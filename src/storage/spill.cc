#include "storage/spill.h"

#include "common/serde.h"

namespace rex {

SpillableTupleBuffer::SpillableTupleBuffer(size_t memory_budget_bytes,
                                           MetricsRegistry* metrics)
    : memory_budget_(memory_budget_bytes), metrics_(metrics) {}

SpillableTupleBuffer::~SpillableTupleBuffer() {
  if (file_ != nullptr) std::fclose(file_);
}

Status SpillableTupleBuffer::Append(Tuple t) {
  memory_bytes_ += t.ByteSize();
  memory_.push_back(std::move(t));
  ++num_tuples_;
  if (memory_bytes_ > memory_budget_) {
    REX_RETURN_NOT_OK(SpillMemoryRun());
  }
  return Status::OK();
}

Status SpillableTupleBuffer::SpillMemoryRun() {
  if (memory_.empty()) return Status::OK();
  if (file_ == nullptr) {
    file_ = std::tmpfile();
    if (file_ == nullptr) {
      return Status::IoError("tmpfile() failed for spill buffer");
    }
  }
  std::string bytes = SerializeTuples(memory_);
  if (std::fseek(file_, 0, SEEK_END) != 0) {
    return Status::IoError("fseek failed on spill file");
  }
  long offset = std::ftell(file_);
  if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
    return Status::IoError("short write to spill file");
  }
  runs_.emplace_back(offset, bytes.size());
  spilled_bytes_ += static_cast<int64_t>(bytes.size());
  if (metrics_ != nullptr) {
    metrics_->GetCounter(metrics::kSpillBytes)
        ->Add(static_cast<int64_t>(bytes.size()));
  }
  memory_.clear();
  memory_bytes_ = 0;
  return Status::OK();
}

Status SpillableTupleBuffer::ForEach(
    const std::function<Status(const Tuple&)>& fn) const {
  for (const auto& [offset, length] : runs_) {
    if (std::fseek(file_, offset, SEEK_SET) != 0) {
      return Status::IoError("fseek failed reading spill run");
    }
    std::string bytes(length, '\0');
    if (std::fread(bytes.data(), 1, length, file_) != length) {
      return Status::IoError("short read from spill file");
    }
    REX_ASSIGN_OR_RETURN(std::vector<Tuple> tuples,
                         DeserializeTuples(bytes));
    for (const Tuple& t : tuples) REX_RETURN_NOT_OK(fn(t));
  }
  for (const Tuple& t : memory_) REX_RETURN_NOT_OK(fn(t));
  return Status::OK();
}

Result<std::vector<Tuple>> SpillableTupleBuffer::ToVector() const {
  std::vector<Tuple> out;
  out.reserve(num_tuples_);
  REX_RETURN_NOT_OK(ForEach([&out](const Tuple& t) {
    out.push_back(t);
    return Status::OK();
  }));
  return out;
}

void SpillableTupleBuffer::Clear() {
  memory_.clear();
  memory_bytes_ = 0;
  num_tuples_ = 0;
  runs_.clear();
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  spilled_bytes_ = 0;
}

}  // namespace rex
