#include "storage/table.h"

#include <algorithm>

namespace rex {

void DistributedTable::AppendRows(std::vector<Tuple> rows) {
  rows_.reserve(rows_.size() + rows.size());
  for (Tuple& t : rows) rows_.push_back(std::move(t));
}

Result<int64_t> DistributedTable::ApplyWeighted(
    const std::vector<WeightedRow>& updates) {
  for (const WeightedRow& u : updates) {
    if (u.weight == INT64_MIN) {
      return Status::InvalidArgument(
          "table '" + name_ + "': row weight INT64_MIN is not negatable: " +
          u.row.ToString());
    }
  }
  int64_t net = 0;
  for (const WeightedRow& u : updates) {
    if (u.weight > 0) {
      for (int64_t i = 0; i < u.weight; ++i) rows_.push_back(u.row);
      if (__builtin_add_overflow(net, u.weight, &net)) {
        return Status::InvalidArgument(
            "table '" + name_ +
            "': net row-count change leaves int64 range");
      }
    } else if (u.weight < 0) {
      for (int64_t i = 0; i > u.weight; --i) {
        auto it = std::find(rows_.begin(), rows_.end(), u.row);
        if (it == rows_.end()) break;
        rows_.erase(it);
        --net;
      }
    }
  }
  return net;
}

std::vector<Tuple> DistributedTable::PrimaryRows(
    int worker, const PartitionMap& pmap) const {
  std::vector<Tuple> out;
  for (const Tuple& t : rows_) {
    if (pmap.PrimaryOwner(KeyHash(t)) == worker) out.push_back(t);
  }
  return out;
}

Result<std::vector<Tuple>> DistributedTable::TakeoverRows(
    int worker, const PartitionMap& old_pmap, const PartitionMap& new_pmap,
    const std::vector<int>* live_sources) const {
  std::vector<Tuple> out;
  for (const Tuple& t : rows_) {
    uint64_t h = KeyHash(t);
    if (new_pmap.PrimaryOwner(h) != worker) continue;
    if (old_pmap.PrimaryOwner(h) == worker) continue;  // already had it
    bool fetchable = old_pmap.IsOwner(worker, h);
    if (!fetchable && live_sources != nullptr) {
      for (int src : *live_sources) {
        if (src != worker && old_pmap.IsOwner(src, h)) {
          fetchable = true;
          break;
        }
      }
    }
    if (!fetchable) {
      return Status::NodeFailure(
          "worker " + std::to_string(worker) +
          " has no replica of a row it must take over in table " + name_ +
          "; replication factor too low for this failure");
    }
    out.push_back(t);
  }
  return out;
}

Status StorageCatalog::AddTable(std::shared_ptr<DistributedTable> table) {
  auto [it, inserted] = tables_.emplace(table->name(), table);
  if (!inserted) {
    return Status::AlreadyExists("table '" + table->name() + "' exists");
  }
  return Status::OK();
}

Result<std::shared_ptr<DistributedTable>> StorageCatalog::GetTable(
    const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return it->second;
}

bool StorageCatalog::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

std::vector<std::string> StorageCatalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

}  // namespace rex
