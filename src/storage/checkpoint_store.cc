#include "storage/checkpoint_store.h"

#include <algorithm>

#include "common/hash.h"
#include "common/serde.h"

namespace rex {

namespace {

uint64_t Checksum(const std::string& bytes) {
  return HashBytes(bytes.data(), bytes.size());
}

bool CopyValid(const std::string& bytes, uint64_t checksum) {
  return Checksum(bytes) == checksum;
}

}  // namespace

Status CheckpointStore::ValidateIds(const char* op, int fixpoint_id,
                                    int stratum, int worker) const {
  if (fixpoint_id < 0 || stratum < 0 || worker < 0 ||
      (num_workers_ >= 0 && worker >= num_workers_)) {
    return Status::InvalidArgument(
        std::string("checkpoint ") + op + ": invalid ids (fixpoint_id=" +
        std::to_string(fixpoint_id) + ", stratum=" + std::to_string(stratum) +
        ", worker=" + std::to_string(worker) + ", num_workers=" +
        std::to_string(num_workers_) + ")");
  }
  return Status::OK();
}

Status CheckpointStore::Put(int fixpoint_id, int stratum, int owner,
                            const std::vector<int>& replicas,
                            const std::vector<Tuple>& delta_set,
                            bool append) {
  REX_RETURN_NOT_OK(ValidateIds("put", fixpoint_id, stratum, owner));
  for (int r : replicas) {
    REX_RETURN_NOT_OK(ValidateIds("put(replica)", fixpoint_id, stratum, r));
  }
  std::string bytes = SerializeTuples(delta_set);
  const uint64_t checksum = Checksum(bytes);
  std::lock_guard<std::mutex> lock(mutex_);
  metrics_.GetCounter(metrics::kCheckpointBytes)
      ->Add(static_cast<int64_t>(bytes.size()) *
            static_cast<int64_t>(std::max<size_t>(replicas.size(), 1)));
  metrics_.GetCounter(metrics::kCheckpointTuples)
      ->Add(static_cast<int64_t>(delta_set.size()));
  auto install_copies = [&](Entry& e) {
    e.copies.clear();
    e.copies[e.owner] = Copy{bytes, checksum};
    for (int r : e.replicas) e.copies[r] = Copy{bytes, checksum};
  };
  auto& slot = entries_[{fixpoint_id, stratum}];
  // A worker checkpoints one entry per replica-group of its Δ set; a
  // re-executed stratum overwrites its group rather than duplicating it.
  // Appending mode skips the dedupe: the new entry extends the stratum's
  // replay history in order (base-update seeds).
  if (!append) {
    for (Entry& e : slot) {
      if (e.owner == owner && e.replicas == replicas) {
        install_copies(e);
        return Status::OK();
      }
    }
  }
  slot.push_back(Entry{owner, replicas, {}});
  install_copies(slot.back());
  return Status::OK();
}

Result<std::vector<Tuple>> CheckpointStore::Read(int fixpoint_id, int stratum,
                                                 int reader) {
  REX_RETURN_NOT_OK(ValidateIds("read", fixpoint_id, stratum, reader));
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Tuple> out;
  auto it = entries_.find({fixpoint_id, stratum});
  if (it == entries_.end()) return out;
  for (Entry& e : it->second) {
    auto cit = e.copies.find(reader);
    if (cit == e.copies.end()) continue;
    Copy& mine = cit->second;
    if (!CopyValid(mine.bytes, mine.checksum)) {
      // Integrity failure: repair from the first checksum-valid copy held
      // by anyone (deterministic holder order).
      const Copy* good = nullptr;
      for (const auto& [holder, copy] : e.copies) {
        if (CopyValid(copy.bytes, copy.checksum)) {
          good = &copy;
          break;
        }
      }
      if (good == nullptr) {
        return Status::DataLoss(
            "all " + std::to_string(e.copies.size()) +
            " copies of checkpoint entry (fixpoint " +
            std::to_string(fixpoint_id) + ", stratum " +
            std::to_string(stratum) + ", writer " + std::to_string(e.owner) +
            ") failed their integrity check");
      }
      metrics_.GetCounter(metrics::kCheckpointRepairs)->Increment();
      metrics_.GetCounter(metrics::kRecoveryRefetchBytes)
          ->Add(static_cast<int64_t>(good->bytes.size()));
      mine = *good;
    }
    REX_ASSIGN_OR_RETURN(std::vector<Tuple> tuples,
                         DeserializeTuples(mine.bytes));
    for (Tuple& t : tuples) out.push_back(std::move(t));
  }
  return out;
}

int CheckpointStore::LastCompleteStratum(int fixpoint_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  int last = -1;
  for (const auto& [key, slot] : entries_) {
    if (key.first != fixpoint_id) continue;
    if (!slot.empty()) last = std::max(last, key.second);
  }
  return last;
}

void CheckpointStore::TruncateAfter(int stratum) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.second > stratum) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

Status CheckpointStore::GrantRecoveryAccess(
    const std::vector<int>& live, const std::vector<int>& takeover_readers,
    int replication) {
  auto is_live = [&live](int w) {
    return std::find(live.begin(), live.end(), w) != live.end();
  };
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t refetch_bytes = 0;
  int64_t repairs = 0;
  for (auto& [key, slot] : entries_) {
    for (Entry& e : slot) {
      int live_copies = is_live(e.owner) ? 1 : 0;
      for (int r : e.replicas) {
        if (r != e.owner && is_live(r)) ++live_copies;
      }
      if (live_copies == 0) {
        return Status::NodeFailure(
            "checkpoint lost: fixpoint " + std::to_string(key.first) +
            " stratum " + std::to_string(key.second) + " entry of worker " +
            std::to_string(e.owner) + " has no live copy");
      }
      // Re-replication needs a trustworthy source: the first checksum-valid
      // copy on a live holder (deterministic holder order). Repair invalid
      // live copies from it while we are here.
      const Copy* good = nullptr;
      for (const auto& [holder, copy] : e.copies) {
        if (is_live(holder) && CopyValid(copy.bytes, copy.checksum)) {
          good = &copy;
          break;
        }
      }
      if (good == nullptr) {
        return Status::DataLoss(
            "all live copies of checkpoint entry (fixpoint " +
            std::to_string(key.first) + ", stratum " +
            std::to_string(key.second) + ", writer " +
            std::to_string(e.owner) + ") failed their integrity check");
      }
      const Copy source = *good;  // e.copies mutates below
      for (auto& [holder, copy] : e.copies) {
        if (is_live(holder) && !CopyValid(copy.bytes, copy.checksum)) {
          copy = source;
          ++repairs;
          refetch_bytes += static_cast<int64_t>(source.bytes.size());
        }
      }
      auto holds = [&e](int w) {
        return w == e.owner ||
               std::find(e.replicas.begin(), e.replicas.end(), w) !=
                   e.replicas.end();
      };
      // Takeover readers must be able to read what they inherit, whatever
      // the old replica choice was.
      for (int w : takeover_readers) {
        if (is_live(w) && !holds(w)) {
          e.replicas.push_back(w);
          e.copies[w] = source;
          refetch_bytes += static_cast<int64_t>(source.bytes.size());
        }
      }
      // Top the copy count back up to the replication factor.
      for (int w : live) {
        int copies = is_live(e.owner) ? 1 : 0;
        for (int r : e.replicas) {
          if (r != e.owner && is_live(r)) ++copies;
        }
        if (copies >= replication) break;
        if (!holds(w)) {
          e.replicas.push_back(w);
          e.copies[w] = source;
          refetch_bytes += static_cast<int64_t>(source.bytes.size());
        }
      }
    }
  }
  if (refetch_bytes > 0) {
    metrics_.GetCounter(metrics::kRecoveryRefetchBytes)->Add(refetch_bytes);
  }
  if (repairs > 0) {
    metrics_.GetCounter(metrics::kCheckpointRepairs)->Add(repairs);
  }
  return Status::OK();
}

int CheckpointStore::CorruptCopies(int holder, int max_entries) {
  std::lock_guard<std::mutex> lock(mutex_);
  int corrupted = 0;
  for (auto& [key, slot] : entries_) {
    for (Entry& e : slot) {
      if (corrupted >= max_entries) return corrupted;
      bool hit = false;
      for (auto& [w, copy] : e.copies) {
        if (holder != -1 && w != holder) continue;
        if (copy.bytes.empty()) {
          copy.bytes.push_back('\x5a');  // even an empty payload can rot
        } else {
          copy.bytes[copy.bytes.size() / 2] =
              static_cast<char>(copy.bytes[copy.bytes.size() / 2] ^ 0x5a);
        }
        hit = true;
      }
      if (hit) ++corrupted;
    }
  }
  return corrupted;
}

Status CheckpointStore::VerifyReadable(const std::vector<int>& live,
                                       int min_copies) const {
  auto is_live = [&live](int w) {
    return std::find(live.begin(), live.end(), w) != live.end();
  };
  const int needed =
      std::min<int>(min_copies, static_cast<int>(live.size()));
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, slot] : entries_) {
    for (const Entry& e : slot) {
      int live_copies = is_live(e.owner) ? 1 : 0;
      for (int r : e.replicas) {
        if (r != e.owner && is_live(r)) ++live_copies;
      }
      if (live_copies < needed) {
        return Status::Internal(
            "checkpoint replication invariant violated: fixpoint " +
            std::to_string(key.first) + " stratum " +
            std::to_string(key.second) + " entry of worker " +
            std::to_string(e.owner) + " readable from " +
            std::to_string(live_copies) + " live nodes, need " +
            std::to_string(needed));
      }
    }
  }
  return Status::OK();
}

void CheckpointStore::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

int64_t CheckpointStore::total_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t total = 0;
  for (const auto& [key, slot] : entries_) {
    for (const Entry& e : slot) {
      // Logical payload size, counted once per entry (copies are replicas
      // of the same bytes).
      if (!e.copies.empty()) {
        total += static_cast<int64_t>(e.copies.begin()->second.bytes.size());
      }
    }
  }
  return total;
}

int64_t CheckpointStore::total_entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t total = 0;
  for (const auto& [key, slot] : entries_) {
    total += static_cast<int64_t>(slot.size());
  }
  return total;
}

}  // namespace rex
