#include "storage/checkpoint_store.h"

#include <algorithm>

#include "common/serde.h"

namespace rex {

void CheckpointStore::Put(int fixpoint_id, int stratum, int owner,
                          const std::vector<int>& replicas,
                          const std::vector<Tuple>& delta_set) {
  std::string bytes = SerializeTuples(delta_set);
  std::lock_guard<std::mutex> lock(mutex_);
  metrics_.GetCounter(metrics::kCheckpointBytes)
      ->Add(static_cast<int64_t>(bytes.size()) *
            static_cast<int64_t>(std::max<size_t>(replicas.size(), 1)));
  metrics_.GetCounter(metrics::kCheckpointTuples)
      ->Add(static_cast<int64_t>(delta_set.size()));
  auto& slot = entries_[{fixpoint_id, stratum}];
  // A worker checkpoints one entry per replica-group of its Δ set; a
  // re-executed stratum overwrites its group rather than duplicating it.
  for (Entry& e : slot) {
    if (e.owner == owner && e.replicas == replicas) {
      e.bytes = std::move(bytes);
      return;
    }
  }
  slot.push_back(Entry{owner, replicas, std::move(bytes)});
}

Result<std::vector<Tuple>> CheckpointStore::Read(int fixpoint_id, int stratum,
                                                 int reader) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Tuple> out;
  auto it = entries_.find({fixpoint_id, stratum});
  if (it == entries_.end()) return out;
  for (const Entry& e : it->second) {
    const bool accessible =
        e.owner == reader ||
        std::find(e.replicas.begin(), e.replicas.end(), reader) !=
            e.replicas.end();
    if (!accessible) continue;
    REX_ASSIGN_OR_RETURN(std::vector<Tuple> tuples,
                         DeserializeTuples(e.bytes));
    for (Tuple& t : tuples) out.push_back(std::move(t));
  }
  return out;
}

int CheckpointStore::LastCompleteStratum(int fixpoint_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  int last = -1;
  for (const auto& [key, slot] : entries_) {
    if (key.first != fixpoint_id) continue;
    if (!slot.empty()) last = std::max(last, key.second);
  }
  return last;
}

void CheckpointStore::TruncateAfter(int stratum) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.second > stratum) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

Status CheckpointStore::GrantRecoveryAccess(
    const std::vector<int>& live, const std::vector<int>& takeover_readers,
    int replication) {
  auto is_live = [&live](int w) {
    return std::find(live.begin(), live.end(), w) != live.end();
  };
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t refetch_bytes = 0;
  for (auto& [key, slot] : entries_) {
    for (Entry& e : slot) {
      int live_copies = is_live(e.owner) ? 1 : 0;
      for (int r : e.replicas) {
        if (r != e.owner && is_live(r)) ++live_copies;
      }
      if (live_copies == 0) {
        return Status::NodeFailure(
            "checkpoint lost: fixpoint " + std::to_string(key.first) +
            " stratum " + std::to_string(key.second) + " entry of worker " +
            std::to_string(e.owner) + " has no live copy");
      }
      auto holds = [&e](int w) {
        return w == e.owner ||
               std::find(e.replicas.begin(), e.replicas.end(), w) !=
                   e.replicas.end();
      };
      // Takeover readers must be able to read what they inherit, whatever
      // the old replica choice was.
      for (int w : takeover_readers) {
        if (is_live(w) && !holds(w)) {
          e.replicas.push_back(w);
          refetch_bytes += static_cast<int64_t>(e.bytes.size());
        }
      }
      // Top the copy count back up to the replication factor.
      for (int w : live) {
        int copies = is_live(e.owner) ? 1 : 0;
        for (int r : e.replicas) {
          if (r != e.owner && is_live(r)) ++copies;
        }
        if (copies >= replication) break;
        if (!holds(w)) {
          e.replicas.push_back(w);
          refetch_bytes += static_cast<int64_t>(e.bytes.size());
        }
      }
    }
  }
  if (refetch_bytes > 0) {
    metrics_.GetCounter(metrics::kRecoveryRefetchBytes)->Add(refetch_bytes);
  }
  return Status::OK();
}

Status CheckpointStore::VerifyReadable(const std::vector<int>& live,
                                       int min_copies) const {
  auto is_live = [&live](int w) {
    return std::find(live.begin(), live.end(), w) != live.end();
  };
  const int needed =
      std::min<int>(min_copies, static_cast<int>(live.size()));
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, slot] : entries_) {
    for (const Entry& e : slot) {
      int live_copies = is_live(e.owner) ? 1 : 0;
      for (int r : e.replicas) {
        if (r != e.owner && is_live(r)) ++live_copies;
      }
      if (live_copies < needed) {
        return Status::Internal(
            "checkpoint replication invariant violated: fixpoint " +
            std::to_string(key.first) + " stratum " +
            std::to_string(key.second) + " entry of worker " +
            std::to_string(e.owner) + " readable from " +
            std::to_string(live_copies) + " live nodes, need " +
            std::to_string(needed));
      }
    }
  }
  return Status::OK();
}

void CheckpointStore::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

int64_t CheckpointStore::total_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t total = 0;
  for (const auto& [key, slot] : entries_) {
    for (const Entry& e : slot) {
      total += static_cast<int64_t>(e.bytes.size());
    }
  }
  return total;
}

int64_t CheckpointStore::total_entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t total = 0;
  for (const auto& [key, slot] : entries_) {
    total += static_cast<int64_t>(slot.size());
  }
  return total;
}

}  // namespace rex
