#include "storage/checkpoint_store.h"

#include <algorithm>

#include "common/delta_codec.h"
#include "common/hash.h"
#include "common/serde.h"

namespace rex {

namespace {

uint64_t Checksum(const std::string& bytes) {
  return HashBytes(bytes.data(), bytes.size());
}

bool CopyValid(const std::string& bytes, uint64_t checksum) {
  return Checksum(bytes) == checksum;
}

/// Payloads below this never delta-encode: codec framing would eat any
/// win, and empty stratum-complete markers dominate this size class.
constexpr size_t kMinDiffBytes = 64;

}  // namespace

Status CheckpointStore::ValidateIds(const char* op, int fixpoint_id,
                                    int stratum, int worker) const {
  if (fixpoint_id < 0 || stratum < 0 || worker < 0 ||
      (options_.num_workers >= 0 && worker >= options_.num_workers)) {
    return Status::InvalidArgument(
        std::string("checkpoint ") + op + ": invalid ids (fixpoint_id=" +
        std::to_string(fixpoint_id) + ", stratum=" + std::to_string(stratum) +
        ", worker=" + std::to_string(worker) + ", num_workers=" +
        std::to_string(options_.num_workers) + ")");
  }
  return Status::OK();
}

const CheckpointStore::Entry* CheckpointStore::FindPredecessor(
    int fixpoint_id, int stratum, int owner,
    const std::vector<int>& replicas, int64_t exclude_epoch) const {
  for (int s = stratum; s >= 0; --s) {
    auto it = entries_.find({fixpoint_id, s});
    if (it == entries_.end()) continue;
    const std::vector<Entry>& slot = it->second;
    for (auto rit = slot.rbegin(); rit != slot.rend(); ++rit) {
      if (rit->owner == owner && rit->replicas == replicas &&
          rit->epoch_id != exclude_epoch) {
        return &*rit;
      }
    }
  }
  return nullptr;
}

const CheckpointStore::Copy* CheckpointStore::FindValidCopy(const Entry& e) {
  for (const auto& [holder, copy] : e.copies) {
    if (CopyValid(copy.bytes, copy.checksum)) return &copy;
  }
  return nullptr;
}

Result<std::string> CheckpointStore::ReconstructRaw(const Entry& e) const {
  // Walk the reference chain down to the keyframe. Depth is bounded by the
  // keyframe knob; the extra slack guards against metadata corruption.
  std::vector<const Entry*> chain;  // [target, ..., keyframe]
  const Entry* cur = &e;
  const int max_hops = std::max(options_.keyframe_every, 1) + 2;
  while (true) {
    chain.push_back(cur);
    if (cur->ref_epoch_id < 0) break;
    if (static_cast<int>(chain.size()) > max_hops) {
      return Status::DataLoss(
          "checkpoint chain of writer " + std::to_string(e.owner) +
          " exceeds keyframe bound (corrupt chain metadata)");
    }
    auto it = epoch_index_.find(cur->ref_epoch_id);
    if (it == epoch_index_.end()) {
      return Status::DataLoss(
          "checkpoint chain reference epoch " +
          std::to_string(cur->ref_epoch_id) + " of writer " +
          std::to_string(e.owner) + " no longer exists");
    }
    const auto& [key, index] = it->second;
    auto sit = entries_.find(key);
    if (sit == entries_.end() || index >= sit->second.size() ||
        sit->second[index].epoch_id != cur->ref_epoch_id) {
      return Status::DataLoss("checkpoint chain index is stale for epoch " +
                              std::to_string(cur->ref_epoch_id));
    }
    cur = &sit->second[index];
  }
  // Decode keyframe-up, in place, verifying every step: stored checksums
  // catch corrupt copies (any valid replica will do — entry-level access
  // control applies to the entry being read, handled by the caller), raw
  // checksums catch a reconstruction that drifted from what was written.
  auto hop_bytes = [](const Entry& hop) -> Result<const Copy*> {
    const Copy* good = FindValidCopy(hop);
    if (good == nullptr) {
      return Status::DataLoss(
          "all " + std::to_string(hop.copies.size()) +
          " copies of chained checkpoint epoch " +
          std::to_string(hop.epoch_id) + " failed their integrity check");
    }
    return good;
  };
  const Entry* keyframe = chain.back();
  REX_ASSIGN_OR_RETURN(const Copy* base, hop_bytes(*keyframe));
  std::string raw = base->bytes;
  if (Checksum(raw) != keyframe->raw_checksum) {
    return Status::DataLoss("checkpoint keyframe epoch " +
                            std::to_string(keyframe->epoch_id) +
                            " failed its raw integrity check");
  }
  for (size_t i = chain.size() - 1; i-- > 0;) {
    const Entry* hop = chain[i];
    REX_ASSIGN_OR_RETURN(const Copy* delta, hop_bytes(*hop));
    Status st = DeltaCodecDecodeInPlace(&raw, delta->bytes, hop->raw_size);
    if (!st.ok()) {
      return Status::DataLoss("checkpoint epoch " +
                              std::to_string(hop->epoch_id) +
                              " failed to reconstruct: " + st.ToString());
    }
    if (raw.size() != hop->raw_size ||
        Checksum(raw) != hop->raw_checksum) {
      return Status::DataLoss("checkpoint epoch " +
                              std::to_string(hop->epoch_id) +
                              " reconstructed to wrong bytes");
    }
  }
  return raw;
}

Status CheckpointStore::Put(int fixpoint_id, int stratum, int owner,
                            const std::vector<int>& replicas,
                            const std::vector<Tuple>& delta_set,
                            bool append) {
  REX_RETURN_NOT_OK(ValidateIds("put", fixpoint_id, stratum, owner));
  for (int r : replicas) {
    REX_RETURN_NOT_OK(ValidateIds("put(replica)", fixpoint_id, stratum, r));
  }
  std::string raw = SerializeTuples(delta_set);
  const uint64_t raw_checksum = Checksum(raw);
  std::lock_guard<std::mutex> lock(mutex_);
  const int64_t copies_factor =
      static_cast<int64_t>(std::max<size_t>(replicas.size(), 1));
  metrics_.GetCounter(metrics::kCheckpointBytes)
      ->Add(static_cast<int64_t>(raw.size()) * copies_factor);
  metrics_.GetCounter(metrics::kCheckpointTuples)
      ->Add(static_cast<int64_t>(delta_set.size()));
  metrics_.GetCounter(metrics::kCheckpointRawBytes)
      ->Add(static_cast<int64_t>(raw.size()) * copies_factor);

  auto& slot = entries_[{fixpoint_id, stratum}];
  // A worker checkpoints one entry per replica-group of its Δ set; a
  // re-executed stratum overwrites its group rather than duplicating it.
  // Appending mode skips the dedupe: the new entry extends the stratum's
  // replay history in order (base-update seeds).
  Entry* entry = nullptr;
  bool overwrite = false;
  if (!append) {
    for (Entry& e : slot) {
      if (e.owner == owner && e.replicas == replicas) {
        entry = &e;
        overwrite = true;
        break;
      }
    }
  }
  if (entry == nullptr) {
    slot.push_back(Entry{owner, replicas, {}, 0, -1, 0, 0, 0});
    entry = &slot.back();
    epoch_index_[next_epoch_id_] = {Key{fixpoint_id, stratum},
                                    slot.size() - 1};
  } else {
    // The overwritten epoch is gone; any (stale) chain that referenced it
    // must fail loudly on read rather than decode against the new bytes.
    epoch_index_.erase(entry->epoch_id);
    epoch_index_[next_epoch_id_] = {
        Key{fixpoint_id, stratum},
        static_cast<size_t>(entry - slot.data())};
  }
  entry->epoch_id = next_epoch_id_++;
  entry->raw_checksum = raw_checksum;
  entry->raw_size = raw.size();
  entry->ref_epoch_id = -1;
  entry->chain_depth = 0;

  // Differential storage: encode against the chain predecessor when the
  // chain has room before its next keyframe and the delta actually wins
  // bytes. Overwrites always keyframe — their old epoch vanished, and a
  // re-executed stratum must not chain onto bytes later reads can't trust.
  std::string stored = raw;
  const ChainKey chain_key{fixpoint_id, owner, replicas};
  if (options_.diff_payloads && options_.keyframe_every > 1 && !overwrite &&
      raw.size() >= kMinDiffBytes) {
    const Entry* pred = FindPredecessor(fixpoint_id, stratum, owner,
                                        replicas, entry->epoch_id);
    if (pred != nullptr &&
        pred->chain_depth + 1 < options_.keyframe_every) {
      const std::string* pred_raw = nullptr;
      std::string reconstructed;
      auto cit = tail_cache_.find(chain_key);
      if (cit != tail_cache_.end() && cit->second.first == pred->epoch_id) {
        pred_raw = &cit->second.second;
      } else {
        // Cache miss (e.g. fresh store after recovery): rebuild the
        // predecessor; if its chain is unreadable, fall back to a keyframe
        // rather than failing the write path.
        Result<std::string> r = ReconstructRaw(*pred);
        if (r.ok()) {
          reconstructed = std::move(*r);
          pred_raw = &reconstructed;
        }
      }
      if (pred_raw != nullptr) {
        std::string encoded = DeltaCodecEncode(*pred_raw, raw);
        if (encoded.size() < raw.size()) {  // profitability gate
          stored = std::move(encoded);
          entry->ref_epoch_id = pred->epoch_id;
          entry->chain_depth = pred->chain_depth + 1;
        }
      }
    }
  }
  metrics_.GetCounter(metrics::kCheckpointStoredBytes)
      ->Add(static_cast<int64_t>(stored.size()) * copies_factor);

  const uint64_t stored_checksum = Checksum(stored);
  entry->copies.clear();
  entry->copies[owner] = Copy{stored, stored_checksum};
  for (int r : replicas) entry->copies[r] = Copy{stored, stored_checksum};
  tail_cache_[chain_key] = {entry->epoch_id, std::move(raw)};
  return Status::OK();
}

Result<std::vector<Tuple>> CheckpointStore::Read(int fixpoint_id, int stratum,
                                                 int reader) {
  REX_RETURN_NOT_OK(ValidateIds("read", fixpoint_id, stratum, reader));
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Tuple> out;
  auto it = entries_.find({fixpoint_id, stratum});
  if (it == entries_.end()) return out;
  for (Entry& e : it->second) {
    auto cit = e.copies.find(reader);
    if (cit == e.copies.end()) continue;
    Copy& mine = cit->second;
    if (!CopyValid(mine.bytes, mine.checksum)) {
      // Integrity failure: repair from the first checksum-valid copy held
      // by anyone (deterministic holder order). Repair moves stored bytes
      // — for a chained entry that is the compressed delta, which is the
      // point: replicas re-sync without shipping the reconstructed state.
      const Copy* good = FindValidCopy(e);
      if (good == nullptr) {
        return Status::DataLoss(
            "all " + std::to_string(e.copies.size()) +
            " copies of checkpoint entry (fixpoint " +
            std::to_string(fixpoint_id) + ", stratum " +
            std::to_string(stratum) + ", writer " + std::to_string(e.owner) +
            ") failed their integrity check");
      }
      metrics_.GetCounter(metrics::kCheckpointRepairs)->Increment();
      metrics_.GetCounter(metrics::kRecoveryRefetchBytes)
          ->Add(static_cast<int64_t>(good->bytes.size()));
      mine = *good;
    }
    std::string raw;
    if (e.ref_epoch_id < 0) {
      // Keyframe: stored bytes ARE the raw payload, but verify the raw
      // checksum anyway — it is what the reconstruction contract promises.
      if (mine.bytes.size() != e.raw_size ||
          Checksum(mine.bytes) != e.raw_checksum) {
        return Status::DataLoss(
            "checkpoint keyframe (fixpoint " + std::to_string(fixpoint_id) +
            ", stratum " + std::to_string(stratum) + ", writer " +
            std::to_string(e.owner) + ") failed its raw integrity check");
      }
      raw = mine.bytes;
    } else {
      REX_ASSIGN_OR_RETURN(raw, ReconstructRaw(e));
    }
    REX_ASSIGN_OR_RETURN(std::vector<Tuple> tuples, DeserializeTuples(raw));
    for (Tuple& t : tuples) out.push_back(std::move(t));
  }
  return out;
}

int CheckpointStore::LastCompleteStratum(int fixpoint_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  int last = -1;
  for (const auto& [key, slot] : entries_) {
    if (key.first != fixpoint_id) continue;
    if (!slot.empty()) last = std::max(last, key.second);
  }
  return last;
}

void CheckpointStore::TruncateAfter(int stratum) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.second > stratum) {
      for (const Entry& e : it->second) epoch_index_.erase(e.epoch_id);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  // Chain tails may have been truncated away; drop the encode cache rather
  // than chase which chains survived (the next Put re-reconstructs or
  // keyframes).
  tail_cache_.clear();
}

Status CheckpointStore::GrantRecoveryAccess(
    const std::vector<int>& live, const std::vector<int>& takeover_readers,
    int replication) {
  auto is_live = [&live](int w) {
    return std::find(live.begin(), live.end(), w) != live.end();
  };
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t refetch_bytes = 0;
  int64_t repairs = 0;
  for (auto& [key, slot] : entries_) {
    for (Entry& e : slot) {
      int live_copies = is_live(e.owner) ? 1 : 0;
      for (int r : e.replicas) {
        if (r != e.owner && is_live(r)) ++live_copies;
      }
      if (live_copies == 0) {
        return Status::NodeFailure(
            "checkpoint lost: fixpoint " + std::to_string(key.first) +
            " stratum " + std::to_string(key.second) + " entry of worker " +
            std::to_string(e.owner) + " has no live copy");
      }
      // Re-replication needs a trustworthy source: the first checksum-valid
      // copy on a live holder (deterministic holder order). Repair invalid
      // live copies from it while we are here.
      const Copy* good = nullptr;
      for (const auto& [holder, copy] : e.copies) {
        if (is_live(holder) && CopyValid(copy.bytes, copy.checksum)) {
          good = &copy;
          break;
        }
      }
      if (good == nullptr) {
        return Status::DataLoss(
            "all live copies of checkpoint entry (fixpoint " +
            std::to_string(key.first) + ", stratum " +
            std::to_string(key.second) + ", writer " +
            std::to_string(e.owner) + ") failed their integrity check");
      }
      const Copy source = *good;  // e.copies mutates below
      for (auto& [holder, copy] : e.copies) {
        if (is_live(holder) && !CopyValid(copy.bytes, copy.checksum)) {
          copy = source;
          ++repairs;
          refetch_bytes += static_cast<int64_t>(source.bytes.size());
        }
      }
      auto holds = [&e](int w) {
        return w == e.owner ||
               std::find(e.replicas.begin(), e.replicas.end(), w) !=
                   e.replicas.end();
      };
      // Takeover readers must be able to read what they inherit, whatever
      // the old replica choice was.
      for (int w : takeover_readers) {
        if (is_live(w) && !holds(w)) {
          e.replicas.push_back(w);
          e.copies[w] = source;
          refetch_bytes += static_cast<int64_t>(source.bytes.size());
        }
      }
      // Top the copy count back up to the replication factor.
      for (int w : live) {
        int copies = is_live(e.owner) ? 1 : 0;
        for (int r : e.replicas) {
          if (r != e.owner && is_live(r)) ++copies;
        }
        if (copies >= replication) break;
        if (!holds(w)) {
          e.replicas.push_back(w);
          e.copies[w] = source;
          refetch_bytes += static_cast<int64_t>(source.bytes.size());
        }
      }
    }
  }
  if (refetch_bytes > 0) {
    metrics_.GetCounter(metrics::kRecoveryRefetchBytes)->Add(refetch_bytes);
  }
  if (repairs > 0) {
    metrics_.GetCounter(metrics::kCheckpointRepairs)->Add(repairs);
  }
  return Status::OK();
}

int CheckpointStore::CorruptCopies(int holder, int max_entries) {
  std::lock_guard<std::mutex> lock(mutex_);
  int corrupted = 0;
  for (auto& [key, slot] : entries_) {
    for (Entry& e : slot) {
      if (corrupted >= max_entries) return corrupted;
      bool hit = false;
      for (auto& [w, copy] : e.copies) {
        if (holder != -1 && w != holder) continue;
        if (copy.bytes.empty()) {
          copy.bytes.push_back('\x5a');  // even an empty payload can rot
        } else {
          copy.bytes[copy.bytes.size() / 2] =
              static_cast<char>(copy.bytes[copy.bytes.size() / 2] ^ 0x5a);
        }
        hit = true;
      }
      if (hit) ++corrupted;
    }
  }
  return corrupted;
}

Status CheckpointStore::VerifyReadable(const std::vector<int>& live,
                                       int min_copies) const {
  auto is_live = [&live](int w) {
    return std::find(live.begin(), live.end(), w) != live.end();
  };
  const int needed =
      std::min<int>(min_copies, static_cast<int>(live.size()));
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, slot] : entries_) {
    for (const Entry& e : slot) {
      int live_copies = is_live(e.owner) ? 1 : 0;
      for (int r : e.replicas) {
        if (r != e.owner && is_live(r)) ++live_copies;
      }
      if (live_copies < needed) {
        return Status::Internal(
            "checkpoint replication invariant violated: fixpoint " +
            std::to_string(key.first) + " stratum " +
            std::to_string(key.second) + " entry of worker " +
            std::to_string(e.owner) + " readable from " +
            std::to_string(live_copies) + " live nodes, need " +
            std::to_string(needed));
      }
    }
  }
  return Status::OK();
}

void CheckpointStore::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  epoch_index_.clear();
  tail_cache_.clear();
}

int64_t CheckpointStore::total_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t total = 0;
  for (const auto& [key, slot] : entries_) {
    for (const Entry& e : slot) {
      // Stored payload size, counted once per entry (copies are replicas
      // of the same bytes).
      if (!e.copies.empty()) {
        total += static_cast<int64_t>(e.copies.begin()->second.bytes.size());
      }
    }
  }
  return total;
}

int64_t CheckpointStore::total_entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t total = 0;
  for (const auto& [key, slot] : entries_) {
    total += static_cast<int64_t>(slot.size());
  }
  return total;
}

}  // namespace rex
