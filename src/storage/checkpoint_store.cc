#include "storage/checkpoint_store.h"

#include <algorithm>

#include "common/serde.h"

namespace rex {

void CheckpointStore::Put(int fixpoint_id, int stratum, int owner,
                          const std::vector<int>& replicas,
                          const std::vector<Tuple>& delta_set) {
  std::string bytes = SerializeTuples(delta_set);
  std::lock_guard<std::mutex> lock(mutex_);
  metrics_.GetCounter(metrics::kCheckpointBytes)
      ->Add(static_cast<int64_t>(bytes.size()) *
            static_cast<int64_t>(std::max<size_t>(replicas.size(), 1)));
  metrics_.GetCounter(metrics::kCheckpointTuples)
      ->Add(static_cast<int64_t>(delta_set.size()));
  auto& slot = entries_[{fixpoint_id, stratum}];
  // A worker checkpoints one entry per replica-group of its Δ set; a
  // re-executed stratum overwrites its group rather than duplicating it.
  for (Entry& e : slot) {
    if (e.owner == owner && e.replicas == replicas) {
      e.bytes = std::move(bytes);
      return;
    }
  }
  slot.push_back(Entry{owner, replicas, std::move(bytes)});
}

Result<std::vector<Tuple>> CheckpointStore::Read(int fixpoint_id, int stratum,
                                                 int reader) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Tuple> out;
  auto it = entries_.find({fixpoint_id, stratum});
  if (it == entries_.end()) return out;
  for (const Entry& e : it->second) {
    const bool accessible =
        e.owner == reader ||
        std::find(e.replicas.begin(), e.replicas.end(), reader) !=
            e.replicas.end();
    if (!accessible) continue;
    REX_ASSIGN_OR_RETURN(std::vector<Tuple> tuples,
                         DeserializeTuples(e.bytes));
    for (Tuple& t : tuples) out.push_back(std::move(t));
  }
  return out;
}

int CheckpointStore::LastCompleteStratum(int fixpoint_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  int last = -1;
  for (const auto& [key, slot] : entries_) {
    if (key.first != fixpoint_id) continue;
    if (!slot.empty()) last = std::max(last, key.second);
  }
  return last;
}

void CheckpointStore::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

int64_t CheckpointStore::total_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t total = 0;
  for (const auto& [key, slot] : entries_) {
    for (const Entry& e : slot) {
      total += static_cast<int64_t>(e.bytes.size());
    }
  }
  return total;
}

int64_t CheckpointStore::total_entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t total = 0;
  for (const auto& [key, slot] : entries_) {
    total += static_cast<int64_t>(slot.size());
  }
  return total;
}

}  // namespace rex
