// Partitioned, replicated base-table storage (§4: "input data resides on
// partitioned replicated local storage").
//
// A DistributedTable is the shared storage substrate: each row is placed on
// the `replication` owners of its partition-key hash. Workers may only read
// rows physically present on them (primary or replica copies); the access
// check keeps the simulation honest about data locality during recovery.
#ifndef REX_STORAGE_TABLE_H_
#define REX_STORAGE_TABLE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/partition_map.h"
#include "common/status.h"
#include "common/tuple.h"

namespace rex {

class DistributedTable {
 public:
  DistributedTable(std::string name, Schema schema, int key_column)
      : name_(std::move(name)), schema_(std::move(schema)),
        key_column_(key_column) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  int key_column() const { return key_column_; }
  size_t num_rows() const { return rows_.size(); }

  /// Appends rows; placement is computed lazily against a PartitionMap.
  void AppendRows(std::vector<Tuple> rows);

  /// One weighted base-table mutation (ℤ-set semantics): weight +w appends
  /// w copies of the row, weight -w removes up to w matching copies.
  /// Weight 0 is a no-op.
  struct WeightedRow {
    Tuple row;
    int64_t weight = 1;
  };

  /// Applies a batch of weighted mutations in order and returns the net
  /// row-count change. A negative mutation that finds fewer than |w|
  /// matching copies removes what exists (clamping at the empty table —
  /// ℤ-set negatives do not persist in base storage). Fails with
  /// InvalidArgument instead of invoking signed-overflow UB: a weight of
  /// INT64_MIN is rejected before any row is touched; a batch whose
  /// accumulated net change leaves the int64 range fails mid-batch, so the
  /// caller must treat the table as indeterminate (Cluster poisons the
  /// resident plan).
  Result<int64_t> ApplyWeighted(const std::vector<WeightedRow>& updates);

  /// All rows whose primary owner under `pmap` is `worker`. This is what a
  /// normal table scan reads.
  std::vector<Tuple> PrimaryRows(int worker, const PartitionMap& pmap) const;

  /// Rows that `worker` newly owns under `new_pmap` but did not own under
  /// `old_pmap` — the failed range streamed in during incremental recovery.
  /// By default verifies the worker physically holds a replica of each row
  /// under `old_pmap` (consistent hashing guarantees this when the failure
  /// count stays below the replication factor); returns NodeFailure
  /// otherwise. When `live_sources` is given (a revived or replacement
  /// worker that held nothing), a row is instead fetchable from any live
  /// worker that owns a replica of it under `old_pmap`.
  Result<std::vector<Tuple>> TakeoverRows(
      int worker, const PartitionMap& old_pmap, const PartitionMap& new_pmap,
      const std::vector<int>* live_sources = nullptr) const;

  /// Hash of a row's partition key.
  uint64_t KeyHash(const Tuple& row) const {
    return row.field(static_cast<size_t>(key_column_)).Hash();
  }

  const std::vector<Tuple>& rows() const { return rows_; }

 private:
  std::string name_;
  Schema schema_;
  int key_column_;
  std::vector<Tuple> rows_;
};

/// Shared name -> table map (the storage layer all workers sit on).
class StorageCatalog {
 public:
  Status AddTable(std::shared_ptr<DistributedTable> table);
  Result<std::shared_ptr<DistributedTable>> GetTable(
      const std::string& name) const;
  bool HasTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

 private:
  std::map<std::string, std::shared_ptr<DistributedTable>> tables_;
};

}  // namespace rex

#endif  // REX_STORAGE_TABLE_H_
