// Incremental checkpoint store (§4.3).
//
// At the end of every stratum each worker replicates the Δᵢ set processed by
// its local fixpoint to the replica workers of its range (replication factor
// from the partition map). On failure, recovery replays the checkpointed Δ
// sets from stratum 0 through the last completed stratum to reconstruct a
// consistent mutable state, then the computation resumes — instead of
// restarting from scratch.
//
// The store simulates the replicated DHT: entries are serialized (so
// checkpoint byte volume is measured honestly), each holder keeps its own
// physical copy guarded by a checksum, and a reader may only access entries
// for which it holds a copy (it was the writer or one of the writer's
// chosen replicas). A copy that fails its integrity check on read is
// repaired from a surviving checksum-valid replica; when every copy of an
// entry is bad the read fails with StatusCode::kDataLoss and recovery
// degrades to the restart strategy.
#ifndef REX_STORAGE_CHECKPOINT_STORE_H_
#define REX_STORAGE_CHECKPOINT_STORE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/tuple.h"

namespace rex {

class CheckpointStore {
 public:
  /// `num_workers` bounds worker-id validation in Put/Read; -1 (the
  /// default, for store-only unit tests) checks only for negative ids.
  explicit CheckpointStore(int num_workers = -1)
      : num_workers_(num_workers) {}

  /// Replicates `delta_set` — the Δ tuples fixpoint `fixpoint_id` on
  /// `owner` processed during `stratum` — to `replicas` (one checksummed
  /// physical copy per holder). Returns InvalidArgument, naming the
  /// offending ids, for negative or out-of-range fixpoint/stratum/worker
  /// ids instead of silently creating map entries.
  ///
  /// By default a re-Put of the same (owner, replicas) group overwrites its
  /// entry (a re-executed stratum replaces its Δ set). With `append` the
  /// delta set becomes a NEW entry ordered after the existing ones — base-
  /// update seeds extend a completed stratum's history without erasing it.
  Status Put(int fixpoint_id, int stratum, int owner,
             const std::vector<int>& replicas,
             const std::vector<Tuple>& delta_set, bool append = false);

  /// All Δ tuples for `fixpoint_id` in `stratum` that `reader` may access
  /// (union over writers whose replica set includes the reader). The caller
  /// filters by current key ownership. The reader's copy of each entry is
  /// checksum-verified; a bad copy is repaired in place from the first
  /// valid copy (any holder), and if no copy of an entry is valid the read
  /// fails with kDataLoss. Ids are validated as in Put.
  Result<std::vector<Tuple>> Read(int fixpoint_id, int stratum, int reader);

  /// Highest stratum for which ALL live writers' checkpoints exist (i.e.
  /// the last globally completed checkpoint), or -1 if none.
  int LastCompleteStratum(int fixpoint_id) const;

  /// Drops every entry of strata > `stratum` (all fixpoints): a mid-stratum
  /// failure aborts the partially executed stratum, and any checkpoints some
  /// workers already wrote for it must not survive into re-execution.
  void TruncateAfter(int stratum);

  /// Recovery access grant (the DHT re-replicating after membership
  /// change): every entry gains the `takeover_readers` as replicas and is
  /// topped back up to `replication` copies from `live` workers; new copies
  /// are sourced from the first checksum-valid surviving copy, repairing
  /// invalid live copies along the way. Returns NodeFailure if any entry
  /// has no live copy left (owner and all replicas dead), and kDataLoss if
  /// an entry's surviving copies all fail their integrity check.
  /// Re-replication traffic is metered under kRecoveryRefetchBytes, never
  /// under the steady-state checkpoint counters.
  Status GrantRecoveryAccess(const std::vector<int>& live,
                             const std::vector<int>& takeover_readers,
                             int replication);

  /// Chaos fault injection: flips a byte in the copies held by `holder`
  /// (-1 = every holder) in up to `max_entries` entries, in deterministic
  /// store order. Returns the number of entries actually corrupted.
  int CorruptCopies(int holder, int max_entries);

  /// Chaos invariant: every entry of strata <= `last_stratum` must be
  /// readable from at least min(min_copies, live.size()) live workers.
  /// Copy counts ignore checksums — a corrupt copy is repairable, which is
  /// the read path's job, not a replication violation.
  Status VerifyReadable(const std::vector<int>& live, int min_copies) const;

  /// Drops all entries (between queries / runs).
  void Clear();

  int64_t total_bytes() const;
  int64_t total_entries() const;
  MetricsRegistry& metrics() { return metrics_; }

 private:
  /// One holder's physical copy of an entry.
  struct Copy {
    std::string bytes;  // serialized tuple vector
    uint64_t checksum = 0;
  };
  struct Entry {
    int owner;
    std::vector<int> replicas;
    std::map<int, Copy> copies;  // holder -> its copy
  };
  // (fixpoint, stratum) -> entries from each writer.
  using Key = std::pair<int, int>;

  Status ValidateIds(const char* op, int fixpoint_id, int stratum,
                     int worker) const;

  const int num_workers_;
  mutable std::mutex mutex_;
  std::map<Key, std::vector<Entry>> entries_;
  MetricsRegistry metrics_;
};

namespace metrics {
/// Checkpoint copies rebuilt from a surviving replica after failing their
/// integrity check on read.
inline constexpr const char kCheckpointRepairs[] =
    "recovery.checkpoint_repairs";
}  // namespace metrics

}  // namespace rex

#endif  // REX_STORAGE_CHECKPOINT_STORE_H_
