// Incremental checkpoint store (§4.3).
//
// At the end of every stratum each worker replicates the Δᵢ set processed by
// its local fixpoint to the replica workers of its range (replication factor
// from the partition map). On failure, recovery replays the checkpointed Δ
// sets from stratum 0 through the last completed stratum to reconstruct a
// consistent mutable state, then the computation resumes — instead of
// restarting from scratch.
//
// The store simulates the replicated DHT: entries are serialized (so
// checkpoint byte volume is measured honestly) and a reader may only access
// entries for which it holds a copy (it was the writer or one of the
// writer's chosen replicas).
#ifndef REX_STORAGE_CHECKPOINT_STORE_H_
#define REX_STORAGE_CHECKPOINT_STORE_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/tuple.h"

namespace rex {

class CheckpointStore {
 public:
  /// Replicates `delta_set` — the Δ tuples fixpoint `fixpoint_id` on
  /// `owner` processed during `stratum` — to `replicas`.
  void Put(int fixpoint_id, int stratum, int owner,
           const std::vector<int>& replicas,
           const std::vector<Tuple>& delta_set);

  /// All Δ tuples for `fixpoint_id` in `stratum` that `reader` may access
  /// (union over writers whose replica set includes the reader). The caller
  /// filters by current key ownership.
  Result<std::vector<Tuple>> Read(int fixpoint_id, int stratum,
                                  int reader) const;

  /// Highest stratum for which ALL live writers' checkpoints exist (i.e.
  /// the last globally completed checkpoint), or -1 if none.
  int LastCompleteStratum(int fixpoint_id) const;

  /// Drops every entry of strata > `stratum` (all fixpoints): a mid-stratum
  /// failure aborts the partially executed stratum, and any checkpoints some
  /// workers already wrote for it must not survive into re-execution.
  void TruncateAfter(int stratum);

  /// Recovery access grant (the DHT re-replicating after membership
  /// change): every entry gains the `takeover_readers` as replicas and is
  /// topped back up to `replication` copies from `live` workers. Returns
  /// NodeFailure if any entry has no live copy left (owner and all replicas
  /// dead) — the checkpoint is lost and incremental recovery is impossible.
  /// Re-replication traffic is metered under kRecoveryRefetchBytes, never
  /// under the steady-state checkpoint counters.
  Status GrantRecoveryAccess(const std::vector<int>& live,
                             const std::vector<int>& takeover_readers,
                             int replication);

  /// Chaos invariant: every entry of strata <= `last_stratum` must be
  /// readable from at least min(min_copies, live.size()) live workers.
  Status VerifyReadable(const std::vector<int>& live, int min_copies) const;

  /// Drops all entries (between queries / runs).
  void Clear();

  int64_t total_bytes() const;
  int64_t total_entries() const;
  MetricsRegistry& metrics() { return metrics_; }

 private:
  struct Entry {
    int owner;
    std::vector<int> replicas;
    std::string bytes;  // serialized tuple vector
  };
  // (fixpoint, stratum) -> entries from each writer.
  using Key = std::pair<int, int>;

  mutable std::mutex mutex_;
  std::map<Key, std::vector<Entry>> entries_;
  MetricsRegistry metrics_;
};

}  // namespace rex

#endif  // REX_STORAGE_CHECKPOINT_STORE_H_
