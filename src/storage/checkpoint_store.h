// Incremental checkpoint store (§4.3).
//
// At the end of every stratum each worker replicates the Δᵢ set processed by
// its local fixpoint to the replica workers of its range (replication factor
// from the partition map). On failure, recovery replays the checkpointed Δ
// sets from stratum 0 through the last completed stratum to reconstruct a
// consistent mutable state, then the computation resumes — instead of
// restarting from scratch.
//
// The store simulates the replicated DHT: entries are serialized (so
// checkpoint byte volume is measured honestly), each holder keeps its own
// physical copy guarded by a checksum, and a reader may only access entries
// for which it holds a copy (it was the writer or one of the writer's
// chosen replicas). A copy that fails its integrity check on read is
// repaired from a surviving checksum-valid replica; when every copy of an
// entry is bad the read fails with StatusCode::kDataLoss and recovery
// degrades to the restart strategy.
//
// With Options::diff_payloads the store compresses each (fixpoint, owner,
// replica-group) chain differentially: an epoch's bytes are stored as a
// rolling-hash binary delta (common/delta_codec.h) against the previous
// epoch, bounded by a keyframe every `keyframe_every` epochs and gated on
// byte profitability. Reads reconstruct through the chain in place; the
// stored checksum guards each copy's stored bytes and a separate raw
// checksum guards every reconstruction step, so a corrupted mid-chain
// delta either repairs from a replica or fails loudly with kDataLoss.
// Raw-vs-stored volume is metered under storage.ckpt_raw_bytes /
// storage.ckpt_stored_bytes.
#ifndef REX_STORAGE_CHECKPOINT_STORE_H_
#define REX_STORAGE_CHECKPOINT_STORE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/tuple.h"

namespace rex {

class CheckpointStore {
 public:
  struct Options {
    /// Bounds worker-id validation in Put/Read; -1 (the default, for
    /// store-only unit tests) checks only for negative ids.
    int num_workers = -1;
    /// Store successive epochs of a (fixpoint, owner, replica-group) chain
    /// as rolling-hash binary deltas against the previous epoch
    /// (common/delta_codec.h), gated on byte profitability. Off stores
    /// every epoch whole (the pre-codec behavior).
    bool diff_payloads = false;
    /// Force a self-contained keyframe every N epochs per chain; <= 1
    /// keyframes everything (equivalent to diff_payloads = false).
    int keyframe_every = 8;
  };

  explicit CheckpointStore(int num_workers = -1)
      : CheckpointStore(Options{num_workers, false, 8}) {}
  explicit CheckpointStore(const Options& options) : options_(options) {}

  /// Replicates `delta_set` — the Δ tuples fixpoint `fixpoint_id` on
  /// `owner` processed during `stratum` — to `replicas` (one checksummed
  /// physical copy per holder). Returns InvalidArgument, naming the
  /// offending ids, for negative or out-of-range fixpoint/stratum/worker
  /// ids instead of silently creating map entries.
  ///
  /// By default a re-Put of the same (owner, replicas) group overwrites its
  /// entry (a re-executed stratum replaces its Δ set). With `append` the
  /// delta set becomes a NEW entry ordered after the existing ones — base-
  /// update seeds extend a completed stratum's history without erasing it.
  Status Put(int fixpoint_id, int stratum, int owner,
             const std::vector<int>& replicas,
             const std::vector<Tuple>& delta_set, bool append = false);

  /// All Δ tuples for `fixpoint_id` in `stratum` that `reader` may access
  /// (union over writers whose replica set includes the reader). The caller
  /// filters by current key ownership. The reader's copy of each entry is
  /// checksum-verified; a bad copy is repaired in place from the first
  /// valid copy (any holder), and if no copy of an entry is valid the read
  /// fails with kDataLoss. Ids are validated as in Put.
  Result<std::vector<Tuple>> Read(int fixpoint_id, int stratum, int reader);

  /// Highest stratum for which ALL live writers' checkpoints exist (i.e.
  /// the last globally completed checkpoint), or -1 if none.
  int LastCompleteStratum(int fixpoint_id) const;

  /// Drops every entry of strata > `stratum` (all fixpoints): a mid-stratum
  /// failure aborts the partially executed stratum, and any checkpoints some
  /// workers already wrote for it must not survive into re-execution.
  void TruncateAfter(int stratum);

  /// Recovery access grant (the DHT re-replicating after membership
  /// change): every entry gains the `takeover_readers` as replicas and is
  /// topped back up to `replication` copies from `live` workers; new copies
  /// are sourced from the first checksum-valid surviving copy, repairing
  /// invalid live copies along the way. Returns NodeFailure if any entry
  /// has no live copy left (owner and all replicas dead), and kDataLoss if
  /// an entry's surviving copies all fail their integrity check.
  /// Re-replication traffic is metered under kRecoveryRefetchBytes, never
  /// under the steady-state checkpoint counters.
  Status GrantRecoveryAccess(const std::vector<int>& live,
                             const std::vector<int>& takeover_readers,
                             int replication);

  /// Chaos fault injection: flips a byte in the copies held by `holder`
  /// (-1 = every holder) in up to `max_entries` entries, in deterministic
  /// store order. Returns the number of entries actually corrupted.
  int CorruptCopies(int holder, int max_entries);

  /// Chaos invariant: every entry of strata <= `last_stratum` must be
  /// readable from at least min(min_copies, live.size()) live workers.
  /// Copy counts ignore checksums — a corrupt copy is repairable, which is
  /// the read path's job, not a replication violation.
  Status VerifyReadable(const std::vector<int>& live, int min_copies) const;

  /// Drops all entries (between queries / runs).
  void Clear();

  int64_t total_bytes() const;
  int64_t total_entries() const;
  MetricsRegistry& metrics() { return metrics_; }

 private:
  /// One holder's physical copy of an entry. `bytes` is the STORED payload
  /// — either the raw serialized tuple vector (keyframe) or a codec delta
  /// against the chain predecessor — and `checksum` guards those stored
  /// bytes, so corruption is detected per copy before any reconstruction.
  struct Copy {
    std::string bytes;
    uint64_t checksum = 0;
  };
  struct Entry {
    int owner;
    std::vector<int> replicas;
    std::map<int, Copy> copies;  // holder -> its copy
    /// Chain metadata. `epoch_id` is store-unique and monotonic;
    /// `ref_epoch_id` names the predecessor whose raw bytes this entry's
    /// delta was encoded against (-1 = keyframe, copies hold raw bytes).
    /// `raw_checksum`/`raw_size` guard the RECONSTRUCTED payload, so a
    /// chain can never silently decode to wrong bytes.
    int64_t epoch_id = 0;
    int64_t ref_epoch_id = -1;
    int chain_depth = 0;  // keyframe = 0
    uint64_t raw_checksum = 0;
    size_t raw_size = 0;
  };
  // (fixpoint, stratum) -> entries from each writer.
  using Key = std::pair<int, int>;
  /// Chain identity: entries of one (fixpoint, owner, replica-group)
  /// delta-encode against each other, never across groups.
  using ChainKey = std::tuple<int, int, std::vector<int>>;

  Status ValidateIds(const char* op, int fixpoint_id, int stratum,
                     int worker) const;
  /// The chain predecessor for a new entry at (fixpoint, stratum): the
  /// newest existing entry of the same (owner, replicas) at a stratum <=
  /// `stratum` (slot order breaks ties, so an appended base-update seed
  /// chains onto the stratum's earlier entries, never a later stratum's).
  /// `exclude_epoch` skips the entry being written itself.
  const Entry* FindPredecessor(int fixpoint_id, int stratum, int owner,
                               const std::vector<int>& replicas,
                               int64_t exclude_epoch) const;
  /// First checksum-valid stored copy of `e` (any holder), or null.
  static const Copy* FindValidCopy(const Entry& e);
  /// Reconstructs the entry's raw payload by walking its reference chain
  /// down to a keyframe and decoding back up in place. Verifies the stored
  /// checksum of every hop's copy and the raw checksum of every
  /// reconstruction step; any failure is kDataLoss (degrade to restart),
  /// never silently-wrong bytes. Caller holds `mutex_`.
  Result<std::string> ReconstructRaw(const Entry& e) const;

  const Options options_;
  mutable std::mutex mutex_;
  std::map<Key, std::vector<Entry>> entries_;
  /// epoch_id -> location of the entry (slot key + index); kept in sync
  /// with entries_ so chain reconstruction finds predecessors without a
  /// full scan. Indices stay valid because slots only grow (overwrites
  /// replace in place; truncation erases whole slots).
  std::map<int64_t, std::pair<Key, size_t>> epoch_index_;
  /// Last raw payload per chain, so Put encodes against its predecessor
  /// without re-reconstructing the chain on every epoch.
  std::map<ChainKey, std::pair<int64_t, std::string>> tail_cache_;
  int64_t next_epoch_id_ = 1;
  MetricsRegistry metrics_;
};

namespace metrics {
/// Checkpoint copies rebuilt from a surviving replica after failing their
/// integrity check on read.
inline constexpr const char kCheckpointRepairs[] =
    "recovery.checkpoint_repairs";
}  // namespace metrics

}  // namespace rex

#endif  // REX_STORAGE_CHECKPOINT_STORE_H_
