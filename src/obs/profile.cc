#include "obs/profile.h"

#include <cstdio>

namespace rex {

namespace {

Json TimerStatsToJson(const TimerStats& t) {
  Json out = Json::Object();
  out.Set("count", t.count);
  out.Set("total_nanos", t.total_nanos);
  out.Set("min_nanos", t.min_nanos);
  out.Set("max_nanos", t.max_nanos);
  // Sparse histogram: {bucket -> count}; full 48-entry arrays of mostly
  // zeros would dominate the report.
  Json hist = Json::Array();
  for (size_t b = 0; b < t.histogram.size(); ++b) {
    if (t.histogram[b] == 0) continue;
    Json entry = Json::Object();
    entry.Set("log2_nanos", static_cast<int64_t>(b));
    entry.Set("count", t.histogram[b]);
    hist.Append(std::move(entry));
  }
  out.Set("histogram", std::move(hist));
  return out;
}

}  // namespace

Json QueryProfile::ToJson() const {
  Json out = Json::Object();
  out.Set("schema_version", static_cast<int64_t>(kSchemaVersion));
  out.Set("name", name);
  out.Set("total_seconds", total_seconds);
  out.Set("strata_executed", static_cast<int64_t>(strata_executed));
  out.Set("recovered", recovered);
  out.Set("recoveries", static_cast<int64_t>(recoveries));

  Json strata_json = Json::Array();
  for (const StratumProfile& s : strata) {
    Json row = Json::Object();
    row.Set("stratum", static_cast<int64_t>(s.stratum));
    row.Set("seconds", s.seconds);
    row.Set("bytes_sent", s.bytes_sent);
    row.Set("delta_tuples", s.delta_tuples);
    row.Set("changed_tuples", s.changed_tuples);
    row.Set("state_size", s.state_size);
    row.Set("max_change", s.max_change);
    strata_json.Append(std::move(row));
  }
  out.Set("strata", std::move(strata_json));

  Json fixpoints_json = Json::Array();
  for (const FixpointStratumProfile& f : fixpoint_deltas) {
    Json row = Json::Object();
    row.Set("fixpoint_id", static_cast<int64_t>(f.fixpoint_id));
    row.Set("stratum", static_cast<int64_t>(f.stratum));
    row.Set("delta_tuples", f.delta_tuples);
    row.Set("state_size", f.state_size);
    fixpoints_json.Append(std::move(row));
  }
  out.Set("fixpoint_deltas", std::move(fixpoints_json));

  Json workers_json = Json::Array();
  for (const WorkerProfile& w : workers) {
    Json row = Json::Object();
    row.Set("worker", static_cast<int64_t>(w.worker));
    row.Set("live_at_end", w.live_at_end);
    row.Set("bytes_sent", w.bytes_sent);
    Json counters = Json::Object();
    for (const auto& [name_, value] : w.counters) counters.Set(name_, value);
    row.Set("counters", std::move(counters));
    Json timers = Json::Object();
    for (const auto& [name_, stats] : w.timers) {
      timers.Set(name_, TimerStatsToJson(stats));
    }
    row.Set("timers", std::move(timers));
    workers_json.Append(std::move(row));
  }
  out.Set("workers", std::move(workers_json));

  Json matrix_json = Json::Array();
  for (const auto& from_row : bytes_matrix) {
    Json row = Json::Array();
    for (int64_t bytes : from_row) row.Append(bytes);
    matrix_json.Append(std::move(row));
  }
  out.Set("bytes_matrix", std::move(matrix_json));

  Json ops_json = Json::Array();
  for (const OperatorProfile& op : operators) {
    Json row = Json::Object();
    row.Set("worker", static_cast<int64_t>(op.worker));
    row.Set("op", static_cast<int64_t>(op.op_id));
    row.Set("name", op.name);
    row.Set("deltas_emitted", op.deltas_emitted);
    Json ports = Json::Array();
    for (const OperatorPortProfile& p : op.ports) {
      Json port = Json::Object();
      port.Set("port", static_cast<int64_t>(p.port));
      port.Set("batches", p.batches);
      port.Set("tuples", p.tuples);
      port.Set("puncts", p.puncts);
      port.Set("consume_nanos", p.consume_nanos);
      ports.Append(std::move(port));
    }
    row.Set("ports", std::move(ports));
    ops_json.Append(std::move(row));
  }
  out.Set("operators", std::move(ops_json));

  Json recoveries_json = Json::Array();
  for (const RecoveryPassProfile& r : recovery_passes) {
    Json row = Json::Object();
    row.Set("pass", static_cast<int64_t>(r.pass));
    row.Set("seconds", r.seconds);
    row.Set("strategy", r.strategy);
    row.Set("resume_stratum", static_cast<int64_t>(r.resume_stratum));
    row.Set("live_workers", static_cast<int64_t>(r.live_workers));
    row.Set("revived_workers", static_cast<int64_t>(r.revived_workers));
    recoveries_json.Append(std::move(row));
  }
  out.Set("recovery_passes", std::move(recoveries_json));

  Json checkpoint = Json::Object();
  checkpoint.Set("bytes", checkpoint_bytes);
  checkpoint.Set("tuples", checkpoint_tuples);
  checkpoint.Set("refetch_bytes", recovery_refetch_bytes);
  out.Set("checkpoint", std::move(checkpoint));

  out.Set("detection_latency_ticks", detection_latency_ticks);
  out.Set("retransmits", retransmits);
  out.Set("checkpoint_repairs", checkpoint_repairs);
  out.Set("tuples_sent", tuples_sent);
  out.Set("deltas_coalesced", deltas_coalesced);
  out.Set("coalesce_bytes_saved", coalesce_bytes_saved);
  out.Set("batch_rows", batch_rows);
  out.Set("batch_fallback_rows", batch_fallback_rows);
  out.Set("ckpt_raw_bytes", ckpt_raw_bytes);
  out.Set("ckpt_stored_bytes", ckpt_stored_bytes);
  out.Set("run_raw_bytes", run_raw_bytes);
  out.Set("run_compressed_bytes", run_compressed_bytes);
  return out;
}

namespace {

Status Require(const char* key, bool ok, const char* expected) {
  if (ok) return Status::OK();
  return Status::InvalidArgument(std::string("profile schema: field '") +
                                 key + "' missing or not " + expected);
}

Status RequireNumber(const Json& obj, const char* key) {
  return Require(key, obj.Get(key).is_number(), "a number");
}

Status RequireInt(const Json& obj, const char* key) {
  return Require(key, obj.Get(key).is_int(), "an integer");
}

Status RequireArray(const Json& obj, const char* key) {
  return Require(key, obj.Get(key).is_array(), "an array");
}

}  // namespace

Status ValidateProfileJson(const Json& profile) {
  if (!profile.is_object()) {
    return Status::InvalidArgument("profile schema: not an object");
  }
  REX_RETURN_NOT_OK(RequireInt(profile, "schema_version"));
  REX_RETURN_NOT_OK(
      Require("name", profile.Get("name").is_string(), "a string"));
  REX_RETURN_NOT_OK(RequireNumber(profile, "total_seconds"));
  REX_RETURN_NOT_OK(RequireInt(profile, "strata_executed"));
  REX_RETURN_NOT_OK(Require("recovered",
                            profile.Get("recovered").is_bool(), "a bool"));
  REX_RETURN_NOT_OK(RequireInt(profile, "recoveries"));
  REX_RETURN_NOT_OK(RequireArray(profile, "strata"));
  REX_RETURN_NOT_OK(RequireArray(profile, "fixpoint_deltas"));
  REX_RETURN_NOT_OK(RequireArray(profile, "workers"));
  REX_RETURN_NOT_OK(RequireArray(profile, "bytes_matrix"));
  REX_RETURN_NOT_OK(RequireArray(profile, "operators"));
  REX_RETURN_NOT_OK(RequireArray(profile, "recovery_passes"));
  REX_RETURN_NOT_OK(Require("checkpoint",
                            profile.Get("checkpoint").is_object(),
                            "an object"));

  for (const Json& s : profile.Get("strata").items()) {
    REX_RETURN_NOT_OK(RequireInt(s, "stratum"));
    REX_RETURN_NOT_OK(RequireNumber(s, "seconds"));
    REX_RETURN_NOT_OK(RequireInt(s, "bytes_sent"));
    REX_RETURN_NOT_OK(RequireInt(s, "delta_tuples"));
    REX_RETURN_NOT_OK(RequireInt(s, "state_size"));
  }
  for (const Json& f : profile.Get("fixpoint_deltas").items()) {
    REX_RETURN_NOT_OK(RequireInt(f, "fixpoint_id"));
    REX_RETURN_NOT_OK(RequireInt(f, "stratum"));
    REX_RETURN_NOT_OK(RequireInt(f, "delta_tuples"));
  }
  for (const Json& w : profile.Get("workers").items()) {
    REX_RETURN_NOT_OK(RequireInt(w, "worker"));
    REX_RETURN_NOT_OK(RequireInt(w, "bytes_sent"));
    REX_RETURN_NOT_OK(Require("counters", w.Get("counters").is_object(),
                              "an object"));
  }
  for (const Json& op : profile.Get("operators").items()) {
    REX_RETURN_NOT_OK(RequireInt(op, "worker"));
    REX_RETURN_NOT_OK(RequireInt(op, "op"));
    REX_RETURN_NOT_OK(
        Require("name", op.Get("name").is_string(), "a string"));
    REX_RETURN_NOT_OK(RequireArray(op, "ports"));
  }
  for (const Json& r : profile.Get("recovery_passes").items()) {
    REX_RETURN_NOT_OK(RequireInt(r, "pass"));
    REX_RETURN_NOT_OK(RequireNumber(r, "seconds"));
    REX_RETURN_NOT_OK(
        Require("strategy", r.Get("strategy").is_string(), "a string"));
  }
  const Json& ckpt = profile.Get("checkpoint");
  REX_RETURN_NOT_OK(RequireInt(ckpt, "bytes"));
  REX_RETURN_NOT_OK(RequireInt(ckpt, "tuples"));
  REX_RETURN_NOT_OK(RequireInt(profile, "detection_latency_ticks"));
  REX_RETURN_NOT_OK(RequireInt(profile, "retransmits"));
  REX_RETURN_NOT_OK(RequireInt(profile, "checkpoint_repairs"));
  REX_RETURN_NOT_OK(RequireInt(profile, "tuples_sent"));
  REX_RETURN_NOT_OK(RequireInt(profile, "deltas_coalesced"));
  REX_RETURN_NOT_OK(RequireInt(profile, "coalesce_bytes_saved"));
  REX_RETURN_NOT_OK(RequireInt(profile, "batch_rows"));
  REX_RETURN_NOT_OK(RequireInt(profile, "batch_fallback_rows"));
  REX_RETURN_NOT_OK(RequireInt(profile, "ckpt_raw_bytes"));
  REX_RETURN_NOT_OK(RequireInt(profile, "ckpt_stored_bytes"));
  REX_RETURN_NOT_OK(RequireInt(profile, "run_raw_bytes"));
  REX_RETURN_NOT_OK(RequireInt(profile, "run_compressed_bytes"));
  return Status::OK();
}

Status ValidateBenchReportJson(const Json& report) {
  if (!report.is_object()) {
    return Status::InvalidArgument("bench report schema: not an object");
  }
  REX_RETURN_NOT_OK(Require("bench", report.Get("bench").is_string(),
                            "a string"));
  REX_RETURN_NOT_OK(RequireInt(report, "schema_version"));
  REX_RETURN_NOT_OK(RequireArray(report, "runs"));
  for (const Json& run : report.Get("runs").items()) {
    REX_RETURN_NOT_OK(ValidateProfileJson(run));
  }
  return Status::OK();
}

Json BenchReportToJson(const std::string& bench_name,
                       const std::vector<QueryProfile>& runs) {
  Json out = Json::Object();
  out.Set("bench", bench_name);
  out.Set("schema_version",
          static_cast<int64_t>(QueryProfile::kSchemaVersion));
  Json runs_json = Json::Array();
  for (const QueryProfile& p : runs) runs_json.Append(p.ToJson());
  out.Set("runs", std::move(runs_json));
  return out;
}

Status WriteBenchReportFile(const std::string& path,
                            const std::string& bench_name,
                            const std::vector<QueryProfile>& runs) {
  const std::string text = BenchReportToJson(bench_name, runs).Dump(2) + "\n";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const int close_rc = std::fclose(f);
  if (written != text.size() || close_rc != 0) {
    return Status::IoError("short write to " + path);
  }
  return Status::OK();
}

}  // namespace rex
