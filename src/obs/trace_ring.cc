#include "obs/trace_ring.h"

#include <algorithm>

namespace rex {

const char* TraceEventKindName(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::kDispatchData:
      return "dispatch_data";
    case TraceEvent::Kind::kDispatchPunct:
      return "dispatch_punct";
    case TraceEvent::Kind::kControl:
      return "control";
    case TraceEvent::Kind::kCheckpointWrite:
      return "checkpoint_write";
    case TraceEvent::Kind::kError:
      return "error";
    case TraceEvent::Kind::kCrash:
      return "crash";
    case TraceEvent::Kind::kRestore:
      return "restore";
    case TraceEvent::Kind::kRecoverBegin:
      return "recover_begin";
    case TraceEvent::Kind::kRecoverEnd:
      return "recover_end";
    case TraceEvent::Kind::kStratumStart:
      return "stratum_start";
  }
  return "unknown";
}

std::string TraceEvent::ToString() const {
  std::string out = "#" + std::to_string(seq) + " " + TraceEventKindName(kind);
  out += " a=" + std::to_string(a) + " b=" + std::to_string(b) +
         " n=" + std::to_string(n);
  if (!detail.empty()) out += " " + detail;
  return out;
}

TraceRing::TraceRing(std::string owner, size_t capacity)
    : owner_(std::move(owner)), capacity_(std::max<size_t>(capacity, 1)) {
  ring_.resize(capacity_);
}

void TraceRing::Record(TraceEvent::Kind kind, int a, int b, int64_t n,
                       std::string detail) {
  std::lock_guard<std::mutex> lock(mutex_);
  TraceEvent& slot = ring_[next_seq_ % capacity_];
  slot.seq = next_seq_++;
  slot.kind = kind;
  slot.a = a;
  slot.b = b;
  slot.n = n;
  slot.detail = std::move(detail);
}

std::vector<TraceEvent> TraceRing::Events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> out;
  const uint64_t retained = std::min<uint64_t>(next_seq_, capacity_);
  out.reserve(retained);
  for (uint64_t s = next_seq_ - retained; s < next_seq_; ++s) {
    out.push_back(ring_[s % capacity_]);
  }
  return out;
}

std::vector<TraceEvent> TraceRing::EventsOfKind(TraceEvent::Kind kind) const {
  std::vector<TraceEvent> out;
  for (TraceEvent& e : Events()) {
    if (e.kind == kind) out.push_back(std::move(e));
  }
  return out;
}

uint64_t TraceRing::total_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_;
}

uint64_t TraceRing::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_ > capacity_ ? next_seq_ - capacity_ : 0;
}

std::string TraceRing::Dump() const {
  std::string out = "trace[" + owner_ + "]";
  const uint64_t lost = dropped();
  if (lost > 0) out += " (" + std::to_string(lost) + " older events dropped)";
  out += ":";
  for (const TraceEvent& e : Events()) {
    out += "\n  " + e.ToString();
  }
  return out;
}

void TraceRing::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  next_seq_ = 0;
  for (TraceEvent& e : ring_) e = TraceEvent{};
}

}  // namespace rex
