#include "obs/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace rex {

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendDouble(std::string* out, double d) {
  if (!std::isfinite(d)) {
    // JSON has no Infinity/NaN; emit null so reports stay parseable.
    *out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  *out += buf;
  // Keep the double-ness visible so a round-trip preserves the type.
  std::string_view sv(buf);
  if (sv.find('.') == std::string_view::npos &&
      sv.find('e') == std::string_view::npos &&
      sv.find('E') == std::string_view::npos) {
    *out += ".0";
  }
}

}  // namespace

void Json::Set(const std::string& key, Json v) {
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  members_.emplace_back(key, std::move(v));
}

const Json* Json::Find(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::Get(const std::string& key) const {
  static const Json kNullJson;
  const Json* found = Find(key);
  return found != nullptr ? *found : kNullJson;
}

void Json::DumpTo(std::string* out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  auto newline_pad = [&](int d) {
    if (!pretty) return;
    out->push_back('\n');
    out->append(static_cast<size_t>(indent * d), ' ');
  };
  switch (type_) {
    case Type::kNull:
      *out += "null";
      return;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Type::kInt:
      *out += std::to_string(int_);
      return;
    case Type::kDouble:
      AppendDouble(out, double_);
      return;
    case Type::kString:
      AppendEscaped(out, string_);
      return;
    case Type::kArray: {
      if (items_.empty()) {
        *out += "[]";
        return;
      }
      out->push_back('[');
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out->push_back(',');
        newline_pad(depth + 1);
        items_[i].DumpTo(out, indent, depth + 1);
      }
      newline_pad(depth);
      out->push_back(']');
      return;
    }
    case Type::kObject: {
      if (members_.empty()) {
        *out += "{}";
        return;
      }
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out->push_back(',');
        newline_pad(depth + 1);
        AppendEscaped(out, members_[i].first);
        *out += pretty ? ": " : ":";
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      newline_pad(depth);
      out->push_back('}');
      return;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

// ---- parser ----------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Json> Run() {
    SkipWs();
    REX_ASSIGN_OR_RETURN(Json v, ParseValue());
    SkipWs();
    if (pos_ != text_.size()) {
      return Err("trailing characters after JSON document");
    }
    return v;
  }

 private:
  Status Err(const std::string& what) const {
    return Status::ParseError("JSON: " + what + " at offset " +
                              std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<Json> ParseValue() {
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        REX_ASSIGN_OR_RETURN(std::string s, ParseString());
        return Json(std::move(s));
      }
      case 't':
        return ParseLiteral("true", Json(true));
      case 'f':
        return ParseLiteral("false", Json(false));
      case 'n':
        return ParseLiteral("null", Json());
      default:
        return ParseNumber();
    }
  }

  Result<Json> ParseLiteral(const std::string& lit, Json value) {
    if (text_.compare(pos_, lit.size(), lit) != 0) {
      return Err("invalid literal");
    }
    pos_ += lit.size();
    return value;
  }

  Result<Json> ParseNumber() {
    const size_t start = pos_;
    bool is_double = false;
    if (Eat('-')) {
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (text_[start] == '-' && pos_ == start + 1)) {
      return Err("invalid number");
    }
    const std::string tok = text_.substr(start, pos_ - start);
    if (is_double) {
      return Json(std::strtod(tok.c_str(), nullptr));
    }
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(tok.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') return Err("invalid integer");
    return Json(static_cast<int64_t>(v));
  }

  Result<std::string> ParseString() {
    if (!Eat('"')) return Err("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Err("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Err("short \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code += static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code += static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Err("invalid \\u escape");
              }
            }
            // UTF-8 encode (profile strings are ASCII in practice; this
            // keeps arbitrary escaped input lossless for the BMP).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Err("unknown escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return Err("unterminated string");
  }

  Result<Json> ParseArray() {
    if (!Eat('[')) return Err("expected '['");
    Json arr = Json::Array();
    SkipWs();
    if (Eat(']')) return arr;
    while (true) {
      SkipWs();
      REX_ASSIGN_OR_RETURN(Json v, ParseValue());
      arr.Append(std::move(v));
      SkipWs();
      if (Eat(']')) return arr;
      if (!Eat(',')) return Err("expected ',' or ']'");
    }
  }

  Result<Json> ParseObject() {
    if (!Eat('{')) return Err("expected '{'");
    Json obj = Json::Object();
    SkipWs();
    if (Eat('}')) return obj;
    while (true) {
      SkipWs();
      REX_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWs();
      if (!Eat(':')) return Err("expected ':'");
      SkipWs();
      REX_ASSIGN_OR_RETURN(Json v, ParseValue());
      obj.Set(key, std::move(v));
      SkipWs();
      if (Eat('}')) return obj;
      if (!Eat(',')) return Err("expected ',' or '}'");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Json> Json::Parse(const std::string& text) {
  return Parser(text).Run();
}

}  // namespace rex
