// Minimal dependency-free JSON: a value tree with a writer (Dump) and a
// strict parser (Parse).
//
// Built for the observability layer: QueryProfile serialization, the
// BENCH_<name>.json run reports, and the golden-schema checks in tests.
// Objects preserve insertion order so emitted reports are stable and
// diffable; numbers distinguish integers from doubles so counters survive a
// round-trip exactly.
#ifndef REX_OBS_JSON_H_
#define REX_OBS_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace rex {

class Json {
 public:
  enum class Type : uint8_t {
    kNull = 0,
    kBool,
    kInt,
    kDouble,
    kString,
    kArray,
    kObject,
  };

  Json() : type_(Type::kNull) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Json(bool v) : type_(Type::kBool), bool_(v) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Json(int64_t v) : type_(Type::kInt), int_(v) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Json(int v) : type_(Type::kInt), int_(v) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Json(double v) : type_(Type::kDouble), double_(v) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Json(std::string v) : type_(Type::kString), string_(std::move(v)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Json(const char* v) : type_(Type::kString), string_(v) {}

  static Json Array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json Object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool() const { return bool_; }
  int64_t AsInt() const {
    return type_ == Type::kDouble ? static_cast<int64_t>(double_) : int_;
  }
  double AsDouble() const {
    return type_ == Type::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& AsString() const { return string_; }

  /// Array/object element count; 0 for scalars.
  size_t size() const {
    return type_ == Type::kArray ? items_.size() : members_.size();
  }

  // -- array ---------------------------------------------------------------
  void Append(Json v) { items_.push_back(std::move(v)); }
  const Json& at(size_t i) const { return items_[i]; }
  const std::vector<Json>& items() const { return items_; }

  // -- object --------------------------------------------------------------
  /// Inserts (or replaces) a member, preserving first-insertion order.
  void Set(const std::string& key, Json v);
  bool Has(const std::string& key) const { return Find(key) != nullptr; }
  /// Null-object reference if absent (so chained lookups don't crash).
  const Json& Get(const std::string& key) const;
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }

  /// Serializes. indent < 0: compact one-line form; otherwise pretty-print
  /// with `indent` spaces per level.
  std::string Dump(int indent = 2) const;

  /// Strict parse of a complete JSON document (trailing garbage is an
  /// error). Numbers with '.', 'e', or 'E' become kDouble, others kInt.
  static Result<Json> Parse(const std::string& text);

 private:
  const Json* Find(const std::string& key) const;
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<Json> items_;                             // kArray
  std::vector<std::pair<std::string, Json>> members_;   // kObject
};

}  // namespace rex

#endif  // REX_OBS_JSON_H_
