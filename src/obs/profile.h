// Structured per-run query profiles (the observability layer's core
// artifact).
//
// The paper's evaluation is built entirely on per-run measurements:
// Δ-set cardinality per stratum (Fig. 3), per-node bytes shipped
// (Fig. 11), recovery-phase timing (Fig. 12). The driver assembles a
// QueryProfile after every Cluster::Run so those numbers exist as a
// machine-readable artifact of each run rather than ad-hoc printf series,
// and the bench binaries serialize them into BENCH_<name>.json for the
// perf trajectory.
#ifndef REX_OBS_PROFILE_H_
#define REX_OBS_PROFILE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "obs/json.h"

namespace rex {

/// One recursion step as the driver saw it.
struct StratumProfile {
  int stratum = 0;
  double seconds = 0;
  int64_t bytes_sent = 0;      // cross-worker bytes during this stratum
  int64_t delta_tuples = 0;    // Δᵢ cardinality: tuples derived (all fixpoints)
  int64_t changed_tuples = 0;  // tuples whose tracked value changed
  int64_t state_size = 0;      // mutable-set size after the stratum
  double max_change = 0;       // largest numeric change observed
};

/// Δ-set size per stratum for one fixpoint operator (Fig. 3's per-algorithm
/// Δᵢ series, split out per fixpoint when a plan has several).
struct FixpointStratumProfile {
  int fixpoint_id = 0;
  int stratum = 0;
  int64_t delta_tuples = 0;
  int64_t state_size = 0;
};

/// Per-port operator execution stats, collected worker-side.
struct OperatorPortProfile {
  int port = 0;
  int64_t batches = 0;
  int64_t tuples = 0;
  int64_t puncts = 0;
  int64_t consume_nanos = 0;  // inclusive of downstream push time
};

struct OperatorProfile {
  int worker = 0;
  int op_id = 0;
  std::string name;
  int64_t deltas_emitted = 0;
  std::vector<OperatorPortProfile> ports;
};

/// One recovery pass (a Recover retry loop iteration): what ran and how
/// long it took (Fig. 12's recovery-phase timing).
struct RecoveryPassProfile {
  int pass = 0;  // 1-based across the whole run
  double seconds = 0;
  std::string strategy;    // "restart" | "incremental" | "replay"
  int resume_stratum = 0;  // stratum the run resumed at afterwards
  int live_workers = 0;
  int revived_workers = 0;
};

struct WorkerProfile {
  int worker = 0;
  bool live_at_end = true;
  int64_t bytes_sent = 0;  // cross-worker bytes (Fig. 11's per-node meter)
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, TimerStats>> timers;
};

struct QueryProfile {
  static constexpr int kSchemaVersion = 1;

  std::string name;  // series / run label (benches fill this in)
  double total_seconds = 0;
  int strata_executed = 0;
  bool recovered = false;
  int recoveries = 0;

  std::vector<StratumProfile> strata;
  std::vector<FixpointStratumProfile> fixpoint_deltas;
  std::vector<WorkerProfile> workers;
  /// bytes_matrix[from][to]: cross-worker bytes per (sender, receiver).
  std::vector<std::vector<int64_t>> bytes_matrix;
  std::vector<OperatorProfile> operators;
  std::vector<RecoveryPassProfile> recovery_passes;

  int64_t checkpoint_bytes = 0;
  int64_t checkpoint_tuples = 0;
  int64_t recovery_refetch_bytes = 0;

  /// Failure-detection and delivery-protocol meters (Fig. 12 reports the
  /// detection component of recovery latency explicitly).
  int64_t detection_latency_ticks = 0;  // probe rounds spent noticing deaths
  int64_t retransmits = 0;              // sends retried after a lossy link
  int64_t checkpoint_repairs = 0;       // copies rebuilt after checksum fail

  /// Delta-coalescing meters (Fig. 3/12 honesty check: the Δ cardinalities
  /// and bytes the run reports are the net sets actually shipped).
  int64_t tuples_sent = 0;         // deltas that crossed the network
  int64_t deltas_coalesced = 0;    // deltas folded away before shipping
  int64_t coalesce_bytes_saved = 0;  // wire bytes the folding saved

  /// Columnar-plane meters: rows a vectorized batch kernel handled vs rows
  /// that fell back to the scalar path (the ablation benches assert the
  /// fast path actually engaged).
  int64_t batch_rows = 0;
  int64_t batch_fallback_rows = 0;

  /// Differential-compression meters (Fig. 11's raw-vs-shipped ablation):
  /// checkpoint epochs before/after delta-chain encoding, and packed wire
  /// runs before/after edge-delta encoding. raw == stored/compressed when
  /// the codec is off or never profitable.
  int64_t ckpt_raw_bytes = 0;
  int64_t ckpt_stored_bytes = 0;
  int64_t run_raw_bytes = 0;
  int64_t run_compressed_bytes = 0;

  Json ToJson() const;
};

/// Schema check shared by the golden-sample test and downstream tooling:
/// verifies that `profile` (one element of a BENCH report's "runs" array,
/// or a bare profile) has every required field with the right JSON type.
Status ValidateProfileJson(const Json& profile);

/// Validates a whole BENCH_<name>.json document (bench/schema_version/runs,
/// then every run's profile schema).
Status ValidateBenchReportJson(const Json& report);

/// Serializes a bench report {bench, schema_version, runs:[profile...]}.
Json BenchReportToJson(const std::string& bench_name,
                       const std::vector<QueryProfile>& runs);

/// Writes the bench report to `path` (pretty-printed, trailing newline).
Status WriteBenchReportFile(const std::string& path,
                            const std::string& bench_name,
                            const std::vector<QueryProfile>& runs);

}  // namespace rex

#endif  // REX_OBS_PROFILE_H_
