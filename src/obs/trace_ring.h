// A bounded, thread-safe ring buffer of runtime trace events.
//
// Each worker node owns one (message dispatch, control verbs, checkpoint
// writes) and the cluster driver owns one (crash/restore injection,
// recovery phases, stratum starts). The ring is sized for post-mortems, not
// full tracing: old events are overwritten and the drop count is kept, so a
// dump always shows the *last* N things that happened before an error. The
// chaos harness asserts on ring contents to verify recovery control flow.
#ifndef REX_OBS_TRACE_RING_H_
#define REX_OBS_TRACE_RING_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace rex {

struct TraceEvent {
  enum class Kind : uint8_t {
    kDispatchData = 0,   // a=target_op, b=target_port, n=tuples
    kDispatchPunct,      // a=target_op, b=target_port, n=stratum
    kControl,            // a=control verb (ControlMsg::Kind), n=stratum
    kCheckpointWrite,    // a=fixpoint id, n=Δ tuples checkpointed
    kError,              // detail=status message
    kCrash,              // a=victim worker
    kRestore,            // a=revived worker
    kRecoverBegin,       // a=pass index, n=live workers
    kRecoverEnd,         // a=pass index, n=resume stratum
    kStratumStart,       // n=stratum
  };

  uint64_t seq = 0;  // monotonically increasing per ring
  Kind kind = Kind::kDispatchData;
  int a = 0;
  int b = 0;
  int64_t n = 0;
  std::string detail;

  std::string ToString() const;
};

const char* TraceEventKindName(TraceEvent::Kind kind);

class TraceRing {
 public:
  explicit TraceRing(std::string owner, size_t capacity = 256);

  void Record(TraceEvent::Kind kind, int a = 0, int b = 0, int64_t n = 0,
              std::string detail = {});

  /// Retained events, oldest first.
  std::vector<TraceEvent> Events() const;
  /// Events of one kind, oldest first (post-mortem filtering).
  std::vector<TraceEvent> EventsOfKind(TraceEvent::Kind kind) const;

  /// Total events ever recorded (including overwritten ones).
  uint64_t total_recorded() const;
  /// Events lost to capacity.
  uint64_t dropped() const;
  size_t capacity() const { return capacity_; }
  const std::string& owner() const { return owner_; }

  /// Multi-line human-readable dump of the retained tail, for error logs.
  std::string Dump() const;

  void Clear();

 private:
  const std::string owner_;
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;  // ring_[seq % capacity_]
  uint64_t next_seq_ = 0;
};

}  // namespace rex

#endif  // REX_OBS_TRACE_RING_H_
