#include "rql/parser.h"

#include "rql/lexer.h"

namespace rex {
namespace rql {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> ParseQuery() {
    Query q;
    if (Peek().IsKeyword("REGISTER")) {
      Next();
      if (Peek().type != TokenType::kIdentifier) {
        return Err("REGISTER expects a standing-query name");
      }
      q.register_name = Next().text;
      REX_RETURN_NOT_OK(Expect("AS"));
    }
    if (Peek().IsKeyword("WITH")) {
      REX_ASSIGN_OR_RETURN(auto rec, ParseRecursive());
      q.recursive = std::make_shared<RecursiveQuery>(std::move(rec));
    } else {
      REX_ASSIGN_OR_RETURN(SelectStmt sel, ParseSelect());
      q.select = std::make_shared<SelectStmt>(std::move(sel));
    }
    if (Peek().type != TokenType::kEnd) {
      return Err("trailing input after query");
    }
    return q;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    size_t i = pos_ + static_cast<size_t>(ahead);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  Token Next() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool Accept(const char* symbol_or_kw) {
    if (Peek().IsSymbol(symbol_or_kw) || Peek().IsKeyword(symbol_or_kw)) {
      Next();
      return true;
    }
    return false;
  }
  Status Expect(const char* what) {
    if (Accept(what)) return Status::OK();
    return Err(std::string("expected '") + what + "'");
  }
  Status Err(const std::string& msg) const {
    return Status::ParseError(msg + " near offset " +
                              std::to_string(Peek().position) + " ('" +
                              Peek().text + "')");
  }
  Result<std::string> ExpectIdent() {
    if (Peek().type != TokenType::kIdentifier) {
      return Err("expected identifier");
    }
    return Next().text;
  }

  // WITH R (c1, c2) AS ( base ) UNION [ALL] UNTIL FIXPOINT BY k ( step )
  Result<RecursiveQuery> ParseRecursive() {
    RecursiveQuery rec;
    REX_RETURN_NOT_OK(Expect("WITH"));
    REX_ASSIGN_OR_RETURN(rec.relation, ExpectIdent());
    if (Accept("(")) {
      do {
        REX_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
        rec.columns.push_back(std::move(col));
      } while (Accept(","));
      REX_RETURN_NOT_OK(Expect(")"));
    }
    REX_RETURN_NOT_OK(Expect("AS"));
    REX_RETURN_NOT_OK(Expect("("));
    REX_ASSIGN_OR_RETURN(SelectStmt base, ParseSelect());
    rec.base = std::make_shared<SelectStmt>(std::move(base));
    REX_RETURN_NOT_OK(Expect(")"));
    REX_RETURN_NOT_OK(Expect("UNION"));
    rec.union_all = Accept("ALL");
    REX_RETURN_NOT_OK(Expect("UNTIL"));
    REX_RETURN_NOT_OK(Expect("FIXPOINT"));
    REX_RETURN_NOT_OK(Expect("BY"));
    REX_ASSIGN_OR_RETURN(rec.fixpoint_key, ExpectIdent());
    if (Accept("USING")) {
      REX_ASSIGN_OR_RETURN(rec.while_handler, ExpectIdent());
    }
    REX_RETURN_NOT_OK(Expect("("));
    REX_ASSIGN_OR_RETURN(SelectStmt step, ParseSelect());
    rec.step = std::make_shared<SelectStmt>(std::move(step));
    REX_RETURN_NOT_OK(Expect(")"));
    return rec;
  }

  Result<SelectStmt> ParseSelect() {
    SelectStmt stmt;
    REX_RETURN_NOT_OK(Expect("SELECT"));
    do {
      REX_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      stmt.items.push_back(std::move(item));
    } while (Accept(","));
    REX_RETURN_NOT_OK(Expect("FROM"));
    do {
      REX_ASSIGN_OR_RETURN(FromItem item, ParseFromItem());
      stmt.from.push_back(std::move(item));
    } while (Accept(","));
    if (Accept("WHERE")) {
      REX_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    if (Accept("GROUP")) {
      REX_RETURN_NOT_OK(Expect("BY"));
      do {
        REX_ASSIGN_OR_RETURN(AstExprPtr e, ParseExpr());
        stmt.group_by.push_back(std::move(e));
      } while (Accept(","));
    }
    return stmt;
  }

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    REX_ASSIGN_OR_RETURN(item.expr, ParseExpr());
    // Delta projection: F(args).{a, b}
    if (Peek().IsSymbol(".") && Peek(1).IsSymbol("{")) {
      if (item.expr->kind != AstExpr::Kind::kCall) {
        return Err(".{...} projection requires a function call");
      }
      Next();  // .
      Next();  // {
      do {
        REX_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
        item.delta_cols.push_back(std::move(col));
      } while (Accept(","));
      REX_RETURN_NOT_OK(Expect("}"));
    }
    if (Accept("AS")) {
      REX_ASSIGN_OR_RETURN(item.alias, ExpectIdent());
    } else if (Peek().type == TokenType::kIdentifier &&
               item.expr->kind == AstExpr::Kind::kColumn) {
      // implicit alias: `col name`
      item.alias = Next().text;
    }
    return item;
  }

  Result<FromItem> ParseFromItem() {
    FromItem item;
    if (Accept("(")) {
      REX_ASSIGN_OR_RETURN(SelectStmt sub, ParseSelect());
      item.subquery = std::make_shared<SelectStmt>(std::move(sub));
      REX_RETURN_NOT_OK(Expect(")"));
    } else {
      REX_ASSIGN_OR_RETURN(item.table, ExpectIdent());
    }
    if (Peek().type == TokenType::kIdentifier) {
      item.alias = Next().text;
    }
    return item;
  }

  // Precedence: OR < AND < NOT < comparison < additive < multiplicative
  // < unary < primary.
  Result<AstExprPtr> ParseExpr() { return ParseOr(); }

  Result<AstExprPtr> ParseOr() {
    REX_ASSIGN_OR_RETURN(AstExprPtr lhs, ParseAnd());
    while (Peek().IsKeyword("OR")) {
      Next();
      REX_ASSIGN_OR_RETURN(AstExprPtr rhs, ParseAnd());
      lhs = MakeBinary("OR", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<AstExprPtr> ParseAnd() {
    REX_ASSIGN_OR_RETURN(AstExprPtr lhs, ParseNot());
    while (Peek().IsKeyword("AND")) {
      Next();
      REX_ASSIGN_OR_RETURN(AstExprPtr rhs, ParseNot());
      lhs = MakeBinary("AND", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<AstExprPtr> ParseNot() {
    if (Peek().IsKeyword("NOT")) {
      Next();
      REX_ASSIGN_OR_RETURN(AstExprPtr inner, ParseNot());
      auto e = std::make_shared<AstExpr>();
      e->kind = AstExpr::Kind::kNot;
      e->args.push_back(std::move(inner));
      return e;
    }
    return ParseComparison();
  }

  Result<AstExprPtr> ParseComparison() {
    REX_ASSIGN_OR_RETURN(AstExprPtr lhs, ParseAdditive());
    for (const char* op : {"=", "<>", "<=", ">=", "<", ">"}) {
      if (Peek().IsSymbol(op)) {
        Next();
        REX_ASSIGN_OR_RETURN(AstExprPtr rhs, ParseAdditive());
        return MakeBinary(op, std::move(lhs), std::move(rhs));
      }
    }
    return lhs;
  }

  Result<AstExprPtr> ParseAdditive() {
    REX_ASSIGN_OR_RETURN(AstExprPtr lhs, ParseMultiplicative());
    while (Peek().IsSymbol("+") || Peek().IsSymbol("-")) {
      std::string op = Next().text;
      REX_ASSIGN_OR_RETURN(AstExprPtr rhs, ParseMultiplicative());
      lhs = MakeBinary(op.c_str(), std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<AstExprPtr> ParseMultiplicative() {
    REX_ASSIGN_OR_RETURN(AstExprPtr lhs, ParseUnary());
    while (Peek().IsSymbol("*") || Peek().IsSymbol("/") ||
           Peek().IsSymbol("%")) {
      std::string op = Next().text;
      REX_ASSIGN_OR_RETURN(AstExprPtr rhs, ParseUnary());
      lhs = MakeBinary(op.c_str(), std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<AstExprPtr> ParseUnary() {
    if (Peek().IsSymbol("-")) {
      Next();
      REX_ASSIGN_OR_RETURN(AstExprPtr inner, ParseUnary());
      auto zero = std::make_shared<AstExpr>();
      zero->kind = AstExpr::Kind::kLiteral;
      zero->literal = Value(int64_t{0});
      return MakeBinary("-", std::move(zero), std::move(inner));
    }
    return ParsePrimary();
  }

  Result<AstExprPtr> ParsePrimary() {
    auto e = std::make_shared<AstExpr>();
    const Token& tok = Peek();
    switch (tok.type) {
      case TokenType::kInteger:
        e->kind = AstExpr::Kind::kLiteral;
        e->literal = Value(Next().int_value);
        return e;
      case TokenType::kFloat:
        e->kind = AstExpr::Kind::kLiteral;
        e->literal = Value(Next().float_value);
        return e;
      case TokenType::kString:
        e->kind = AstExpr::Kind::kLiteral;
        e->literal = Value(Next().text);
        return e;
      case TokenType::kKeyword:
        if (tok.text == "NULL") {
          Next();
          e->kind = AstExpr::Kind::kLiteral;
          e->literal = Value::Null();
          return e;
        }
        if (tok.text == "TRUE" || tok.text == "FALSE") {
          e->kind = AstExpr::Kind::kLiteral;
          e->literal = Value(Next().text == "TRUE");
          return e;
        }
        return Err("unexpected keyword in expression");
      case TokenType::kSymbol:
        if (Accept("(")) {
          REX_ASSIGN_OR_RETURN(AstExprPtr inner, ParseExpr());
          REX_RETURN_NOT_OK(Expect(")"));
          return inner;
        }
        return Err("unexpected symbol in expression");
      case TokenType::kIdentifier: {
        std::string first = Next().text;
        if (Accept("(")) {  // function call
          e->kind = AstExpr::Kind::kCall;
          e->name = first;
          if (Peek().IsSymbol("*")) {
            Next();
            e->is_star = true;
          } else if (!Peek().IsSymbol(")")) {
            do {
              REX_ASSIGN_OR_RETURN(AstExprPtr arg, ParseExpr());
              e->args.push_back(std::move(arg));
            } while (Accept(","));
          }
          REX_RETURN_NOT_OK(Expect(")"));
          return e;
        }
        e->kind = AstExpr::Kind::kColumn;
        // Qualified column t.c — but NOT t.{...} (delta projection).
        if (Peek().IsSymbol(".") && Peek(1).type == TokenType::kIdentifier) {
          Next();
          e->qualifier = first;
          e->name = Next().text;
        } else {
          e->name = first;
        }
        return e;
      }
      case TokenType::kEnd:
        return Err("unexpected end of input in expression");
    }
    return Err("unparsable expression");
  }

  static AstExprPtr MakeBinary(const char* op, AstExprPtr lhs,
                               AstExprPtr rhs) {
    auto e = std::make_shared<AstExpr>();
    e->kind = AstExpr::Kind::kBinary;
    e->op = op;
    e->lhs = std::move(lhs);
    e->rhs = std::move(rhs);
    return e;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Query> Parse(const std::string& input) {
  REX_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(input));
  Parser parser(std::move(tokens));
  return parser.ParseQuery();
}

}  // namespace rql
}  // namespace rex
