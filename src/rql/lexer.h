// RQL lexer: SQL-style tokens plus the delta-projection syntax
// `F(args).{a, b}` of §3.5.
#ifndef REX_RQL_LEXER_H_
#define REX_RQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace rex {
namespace rql {

enum class TokenType : uint8_t {
  kKeyword,     // SELECT, FROM, WHERE, GROUP, BY, AS, WITH, UNION, ALL,
                // UNTIL, FIXPOINT, AND, OR, NOT, NULL, TRUE, FALSE
  kIdentifier,  // names (case-preserved)
  kInteger,
  kFloat,
  kString,      // 'quoted'
  kSymbol,      // ( ) , . { } * + - / % = < > <= >= <> !=
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // uppercased for keywords, verbatim otherwise
  int64_t int_value = 0;
  double float_value = 0;
  int position = 0;  // byte offset, for error messages

  bool IsKeyword(const char* kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool IsSymbol(const char* s) const {
    return type == TokenType::kSymbol && text == s;
  }
};

/// Tokenizes an RQL string. Comments (`-- ...`) are skipped.
Result<std::vector<Token>> Lex(const std::string& input);

}  // namespace rql
}  // namespace rex

#endif  // REX_RQL_LEXER_H_
