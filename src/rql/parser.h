// Recursive-descent parser for RQL.
#ifndef REX_RQL_PARSER_H_
#define REX_RQL_PARSER_H_

#include <string>

#include "rql/ast.h"

namespace rex {
namespace rql {

/// Parses one RQL statement.
Result<Query> Parse(const std::string& input);

}  // namespace rql
}  // namespace rex

#endif  // REX_RQL_PARSER_H_
