#include "rql/compiler.h"

#include <algorithm>
#include <set>

#include "rql/parser.h"

namespace rex {
namespace rql {

namespace {

// --------------------------------------------------------------------------
// Name resolution
// --------------------------------------------------------------------------

struct ScopeEntry {
  std::string binding;  // alias or table name
  std::string table;    // underlying base table ("" for derived)
  Schema schema;
  int offset = 0;  // column offset in the combined row
};

struct Scope {
  std::vector<ScopeEntry> entries;

  Result<std::pair<int, int>> Resolve(const std::string& qualifier,
                                      const std::string& name) const {
    int found_entry = -1;
    int found_col = -1;
    for (size_t e = 0; e < entries.size(); ++e) {
      if (!qualifier.empty() && entries[e].binding != qualifier) continue;
      auto idx = entries[e].schema.IndexOf(name);
      if (!idx.ok()) continue;
      if (found_entry >= 0) {
        return Status::InvalidArgument("ambiguous column '" + name + "'");
      }
      found_entry = static_cast<int>(e);
      found_col = *idx;
    }
    if (found_entry < 0) {
      return Status::NotFound(
          "unknown column '" +
          (qualifier.empty() ? name : qualifier + "." + name) + "'");
    }
    return std::make_pair(found_entry, found_col);
  }
};

Result<BinOp> BinOpFromToken(const std::string& op) {
  if (op == "+") return BinOp::kAdd;
  if (op == "-") return BinOp::kSub;
  if (op == "*") return BinOp::kMul;
  if (op == "/") return BinOp::kDiv;
  if (op == "%") return BinOp::kMod;
  if (op == "=") return BinOp::kEq;
  if (op == "<>") return BinOp::kNe;
  if (op == "<") return BinOp::kLt;
  if (op == "<=") return BinOp::kLe;
  if (op == ">") return BinOp::kGt;
  if (op == ">=") return BinOp::kGe;
  if (op == "AND") return BinOp::kAnd;
  if (op == "OR") return BinOp::kOr;
  return Status::ParseError("unknown operator '" + op + "'");
}

/// Binds an AST expression against a scope; column indexes are
/// entry-offset + column (so a single-entry scope with offset 0 produces
/// table-local indexes). Scalar UDF calls must exist in the registry.
Result<ExprPtr> BindExpr(const AstExpr& e, const Scope& scope,
                         const UdfRegistry* udfs) {
  switch (e.kind) {
    case AstExpr::Kind::kColumn: {
      REX_ASSIGN_OR_RETURN(auto loc, scope.Resolve(e.qualifier, e.name));
      return Expr::Column(scope.entries[static_cast<size_t>(loc.first)].offset +
                              loc.second,
                          e.name);
    }
    case AstExpr::Kind::kLiteral:
      return Expr::Const(e.literal);
    case AstExpr::Kind::kBinary: {
      REX_ASSIGN_OR_RETURN(BinOp op, BinOpFromToken(e.op));
      REX_ASSIGN_OR_RETURN(ExprPtr lhs, BindExpr(*e.lhs, scope, udfs));
      REX_ASSIGN_OR_RETURN(ExprPtr rhs, BindExpr(*e.rhs, scope, udfs));
      return Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    case AstExpr::Kind::kNot: {
      REX_ASSIGN_OR_RETURN(ExprPtr inner, BindExpr(*e.args[0], scope, udfs));
      return Expr::Not(std::move(inner));
    }
    case AstExpr::Kind::kCall: {
      if (udfs == nullptr || !udfs->HasScalar(e.name)) {
        return Status::NotFound("no scalar UDF named '" + e.name + "'");
      }
      std::vector<ExprPtr> args;
      for (const AstExprPtr& a : e.args) {
        REX_ASSIGN_OR_RETURN(ExprPtr bound, BindExpr(*a, scope, udfs));
        args.push_back(std::move(bound));
      }
      return Expr::Call(e.name, std::move(args));
    }
  }
  return Status::Internal("unbound expression kind");
}

void SplitConjuncts(const AstExprPtr& e, std::vector<AstExprPtr>* out) {
  if (e->kind == AstExpr::Kind::kBinary && e->op == "AND") {
    SplitConjuncts(e->lhs, out);
    SplitConjuncts(e->rhs, out);
    return;
  }
  out->push_back(e);
}

/// Entries referenced by an expression (via column refs).
Status CollectEntries(const AstExpr& e, const Scope& scope,
                      std::set<int>* entries) {
  switch (e.kind) {
    case AstExpr::Kind::kColumn: {
      REX_ASSIGN_OR_RETURN(auto loc, scope.Resolve(e.qualifier, e.name));
      entries->insert(loc.first);
      return Status::OK();
    }
    case AstExpr::Kind::kLiteral:
      return Status::OK();
    case AstExpr::Kind::kBinary:
      REX_RETURN_NOT_OK(CollectEntries(*e.lhs, scope, entries));
      return CollectEntries(*e.rhs, scope, entries);
    case AstExpr::Kind::kNot:
    case AstExpr::Kind::kCall:
      for (const AstExprPtr& a : e.args) {
        REX_RETURN_NOT_OK(CollectEntries(*a, scope, entries));
      }
      return Status::OK();
  }
  return Status::OK();
}

bool IsBuiltinAggName(const std::string& name) {
  return AggKindFromName(name).ok();
}

/// Finds the unique aggregate call inside an item expression; replaces it
/// conceptually with a placeholder. Returns null if none.
const AstExpr* FindAggCall(const AstExpr& e) {
  if (e.kind == AstExpr::Kind::kCall && IsBuiltinAggName(e.name)) return &e;
  const AstExpr* found = nullptr;
  auto visit = [&found](const AstExpr& child) {
    const AstExpr* f = FindAggCall(child);
    if (f != nullptr) found = f;
  };
  if (e.lhs) visit(*e.lhs);
  if (e.rhs) visit(*e.rhs);
  for (const AstExprPtr& a : e.args) visit(*a);
  return found;
}

/// Binds an item expression where the aggregate call is replaced by a
/// column reference to `agg_column`.
Result<ExprPtr> BindWithAggPlaceholder(const AstExpr& e,
                                       const AstExpr* agg_call,
                                       int agg_column, const Scope& scope,
                                       const UdfRegistry* udfs) {
  if (&e == agg_call) return Expr::Column(agg_column, "agg");
  switch (e.kind) {
    case AstExpr::Kind::kColumn:
    case AstExpr::Kind::kLiteral:
      return BindExpr(e, scope, udfs);
    case AstExpr::Kind::kBinary: {
      REX_ASSIGN_OR_RETURN(BinOp op, BinOpFromToken(e.op));
      REX_ASSIGN_OR_RETURN(
          ExprPtr lhs,
          BindWithAggPlaceholder(*e.lhs, agg_call, agg_column, scope, udfs));
      REX_ASSIGN_OR_RETURN(
          ExprPtr rhs,
          BindWithAggPlaceholder(*e.rhs, agg_call, agg_column, scope, udfs));
      return Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    case AstExpr::Kind::kNot: {
      REX_ASSIGN_OR_RETURN(ExprPtr inner,
                           BindWithAggPlaceholder(*e.args[0], agg_call,
                                                  agg_column, scope, udfs));
      return Expr::Not(std::move(inner));
    }
    case AstExpr::Kind::kCall: {
      std::vector<ExprPtr> args;
      for (const AstExprPtr& a : e.args) {
        REX_ASSIGN_OR_RETURN(ExprPtr bound,
                             BindWithAggPlaceholder(*a, agg_call, agg_column,
                                                    scope, udfs));
        args.push_back(std::move(bound));
      }
      return Expr::Call(e.name, std::move(args));
    }
  }
  return Status::Internal("unbound expression kind");
}

/// Synthesizes table statistics from the storage layer when the caller
/// provides none.
StatsCatalog SynthesizeStats(const std::vector<TableRef>& tables,
                             const StorageCatalog& storage) {
  StatsCatalog stats;
  for (const TableRef& t : tables) {
    TableStats ts;
    auto table = storage.GetTable(t.name);
    if (table.ok()) {
      ts.rows = static_cast<int64_t>((*table)->num_rows());
      if (!(*table)->rows().empty()) {
        ts.avg_row_bytes =
            static_cast<double>((*table)->rows().front().ByteSize());
      }
    }
    stats.SetTableStats(t.name, ts);
  }
  return stats;
}

// --------------------------------------------------------------------------
// Flat queries
// --------------------------------------------------------------------------

class FlatCompiler {
 public:
  FlatCompiler(const SelectStmt& stmt, const CompileContext& ctx)
      : stmt_(stmt), ctx_(ctx) {}

  Result<CompiledQuery> Compile() {
    REX_RETURN_NOT_OK(BuildScope());
    REX_RETURN_NOT_OK(ClassifyWhere());
    // Does the select list use a UDA?
    for (const SelectItem& item : stmt_.items) {
      if (item.expr->kind == AstExpr::Kind::kCall &&
          ctx_.udfs->HasUda(item.expr->name)) {
        return CompileFlatUda();
      }
    }
    REX_RETURN_NOT_OK(ClassifySelect());
    StatsCatalog synth;
    const StatsCatalog* stats = ctx_.stats;
    if (stats == nullptr) {
      synth = SynthesizeStats(block_.tables, *ctx_.storage);
      stats = &synth;
    }
    Optimizer optimizer(stats, ctx_.calibration, ctx_.optimizer_options);
    REX_ASSIGN_OR_RETURN(OptimizedQuery optimized,
                         optimizer.Optimize(block_));
    CompiledQuery out;
    out.spec = std::move(optimized.spec);
    out.decisions = std::move(optimized.decisions);
    out.output_schema = output_schema_;
    return out;
  }

 private:
  Status BuildScope() {
    int offset = 0;
    for (const FromItem& item : stmt_.from) {
      if (item.subquery) {
        return Status::Unsupported(
            "nested subqueries are supported in recursive steps only");
      }
      REX_ASSIGN_OR_RETURN(auto table, ctx_.storage->GetTable(item.table));
      ScopeEntry entry;
      entry.binding = item.alias.empty() ? item.table : item.alias;
      entry.table = item.table;
      entry.schema = table->schema();
      entry.offset = offset;
      offset += static_cast<int>(entry.schema.size());
      scope_.entries.push_back(entry);

      TableRef ref;
      ref.name = item.table;
      ref.schema = table->schema();
      ref.partition_column =
          table->schema().field(static_cast<size_t>(table->key_column()))
              .name;
      block_.tables.push_back(std::move(ref));
    }
    return Status::OK();
  }

  Status ClassifyWhere() {
    if (!stmt_.where) return Status::OK();
    std::vector<AstExprPtr> conjuncts;
    SplitConjuncts(stmt_.where, &conjuncts);
    for (const AstExprPtr& c : conjuncts) {
      // Equi-join between two different tables?
      if (c->kind == AstExpr::Kind::kBinary && c->op == "=" &&
          c->lhs->kind == AstExpr::Kind::kColumn &&
          c->rhs->kind == AstExpr::Kind::kColumn) {
        REX_ASSIGN_OR_RETURN(auto l,
                             scope_.Resolve(c->lhs->qualifier, c->lhs->name));
        REX_ASSIGN_OR_RETURN(auto r,
                             scope_.Resolve(c->rhs->qualifier, c->rhs->name));
        if (l.first != r.first) {
          JoinPredSpec j;
          j.left_table = scope_.entries[static_cast<size_t>(l.first)].table;
          j.left_column = c->lhs->name;
          j.right_table = scope_.entries[static_cast<size_t>(r.first)].table;
          j.right_column = c->rhs->name;
          block_.joins.push_back(std::move(j));
          continue;
        }
      }
      // Single-table predicate.
      std::set<int> entries;
      REX_RETURN_NOT_OK(CollectEntries(*c, scope_, &entries));
      if (entries.size() != 1) {
        return Status::Unsupported(
            "WHERE conjunct must be an equi-join or single-table "
            "predicate: " +
            c->ToString());
      }
      const ScopeEntry& entry =
          scope_.entries[static_cast<size_t>(*entries.begin())];
      PredicateSpec pred;
      pred.table = entry.table;
      if (c->kind == AstExpr::Kind::kCall && ctx_.udfs->HasScalar(c->name)) {
        // Expensive UDF predicate: leave placement to the optimizer.
        pred.udf = c->name;
        for (const AstExprPtr& a : c->args) {
          if (a->kind != AstExpr::Kind::kColumn) {
            return Status::Unsupported(
                "UDF predicate arguments must be columns");
          }
          pred.udf_args.push_back(a->name);
        }
      } else {
        // Bind table-locally (offset 0).
        Scope local;
        ScopeEntry le = entry;
        le.offset = 0;
        local.entries.push_back(le);
        REX_ASSIGN_OR_RETURN(pred.expr, BindExpr(*c, local, ctx_.udfs));
        REX_ASSIGN_OR_RETURN(ValueType vt,
                             InferType(*pred.expr, entry.schema,
                                       ctx_.udfs));
        if (vt != ValueType::kBool) {
          return Status::TypeError("WHERE predicate is not boolean: " +
                                   c->ToString());
        }
        pred.selectivity = c->op == "=" ? 0.1 : 0.4;
      }
      block_.predicates.push_back(std::move(pred));
    }
    return Status::OK();
  }

  Status ClassifySelect() {
    bool has_agg = false;
    for (const SelectItem& item : stmt_.items) {
      if (FindAggCall(*item.expr) != nullptr) has_agg = true;
    }
    if (!has_agg && stmt_.group_by.empty()) {
      // Pure projection.
      std::vector<Field> fields;
      for (const SelectItem& item : stmt_.items) {
        if (item.expr->kind != AstExpr::Kind::kColumn) {
          return Status::Unsupported(
              "non-aggregate select items must be plain columns");
        }
        REX_ASSIGN_OR_RETURN(
            auto loc, scope_.Resolve(item.expr->qualifier, item.expr->name));
        const ScopeEntry& e = scope_.entries[static_cast<size_t>(loc.first)];
        block_.project.emplace_back(e.table, item.expr->name);
        Field f;
        f.name = item.alias.empty() ? item.expr->name : item.alias;
        f.type = e.schema.field(static_cast<size_t>(loc.second)).type;
        fields.push_back(f);
      }
      output_schema_ = Schema(std::move(fields));
      return Status::OK();
    }

    AggQuerySpec agg;
    std::vector<Field> fields;
    for (const AstExprPtr& g : stmt_.group_by) {
      if (g->kind != AstExpr::Kind::kColumn) {
        return Status::Unsupported("GROUP BY must list plain columns");
      }
      REX_ASSIGN_OR_RETURN(auto loc, scope_.Resolve(g->qualifier, g->name));
      const ScopeEntry& e = scope_.entries[static_cast<size_t>(loc.first)];
      agg.group_by.emplace_back(e.table, g->name);
    }
    for (const SelectItem& item : stmt_.items) {
      const AstExpr& e = *item.expr;
      if (e.kind == AstExpr::Kind::kColumn) {
        // Must be a grouping column.
        REX_ASSIGN_OR_RETURN(auto loc, scope_.Resolve(e.qualifier, e.name));
        const ScopeEntry& entry =
            scope_.entries[static_cast<size_t>(loc.first)];
        bool is_key = false;
        for (const auto& [tab, col] : agg.group_by) {
          if (tab == entry.table && col == e.name) is_key = true;
        }
        if (!is_key) {
          return Status::InvalidArgument(
              "non-aggregate select column must appear in GROUP BY: " +
              e.name);
        }
        Field f;
        f.name = item.alias.empty() ? e.name : item.alias;
        f.type = entry.schema.field(static_cast<size_t>(loc.second)).type;
        fields.push_back(f);
        continue;
      }
      if (e.kind != AstExpr::Kind::kCall || !IsBuiltinAggName(e.name)) {
        return Status::Unsupported(
            "flat aggregate queries support built-in aggregates and "
            "grouping columns; got " +
            e.ToString());
      }
      AggQuerySpec::Item agg_item;
      REX_ASSIGN_OR_RETURN(agg_item.kind, AggKindFromName(e.name));
      if (e.is_star) {
        agg_item.table = "";
        agg_item.column = "";
      } else {
        if (e.args.size() != 1 ||
            e.args[0]->kind != AstExpr::Kind::kColumn) {
          return Status::Unsupported(
              "aggregate arguments must be a single column");
        }
        REX_ASSIGN_OR_RETURN(
            auto loc,
            scope_.Resolve(e.args[0]->qualifier, e.args[0]->name));
        agg_item.table = scope_.entries[static_cast<size_t>(loc.first)].table;
        agg_item.column = e.args[0]->name;
      }
      agg_item.output_name =
          item.alias.empty() ? e.ToString() : item.alias;
      Field f;
      f.name = agg_item.output_name;
      f.type = agg_item.kind == AggKind::kCount ? ValueType::kInt
                                                : ValueType::kDouble;
      fields.push_back(f);
      agg.items.push_back(std::move(agg_item));
    }
    block_.agg = std::move(agg);
    output_schema_ = Schema(std::move(fields));
    return Status::OK();
  }

  /// Single-table UDA aggregation (Fig 4's "REX UDF" configuration):
  /// scan -> filters -> local UDA -> rehash -> merge UDA -> sink. The UDA
  /// must be composable (its output feeds a second instance of itself).
  Result<CompiledQuery> CompileFlatUda() {
    if (scope_.entries.size() != 1 || !block_.joins.empty()) {
      return Status::Unsupported("UDA queries support a single table");
    }
    const SelectItem* uda_item = nullptr;
    for (const SelectItem& item : stmt_.items) {
      if (item.expr->kind == AstExpr::Kind::kCall &&
          ctx_.udfs->HasUda(item.expr->name)) {
        if (uda_item != nullptr) {
          return Status::Unsupported("one UDA per query block");
        }
        uda_item = &item;
      }
    }
    REX_ASSIGN_OR_RETURN(const Uda* uda,
                         ctx_.udfs->GetUda(uda_item->expr->name));
    const ScopeEntry& entry = scope_.entries[0];

    // Typecheck the UDA arguments against its declared inTypes (§3.3).
    std::vector<int> input_fields;
    for (size_t i = 0; i < uda_item->expr->args.size(); ++i) {
      const AstExprPtr& a = uda_item->expr->args[i];
      if (a->kind != AstExpr::Kind::kColumn) {
        return Status::Unsupported("UDA arguments must be columns");
      }
      REX_ASSIGN_OR_RETURN(auto loc, scope_.Resolve(a->qualifier, a->name));
      if (i < uda->in_schema.size()) {
        ValueType declared = uda->in_schema.field(i).type;
        ValueType actual =
            entry.schema.field(static_cast<size_t>(loc.second)).type;
        if (declared != ValueType::kNull && actual != declared &&
            !(declared == ValueType::kDouble && actual == ValueType::kInt)) {
          return Status::TypeError(
              "UDA " + uda->name + " argument " + std::to_string(i) +
              " expects " + ValueTypeName(declared) + ", got " +
              ValueTypeName(actual));
        }
      }
      input_fields.push_back(loc.second);
    }

    CompiledQuery out;
    ScanOp::Params scan;
    scan.table = entry.table;
    int top = out.spec.AddScan(scan);
    for (const PredicateSpec& pred : block_.predicates) {
      if (pred.expr) {
        top = out.spec.AddFilter(top, pred.expr);
      } else {
        std::vector<ExprPtr> args;
        for (const std::string& col : pred.udf_args) {
          REX_ASSIGN_OR_RETURN(int idx, entry.schema.IndexOf(col));
          args.push_back(Expr::Column(idx, col));
        }
        top = out.spec.AddFilter(top, Expr::Call(pred.udf, std::move(args)));
      }
    }
    // Local partial aggregation, then merge on one worker.
    const std::string partial_name =
        uda->pre_agg.empty() ? uda->name : uda->pre_agg;
    GroupByOp::Params local;
    local.uda = partial_name;
    local.uda_input_fields = input_fields;
    local.mode = GroupByOp::Mode::kStratum;
    top = out.spec.AddGroupBy(top, local);
    RehashOp::Params gather;  // empty keys: all partials to one worker
    top = out.spec.AddRehash(top, gather);
    GroupByOp::Params merge;
    merge.uda = uda->name;
    merge.mode = GroupByOp::Mode::kStratum;
    top = out.spec.AddGroupBy(top, merge);
    out.spec.AddSink(top);
    REX_RETURN_NOT_OK(out.spec.Validate());
    out.output_schema = uda->out_schema;
    return out;
  }

  const SelectStmt& stmt_;
  const CompileContext& ctx_;
  Scope scope_;
  QueryBlock block_;
  Schema output_schema_;
};

// --------------------------------------------------------------------------
// Recursive queries (the Listing 1 pattern)
// --------------------------------------------------------------------------

class RecursiveCompiler {
 public:
  RecursiveCompiler(const RecursiveQuery& rec, const CompileContext& ctx)
      : rec_(rec), ctx_(ctx) {}

  Result<CompiledQuery> Compile() {
    if (rec_.columns.empty()) {
      return Status::InvalidArgument(
          "recursive relation must declare its columns");
    }
    key_index_ = -1;
    for (size_t i = 0; i < rec_.columns.size(); ++i) {
      if (rec_.columns[i] == rec_.fixpoint_key) {
        key_index_ = static_cast<int>(i);
      }
    }
    if (key_index_ < 0) {
      return Status::InvalidArgument("FIXPOINT BY column '" +
                                     rec_.fixpoint_key +
                                     "' is not a declared column");
    }
    if (!rec_.while_handler.empty()) {
      REX_RETURN_NOT_OK(
          ctx_.udfs->GetWhileHandler(rec_.while_handler).status());
    }

    CompiledQuery out;
    REX_ASSIGN_OR_RETURN(int base, LowerBase(&out.spec));

    FixpointOp::Params fp;
    fp.key_fields = {key_index_};
    fp.while_handler = rec_.while_handler;
    if (rec_.columns.size() == 2) fp.value_field = 1 - key_index_;
    fixpoint_ = out.spec.AddFixpoint(base, fp);

    REX_ASSIGN_OR_RETURN(int tail, LowerStep(&out.spec));
    out.spec.ConnectRecursive(fixpoint_, tail);
    REX_RETURN_NOT_OK(out.spec.Validate());

    out.recursive = true;
    std::vector<Field> fields;
    for (const std::string& col : rec_.columns) {
      fields.push_back(Field{col, ValueType::kNull});
    }
    out.output_schema = Schema(std::move(fields));
    return out;
  }

 private:
  /// Base case: SELECT exprs FROM table [WHERE pred], rehashed by the
  /// fixpoint key.
  Result<int> LowerBase(PlanSpec* spec) {
    const SelectStmt& base = *rec_.base;
    if (base.from.size() != 1 || base.from[0].subquery) {
      return Status::Unsupported(
          "recursive base case must select from one base table");
    }
    if (base.items.size() != rec_.columns.size()) {
      return Status::InvalidArgument(
          "base case arity does not match declared columns");
    }
    REX_ASSIGN_OR_RETURN(auto table,
                         ctx_.storage->GetTable(base.from[0].table));
    Scope scope;
    ScopeEntry entry;
    entry.binding =
        base.from[0].alias.empty() ? base.from[0].table : base.from[0].alias;
    entry.table = base.from[0].table;
    entry.schema = table->schema();
    scope.entries.push_back(entry);

    ScanOp::Params scan;
    scan.table = base.from[0].table;
    int top = spec->AddScan(scan);
    if (base.where) {
      REX_ASSIGN_OR_RETURN(ExprPtr pred,
                           BindExpr(*base.where, scope, ctx_.udfs));
      top = spec->AddFilter(top, pred);
    }
    std::vector<ExprPtr> exprs;
    for (const SelectItem& item : base.items) {
      REX_ASSIGN_OR_RETURN(ExprPtr e, BindExpr(*item.expr, scope, ctx_.udfs));
      exprs.push_back(std::move(e));
    }
    top = spec->AddProject(top, std::move(exprs));
    RehashOp::Params rh;
    rh.key_fields = {key_index_};
    return spec->AddRehash(top, rh);
  }

  /// Recursive step: outer aggregation over an inner delta-join subquery.
  Result<int> LowerStep(PlanSpec* spec) {
    const SelectStmt& outer = *rec_.step;
    const SelectStmt* inner = nullptr;
    if (outer.from.size() == 1 && outer.from[0].subquery) {
      inner = outer.from[0].subquery.get();
    } else {
      return Status::Unsupported(
          "recursive step must aggregate over a nested delta-join "
          "subquery (Listing 1 pattern)");
    }
    REX_ASSIGN_OR_RETURN(auto join_out, LowerInnerJoin(*inner, spec));
    auto [join_node, handler_cols] = join_out;

    // Outer: SELECT g, <expr around agg(x)> ... GROUP BY g.
    if (outer.group_by.size() != 1 ||
        outer.group_by[0]->kind != AstExpr::Kind::kColumn) {
      return Status::Unsupported(
          "recursive step requires GROUP BY a single column");
    }
    const std::string& gcol = outer.group_by[0]->name;
    int gcol_idx = IndexIn(handler_cols, gcol);
    if (gcol_idx < 0) {
      return Status::NotFound("GROUP BY column '" + gcol +
                              "' is not produced by the delta join");
    }
    if (outer.items.size() != rec_.columns.size()) {
      return Status::InvalidArgument(
          "recursive step arity does not match declared columns");
    }
    if (outer.items[0].expr->kind != AstExpr::Kind::kColumn ||
        outer.items[0].expr->name != gcol) {
      return Status::Unsupported(
          "first item of the recursive step must be the grouping column");
    }

    // Aggregates (+ optional wrapping expressions).
    std::vector<GroupByOp::AggSpec> aggs;
    struct Wrapper {
      const AstExpr* expr;
      const AstExpr* agg_call;
    };
    std::vector<Wrapper> wrappers;
    bool needs_project = false;
    for (size_t i = 1; i < outer.items.size(); ++i) {
      const AstExpr& e = *outer.items[i].expr;
      const AstExpr* call = FindAggCall(e);
      if (call == nullptr) {
        return Status::Unsupported(
            "recursive step items after the key must aggregate");
      }
      GroupByOp::AggSpec spec_item;
      REX_ASSIGN_OR_RETURN(spec_item.kind, AggKindFromName(call->name));
      if (call->is_star) {
        spec_item.input_field = -1;
      } else {
        if (call->args.size() != 1 ||
            call->args[0]->kind != AstExpr::Kind::kColumn) {
          return Status::Unsupported("aggregate argument must be a column");
        }
        spec_item.input_field = IndexIn(handler_cols, call->args[0]->name);
        if (spec_item.input_field < 0) {
          return Status::NotFound("aggregate input '" + call->args[0]->name +
                                  "' is not produced by the delta join");
        }
      }
      spec_item.output_name = rec_.columns[i];
      if (&e != call) needs_project = true;
      wrappers.push_back(Wrapper{&e, call});
      aggs.push_back(spec_item);
    }

    int tail = join_node;
    // Combiner before the rehash (pre-aggregation pushdown; min/max/sum/
    // count are composable — avg would need the companion rewrite).
    bool composable = true;
    for (const auto& a : aggs) {
      if (a.kind == AggKind::kAvg) composable = false;
    }
    if (ctx_.recursive_preaggregate && composable) {
      GroupByOp::Params pre;
      pre.key_fields = {gcol_idx};
      pre.aggs = aggs;
      pre.mode = GroupByOp::Mode::kStratum;
      tail = spec->AddGroupBy(tail, pre);
      // Partial layout: (g, partials...): rebase the final aggregates.
      RehashOp::Params rh;
      rh.key_fields = {0};
      tail = spec->AddRehash(tail, rh);
      GroupByOp::Params fin;
      fin.key_fields = {0};
      for (size_t i = 0; i < aggs.size(); ++i) {
        GroupByOp::AggSpec merged = aggs[i];
        PreAggSpec pre_spec = GetPreAggSpec(aggs[i].kind);
        merged.kind = pre_spec.merge;
        merged.input_field = static_cast<int>(1 + i);
        fin.aggs.push_back(merged);
      }
      fin.mode = GroupByOp::Mode::kStratum;
      tail = spec->AddGroupBy(tail, fin);
    } else {
      RehashOp::Params rh;
      rh.key_fields = {gcol_idx};
      tail = spec->AddRehash(tail, rh);
      GroupByOp::Params fin;
      fin.key_fields = {gcol_idx};
      fin.aggs = aggs;
      fin.mode = GroupByOp::Mode::kStratum;
      tail = spec->AddGroupBy(tail, fin);
    }

    if (needs_project) {
      // Final layout: (g, agg results...). Apply wrapper expressions.
      std::vector<ExprPtr> exprs;
      exprs.push_back(Expr::Column(0, gcol));
      Scope empty;
      for (size_t i = 0; i < wrappers.size(); ++i) {
        REX_ASSIGN_OR_RETURN(
            ExprPtr e, BindWithAggPlaceholder(*wrappers[i].expr,
                                              wrappers[i].agg_call,
                                              static_cast<int>(1 + i), empty,
                                              ctx_.udfs));
        exprs.push_back(std::move(e));
      }
      tail = spec->AddProject(tail, std::move(exprs));
    }
    return tail;
  }

  /// Inner block: SELECT H(args).{o1, o2} FROM t, R WHERE t.a = R.b
  /// [GROUP BY k] — a delta join between an immutable base table and the
  /// recursive relation, with H's join-state handler owning propagation.
  Result<std::pair<int, std::vector<std::string>>> LowerInnerJoin(
      const SelectStmt& inner, PlanSpec* spec) {
    if (inner.items.size() != 1 || inner.items[0].delta_cols.empty() ||
        inner.items[0].expr->kind != AstExpr::Kind::kCall) {
      return Status::Unsupported(
          "inner block must be a single H(args).{cols} delta invocation");
    }
    const AstExpr& call = *inner.items[0].expr;
    REX_ASSIGN_OR_RETURN(const JoinHandler* handler,
                         ctx_.udfs->GetJoinHandler(call.name));
    if (handler->out_schema.size() > 0 &&
        handler->out_schema.size() != inner.items[0].delta_cols.size()) {
      return Status::TypeError(
          "handler " + call.name + " declares " +
          std::to_string(handler->out_schema.size()) +
          " output columns; query projects " +
          std::to_string(inner.items[0].delta_cols.size()));
    }

    // FROM t, R (either order).
    if (inner.from.size() != 2 || inner.from[0].subquery ||
        inner.from[1].subquery) {
      return Status::Unsupported(
          "inner block must join one base table with the recursive "
          "relation");
    }
    int rec_pos = -1;
    for (int i = 0; i < 2; ++i) {
      if (inner.from[static_cast<size_t>(i)].table == rec_.relation) {
        rec_pos = i;
      }
    }
    if (rec_pos < 0) {
      return Status::NotFound("inner block does not reference recursive "
                              "relation " +
                              rec_.relation);
    }
    const FromItem& table_item = inner.from[static_cast<size_t>(1 - rec_pos)];
    REX_ASSIGN_OR_RETURN(auto table,
                         ctx_.storage->GetTable(table_item.table));

    // WHERE t.a = R.b.
    if (!inner.where || inner.where->kind != AstExpr::Kind::kBinary ||
        inner.where->op != "=" ||
        inner.where->lhs->kind != AstExpr::Kind::kColumn ||
        inner.where->rhs->kind != AstExpr::Kind::kColumn) {
      return Status::Unsupported(
          "inner block WHERE must be a single equi-join condition");
    }
    auto resolve_side =
        [&](const AstExpr& col) -> Result<std::pair<bool, int>> {
      // Returns (is_recursive_side, column index).
      const std::string binding_r =
          inner.from[static_cast<size_t>(rec_pos)].alias.empty()
              ? rec_.relation
              : inner.from[static_cast<size_t>(rec_pos)].alias;
      const std::string binding_t =
          table_item.alias.empty() ? table_item.table : table_item.alias;
      if (col.qualifier == binding_r ||
          (col.qualifier.empty() &&
           IndexIn(rec_.columns, col.name) >= 0)) {
        int idx = IndexIn(rec_.columns, col.name);
        if (idx < 0) {
          return Status::NotFound("column " + col.name + " not in " +
                                  rec_.relation);
        }
        return std::make_pair(true, idx);
      }
      if (col.qualifier.empty() || col.qualifier == binding_t) {
        REX_ASSIGN_OR_RETURN(int idx, table->schema().IndexOf(col.name));
        return std::make_pair(false, idx);
      }
      return Status::NotFound("cannot resolve join column " + col.name);
    };
    REX_ASSIGN_OR_RETURN(auto lhs, resolve_side(*inner.where->lhs));
    REX_ASSIGN_OR_RETURN(auto rhs, resolve_side(*inner.where->rhs));
    if (lhs.first == rhs.first) {
      return Status::Unsupported(
          "inner join must relate the base table to the recursive "
          "relation");
    }
    const int table_key = lhs.first ? rhs.second : lhs.second;
    const int rec_key = lhs.first ? lhs.second : rhs.second;

    // Handler arguments must be the recursive relation's columns, in
    // declaration order (the engine passes the R-layout delta through).
    for (size_t i = 0; i < call.args.size(); ++i) {
      if (call.args[i]->kind != AstExpr::Kind::kColumn ||
          IndexIn(rec_.columns, call.args[i]->name) !=
              static_cast<int>(i)) {
        return Status::Unsupported(
            "handler arguments must be the recursive relation's columns "
            "in order");
      }
    }

    ScanOp::Params scan;
    scan.table = table_item.table;
    scan.feeds_immutable = true;
    int t_node = spec->AddScan(scan);
    if (table->key_column() != table_key) {
      RehashOp::Params rh;
      rh.key_fields = {table_key};
      t_node = spec->AddRehash(t_node, rh);
    }
    int r_node = fixpoint_;
    if (rec_key != key_index_) {
      RehashOp::Params rh;
      rh.key_fields = {rec_key};
      r_node = spec->AddRehash(r_node, rh);
    }
    HashJoinOp::Params jp;
    jp.left_keys = {table_key};
    jp.right_keys = {rec_key};
    jp.immutable[0] = true;
    jp.handler = call.name;
    jp.handler_owns_all = true;
    int join = spec->AddHashJoin(t_node, r_node, jp);
    return std::make_pair(join, inner.items[0].delta_cols);
  }

  static int IndexIn(const std::vector<std::string>& cols,
                     const std::string& name) {
    for (size_t i = 0; i < cols.size(); ++i) {
      if (cols[i] == name) return static_cast<int>(i);
    }
    return -1;
  }

  const RecursiveQuery& rec_;
  const CompileContext& ctx_;
  int key_index_ = -1;
  int fixpoint_ = -1;
};

}  // namespace

Result<CompiledQuery> CompileQuery(const Query& query,
                                   const CompileContext& ctx) {
  if (ctx.storage == nullptr || ctx.udfs == nullptr) {
    return Status::InvalidArgument(
        "compile context requires storage and UDF registry");
  }
  if (query.IsRecursive()) {
    RecursiveCompiler compiler(*query.recursive, ctx);
    return compiler.Compile();
  }
  FlatCompiler compiler(*query.select, ctx);
  return compiler.Compile();
}

Result<CompiledQuery> CompileRql(const std::string& text,
                                 const CompileContext& ctx) {
  REX_ASSIGN_OR_RETURN(Query query, Parse(text));
  return CompileQuery(query, ctx);
}

}  // namespace rql
}  // namespace rex
