#include "rql/lexer.h"

#include <algorithm>
#include <cctype>
#include <set>

namespace rex {
namespace rql {

namespace {

const std::set<std::string>& Keywords() {
  static const std::set<std::string> kKeywords = {
      "SELECT", "FROM",  "WHERE",    "GROUP", "BY",    "AS",    "WITH",
      "UNION",  "ALL",   "UNTIL",    "FIXPOINT", "AND", "OR",   "NOT",
      "NULL",   "TRUE",  "FALSE",    "HAVING", "USING", "REGISTER"};
  return kKeywords;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Lex(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.position = static_cast<int>(i);
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(input[j])) ++j;
      std::string word = input.substr(i, j - i);
      std::string upper(word.size(), '\0');
      std::transform(word.begin(), word.end(), upper.begin(),
                     [](unsigned char ch) { return std::toupper(ch); });
      if (Keywords().count(upper)) {
        tok.type = TokenType::kKeyword;
        tok.text = upper;
      } else {
        tok.type = TokenType::kIdentifier;
        tok.text = word;
      }
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t j = i;
      bool is_float = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) {
        ++j;
      }
      if (j < n && input[j] == '.' && j + 1 < n &&
          std::isdigit(static_cast<unsigned char>(input[j + 1]))) {
        is_float = true;
        ++j;
        while (j < n &&
               std::isdigit(static_cast<unsigned char>(input[j]))) {
          ++j;
        }
      }
      if (j < n && (input[j] == 'e' || input[j] == 'E')) {
        size_t k = j + 1;
        if (k < n && (input[k] == '+' || input[k] == '-')) ++k;
        if (k < n && std::isdigit(static_cast<unsigned char>(input[k]))) {
          is_float = true;
          j = k;
          while (j < n &&
                 std::isdigit(static_cast<unsigned char>(input[j]))) {
            ++j;
          }
        }
      }
      std::string num = input.substr(i, j - i);
      if (is_float) {
        tok.type = TokenType::kFloat;
        tok.float_value = std::stod(num);
      } else {
        tok.type = TokenType::kInteger;
        tok.int_value = std::stoll(num);
      }
      tok.text = num;
      i = j;
    } else if (c == '\'') {
      size_t j = i + 1;
      std::string text;
      while (j < n && input[j] != '\'') {
        text += input[j];
        ++j;
      }
      if (j >= n) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(i));
      }
      tok.type = TokenType::kString;
      tok.text = std::move(text);
      i = j + 1;
    } else {
      // Two-character operators first.
      if (i + 1 < n) {
        std::string two = input.substr(i, 2);
        if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
          tok.type = TokenType::kSymbol;
          tok.text = two == "!=" ? "<>" : two;
          tokens.push_back(tok);
          i += 2;
          continue;
        }
      }
      static const std::string kSingles = "(),.{}*+-/%=<>";
      if (kSingles.find(c) == std::string::npos) {
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at offset " + std::to_string(i));
      }
      tok.type = TokenType::kSymbol;
      tok.text = std::string(1, c);
      ++i;
    }
    tokens.push_back(std::move(tok));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = static_cast<int>(n);
  tokens.push_back(end);
  return tokens;
}

}  // namespace rql
}  // namespace rex
