#include "rql/ast.h"

namespace rex {
namespace rql {

std::string AstExpr::ToString() const {
  switch (kind) {
    case Kind::kColumn:
      return qualifier.empty() ? name : qualifier + "." + name;
    case Kind::kLiteral:
      return literal.ToString();
    case Kind::kBinary:
      return "(" + lhs->ToString() + " " + op + " " + rhs->ToString() + ")";
    case Kind::kNot:
      return "NOT " + args[0]->ToString();
    case Kind::kCall: {
      std::string out = name + "(";
      if (is_star) {
        out += "*";
      } else {
        for (size_t i = 0; i < args.size(); ++i) {
          if (i > 0) out += ", ";
          out += args[i]->ToString();
        }
      }
      return out + ")";
    }
  }
  return "?";
}

std::string SelectStmt::ToString() const {
  std::string out = "SELECT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += items[i].expr->ToString();
    if (!items[i].delta_cols.empty()) {
      out += ".{";
      for (size_t j = 0; j < items[i].delta_cols.size(); ++j) {
        if (j > 0) out += ", ";
        out += items[i].delta_cols[j];
      }
      out += "}";
    }
    if (!items[i].alias.empty()) out += " AS " + items[i].alias;
  }
  out += " FROM ";
  for (size_t i = 0; i < from.size(); ++i) {
    if (i > 0) out += ", ";
    if (from[i].subquery) {
      out += "(" + from[i].subquery->ToString() + ")";
    } else {
      out += from[i].table;
    }
    if (!from[i].alias.empty()) out += " " + from[i].alias;
  }
  if (where) out += " WHERE " + where->ToString();
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_by[i]->ToString();
    }
  }
  return out;
}

}  // namespace rql
}  // namespace rex
