// RQL abstract syntax (§3): SQL-99-style query blocks with nested
// subqueries, plus recursion via
//   WITH R (cols) AS ( base ) UNION [ALL] UNTIL FIXPOINT BY key ( step )
// and delta-producing UDA invocations `F(args).{out1, out2}`.
#ifndef REX_RQL_AST_H_
#define REX_RQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/value.h"

namespace rex {
namespace rql {

struct AstExpr;
using AstExprPtr = std::shared_ptr<AstExpr>;

/// Scalar/boolean expression; `op` uses the token spelling ("+", "<=",
/// "AND", ...).
struct AstExpr {
  enum class Kind : uint8_t {
    kColumn,   // [qualifier.]name
    kLiteral,
    kBinary,
    kNot,
    kCall,     // fn(args) — scalar UDF or aggregate, resolved by analyzer
  };
  Kind kind = Kind::kLiteral;

  std::string qualifier;  // kColumn: table or alias; may be empty
  std::string name;       // kColumn column name / kCall function name
  Value literal;          // kLiteral
  std::string op;         // kBinary
  AstExprPtr lhs, rhs;    // kBinary
  std::vector<AstExprPtr> args;  // kCall / kNot (args[0])
  bool is_star = false;   // count(*)

  std::string ToString() const;
};

/// One SELECT item: an expression, or a UDA invocation with the
/// `.{out1, out2}` delta projection.
struct SelectItem {
  AstExprPtr expr;
  std::string alias;                    // AS name
  std::vector<std::string> delta_cols;  // non-empty for F(...).{a, b}
};

struct SelectStmt;
using SelectStmtPtr = std::shared_ptr<SelectStmt>;

/// FROM entry: a base table, the recursive relation, or a subquery.
struct FromItem {
  std::string table;       // empty if subquery
  SelectStmtPtr subquery;  // nested query block
  std::string alias;
};

struct SelectStmt {
  std::vector<SelectItem> items;
  std::vector<FromItem> from;
  AstExprPtr where;  // null = none
  std::vector<AstExprPtr> group_by;

  std::string ToString() const;
};

/// WITH R (cols) AS (base)
/// UNION [ALL] UNTIL FIXPOINT BY key [USING handler] (step).
///
/// USING is a REX extension naming the registered while-state delta
/// handler that merges deltas into the fixpoint relation (§3.3); without
/// it the fixpoint applies key-based set semantics with replacement.
struct RecursiveQuery {
  std::string relation;              // R
  std::vector<std::string> columns;  // declared column names
  SelectStmtPtr base;
  bool union_all = false;
  std::string fixpoint_key;    // BY <column>
  std::string while_handler;   // USING <handler>, may be empty
  SelectStmtPtr step;
};

/// A parsed RQL statement: either a plain query block or a recursive one,
/// optionally prefixed with `REGISTER <name> AS` to admit it as a standing
/// query in a serving session (serve/serve.h) instead of running once.
struct Query {
  SelectStmtPtr select;                    // non-recursive
  std::shared_ptr<RecursiveQuery> recursive;  // or recursive
  /// Standing-query name from `REGISTER <name> AS ...`; empty for a plain
  /// one-shot statement.
  std::string register_name;

  bool IsRecursive() const { return recursive != nullptr; }
};

}  // namespace rql
}  // namespace rex

#endif  // REX_RQL_AST_H_
