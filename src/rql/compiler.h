// The RQL compiler: semantic analysis, typechecking, and lowering to
// executable PlanSpecs (§3, §5).
//
// Flat query blocks (SELECT-FROM-WHERE-GROUP BY over base tables) lower
// through the cost-based optimizer: join ordering, rehash placement, UDF
// predicate migration, and pre-aggregation pushdown all apply.
//
// Recursive queries follow the paper's pattern (Listing 1):
//
//   WITH R (c1, c2) AS ( <base block> )
//   UNION [ALL] UNTIL FIXPOINT BY key [USING whileHandler] (
//     SELECT g, <expr around agg(x)> FROM (
//       SELECT H(args).{o1, o2} FROM t, R WHERE t.k = R.k GROUP BY k
//     ) GROUP BY g )
//
// where H is a registered join-state delta handler (the paper's UDA join
// form, e.g. PRAgg) whose per-key invocation produces the delta tuples
// aggregated by the outer block and fed back through the fixpoint. The
// optional USING clause names a while-state handler; otherwise the
// fixpoint applies key-based set semantics with replacement.
#ifndef REX_RQL_COMPILER_H_
#define REX_RQL_COMPILER_H_

#include <string>

#include "optimizer/optimizer.h"
#include "rql/ast.h"
#include "storage/table.h"

namespace rex {
namespace rql {

struct CompileContext {
  const StorageCatalog* storage = nullptr;  // table schemas (required)
  const UdfRegistry* udfs = nullptr;        // user code (required)
  /// Optional statistics; when null, synthesized from table row counts.
  const StatsCatalog* stats = nullptr;
  ClusterCalibration calibration = ClusterCalibration::Uniform(4);
  OptimizerOptions optimizer_options;
  /// Insert a local pre-aggregation before the loop's rehash in recursive
  /// plans (combiner pushdown).
  bool recursive_preaggregate = true;
};

struct CompiledQuery {
  PlanSpec spec;
  /// Output column names (types where inferable).
  Schema output_schema;
  bool recursive = false;
  /// Optimizer decision record (flat queries only).
  OptimizerDecisions decisions;
};

/// Parses, analyzes, typechecks, optimizes, and lowers one RQL statement.
Result<CompiledQuery> CompileRql(const std::string& text,
                                 const CompileContext& ctx);

/// Compiles an already-parsed query (used by tests).
Result<CompiledQuery> CompileQuery(const Query& query,
                                   const CompileContext& ctx);

}  // namespace rql
}  // namespace rex

#endif  // REX_RQL_COMPILER_H_
