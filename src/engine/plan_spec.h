// Serializable physical plan descriptions.
//
// The optimizer (or a hand-written plan builder) produces a PlanSpec; the
// driver disseminates it to every worker, which instantiates a LocalPlan —
// one Operator instance per node — exactly as REX ships the optimized plan
// plus referenced user-code names to all workers (§4). User code is
// referenced by registry name, never embedded.
#ifndef REX_ENGINE_PLAN_SPEC_H_
#define REX_ENGINE_PLAN_SPEC_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/expr.h"
#include "exec/fixpoint.h"
#include "exec/group_by.h"
#include "exec/hash_join.h"
#include "exec/operators.h"

namespace rex {

struct PlanNodeSpec {
  enum class Type : uint8_t {
    kScan,
    kFilter,
    kProject,
    kApplyFn,
    kHashJoin,
    kGroupBy,
    kRehash,
    kFixpoint,
    kUnion,
    kSink,
  };

  /// A dataflow edge: node `from`'s output feeds this node's `to_port`.
  struct Edge {
    int from;
    int to_port;
  };

  int id = -1;
  Type type = Type::kScan;
  std::vector<Edge> inputs;

  // Exactly one of the following is meaningful, per `type`.
  ScanOp::Params scan;
  ExprPtr predicate;             // kFilter
  std::vector<ExprPtr> exprs;    // kProject
  std::string fn_name;           // kApplyFn
  HashJoinOp::Params join;
  GroupByOp::Params group_by;
  RehashOp::Params rehash;
  FixpointOp::Params fixpoint;
  int union_inputs = 2;          // kUnion
};

/// A whole physical plan. Node ids are indexes into `nodes`.
class PlanSpec {
 public:
  const std::vector<PlanNodeSpec>& nodes() const { return nodes_; }
  const PlanNodeSpec& node(int id) const {
    return nodes_[static_cast<size_t>(id)];
  }
  int size() const { return static_cast<int>(nodes_.size()); }

  // -- builder API ----------------------------------------------------------
  int AddScan(ScanOp::Params params);
  int AddFilter(int input, ExprPtr predicate);
  int AddProject(int input, std::vector<ExprPtr> exprs);
  int AddApplyFn(int input, std::string fn_name);
  /// `left` feeds port 0, `right` feeds port 1.
  int AddHashJoin(int left, int right, HashJoinOp::Params params);
  int AddGroupBy(int input, GroupByOp::Params params);
  int AddRehash(int input, RehashOp::Params params);
  /// `base` feeds the base port. Wire the recursive case afterwards with
  /// ConnectRecursive (the loop cannot be expressed in one call).
  int AddFixpoint(int base, FixpointOp::Params params);
  int AddUnion(std::vector<int> inputs);
  int AddSink(int input);

  /// Adds the loop edge: `recursive_tail`'s output feeds the fixpoint's
  /// recursive port. The fixpoint's own output edges are declared by the
  /// recursive sub-plan's entry node listing the fixpoint as an input.
  void ConnectRecursive(int fixpoint, int recursive_tail);

  /// Adds an extra input edge to an existing node (loop entries).
  void AddEdge(int from, int to, int to_port);

  /// Structural sanity: edge targets exist, port ranges valid, exactly one
  /// param set per node type.
  Status Validate() const;

  /// True when the plan carries derived state outside its fixpoints that
  /// Δ-set restoration cannot rebuild (persistent group-bys, joins whose
  /// handler keeps per-bucket state): incremental recovery must replay the
  /// checkpointed strata through the whole loop body on fresh operators.
  bool NeedsReplayRecovery() const;

  std::string ToString() const;

 private:
  int Add(PlanNodeSpec node);

  std::vector<PlanNodeSpec> nodes_;
};

}  // namespace rex

#endif  // REX_ENGINE_PLAN_SPEC_H_
