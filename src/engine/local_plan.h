// Per-worker instantiation of a PlanSpec: one Operator per node, wired by
// the spec's edges, with per-port expected punctuation counts derived from
// the edge fan-in.
#ifndef REX_ENGINE_LOCAL_PLAN_H_
#define REX_ENGINE_LOCAL_PLAN_H_

#include <memory>
#include <vector>

#include "engine/plan_spec.h"

namespace rex {

class LocalPlan {
 public:
  /// Builds, wires, and Open()s every operator against `ctx`.
  static Result<std::unique_ptr<LocalPlan>> Instantiate(const PlanSpec& spec,
                                                        ExecContext* ctx);

  Operator* op(int id) { return ops_[static_cast<size_t>(id)].get(); }
  int size() const { return static_cast<int>(ops_.size()); }

  const std::vector<FixpointOp*>& fixpoints() const { return fixpoints_; }
  const std::vector<SinkOp*>& sinks() const { return sinks_; }
  const std::vector<ScanOp*>& scans() const { return scans_; }

  /// Calls StartStratum on every operator (scans act in stratum 0,
  /// fixpoints in later strata).
  Status StartStratum(int stratum);

  Status ResetTransientState();
  Status OnMembershipChange();
  Status RecoveryReload();
  Status Close();

 private:
  LocalPlan() = default;

  std::vector<std::unique_ptr<Operator>> ops_;
  std::vector<FixpointOp*> fixpoints_;
  std::vector<SinkOp*> sinks_;
  std::vector<ScanOp*> scans_;
};

}  // namespace rex

#endif  // REX_ENGINE_LOCAL_PLAN_H_
