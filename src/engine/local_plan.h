// Per-worker instantiation of a PlanSpec: one Operator per node, wired by
// the spec's edges, with per-port expected punctuation counts derived from
// the edge fan-in.
#ifndef REX_ENGINE_LOCAL_PLAN_H_
#define REX_ENGINE_LOCAL_PLAN_H_

#include <memory>
#include <vector>

#include "engine/plan_spec.h"

namespace rex {

/// Point-in-time execution stats for one operator instance (profiler
/// snapshot; read driver-side while the network is quiescent).
struct LocalOperatorStats {
  int op_id = 0;
  const char* name = "";
  int64_t deltas_emitted = 0;
  std::vector<OperatorPortStats> ports;
};

class LocalPlan {
 public:
  /// Builds, wires, and Open()s every operator against `ctx`.
  static Result<std::unique_ptr<LocalPlan>> Instantiate(const PlanSpec& spec,
                                                        ExecContext* ctx);

  Operator* op(int id) { return ops_[static_cast<size_t>(id)].get(); }
  int size() const { return static_cast<int>(ops_.size()); }

  /// One entry per operator, in id order.
  std::vector<LocalOperatorStats> StatsSnapshot() const;

  const std::vector<FixpointOp*>& fixpoints() const { return fixpoints_; }
  const std::vector<SinkOp*>& sinks() const { return sinks_; }
  const std::vector<ScanOp*>& scans() const { return scans_; }

  /// Calls StartStratum on every operator (scans act in stratum 0,
  /// fixpoints in later strata).
  Status StartStratum(int stratum);

  Status ResetTransientState();
  Status OnMembershipChange();
  Status RecoveryReload();
  Status Close();

  /// Recovery priming for freshly instantiated plans on revived workers:
  /// recomputes which ports the completed stratum-0 wave closed with
  /// kEndOfStream (immutable inputs, base case) and marks them delivered.
  /// Closure propagates exactly as the punctuation did at runtime: a scan
  /// whose punct kind is kEndOfStream closes its downstream port, an
  /// operator with every port closed forwards closure, and a rehash whose
  /// local port is closed also has its network port closed (its peers'
  /// mirror instances are in the same state). Idempotent — a no-op on
  /// survivors, whose port_closed_ flags persist across recovery.
  Status MarkDeliveredStreamsClosed();

 private:
  LocalPlan() = default;

  struct Edge {
    int from;
    int to;
    int to_port;
  };

  std::vector<std::unique_ptr<Operator>> ops_;
  std::vector<Edge> edges_;
  std::vector<FixpointOp*> fixpoints_;
  std::vector<SinkOp*> sinks_;
  std::vector<ScanOp*> scans_;
};

}  // namespace rex

#endif  // REX_ENGINE_LOCAL_PLAN_H_
