#include "engine/plan_spec.h"

namespace rex {

int PlanSpec::Add(PlanNodeSpec node) {
  node.id = static_cast<int>(nodes_.size());
  nodes_.push_back(std::move(node));
  return nodes_.back().id;
}

int PlanSpec::AddScan(ScanOp::Params params) {
  PlanNodeSpec n;
  n.type = PlanNodeSpec::Type::kScan;
  n.scan = std::move(params);
  return Add(std::move(n));
}

int PlanSpec::AddFilter(int input, ExprPtr predicate) {
  PlanNodeSpec n;
  n.type = PlanNodeSpec::Type::kFilter;
  n.predicate = std::move(predicate);
  n.inputs.push_back({input, 0});
  return Add(std::move(n));
}

int PlanSpec::AddProject(int input, std::vector<ExprPtr> exprs) {
  PlanNodeSpec n;
  n.type = PlanNodeSpec::Type::kProject;
  n.exprs = std::move(exprs);
  n.inputs.push_back({input, 0});
  return Add(std::move(n));
}

int PlanSpec::AddApplyFn(int input, std::string fn_name) {
  PlanNodeSpec n;
  n.type = PlanNodeSpec::Type::kApplyFn;
  n.fn_name = std::move(fn_name);
  n.inputs.push_back({input, 0});
  return Add(std::move(n));
}

int PlanSpec::AddHashJoin(int left, int right, HashJoinOp::Params params) {
  PlanNodeSpec n;
  n.type = PlanNodeSpec::Type::kHashJoin;
  n.join = std::move(params);
  n.inputs.push_back({left, 0});
  n.inputs.push_back({right, 1});
  return Add(std::move(n));
}

int PlanSpec::AddGroupBy(int input, GroupByOp::Params params) {
  PlanNodeSpec n;
  n.type = PlanNodeSpec::Type::kGroupBy;
  n.group_by = std::move(params);
  n.inputs.push_back({input, 0});
  return Add(std::move(n));
}

int PlanSpec::AddRehash(int input, RehashOp::Params params) {
  PlanNodeSpec n;
  n.type = PlanNodeSpec::Type::kRehash;
  n.rehash = std::move(params);
  n.inputs.push_back({input, 0});
  return Add(std::move(n));
}

int PlanSpec::AddFixpoint(int base, FixpointOp::Params params) {
  PlanNodeSpec n;
  n.type = PlanNodeSpec::Type::kFixpoint;
  n.fixpoint = std::move(params);
  n.inputs.push_back({base, FixpointOp::kBasePort});
  return Add(std::move(n));
}

int PlanSpec::AddUnion(std::vector<int> inputs) {
  PlanNodeSpec n;
  n.type = PlanNodeSpec::Type::kUnion;
  n.union_inputs = static_cast<int>(inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    n.inputs.push_back({inputs[i], static_cast<int>(i)});
  }
  return Add(std::move(n));
}

int PlanSpec::AddSink(int input) {
  PlanNodeSpec n;
  n.type = PlanNodeSpec::Type::kSink;
  n.inputs.push_back({input, 0});
  return Add(std::move(n));
}

void PlanSpec::ConnectRecursive(int fixpoint, int recursive_tail) {
  nodes_[static_cast<size_t>(fixpoint)].inputs.push_back(
      {recursive_tail, FixpointOp::kRecursivePort});
}

void PlanSpec::AddEdge(int from, int to, int to_port) {
  nodes_[static_cast<size_t>(to)].inputs.push_back({from, to_port});
}

bool PlanSpec::NeedsReplayRecovery() const {
  for (const PlanNodeSpec& n : nodes_) {
    if (n.type == PlanNodeSpec::Type::kGroupBy &&
        n.group_by.mode == GroupByOp::Mode::kPersistent) {
      return true;
    }
    if (n.type == PlanNodeSpec::Type::kHashJoin &&
        n.join.handler_keeps_state) {
      return true;
    }
  }
  return false;
}

Status PlanSpec::Validate() const {
  for (const PlanNodeSpec& n : nodes_) {
    for (const auto& e : n.inputs) {
      if (e.from < 0 || e.from >= size()) {
        return Status::InvalidArgument("plan node " + std::to_string(n.id) +
                                       " has edge from missing node " +
                                       std::to_string(e.from));
      }
      if (e.to_port < 0) {
        return Status::InvalidArgument("negative input port");
      }
    }
    switch (n.type) {
      case PlanNodeSpec::Type::kScan:
        if (n.scan.table.empty()) {
          return Status::InvalidArgument("scan without table name");
        }
        if (!n.inputs.empty()) {
          return Status::InvalidArgument("scan must have no inputs");
        }
        break;
      case PlanNodeSpec::Type::kFilter:
        if (!n.predicate) {
          return Status::InvalidArgument("filter without predicate");
        }
        break;
      case PlanNodeSpec::Type::kProject:
        if (n.exprs.empty()) {
          return Status::InvalidArgument("project without expressions");
        }
        break;
      case PlanNodeSpec::Type::kApplyFn:
        if (n.fn_name.empty()) {
          return Status::InvalidArgument("applyFn without function name");
        }
        break;
      case PlanNodeSpec::Type::kHashJoin:
        if (n.join.left_keys.size() != n.join.right_keys.size()) {
          return Status::InvalidArgument("join key arity mismatch");
        }
        break;
      case PlanNodeSpec::Type::kGroupBy:
        if (n.group_by.aggs.empty() && n.group_by.uda.empty()) {
          return Status::InvalidArgument(
              "group-by without aggregates or UDA");
        }
        break;
      case PlanNodeSpec::Type::kRehash:
        // Empty key fields are allowed: the constant hash gathers all
        // tuples onto one worker (global aggregation).
        break;
      case PlanNodeSpec::Type::kFixpoint:
        if (n.fixpoint.key_fields.empty() &&
            n.fixpoint.while_handler.empty() &&
            n.fixpoint.mode != FixpointOp::Mode::kAccumulate) {
          return Status::InvalidArgument("fixpoint without key fields");
        }
        break;
      case PlanNodeSpec::Type::kUnion:
      case PlanNodeSpec::Type::kSink:
        break;
    }
  }
  return Status::OK();
}

std::string PlanSpec::ToString() const {
  static const char* kNames[] = {"scan",   "filter",  "project", "applyFn",
                                 "join",   "groupBy", "rehash",  "fixpoint",
                                 "union",  "sink"};
  std::string out;
  for (const PlanNodeSpec& n : nodes_) {
    out += std::to_string(n.id);
    out += ": ";
    out += kNames[static_cast<int>(n.type)];
    if (n.type == PlanNodeSpec::Type::kScan) out += "(" + n.scan.table + ")";
    if (!n.inputs.empty()) {
      out += " <- [";
      for (size_t i = 0; i < n.inputs.size(); ++i) {
        if (i > 0) out += ", ";
        out += std::to_string(n.inputs[i].from) + "@p" +
               std::to_string(n.inputs[i].to_port);
      }
      out += "]";
    }
    out += "\n";
  }
  return out;
}

}  // namespace rex
